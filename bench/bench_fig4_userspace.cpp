// Figure 4: user-space workload performance with full protection,
// backward-edge-only CFI and no instrumentation:
//   1) JPEG picture resize  — predominantly user computation,
//   2) Debian package build — balanced,
//   3) Network download     — mostly kernel time.
// The paper: "the geometric mean of the overhead drops to less than 4%" for
// user-space workloads, with the kernel-heavy download showing the largest
// overhead and the compute-bound resize the smallest.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/workloads.h"

namespace {

using namespace camo;  // NOLINT
namespace wl = kernel::workloads;

struct Workload {
  const char* name;
  obj::Program (*make)();
};

uint64_t g_scale = 1;  // divisor under --smoke

obj::Program make_resize() { return wl::image_resize(60 / g_scale); }
obj::Program make_build() { return wl::package_build(40 / g_scale); }
obj::Program make_download() { return wl::download(60 / g_scale); }

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "Figure 4", "user-space performance (relative run time)",
      "<4% geometric-mean overhead for full protection; JPEG < build < "
      "download");
  g_scale = s.smoke() ? 10 : 1;

  const Workload workloads[] = {
      {"1) JPEG resize (user compute)", make_resize},
      {"2) package build (balanced)", make_build},
      {"3) network download (kernel)", make_download},
  };

  std::printf("%-32s | %12s | %17s | %17s\n", "workload", "none (cyc)",
              "backward", "full");
  std::printf("%.*s\n", 90,
              "--------------------------------------------------------------"
              "--------------------------------------------------");

  double geo_back = 0, geo_full = 0;
  int n = 0;
  for (const auto& w : workloads) {
    double base = 0;
    std::printf("%-32s |", w.name);
    for (const auto& cfgn : bench::figure_configs()) {
      std::vector<obj::Program> progs;
      progs.push_back(w.make());
      const auto r = bench::run_workload(cfgn.prot, std::move(progs));
      if (r.halt_code != kernel::kHaltDone) {
        std::printf(" RUN FAILED (halt=0x%llx)",
                    static_cast<unsigned long long>(r.halt_code));
        continue;
      }
      const double cyc = static_cast<double>(r.workload);
      if (base == 0) {
        base = cyc;
        std::printf(" %12.0f |", cyc);
        s.add(cfgn.name, w.name, cyc, "cycles");
        continue;
      }
      const double rel = cyc / base;
      std::printf(" %8.0f %6.3fx |", cyc, rel);
      s.add(cfgn.name, w.name, cyc, "cycles", rel);
      if (std::string(cfgn.name) == "backward") geo_back += std::log(rel);
      if (std::string(cfgn.name) == "full") geo_full += std::log(rel);
    }
    std::printf("\n");
    ++n;
  }
  const double gb = std::exp(geo_back / n), gf = std::exp(geo_full / n);
  std::printf("\ngeometric mean: backward-edge %+.2f%%, full %+.2f%% "
              "(paper: full < 4%%)\n",
              (gb - 1) * 100, (gf - 1) * 100);
  s.add("backward", "geometric mean", gb, "ratio");
  s.add("full", "geometric mean", gf, "ratio");

  // Host throughput under the three host engine modes (informational; JPEG
  // resize is the compute-bound extreme, where the superblock engine's
  // straight-line blocks are longest).
  if (!bench::emit_throughput_series(
          s, "1) JPEG resize (user compute)",
          compiler::ProtectionConfig::full(), [] {
            std::vector<obj::Program> v;
            v.push_back(make_resize());
            return v;
          }))
    return 1;
  return s.finish();
}
