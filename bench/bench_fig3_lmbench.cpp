// Figure 3: lmbench-style kernel micro-benchmark latencies, relative to the
// unprotected kernel, under full protection and backward-edge-only CFI.
//
// The paper: "The performance impact at system call level is measurable as
// double-digit percentual overhead ... due to a comparatively high rate of
// function calls to computation" in syscall implementations.
//
// Each row runs the same user workload (null syscall, read, write, stat,
// open/close, context switch) on three kernels that differ only in
// instrumentation, and reports per-operation simulated cycles plus the
// relative latency Figure 3 plots.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "kernel/workloads.h"

namespace {

using namespace camo;  // NOLINT
using kernel::FileKind;
namespace wl = kernel::workloads;

struct Bench {
  const char* name;
  uint64_t ops;  ///< operations per run (for per-op latency)
  std::vector<obj::Program> (*make)();
};

uint64_t kIters = 1500;  // reduced under --smoke

std::vector<obj::Program> make_null() {
  std::vector<obj::Program> v;
  v.push_back(wl::null_syscall(kIters));
  return v;
}
std::vector<obj::Program> make_read() {
  std::vector<obj::Program> v;
  v.push_back(wl::read_file(kIters, 64, FileKind::Null));
  return v;
}
std::vector<obj::Program> make_write() {
  std::vector<obj::Program> v;
  v.push_back(wl::write_file(kIters, 64, FileKind::Null));
  return v;
}
std::vector<obj::Program> make_stat() {
  std::vector<obj::Program> v;
  v.push_back(wl::stat_file(kIters));
  return v;
}
std::vector<obj::Program> make_openclose() {
  std::vector<obj::Program> v;
  v.push_back(wl::open_close(kIters / 2));
  return v;
}
std::vector<obj::Program> make_ctx() {
  std::vector<obj::Program> v;
  v.push_back(wl::yield_loop(kIters / 2));
  v.push_back(wl::yield_loop(kIters / 2));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "Figure 3", "lmbench (relative) latencies",
      "double-digit % syscall-level overhead for full protection; "
      "backward-only in between; high call density explains the cost");
  kIters = s.iters(1500, 100);

  const Bench benches[] = {
      {"null syscall", kIters, make_null},
      {"read /dev/null 64B", kIters, make_read},
      {"write /dev/null 64B", kIters, make_write},
      {"stat", kIters, make_stat},
      {"open/close", kIters / 2, make_openclose},
      {"ctx switch (2 tasks)", kIters, make_ctx},
  };

  std::printf("%-22s | %-24s | %-24s | %-24s\n", "", "none", "backward-edge",
              "full");
  std::printf("%-22s | %10s %12s | %10s %12s | %10s %12s\n", "benchmark",
              "cyc/op", "relative", "cyc/op", "relative", "cyc/op",
              "relative");
  std::printf("%.*s\n", 112,
              "--------------------------------------------------------------"
              "--------------------------------------------------");

  double geo_back = 0, geo_full = 0;
  int n = 0;
  for (const auto& b : benches) {
    double base = 0;
    std::printf("%-22s |", b.name);
    for (const auto& cfgn : bench::figure_configs()) {
      const auto r = bench::run_workload(cfgn.prot, b.make());
      if (r.halt_code != kernel::kHaltDone) {
        std::printf(" RUN FAILED (halt=0x%llx)",
                    static_cast<unsigned long long>(r.halt_code));
        continue;
      }
      const double per_op = static_cast<double>(r.workload) / b.ops;
      if (base == 0) base = per_op;
      const double rel = per_op / base;
      std::printf(" %10.1f %11.3fx |", per_op, rel);
      s.add(cfgn.name, b.name, per_op, "cycles/op", rel);
      if (std::string(cfgn.name) == "backward") geo_back += std::log(rel);
      if (std::string(cfgn.name) == "full") geo_full += std::log(rel);
    }
    std::printf("\n");
    ++n;
  }
  std::printf("\ngeometric-mean relative latency: backward-edge %.3fx, full "
              "%.3fx (paper Figure 3 shows the same ordering with "
              "double-digit %% overheads)\n",
              std::exp(geo_back / n), std::exp(geo_full / n));

  // Host-throughput comparison (informational, never gated): the same read
  // workload, longer than the latency rows (noise amortisation), under all
  // four host engine modes — no host caches, the fetch/translate fast path
  // alone, the superblock engine on top, and the trace tier on top of that.
  // Simulated cycles must be bit-for-bit identical across all four — every
  // mode is host-side only.
  if (!bench::emit_throughput_series(
          s, "read /dev/null 64B", compiler::ProtectionConfig::full(), [] {
            std::vector<obj::Program> v;
            v.push_back(wl::read_file(kIters * 8, 64, FileKind::Null));
            return v;
          }))
    return 1;

  // Latency-distribution histograms (DESIGN.md §3f): one collected read
  // workload under full protection. The hist.* series are informational —
  // distribution shape for trend tracking, never a regression gate. The
  // superblock run-length histogram is host-strategy shape and stays empty
  // (hence unemitted) when the engine is off.
  {
    const auto r = bench::run_workload(compiler::ProtectionConfig::full(),
                                       make_read(), 400'000'000,
                                       /*collect=*/true);
    if (r.halt_code != kernel::kHaltDone) {
      std::fprintf(stderr, "histogram run failed (halt=0x%llx)\n",
                   static_cast<unsigned long long>(r.halt_code));
      return 1;
    }
    std::printf("\nlatency distributions (full protection, informational):\n");
    s.add_histogram("full", "pauth.sign_to_auth", r.sign_to_auth, "cycles");
    s.add_histogram("full", "key.switch", r.key_switch, "cycles");
    s.add_histogram("full", "sb.run_length", r.sb_run_length, "insns");
    s.add_histogram("full", "trace.len", r.trace_len, "insns");
  }

  // --trace <path> / --folded <path>: rerun one workload with the obs
  // collector attached and dump the Chrome trace_event JSON
  // (chrome://tracing / Perfetto), the flat per-symbol cycle profile, and/or
  // the folded call-stack profile (flamegraph.pl / speedscope input).
  if (!s.trace_path().empty() || !s.folded_path().empty()) {
    const auto r = bench::run_workload(compiler::ProtectionConfig::full(),
                                       make_read(), 400'000'000,
                                       /*collect=*/true);
    if (r.halt_code != kernel::kHaltDone) {
      std::fprintf(stderr, "trace run failed (halt=0x%llx)\n",
                   static_cast<unsigned long long>(r.halt_code));
      return 1;
    }
    if (r.profile_cycles != r.total) {
      std::fprintf(stderr,
                   "profile does not account for all cycles: %llu != %llu\n",
                   static_cast<unsigned long long>(r.profile_cycles),
                   static_cast<unsigned long long>(r.total));
      return 1;
    }
    if (r.callgraph_cycles != r.total) {
      std::fprintf(
          stderr,
          "call graph does not account for all cycles: %llu != %llu\n",
          static_cast<unsigned long long>(r.callgraph_cycles),
          static_cast<unsigned long long>(r.total));
      return 1;
    }
    if (!s.trace_path().empty()) {
      std::ofstream out(s.trace_path());
      out << r.trace_json << "\n";
      std::printf("\n[chrome trace -> %s]\n", s.trace_path().c_str());
      std::printf(
          "\nflat profile (read syscall workload, full protection):\n%s",
          r.flat_profile.c_str());
    }
    if (!s.folded_path().empty()) {
      std::ofstream out(s.folded_path());
      out << r.folded;
      std::printf("\n[folded stacks -> %s]\n", s.folded_path().c_str());
    }
  }
  return s.finish();
}
