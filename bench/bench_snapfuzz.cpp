// Snapshot-fork scenario fuzzing (DESIGN.md §3j).
//
// Boot-once/run-many as a correctness weapon: N children are drawn with a
// seeded RNG from the attacks:: scenario registry and run through the
// snapshot path — under --snap on the first child per boot signature boots
// a template machine, every later child with the same signature forks it
// copy-on-write. Three mutation families:
//   * injection/reuse mutants — named registry attacks (pointer injection,
//     f_ops redirect, cross-object signature *reuse*) under a mutated
//     protection preset,
//   * replay mutants — the backward-edge replay matrix executed on-CPU
//     with real signed pointers, checked against the host modifier-algebra
//     model as its oracle,
//   * the verdict oracle itself — every distinct (attack, config) cell is
//     first calibrated on a fresh-boot machine (snapshot mode off), and a
//     handful of §6.2 ground truths are asserted on the calibration
//     directly (unprotected kernels are hijacked, PAuth detects injection,
//     key extraction and rodata tampering are blocked).
// Every mutant must land in its expected verdict class; any mismatch —
// i.e. any behavioural difference between a forked child and a fresh-boot
// machine — fails the bench. The mutant stream is a pure function of the
// seed, so the emitted class counts are deterministic and gateable at any
// --jobs / --snap combination.
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "attacks/attacks.h"
#include "bench_snap_util.h"
#include "bench_util.h"

namespace {

using namespace camo;  // NOLINT
using attacks::Outcome;

struct Mutant {
  bool replay = false;
  // Named-attack mutants:
  std::string attack, config;
  // Replay mutants:
  compiler::BackwardScheme scheme = compiler::BackwardScheme::ClangSp;
  attacks::ReplayScenario scenario =
      attacks::ReplayScenario::SameFunctionSameSp;
};

struct Verdict {
  bool ok = false;      ///< landed in the expected class
  int expected = 0;     ///< Outcome, or replay oracle (1 = accepted)
  int actual = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "SnapFuzz", "snapshot-fork scenario fuzzing (DESIGN.md §3j)",
      "forked machines are bit-identical to fresh boots, so every seeded "
      "scenario mutant must land in the verdict class a fresh-boot oracle "
      "predicts");

  // Default matches refresh_baselines.sh's pinned --seed, so the recorded
  // baseline and a bare smoke run draw the same mutant stream.
  const uint64_t seed = s.seed(2024);
  const size_t n_mutants = s.iters(48, 12);

  // The fuzz pool: the injection/reuse rows of the §6.2 matrix (including
  // the cross-object signature-reuse attack) plus the two blocked-outright
  // rows, under every protection preset. Small enough that repeated draws
  // exercise snapshot forking, broad enough to hit all three verdict
  // classes.
  const std::vector<std::string> pool = {
      "rop-injection",    "forward-edge", "fops-redirect",
      "fops-cross-object", "key-extraction", "rodata-tamper"};
  const std::vector<std::string>& configs = attacks::attack_config_names();
  const compiler::BackwardScheme schemes[] = {
      compiler::BackwardScheme::ClangSp, compiler::BackwardScheme::Parts,
      compiler::BackwardScheme::Camouflage};
  const attacks::ReplayScenario scenarios[] = {
      attacks::ReplayScenario::SameFunctionSameSp,
      attacks::ReplayScenario::DiffFunctionSameSp,
      attacks::ReplayScenario::CrossThread64kStacks,
      attacks::ReplayScenario::DiffFunctionDiffSp,
  };

  // Draw the whole mutant stream up front (serially — the RNG is not
  // shared with workers), so the stream is a pure function of the seed.
  std::mt19937_64 rng(seed);
  std::vector<Mutant> mutants(n_mutants);
  for (Mutant& m : mutants) {
    if (rng() % 4 == 3) {
      m.replay = true;
      m.scheme = schemes[rng() % std::size(schemes)];
      m.scenario = scenarios[rng() % std::size(scenarios)];
    } else {
      m.attack = pool[rng() % pool.size()];
      m.config = configs[rng() % configs.size()];
    }
  }

  // ---- oracle: calibrate every drawn cell on a fresh-boot machine -------
  attacks::snapshot_mode() = false;
  std::vector<std::pair<std::string, std::string>> cells;
  for (const Mutant& m : mutants)
    if (!m.replay) cells.emplace_back(m.attack, m.config);
  // Ground-truth cells asserted below ride along even when the draw missed
  // them, so the oracle is never purely self-consistent.
  cells.emplace_back("rop-injection", "none");
  cells.emplace_back("rop-injection", "full");
  cells.emplace_back("key-extraction", "full");
  cells.emplace_back("rodata-tamper", "none");
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  const auto oracle_reports = s.fleet(cells.size(), [&](size_t i) {
    return *attacks::run_named_attack(cells[i].first, cells[i].second);
  });
  std::map<std::pair<std::string, std::string>, Outcome> oracle;
  for (size_t i = 0; i < cells.size(); ++i)
    oracle[cells[i]] = oracle_reports[i].outcome;

  const auto expect = [&](const char* attack, const char* config,
                          Outcome want) {
    const Outcome got = oracle.at({attack, config});
    if (got == want) return true;
    std::fprintf(stderr, "oracle violates §6.2: %s/%s is %s, expected %s\n",
                 attack, config, attacks::outcome_name(got),
                 attacks::outcome_name(want));
    return false;
  };
  bool oracle_ok = true;
  oracle_ok &= expect("rop-injection", "none", Outcome::Hijacked);
  oracle_ok &= expect("rop-injection", "full", Outcome::Detected);
  oracle_ok &= expect("key-extraction", "full", Outcome::Blocked);
  oracle_ok &= expect("rodata-tamper", "none", Outcome::Blocked);
  if (!oracle_ok) return 1;
  std::printf("fresh-boot oracle: %zu distinct (attack, config) cells, §6.2 "
              "ground truths hold\n",
              cells.size());

  // ---- mutants: the same scenarios through the snapshot path ------------
  bench::configure_snapshot_mode(s);
  const auto verdicts = s.fleet(n_mutants, [&](size_t i) {
    const Mutant& m = mutants[i];
    Verdict v;
    if (m.replay) {
      v.expected = attacks::replay_accepted(m.scheme, m.scenario) ? 1 : 0;
      v.actual = attacks::replay_accepted_on_cpu(m.scheme, m.scenario) ? 1 : 0;
    } else {
      v.expected = static_cast<int>(oracle.at({m.attack, m.config}));
      v.actual = static_cast<int>(
          attacks::run_named_attack(m.attack, m.config)->outcome);
    }
    v.ok = v.actual == v.expected;
    return v;
  });

  uint64_t class_count[3] = {};  // Hijacked / Detected / Blocked
  uint64_t replay_bypass = 0, replay_caught = 0, mismatches = 0;
  for (size_t i = 0; i < n_mutants; ++i) {
    const Mutant& m = mutants[i];
    const Verdict& v = verdicts[i];
    if (!v.ok) {
      ++mismatches;
      if (m.replay)
        std::printf("  MISMATCH replay %s/%s: cpu=%d model=%d\n",
                    attacks::replay_scenario_name(m.scenario),
                    m.scheme == compiler::BackwardScheme::Camouflage
                        ? "camouflage"
                        : "other",
                    v.actual, v.expected);
      else
        std::printf("  MISMATCH %s/%s: got %s, oracle says %s\n",
                    m.attack.c_str(), m.config.c_str(),
                    attacks::outcome_name(static_cast<Outcome>(v.actual)),
                    attacks::outcome_name(static_cast<Outcome>(v.expected)));
      continue;
    }
    if (m.replay) {
      (v.actual ? replay_bypass : replay_caught)++;
    } else {
      ++class_count[v.actual];
    }
  }

  std::printf("\n%zu seeded mutants (seed %llu): %llu hijacked, %llu "
              "detected, %llu blocked, %llu replay-bypass, %llu "
              "replay-caught, %llu verdict mismatches\n",
              n_mutants, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(class_count[0]),
              static_cast<unsigned long long>(class_count[1]),
              static_cast<unsigned long long>(class_count[2]),
              static_cast<unsigned long long>(replay_bypass),
              static_cast<unsigned long long>(replay_caught),
              static_cast<unsigned long long>(mismatches));

  // The class counts are a pure function of the seed — deterministic and
  // gated — and must be identical at any --jobs and any --snap value
  // (forked children are bit-identical to fresh boots by contract).
  const char* cfg = "fuzz";
  s.add(cfg, "mutants", static_cast<double>(n_mutants), "count");
  s.add(cfg, "hijacked", static_cast<double>(class_count[0]), "count");
  s.add(cfg, "detected", static_cast<double>(class_count[1]), "count");
  s.add(cfg, "blocked", static_cast<double>(class_count[2]), "count");
  s.add(cfg, "replay bypasses", static_cast<double>(replay_bypass), "count");
  s.add(cfg, "replay caught", static_cast<double>(replay_caught), "count");
  s.add(cfg, "verdict mismatches", static_cast<double>(mismatches), "count");
  bench::emit_snapshot_series(s);
  if (mismatches != 0) {
    std::fprintf(stderr, "bench_snapfuzz: %llu mutant(s) left their verdict "
                 "class\n", static_cast<unsigned long long>(mismatches));
    return 1;
  }
  const int rc = s.finish();
  return rc;
}
