// Substrate micro-benchmark: QARMA-64 cipher and PAC-computation throughput
// on the host (google-benchmark). The PAC hash is the hot primitive behind
// every PAuth instruction the simulator executes; this bench tracks its raw
// cost and the cost of a full PauthUnit sign/authenticate pair.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cpu/pauth.h"
#include "qarma/qarma64.h"

namespace {

using camo::cpu::PacKey;
using camo::cpu::PauthUnit;
using camo::qarma::Key128;
using camo::qarma::Qarma64;

void BM_Qarma64Encrypt(benchmark::State& state) {
  const Qarma64 cipher(static_cast<int>(state.range(0)));
  const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
  uint64_t p = 0xFB623599DA6E8127ull, t = 0x477D469DEC0B8762ull;
  for (auto _ : state) {
    p = cipher.encrypt(p, t, key);
    t += 0x9E3779B97F4A7C15ull;
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Qarma64Encrypt)->Arg(5)->Arg(7);

void BM_Qarma64RoundTrip(benchmark::State& state) {
  const Qarma64 cipher(5);
  const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
  uint64_t p = 0xFB623599DA6E8127ull;
  for (auto _ : state) {
    const uint64_t c = cipher.encrypt(p, 0x1234, key);
    p = cipher.decrypt(c, 0x1234, key);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Qarma64RoundTrip);

void BM_PacSign(benchmark::State& state) {
  camo::mem::VaLayout layout;
  const PauthUnit unit(layout);
  const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
  uint64_t ptr = 0xFFFF000000081000ull, mod = 1;
  for (auto _ : state) {
    const uint64_t s = unit.add_pac(ptr, mod++, key);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacSign);

void BM_PacSignAuth(benchmark::State& state) {
  camo::mem::VaLayout layout;
  const PauthUnit unit(layout);
  const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
  const uint64_t ptr = 0xFFFF000000081000ull;
  uint64_t mod = 1;
  for (auto _ : state) {
    const uint64_t s = unit.add_pac(ptr, mod, key);
    const auto a = unit.auth(s, mod, key, PacKey::DB);
    ++mod;
    benchmark::DoNotOptimize(a.ptr);
  }
}
BENCHMARK(BM_PacSignAuth);

}  // namespace

int main(int argc, char** argv) {
  // Session first: it strips --smoke/--json from argv so google-benchmark's
  // own flag parser never sees them.
  camo::bench::Session s(argc, argv, "Substrate",
                         "QARMA-64 / PAC host throughput",
                         "the PAC hash is the hot primitive behind every "
                         "simulated PAuth instruction");

  // The shared best-of-3 throughput helper (uniform informational "ops/s"
  // series, same shape as the guest benches' "insns/s" blocks);
  // google-benchmark below remains the precise harness.
  {
    const uint64_t iters = s.iters(1'000'000, 20'000);
    const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
    const Qarma64 cipher(5);
    uint64_t p = 0xFB623599DA6E8127ull;
    camo::bench::emit_host_throughput_series(
        s, "qarma64 r5 encrypt", iters, [&] {
          for (uint64_t i = 0; i < iters; ++i) {
            p = cipher.encrypt(p, 0x477D469DEC0B8762ull + i, key);
            benchmark::DoNotOptimize(p);
          }
        });

    camo::mem::VaLayout layout;
    const PauthUnit unit(layout);
    uint64_t signed_ptr = 0;
    camo::bench::emit_host_throughput_series(s, "pac sign", iters, [&] {
      for (uint64_t i = 0; i < iters; ++i) {
        signed_ptr = unit.add_pac(0xFFFF000000081000ull, i, key);
        benchmark::DoNotOptimize(signed_ptr);
      }
    });
    camo::bench::emit_host_throughput_series(s, "pac sign+auth", iters, [&] {
      for (uint64_t i = 0; i < iters; ++i) {
        const uint64_t sp = unit.add_pac(0xFFFF000000081000ull, i, key);
        const auto a = unit.auth(sp, i, key, PacKey::DB);
        benchmark::DoNotOptimize(a.ptr);
      }
    });
  }

  // The precise google-benchmark run is skipped under --smoke (its repeated
  // calibration runs dominate the smoke budget).
  if (!s.smoke()) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return s.finish();
}
