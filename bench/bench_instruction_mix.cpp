// §6.1.3 explanation, quantified: "The impact is due to a comparatively
// high rate of function calls to computation, as is visible in kernel
// system call implementations."
//
// This bench retires-instruction-profiles each workload under full
// protection and reports (a) the share of PAuth instructions executed and
// (b) the call rate (BL/BLR/BLRAB per 1k instructions) — showing that the
// overheads of Figures 3 and 4 track exactly these densities.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "kernel/workloads.h"

namespace {

using namespace camo;  // NOLINT
namespace wl = kernel::workloads;

uint64_t g_scale = 1;  // divisor under --smoke

struct Row {
  const char* name;
  std::vector<obj::Program> progs;
};

struct Mix {
  double pauth_pct;
  double calls_per_k;
  double rel_overhead;
};

Mix measure(std::vector<obj::Program> progs_full,
            std::vector<obj::Program> progs_none) {
  // Overhead: full vs none.
  const auto none = bench::run_workload(compiler::ProtectionConfig::none(),
                                        std::move(progs_none));
  // Instruction mix under full protection.
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  kernel::Machine m(cfg);
  for (auto& p : progs_full) m.add_user_program(std::move(p));
  m.boot();
  m.run();

  const uint64_t total = m.cpu().retired();
  const uint64_t pauth =
      m.cpu().count_ops_if([](isa::Op op) { return isa::is_pauth(op); });
  const uint64_t calls = m.cpu().op_count(isa::Op::BL) +
                         m.cpu().op_count(isa::Op::BLR) +
                         m.cpu().op_count(isa::Op::BLRAA) +
                         m.cpu().op_count(isa::Op::BLRAB);
  Mix mix;
  mix.pauth_pct = 100.0 * static_cast<double>(pauth) / static_cast<double>(total);
  mix.calls_per_k = 1000.0 * static_cast<double>(calls) / static_cast<double>(total);
  mix.rel_overhead =
      static_cast<double>(m.cpu().cycles()) / static_cast<double>(none.total);
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "Section 6.1.3", "instruction mix vs overhead",
      "syscall overhead is proportional to function-call density (and hence "
      "to the PAuth instructions instrumentation adds)");
  g_scale = s.smoke() ? 10 : 1;

  struct Work {
    const char* name;
    std::vector<obj::Program> (*make)();
  };
  const Work works[] = {
      {"null-syscall storm",
       [] {
         std::vector<obj::Program> v;
         v.push_back(wl::null_syscall(1000 / g_scale));
         return v;
       }},
      {"read loop (64B)",
       [] {
         std::vector<obj::Program> v;
         v.push_back(wl::read_file(500 / g_scale, 64, kernel::FileKind::Null));
         return v;
       }},
      {"JPEG resize (user compute)",
       [] {
         std::vector<obj::Program> v;
         v.push_back(wl::image_resize(40 / g_scale));
         return v;
       }},
      {"package build (balanced)",
       [] {
         std::vector<obj::Program> v;
         v.push_back(wl::package_build(20 / g_scale));
         return v;
       }},
      {"download (kernel copy)",
       [] {
         std::vector<obj::Program> v;
         v.push_back(wl::download(30 / g_scale));
         return v;
       }},
  };

  std::printf("%-30s %12s %14s %14s\n", "workload", "PAuth insn %",
              "calls / 1k insn", "overhead vs none");
  for (const auto& w : works) {
    const Mix m = measure(w.make(), w.make());
    std::printf("%-30s %11.2f%% %14.1f %13.3fx\n", w.name, m.pauth_pct,
                m.calls_per_k, m.rel_overhead);
    s.add("full", std::string(w.name) + ": PAuth insn share", m.pauth_pct,
          "%");
    s.add("full", std::string(w.name) + ": call density", m.calls_per_k,
          "calls/1k insn");
    s.add("full", std::string(w.name) + ": overhead", m.rel_overhead,
          "ratio", m.rel_overhead);
  }
  std::printf(
      "\nreading: rows with more calls per 1k instructions carry more PAuth "
      "instrumentation and show proportionally larger overhead — the "
      "paper's explanation for the Figure 3 / Figure 4 gap, measured.\n");

  // Host throughput under the three host engine modes (informational), on
  // the call-densest row — the same series fig3/fig4 emit.
  if (!bench::emit_throughput_series(
          s, "null-syscall storm", compiler::ProtectionConfig::full(), [] {
            std::vector<obj::Program> v;
            v.push_back(wl::null_syscall(8000 / g_scale));
            return v;
          }))
    return 1;
  return s.finish();
}
