// §6.2 Security evaluation: the attack/outcome matrix.
//
// Rows are concrete attacks mounted with the threat-model primitive (§3.1);
// columns are protection configurations. Expected shape:
//   * the unprotected kernel is hijacked by pointer injection,
//   * every PAuth-protected class of pointer detects injection,
//   * f_ops redirection is only caught when DFI protects data pointers
//     (forward-edge CFI alone is insufficient — §4.5),
//   * cross-object signature reuse is rejected (48-bit address modifier),
//   * key extraction and rodata tampering are blocked outright,
// plus the backward-edge replay matrix (§6.2.1/§7) separating the three
// modifier schemes.
#include <cstdio>
#include <functional>
#include <iterator>

#include "attacks/attacks.h"
#include "bench_snap_util.h"
#include "bench_util.h"

namespace {

using namespace camo;  // NOLINT
using attacks::AttackReport;
using attacks::Outcome;
using compiler::BackwardScheme;
using compiler::ProtectionConfig;

using AttackFn = AttackReport (*)(const ProtectionConfig&);

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(argc, argv, "Section 6.2",
                         "security evaluation matrix",
                         "PAuth detects pointer injection; modifiers bind "
                         "signatures to object/function/SP context; XOM and "
                         "stage-2 block key leaks and rodata tampering");

  struct Attack {
    const char* name;
    AttackFn fn;
  };
  const Attack attack_rows[] = {
      {"ROP: saved-LR overwrite (§2.1)", attacks::run_rop_injection},
      {"JOP: hook-pointer injection (§4.4)",
       attacks::run_forward_edge_injection},
      {"f_ops redirect to fake table (§4.5)", attacks::run_fops_redirect},
      {"f_ops cross-object reuse (§4.3)",
       attacks::run_fops_cross_object_swap},
      {"key extraction via reads (§6.2.2)", attacks::run_key_extraction},
      {"ops-table tamper in .rodata", attacks::run_rodata_tamper},
  };

  struct Cfg {
    const char* name;
    ProtectionConfig prot;
  };
  ProtectionConfig compat = ProtectionConfig::full();
  compat.compat_mode = true;
  const Cfg cfgs[] = {
      {"none", ProtectionConfig::none()},
      {"backward", ProtectionConfig::backward_only()},
      {"full", ProtectionConfig::full()},
      {"full+compat", compat},
  };

  // Under --smoke only the two extreme configurations run; the full matrix
  // is the default.
  const size_t ncfg = session.smoke() ? 3 : 4;

  // Every attack machine also collects a PA-keyed execution coverage map
  // (DESIGN.md §3g); the knob is process-wide and must be set before the
  // fleet spawns workers. So is --snap (§3j): one template boot per
  // distinct machine configuration, every repeat forked copy-on-write.
  attacks::collect_coverage() = true;
  bench::configure_snapshot_mode(session);

  // Every cell of the matrix — and every one-off attack below it — boots
  // its own machine; all are independent, so the whole sweep is computed
  // through the session's work-stealing fleet first and printed serially
  // afterwards in the original row-major order. stdout and the emitted
  // JSON are byte-identical to the serial code at any --jobs value.
  const size_t nrows = std::size(attack_rows);
  const auto reports = session.fleet(nrows * ncfg, [&](size_t t) {
    return attack_rows[t / ncfg].fn(cfgs[t % ncfg].prot);
  });

  ProtectionConfig zero = ProtectionConfig::full();
  zero.apple_zero_modifier = true;
  const std::function<AttackReport()> extra_runs[] = {
      [] { return attacks::run_bruteforce(ProtectionConfig::full(), 8, 16); },
      [] {
        return attacks::run_trapframe_escalation(ProtectionConfig::full(),
                                                 false);
      },
      [] {
        return attacks::run_trapframe_escalation(ProtectionConfig::full(),
                                                 true);
      },
      [&zero] { return attacks::run_fops_cross_object_swap(zero); },
      [] {
        return attacks::run_fops_cross_object_swap(ProtectionConfig::full());
      },
  };
  const auto extras =
      session.fleet(std::size(extra_runs), [&](size_t i) {
        return extra_runs[i]();
      });

  std::printf("%-38s", "attack \\ protection");
  for (size_t ci = 0; ci < ncfg; ++ci) std::printf(" %-12s", cfgs[ci].name);
  std::printf("\n%.*s\n", 96,
              "--------------------------------------------------------------"
              "--------------------------------------------------");
  for (size_t ri = 0; ri < nrows; ++ri) {
    const auto& a = attack_rows[ri];
    std::printf("%-38s", a.name);
    for (size_t ci = 0; ci < ncfg; ++ci) {
      const Outcome o = reports[ri * ncfg + ci].outcome;
      std::printf(" %-12s", attacks::outcome_name(o));
      session.add(cfgs[ci].name, a.name, static_cast<double>(o),
                  "outcome (0=hijacked 1=detected 2=blocked)");
    }
    std::printf("\n");
  }

  // Brute force (§5.4) under the default threshold.
  {
    const AttackReport& r = extras[0];
    std::printf("%-38s %s after %llu attempts (threshold 8, halt=0x%llx)\n",
                "PAC brute force (§5.4)", attacks::outcome_name(r.outcome),
                static_cast<unsigned long long>(r.attempts),
                static_cast<unsigned long long>(r.halt_code));
    session.add("full", "PAC brute force attempts",
                static_cast<double>(r.attempts), "tries");
  }

  // §8 extension: forged saved exception state (ERET-to-EL1 escalation).
  {
    const AttackReport& off = extras[1];
    const AttackReport& on = extras[2];
    std::printf("%-38s %s; with signed trapframe (§8 ext.): %s\n",
                "trapframe ELR/SPSR rewrite (§8)",
                attacks::outcome_name(off.outcome),
                attacks::outcome_name(on.outcome));
    session.add("full", "trapframe rewrite",
                static_cast<double>(off.outcome),
                "outcome (0=hijacked 1=detected 2=blocked)");
    session.add("full+signed-trapframe", "trapframe rewrite",
                static_cast<double>(on.outcome),
                "outcome (0=hijacked 1=detected 2=blocked)");
  }

  // Ablation: Apple-style zero modifiers (§7) lose object binding.
  {
    std::printf("%-38s %s (object-bound modifier: %s)\n",
                "cross-object reuse, zero modifier",
                attacks::outcome_name(extras[3].outcome),
                attacks::outcome_name(extras[4].outcome));
  }

  // Replay matrix.
  std::printf("\nbackward-edge replay acceptance (✓ = replay authenticates, "
              "i.e. scheme is bypassed):\n");
  std::printf("%-28s %-10s %-10s %-12s\n", "scenario", "clang-sp", "parts",
              "camouflage");
  const attacks::ReplayScenario scenarios[] = {
      attacks::ReplayScenario::SameFunctionSameSp,
      attacks::ReplayScenario::DiffFunctionSameSp,
      attacks::ReplayScenario::CrossThread64kStacks,
      attacks::ReplayScenario::DiffFunctionDiffSp,
  };
  const struct {
    const char* name;
    BackwardScheme scheme;
  } schemes[] = {{"clang-sp", BackwardScheme::ClangSp},
                 {"parts", BackwardScheme::Parts},
                 {"camouflage", BackwardScheme::Camouflage}};
  // The on-CPU replay checks each boot a machine; shard them like the
  // matrix (int, not bool: vector<bool> packs bits and concurrent writes
  // to neighbouring cells would race).
  const size_t nschemes = std::size(schemes);
  const auto cpu_accepts = session.fleet(
      std::size(scenarios) * nschemes, [&](size_t t) {
        return static_cast<int>(attacks::replay_accepted_on_cpu(
            schemes[t % nschemes].scheme, scenarios[t / nschemes]));
      });
  for (size_t si = 0; si < std::size(scenarios); ++si) {
    const auto sc = scenarios[si];
    std::printf("%-28s", attacks::replay_scenario_name(sc));
    for (size_t ki = 0; ki < nschemes; ++ki) {
      const auto& sch = schemes[ki];
      const bool host = attacks::replay_accepted(sch.scheme, sc);
      const bool cpu = cpu_accepts[si * nschemes + ki] != 0;
      std::printf(" %-10s", host == cpu ? (host ? "  BYPASS" : "  caught")
                                        : "MISMATCH");
      if (sch.scheme == BackwardScheme::Parts) std::printf("  ");
      session.add(sch.name,
                  std::string("replay: ") + attacks::replay_scenario_name(sc),
                  host == cpu ? (host ? 1.0 : 0.0) : -1.0,
                  "accepted (1=bypass 0=caught -1=model mismatch)");
    }
    std::printf("\n");
  }
  std::printf("\n(Camouflage is bypassed only by same-function/same-SP "
              "replay, which the paper acknowledges as residual: 'the "
              "function address does not completely prevent reuse'.)\n");

  // Execution coverage (§3g): merge each configuration's column of attack
  // runs in row order — deterministic at any --jobs — then fold the one-off
  // runs into the overall map. The cov.* series is informational
  // (camo-perfdiff never gates on it); --cov additionally writes the merged
  // camo-cov/v1 bundle that `camo-cov report` consumes.
  std::printf("\nexecution coverage per configuration (informational):\n");
  obs::CoverageMap all_cov;
  uint64_t cov_machines = 0;
  for (size_t ci = 0; ci < ncfg; ++ci) {
    obs::CoverageMap cfg_cov;
    for (size_t ri = 0; ri < nrows; ++ri) {
      const auto& cov = reports[ri * ncfg + ci].coverage;
      if (!cov) continue;
      cfg_cov.merge_from(*cov);
      ++cov_machines;
    }
    session.add_coverage(cfgs[ci].name, cfg_cov);
    all_cov.merge_from(cfg_cov);
  }
  for (const AttackReport& r : extras)
    if (r.coverage) {
      all_cov.merge_from(*r.coverage);
      ++cov_machines;
    }
  if (!session.cov_path().empty() &&
      !bench::Session::write_coverage_bundle(session.cov_path(), all_cov,
                                             "security-matrix", cov_machines))
    return 1;

  // --flight-rec: run the forged-return attack once more with flight-bundle
  // capture and write the camo-flight/v1 replay bundle — the producer side
  // of `camo-audit replay`, and what the Release CI uploads as an artifact.
  if (!session.flight_rec_path().empty()) {
    std::string bundle;
    const auto r = attacks::run_named_attack("rop-injection", "full", &bundle);
    if (!r || bundle.empty()) {
      std::fprintf(stderr, "flight-rec: rop-injection produced no bundle\n");
      return 1;
    }
    std::ofstream out(session.flight_rec_path());
    if (!out) {
      std::fprintf(stderr, "flight-rec: cannot write %s\n",
                   session.flight_rec_path().c_str());
      return 1;
    }
    out << bundle << "\n";
    std::printf("\n[flight bundle (rop-injection, full) -> %s]\n",
                session.flight_rec_path().c_str());
  }
  bench::emit_snapshot_series(session);
  return session.finish();
}
