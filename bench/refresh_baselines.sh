#!/usr/bin/env bash
# Regenerate the checked-in perf baselines (bench/baselines/*.json) that the
# `perf_gate` ctest label diffs fresh runs against with camo-perfdiff.
#
# Run after an *intentional* change to the cycle model, the instrumentation,
# or a workload — then review the camo-perfdiff output in the diff and
# commit the new baselines together with the change that explains them.
#
# Usage: bench/refresh_baselines.sh [build-dir]   (default: build)
#
# bench_qarma is skipped on purpose: it times host QARMA code with
# google-benchmark wall-clock, which is not reproducible across machines.
# Every other bench reports deterministic simulated cycles; --seed pins the
# one bench whose *sampling* (not timing) uses an RNG.
#
# Informational units ("insns/s" host throughput, wall-clock "s"/"ns"/"us"/
# "ms", "*-host") and the informational series families — "fleet."
# scheduler telemetry, "hist." histogram quantiles, "cov."/"div."
# execution-coverage and divergence counters (DESIGN.md §3g), and the
# "snap."/"imgcache." snapshot-fork and image-cache reuse counters
# (DESIGN.md §3j; they count host-side boot amortization, which varies
# with --snap and sweep shape, never guest results) — are
# recorded in the baselines for reference but are NEVER gated: camo-perfdiff
# prints them with the "info" status and excludes them from the
# regressed/missing/new counts, because they measure the host machine or
# diagnostic execution shape, not simulated guest performance.
#
# --jobs is pinned to 1: baselines must be byte-stable, and camo-perfdiff
# refuses to compare documents recorded at different --jobs values. A
# baseline accidentally recorded at --jobs 8 (e.g. via a stray CAMO_JOBS in
# the environment) would make every later --jobs 1 gate run fail.
#
# --cores is pinned to 1 for the stronger reason: guest core count changes
# the *simulated* results, and camo-perfdiff refuses cross-cores pairs
# outright. (bench_smp sweeps its own core counts internally regardless of
# the flag, so its baseline stays uniprocessor-headed and comparable.)
#
# Superblocks (DESIGN.md §3e) and the trace tier on top (§3i) stay at
# their defaults (both on): the engines are cycle-exact, so the gated
# series are identical either way — a gate run passing with them on is
# itself the parity check. The benches' informational throughput series
# cover fastpath-off / sb-off / sb-on / trace-on regardless. The engine
# choice rides in the camo-bench/v1 header ("sb", "trace") and
# camo-perfdiff refuses cross-engine pairs, so baselines recorded with a
# non-default engine make every later default gate run fail: only pass
# --sb off / --trace off here deliberately, and say so in the commit.
#
# --snap stays at its default (off) for a softer reason: the snapshot/fork
# path (DESIGN.md §3j) is guest-invisible, every gated series is identical
# either way, and camo-perfdiff reports a snap header mismatch without
# refusing the pair — so snap-off baselines gate snap-on runs fine. Off is
# still the honest default: the smoke gate then exercises the plain boot
# path, and the Release CI job covers --snap on separately.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir=${1:-build}
out_dir=bench/baselines
seed=2024

if [[ ! -d "$build_dir" ]]; then
  echo "error: build dir '$build_dir' not found; configure and build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 2
fi

benches=(
  bench_fig2_call_overhead
  bench_keyswitch
  bench_fig3_lmbench
  bench_fig4_userspace
  bench_tables_valayout
  bench_security_matrix
  bench_bruteforce
  bench_ablation_modifiers
  bench_census
  bench_instruction_mix
  bench_fleet
  bench_smp
  bench_snapfuzz
)

mkdir -p "$out_dir"
for b in "${benches[@]}"; do
  bin="$build_dir/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 2
  fi
  echo "== $b"
  "$bin" --smoke --seed "$seed" --jobs 1 --cores 1 --json "$out_dir/$b.json" > /dev/null
done

echo
echo "Baselines refreshed in $out_dir/. Check the gate is self-consistent:"
if [[ -x "$build_dir/tools/camo-perfdiff" ]]; then
  "$build_dir/tools/camo-perfdiff" --threshold 5 "$out_dir" "$out_dir"
else
  echo "  (camo-perfdiff not built; run ctest -L perf_gate instead)"
fi
