// Ablation: modifier-collision rates of the three backward-edge modifier
// constructions over realistic kernel call contexts — the quantitative
// backing for §4.2's design choice (32-bit SP ‖ 32-bit function address)
// and §7's critique of PARTS' 16-bit SP window.
//
// A "collision" is a pair of distinct (function, SP, thread) contexts whose
// modifiers coincide: any signed return address from one context replays
// into the other. We sample contexts from the kernel's actual stack layout
// (16 KiB stacks, tops congruent modulo 2^16 across threads).
#include <cstdio>
#include <iterator>
#include <unordered_map>
#include <vector>

#include "attacks/attacks.h"
#include "bench_util.h"
#include "compiler/instrument.h"
#include "core/modifier.h"
#include "support/rng.h"

namespace {

using namespace camo;  // NOLINT
using compiler::BackwardScheme;

struct Context {
  uint64_t fn;
  uint64_t sp;
  int thread;
};

uint64_t modifier(BackwardScheme s, const Context& c) {
  switch (s) {
    case BackwardScheme::ClangSp:
      return core::clang_return_modifier(c.sp);
    case BackwardScheme::Parts:
      // LTO id stands in via the function address (unique per function).
      return core::parts_return_modifier(c.sp, c.fn * 0x9E3779B97F4A7C15ull >> 16);
    case BackwardScheme::Camouflage:
      return core::camouflage_return_modifier(c.sp, c.fn);
    case BackwardScheme::None:
      return 0;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      argc, argv, "Ablation", "modifier replay-collision rates (§4.2, §7)",
      "SP-only repeats within/between calls; PARTS' 16-bit SP repeats "
      "across 64 KiB-strided thread stacks; Camouflage binds SP32 + fn32");

  // Sample contexts: 16 threads, stacks 64 KiB apart; 64 kernel functions;
  // call depths multiple of 16 bytes within a 16 KiB stack.
  Xoshiro256 rng(session.seed(2024));
  std::vector<Context> contexts;
  const uint64_t stack_base = 0xFFFF000000400000ull;
  const uint64_t text_base = 0xFFFF000000082000ull;
  for (int t = 0; t < 16; ++t) {
    const uint64_t top = stack_base + static_cast<uint64_t>(t) * 0x10000 + 0x4000;
    for (int i = 0; i < 256; ++i) {
      Context c;
      c.thread = t;
      c.fn = text_base + (rng.next_below(64)) * 0x140;
      c.sp = top - 16 * (1 + rng.next_below(64));
      contexts.push_back(c);
    }
  }

  std::printf("%zu sampled (function, SP, thread) contexts\n\n",
              contexts.size());
  std::printf("%-14s %16s %18s %20s\n", "scheme", "distinct mods",
              "colliding pairs", "cross-thread pairs");
  const BackwardScheme schemes[] = {BackwardScheme::ClangSp,
                                    BackwardScheme::Parts,
                                    BackwardScheme::Camouflage};
  struct SchemeCount {
    size_t distinct = 0;
    uint64_t pairs = 0;
    uint64_t cross = 0;
  };
  // The per-scheme collision counts are independent scans over the shared
  // immutable context sample: compute through the session fleet, print in
  // scheme order (byte-identical to the serial loop at any --jobs value).
  const auto counts = session.fleet(std::size(schemes), [&](size_t si) {
    std::unordered_map<uint64_t, std::vector<const Context*>> buckets;
    for (const auto& c : contexts) buckets[modifier(schemes[si], c)].push_back(&c);
    SchemeCount out;
    out.distinct = buckets.size();
    for (const auto& [mod, v] : buckets) {
      for (size_t i = 0; i < v.size(); ++i)
        for (size_t j = i + 1; j < v.size(); ++j) {
          // only count pairs from *different* contexts
          if (v[i]->fn == v[j]->fn && v[i]->sp == v[j]->sp) continue;
          ++out.pairs;
          out.cross += v[i]->thread != v[j]->thread;
        }
    }
    return out;
  });
  for (size_t si = 0; si < std::size(schemes); ++si) {
    const SchemeCount& n = counts[si];
    std::printf("%-14s %16zu %18llu %20llu\n",
                compiler::backward_scheme_name(schemes[si]), n.distinct,
                static_cast<unsigned long long>(n.pairs),
                static_cast<unsigned long long>(n.cross));
    const char* cfg = compiler::backward_scheme_name(schemes[si]);
    session.add(cfg, "distinct modifiers",
                static_cast<double>(n.distinct), "modifiers");
    session.add(cfg, "colliding pairs", static_cast<double>(n.pairs),
                "pairs");
    session.add(cfg, "cross-thread colliding pairs",
                static_cast<double>(n.cross), "pairs");
  }

  std::printf(
      "\ncombined-branch ablation (§4.3): a protected indirect call is "
      "AUTIB+BLR (%u cycles, 2 instructions) vs the fused BLRAB (%u cycles, "
      "1 instruction) — equal under the 4-cycle PA-analogue, but the fused "
      "form halves code size and fetch slots; the compiler-attribute future "
      "work would let every call site use it.\n",
      4u + 2u, 6u);

  // Zero-modifier (Apple-style) ablation: every context shares one modifier.
  std::printf(
      "\nzero-modifier ablation (§7): all %zu contexts collapse onto a "
      "single modifier — any signed pointer replays anywhere; the live "
      "cross-object swap attack confirms it (see bench_security_matrix).\n",
      contexts.size());
  return session.finish();
}
