// Multi-tenant fleet execution (DESIGN.md §3d).
//
// N independent tenant machines — three tenant profiles modelled on the
// Figure 4 workload mixes (kernel-heavy download, balanced package build,
// user-heavy image resize) at varying load multipliers — run under full
// protection, sharded across host threads by par::run_fleet, booting from a
// shared kernel::ImageCache.
//
// The simulated results (per-profile guest cycles, instructions, the image
// cache hit/miss split) are bit-identical at any --jobs value and are what
// the perf gate checks. The fleet.* series (steals, imbalance, aggregate
// guest-insns per host-second) are host-scheduling artifacts, published as
// informational only — camo-perfdiff never gates them.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/image_cache.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "par/fleet.h"

int main(int argc, char** argv) {
  using namespace camo;  // NOLINT
  bench::Session s(
      argc, argv, "Fleet", "multi-tenant fleet execution (DESIGN.md §3d)",
      "independent guests shard across host threads; simulated results are "
      "bit-identical at any --jobs value, only wall-clock moves");

  const uint64_t seed = s.seed(2024);
  static constexpr const char* kProfiles[] = {"download", "build", "media"};
  static constexpr size_t kNumProfiles = 3;
  const size_t machines = s.smoke() ? 6 : 24;
  const uint64_t chunks = s.iters(200, 40);  // download
  const uint64_t units = s.iters(30, 6);     // package build
  const uint64_t rows = s.iters(40, 8);      // image resize

  // All tenants share the boot seed and kernel configuration, and the user
  // program text is not part of the kernel image (only the task table is),
  // so the whole fleet shares one cache key: the kernel is built, verified
  // and signed exactly once, every other machine installs the shared image.
  auto cache = std::make_shared<kernel::ImageCache>();
  const auto factory = [&](size_t i) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.obs.enabled = true;
    cfg.seed = seed;
    cfg.machine_id = static_cast<unsigned>(i);
    cfg.image_cache = cache;
    auto m = std::make_unique<kernel::Machine>(cfg);
    const uint64_t mult = 1 + (i / kNumProfiles) % 3;  // 1x..3x tenant load
    switch (i % kNumProfiles) {
      case 0:
        m->add_user_program(kernel::workloads::download(chunks * mult));
        break;
      case 1:
        m->add_user_program(kernel::workloads::package_build(units * mult));
        break;
      default:
        m->add_user_program(kernel::workloads::image_resize(rows * mult));
        break;
    }
    return m;
  };

  struct TenantRun {
    uint64_t cycles = 0;
    uint64_t instret = 0;
    bool halted = false;
  };
  auto fleet = par::run_fleet(
      s.pool(), machines, factory, [](size_t, kernel::Machine& m) {
        m.boot();
        m.run(400'000'000);
        TenantRun r;
        r.cycles = m.cpu().cycles();
        r.instret = m.cpu().retired();
        r.halted = m.halted();
        return r;
      });

  std::printf("%zu tenant machines, %u host job(s), shared image cache\n\n",
              machines, s.jobs());
  std::printf("  %8s %10s %6s %14s %14s %8s\n", "tenant", "profile", "load",
              "guest cycles", "instret", "halted");
  uint64_t profile_cycles[kNumProfiles] = {};
  uint64_t profile_instret[kNumProfiles] = {};
  bool all_halted = true;
  for (size_t i = 0; i < machines; ++i) {
    const TenantRun& r = fleet.results[i];
    std::printf("  %8zu %10s %5llux %14llu %14llu %8s\n", i,
                kProfiles[i % kNumProfiles],
                static_cast<unsigned long long>(1 + (i / kNumProfiles) % 3),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.instret),
                r.halted ? "yes" : "NO");
    profile_cycles[i % kNumProfiles] += r.cycles;
    profile_instret[i % kNumProfiles] += r.instret;
    all_halted &= r.halted;
  }
  if (!all_halted) {
    std::fprintf(stderr, "bench_fleet: a tenant failed to halt\n");
    return 1;
  }

  std::printf("\nper-profile totals (deterministic, gated):\n");
  for (size_t p = 0; p < kNumProfiles; ++p) {
    std::printf("  %10s %14llu cycles %14llu insns\n", kProfiles[p],
                static_cast<unsigned long long>(profile_cycles[p]),
                static_cast<unsigned long long>(profile_instret[p]));
    s.add(kProfiles[p], "guest cycles",
          static_cast<double>(profile_cycles[p]), "cycles");
    s.add(kProfiles[p], "guest instructions",
          static_cast<double>(profile_instret[p]), "insns");
  }

  // Image-cache reuse from the merged registry: every machine publishes a
  // per-boot imgcache.{hits,misses} counter (kernel/machine.cpp) and the
  // fleet merge sums them, so the totals equal ImageCache::stats() without
  // any side-channel plumbing from the cache object itself. The imgcache.*
  // family is informational to camo-perfdiff, like fleet.*.
  const double img_misses = fleet.metrics.counter("imgcache.misses").value();
  const double img_hits = fleet.metrics.counter("imgcache.hits").value();
  std::printf("\nimage cache: %.0f built, %.0f reused (%zu distinct keys)\n",
              img_misses, img_hits, cache->size());
  s.add("fleet", "imgcache.misses", img_misses, "images");
  s.add("fleet", "imgcache.hits", img_hits, "images");

  // Host-side scheduler telemetry: informational, never gated (fleet.*).
  const par::FleetStats& fs = fleet.stats;
  std::printf(
      "scheduler: steals=%llu imbalance=%.2f aggregate %.2fM guest "
      "insns/host-s\n",
      static_cast<unsigned long long>(fs.steals), fs.imbalance,
      fs.throughput() / 1e6);
  s.add("fleet", "fleet.machines", static_cast<double>(fs.machines),
        "machines");
  s.add("fleet", "fleet.steals", static_cast<double>(fs.steals), "steals");
  s.add("fleet", "fleet.imbalance", fs.imbalance, "ratio");
  s.add("fleet", "fleet.throughput", fs.throughput(), "insns/s");
  // Per-task host duration distribution and the merged (deterministic)
  // guest-side latency histograms (DESIGN.md §3f); informational hist.*
  // series like the rest of the block.
  std::printf("distributions (informational):\n");
  s.add_histogram("fleet", "task", fs.task_us, "us");
  if (const obs::Histogram* h =
          fleet.metrics.find_histogram("pauth.sign_to_auth.cycles"))
    s.add_histogram("fleet", "pauth.sign_to_auth", *h, "cycles");
  if (const obs::Histogram* h =
          fleet.metrics.find_histogram("key.switch.cycles"))
    s.add_histogram("fleet", "key.switch", *h, "cycles");
  std::printf("merged audit stream: %zu events (bit-identical at any "
              "--jobs)\n",
              fleet.audit.size());

  // The merged registry carries every tenant's namespaced throughput gauge
  // plus the recomputed aggregate — the gauge-collision regression this
  // checks is tested in test_obs as well.
  std::printf("merged registry: %zu trace events, aggregate gauge %.0f\n",
              fleet.trace.size(),
              fleet.metrics.gauge("host.throughput").value());
  return s.finish();
}
