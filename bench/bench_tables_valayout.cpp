// Tables 1 and 2 (Appendix A): VMSAv8 address ranges and AArch64 pointer
// layouts on Linux, regenerated from the mem::VaLayout model, plus the PAC
// widths they imply (§5.4 / Appendix B).
#include <cstdio>

#include "bench_util.h"
#include "mem/valayout.h"

int main(int argc, char** argv) {
  using camo::mem::VaLayout;
  camo::bench::Session s(
      argc, argv, "Tables 1 & 2", "VMSAv8 address ranges and pointer layout",
      "bit 55 selects user/kernel half; with 48-bit VAs and TBI for user "
      "space only, PAC space is 7 bits (user) / 15 bits (kernel)");

  VaLayout def;
  std::printf("%s\n", def.render_table1().c_str());
  std::printf("%s\n", def.render_table2().c_str());

  std::printf("PAC width by VA configuration (Appendix B: 'PACs can have up "
              "to 31 bits'):\n");
  std::printf("  %8s %10s %12s %12s\n", "va_bits", "tbi(kern)", "kernel PAC",
              "user PAC");
  for (const unsigned va_bits : {32u, 39u, 42u, 48u, 52u}) {
    VaLayout l;
    l.va_bits = va_bits;
    const unsigned kern = l.pac_width(uint64_t{1} << 55);
    const unsigned user = l.pac_width(0);
    std::printf("  %8u %10s %12u %12u\n", va_bits, "off", kern, user);
    const std::string cfg = "va" + std::to_string(va_bits);
    s.add(cfg, "kernel PAC width", kern, "bits");
    s.add(cfg, "user PAC width", user, "bits");
  }

  // Shared-helper throughput series (the measured loop is pure host code —
  // no Machine — so this bench uses the host-side sibling of
  // emit_throughput_series like bench_qarma does).
  constexpr uint64_t kOps = 2'000'000;
  volatile unsigned sink = 0;
  camo::bench::emit_host_throughput_series(s, "pac_width", kOps, [&] {
    VaLayout l;
    for (uint64_t i = 0; i < kOps; ++i) {
      l.va_bits = 32 + (i % 21);
      sink = sink + l.pac_width((i & 1) ? uint64_t{1} << 55 : 0);
    }
  });
  return s.finish();
}
