// Shared --snap plumbing for the attack-driven benches (DESIGN.md §3j).
//
// A bench that runs attacks:: scenarios opts into snapshot/fork machine
// reuse with configure_snapshot_mode(session) before its sweep: under
// --snap on every attack machine shares one prepared-kernel ImageCache and
// one post-boot SnapshotCache — the first machine per boot signature boots
// a template, every later identical machine forks it copy-on-write.
// Guest-visible results (fingerprint, trace bytes, audit stream) are
// bit-identical either way, so the bench's stdout and every gated series
// stay byte-identical across --snap values; only host boot cost moves.
//
// emit_snapshot_series(session) appends the informational snap.* and
// imgcache.* telemetry (camo-perfdiff never gates either family) and is a
// no-op under --snap off, keeping snap-off artifacts byte-identical to
// recordings that predate the flag.
#pragma once

#include <cstdio>

#include "attacks/attacks.h"
#include "bench_util.h"

namespace camo::bench {

/// Apply the session's --snap choice to the attack framework. Call before
/// any fleet worker spawns (the knob is process-wide and unsynchronized,
/// like attacks::collect_coverage()).
inline void configure_snapshot_mode(Session& s) {
  attacks::snapshot_mode() = s.snap();
  if (s.snap()) attacks::reset_snapshot_stats();
}

/// Print and record the snapshot/fork telemetry of the sweep that just ran.
/// No-op under --snap off.
inline void emit_snapshot_series(Session& s) {
  if (!s.snap()) return;
  const attacks::SnapStats st = attacks::snapshot_stats();
  std::printf("\nsnapshot reuse (--snap on, informational): %llu machines, "
              "%llu forked, %llu template boot(s), %llu kernel image "
              "build(s), %llu reuse(s)\n",
              static_cast<unsigned long long>(st.machines),
              static_cast<unsigned long long>(st.forks),
              static_cast<unsigned long long>(st.template_boots),
              static_cast<unsigned long long>(st.imgcache_misses),
              static_cast<unsigned long long>(st.imgcache_hits));
  std::printf("  CoW pages: %llu privatized, %llu still shared "
              "(sums over machines)\n",
              static_cast<unsigned long long>(st.cow_pages),
              static_cast<unsigned long long>(st.shared_pages));
  s.add("snap", "snap.machines", static_cast<double>(st.machines), "count");
  s.add("snap", "snap.forks", static_cast<double>(st.forks), "count");
  s.add("snap", "snap.template_boots",
        static_cast<double>(st.template_boots), "count");
  s.add("snap", "snap.cow_pages", static_cast<double>(st.cow_pages),
        "pages");
  s.add("snap", "snap.shared_pages", static_cast<double>(st.shared_pages),
        "pages");
  s.add("snap", "imgcache.hits", static_cast<double>(st.imgcache_hits),
        "count");
  s.add("snap", "imgcache.misses", static_cast<double>(st.imgcache_misses),
        "count");
  s.add_histogram("snap", "snap.cow_pages", st.cow_hist, "pages");
}

}  // namespace camo::bench
