// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures (see DESIGN.md §4 for the experiment index).
//
// Timing is reported in *simulated cycles* from the CPU's deterministic
// PA-analogue cycle model (§6.1), optionally converted to nanoseconds at the
// Raspberry Pi 3's 1.2 GHz clock the paper measured on. Absolute numbers are
// not comparable with the paper's testbed; the shape (ordering, ratios,
// where overhead concentrates) is what each bench validates.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/machine.h"

namespace camo::bench {

inline constexpr double kClockGhz = 1.2;  ///< RPi3 A53 clock used in §6.1

inline double to_ns(double cycles) { return cycles / kClockGhz; }

/// The three configurations of Figures 3 and 4: no protection,
/// backward-edge CFI only, and full protection (backward + forward + DFI).
struct NamedConfig {
  const char* name;
  compiler::ProtectionConfig prot;
};

inline std::vector<NamedConfig> figure_configs() {
  return {
      {"none", compiler::ProtectionConfig::none()},
      {"backward", compiler::ProtectionConfig::backward_only()},
      {"full", compiler::ProtectionConfig::full()},
  };
}

/// Result of one measured guest run.
struct RunCycles {
  uint64_t total = 0;       ///< boot to halt
  uint64_t workload = 0;    ///< first EL0 entry to halt
  uint64_t halt_code = 0;
};

/// Build a machine with `prot`, add the given user programs, run to halt and
/// report cycles. The workload window starts when EL0 first executes.
inline RunCycles run_workload(const compiler::ProtectionConfig& prot,
                              std::vector<obj::Program> programs,
                              uint64_t max_steps = 400'000'000) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = prot;
  cfg.kernel.log_pac_failures = false;
  kernel::Machine m(cfg);
  for (auto& p : programs) m.add_user_program(std::move(p));
  m.boot();
  uint64_t start = 0;
  m.cpu().add_breakpoint(kernel::kUserBase, [&](cpu::Cpu& c) {
    if (start == 0) start = c.cycles();
  });
  m.run(max_steps);
  RunCycles r;
  r.total = m.cpu().cycles();
  r.workload = start == 0 ? r.total : r.total - start;
  r.halt_code = m.halted() ? m.halt_code() : ~uint64_t{0};
  return r;
}

inline void print_header(const char* id, const char* title,
                         const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

}  // namespace camo::bench
