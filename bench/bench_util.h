// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures (see DESIGN.md §4 for the experiment index).
//
// Timing is reported in *simulated cycles* from the CPU's deterministic
// PA-analogue cycle model (§6.1), optionally converted to nanoseconds at the
// Raspberry Pi 3's 1.2 GHz clock the paper measured on. Absolute numbers are
// not comparable with the paper's testbed; the shape (ordering, ratios,
// where overhead concentrates) is what each bench validates.
//
// Every bench binary drives a bench::Session, which
//   * prints the figure header,
//   * parses the shared flags (--json <path>, --smoke, --trace <path>) and
//     compacts them out of argv so binaries with their own flag parsing
//     (bench_qarma) still work,
//   * collects every reported measurement as a (config, benchmark, value,
//     unit[, relative]) series point, and
//   * on finish() writes the machine-readable BENCH JSON document
//     (schema "camo-bench/v1"), re-parses it and validates the schema —
//     a malformed or empty series makes the binary exit non-zero, which is
//     what the ctest bench_smoke targets check.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/machine.h"
#include "obs/json.h"

namespace camo::bench {

inline constexpr double kClockGhz = 1.2;  ///< RPi3 A53 clock used in §6.1

inline double to_ns(double cycles) { return cycles / kClockGhz; }

/// The three configurations of Figures 3 and 4: no protection,
/// backward-edge CFI only, and full protection (backward + forward + DFI).
struct NamedConfig {
  const char* name;
  compiler::ProtectionConfig prot;
};

inline std::vector<NamedConfig> figure_configs() {
  return {
      {"none", compiler::ProtectionConfig::none()},
      {"backward", compiler::ProtectionConfig::backward_only()},
      {"full", compiler::ProtectionConfig::full()},
  };
}

/// Result of one measured guest run.
struct RunCycles {
  uint64_t total = 0;       ///< boot to halt
  uint64_t workload = 0;    ///< first EL0 entry to halt
  uint64_t halt_code = 0;
  // Populated only when run with `collect = true`:
  std::string trace_json;    ///< Chrome trace_event JSON of the run
  std::string flat_profile;  ///< per-symbol cycle profile (text)
  uint64_t profile_cycles = 0;  ///< profiler total (== total by invariant)
};

/// Build a machine with `prot`, add the given user programs, run to halt and
/// report cycles. The workload window starts when EL0 first executes. With
/// `collect`, the machine runs with the obs collector attached and the
/// result carries the Chrome trace and the flat cycle profile.
inline RunCycles run_workload(const compiler::ProtectionConfig& prot,
                              std::vector<obj::Program> programs,
                              uint64_t max_steps = 400'000'000,
                              bool collect = false) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = prot;
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = collect;
  kernel::Machine m(cfg);
  for (auto& p : programs) m.add_user_program(std::move(p));
  m.boot();
  uint64_t start = 0;
  m.cpu().add_breakpoint(kernel::kUserBase, [&](cpu::Cpu& c) {
    if (start == 0) start = c.cycles();
  });
  m.run(max_steps);
  RunCycles r;
  r.total = m.cpu().cycles();
  r.workload = start == 0 ? r.total : r.total - start;
  r.halt_code = m.halted() ? m.halt_code() : ~uint64_t{0};
  if (obs::Collector* st = m.stats()) {
    r.trace_json = st->chrome_trace_json();
    r.flat_profile = st->flat_profile();
    r.profile_cycles = st->profiler().total_cycles();
  }
  return r;
}

/// One measurement in the emitted series.
struct SeriesPoint {
  std::string config;     ///< protection/config axis ("none", "full", ...)
  std::string benchmark;  ///< benchmark axis ("null syscall", ...)
  double value = 0;
  std::string unit;  ///< "cycles", "ns", "cycles/op", "ratio", ...
  std::optional<double> relative;  ///< vs the baseline config, when meaningful
};

/// Validate a parsed BENCH JSON document against the camo-bench/v1 schema.
/// Returns an empty string when valid, else a description of the problem.
inline std::string validate_bench_json(const obs::json::Value& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const auto* schema = doc.get("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "camo-bench/v1")
    return "missing or wrong \"schema\" (want \"camo-bench/v1\")";
  for (const char* key : {"bench", "title"}) {
    const auto* v = doc.get(key);
    if (!v || !v->is_string() || v->as_string().empty())
      return std::string("missing string field \"") + key + "\"";
  }
  const auto* smoke = doc.get("smoke");
  if (!smoke || !smoke->is_bool()) return "missing bool field \"smoke\"";
  const auto* series = doc.get("series");
  if (!series || !series->is_array()) return "missing \"series\" array";
  if (series->size() == 0) return "empty series";
  for (size_t i = 0; i < series->size(); ++i) {
    const auto* p = series->at(i);
    const std::string at = "series[" + std::to_string(i) + "]";
    if (!p->is_object()) return at + " is not an object";
    for (const char* key : {"config", "benchmark", "unit"}) {
      const auto* v = p->get(key);
      if (!v || !v->is_string())
        return at + " missing string field \"" + key + "\"";
    }
    const auto* value = p->get("value");
    if (!value || !value->is_number())
      return at + " missing number field \"value\"";
    const auto* rel = p->get("relative");
    if (rel && !rel->is_number()) return at + " \"relative\" is not a number";
  }
  return "";
}

/// Per-binary bench driver; see the header comment.
class Session {
 public:
  Session(int& argc, char** argv, std::string bench_id, std::string title,
          std::string paper_claim)
      : bench_id_(std::move(bench_id)), title_(std::move(title)) {
    parse_flags(argc, argv);
    std::printf(
        "\n================================================================\n");
    std::printf("%s — %s%s\n", bench_id_.c_str(), title_.c_str(),
                smoke_ ? "  [smoke]" : "");
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf(
        "================================================================\n");
  }

  bool smoke() const { return smoke_; }
  /// Iteration-count helper: the full count normally, the reduced count
  /// under --smoke (ctest wants the schema checked, not the statistics).
  uint64_t iters(uint64_t full, uint64_t reduced) const {
    return smoke_ ? reduced : full;
  }
  const std::string& json_path() const { return json_path_; }
  const std::string& trace_path() const { return trace_path_; }

  void add(std::string config, std::string benchmark, double value,
           std::string unit,
           std::optional<double> relative = std::nullopt) {
    series_.push_back({std::move(config), std::move(benchmark), value,
                       std::move(unit), relative});
  }

  /// Write the side artifacts and return the process exit code: non-zero if
  /// no measurements were recorded or the emitted JSON fails validation.
  int finish() {
    if (series_.empty()) {
      std::fprintf(stderr, "%s: no measurements recorded\n",
                   bench_id_.c_str());
      return 1;
    }
    if (json_path_.empty()) return 0;

    obs::json::Value doc = obs::json::Value::object();
    doc.set("schema", obs::json::Value("camo-bench/v1"));
    doc.set("bench", obs::json::Value(bench_id_));
    doc.set("title", obs::json::Value(title_));
    doc.set("smoke", obs::json::Value(smoke_));
    obs::json::Value series = obs::json::Value::array();
    for (const SeriesPoint& p : series_) {
      obs::json::Value pt = obs::json::Value::object();
      pt.set("config", obs::json::Value(p.config));
      pt.set("benchmark", obs::json::Value(p.benchmark));
      pt.set("value", obs::json::Value(p.value));
      pt.set("unit", obs::json::Value(p.unit));
      if (p.relative) pt.set("relative", obs::json::Value(*p.relative));
      series.push(std::move(pt));
    }
    doc.set("series", std::move(series));

    {
      std::ofstream out(json_path_);
      if (!out) {
        std::fprintf(stderr, "%s: cannot write %s\n", bench_id_.c_str(),
                     json_path_.c_str());
        return 1;
      }
      out << doc.dump(2) << "\n";
    }

    // Self-check: re-read the artifact and validate the schema, so a broken
    // writer fails the bench (and the ctest smoke target) immediately.
    std::ifstream in(json_path_);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto parsed = obs::json::Value::parse(text);
    if (!parsed) {
      std::fprintf(stderr, "%s: emitted JSON does not parse\n",
                   bench_id_.c_str());
      return 1;
    }
    const std::string err = validate_bench_json(*parsed);
    if (!err.empty()) {
      std::fprintf(stderr, "%s: emitted JSON fails schema check: %s\n",
                   bench_id_.c_str(), err.c_str());
      return 1;
    }
    std::printf("\n[%zu series points -> %s]\n", series_.size(),
                json_path_.c_str());
    return 0;
  }

 private:
  void parse_flags(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto take_value = [&](const char* flag,
                                  std::string& dst) -> bool {
        const std::string eq = std::string(flag) + "=";
        if (arg == flag && i + 1 < argc) {
          dst = argv[++i];
          return true;
        }
        if (arg.rfind(eq, 0) == 0) {
          dst = arg.substr(eq.size());
          return true;
        }
        return false;
      };
      if (arg == "--smoke") {
        smoke_ = true;
        continue;
      }
      if (arg == "--json" || arg == "--trace") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s requires a path\n", arg.c_str());
          std::exit(2);
        }
      }
      if (take_value("--json", json_path_)) continue;
      if (take_value("--trace", trace_path_)) continue;
      argv[out++] = argv[i];  // not ours: keep for the binary's own parser
    }
    argc = out;
    argv[argc] = nullptr;
  }

  std::string bench_id_, title_;
  std::string json_path_, trace_path_;
  bool smoke_ = false;
  std::vector<SeriesPoint> series_;
};

}  // namespace camo::bench
