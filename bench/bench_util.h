// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures (see DESIGN.md §4 for the experiment index).
//
// Timing is reported in *simulated cycles* from the CPU's deterministic
// PA-analogue cycle model (§6.1), optionally converted to nanoseconds at the
// Raspberry Pi 3's 1.2 GHz clock the paper measured on. Absolute numbers are
// not comparable with the paper's testbed; the shape (ordering, ratios,
// where overhead concentrates) is what each bench validates.
//
// Every bench binary drives a bench::Session, which
//   * prints the figure header,
//   * parses the shared flags (--json <path>, --smoke, --trace on|off|<path>,
//     --folded <path>, --seed <u64>, --jobs <n>, --sb on|off, --cov <path>,
//     --snap on|off)
//     and compacts them out of argv so
//     binaries with their own flag parsing (bench_qarma) still work; a
//     value-taking flag with a missing or malformed value is a hard error
//     (exit 2), never silently dropped,
//   * collects every reported measurement as a (config, benchmark, value,
//     unit[, relative]) series point, and
//   * on finish() writes the machine-readable BENCH JSON document
//     (schema "camo-bench/v1", see obs/bench_schema.h), re-parses it and
//     validates the schema — a malformed or empty series makes the binary
//     exit non-zero, which is what the ctest bench_smoke targets check.
//     The emitted document records the RNG seed when the bench used one, so
//     a baseline recording (bench/baselines/) is reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/machine.h"
#include "obs/bench_schema.h"
#include "obs/coverage.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "par/pool.h"

namespace camo::bench {

inline constexpr double kClockGhz = 1.2;  ///< RPi3 A53 clock used in §6.1

inline double to_ns(double cycles) { return cycles / kClockGhz; }

/// The three configurations of Figures 3 and 4: no protection,
/// backward-edge CFI only, and full protection (backward + forward + DFI).
struct NamedConfig {
  const char* name;
  compiler::ProtectionConfig prot;
};

inline std::vector<NamedConfig> figure_configs() {
  return {
      {"none", compiler::ProtectionConfig::none()},
      {"backward", compiler::ProtectionConfig::backward_only()},
      {"full", compiler::ProtectionConfig::full()},
  };
}

/// Result of one measured guest run.
struct RunCycles {
  uint64_t total = 0;       ///< boot to halt
  uint64_t workload = 0;    ///< first EL0 entry to halt
  uint64_t halt_code = 0;
  uint64_t retired = 0;      ///< guest instructions retired
  double host_seconds = 0;   ///< host wall clock inside the CPU loop
  /// Guest instructions per host second (informational; host-dependent).
  double throughput() const {
    return host_seconds > 0 ? static_cast<double>(retired) / host_seconds : 0;
  }
  // Populated only when run with `collect = true`:
  std::string trace_json;    ///< Chrome trace_event JSON of the run
  std::string flat_profile;  ///< per-symbol cycle profile (text)
  std::string folded;        ///< folded-stack call-graph profile
  uint64_t profile_cycles = 0;    ///< flat-profiler total (== total)
  uint64_t callgraph_cycles = 0;  ///< call-graph total (== total)
  obs::Histogram sign_to_auth;    ///< pauth.sign_to_auth.cycles (guest)
  obs::Histogram key_switch;      ///< key.switch.cycles (guest)
  /// Superblock dispatch run lengths — host execution-strategy shape, empty
  /// when the engine is off (add_histogram skips empty histograms).
  obs::Histogram sb_run_length;
  /// Instructions per formed trace (§3i), sampled at formation time — empty
  /// when the trace tier (or the whole engine) is off.
  obs::Histogram trace_len;
};

/// Build a machine with `prot`, add the given user programs, run to halt and
/// report cycles. The workload window starts when EL0 first executes. With
/// `collect`, the machine runs with the obs collector attached and the
/// result carries the Chrome trace, the flat cycle profile and the folded
/// call-graph profile. `seed` is the machine's boot entropy (kernel + user
/// PAuth keys); it never affects the cycle counts, only the key material.
/// `fast_path` toggles the host-side predecode/micro-TLB caches (DESIGN.md
/// §3c) and `superblocks` the block-translation engine (§3e); simulated
/// cycles are identical any way round, only host_seconds moves. A bench's
/// explicit `superblocks` choice is further ANDed with the session-wide
/// --sb flag (superblocks_allowed()), the escape hatch the sanitizer CI
/// uses to exercise both engines.
inline bool& superblocks_allowed() {
  static bool allowed = true;
  return allowed;
}

/// Session-wide gate for the trace tier (§3i), set from --trace on|off and
/// ANDed with each bench's per-run choice exactly like
/// superblocks_allowed(). Meaningless when superblocks are off — the trace
/// tier lives inside the superblock engine.
inline bool& traces_allowed() {
  static bool allowed = true;
  return allowed;
}

/// Guest core count run_workload builds machines with when the caller
/// passes `cores = 0` ("session default"). Session's constructor sets it
/// from --cores, so every bench built on run_workload honours the flag
/// without threading a parameter through each call site. Written once
/// before any fleet worker spawns; reads are unsynchronized by design
/// (same pattern as superblocks_allowed()).
inline unsigned& session_cores() {
  static unsigned cores = 1;
  return cores;
}

inline RunCycles run_workload(const compiler::ProtectionConfig& prot,
                              std::vector<obj::Program> programs,
                              uint64_t max_steps = 400'000'000,
                              bool collect = false,
                              uint64_t seed = kernel::MachineConfig{}.seed,
                              bool fast_path = true,
                              bool superblocks = true,
                              unsigned cores = 0,
                              bool traces = true) {
  if (cores == 0) cores = session_cores();
  kernel::MachineConfig cfg;
  cfg.kernel.protection = prot;
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = collect;
  cfg.seed = seed;
  cfg.cpu.fast_path = fast_path;
  cfg.cpu.superblocks = superblocks && superblocks_allowed();
  cfg.cpu.traces = traces && traces_allowed();
  cfg.cores = cores;
  kernel::Machine m(cfg);
  for (auto& p : programs) m.add_user_program(std::move(p));
  m.boot();
  uint64_t start = 0;
  // Single-core: the workload window opens at the first EL0 entry. On a
  // multi-core guest each core has its own clock, so the window is measured
  // on whichever core first reaches EL0 in interleaver order (deterministic
  // like everything else guest-side).
  for (unsigned c = 0; c < m.cores(); ++c)
    m.core(c).add_breakpoint(kernel::kUserBase, [&](cpu::Cpu& cc) {
      if (start == 0) start = cc.cycles();
    });
  m.run(max_steps);
  RunCycles r;
  // Multi-core "total" is the makespan: the busiest core's clock. At
  // cores=1 both reduce to the classic single-clock readings.
  r.total = m.cpu().cycles();
  for (unsigned c = 1; c < m.cores(); ++c)
    r.total = std::max(r.total, m.core(c).cycles());
  r.workload = start == 0 ? r.total : r.total - start;
  r.halt_code = m.halted() ? m.halt_code() : ~uint64_t{0};
  r.retired = m.total_retired();
  r.host_seconds = m.host_seconds();
  if (obs::Collector* st = m.stats()) {
    r.trace_json = st->chrome_trace_json();
    r.flat_profile = st->flat_profile();
    r.folded = st->folded_profile();
    r.profile_cycles = st->profiler().total_cycles();
    r.callgraph_cycles = st->callgraph().total_cycles();
    if (const obs::Histogram* h =
            st->metrics().find_histogram("pauth.sign_to_auth.cycles"))
      r.sign_to_auth = *h;
    if (const obs::Histogram* h =
            st->metrics().find_histogram("key.switch.cycles"))
      r.key_switch = *h;
  }
  r.sb_run_length = m.cpu().superblock_stats().run_length;
  r.trace_len = m.cpu().superblock_stats().trace_len;
  return r;
}

/// One measurement in the emitted series.
using SeriesPoint = obs::BenchSeriesPoint;

/// The four host-engine configurations of the informational throughput
/// series: every host cache off, the §3c fetch/translate fast path alone,
/// the §3e superblock engine stacked on top of it, and the §3i trace tier
/// stacked on top of the superblocks.
struct EngineMode {
  const char* name;
  bool fast_path;
  bool superblocks;
  bool traces;
};

inline std::vector<EngineMode> engine_modes() {
  return {{"fastpath-off", false, false, false},
          {"sb-off", true, false, false},
          {"sb-on", true, true, false},
          {"trace-on", true, true, true}};
}

/// Validate a parsed BENCH JSON document against the camo-bench/v1 schema.
/// Returns an empty string when valid, else a description of the problem.
/// (Forwarder kept for existing callers; the schema lives in camo::obs.)
inline std::string validate_bench_json(const obs::json::Value& doc) {
  return obs::validate_bench_json(doc);
}

class Session;

/// Measure and emit the informational host-throughput series for one
/// workload: best-of-3 under each engine mode (min-of-N wall time == max
/// throughput, stripping host scheduler noise the way perfdiff does),
/// parity-checked — simulated cycles, retired count and halt code must be
/// bit-for-bit identical across modes, because every mode is host-side
/// only. Prints the block and adds one (mode, benchmark) "insns/s" point
/// per mode. Returns false after printing the mismatch when parity fails;
/// callers exit non-zero. Declared here, defined after Session.
template <class MakePrograms>
bool emit_throughput_series(Session& s, const std::string& benchmark,
                            const compiler::ProtectionConfig& prot,
                            MakePrograms&& make,
                            uint64_t max_steps = 400'000'000,
                            uint64_t seed = kernel::MachineConfig{}.seed);

/// Per-binary bench driver; see the header comment.
class Session {
 public:
  /// The shared flags, parsed out of argv. Split from the Session so the
  /// parsing is unit-testable without a process exit.
  struct Flags {
    std::string json_path;
    std::string trace_path;
    std::string folded_path;
    /// --flight-rec <path>: where a bench that runs attacks writes the
    /// camo-flight/v1 replay bundle of its first captured violation.
    std::string flight_rec_path;
    /// --cov <path>: where a coverage-collecting bench writes its merged
    /// camo-cov/v1 execution-coverage bundle (DESIGN.md §3g).
    std::string cov_path;
    std::optional<uint64_t> seed;
    bool smoke = false;
    /// --sb on|off: session-wide gate for the superblock engine, ANDed with
    /// each bench's per-run choice (see run_workload). "off" is the
    /// sanitizer-CI escape hatch; "on" is the default and forces nothing.
    bool sb = true;
    /// --trace on|off: session-wide gate for the trace tier (§3i), same
    /// contract as --sb. The flag is overloaded for compatibility: any
    /// other value is the Chrome trace output path (trace_path above).
    bool trace = true;
    /// --snap on|off: snapshot/fork machine reuse (DESIGN.md §3j). "on"
    /// makes the attack benches boot one template per configuration and
    /// fork every later identical machine copy-on-write; guest-visible
    /// results are bit-identical either way, only host boot cost moves.
    /// Default off so existing artifacts stay byte-identical.
    bool snap = false;
    /// Host threads for fleet()-sharded sweeps: --jobs N, else the
    /// CAMO_JOBS environment variable, else 1. Never affects simulated
    /// results — only wall-clock (DESIGN.md §3d). Recorded in the emitted
    /// JSON header when != 1 so camo-perfdiff can refuse cross-jobs gating;
    /// omitted at 1 to keep serial output byte-identical to pre-fleet runs.
    unsigned jobs = 1;
    /// Guest cores per machine: --cores N, else 1. Unlike --jobs this IS
    /// part of the simulated contract — a 2-core guest schedules
    /// differently — so it is recorded in the emitted JSON header when != 1
    /// and camo-perfdiff refuses cross-cores comparisons; omitted at 1 to
    /// keep uniprocessor artifacts byte-identical to pre-SMP recordings.
    unsigned cores = 1;
  };

  /// Parse and compact the shared flags out of argv. Returns an empty
  /// string on success, else the error message (argv is left compacted up
  /// to the point of failure; callers should treat it as consumed).
  static std::string parse_flags(int& argc, char** argv, Flags& out) {
    int kept = 1;
    std::string error;
    bool jobs_set = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      // --flag <value> or --flag=<value>; empty/missing values are errors.
      const auto take_value = [&](const char* flag, std::string& dst,
                                  bool& matched) -> bool {
        matched = false;
        const std::string eq = std::string(flag) + "=";
        if (arg == flag) {
          matched = true;
          if (i + 1 >= argc) {
            error = std::string(flag) + " requires a value";
            return false;
          }
          dst = argv[++i];
        } else if (arg.rfind(eq, 0) == 0) {
          matched = true;
          dst = arg.substr(eq.size());
        } else {
          return false;
        }
        if (dst.empty()) {
          error = std::string(flag) + " requires a non-empty value";
          return false;
        }
        return true;
      };
      if (arg == "--smoke") {
        out.smoke = true;
        continue;
      }
      bool matched = false;
      std::string seed_text;
      if (take_value("--json", out.json_path, matched)) continue;
      if (matched) break;
      std::string trace_text;
      if (take_value("--trace", trace_text, matched)) {
        // Overloaded flag: on|off gates the trace tier; anything else is
        // the Chrome trace output path (the flag's original meaning).
        if (trace_text == "on") {
          out.trace = true;
        } else if (trace_text == "off") {
          out.trace = false;
        } else {
          out.trace_path = trace_text;
        }
        continue;
      }
      if (matched) break;
      if (take_value("--folded", out.folded_path, matched)) continue;
      if (matched) break;
      if (take_value("--flight-rec", out.flight_rec_path, matched)) continue;
      if (matched) break;
      if (take_value("--cov", out.cov_path, matched)) continue;
      if (matched) break;
      if (take_value("--seed", seed_text, matched)) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(seed_text.c_str(), &end, 0);
        if (end == seed_text.c_str() || *end != '\0') {
          error = "--seed wants an unsigned integer, got \"" + seed_text + "\"";
          break;
        }
        out.seed = static_cast<uint64_t>(v);
        continue;
      }
      if (matched) break;
      std::string sb_text;
      if (take_value("--sb", sb_text, matched)) {
        if (sb_text == "on") {
          out.sb = true;
        } else if (sb_text == "off") {
          out.sb = false;
        } else {
          error = "--sb wants on|off, got \"" + sb_text + "\"";
          break;
        }
        continue;
      }
      if (matched) break;
      std::string snap_text;
      if (take_value("--snap", snap_text, matched)) {
        if (snap_text == "on") {
          out.snap = true;
        } else if (snap_text == "off") {
          out.snap = false;
        } else {
          error = "--snap wants on|off, got \"" + snap_text + "\"";
          break;
        }
        continue;
      }
      if (matched) break;
      std::string jobs_text;
      if (take_value("--jobs", jobs_text, matched)) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(jobs_text.c_str(), &end, 0);
        // strtoull wraps negative input; reject explicit signs outright.
        if (jobs_text[0] == '-' || jobs_text[0] == '+' ||
            end == jobs_text.c_str() || *end != '\0' || v == 0) {
          error = "--jobs wants a positive integer, got \"" + jobs_text + "\"";
          break;
        }
        out.jobs = static_cast<unsigned>(
            v > par::Pool::kMaxJobs ? par::Pool::kMaxJobs : v);
        jobs_set = true;
        continue;
      }
      if (matched) break;
      std::string cores_text;
      if (take_value("--cores", cores_text, matched)) {
        char* end = nullptr;
        const unsigned long long v =
            std::strtoull(cores_text.c_str(), &end, 0);
        if (cores_text[0] == '-' || cores_text[0] == '+' ||
            end == cores_text.c_str() || *end != '\0' || v == 0) {
          error =
              "--cores wants a positive integer, got \"" + cores_text + "\"";
          break;
        }
        // Guest cores are simulated, not host threads: no environment
        // fallback (the artifact must say what was simulated), modest cap.
        out.cores = static_cast<unsigned>(v > 64 ? 64 : v);
        continue;
      }
      if (matched) break;
      argv[kept++] = argv[i];  // not ours: keep for the binary's own parser
    }
    if (error.empty()) {
      if (!jobs_set) out.jobs = par::Pool::env_jobs();
      argc = kept;
      argv[argc] = nullptr;
    }
    return error;
  }

  Session(int& argc, char** argv, std::string bench_id, std::string title,
          std::string paper_claim)
      : bench_id_(std::move(bench_id)), title_(std::move(title)) {
    const std::string err = parse_flags(argc, argv, flags_);
    if (!err.empty()) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      std::exit(2);
    }
    superblocks_allowed() = flags_.sb;
    traces_allowed() = flags_.trace;
    session_cores() = flags_.cores;
    std::printf(
        "\n================================================================\n");
    std::printf("%s — %s%s\n", bench_id_.c_str(), title_.c_str(),
                flags_.smoke ? "  [smoke]" : "");
    std::printf("paper: %s\n", paper_claim.c_str());
    std::printf(
        "================================================================\n");
  }

  bool smoke() const { return flags_.smoke; }
  /// Iteration-count helper: the full count normally, the reduced count
  /// under --smoke (ctest wants the schema checked, not the statistics).
  uint64_t iters(uint64_t full, uint64_t reduced) const {
    return flags_.smoke ? reduced : full;
  }
  const std::string& json_path() const { return flags_.json_path; }
  const std::string& trace_path() const { return flags_.trace_path; }
  const std::string& folded_path() const { return flags_.folded_path; }
  const std::string& flight_rec_path() const { return flags_.flight_rec_path; }
  const std::string& cov_path() const { return flags_.cov_path; }
  unsigned jobs() const { return flags_.jobs; }
  unsigned cores() const { return flags_.cores; }
  /// --snap on|off: snapshot/fork machine reuse for the benches that
  /// support it (they set attacks::snapshot_mode() from this).
  bool snap() const { return flags_.snap; }

  /// The session's work-stealing pool, sized by --jobs / CAMO_JOBS
  /// (constructed on first use; at --jobs 1 fleet() runs inline and the
  /// pool spawns no threads).
  par::Pool& pool() {
    if (!pool_) pool_ = std::make_unique<par::Pool>(flags_.jobs);
    return *pool_;
  }

  /// Shard n independent work items across the pool: out[i] = fn(i),
  /// results in index order regardless of thread count. Benches compute
  /// their sweep through fleet(), then print and add() the results
  /// serially in the original loop order — stdout and the emitted JSON
  /// stay byte-identical to the serial code at every jobs value.
  template <class Fn>
  auto fleet(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{0}))> {
    return pool().map(n, std::forward<Fn>(fn));
  }

  /// The RNG seed for this run: the --seed value when given, else
  /// `fallback`. Whichever is returned is recorded in the emitted JSON, so
  /// the artifact says how to reproduce itself.
  uint64_t seed(uint64_t fallback) {
    if (!flags_.seed) flags_.seed = fallback;
    return *flags_.seed;
  }

  void add(std::string config, std::string benchmark, double value,
           std::string unit,
           std::optional<double> relative = std::nullopt) {
    series_.push_back({std::move(config), std::move(benchmark), value,
                       std::move(unit), relative});
  }

  /// Emit a histogram as four series points — hist.<name>.{p50,p95,p99,
  /// count} — and print the summary line. The "hist." benchmark prefix
  /// marks the whole family informational to camo-perfdiff (quantiles are
  /// distribution shape, never a regression gate). Empty histograms are
  /// skipped so registries whose samples depend on the workload do not
  /// change the series shape between recordings.
  void add_histogram(const std::string& config, const std::string& name,
                     const obs::Histogram& h, const std::string& unit) {
    if (h.count() == 0) return;
    std::printf("  %-28s n=%llu p50=%.0f p95=%.0f p99=%.0f %s\n", name.c_str(),
                static_cast<unsigned long long>(h.count()), h.p50(), h.p95(),
                h.p99(), unit.c_str());
    const std::string base = "hist." + name;
    add(config, base + ".p50", h.p50(), unit);
    add(config, base + ".p95", h.p95(), unit);
    add(config, base + ".p99", h.p99(), unit);
    add(config, base + ".count", static_cast<double>(h.count()), "count");
  }

  /// Emit a (flushed) coverage map as cov.* series points — block/edge
  /// counts and per-EL retire counters — and print the summary line. The
  /// "cov." benchmark prefix marks the family informational to
  /// camo-perfdiff: coverage shape is diagnostic signal, not a perf gate,
  /// and the retire counters are already pinned by the determinism tests.
  void add_coverage(const std::string& config, const obs::CoverageMap& cov) {
    const obs::CoverageMap m = cov.snapshot();
    std::printf("  %-12s coverage: %llu blocks, %llu edges, retired "
                "el0=%llu el1=%llu\n",
                config.c_str(),
                static_cast<unsigned long long>(m.unique_blocks()),
                static_cast<unsigned long long>(m.unique_edges()),
                static_cast<unsigned long long>(m.retired_at(0)),
                static_cast<unsigned long long>(m.retired_at(1)));
    add(config, "cov.blocks", static_cast<double>(m.unique_blocks()), "count");
    add(config, "cov.edges", static_cast<double>(m.unique_edges()), "count");
    add(config, "cov.retired.el0", static_cast<double>(m.retired_at(0)),
        "count");
    add(config, "cov.retired.el1", static_cast<double>(m.retired_at(1)),
        "count");
  }

  /// Write a camo-cov/v1 bundle to `path` and re-validate it, mirroring
  /// finish()'s self-check. Returns false (after printing the error) when
  /// the file cannot be written or fails validation.
  static bool write_coverage_bundle(const std::string& path,
                                    const obs::CoverageMap& cov,
                                    const std::string& label,
                                    uint64_t machines) {
    const std::string text = obs::cov_bundle_json(cov, label, machines);
    {
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cov: cannot write %s\n", path.c_str());
        return false;
      }
      out << text << "\n";
    }
    const auto doc = obs::json::Value::parse(text);
    const std::string err = doc ? obs::validate_cov_bundle(*doc)
                                : "emitted bundle does not parse";
    if (!err.empty()) {
      std::fprintf(stderr, "cov: emitted bundle invalid: %s\n", err.c_str());
      return false;
    }
    std::printf("[coverage bundle -> %s]\n", path.c_str());
    return true;
  }

  /// Write the side artifacts and return the process exit code: non-zero if
  /// no measurements were recorded or the emitted JSON fails validation.
  int finish() {
    if (series_.empty()) {
      std::fprintf(stderr, "%s: no measurements recorded\n",
                   bench_id_.c_str());
      return 1;
    }
    if (flags_.json_path.empty()) return 0;

    obs::json::Value doc = obs::json::Value::object();
    doc.set("schema", obs::json::Value(obs::kBenchSchemaId));
    doc.set("bench", obs::json::Value(bench_id_));
    doc.set("title", obs::json::Value(title_));
    doc.set("smoke", obs::json::Value(flags_.smoke));
    if (flags_.seed) doc.set("seed", obs::json::Value(*flags_.seed));
    // Absent means 1: serial artifacts stay byte-identical to pre-fleet
    // recordings, and camo-perfdiff treats "jobs" mismatches as incomparable.
    if (flags_.jobs != 1)
      doc.set("jobs", obs::json::Value(static_cast<uint64_t>(flags_.jobs)));
    // Absent means 1 guest core: uniprocessor artifacts stay byte-identical
    // to pre-SMP recordings. Unlike "jobs", cores changes simulated results,
    // so camo-perfdiff refuses cross-cores comparisons outright.
    if (flags_.cores != 1)
      doc.set("cores", obs::json::Value(static_cast<uint64_t>(flags_.cores)));
    // Absent means on (the default engine): recordings made before the flag
    // existed — and every default run since — stay byte-identical.
    if (!flags_.sb) doc.set("sb", obs::json::Value(false));
    // Absent means off: recordings made before the trace tier existed parse
    // as trace-less, which is what they ran. Emitted only when the tier can
    // actually engage (it lives inside the superblock engine).
    if (flags_.sb && flags_.trace) doc.set("trace", obs::json::Value(true));
    // Absent means off: snapshot/fork reuse never changes guest-visible
    // series, so snap-off recordings (and every artifact predating the
    // flag) stay byte-identical; the field records how the run was driven.
    if (flags_.snap) doc.set("snap", obs::json::Value(true));
    obs::json::Value series = obs::json::Value::array();
    for (const SeriesPoint& p : series_) {
      obs::json::Value pt = obs::json::Value::object();
      pt.set("config", obs::json::Value(p.config));
      pt.set("benchmark", obs::json::Value(p.benchmark));
      pt.set("value", obs::json::Value(p.value));
      pt.set("unit", obs::json::Value(p.unit));
      if (p.relative) pt.set("relative", obs::json::Value(*p.relative));
      series.push(std::move(pt));
    }
    doc.set("series", std::move(series));

    {
      std::ofstream out(flags_.json_path);
      if (!out) {
        std::fprintf(stderr, "%s: cannot write %s\n", bench_id_.c_str(),
                     flags_.json_path.c_str());
        return 1;
      }
      out << doc.dump(2) << "\n";
    }

    // Self-check: re-read the artifact and validate the schema, so a broken
    // writer fails the bench (and the ctest smoke target) immediately.
    std::string err;
    if (!obs::load_bench_file(flags_.json_path, &err)) {
      std::fprintf(stderr, "%s: emitted JSON fails schema check: %s\n",
                   bench_id_.c_str(), err.c_str());
      return 1;
    }
    std::printf("\n[%zu series points -> %s]\n", series_.size(),
                flags_.json_path.c_str());
    return 0;
  }

 private:
  std::string bench_id_, title_;
  Flags flags_;
  std::vector<SeriesPoint> series_;
  std::unique_ptr<par::Pool> pool_;
};

/// Host-side sibling of emit_throughput_series for benches whose measured
/// loop is pure host code (no Machine — e.g. the raw QARMA core): run `body`
/// best-of-3 and report ops per host second as one informational
/// ("host", benchmark) "ops/s" point.
template <class Fn>
void emit_host_throughput_series(Session& s, const std::string& benchmark,
                                 uint64_t ops, Fn&& body) {
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    const double rate =
        dt.count() > 0 ? static_cast<double>(ops) / dt.count() : 0;
    if (rate > best) best = rate;
  }
  std::printf("\nhost throughput (%s, informational): %.0f ops/s\n",
              benchmark.c_str(), best);
  s.add("host", benchmark, best, "ops/s");
}

template <class MakePrograms>
bool emit_throughput_series(Session& s, const std::string& benchmark,
                            const compiler::ProtectionConfig& prot,
                            MakePrograms&& make, uint64_t max_steps,
                            uint64_t seed) {
  const std::vector<EngineMode> modes = engine_modes();
  std::vector<RunCycles> results;
  for (const EngineMode& mode : modes) {
    RunCycles best;
    for (int rep = 0; rep < 3; ++rep) {
      RunCycles r = run_workload(prot, make(), max_steps, /*collect=*/false,
                                 seed, mode.fast_path, mode.superblocks,
                                 /*cores=*/0, mode.traces);
      if (rep == 0 || r.throughput() > best.throughput()) best = r;
    }
    results.push_back(best);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    const RunCycles& a = results[0];
    const RunCycles& b = results[i];
    if (a.total != b.total || a.workload != b.workload ||
        a.halt_code != b.halt_code || a.retired != b.retired) {
      std::fprintf(stderr,
                   "%s changed simulated behaviour on %s: "
                   "cycles %llu vs %llu, retired %llu vs %llu\n",
                   modes[i].name, benchmark.c_str(),
                   static_cast<unsigned long long>(a.total),
                   static_cast<unsigned long long>(b.total),
                   static_cast<unsigned long long>(a.retired),
                   static_cast<unsigned long long>(b.retired));
      return false;
    }
  }
  std::printf("\nhost throughput (%s, informational):\n", benchmark.c_str());
  for (size_t i = 0; i < modes.size(); ++i) {
    std::printf("  %-13s %12.0f guest insns/host-s (%.2fx)\n", modes[i].name,
                results[i].throughput(),
                results[0].throughput() > 0
                    ? results[i].throughput() / results[0].throughput()
                    : 0);
    s.add(modes[i].name, benchmark, results[i].throughput(), "insns/s");
  }
  return true;
}

}  // namespace camo::bench
