// Figure 2: function-call overhead (nanoseconds) of the three PAuth
// return-address modifier constructions:
//   1) Camouflage (proposed): 32-bit SP ‖ 32-bit function address,
//   2) PARTS: 16-bit SP ‖ 48-bit LTO function id,
//   3) Clang/Qualcomm: SP only (PACIASP/AUTIASP).
// The paper reports Clang < Camouflage < PARTS, with Camouflage "slightly
// slower than the weaker protection present in compilers, but faster than
// prior work with equal security properties".
//
// Method: a guest loop performs N calls to a framed no-op function built
// with each scheme; per-call cost is the cycle delta over the empty loop,
// converted to ns at 1.2 GHz.
#include <cstdio>

#include "assembler/builder.h"
#include "bench_util.h"
#include "compiler/instrument.h"
#include "cpu/cpu.h"
#include "mem/mmu.h"

namespace {

using namespace camo;  // NOLINT
using assembler::FunctionBuilder;
using compiler::BackwardScheme;

constexpr uint64_t kText = 0xFFFF000000080000ull;
constexpr uint64_t kStackTop = 0xFFFF000000140000ull;
uint64_t kIters = 4000;  // reduced under --smoke

/// Cycles per iteration of a loop that BLs into a framed no-op callee built
/// under `scheme` (or a loop with no call at all for `with_call = false`).
double measure(BackwardScheme scheme, bool compat, bool with_call) {
  mem::PhysicalMemory pm(1 << 20);
  mem::Mmu mmu(pm, {});
  mem::Stage1Map kmap;
  kmap.map_range(kText, 0x10000, 0x10000, mem::PagePerms::kernel_text());
  kmap.map_range(kStackTop - 0x10000, 0x30000, 0x10000,
                 mem::PagePerms::kernel_rw());
  mmu.set_kernel_map(&kmap);
  cpu::Cpu core(mmu, {});
  core.set_sysreg(isa::SysReg::SCTLR_EL1, isa::kSctlrEnIA | isa::kSctlrEnIB |
                                              isa::kSctlrEnDA |
                                              isa::kSctlrEnDB);
  for (int i = 0; i < 10; ++i)
    core.set_sysreg(static_cast<isa::SysReg>(i), 0x1111111111111111ull * (i + 2));
  core.set_sp_el(mem::El::El1, kStackTop);

  FunctionBuilder f("bench");
  const auto callee = f.make_label();
  const auto loop = f.make_label();
  const auto start = f.make_label();
  f.b(start);
  f.bind(callee);
  f.frame_push();
  f.frame_pop_ret();
  f.bind(start);
  f.mov_imm(19, kIters);
  f.bind(loop);
  if (with_call) f.bl(callee);
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);

  compiler::ProtectionConfig cfg;
  cfg.backward = scheme;
  cfg.compat_mode = compat;
  compiler::instrument(f, cfg);

  const auto words = f.assemble().words;
  for (size_t i = 0; i < words.size(); ++i)
    pm.write32(0x10000 + i * 4, words[i]);
  core.pc = kText;
  core.run(10'000'000);
  return static_cast<double>(core.cycles()) / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "Figure 2", "function call overhead by modifier scheme",
      "ordering Clang(SP) < Camouflage(32b SP + fn addr) < PARTS(16b SP + "
      "48b LTO id); ~tens of ns at 1.2 GHz");
  kIters = s.iters(4000, 200);

  const double empty = measure(BackwardScheme::None, false, false);
  const double baseline = measure(BackwardScheme::None, false, true) - empty;

  struct Row {
    const char* name;
    const char* key;
    BackwardScheme scheme;
    bool compat;
  };
  const Row rows[] = {
      {"3) clang (SP only)", "clang-sp", BackwardScheme::ClangSp, false},
      {"1) camouflage (SP32+fn)", "camouflage", BackwardScheme::Camouflage,
       false},
      {"2) parts (SP16+id48)", "parts", BackwardScheme::Parts, false},
      {"   camouflage compat (§5.5)", "camouflage-compat",
       BackwardScheme::Camouflage, true},
      {"   parts compat", "parts-compat", BackwardScheme::Parts, true},
  };

  std::printf("%-30s %12s %12s %14s\n", "scheme", "cycles/call", "ns/call",
              "CFI overhead ns");
  std::printf("%-30s %12.1f %12.1f %14s\n", "baseline (unprotected call)",
              baseline, bench::to_ns(baseline), "-");
  s.add("baseline", "call", baseline, "cycles/call");
  for (const auto& row : rows) {
    const double c = measure(row.scheme, row.compat, true) - empty;
    std::printf("%-30s %12.1f %12.1f %14.1f\n", row.name, c, bench::to_ns(c),
                bench::to_ns(c - baseline));
    s.add(row.key, "call", c, "cycles/call", c / baseline);
  }

  std::printf(
      "\ninstrumentation instruction counts per prologue+epilogue pair: "
      "clang=%u camouflage=%u parts=%u (compat: %u/%u)\n",
      compiler::backward_overhead_insns(BackwardScheme::ClangSp, false),
      compiler::backward_overhead_insns(BackwardScheme::Camouflage, false),
      compiler::backward_overhead_insns(BackwardScheme::Parts, false),
      compiler::backward_overhead_insns(BackwardScheme::Camouflage, true),
      compiler::backward_overhead_insns(BackwardScheme::Parts, true));
  return s.finish();
}
