// Figure 2: function-call overhead (nanoseconds) of the three PAuth
// return-address modifier constructions:
//   1) Camouflage (proposed): 32-bit SP ‖ 32-bit function address,
//   2) PARTS: 16-bit SP ‖ 48-bit LTO function id,
//   3) Clang/Qualcomm: SP only (PACIASP/AUTIASP).
// The paper reports Clang < Camouflage < PARTS, with Camouflage "slightly
// slower than the weaker protection present in compilers, but faster than
// prior work with equal security properties".
//
// Method: a guest loop performs N calls to a framed no-op function built
// with each scheme; per-call cost is the cycle delta over the empty loop,
// converted to ns at 1.2 GHz.
#include <chrono>
#include <cstdio>

#include "assembler/builder.h"
#include "bench_util.h"
#include "compiler/instrument.h"
#include "cpu/cpu.h"
#include "mem/mmu.h"

namespace {

using namespace camo;  // NOLINT
using assembler::FunctionBuilder;
using compiler::BackwardScheme;

constexpr uint64_t kText = 0xFFFF000000080000ull;
constexpr uint64_t kStackTop = 0xFFFF000000140000ull;
uint64_t kIters = 4000;  // reduced under --smoke

struct CallRun {
  uint64_t cycles = 0;
  uint64_t retired = 0;
  double host_seconds = 0;
  double throughput() const {
    return host_seconds > 0 ? static_cast<double>(retired) / host_seconds : 0;
  }
};

/// One run of a loop that BLs into a framed no-op callee built under
/// `scheme` (or a loop with no call at all for `with_call = false`), with
/// the given host engine configuration and iteration count.
CallRun run_call_loop(BackwardScheme scheme, bool compat, bool with_call,
                      uint64_t iters, const cpu::Cpu::Config& cpu_cfg) {
  mem::PhysicalMemory pm(1 << 20);
  mem::Mmu mmu(pm, {});
  mem::Stage1Map kmap;
  kmap.map_range(kText, 0x10000, 0x10000, mem::PagePerms::kernel_text());
  kmap.map_range(kStackTop - 0x10000, 0x30000, 0x10000,
                 mem::PagePerms::kernel_rw());
  mmu.set_kernel_map(&kmap);
  cpu::Cpu core(mmu, cpu_cfg);
  core.set_sysreg(isa::SysReg::SCTLR_EL1, isa::kSctlrEnIA | isa::kSctlrEnIB |
                                              isa::kSctlrEnDA |
                                              isa::kSctlrEnDB);
  for (int i = 0; i < 10; ++i)
    core.set_sysreg(static_cast<isa::SysReg>(i), 0x1111111111111111ull * (i + 2));
  core.set_sp_el(mem::El::El1, kStackTop);

  FunctionBuilder f("bench");
  const auto callee = f.make_label();
  const auto loop = f.make_label();
  const auto start = f.make_label();
  f.b(start);
  f.bind(callee);
  f.frame_push();
  f.frame_pop_ret();
  f.bind(start);
  f.mov_imm(19, iters);
  f.bind(loop);
  if (with_call) f.bl(callee);
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);

  compiler::ProtectionConfig cfg;
  cfg.backward = scheme;
  cfg.compat_mode = compat;
  compiler::instrument(f, cfg);

  const auto words = f.assemble().words;
  for (size_t i = 0; i < words.size(); ++i)
    pm.write32(0x10000 + i * 4, words[i]);
  core.pc = kText;
  const auto t0 = std::chrono::steady_clock::now();
  core.run(10'000'000);
  CallRun r;
  r.cycles = core.cycles();
  r.retired = core.retired();
  r.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

/// Cycles per iteration under the default engine configuration.
double measure(BackwardScheme scheme, bool compat, bool with_call) {
  return static_cast<double>(
             run_call_loop(scheme, compat, with_call, kIters, {}).cycles) /
         kIters;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "Figure 2", "function call overhead by modifier scheme",
      "ordering Clang(SP) < Camouflage(32b SP + fn addr) < PARTS(16b SP + "
      "48b LTO id); ~tens of ns at 1.2 GHz");
  kIters = s.iters(4000, 200);

  const double empty = measure(BackwardScheme::None, false, false);
  const double baseline = measure(BackwardScheme::None, false, true) - empty;

  struct Row {
    const char* name;
    const char* key;
    BackwardScheme scheme;
    bool compat;
  };
  const Row rows[] = {
      {"3) clang (SP only)", "clang-sp", BackwardScheme::ClangSp, false},
      {"1) camouflage (SP32+fn)", "camouflage", BackwardScheme::Camouflage,
       false},
      {"2) parts (SP16+id48)", "parts", BackwardScheme::Parts, false},
      {"   camouflage compat (§5.5)", "camouflage-compat",
       BackwardScheme::Camouflage, true},
      {"   parts compat", "parts-compat", BackwardScheme::Parts, true},
  };

  std::printf("%-30s %12s %12s %14s\n", "scheme", "cycles/call", "ns/call",
              "CFI overhead ns");
  std::printf("%-30s %12.1f %12.1f %14s\n", "baseline (unprotected call)",
              baseline, bench::to_ns(baseline), "-");
  s.add("baseline", "call", baseline, "cycles/call");
  for (const auto& row : rows) {
    const double c = measure(row.scheme, row.compat, true) - empty;
    std::printf("%-30s %12.1f %12.1f %14.1f\n", row.name, c, bench::to_ns(c),
                bench::to_ns(c - baseline));
    s.add(row.key, "call", c, "cycles/call", c / baseline);
  }

  std::printf(
      "\ninstrumentation instruction counts per prologue+epilogue pair: "
      "clang=%u camouflage=%u parts=%u (compat: %u/%u)\n",
      compiler::backward_overhead_insns(BackwardScheme::ClangSp, false),
      compiler::backward_overhead_insns(BackwardScheme::Camouflage, false),
      compiler::backward_overhead_insns(BackwardScheme::Parts, false),
      compiler::backward_overhead_insns(BackwardScheme::Camouflage, true),
      compiler::backward_overhead_insns(BackwardScheme::Parts, true));

  // Host throughput under the three host engine modes (informational): the
  // same best-of-3 "insns/s" series fig3/fig4 emit, on the Camouflage call
  // loop. This binary drives a raw Cpu (no Machine), so wall time is taken
  // around run() directly; simulated cycles and retired counts must be
  // bit-for-bit identical across modes.
  {
    const uint64_t tp_iters = kIters * 16;
    std::vector<CallRun> results;
    for (const auto& mode : bench::engine_modes()) {
      cpu::Cpu::Config cc;
      cc.fast_path = mode.fast_path;
      cc.superblocks = mode.superblocks && bench::superblocks_allowed();
      CallRun best;
      for (int rep = 0; rep < 3; ++rep) {
        CallRun r = run_call_loop(BackwardScheme::Camouflage, false, true,
                                  tp_iters, cc);
        if (rep == 0 || r.throughput() > best.throughput()) best = r;
      }
      results.push_back(best);
    }
    const auto modes = bench::engine_modes();
    for (size_t i = 1; i < results.size(); ++i) {
      if (results[i].cycles != results[0].cycles ||
          results[i].retired != results[0].retired) {
        std::fprintf(stderr,
                     "%s changed simulated behaviour: cycles %llu vs %llu, "
                     "retired %llu vs %llu\n",
                     modes[i].name,
                     static_cast<unsigned long long>(results[0].cycles),
                     static_cast<unsigned long long>(results[i].cycles),
                     static_cast<unsigned long long>(results[0].retired),
                     static_cast<unsigned long long>(results[i].retired));
        return 1;
      }
    }
    std::printf("\nhost throughput (camouflage call loop, informational):\n");
    for (size_t i = 0; i < modes.size(); ++i) {
      std::printf("  %-13s %12.0f guest insns/host-s (%.2fx)\n",
                  modes[i].name, results[i].throughput(),
                  results[0].throughput() > 0
                      ? results[i].throughput() / results[0].throughput()
                      : 0);
      s.add(modes[i].name, "camouflage call loop", results[i].throughput(),
            "insns/s");
    }
  }
  return s.finish();
}
