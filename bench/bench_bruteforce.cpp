// §5.4 / §6.2.1 brute-force mitigation: PAC guessing probability is
// 2^-pac_size (15 bits in the default kernel configuration, "well within
// practical reach of a brute force attack by an attacker-controlled local
// application"), so consecutive failures must be bounded. This bench sweeps
// the failure threshold and measures when the kernel halts, and tabulates
// expected guessing work across VA configurations.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/attacks.h"
#include "bench_snap_util.h"
#include "bench_util.h"
#include "mem/valayout.h"

int main(int argc, char** argv) {
  using namespace camo;  // NOLINT
  bench::Session s(
      argc, argv, "Section 5.4", "PAC brute-force mitigation",
      "success probability 2^-pac_size per guess; kernel halts after a "
      "bounded number of consecutive PAuth failures");
  // --snap on: boot one template per machine configuration, fork the rest
  // copy-on-write (DESIGN.md §3j). Results are bit-identical either way.
  bench::configure_snapshot_mode(s);

  std::printf("expected guesses vs PAC width (success probability per try):\n");
  std::printf("  %8s %10s %16s %22s\n", "va_bits", "PAC bits", "P(success)",
              "expected tries (2^n-1)");
  for (const unsigned va_bits : {32u, 39u, 48u}) {
    mem::VaLayout l;
    l.va_bits = va_bits;
    const unsigned w = l.pac_width(uint64_t{1} << 55);
    std::printf("  %8u %10u %16.2e %22.0f\n", va_bits, w, std::pow(2.0, -double(w)),
                std::pow(2.0, double(w)) - 1);
    s.add("va" + std::to_string(va_bits), "expected guesses",
          std::pow(2.0, double(w)) - 1, "tries");
  }

  std::printf("\nmeasured: forged-PAC syscall storm against the hook pointer "
              "(one attacking process per guess, full protection):\n");
  std::printf("  %10s %12s %14s %12s\n", "threshold", "attempts", "halt",
              "pac_failures");
  const std::vector<unsigned> thresholds =
      s.smoke() ? std::vector<unsigned>{2u, 4u}
                : std::vector<unsigned>{2u, 4u, 8u, 16u};
  // One independent machine per threshold: compute the sweep through the
  // session fleet, then print in threshold order (byte-identical to the
  // serial loop at any --jobs value).
  const auto reports = s.fleet(thresholds.size(), [&](size_t i) {
    return attacks::run_bruteforce(compiler::ProtectionConfig::full(),
                                   thresholds[i], thresholds[i] + 8);
  });
  for (size_t i = 0; i < thresholds.size(); ++i) {
    const unsigned threshold = thresholds[i];
    const auto& r = reports[i];
    std::printf("  %10u %12llu %14s %12llu\n", threshold,
                static_cast<unsigned long long>(r.attempts),
                r.halt_code == kernel::kHaltPacPanic ? "PANIC (§5.4)"
                                                     : "other",
                static_cast<unsigned long long>(r.pac_failures));
    const std::string cfg = "threshold" + std::to_string(threshold);
    s.add(cfg, "attempts before panic", static_cast<double>(r.attempts),
          "tries");
    s.add(cfg, "pac failures", static_cast<double>(r.pac_failures),
          "failures");
  }
  std::printf("\nshape check: the system always halts after exactly "
              "`threshold` failures — the attacker gets nowhere near the "
              "2^15 guesses a 15-bit PAC would otherwise need on average.\n");
  bench::emit_snapshot_series(s);
  return s.finish();
}
