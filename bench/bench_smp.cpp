// Guest SMP scaling (DESIGN.md §3h).
//
// One fixed workload mix — yield-heavy, syscall-heavy and file-touching
// tasks, more tasks than cores — runs on machines with 1, 2 and 4 guest
// cores under full protection with preemption. Every simulated series is
// deterministic: the round-robin quantum interleaver makes the multi-core
// schedule a pure function of (config, cores), which this bench re-checks
// by running every configuration twice and requiring bit-identical results.
//
// The second half is the fleet×SMP composition: N independent multi-core
// machines shard across host threads (--jobs) and must merge to the same
// totals as a serial run — guest SMP and host fleet parallelism compose
// without either contaminating the other.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernel/image_cache.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "par/fleet.h"

namespace {

using namespace camo;  // NOLINT

/// The shared workload mix: 5 tasks so every core count under-, exactly-
/// and over-subscribes somewhere in the run.
std::vector<obj::Program> mix(uint64_t scale) {
  std::vector<obj::Program> progs;
  progs.push_back(kernel::workloads::yield_loop(10 * scale));
  progs.push_back(kernel::workloads::null_syscall(20 * scale));
  progs.push_back(kernel::workloads::yield_loop(10 * scale));
  progs.push_back(kernel::workloads::stat_file(5 * scale));
  progs.push_back(kernel::workloads::null_syscall(20 * scale));
  return progs;
}

struct SmpRun {
  uint64_t makespan = 0;       ///< busiest core's clock (guest cycles)
  uint64_t retired = 0;        ///< instructions summed over cores
  uint64_t ipis = 0;           ///< guest ipi_count (delivered doorbells)
  uint64_t off_core0 = 0;      ///< tasks whose last core was not core 0
  uint64_t halt_code = 0;
  std::vector<uint64_t> percpu_insn;  ///< obs "insn.c<k>" counters
};

SmpRun run_mix(unsigned cores, uint64_t scale, uint64_t seed) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.kernel.preempt = true;
  cfg.cores = cores;
  // Short quanta so this workload size actually interleaves; the value is
  // part of the simulated contract and identical for every cores value.
  cfg.smp_quantum = 500;
  cfg.obs.enabled = true;
  cfg.seed = seed;
  kernel::Machine m(cfg);
  for (auto& p : mix(scale)) m.add_user_program(std::move(p));
  m.boot();
  m.run(400'000'000);
  SmpRun r;
  for (unsigned c = 0; c < m.cores(); ++c) {
    r.makespan = std::max(r.makespan, m.core(c).cycles());
    r.retired += m.core(c).retired();
  }
  r.halt_code = m.halted() ? m.halt_code() : ~uint64_t{0};
  if (cores > 1) {
    r.ipis = m.read_global(kernel::kSymIpiCount);
    for (unsigned c = 0; c < m.cores(); ++c)
      r.percpu_insn.push_back(
          m.stats()->metrics().value("insn.c" + std::to_string(c)));
  }
  for (unsigned pid = 1; pid <= 5; ++pid)
    if (m.read_u64(m.task_struct(pid) + kernel::task::kCpu) != 0)
      ++r.off_core0;
  return r;
}

bool same(const SmpRun& a, const SmpRun& b) {
  return a.makespan == b.makespan && a.retired == b.retired &&
         a.ipis == b.ipis && a.off_core0 == b.off_core0 &&
         a.halt_code == b.halt_code && a.percpu_insn == b.percpu_insn;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(
      argc, argv, "SMP", "guest SMP scaling (DESIGN.md §3h)",
      "multi-core guests interleave deterministically; per-CPU key banks, "
      "IPIs and the migrating scheduler keep CFI intact across cores");

  const uint64_t seed = s.seed(2024);
  const uint64_t scale = s.iters(20, 2);

  std::printf("workload: 5 tasks (2 yield, 2 syscall, 1 stat) at scale %llu\n",
              static_cast<unsigned long long>(scale));
  std::printf("\n  %6s %14s %14s %6s %10s\n", "cores", "makespan", "instret",
              "ipis", "off-core0");

  const std::vector<unsigned> core_counts = {1, 2, 4};
  // Each (cores, repeat) pair is an independent machine: shard across the
  // --jobs pool, print serially.
  const auto runs = s.fleet(core_counts.size() * 2, [&](size_t i) {
    return run_mix(core_counts[i / 2], scale, seed);
  });
  uint64_t uni_makespan = 0;
  for (size_t ci = 0; ci < core_counts.size(); ++ci) {
    const unsigned cores = core_counts[ci];
    const SmpRun& r = runs[ci * 2];
    if (!same(r, runs[ci * 2 + 1])) {
      std::fprintf(stderr,
                   "bench_smp: two identical cores=%u runs diverged — the "
                   "interleaver is not deterministic\n",
                   cores);
      return 1;
    }
    if (r.halt_code != kernel::kHaltDone) {
      std::fprintf(stderr, "bench_smp: cores=%u halted with 0x%llx\n", cores,
                   static_cast<unsigned long long>(r.halt_code));
      return 1;
    }
    std::printf("  %6u %14llu %14llu %6llu %10llu\n", cores,
                static_cast<unsigned long long>(r.makespan),
                static_cast<unsigned long long>(r.retired),
                static_cast<unsigned long long>(r.ipis),
                static_cast<unsigned long long>(r.off_core0));
    const std::string config = "cores=" + std::to_string(cores);
    if (cores == 1) uni_makespan = r.makespan;
    s.add(config, "makespan", static_cast<double>(r.makespan), "cycles",
          uni_makespan > 0
              ? std::optional<double>(static_cast<double>(r.makespan) /
                                      static_cast<double>(uni_makespan))
              : std::nullopt);
    s.add(config, "guest instructions", static_cast<double>(r.retired),
          "insns");
    s.add(config, "ipis delivered", static_cast<double>(r.ipis), "count");
    s.add(config, "tasks finishing off core 0",
          static_cast<double>(r.off_core0), "count");
    for (size_t c = 0; c < r.percpu_insn.size(); ++c)
      s.add(config, "insn.c" + std::to_string(c),
            static_cast<double>(r.percpu_insn[c]), "insns");
  }

  // Fleet×SMP: N independent 2-core machines (or --cores N when given)
  // sharded across the --jobs pool must merge to exactly the serial totals.
  const unsigned fleet_cores = s.cores() > 1 ? s.cores() : 2;
  const size_t machines = s.smoke() ? 4 : 12;
  auto cache = std::make_shared<kernel::ImageCache>();
  const auto factory = [&](size_t i) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.kernel.preempt = true;
    cfg.cores = fleet_cores;
    cfg.smp_quantum = 500;
    cfg.obs.enabled = true;
    cfg.seed = seed;
    cfg.machine_id = static_cast<unsigned>(i);
    cfg.image_cache = cache;
    auto m = std::make_unique<kernel::Machine>(cfg);
    for (auto& p : mix(1 + i % 3)) m->add_user_program(std::move(p));
    return m;
  };
  const auto tenant = [](size_t, kernel::Machine& m) {
    m.boot();
    m.run(400'000'000);
    uint64_t cycles = 0;
    for (unsigned c = 0; c < m.cores(); ++c)
      cycles = std::max(cycles, m.core(c).cycles());
    return std::pair<uint64_t, uint64_t>(cycles, m.total_retired());
  };
  auto fleet = par::run_fleet(s.pool(), machines, factory, tenant);
  par::Pool serial(1);
  auto serial_fleet = par::run_fleet(serial, machines, factory, tenant);
  uint64_t fleet_cycles = 0, fleet_insns = 0;
  bool compose = fleet.results.size() == serial_fleet.results.size();
  for (size_t i = 0; i < fleet.results.size(); ++i) {
    compose = compose && fleet.results[i] == serial_fleet.results[i];
    fleet_cycles += fleet.results[i].first;
    fleet_insns += fleet.results[i].second;
  }
  if (!compose) {
    std::fprintf(stderr,
                 "bench_smp: --jobs %u fleet and serial fleet disagree — "
                 "SMP is not fleet-composable\n",
                 s.jobs());
    return 1;
  }
  std::printf(
      "\nfleet×SMP: %zu machines × %u cores, %u host job(s): "
      "%llu cycles, %llu insns (== serial run)\n",
      machines, fleet_cores, s.jobs(),
      static_cast<unsigned long long>(fleet_cycles),
      static_cast<unsigned long long>(fleet_insns));
  const std::string fconfig = "fleet-cores=" + std::to_string(fleet_cores);
  s.add(fconfig, "guest cycles", static_cast<double>(fleet_cycles), "cycles");
  s.add(fconfig, "guest instructions", static_cast<double>(fleet_insns),
        "insns");
  s.add(fconfig, "fleet.throughput", fleet.stats.throughput(), "insns/s");
  return s.finish();
}
