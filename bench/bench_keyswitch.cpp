// §6.1.1 Key management: "We measured an overhead for switching between
// kernel and user mode PAuth keys, upon system call or user mode interrupt,
// of 9 cycles per key (measurement average: 8.88; variance: .004). In our
// micro-benchmarks, we use three different keys."
//
// Two measurements:
//  (a) the MSR cost per 128-bit key (the figure the paper reports),
//  (b) the full entry/exit switching cost on the real syscall path: the XOM
//      key-setter call on entry plus the per-thread user-key restore on exit.
#include <cstdio>

#include "assembler/builder.h"
#include "bench_util.h"
#include "core/keys.h"
#include "core/keysetter.h"
#include "kernel/machine.h"
#include "cpu/cpu.h"
#include "kernel/workloads.h"
#include "mem/mmu.h"

namespace {

using namespace camo;  // NOLINT
using assembler::FunctionBuilder;

constexpr uint64_t kText = 0xFFFF000000080000ull;

/// Cycles for a guest snippet that writes `keys` 128-bit keys via MSR pairs
/// (averaged over reps).
double msr_cycles_per_key(int keys, int reps) {
  mem::PhysicalMemory pm(1 << 20);
  mem::Mmu mmu(pm, {});
  mem::Stage1Map kmap;
  kmap.map_range(kText, 0x10000, 0x8000, mem::PagePerms::kernel_text());
  mmu.set_kernel_map(&kmap);
  cpu::Cpu core(mmu, {});

  FunctionBuilder f("keyswitch");
  const auto loop = f.make_label();
  f.mov_imm(19, static_cast<uint64_t>(reps));
  f.bind(loop);
  for (int kix = 0; kix < keys; ++kix) {
    f.msr(static_cast<isa::SysReg>(kix * 2), 9);      // Lo half
    f.msr(static_cast<isa::SysReg>(kix * 2 + 1), 9);  // Hi half
  }
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);

  const auto base_cycles = [&] {
    // loop skeleton without the MSRs
    FunctionBuilder g("skel");
    const auto l = g.make_label();
    g.mov_imm(19, static_cast<uint64_t>(reps));
    g.bind(l);
    g.sub_i(19, 19, 1);
    g.cbnz(19, l);
    g.hlt(1);
    const auto w = g.assemble().words;
    mem::PhysicalMemory pm2(1 << 20);
    mem::Mmu mmu2(pm2, {});
    mem::Stage1Map km2;
    km2.map_range(kText, 0x10000, 0x8000, mem::PagePerms::kernel_text());
    mmu2.set_kernel_map(&km2);
    cpu::Cpu c2(mmu2, {});
    for (size_t i = 0; i < w.size(); ++i) pm2.write32(0x10000 + i * 4, w[i]);
    c2.pc = kText;
    c2.run(10'000'000);
    return c2.cycles();
  }();

  const auto words = f.assemble().words;
  for (size_t i = 0; i < words.size(); ++i) pm.write32(0x10000 + i * 4, words[i]);
  core.pc = kText;
  core.run(10'000'000);
  return static_cast<double>(core.cycles() - base_cycles) / reps / keys;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session s(argc, argv, "Section 6.1.1", "PAuth key switching cost",
                   "9 cycles per 128-bit key (avg 8.88); 3 keys in use");
  const int reps = static_cast<int>(s.iters(500, 50));

  for (const int keys : {1, 2, 3, 5}) {
    const double per_key = msr_cycles_per_key(keys, reps);
    std::printf("  MSR switch, %d key(s): %6.2f cycles/key\n", keys, per_key);
    s.add("msr", std::to_string(keys) + " keys", per_key, "cycles/key");
  }

  // Full syscall-path switching: compare total syscall cost with the stock
  // entry path against a kernel whose only difference is protection config
  // (keys are switched in every configuration — the entry stub always runs —
  // so measure the *setter + restore* contribution directly instead).
  {
    // Cost of one call to the synthesized XOM key setter (3 keys).
    const auto keys = core::KernelKeys::generate(42);
    auto setter = core::make_key_setter(keys, core::KeyUsage::camouflage_default());
    mem::PhysicalMemory pm(1 << 20);
    mem::Mmu mmu(pm, {});
    mem::Stage1Map kmap;
    kmap.map_range(kText, 0x10000, 0x8000, mem::PagePerms::kernel_text());
    mmu.set_kernel_map(&kmap);
    cpu::Cpu core(mmu, {});
    const auto w = setter.assemble().words;
    for (size_t i = 0; i < w.size(); ++i) pm.write32(0x10000 + i * 4, w[i]);
    core.set_x(isa::kRegLr, kText + 0x7000);
    kmap.map_range(kText + 0x7000, 0x18000, 0x1000,
                   mem::PagePerms::kernel_text());
    pm.write32(0x18000, isa::encode([] {
                 isa::Inst i;
                 i.op = isa::Op::HLT;
                 i.imm = 1;
                 return i;
               }()));
    core.pc = kText;
    core.run(100000);
    std::printf(
        "\n  XOM key-setter (kernel entry, 3 keys incl. immediates): %llu "
        "cycles total, %.2f cycles/key\n",
        static_cast<unsigned long long>(core.cycles()),
        static_cast<double>(core.cycles()) / 3);
    s.add("xom-setter", "3 keys", static_cast<double>(core.cycles()) / 3,
          "cycles/key");
  }
  std::printf(
      "\nshape check: MSR-only cost per key should be ~9 cycles as in the "
      "paper; the full setter adds the MOVZ/MOVK immediate loads that XOM "
      "key concealment requires (§5.1).\n");

  // §8 future-work ablation: the proposed layered/banked key-management ISA
  // extension removes the per-transition switch entirely.
  {
    const uint64_t n = s.iters(2000, 100);
    auto syscall_cycles = [n](bool banked) {
      kernel::MachineConfig cfg;
      cfg.kernel.protection = compiler::ProtectionConfig::full();
      cfg.kernel.log_pac_failures = false;
      cfg.cpu.banked_keys = banked;
      kernel::Machine m(cfg);
      m.add_user_program(kernel::workloads::null_syscall(n));
      m.boot();
      uint64_t start = 0;
      m.cpu().add_breakpoint(kernel::kUserBase, [&](cpu::Cpu& c) {
        if (start == 0) start = c.cycles();
      });
      m.run();
      return static_cast<double>(m.cpu().cycles() - start) / (n + 1);
    };
    const double xom = syscall_cycles(false);
    const double banked = syscall_cycles(true);
    std::printf(
        "\n§8 ISA-extension ablation (null syscall, full protection):\n"
        "  XOM key-setter + per-exit user-key restore: %7.1f cycles/syscall\n"
        "  EL2-managed banked kernel keys:             %7.1f cycles/syscall\n"
        "  saving: %.1f cycles (%.1f%%) — and the XOM page, the setter call "
        "and the §4.1 key-read verification all become unnecessary.\n",
        xom, banked, xom - banked, (xom - banked) / xom * 100);
    s.add("xom-setter", "null syscall", xom, "cycles/op");
    s.add("banked-keys", "null syscall", banked, "cycles/op", banked / xom);
  }

  // Shared engine-mode throughput block (uniform informational "insns/s"
  // series; also parity-checks that the host engines leave the key-switch
  // path's simulated cycles untouched).
  {
    const uint64_t n = s.iters(2000, 100);
    const bool ok = bench::emit_throughput_series(
        s, "null syscall", compiler::ProtectionConfig::full(), [n] {
          std::vector<obj::Program> ps;
          ps.push_back(kernel::workloads::null_syscall(n));
          return ps;
        });
    if (!ok) return 1;
  }
  return s.finish();
}
