// §5.3 Pointer-census reproduction: "A semantic search using Coccinelle
// over the complete Linux version 5.2 source code yields 1285 function
// pointer members assigned at run-time, residing in 504 different compound
// types. We expect that for 229 out of the 504 types — i.e., those with more
// than one function pointer — should ... be converted to use read-only
// operations structures."
//
// We run the census tool over the bundled synthetic driver corpus (whose
// distribution is calibrated to the paper's findings) and over distorted
// corpora, checking the tool recovers the planted ground truth.
#include <cstdio>
#include <iterator>
#include <string>

#include "analysis/census.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace camo::analysis;  // NOLINT
  camo::bench::Session session(
      argc, argv, "Section 5.3", "function-pointer census (Coccinelle-style)",
      "1285 run-time-assigned fn-ptr members in 504 types; 229 types with "
      ">1 (convert to const ops structures)");

  // Four independent corpora: the calibrated one (task 0) plus three
  // scaled shapes. Each generates + scans its own source string, so the
  // whole set shards across the session fleet; printing stays serial in
  // the original order (byte-identical at any --jobs value).
  const unsigned scales[] = {1u, 2u, 4u};
  struct CensusRun {
    size_t corpus_bytes = 0;
    CorpusSpec spec;
    CensusResult r;
  };
  const auto runs =
      session.fleet(1 + std::size(scales), [&](size_t i) {
        CensusRun out;
        if (i > 0) {  // scaled corpus; i == 0 keeps the calibrated default
          const unsigned scale = scales[i - 1];
          out.spec.single_ptr_types = 50 * scale;
          out.spec.multi_ptr_types = 30 * scale;
          out.spec.total_members = 200 * scale;
          out.spec.const_ops_types = 20;
          out.spec.seed = scale;
        }
        const std::string corpus = generate_driver_corpus(out.spec);
        out.corpus_bytes = corpus.size();
        out.r = run_census(corpus);
        return out;
      });
  const CensusResult& r = runs[0].r;

  std::printf("corpus: %zu bytes of synthetic driver source\n\n",
              runs[0].corpus_bytes);
  std::printf("%-46s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-46s %10u %10u\n", "runtime-assigned fn-ptr members", 1285,
              r.runtime_assigned_members);
  std::printf("%-46s %10u %10u\n", "compound types containing them", 504,
              r.types_with_runtime_members);
  std::printf("%-46s %10u %10u\n", "types with >1 (ops-struct candidates)",
              229, r.types_with_multiple);
  std::printf("%-46s %10s %10u\n", "const ops tables (no protection needed)",
              "-", r.types_with_fn_ptrs - r.types_with_runtime_members);
  std::printf("%-46s %10s %10u\n", "data-pointer members (DFI candidates)",
              "-", r.data_ptr_members);
  std::printf("\n%s\n", r.summary().c_str());
  session.add("calibrated", "runtime-assigned fn-ptr members",
              r.runtime_assigned_members, "members");
  session.add("calibrated", "compound types containing them",
              r.types_with_runtime_members, "types");
  session.add("calibrated", "types with multiple fn ptrs",
              r.types_with_multiple, "types");

  // Tool sanity across other corpus shapes.
  std::printf("\nscaling check (tool must track planted ground truth):\n");
  std::printf("  %8s %8s %8s | %10s %10s %10s\n", "members", "single",
              "multi", "found mem", "found typ", "found >1");
  for (size_t k = 0; k < std::size(scales); ++k) {
    const CorpusSpec& s = runs[1 + k].spec;
    const CensusResult& res = runs[1 + k].r;
    std::printf("  %8u %8u %8u | %10u %10u %10u\n", s.total_members,
                s.single_ptr_types, s.multi_ptr_types,
                res.runtime_assigned_members, res.types_with_runtime_members,
                res.types_with_multiple);
    session.add("scale" + std::to_string(scales[k]), "recovered members",
                res.runtime_assigned_members, "members",
                static_cast<double>(res.runtime_assigned_members) /
                    s.total_members);
  }
  return session.finish();
}
