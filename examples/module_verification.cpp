// Loadable-module demo (§4.1, §4.6): a well-behaved driver module loads,
// has its statically initialised pointers signed in place, and runs; a
// malicious module that tries to read a PAuth key register is rejected at
// load time by the hypervisor's static verifier.
#include <cstdio>

#include "kernel/machine.h"
#include "kernel/workloads.h"

int main() {
  using namespace camo;  // NOLINT

  std::printf("Loadable kernel module verification demo\n");
  std::printf("=========================================\n\n");

  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  kernel::Machine m(cfg);

  // A well-behaved driver: registers a statically initialised work item
  // (module-local .pauth_init table) and calls it from its init.
  obj::Program good;
  {
    auto& work = good.add_function("gooddrv_work");
    work.mov_sym(9, kernel::kSymWorkCounter);
    work.mov_imm(10, 42);
    work.str(10, 9, 0);
    work.ret();
    good.add_data_u64("gooddrv_item", {0, 0});
    good.add_abs64("gooddrv_item", 8, "gooddrv_work");
    good.declare_signed_ptr("gooddrv_item", 8, kernel::kTypeWorkFunc,
                            cpu::PacKey::IB);
    auto& init = good.add_function("gooddrv_init");
    init.frame_push();
    init.mov_sym(9, "gooddrv_item");
    init.ldr(10, 9, 8);
    init.call_protected(10, 9, kernel::kTypeWorkFunc, cpu::PacKey::IB);
    init.frame_pop_ret();
  }
  const int good_id = m.register_module("gooddrv", std::move(good));

  // A malicious module: MRS of a PAuth key register (key exfiltration).
  obj::Program evil;
  {
    auto& init = evil.add_function("evildrv_init");
    init.mrs(0, isa::SysReg::APIBKeyLo);
    init.mrs(1, isa::SysReg::APIBKeyHi);
    init.ret();
  }
  const int evil_id = m.register_module("evildrv", std::move(evil));

  // User space asks the kernel to load both.
  m.add_user_program(
      kernel::workloads::load_module(static_cast<uint64_t>(good_id)));
  m.add_user_program(
      kernel::workloads::load_module(static_cast<uint64_t>(evil_id)));
  m.boot();
  m.run();

  std::printf("console output: \"%s\"  (Y = loaded, N = rejected)\n\n",
              m.console().c_str());
  std::printf("gooddrv: work counter is %llu (init ran through the "
              "authenticated work pointer)\n",
              static_cast<unsigned long long>(
                  m.read_global(kernel::kSymWorkCounter)));
  if (m.hyp().last_module_verify() && !m.hyp().last_module_verify()->ok()) {
    std::printf("evildrv: rejected by the §4.1 verifier:\n  %s\n",
                m.hyp().last_module_verify()->describe().c_str());
  }
  std::printf("\nloaded modules: %zu (only the verified one)\n",
              m.hyp().loaded_modules().size());
  return 0;
}
