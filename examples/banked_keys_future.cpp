// §8 future work, implemented: an ISA extension for layered key management.
//
// The paper closes with: "an extension could support layered key management
// such that the hypervisor can manage the kernel keys without the need for
// XOM". This example runs the same fully protected kernel twice — once with
// the paper's XOM key-setter design, once with an EL2-managed kernel key
// bank that EL1 execution uses automatically — and compares cost and the
// resulting key-confidentiality story.
#include <cstdio>

#include "kernel/machine.h"
#include "kernel/workloads.h"

int main() {
  using namespace camo;  // NOLINT

  std::printf("Future work (§8): EL2-managed banked kernel keys\n");
  std::printf("================================================\n\n");

  for (const bool banked : {false, true}) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.cpu.banked_keys = banked;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(1000));
    m.boot();
    uint64_t start = 0;
    m.cpu().add_breakpoint(kernel::kUserBase, [&](cpu::Cpu& c) {
      if (start == 0) start = c.cycles();
    });
    m.run();

    std::printf("%s:\n", banked ? "banked kernel keys (ISA extension)"
                                : "XOM key setter (the paper's design)");
    std::printf("  1000 null syscalls: %.1f cycles each\n",
                static_cast<double>(m.cpu().cycles() - start) / 1001);
    if (!banked) {
      std::printf("  key confidentiality: keys hidden as immediates in an "
                  "execute-only page;\n  every kernel entry calls the setter, "
                  "every exit restores user keys;\n  §4.1 verification must "
                  "reject any MRS of a key register.\n\n");
    } else {
      // Demonstrate: even reading the key registers at EL1 reveals nothing.
      const auto& kk = m.boot_result().keys;
      bool leak = false;
      for (int r = 0; r < 10; ++r) {
        const uint64_t v = m.cpu().sysreg(static_cast<isa::SysReg>(r));
        leak |= v == kk.ib.k0 || v == kk.ib.w0 || v == kk.db.k0;
      }
      std::printf("  key confidentiality: kernel keys never exist in "
                  "EL1-accessible state;\n  key registers hold only the "
                  "current task's user keys (leak check: %s);\n  no XOM page, "
                  "no setter call, no key-read verification needed.\n",
                  leak ? "LEAKED!" : "clean");
    }
  }
  std::printf("\nSame protection strength (see BankedKeys.RopStillDetected "
              "in the test suite),\nlower cost, simpler key-confidentiality "
              "argument — the ISA change the paper asks for pays off.\n");
  return 0;
}
