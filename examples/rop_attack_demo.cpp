// ROP attack demo: the same kernel-stack return-address overwrite (§2.1)
// against four kernel builds — unprotected, Clang SP-only CFI, PARTS and
// Camouflage — plus the replay scenarios that separate the schemes
// (§6.2.1/§7).
#include <cstdio>

#include "attacks/attacks.h"

int main() {
  using namespace camo;  // NOLINT
  using attacks::Outcome;
  using compiler::BackwardScheme;

  std::printf("Kernel ROP attack demo\n");
  std::printf("======================\n\n");
  std::printf(
      "Scenario: the attacker has the threat-model write primitive (§3.1)\n"
      "and overwrites the saved return address in a syscall's kernel stack\n"
      "frame with the address of a privilege-escalation gadget.\n\n");

  struct Build {
    const char* what;
    compiler::ProtectionConfig prot;
  };
  compiler::ProtectionConfig none = compiler::ProtectionConfig::none();
  auto with = [](BackwardScheme s) {
    compiler::ProtectionConfig c = compiler::ProtectionConfig::none();
    c.backward = s;
    return c;
  };
  const Build builds[] = {
      {"unprotected kernel", none},
      {"Clang-style CFI (pacia lr, sp — Listing 2)",
       with(BackwardScheme::ClangSp)},
      {"PARTS (16-bit SP + 48-bit LTO function id)",
       with(BackwardScheme::Parts)},
      {"Camouflage (32-bit SP + function address — Listing 3)",
       with(BackwardScheme::Camouflage)},
  };

  for (const auto& b : builds) {
    const auto r = attacks::run_rop_injection(b.prot);
    std::printf("  %-52s -> %-8s  %s\n", b.what,
                attacks::outcome_name(r.outcome), r.detail.c_str());
  }

  std::printf(
      "\nAll three schemes detect *injection* of unsigned pointers. The\n"
      "difference is replay of previously captured signed pointers:\n\n");
  const attacks::ReplayScenario scenarios[] = {
      attacks::ReplayScenario::DiffFunctionSameSp,
      attacks::ReplayScenario::CrossThread64kStacks,
      attacks::ReplayScenario::SameFunctionSameSp,
  };
  std::printf("  %-26s %-10s %-8s %-12s\n", "replay scenario", "clang-sp",
              "parts", "camouflage");
  for (const auto sc : scenarios) {
    std::printf("  %-26s", attacks::replay_scenario_name(sc));
    for (const auto s : {BackwardScheme::ClangSp, BackwardScheme::Parts,
                         BackwardScheme::Camouflage})
      std::printf(" %-9s",
                  attacks::replay_accepted_on_cpu(s, sc) ? "BYPASSED"
                                                         : "caught");
    std::printf("\n");
  }
  std::printf(
      "\nCamouflage's 32-bit-SP + function-address modifier defeats both\n"
      "the Clang same-SP replay and the PARTS 64-KiB cross-thread replay;\n"
      "only the same-function/same-SP window remains (acknowledged in §6.2.1).\n");
  return 0;
}
