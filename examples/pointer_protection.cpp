// Pointer-integrity walkthrough (§4.3, §5.3): shows the exact instruction
// sequences the instrumentation emits for the set_file_ops()/file_ops()
// accessor pattern (Listing 4), then demonstrates on the live machine that
// a signed f_ops pointer cannot be moved to another object or replaced.
#include <cstdio>

#include "assembler/builder.h"
#include "attacks/attacks.h"
#include "compiler/instrument.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "support/format.h"

int main() {
  using namespace camo;  // NOLINT

  std::printf("Pointer integrity (DFI) walkthrough\n");
  std::printf("===================================\n\n");

  // 1. What the compiler emits for the accessors.
  std::printf("file_ops() getter — load + authenticate (paper Listing 4):\n");
  {
    assembler::FunctionBuilder f("file_ops");
    f.load_protected(8, 0, kernel::file::kFops, kernel::kTypeFileFops,
                     cpu::PacKey::DB);
    f.ret();
    compiler::instrument(f, compiler::ProtectionConfig::full());
    std::printf("%s\n", f.listing().c_str());
  }
  std::printf("set_file_ops() setter — sign + store:\n");
  {
    assembler::FunctionBuilder f("set_file_ops");
    f.store_protected(1, 0, kernel::file::kFops, kernel::kTypeFileFops,
                      cpu::PacKey::DB);
    f.ret();
    compiler::instrument(f, compiler::ProtectionConfig::full());
    std::printf("%s\n", f.listing().c_str());
  }
  std::printf("(modifier = 16-bit type·member constant 0x%x in the low bits\n"
              " with the 48-bit containing-object address above it, §4.3)\n\n",
              kernel::kTypeFileFops);

  // 2. Live demonstration: two open files, attacker swaps their signed
  //    f_ops values (a classic reuse attack).
  std::printf("cross-object reuse attack on the live kernel:\n");
  {
    const auto r =
        attacks::run_fops_cross_object_swap(compiler::ProtectionConfig::full());
    std::printf("  with DFI:    %s — %s\n", attacks::outcome_name(r.outcome),
                r.detail.c_str());
  }
  {
    const auto r =
        attacks::run_fops_cross_object_swap(compiler::ProtectionConfig::none());
    std::printf("  without DFI: %s — %s\n", attacks::outcome_name(r.outcome),
                r.detail.c_str());
  }

  // 3. And a forged fake ops table.
  std::printf("\nfake-operations-table attack (§4.5):\n");
  {
    const auto r = attacks::run_fops_redirect(compiler::ProtectionConfig::full());
    std::printf("  with DFI:    %s — %s\n", attacks::outcome_name(r.outcome),
                r.detail.c_str());
    compiler::ProtectionConfig no_dfi = compiler::ProtectionConfig::full();
    no_dfi.dfi = false;
    const auto r2 = attacks::run_fops_redirect(no_dfi);
    std::printf("  forward-edge CFI only: %s — %s\n",
                attacks::outcome_name(r2.outcome), r2.detail.c_str());
  }
  std::printf(
      "\ntakeaway (§4.5): f_ops is a *data* pointer to a table of function\n"
      "pointers — forward-edge CFI alone cannot protect it; Camouflage signs\n"
      "it with a data key bound to the owning struct file.\n");
  return 0;
}
