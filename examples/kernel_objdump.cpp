// kernel_objdump: build the Camouflage kernel under a chosen protection
// configuration and print annotated disassembly of the security-relevant
// functions — the concrete artifact of every design section:
//
//   camo_set_kernel_keys  the XOM key setter (§5.1; immediates are the keys)
//   sign_init_table       the .pauth_init walker (§4.6)
//   cpu_switch_to         signed task-SP save/restore (§5.2)
//   sys_read              the file_ops() getter in context (Listing 4)
//   el1_sync_handler      the §5.4 brute-force policy
//
// Usage: kernel_objdump [camouflage|clang|parts|none|compat] [function]
#include <cstdio>
#include <cstring>

#include "core/bootloader.h"
#include "core/keysetter.h"
#include "kernel/kernel_builder.h"
#include "obj/object.h"

int main(int argc, char** argv) {
  using namespace camo;  // NOLINT

  compiler::ProtectionConfig prot = compiler::ProtectionConfig::full();
  if (argc > 1) {
    const std::string mode = argv[1];
    if (mode == "clang")
      prot.backward = compiler::BackwardScheme::ClangSp;
    else if (mode == "parts")
      prot.backward = compiler::BackwardScheme::Parts;
    else if (mode == "none")
      prot = compiler::ProtectionConfig::none();
    else if (mode == "compat")
      prot.compat_mode = true;
  }

  kernel::KernelConfig kcfg;
  kcfg.protection = prot;
  kernel::KernelBuilder kb(kcfg);
  obj::Program prog = kb.build();
  // Splice in a key setter with a fixed seed so the listing shows real
  // MOVZ/MOVK key immediates.
  prog.add_function_front(core::make_key_setter(
      core::KernelKeys::generate(0x5EED), core::KeyUsage::camouflage_default()));
  compiler::instrument(prog, prot);
  const obj::Image img = obj::Linker::link(prog, kernel::kKernelBase);

  std::printf("kernel image: %s, text+data %llu bytes, %zu functions, "
              "%llu pauth-init entries\n\n",
              prot.describe().c_str(),
              static_cast<unsigned long long>(img.end_va() - img.base_va()),
              img.function_sizes.size(),
              static_cast<unsigned long long>(img.pauth_table_count));

  if (argc > 2) {
    std::printf("%s\n", obj::disassemble_function(img, argv[2]).c_str());
    return 0;
  }

  for (const char* fn : {"sign_init_table", "cpu_switch_to", "sys_read",
                         "el1_sync_handler"}) {
    std::printf("%s\n", obj::disassemble_function(img, fn).c_str());
  }
  // The key setter is a full page of which only the head matters; show the
  // first 16 instructions (the first key half's MOVZ/MOVK/MSR sequence).
  {
    std::string s = obj::disassemble_function(img, core::kKeySetterSymbol);
    size_t pos = 0;
    for (int lines = 0; lines < 17 && pos != std::string::npos; ++lines)
      pos = s.find('\n', pos + 1);
    std::printf("%s  ... (NOP-padded to one execute-only page)\n",
                s.substr(0, pos + 1).c_str());
  }
  return 0;
}
