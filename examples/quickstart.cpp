// Quickstart: boot a Camouflage-protected kernel on the simulated ARMv8.3
// machine, run a user program, and look at what the protection did.
//
//   $ ./examples/quickstart
//
// Walks through: configuring protection, booting (key generation, XOM
// key-setter synthesis, static verification), running user space, and
// inspecting signed pointers in guest memory.
#include <cstdio>

#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "support/format.h"

int main() {
  using namespace camo;  // NOLINT

  std::printf("Camouflage quickstart\n");
  std::printf("=====================\n\n");

  // 1. Configure: full protection = backward-edge CFI (Camouflage modifier),
  //    forward-edge CFI and data-flow integrity, on an ARMv8.3 core.
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.seed = 0x5EED;
  kernel::Machine m(cfg);

  // 2. Add a user thread: write a few chunks to the ram file, then exit.
  m.add_user_program(
      kernel::workloads::write_file(4, 64, kernel::FileKind::Ram));

  // 3. Boot. The bootloader generates the kernel PAuth keys, embeds them in
  //    the execute-only key-setter page, instruments and links the kernel,
  //    and statically verifies the image.
  m.boot();
  const auto& boot = m.boot_result();
  std::printf("booted kernel at %s\n",
              hex(kernel::kKernelBase).c_str());
  std::printf("  protection:      %s\n",
              cfg.kernel.protection.describe().c_str());
  std::printf("  key setter (XOM): %s (1 page, execute-only)\n",
              hex(boot.key_setter_va).c_str());
  std::printf("  static verify:    %s\n",
              boot.kernel_verify.describe().c_str());

  // 4. Run to completion.
  m.run();
  std::printf("\nrun finished: halt=0x%llx (0x%x = all tasks exited), "
              "%llu instructions, %llu cycles\n",
              static_cast<unsigned long long>(m.halt_code()),
              kernel::kHaltDone,
              static_cast<unsigned long long>(m.cpu().retired()),
              static_cast<unsigned long long>(m.cpu().cycles()));

  // 5. Inspect protection artifacts in guest memory.
  const uint64_t work_slot = m.kernel_symbol(kernel::kSymStaticWork) + 8;
  const uint64_t signed_ptr = m.read_u64(work_slot);
  const uint64_t raw = m.kernel_symbol("default_work");
  std::printf("\nstatic work item (DECLARE_WORK analogue, §4.6):\n");
  std::printf("  slot value:   %s  <-- PAC in bits 63:48\n",
              hex(signed_ptr).c_str());
  std::printf("  raw function: %s\n", hex(raw).c_str());
  std::printf("  stripped:     %s (matches: %s)\n",
              hex(m.cpu().pauth().strip(signed_ptr)).c_str(),
              m.cpu().pauth().strip(signed_ptr) == raw ? "yes" : "NO");

  const uint64_t fops = m.read_u64(m.file_struct(0) + kernel::file::kFops);
  std::printf("\nconsole file f_ops pointer (Listing 4 pattern, §4.5):\n");
  std::printf("  stored signed: %s\n", hex(fops).c_str());
  std::printf("  ops table:     %s (.rodata, write-protected)\n",
              hex(m.kernel_symbol("con_fops")).c_str());

  // 6. The keys never appear in readable memory; reading the setter page
  //    with a kernel-level read primitive fails.
  const auto r = m.mmu().translate(boot.key_setter_va, mem::Access::Read,
                                   mem::El::El1);
  std::printf("\nEL1 read of the key-setter page: %s fault (expected: "
              "stage2-permission)\n",
              mem::fault_name(r.fault));
  std::printf("\nOK. Next: examples/rop_attack_demo, "
              "examples/pointer_protection, examples/module_verification.\n");
  return 0;
}
