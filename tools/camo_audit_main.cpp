// camo-audit CLI shim; the commands live in audit_tool.cpp so tests can
// drive them in-process. See audit_tool.h for the command reference.
#include <cstdio>
#include <cstring>
#include <string>

#include "audit_tool.h"

int main(int argc, char** argv) {
  using namespace camo::audit_tool;
  if (argc < 2) {
    std::fputs(usage(), stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "print" && argc == 3) return cmd_print(argv[2]);
  if (cmd == "replay" && argc == 3) return cmd_replay(argv[2]);
  if (cmd == "record") {
    std::string attack, config, out;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      if (flag == "--attack") attack = argv[i + 1];
      else if (flag == "--config") config = argv[i + 1];
      else if (flag == "-o" || flag == "--out") out = argv[i + 1];
      else {
        std::fprintf(stderr, "camo-audit: unknown flag %s\n", flag.c_str());
        return 2;
      }
    }
    if (attack.empty() || config.empty() || out.empty()) {
      std::fputs(usage(), stderr);
      return 2;
    }
    return cmd_record(attack, config, out);
  }
  std::fputs(usage(), stderr);
  return 2;
}
