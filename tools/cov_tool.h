// camo-cov: inspect camo-cov/v1 execution-coverage bundles and bisect
// cross-run divergence (DESIGN.md §3g).
//
// Four commands:
//   report <bundle>        summary (blocks/edges/per-EL retirements) plus
//                          the protected-table audit: every annotated
//                          syscall_table / hook_registry / *_fops row that
//                          never executed is listed — the "which CFI-guarded
//                          targets did this workload actually reach" view;
//   diff <a> <b>           block-level set difference of two bundles
//                          (blocks only in A, only in B, common count);
//   merge -o <out> <in>... merge N bundles into one (hits add, per-EL
//                          retirements add, regions deduplicate) in argv
//                          order — the same fold the fleet uses;
//   bisect [--sb-a on|off] [--fp-a on|off] [--sb-b on|off] [--fp-b on|off]
//          [--perturb <kernel-symbol>] [--interval <n>] [--out <div.json>]
//                          boot two machines running the standard parity
//                          workload under the given engine configurations,
//                          bisect to the first divergent retired instruction
//                          (kernel/bisect.h) and optionally write the
//                          camo-div/v1 bundle. --perturb seeds a deliberate
//                          divergence on side B: at the first hit of the
//                          named kernel symbol its SP is shifted down 16
//                          bytes, which persists (the trapframe restore path
//                          reads a shifted frame). Exit 0 when the outcome
//                          matches the expectation: converged without
//                          --perturb, diverged with it.
//
// The command implementations live in a small library so tests can drive
// them in-process; camo_cov_main.cpp is a thin argv shim.
#pragma once

#include <string>
#include <vector>

#include "obs/coverage.h"

namespace camo::cov_tool {

/// Load + parse + schema-validate + decode one bundle. Returns false after
/// printing the error to stderr.
bool load_cov_bundle(const std::string& path, obs::CovBundle* out);

int cmd_report(const std::string& bundle_path);
int cmd_diff(const std::string& a_path, const std::string& b_path);
int cmd_merge(const std::string& out_path,
              const std::vector<std::string>& inputs);

struct BisectCliOptions {
  bool sb_a = false;
  bool fp_a = true;
  bool sb_b = true;
  bool fp_b = true;
  /// Kernel symbol at whose first execution side B's SP is corrupted;
  /// empty = no perturbation (the parity expectation flips to "converged").
  std::string perturb;
  uint64_t digest_interval = 64;
  std::string out_path;  ///< camo-div/v1 bundle destination ("" = none)
};

int cmd_bisect(const BisectCliOptions& opts);

const char* usage();

}  // namespace camo::cov_tool
