// camo-cov CLI shim; the commands live in cov_tool.cpp so tests can drive
// them in-process. See cov_tool.h for the command reference.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cov_tool.h"

int main(int argc, char** argv) {
  using namespace camo::cov_tool;
  if (argc < 2) {
    std::fputs(usage(), stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "report" && argc == 3) return cmd_report(argv[2]);
  if (cmd == "diff" && argc == 4) return cmd_diff(argv[2], argv[3]);
  if (cmd == "merge") {
    std::string out;
    std::vector<std::string> inputs;
    for (int i = 2; i < argc; ++i) {
      const std::string flag = argv[i];
      if ((flag == "-o" || flag == "--out") && i + 1 < argc) {
        out = argv[++i];
      } else {
        inputs.push_back(flag);
      }
    }
    if (out.empty() || inputs.empty()) {
      std::fputs(usage(), stderr);
      return 2;
    }
    return cmd_merge(out, inputs);
  }
  if (cmd == "bisect") {
    BisectCliOptions opts;
    const auto on_off = [](const std::string& v, bool* dst) {
      if (v == "on") *dst = true;
      else if (v == "off") *dst = false;
      else return false;
      return true;
    };
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string val = argv[i + 1];
      bool ok = true;
      if (flag == "--sb-a") ok = on_off(val, &opts.sb_a);
      else if (flag == "--fp-a") ok = on_off(val, &opts.fp_a);
      else if (flag == "--sb-b") ok = on_off(val, &opts.sb_b);
      else if (flag == "--fp-b") ok = on_off(val, &opts.fp_b);
      else if (flag == "--perturb") opts.perturb = val;
      else if (flag == "--interval") opts.digest_interval =
          std::strtoull(val.c_str(), nullptr, 0);
      else if (flag == "--out" || flag == "-o") opts.out_path = val;
      else ok = false;
      if (!ok) {
        std::fprintf(stderr, "camo-cov: bad flag/value %s %s\n", flag.c_str(),
                     val.c_str());
        return 2;
      }
    }
    if (opts.digest_interval == 0) {
      std::fprintf(stderr, "camo-cov: --interval wants a positive integer\n");
      return 2;
    }
    return cmd_bisect(opts);
  }
  std::fputs(usage(), stderr);
  return 2;
}
