#include "perfdiff.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>

#include "support/format.h"

namespace camo::perfdiff {

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Improved: return "improved";
    case Status::Regressed: return "REGRESSED";
    case Status::Changed: return "CHANGED";
    case Status::Missing: return "MISSING";
    case Status::New: return "new";
    case Status::Info: return "info";
  }
  return "<bad-status>";
}

bool unit_is_cost(const std::string& unit) {
  // "cycles", "cycles/op", "cycles/call", "cycles/switch", ...
  if (unit.rfind("cycles", 0) == 0) return true;
  return unit == "ns" || unit == "us" || unit == "ms" || unit == "insns" ||
         unit == "instructions" || unit == "bytes";
}

bool unit_is_informational(const std::string& unit) {
  // Host-throughput series and anything explicitly host-suffixed. Wall-clock
  // units are cost-shaped but host-dependent, so they are informational too.
  if (unit == "insns/s" || unit == "ops/s" || unit == "ns/op" || unit == "s" ||
      unit == "seconds" || unit == "ns" || unit == "us" || unit == "ms")
    return true;
  static const std::string kSuffix = "-host";
  return unit.size() >= kSuffix.size() &&
         unit.compare(unit.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

bool series_is_informational(const std::string& benchmark) {
  // par::run_fleet scheduler telemetry: steal counts, imbalance and
  // aggregate throughput depend on host scheduling, never on the simulation.
  // Histogram quantile families (bench::Session::add_histogram) are
  // distribution shape: informational by construction. Coverage and
  // divergence families (bench::Session::add_coverage, DESIGN.md §3g) are
  // diagnostic signal — never a perf gate. Trace-tier telemetry (§3i
  // formation/hit/exit counters) is host-side engine behaviour, not a
  // simulated cost. Snapshot/fork and image-cache telemetry (§3j —
  // fork/CoW-page/cache-hit counts) describes host boot-reuse machinery
  // that is guest-invisible by contract, so it can never gate either.
  return benchmark.rfind("fleet.", 0) == 0 ||
         benchmark.rfind("hist.", 0) == 0 ||
         benchmark.rfind("cov.", 0) == 0 ||
         benchmark.rfind("div.", 0) == 0 ||
         benchmark.rfind("trace.", 0) == 0 ||
         benchmark.rfind("snap.", 0) == 0 ||
         benchmark.rfind("imgcache.", 0) == 0;
}

namespace {

using Key = std::tuple<std::string, std::string, std::string, std::string>;

/// Flatten docs into key -> min value (min-of-N across repeated keys),
/// remembering first-seen order for stable output.
void flatten(const std::vector<obs::BenchDoc>& docs,
             std::map<Key, double>& values, std::vector<Key>& order) {
  for (const obs::BenchDoc& doc : docs) {
    for (const obs::BenchSeriesPoint& p : doc.series) {
      Key k{doc.bench, p.config, p.benchmark, p.unit};
      const auto it = values.find(k);
      if (it == values.end()) {
        values.emplace(k, p.value);
        order.push_back(std::move(k));
      } else {
        it->second = std::min(it->second, p.value);
      }
    }
  }
}

/// Engine a document ran under: the trace tier requires superblocks, so the
/// (sb, trace) pair collapses to three names. Documents predating the trace
/// tier parse as trace=false and so read as plain "sb"/"interp" — which is
/// exactly what they ran.
const char* engine_name(bool sb, bool trace) {
  if (sb && trace) return "trace";
  return sb ? "sb" : "interp";
}

}  // namespace

Report diff(const std::vector<obs::BenchDoc>& baseline,
            const std::vector<obs::BenchDoc>& current, const Options& opts) {
  // Refuse cross-jobs comparisons outright: wall-clock series recorded at
  // different --jobs values measure different things, and a silent compare
  // would launder that into pass/fail noise.
  {
    std::map<std::string, unsigned> base_jobs;
    for (const obs::BenchDoc& doc : baseline) base_jobs[doc.bench] = doc.jobs;
    for (const obs::BenchDoc& doc : current) {
      const auto it = base_jobs.find(doc.bench);
      if (it != base_jobs.end() && it->second != doc.jobs) {
        Report rep;
        rep.error = strformat(
            "bench \"%s\": baseline recorded with --jobs %u, current with "
            "--jobs %u — not comparable; re-record one side",
            doc.bench.c_str(), it->second, doc.jobs);
        rep.ok = false;
        return rep;
      }
    }
  }
  // Refuse cross-cores comparisons for the stronger reason: guest core
  // count is part of the simulated contract — a 2-core guest schedules
  // differently — so even the deterministic cycle series measure different
  // systems.
  {
    std::map<std::string, unsigned> base_cores;
    for (const obs::BenchDoc& doc : baseline)
      base_cores[doc.bench] = doc.cores;
    for (const obs::BenchDoc& doc : current) {
      const auto it = base_cores.find(doc.bench);
      if (it != base_cores.end() && it->second != doc.cores) {
        Report rep;
        rep.error = strformat(
            "bench \"%s\": baseline recorded with --cores %u, current with "
            "--cores %u — not comparable; re-record one side",
            doc.bench.c_str(), it->second, doc.cores);
        rep.ok = false;
        return rep;
      }
    }
  }
  // Refuse cross-engine comparisons (interp vs sb vs trace): the engines
  // retire identical simulated cycles, but every host-side series — wall
  // clock, throughput, fast-path counters — measures a different
  // implementation, so a diff across them is answering the wrong question.
  {
    std::map<std::string, const obs::BenchDoc*> base_engine;
    for (const obs::BenchDoc& doc : baseline) base_engine[doc.bench] = &doc;
    for (const obs::BenchDoc& doc : current) {
      const auto it = base_engine.find(doc.bench);
      if (it != base_engine.end() &&
          (it->second->sb != doc.sb || it->second->trace != doc.trace)) {
        Report rep;
        rep.error = strformat(
            "bench \"%s\": baseline recorded with engine=%s, current with "
            "engine=%s — not comparable; re-record one side",
            doc.bench.c_str(),
            engine_name(it->second->sb, it->second->trace),
            engine_name(doc.sb, doc.trace));
        rep.ok = false;
        return rep;
      }
    }
  }
  std::map<Key, double> base_vals, cur_vals;
  std::vector<Key> base_order, cur_order;
  flatten(baseline, base_vals, base_order);
  flatten(current, cur_vals, cur_order);

  Report rep;
  // Record each current bench's run conditions for the report header
  // (first document wins; the jobs check above already rejected mixes).
  for (const obs::BenchDoc& doc : current) {
    bool seen = false;
    for (const Report::RunHeader& h : rep.headers) seen |= h.bench == doc.bench;
    if (!seen)
      rep.headers.push_back(
          {doc.bench, doc.jobs, doc.cores, doc.sb, doc.trace, doc.snap});
  }
  for (const Key& k : base_order) {
    Delta d;
    std::tie(d.bench, d.config, d.benchmark, d.unit) = k;
    d.baseline = base_vals.at(k);
    const bool info =
        unit_is_informational(d.unit) || series_is_informational(d.benchmark);
    const auto it = cur_vals.find(k);
    if (it == cur_vals.end()) {
      d.current = 0;
      d.pct = 0;
      // Informational series are report-only: their absence is not a
      // gateable event either.
      d.status = info ? Status::Info : Status::Missing;
      if (!info) ++rep.missing;
      rep.deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->second;
    if (d.baseline != 0) {
      d.pct = (d.current - d.baseline) / std::fabs(d.baseline) * 100.0;
    } else {
      d.pct = d.current == 0 ? 0.0 : 100.0;  // 0 -> nonzero: flag it
    }
    if (info) {
      d.status = Status::Info;  // printed with its delta, never gated
      rep.deltas.push_back(std::move(d));
      continue;
    }
    const bool beyond = std::fabs(d.pct) > opts.threshold_pct;
    if (!beyond) {
      d.status = Status::Ok;
    } else if (unit_is_cost(d.unit)) {
      d.status = d.pct > 0 ? Status::Regressed : Status::Improved;
    } else {
      d.status = Status::Changed;
    }
    if (d.status == Status::Regressed || d.status == Status::Changed)
      ++rep.regressed;
    if (d.status == Status::Improved) ++rep.improved;
    rep.deltas.push_back(std::move(d));
  }
  for (const Key& k : cur_order) {
    if (base_vals.count(k)) continue;
    Delta d;
    std::tie(d.bench, d.config, d.benchmark, d.unit) = k;
    d.current = cur_vals.at(k);
    if (unit_is_informational(d.unit) ||
        series_is_informational(d.benchmark)) {
      d.status = Status::Info;  // new informational series never gate
    } else {
      d.status = Status::New;
      ++rep.added;
    }
    rep.deltas.push_back(std::move(d));
  }

  rep.ok = rep.regressed == 0 && (opts.allow_missing || rep.missing == 0) &&
           (opts.allow_new || rep.added == 0);
  return rep;
}

std::string Report::markdown() const {
  if (!error.empty()) return "FAIL: " + error + "\n";
  std::string out;
  for (const RunHeader& h : headers)
    out += strformat("- `%s`: jobs=%u, cores=%u, engine=%s, snap=%s\n",
                     h.bench.c_str(), h.jobs, h.cores,
                     engine_name(h.sb, h.trace), h.snap ? "on" : "off");
  if (!headers.empty()) out += "\n";
  out +=
      "| series | unit | baseline | current | delta | status |\n"
      "|---|---|---:|---:|---:|---|\n";
  for (const Delta& d : deltas) {
    const std::string series =
        d.bench + " / " + d.config + " / " + d.benchmark;
    std::string delta_txt;
    if (d.status == Status::Missing || d.status == Status::New ||
        (d.status == Status::Info && d.baseline == 0))
      delta_txt = "-";
    else
      delta_txt = strformat("%+.2f%%", d.pct);
    out += strformat("| %s | %s | %.6g | %.6g | %s | %s |\n", series.c_str(),
                     d.unit.c_str(), d.baseline, d.current, delta_txt.c_str(),
                     status_name(d.status));
  }
  out += strformat(
      "\n%s: %d regressed, %d improved, %d missing, %d new, %zu series\n",
      ok ? "PASS" : "FAIL", regressed, improved, missing, added,
      deltas.size());
  return out;
}

bool load_path(const std::string& path, std::vector<obs::BenchDoc>& out,
               std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (entry.path().extension() == ".json")
        files.push_back(entry.path().string());
    }
    if (ec) {
      if (error) *error = "cannot list " + path + ": " + ec.message();
      return false;
    }
    if (files.empty()) {
      if (error) *error = "no *.json files in " + path;
      return false;
    }
    std::sort(files.begin(), files.end());
    for (const std::string& f : files) {
      auto doc = obs::load_bench_file(f, error);
      if (!doc) return false;
      out.push_back(std::move(*doc));
    }
    return true;
  }
  auto doc = obs::load_bench_file(path, error);
  if (!doc) return false;
  out.push_back(std::move(*doc));
  return true;
}

}  // namespace camo::perfdiff
