// camo-perfdiff: the cross-run perf regression gate.
//
// Compares two sets of camo-bench/v1 documents (see obs/bench_schema.h) —
// a checked-in baseline and a fresh run — series by series. The simulator's
// cycle model is deterministic, so for cycle-valued series any drift is a
// real behavioural change; the noise threshold exists for wall-clock series
// and for intentionally-loose gates, not for simulator jitter.
//
// Matching key: (bench, config, benchmark, unit). When the same key appears
// more than once within one side (N recorded repetitions), the *minimum*
// value is used — min-of-N is the standard way to strip scheduling noise
// from benchmark repetitions.
//
// Direction: units that measure cost ("cycles", "cycles/op", "ns", ...)
// regress only when they *increase* beyond the threshold; a decrease is an
// improvement. Every other unit (counts, ratios, "tries") is gated exactly:
// any move beyond the threshold is flagged as CHANGED, because for a
// deterministic simulation an unexplained change in either direction means
// the behaviour changed, which is what the gate exists to catch.
//
// Informational units are the exception to both rules: host-dependent
// measurements (wall-clock "s"/"ns"/"us"/"ms", "insns/s" host throughput,
// and any "*-host" suffixed unit) vary run to run and machine to machine,
// so they are printed in the delta table with the "info" status but never
// counted toward the gate — not as regressions, not as missing, not as new.
// "fleet."-prefixed benchmark names (steal counts, imbalance, aggregate
// throughput — par::run_fleet scheduler telemetry) are informational
// regardless of unit, for the same reason.
//
// Runs record their --jobs value in the document header (absent = 1).
// Documents for the same bench with different jobs values are refused
// outright: simulated series would still match, but wall-clock series mean
// different things, and a gate that silently compared them would hide that.
// The --cores header field (absent = 1) is refused on mismatch for a
// stronger reason: guest core count changes the *simulated* results
// themselves, so nothing in a cross-cores pair is comparable.
// The engine headers — "sb" (absent = true) and "trace" (absent = false) —
// are likewise refused on mismatch: the engines retire identical simulated
// cycles, but every host-side series measures a different implementation,
// so interp/sb/trace recordings are never diffed against each other.
// The "snap" header (absent = false) is reported but NOT refused on
// mismatch: snapshot/fork reuse is guest-invisible by contract — every
// gated simulated series is bit-identical snap on/off — so a snap-on run
// gates cleanly against a snap-off baseline. Its side effects (the snap.*
// and imgcache.* series) are informational, like fleet.*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/bench_schema.h"

namespace camo::perfdiff {

struct Options {
  double threshold_pct = 5.0;  ///< noise threshold, percent
  bool allow_missing = false;  ///< baseline series absent from current run
  bool allow_new = true;       ///< current series absent from baseline
};

enum class Status : uint8_t {
  Ok,        ///< within the noise threshold
  Improved,  ///< cost unit decreased beyond the threshold
  Regressed, ///< cost unit increased beyond the threshold
  Changed,   ///< exact-gated unit moved beyond the threshold
  Missing,   ///< in the baseline, absent from the current run
  New,       ///< in the current run, absent from the baseline
  Info,      ///< informational unit: reported, never gated
};

const char* status_name(Status s);

/// True for units where smaller is faster ("cycles", "cycles/op", "ns"...).
bool unit_is_cost(const std::string& unit);
/// True for host-dependent units that are report-only ("insns/s", wall-clock
/// "s"/"ns"/"us"/"ms", "*-host"). Takes precedence over unit_is_cost in
/// diff().
bool unit_is_informational(const std::string& unit);
/// True for benchmark names that are report-only regardless of unit:
/// "fleet."-prefixed scheduler telemetry (steals, imbalance, throughput),
/// "hist."-prefixed histogram quantiles (distribution shape — p50/p95/
/// p99 move with workload composition, so they inform, never gate), and
/// "cov."/"div."-prefixed coverage and divergence counters (execution-shape
/// diagnostics, DESIGN.md §3g), "trace."-prefixed trace-tier telemetry
/// (formation/hit/exit counters, §3i — host-side engine behaviour), and
/// "snap."/"imgcache."-prefixed snapshot-fork and image-cache telemetry
/// (§3j — host boot-reuse machinery, guest-invisible by contract).
bool series_is_informational(const std::string& benchmark);

struct Delta {
  std::string bench, config, benchmark, unit;
  double baseline = 0;  ///< min-of-N on the baseline side
  double current = 0;   ///< min-of-N on the current side
  double pct = 0;       ///< (current - baseline) / baseline * 100
  Status status = Status::Ok;
};

struct Report {
  /// One line per bench in the current set: the run conditions its document
  /// header recorded (--jobs, superblock engine). Printed at the top of
  /// markdown() so a report is interpretable without opening the JSON.
  struct RunHeader {
    std::string bench;
    unsigned jobs = 1;
    unsigned cores = 1;
    bool sb = true;
    bool trace = false;
    bool snap = false;
  };
  std::vector<RunHeader> headers;
  std::vector<Delta> deltas;  ///< baseline order, then new series
  int regressed = 0;          ///< Regressed + Changed
  int improved = 0;
  int missing = 0;
  int added = 0;
  bool ok = false;  ///< gate verdict under the Options used for the diff
  /// Non-empty when the two sides are not comparable at all (e.g. the same
  /// bench was recorded with different --jobs values); ok is then false and
  /// deltas is empty.
  std::string error;

  /// Markdown delta table plus a one-line verdict (or the refusal message).
  std::string markdown() const;
};

/// Diff two document sets. Every series in `baseline` is matched against
/// `current`; unmatched current series are appended as New.
Report diff(const std::vector<obs::BenchDoc>& baseline,
            const std::vector<obs::BenchDoc>& current,
            const Options& opts = Options{});

/// Load one camo-bench/v1 file, or every *.json in a directory (sorted).
/// Returns false and sets `error` on the first unreadable/invalid file.
bool load_path(const std::string& path, std::vector<obs::BenchDoc>& out,
               std::string* error);

}  // namespace camo::perfdiff
