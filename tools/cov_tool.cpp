#include "cov_tool.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "kernel/bisect.h"
#include "kernel/workloads.h"
#include "obs/divergence.h"
#include "obs/json.h"

namespace camo::cov_tool {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "camo-cov: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

unsigned long long ull(uint64_t v) { return static_cast<unsigned long long>(v); }

}  // namespace

bool load_cov_bundle(const std::string& path, obs::CovBundle* out) {
  std::string text;
  if (!read_file(path, &text)) return false;
  const auto doc = obs::json::Value::parse(text);
  if (!doc) {
    std::fprintf(stderr, "camo-cov: %s is not valid JSON\n", path.c_str());
    return false;
  }
  const std::string err = obs::validate_cov_bundle(*doc);
  if (!err.empty()) {
    std::fprintf(stderr, "camo-cov: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  if (!obs::cov_bundle_from_json(*doc, out)) {
    std::fprintf(stderr, "camo-cov: %s: bundle decode failed\n", path.c_str());
    return false;
  }
  return true;
}

int cmd_report(const std::string& bundle_path) {
  obs::CovBundle b;
  if (!load_cov_bundle(bundle_path, &b)) return 1;
  std::printf("camo-cov/v1 bundle: %s\n", bundle_path.c_str());
  std::printf("  label:    %s\n", b.label.c_str());
  std::printf("  machines: %llu\n", ull(b.machines));
  std::printf("  retired:  el0=%llu el1=%llu el2=%llu\n",
              ull(b.map.retired_at(0)), ull(b.map.retired_at(1)),
              ull(b.map.retired_at(2)));
  std::printf("  blocks:   %llu unique\n", ull(b.map.unique_blocks()));
  std::printf("  edges:    %llu unique\n", ull(b.map.unique_edges()));

  // Function regions (table == "") give the whole-kernel view; table rows
  // (table != "") are the CFI-relevant audit — a protected indirect-call
  // target that never executed is untested attack surface.
  uint64_t fn_total = 0, fn_hit = 0;
  uint64_t row_total = 0, row_hit = 0;
  std::vector<const obs::CovRegion*> cold_rows;
  for (const obs::CovRegion& r : b.map.regions()) {
    const bool hit = b.map.any_executed(r.pa, r.len);
    if (r.table.empty()) {
      ++fn_total;
      fn_hit += hit;
    } else {
      ++row_total;
      row_hit += hit;
      if (!hit) cold_rows.push_back(&r);
    }
  }
  if (fn_total)
    std::printf("  functions executed: %llu / %llu\n", ull(fn_hit),
                ull(fn_total));
  if (row_total) {
    std::printf("  protected-table rows executed: %llu / %llu\n", ull(row_hit),
                ull(row_total));
    if (!cold_rows.empty()) {
      std::printf("  never-executed protected-table rows:\n");
      for (const obs::CovRegion* r : cold_rows)
        std::printf("    %-40s pa=0x%llx len=%llu\n", r->name.c_str(),
                    ull(r->pa), ull(r->len));
    }
  } else {
    std::printf("  (no protected-table regions annotated)\n");
  }
  return 0;
}

int cmd_diff(const std::string& a_path, const std::string& b_path) {
  obs::CovBundle a, b;
  if (!load_cov_bundle(a_path, &a) || !load_cov_bundle(b_path, &b)) return 1;
  const obs::CovDiff d = obs::diff_coverage(a.map, b.map);
  std::printf("coverage diff: %s vs %s\n", a.label.c_str(), b.label.c_str());
  std::printf("  common blocks: %llu\n", ull(d.common));
  const auto list = [](const char* side, const std::vector<uint64_t>& pas) {
    std::printf("  only in %s: %zu block(s)\n", side, pas.size());
    const size_t shown = pas.size() < 16 ? pas.size() : 16;
    for (size_t i = 0; i < shown; ++i)
      std::printf("    pa=0x%llx\n", static_cast<unsigned long long>(pas[i]));
    if (shown < pas.size())
      std::printf("    ... %zu more\n", pas.size() - shown);
  };
  list("A", d.only_a);
  list("B", d.only_b);
  return 0;
}

int cmd_merge(const std::string& out_path,
              const std::vector<std::string>& inputs) {
  obs::CoverageMap merged;
  uint64_t machines = 0;
  for (const std::string& path : inputs) {
    obs::CovBundle b;
    if (!load_cov_bundle(path, &b)) return 1;
    merged.merge_from(b.map);
    machines += b.machines;
  }
  const std::string text = obs::cov_bundle_json(merged, "merge", machines);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "camo-cov: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << text << "\n";
  std::printf("merged %zu bundle(s), %llu machine(s) -> %s\n", inputs.size(),
              ull(machines), out_path.c_str());
  return 0;
}

int cmd_bisect(const BisectCliOptions& opts) {
  const auto side = [](const char* label, bool sb, bool fp) {
    kernel::BisectSide s;
    s.label = std::string(label) + (sb ? " sb-on" : " sb-off") +
              (fp ? " fp-on" : " fp-off");
    s.cfg.kernel.protection = compiler::ProtectionConfig::full();
    s.cfg.kernel.log_pac_failures = false;
    s.cfg.kernel.preempt = true;
    s.cfg.cpu.superblocks = sb;
    s.cfg.cpu.fast_path = fp;
    s.setup = [](kernel::Machine& m) {
      m.add_user_program(kernel::workloads::null_syscall(25));
      m.add_user_program(kernel::workloads::yield_loop(10));
    };
    return s;
  };
  kernel::BisectSide a = side("A", opts.sb_a, opts.fp_a);
  kernel::BisectSide b = side("B", opts.sb_b, opts.fp_b);
  if (!opts.perturb.empty()) {
    b.label += " perturbed:" + opts.perturb;
    // One-shot SP corruption at the first execution of the symbol. SP_EL1
    // is live through the handler and the trapframe restore path reads
    // [SP], so the shift persists — every later digest differs. The flag
    // is per-machine (fresh probe machines each re-arm it), so every probe
    // of side B diverges at the same retirement.
    b.prepare = [sym = opts.perturb](kernel::Machine& m) {
      auto fired = std::make_shared<bool>(false);
      const uint64_t va = m.kernel_symbol(sym);
      m.cpu().add_breakpoint(va, [fired](cpu::Cpu& c) {
        if (*fired) return;
        *fired = true;
        c.set_sp(c.sp() - 16);
      });
    };
  }
  kernel::BisectOptions bo;
  bo.digest_interval = opts.digest_interval;
  const obs::DivergenceReport r = kernel::bisect_divergence(a, b, bo);
  if (r.diverged)
    std::printf("DIVERGED at retirement %llu (%s vs %s)\n",
                ull(r.first_divergent), r.a.label.c_str(), r.b.label.c_str());
  else
    std::printf("converged through %llu retirements (%s vs %s)\n",
                ull(r.compared), r.a.label.c_str(), r.b.label.c_str());
  if (!opts.out_path.empty()) {
    const std::string text = obs::div_bundle_json(r);
    const auto doc = obs::json::Value::parse(text);
    const std::string err = doc ? obs::validate_div_bundle(*doc)
                                : "emitted bundle does not parse";
    if (!err.empty()) {
      std::fprintf(stderr, "camo-cov: emitted div bundle invalid: %s\n",
                   err.c_str());
      return 1;
    }
    std::ofstream out(opts.out_path);
    if (!out) {
      std::fprintf(stderr, "camo-cov: cannot write %s\n",
                   opts.out_path.c_str());
      return 1;
    }
    out << text << "\n";
    std::printf("[divergence bundle -> %s]\n", opts.out_path.c_str());
  }
  // Expectation: a perturbation must be found, engine-only differences must
  // not invent one.
  const bool expect_diverged = !opts.perturb.empty();
  if (r.diverged != expect_diverged) {
    std::fprintf(stderr, "camo-cov: expected %s but runs %s\n",
                 expect_diverged ? "divergence" : "convergence",
                 r.diverged ? "diverged" : "converged");
    return 1;
  }
  return 0;
}

const char* usage() {
  return "usage:\n"
         "  camo-cov report <bundle.json>\n"
         "  camo-cov diff <a.json> <b.json>\n"
         "  camo-cov merge -o <out.json> <in.json>...\n"
         "  camo-cov bisect [--sb-a on|off] [--fp-a on|off]\n"
         "                  [--sb-b on|off] [--fp-b on|off]\n"
         "                  [--perturb <kernel-symbol>] [--interval <n>]\n"
         "                  [--out <div.json>]\n";
}

}  // namespace camo::cov_tool
