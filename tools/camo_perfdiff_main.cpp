// camo-perfdiff CLI — compare two camo-bench/v1 documents or directories
// and gate on regressions. Exit codes: 0 = pass, 1 = gate failure
// (regression / unexplained change / missing series), 2 = usage or I/O
// error. See tools/perfdiff.h for the matching and direction rules.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "perfdiff.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <baseline.json|dir> <current.json|dir>\n"
      "\n"
      "Compare camo-bench/v1 series and exit non-zero on regression.\n"
      "\n"
      "options:\n"
      "  --threshold <pct>   noise threshold in percent (default 5)\n"
      "  --allow-missing     baseline series absent from the current run\n"
      "                      do not fail the gate\n"
      "  --forbid-new        fail when the current run has series the\n"
      "                      baseline lacks (default: allowed)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  camo::perfdiff::Options opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threshold requires a value\n");
        return usage(argv[0]);
      }
      char* end = nullptr;
      opts.threshold_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || opts.threshold_pct < 0) {
        std::fprintf(stderr, "error: bad --threshold value \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--allow-missing") {
      opts.allow_missing = true;
    } else if (arg == "--forbid-new") {
      opts.allow_new = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option \"%s\"\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage(argv[0]);

  std::string err;
  std::vector<camo::obs::BenchDoc> baseline, current;
  if (!camo::perfdiff::load_path(paths[0], baseline, &err)) {
    std::fprintf(stderr, "error: baseline: %s\n", err.c_str());
    return 2;
  }
  if (!camo::perfdiff::load_path(paths[1], current, &err)) {
    std::fprintf(stderr, "error: current: %s\n", err.c_str());
    return 2;
  }

  const auto report = camo::perfdiff::diff(baseline, current, opts);
  std::fputs(report.markdown().c_str(), stdout);
  return report.ok ? 0 : 1;
}
