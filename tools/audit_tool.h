// camo-audit: inspect and replay camo-flight/v1 crash bundles.
//
// Three commands, one per stage of a security post-mortem:
//   print  <bundle>   pretty-print the scenario, the audit stream with the
//                     causal chain of the terminal auth failure highlighted,
//                     the instruction ring tail and the state snapshot;
//   record --attack A --config C -o <bundle>
//                     run one named attack (attacks::run_named_attack) with
//                     flight capture and write its bundle;
//   replay <bundle>   re-execute the bundle's scenario on a fresh Machine
//                     and verify the fresh bundle is bit-for-bit identical
//                     (same violation PC, cycle counts, audit causal chain)
//                     — the determinism check DESIGN.md §3f promises.
//
// The command implementations live in a small library so tests can drive
// them in-process; camo_audit_main.cpp is a thin argv shim.
#pragma once

#include <string>

namespace camo::audit_tool {

int cmd_print(const std::string& bundle_path);
int cmd_record(const std::string& attack, const std::string& config,
               const std::string& out_path);
int cmd_replay(const std::string& bundle_path);

/// Parse `text` as JSON and re-dump it in canonical form (2-space indent,
/// sorted-insertion order preserved). Returns empty and sets `error` when
/// the text is not valid JSON. Replay compares canonical forms so trailing
/// whitespace or newline differences cannot mask (or fake) a mismatch.
std::string canonical_bundle(const std::string& text, std::string* error);

const char* usage();

}  // namespace camo::audit_tool
