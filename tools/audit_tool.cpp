#include "audit_tool.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <vector>

#include "attacks/attacks.h"
#include "obs/audit.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "support/format.h"

namespace camo::audit_tool {

namespace {

using obs::AuditEvent;
using obs::AuditKind;
using obs::json::Value;

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

/// One audit event as a human line; the payload layout follows the kind
/// (see obs/audit.h).
std::string event_line(const AuditEvent& e) {
  // Multi-core machines attribute every event to its emitting core
  // ("m0.c1"); single-core output keeps the classic "m0" prefix.
  std::string s =
      e.cpu != 0 ? strformat("m%u.c%u", e.machine, e.cpu)
                 : strformat("m%u", e.machine);
  s += strformat(" %10llu  %-13s", static_cast<unsigned long long>(e.cycles),
                 obs::audit_kind_name(e.kind));
  const auto hex = [](uint64_t v) { return obs::hex_u64(v); };
  switch (e.kind) {
    case AuditKind::KeyInstall:
      s += strformat(" key=%s prov=%llu %s (el%u, pc=%s)",
                     obs::pac_key_label(e.key),
                     static_cast<unsigned long long>(e.prov),
                     e.bank ? "el2-bank" : "live", e.el, hex(e.pc).c_str());
      break;
    case AuditKind::Sign:
      s += strformat(" key=%s %s -> %s mod=%s(%s) prov=%llu (el%u)",
                     obs::pac_key_label(e.key), hex(e.ptr).c_str(),
                     hex(e.ptr2).c_str(), hex(e.modifier).c_str(),
                     obs::modifier_class_name(
                         static_cast<obs::ModifierClass>(e.mclass)),
                     static_cast<unsigned long long>(e.prov), e.el);
      break;
    case AuditKind::AuthOk:
    case AuditKind::AuthFail:
      s += strformat(" key=%s %s -> %s mod=%s(%s) prov=%llu pc=%s lr=%s",
                     obs::pac_key_label(e.key), hex(e.ptr).c_str(),
                     hex(e.ptr2).c_str(), hex(e.modifier).c_str(),
                     obs::modifier_class_name(
                         static_cast<obs::ModifierClass>(e.mclass)),
                     static_cast<unsigned long long>(e.prov),
                     hex(e.pc).c_str(), hex(e.lr).c_str());
      break;
    case AuditKind::ElEnter:
      s += strformat(" el%u -> handler (%s), far=%s, return=%s", e.el,
                     obs::exc_class_label(e.aux), hex(e.ptr).c_str(),
                     hex(e.pc).c_str());
      break;
    case AuditKind::ElExit:
      s += strformat(" -> el%u, target=%s", e.aux, hex(e.ptr).c_str());
      break;
    case AuditKind::HypDenied:
      s += strformat(" el%u MSR sysreg=%u pc=%s", e.el, e.imm,
                     hex(e.pc).c_str());
      break;
    case AuditKind::ModuleVerify:
      s += strformat(" module=%llu init=%s %s",
                     static_cast<unsigned long long>(e.ptr),
                     hex(e.ptr2).c_str(), e.aux ? "verified" : "REJECTED");
      break;
    case AuditKind::AttackVerdict:
      s += strformat(" %s (pac_failures=%llu, halt=%s)",
                     attacks::outcome_name(
                         static_cast<attacks::Outcome>(e.aux)),
                     static_cast<unsigned long long>(e.ptr),
                     hex(e.ptr2).c_str());
      break;
    default:
      break;
  }
  return s;
}

}  // namespace

const char* usage() {
  return "usage:\n"
         "  camo-audit print  <bundle.json>\n"
         "  camo-audit record --attack <name> --config <name> -o "
         "<bundle.json>\n"
         "  camo-audit replay <bundle.json>\n"
         "\n"
         "print   pretty-print a camo-flight/v1 bundle and its causal chain\n"
         "record  run a named attack with flight capture and write the "
         "bundle\n"
         "replay  re-execute the bundle's scenario on a fresh machine and\n"
         "        verify it reproduces the violation bit-for-bit\n";
}

std::string canonical_bundle(const std::string& text, std::string* error) {
  const auto parsed = Value::parse(text);
  if (!parsed) {
    if (error) *error = "not valid JSON";
    return "";
  }
  return parsed->dump(2);
}

int cmd_print(const std::string& bundle_path) {
  std::string text, error;
  if (!read_file(bundle_path, &text, &error)) {
    std::fprintf(stderr, "camo-audit: %s\n", error.c_str());
    return 1;
  }
  const auto doc = Value::parse(text);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr, "camo-audit: %s is not a JSON object\n",
                 bundle_path.c_str());
    return 1;
  }
  const Value* schema = doc->get("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "camo-flight/v1") {
    std::fprintf(stderr, "camo-audit: %s: missing/wrong schema (want "
                         "camo-flight/v1)\n",
                 bundle_path.c_str());
    return 1;
  }

  const Value* scenario = doc->get("scenario");
  std::string attack, config, seed;
  if (scenario && scenario->is_object()) {
    if (const Value* v = scenario->get("attack")) attack = v->as_string();
    if (const Value* v = scenario->get("config")) config = v->as_string();
    if (const Value* v = scenario->get("seed")) seed = v->as_string();
  }
  std::printf("camo-flight/v1 bundle: %s\n", bundle_path.c_str());
  std::printf("scenario: %s under \"%s\" (seed %s)\n", attack.c_str(),
              config.c_str(), seed.c_str());
  const Value* captured = doc->get("captured");
  const Value* triggers = doc->get("triggers");
  std::printf("captured: %s (%llu trigger(s))\n",
              captured && captured->as_bool() ? "yes" : "no",
              static_cast<unsigned long long>(
                  triggers ? obs::parse_hex_u64(*triggers) : 0));
  if (const Value* trig = doc->get("trigger")) {
    const Value* kind = trig->get("kind");
    const Value* pc = trig->get("pc");
    const Value* cyc = trig->get("cycles");
    std::printf("trigger: %s at pc=%s, cycle %llu\n",
                obs::event_kind_name(static_cast<obs::EventKind>(
                    kind ? obs::parse_hex_u64(*kind) : 0)),
                pc ? obs::hex_u64(obs::parse_hex_u64(*pc)).c_str() : "0x0",
                static_cast<unsigned long long>(
                    cyc ? obs::parse_hex_u64(*cyc) : 0));
  }

  // Chain membership for the audit listing below.
  std::set<uint64_t> chain_idx;
  std::vector<uint64_t> chain_order;
  if (const Value* chain = doc->get("chain")) {
    for (size_t i = 0; i < chain->size(); ++i) {
      const uint64_t idx = obs::parse_hex_u64(*chain->at(i));
      chain_idx.insert(idx);
      chain_order.push_back(idx);
    }
  }

  std::vector<AuditEvent> events;
  if (const Value* audit = doc->get("audit")) {
    for (size_t i = 0; i < audit->size(); ++i) {
      AuditEvent e;
      if (obs::audit_event_from_json(*audit->at(i), &e)) events.push_back(e);
    }
  }
  std::printf("\naudit stream (%zu events; * = causal chain of the terminal "
              "auth failure):\n",
              events.size());
  for (size_t i = 0; i < events.size(); ++i)
    std::printf(" %c[%4zu] %s\n", chain_idx.count(i) ? '*' : ' ', i,
                event_line(events[i]).c_str());
  if (!chain_order.empty()) {
    std::printf("\ncausal chain (%zu links):\n", chain_order.size());
    for (const uint64_t idx : chain_order)
      if (idx < events.size())
        std::printf("  [%4llu] %s\n", static_cast<unsigned long long>(idx),
                    event_line(events[idx]).c_str());
  }

  if (const Value* ring = doc->get("ring")) {
    const size_t n = ring->size();
    const size_t show = n < 16 ? n : 16;
    std::printf("\nflight ring (last %zu of %zu retired instructions):\n",
                show, n);
    for (size_t i = n - show; i < n; ++i) {
      const Value* in = ring->at(i);
      const uint64_t cyc = obs::parse_hex_u64(*in->get("cycles"));
      const uint64_t pc = obs::parse_hex_u64(*in->get("pc"));
      const uint64_t op = obs::parse_hex_u64(*in->get("op"));
      const uint64_t el = obs::parse_hex_u64(*in->get("el"));
      std::printf("  %10llu  el%llu  %s  %s\n",
                  static_cast<unsigned long long>(cyc),
                  static_cast<unsigned long long>(el),
                  obs::hex_u64(pc).c_str(),
                  obs::op_class_name(static_cast<obs::OpClass>(op)));
    }
  }
  if (const Value* state = doc->get("state")) {
    const auto u64 = [&](const char* name) {
      const Value* v = state->get(name);
      return v ? obs::parse_hex_u64(*v) : 0;
    };
    std::printf("\nstate at capture: pc=%s el=%llu elr_el1=%s esr_el1=%s "
                "far_el1=%s\n",
                obs::hex_u64(u64("pc")).c_str(),
                static_cast<unsigned long long>(u64("el")),
                obs::hex_u64(u64("elr_el1")).c_str(),
                obs::hex_u64(u64("esr_el1")).c_str(),
                obs::hex_u64(u64("far_el1")).c_str());
    if (const Value* keys = state->get("keys")) {
      std::printf("keys:");
      for (size_t k = 0; k < keys->size() && k < 5; ++k) {
        const Value* prov = keys->at(k)->get("prov");
        std::printf(" %s(prov=%llu)", obs::pac_key_label(static_cast<uint8_t>(k)),
                    static_cast<unsigned long long>(
                        prov ? obs::parse_hex_u64(*prov) : 0));
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_record(const std::string& attack, const std::string& config,
               const std::string& out_path) {
  std::string bundle;
  const auto r = attacks::run_named_attack(attack, config, &bundle);
  if (!r) {
    std::fprintf(stderr, "camo-audit: unknown attack or config\n  attacks:");
    for (const auto& n : attacks::attack_names())
      std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n  configs:");
    for (const auto& n : attacks::attack_config_names())
      std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (bundle.empty()) {
    std::fprintf(stderr, "camo-audit: attack ran but produced no bundle "
                         "(observability off?)\n");
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "camo-audit: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << bundle << "\n";
  std::printf("recorded %s under \"%s\": %s (%s)\n", attack.c_str(),
              config.c_str(), attacks::outcome_name(r->outcome),
              r->detail.c_str());
  std::printf("[%zu-byte bundle -> %s]\n", bundle.size(), out_path.c_str());
  return 0;
}

int cmd_replay(const std::string& bundle_path) {
  std::string text, error;
  if (!read_file(bundle_path, &text, &error)) {
    std::fprintf(stderr, "camo-audit: %s\n", error.c_str());
    return 1;
  }
  const std::string want = canonical_bundle(text, &error);
  if (want.empty()) {
    std::fprintf(stderr, "camo-audit: %s: %s\n", bundle_path.c_str(),
                 error.c_str());
    return 1;
  }
  const auto doc = Value::parse(text);
  const Value* scenario = doc->get("scenario");
  if (!scenario || !scenario->is_object()) {
    std::fprintf(stderr, "camo-audit: %s has no scenario\n",
                 bundle_path.c_str());
    return 1;
  }
  const Value* attack = scenario->get("attack");
  const Value* config = scenario->get("config");
  if (!attack || !config) {
    std::fprintf(stderr, "camo-audit: %s scenario lacks attack/config\n",
                 bundle_path.c_str());
    return 1;
  }
  std::printf("replaying %s under \"%s\" on a fresh machine...\n",
              attack->as_string().c_str(), config->as_string().c_str());
  std::string fresh;
  const auto r = attacks::run_named_attack(attack->as_string(),
                                           config->as_string(), &fresh);
  if (!r) {
    std::fprintf(stderr, "camo-audit: scenario names an unknown attack or "
                         "config\n");
    return 1;
  }
  const std::string got = canonical_bundle(fresh, &error);
  if (got != want) {
    // Locate the first differing line for the diagnostic.
    size_t line = 1, i = 0;
    const size_t n = want.size() < got.size() ? want.size() : got.size();
    while (i < n && want[i] == got[i]) {
      if (want[i] == '\n') ++line;
      ++i;
    }
    std::fprintf(stderr,
                 "REPLAY MISMATCH: fresh bundle diverges at line %zu "
                 "(recorded %zu bytes, replay %zu bytes)\n",
                 line, want.size(), got.size());
    return 1;
  }
  uint64_t pc = 0, cyc = 0;
  if (const Value* trig = doc->get("trigger")) {
    if (const Value* v = trig->get("pc")) pc = obs::parse_hex_u64(*v);
    if (const Value* v = trig->get("cycles")) cyc = obs::parse_hex_u64(*v);
  }
  const Value* chain = doc->get("chain");
  std::printf("replay OK: bit-identical bundle (%zu bytes) — outcome %s, "
              "violation pc=%s at cycle %llu, causal chain %zu links\n",
              want.size(), attacks::outcome_name(r->outcome),
              obs::hex_u64(pc).c_str(), static_cast<unsigned long long>(cyc),
              static_cast<size_t>(chain ? chain->size() : 0));
  return 0;
}

}  // namespace camo::audit_tool
