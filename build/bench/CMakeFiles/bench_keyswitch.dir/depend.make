# Empty dependencies file for bench_keyswitch.
# This may be replaced when dependencies are built.
