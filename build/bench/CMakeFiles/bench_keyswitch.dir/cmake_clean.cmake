file(REMOVE_RECURSE
  "CMakeFiles/bench_keyswitch.dir/bench_keyswitch.cpp.o"
  "CMakeFiles/bench_keyswitch.dir/bench_keyswitch.cpp.o.d"
  "bench_keyswitch"
  "bench_keyswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keyswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
