file(REMOVE_RECURSE
  "CMakeFiles/bench_qarma.dir/bench_qarma.cpp.o"
  "CMakeFiles/bench_qarma.dir/bench_qarma.cpp.o.d"
  "bench_qarma"
  "bench_qarma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qarma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
