# Empty compiler generated dependencies file for bench_qarma.
# This may be replaced when dependencies are built.
