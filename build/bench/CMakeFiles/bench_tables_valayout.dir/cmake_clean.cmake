file(REMOVE_RECURSE
  "CMakeFiles/bench_tables_valayout.dir/bench_tables_valayout.cpp.o"
  "CMakeFiles/bench_tables_valayout.dir/bench_tables_valayout.cpp.o.d"
  "bench_tables_valayout"
  "bench_tables_valayout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_valayout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
