# Empty compiler generated dependencies file for bench_tables_valayout.
# This may be replaced when dependencies are built.
