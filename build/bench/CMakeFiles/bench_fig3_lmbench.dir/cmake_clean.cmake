file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lmbench.dir/bench_fig3_lmbench.cpp.o"
  "CMakeFiles/bench_fig3_lmbench.dir/bench_fig3_lmbench.cpp.o.d"
  "bench_fig3_lmbench"
  "bench_fig3_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
