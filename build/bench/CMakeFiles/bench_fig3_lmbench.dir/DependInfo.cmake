
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_lmbench.cpp" "bench/CMakeFiles/bench_fig3_lmbench.dir/bench_fig3_lmbench.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_lmbench.dir/bench_fig3_lmbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/camo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_qarma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
