file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_userspace.dir/bench_fig4_userspace.cpp.o"
  "CMakeFiles/bench_fig4_userspace.dir/bench_fig4_userspace.cpp.o.d"
  "bench_fig4_userspace"
  "bench_fig4_userspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_userspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
