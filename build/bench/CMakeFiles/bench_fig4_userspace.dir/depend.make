# Empty dependencies file for bench_fig4_userspace.
# This may be replaced when dependencies are built.
