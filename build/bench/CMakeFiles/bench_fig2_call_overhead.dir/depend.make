# Empty dependencies file for bench_fig2_call_overhead.
# This may be replaced when dependencies are built.
