file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modifiers.dir/bench_ablation_modifiers.cpp.o"
  "CMakeFiles/bench_ablation_modifiers.dir/bench_ablation_modifiers.cpp.o.d"
  "bench_ablation_modifiers"
  "bench_ablation_modifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
