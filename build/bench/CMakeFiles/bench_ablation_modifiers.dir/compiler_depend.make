# Empty compiler generated dependencies file for bench_ablation_modifiers.
# This may be replaced when dependencies are built.
