
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/camo_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/camo_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/camo_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_census.cpp" "tests/CMakeFiles/camo_tests.dir/test_census.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_census.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/camo_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/camo_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/camo_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_cpu_props.cpp" "tests/CMakeFiles/camo_tests.dir/test_cpu_props.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_cpu_props.cpp.o.d"
  "/root/repo/tests/test_hyp.cpp" "tests/CMakeFiles/camo_tests.dir/test_hyp.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_hyp.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/camo_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_isa_fuzz.cpp" "tests/CMakeFiles/camo_tests.dir/test_isa_fuzz.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_isa_fuzz.cpp.o.d"
  "/root/repo/tests/test_kernel.cpp" "tests/CMakeFiles/camo_tests.dir/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_kernel.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/camo_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_obj.cpp" "tests/CMakeFiles/camo_tests.dir/test_obj.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_obj.cpp.o.d"
  "/root/repo/tests/test_qarma.cpp" "tests/CMakeFiles/camo_tests.dir/test_qarma.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_qarma.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/camo_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/camo_tests.dir/test_support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/camo_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_assembler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_hyp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_qarma.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/camo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
