# Empty dependencies file for camo_tests.
# This may be replaced when dependencies are built.
