# Empty compiler generated dependencies file for camo_tests.
# This may be replaced when dependencies are built.
