file(REMOVE_RECURSE
  "CMakeFiles/camo_qarma.dir/qarma/qarma64.cpp.o"
  "CMakeFiles/camo_qarma.dir/qarma/qarma64.cpp.o.d"
  "libcamo_qarma.a"
  "libcamo_qarma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_qarma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
