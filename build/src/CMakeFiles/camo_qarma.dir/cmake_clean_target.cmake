file(REMOVE_RECURSE
  "libcamo_qarma.a"
)
