# Empty compiler generated dependencies file for camo_qarma.
# This may be replaced when dependencies are built.
