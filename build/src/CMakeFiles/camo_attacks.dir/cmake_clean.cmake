file(REMOVE_RECURSE
  "CMakeFiles/camo_attacks.dir/attacks/attacks.cpp.o"
  "CMakeFiles/camo_attacks.dir/attacks/attacks.cpp.o.d"
  "libcamo_attacks.a"
  "libcamo_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
