file(REMOVE_RECURSE
  "libcamo_attacks.a"
)
