# Empty dependencies file for camo_attacks.
# This may be replaced when dependencies are built.
