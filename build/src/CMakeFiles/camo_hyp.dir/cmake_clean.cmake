file(REMOVE_RECURSE
  "CMakeFiles/camo_hyp.dir/hyp/hypervisor.cpp.o"
  "CMakeFiles/camo_hyp.dir/hyp/hypervisor.cpp.o.d"
  "libcamo_hyp.a"
  "libcamo_hyp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_hyp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
