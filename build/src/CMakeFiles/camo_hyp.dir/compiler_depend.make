# Empty compiler generated dependencies file for camo_hyp.
# This may be replaced when dependencies are built.
