file(REMOVE_RECURSE
  "libcamo_hyp.a"
)
