# Empty dependencies file for camo_hyp.
# This may be replaced when dependencies are built.
