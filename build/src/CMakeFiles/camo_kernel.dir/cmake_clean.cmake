file(REMOVE_RECURSE
  "CMakeFiles/camo_kernel.dir/kernel/kernel_builder.cpp.o"
  "CMakeFiles/camo_kernel.dir/kernel/kernel_builder.cpp.o.d"
  "CMakeFiles/camo_kernel.dir/kernel/machine.cpp.o"
  "CMakeFiles/camo_kernel.dir/kernel/machine.cpp.o.d"
  "CMakeFiles/camo_kernel.dir/kernel/workloads.cpp.o"
  "CMakeFiles/camo_kernel.dir/kernel/workloads.cpp.o.d"
  "libcamo_kernel.a"
  "libcamo_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
