# Empty dependencies file for camo_kernel.
# This may be replaced when dependencies are built.
