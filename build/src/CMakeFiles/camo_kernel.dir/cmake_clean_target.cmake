file(REMOVE_RECURSE
  "libcamo_kernel.a"
)
