file(REMOVE_RECURSE
  "libcamo_isa.a"
)
