# Empty dependencies file for camo_isa.
# This may be replaced when dependencies are built.
