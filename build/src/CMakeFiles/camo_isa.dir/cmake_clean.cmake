file(REMOVE_RECURSE
  "CMakeFiles/camo_isa.dir/isa/isa.cpp.o"
  "CMakeFiles/camo_isa.dir/isa/isa.cpp.o.d"
  "libcamo_isa.a"
  "libcamo_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
