file(REMOVE_RECURSE
  "libcamo_obj.a"
)
