# Empty dependencies file for camo_obj.
# This may be replaced when dependencies are built.
