file(REMOVE_RECURSE
  "CMakeFiles/camo_obj.dir/obj/object.cpp.o"
  "CMakeFiles/camo_obj.dir/obj/object.cpp.o.d"
  "libcamo_obj.a"
  "libcamo_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
