# Empty dependencies file for camo_assembler.
# This may be replaced when dependencies are built.
