file(REMOVE_RECURSE
  "libcamo_assembler.a"
)
