file(REMOVE_RECURSE
  "CMakeFiles/camo_assembler.dir/assembler/builder.cpp.o"
  "CMakeFiles/camo_assembler.dir/assembler/builder.cpp.o.d"
  "libcamo_assembler.a"
  "libcamo_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
