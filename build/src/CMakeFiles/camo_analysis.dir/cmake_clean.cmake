file(REMOVE_RECURSE
  "CMakeFiles/camo_analysis.dir/analysis/census.cpp.o"
  "CMakeFiles/camo_analysis.dir/analysis/census.cpp.o.d"
  "CMakeFiles/camo_analysis.dir/analysis/verifier.cpp.o"
  "CMakeFiles/camo_analysis.dir/analysis/verifier.cpp.o.d"
  "libcamo_analysis.a"
  "libcamo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
