# Empty dependencies file for camo_analysis.
# This may be replaced when dependencies are built.
