file(REMOVE_RECURSE
  "libcamo_analysis.a"
)
