file(REMOVE_RECURSE
  "CMakeFiles/camo_core.dir/core/bootloader.cpp.o"
  "CMakeFiles/camo_core.dir/core/bootloader.cpp.o.d"
  "CMakeFiles/camo_core.dir/core/keys.cpp.o"
  "CMakeFiles/camo_core.dir/core/keys.cpp.o.d"
  "CMakeFiles/camo_core.dir/core/keysetter.cpp.o"
  "CMakeFiles/camo_core.dir/core/keysetter.cpp.o.d"
  "libcamo_core.a"
  "libcamo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
