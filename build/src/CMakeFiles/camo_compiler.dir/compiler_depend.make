# Empty compiler generated dependencies file for camo_compiler.
# This may be replaced when dependencies are built.
