file(REMOVE_RECURSE
  "libcamo_compiler.a"
)
