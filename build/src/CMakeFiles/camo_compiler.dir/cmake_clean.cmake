file(REMOVE_RECURSE
  "CMakeFiles/camo_compiler.dir/compiler/instrument.cpp.o"
  "CMakeFiles/camo_compiler.dir/compiler/instrument.cpp.o.d"
  "libcamo_compiler.a"
  "libcamo_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
