file(REMOVE_RECURSE
  "libcamo_support.a"
)
