# Empty dependencies file for camo_support.
# This may be replaced when dependencies are built.
