file(REMOVE_RECURSE
  "CMakeFiles/camo_support.dir/support/format.cpp.o"
  "CMakeFiles/camo_support.dir/support/format.cpp.o.d"
  "libcamo_support.a"
  "libcamo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
