# Empty compiler generated dependencies file for camo_cpu.
# This may be replaced when dependencies are built.
