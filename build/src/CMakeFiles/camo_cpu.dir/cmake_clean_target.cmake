file(REMOVE_RECURSE
  "libcamo_cpu.a"
)
