file(REMOVE_RECURSE
  "CMakeFiles/camo_cpu.dir/cpu/cpu.cpp.o"
  "CMakeFiles/camo_cpu.dir/cpu/cpu.cpp.o.d"
  "CMakeFiles/camo_cpu.dir/cpu/pauth.cpp.o"
  "CMakeFiles/camo_cpu.dir/cpu/pauth.cpp.o.d"
  "libcamo_cpu.a"
  "libcamo_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
