file(REMOVE_RECURSE
  "CMakeFiles/camo_mem.dir/mem/mmu.cpp.o"
  "CMakeFiles/camo_mem.dir/mem/mmu.cpp.o.d"
  "CMakeFiles/camo_mem.dir/mem/phys.cpp.o"
  "CMakeFiles/camo_mem.dir/mem/phys.cpp.o.d"
  "CMakeFiles/camo_mem.dir/mem/valayout.cpp.o"
  "CMakeFiles/camo_mem.dir/mem/valayout.cpp.o.d"
  "libcamo_mem.a"
  "libcamo_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camo_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
