file(REMOVE_RECURSE
  "CMakeFiles/kernel_objdump.dir/kernel_objdump.cpp.o"
  "CMakeFiles/kernel_objdump.dir/kernel_objdump.cpp.o.d"
  "kernel_objdump"
  "kernel_objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
