# Empty compiler generated dependencies file for kernel_objdump.
# This may be replaced when dependencies are built.
