# Empty dependencies file for pointer_protection.
# This may be replaced when dependencies are built.
