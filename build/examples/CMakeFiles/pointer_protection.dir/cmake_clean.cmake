file(REMOVE_RECURSE
  "CMakeFiles/pointer_protection.dir/pointer_protection.cpp.o"
  "CMakeFiles/pointer_protection.dir/pointer_protection.cpp.o.d"
  "pointer_protection"
  "pointer_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
