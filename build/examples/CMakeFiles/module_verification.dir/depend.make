# Empty dependencies file for module_verification.
# This may be replaced when dependencies are built.
