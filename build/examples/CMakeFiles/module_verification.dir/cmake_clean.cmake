file(REMOVE_RECURSE
  "CMakeFiles/module_verification.dir/module_verification.cpp.o"
  "CMakeFiles/module_verification.dir/module_verification.cpp.o.d"
  "module_verification"
  "module_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
