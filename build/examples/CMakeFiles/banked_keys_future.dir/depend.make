# Empty dependencies file for banked_keys_future.
# This may be replaced when dependencies are built.
