file(REMOVE_RECURSE
  "CMakeFiles/banked_keys_future.dir/banked_keys_future.cpp.o"
  "CMakeFiles/banked_keys_future.dir/banked_keys_future.cpp.o.d"
  "banked_keys_future"
  "banked_keys_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banked_keys_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
