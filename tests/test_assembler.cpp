// FunctionBuilder tests: label discipline, pseudo-op bookkeeping, listing
// output, mov_imm encoding strategies, and error paths.
#include <gtest/gtest.h>

#include "assembler/builder.h"
#include "compiler/instrument.h"
#include "harness.h"
#include "support/error.h"

namespace camo::assembler {
namespace {

TEST(Builder, EntryLabelBoundAtOffsetZero) {
  FunctionBuilder f("f");
  f.nop();
  f.adr(0, f.entry_label());
  f.ret();
  const auto out = f.assemble();
  const isa::Inst adr = isa::decode(out.words[1]);
  EXPECT_EQ(adr.op, isa::Op::ADR);
  EXPECT_EQ(adr.imm, -4);  // back to offset 0
}

TEST(Builder, ForwardAndBackwardLabels) {
  FunctionBuilder f("f");
  const auto fwd = f.make_label();
  const auto back = f.make_label();
  f.bind(back);
  f.b(fwd);
  f.b(back);
  f.bind(fwd);
  f.ret();
  const auto out = f.assemble();
  EXPECT_EQ(isa::decode(out.words[0]).imm, 8);   // to fwd
  EXPECT_EQ(isa::decode(out.words[1]).imm, -4);  // to back
}

TEST(Builder, UnboundLabelFailsAssembly) {
  FunctionBuilder f("f");
  f.b(f.make_label());
  EXPECT_THROW(f.assemble(), camo::Error);
}

TEST(Builder, BindingUnknownLabelThrows) {
  FunctionBuilder f("f");
  EXPECT_THROW(f.bind(42), camo::Error);
}

TEST(Builder, PseudoOpsBlockAssembly) {
  FunctionBuilder f("f");
  f.frame_push();
  f.frame_pop_ret();
  EXPECT_FALSE(f.lowered());
  EXPECT_THROW(f.assemble(), camo::Error);
}

TEST(Builder, UnalignedLocalsRejected) {
  FunctionBuilder f("f");
  EXPECT_THROW(f.frame_push(8), camo::Error);
  EXPECT_THROW(f.frame_pop_ret(24), camo::Error);
}

TEST(Builder, MovRejectsSpOperands) {
  FunctionBuilder f("f");
  EXPECT_THROW(f.mov(0, isa::kRegZrSp), camo::Error);
  EXPECT_THROW(f.mov(isa::kRegZrSp, 0), camo::Error);
  // The dedicated forms work.
  f.mov_from_sp(0);
  f.mov_to_sp(0);
  f.ret();
  EXPECT_EQ(f.assemble().words.size(), 3u);
}

TEST(Builder, MovImmUsesMinimalSequence) {
  // Zero chunks are skipped: only hw0 movz plus nonzero movk chunks.
  FunctionBuilder a("a");
  a.mov_imm(0, 0x1234);
  EXPECT_EQ(a.assemble().words.size(), 1u);

  FunctionBuilder b("b");
  b.mov_imm(0, 0xFFFF000000080000ull);
  EXPECT_EQ(b.assemble().words.size(), 3u);  // movz hw0 + movk hw2 + movk hw3

  FunctionBuilder c("c");
  c.mov_imm(0, 0x1111222233334444ull);
  EXPECT_EQ(c.assemble().words.size(), 4u);
}

TEST(Builder, MovImmValuesCorrectOnCpu) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("f");
  const uint64_t vals[] = {0, 1, 0xFFFF, 0x10000, 0xFFFFFFFFFFFFFFFFull,
                           0x8000000000000000ull, 0x00FF00FF00FF00FFull};
  for (size_t i = 0; i < std::size(vals); ++i)
    f.mov_imm(static_cast<uint8_t>(i), vals[i]);
  f.hlt(1);
  sim.run(f);
  for (size_t i = 0; i < std::size(vals); ++i)
    EXPECT_EQ(sim.core.x(static_cast<unsigned>(i)), vals[i]) << i;
}

TEST(Builder, ListingShowsLabelsAndSymbols) {
  FunctionBuilder f("myfn");
  const auto l = f.make_label();
  f.bind(l);
  f.bl_sym("other");
  f.b(l);
  f.store_protected(1, 0, 8, 7);
  f.ret();
  const std::string text = f.listing();
  EXPECT_NE(text.find("myfn:"), std::string::npos);
  EXPECT_NE(text.find(".L1:"), std::string::npos);
  EXPECT_NE(text.find("-> other"), std::string::npos);
  EXPECT_NE(text.find("-> .L1"), std::string::npos);
  EXPECT_NE(text.find("<pseudo:"), std::string::npos);
}

TEST(Builder, RelocationOffsetsFunctionRelative) {
  FunctionBuilder f("f");
  f.nop();
  f.nop();
  f.bl_sym("target");
  f.mov_sym(3, "datum");
  f.ret();
  const auto out = f.assemble();
  ASSERT_EQ(out.relocs.size(), 5u);  // 1 branch + 4 movz/movk
  EXPECT_EQ(out.relocs[0].offset, 8u);
  EXPECT_EQ(out.relocs[0].sym, "target");
  EXPECT_EQ(out.relocs[1].offset, 12u);
  EXPECT_EQ(out.relocs[4].kind, RelocKind::Abs16Hw3);
}

TEST(Builder, FrameRoundTripAllLocalSizes) {
  for (const uint16_t locals : {0, 16, 64, 256}) {
    camo::testing::SimHarness sim;
    FunctionBuilder f("f");
    const auto fn = f.make_label();
    const auto start = f.make_label();
    f.b(start);
    f.bind(fn);
    f.frame_push(locals);
    f.mov_imm(0, locals + 1u);
    if (locals > 0) {
      f.str(0, isa::kRegZrSp, 0);
      f.ldr(1, isa::kRegZrSp, 0);
    }
    f.frame_pop_ret(locals);
    f.bind(start);
    f.bl(fn);
    f.hlt(1);
    compiler::instrument(f, compiler::ProtectionConfig::none());
    sim.run(f);
    EXPECT_EQ(sim.core.halt_code(), 1u) << locals;
    EXPECT_EQ(sim.core.x(0), locals + 1u);
    EXPECT_EQ(sim.core.sp_el(mem::El::El1), camo::testing::kHStackTop);
  }
}

}  // namespace
}  // namespace camo::assembler
