// camo::par — pool semantics and the fleet determinism contract
// (DESIGN.md §3d).
//
// The load-bearing property is the last suite: run_fleet must produce
// bit-identical results, merged metrics and traces for any jobs value. The
// pool itself only promises completion; determinism comes from the
// write-by-index / merge-in-index-order protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "attacks/attacks.h"
#include "kernel/image_cache.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "par/fleet.h"
#include "par/pool.h"

namespace camo {
namespace {

// ---------------------------------------------------------------------------
// Pool basics
// ---------------------------------------------------------------------------

TEST(ParPool, EnvJobsParsesAndClamps) {
  const auto with_env = [](const char* v) {
    if (v)
      setenv("CAMO_JOBS", v, 1);
    else
      unsetenv("CAMO_JOBS");
    const unsigned jobs = par::Pool::env_jobs();
    unsetenv("CAMO_JOBS");
    return jobs;
  };
  EXPECT_EQ(with_env(nullptr), 1u);
  EXPECT_EQ(with_env(""), 1u);
  EXPECT_EQ(with_env("4"), 4u);
  EXPECT_EQ(with_env("0"), 1u);      // malformed / zero mean serial
  EXPECT_EQ(with_env("noise"), 1u);
  EXPECT_EQ(with_env("12x"), 1u);
  EXPECT_EQ(with_env("100000"), par::Pool::kMaxJobs);
}

TEST(ParPool, RunsEveryIndexExactlyOnce) {
  for (const unsigned jobs : {1u, 2u, 5u}) {
    par::Pool pool(jobs);
    constexpr size_t kN = 203;
    std::vector<std::atomic<int>> hits(kN);
    pool.for_each_index(kN, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParPool, MapReturnsResultsInIndexOrder) {
  par::Pool pool(4);
  const auto out = pool.map(64, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParPool, NestedSubmitFromInsideATaskDoesNotDeadlock) {
  par::Pool pool(3);
  std::atomic<int> inner_runs{0};
  pool.for_each_index(6, [&](size_t) {
    // The worker helps its own nested batch, so this completes even with
    // every other worker busy in the same outer batch.
    pool.for_each_index(8, [&](size_t) { ++inner_runs; });
  });
  EXPECT_EQ(inner_runs.load(), 6 * 8);
}

TEST(ParPool, FirstExceptionPropagatesAfterTheBatchDrains) {
  for (const unsigned jobs : {1u, 4u}) {
    par::Pool pool(jobs);
    std::atomic<int> ran{0};
    try {
      pool.for_each_index(40, [&](size_t i) {
        ++ran;
        if (i == 17) throw std::runtime_error("task 17 failed");
      });
      FAIL() << "expected the task exception to propagate (jobs=" << jobs
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 17 failed");
    }
    // Failure does not cancel the siblings: they are independent machines.
    EXPECT_EQ(ran.load(), 40);
  }
}

TEST(ParPool, StealHeavySkewBalancesAndCountsSteals) {
  par::Pool pool(4);
  // Skewed batch: early indices are long, the tail is instant. The caller
  // pushes all tasks to its own deque and drains LIFO, so spawned workers
  // only make progress by stealing from it.
  pool.for_each_index(64, [](size_t i) {
    if (i < 8) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  const par::Pool::Stats st = pool.stats();
  EXPECT_EQ(st.submitted, 64u);
  uint64_t executed = 0;
  for (const uint64_t e : st.executed) executed += e;
  EXPECT_EQ(executed, 64u);
  EXPECT_GE(st.steals, 1u);
  EXPECT_GE(st.stolen_tasks, st.steals);
  EXPECT_GE(st.imbalance(), 1.0);
}

// ---------------------------------------------------------------------------
// Image cache
// ---------------------------------------------------------------------------

TEST(ImageCache, KeyCoversEveryPrepareInput) {
  kernel::KernelConfig cfg;
  kernel::TaskSpec task;
  task.user_pc = 0x400000;
  task.user_sp = 0x80000000;
  const std::string base = kernel::ImageCache::key_for(cfg, 7, {task});
  EXPECT_EQ(kernel::ImageCache::key_for(cfg, 7, {task}), base);

  EXPECT_NE(kernel::ImageCache::key_for(cfg, 8, {task}), base);  // seed
  kernel::KernelConfig thresh = cfg;
  thresh.pac_failure_threshold = 3;
  EXPECT_NE(kernel::ImageCache::key_for(thresh, 7, {task}), base);
  kernel::KernelConfig prot = cfg;
  prot.protection = compiler::ProtectionConfig::none();
  EXPECT_NE(kernel::ImageCache::key_for(prot, 7, {task}), base);
  kernel::TaskSpec keys = task;
  keys.user_keys[3] ^= 1;  // per-task EL0 keys are baked into kernel data
  EXPECT_NE(kernel::ImageCache::key_for(cfg, 7, {keys}), base);
  EXPECT_NE(kernel::ImageCache::key_for(cfg, 7, {task, task}), base);
}

TEST(ImageCache, BuildsOncePerKeyAndCountsHits) {
  kernel::ImageCache cache;
  int builds = 0;
  // key_for strings aren't needed here: get() is keyed by opaque string.
  const auto build = [&] {
    ++builds;
    kernel::KernelBuilder kb(kernel::KernelConfig{});
    core::BootConfig bcfg;
    bcfg.entry_symbol = "early_boot";
    bcfg.key_write_symbols = kernel::KernelBuilder::key_write_symbols();
    return core::Bootloader::prepare(kb.build(), bcfg, kernel::kKernelBase);
  };
  const auto a = cache.get("k1", build);
  const auto b = cache.get("k1", build);
  const auto c = cache.get("k2", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(a.get(), b.get());  // literally the same prepared image
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ImageCache, CachedBootMatchesDirectBoot) {
  const auto run_one = [](std::shared_ptr<kernel::ImageCache> cache) {
    kernel::MachineConfig cfg;
    cfg.kernel.log_pac_failures = false;
    cfg.image_cache = std::move(cache);
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(20));
    m.boot();
    m.run();
    return std::pair<uint64_t, uint64_t>(m.cpu().cycles(), m.halt_code());
  };
  const auto direct = run_one(nullptr);
  const auto cache = std::make_shared<kernel::ImageCache>();
  const auto cold = run_one(cache);   // miss: prepares and installs
  const auto warm = run_one(cache);   // hit: installs the shared image
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(direct, cold);
  EXPECT_EQ(direct, warm);
}

// ---------------------------------------------------------------------------
// Fleet determinism: bit-identical results for any jobs value
// ---------------------------------------------------------------------------

struct FleetOutcome {
  std::vector<uint64_t> cycles;
  std::vector<uint64_t> halts;
  std::string metrics_text;  ///< deterministic registry view (no gauge values)
  size_t trace_events = 0;
  uint64_t trace_first_pc = 0;
  uint64_t trace_last_cycles = 0;
};

// The bit-identical portion of a merged registry: all counters and
// histograms, plus gauge *names*. Gauge values are host wall-clock
// readings (throughput) and legitimately differ between runs.
std::string deterministic_view(const obs::Registry& reg) {
  std::string out;
  for (const auto& [name, c] : reg.counters())
    out += name + "=" + std::to_string(c.value()) + "\n";
  for (const auto& [name, h] : reg.histograms())
    out += name + ":" + std::to_string(h.count()) + "," +
           std::to_string(h.sum()) + "," + std::to_string(h.min()) + "," +
           std::to_string(h.max()) + "\n";
  for (const auto& [name, g] : reg.gauges()) out += "gauge " + name + "\n";
  return out;
}

// A small mixed fleet: machines 0/1 share a configuration (exercising the
// shared image cache under contention), the rest get distinct seeds.
FleetOutcome run_reference_fleet(unsigned jobs) {
  par::Pool pool(jobs);
  auto cache = std::make_shared<kernel::ImageCache>();
  auto fleet = par::run_fleet(
      pool, 5,
      [&](size_t i) {
        kernel::MachineConfig cfg;
        cfg.kernel.log_pac_failures = false;
        cfg.obs.enabled = true;
        cfg.seed = i < 2 ? 0xFEED : 0xFEED + i;
        cfg.machine_id = static_cast<unsigned>(i);
        cfg.image_cache = cache;
        auto m = std::make_unique<kernel::Machine>(cfg);
        m->add_user_program(kernel::workloads::null_syscall(10 + 5 * i));
        return m;
      },
      [](size_t, kernel::Machine& m) {
        m.boot();
        const bool halted = m.run();
        return std::pair<uint64_t, uint64_t>(
            m.cpu().cycles(), halted ? m.halt_code() : ~uint64_t{0});
      });
  FleetOutcome out;
  for (const auto& [cycles, halt] : fleet.results) {
    out.cycles.push_back(cycles);
    out.halts.push_back(halt);
  }
  out.metrics_text = deterministic_view(fleet.metrics);
  out.trace_events = fleet.trace.size();
  if (!fleet.trace.empty()) {
    out.trace_first_pc = fleet.trace.front().pc;
    out.trace_last_cycles = fleet.trace.back().cycles;
  }
  return out;
}

TEST(ParFleet, BitIdenticalAcrossJobCounts) {
  const FleetOutcome serial = run_reference_fleet(1);
  ASSERT_EQ(serial.cycles.size(), 5u);
  for (const uint64_t h : serial.halts)
    EXPECT_NE(h, ~uint64_t{0}) << "machine must halt";
  EXPECT_GT(serial.trace_events, 0u);
  for (const unsigned jobs : {2u, 7u}) {
    const FleetOutcome par = run_reference_fleet(jobs);
    EXPECT_EQ(par.cycles, serial.cycles) << "jobs=" << jobs;
    EXPECT_EQ(par.halts, serial.halts) << "jobs=" << jobs;
    EXPECT_EQ(par.metrics_text, serial.metrics_text) << "jobs=" << jobs;
    EXPECT_EQ(par.trace_events, serial.trace_events) << "jobs=" << jobs;
    EXPECT_EQ(par.trace_first_pc, serial.trace_first_pc) << "jobs=" << jobs;
    EXPECT_EQ(par.trace_last_cycles, serial.trace_last_cycles)
        << "jobs=" << jobs;
  }
}

TEST(ParFleet, MergedRegistryKeepsPerMachineGauges) {
  par::Pool pool(2);
  auto fleet = par::run_fleet(
      pool, 3,
      [&](size_t i) {
        kernel::MachineConfig cfg;
        cfg.kernel.log_pac_failures = false;
        cfg.obs.enabled = true;
        cfg.machine_id = static_cast<unsigned>(i);
        auto m = std::make_unique<kernel::Machine>(cfg);
        m->add_user_program(kernel::workloads::null_syscall(10));
        return m;
      },
      [](size_t, kernel::Machine& m) {
        m.boot();
        m.run();
        return m.halt_code();
      });
  // One namespaced throughput gauge per machine survives the merge, plus
  // the recomputed fleet aggregate — nothing collides last-writer-wins.
  for (unsigned id = 0; id < 3; ++id) {
    const obs::Gauge* g =
        fleet.metrics.find_gauge("host.throughput.m" + std::to_string(id));
    ASSERT_NE(g, nullptr) << "m" << id;
    EXPECT_GT(g->value(), 0.0) << "m" << id;
  }
  const obs::Gauge* agg = fleet.metrics.find_gauge("host.throughput");
  ASSERT_NE(agg, nullptr);
  EXPECT_DOUBLE_EQ(
      agg->value(),
      fleet.stats.throughput());
}

// A seeded brute-force sweep through the pool's deterministic map — the
// attack harness builds its machines internally, so this is the
// Session::fleet() shape the converted benches use.
TEST(ParFleet, BruteforceSweepMatchesSerial) {
  const unsigned thresholds[] = {2u, 3u, 4u, 5u};
  const auto sweep = [&](unsigned jobs) {
    par::Pool pool(jobs);
    return pool.map(4, [&](size_t i) {
      const auto r = attacks::run_bruteforce(
          compiler::ProtectionConfig::full(), thresholds[i],
          thresholds[i] + 4);
      return std::pair<uint64_t, uint64_t>(r.attempts, r.halt_code);
    });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(3);
  EXPECT_EQ(serial, parallel);
  for (size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].first, thresholds[i]) << "halts after threshold";
}

}  // namespace
}  // namespace camo
