// Hypervisor tests: physical allocation, image loading with stage-2 locks,
// HVC services (console, address-space switch, module loading with §4.1
// verification), MSR lockdown.
#include <gtest/gtest.h>

#include "compiler/instrument.h"
#include "hyp/hypervisor.h"
#include "obj/object.h"

namespace camo::hyp {
namespace {

using assembler::FunctionBuilder;
using isa::SysReg;
using mem::El;

constexpr uint64_t kKernBase = 0xFFFF000000080000ull;
constexpr uint64_t kVbarBase = 0xFFFF000000060000ull;
constexpr uint64_t kStackTop = 0xFFFF000000200000ull;

class HypTest : public ::testing::Test {
 protected:
  HypTest() : mmu(pm, {}), hv(pm, mmu), core(mmu, {}) {
    hv.install(core);
    core.set_sysreg(SysReg::SCTLR_EL1, isa::kSctlrEnIA | isa::kSctlrEnIB |
                                           isa::kSctlrEnDA | isa::kSctlrEnDB);
    for (int i = 0; i < 10; ++i)
      core.set_sysreg(static_cast<SysReg>(i),
                      0xABCD0123ull * static_cast<uint64_t>(i + 3));

    // Minimal sync-EL1 vector: halt(0xE1).
    obj::Program vec;
    vec.add_function("vec_sync").hlt(0xE1);
    hv.load_image(obj::Linker::link(vec, kVbarBase), hv.kernel_map(), false);
    core.set_sysreg(SysReg::VBAR_EL1, kVbarBase);

    hv.map_kernel_rw(kStackTop - 0x10000, 0x10000);
    core.set_sp_el(El::El1, kStackTop);
  }

  /// Link `prog` as the kernel image at kKernBase, load it, export symbols.
  obj::Image load_kernel(obj::Program& prog) {
    obj::Image img = obj::Linker::link(prog, kKernBase);
    hv.load_image(img, hv.kernel_map(), false);
    hv.set_kernel_exports(img.symbols);
    return img;
  }

  void run_from(uint64_t va, uint64_t max_steps = 100000) {
    core.pc = va;
    core.run(max_steps);
  }

  mem::PhysicalMemory pm{8 << 20};
  mem::Mmu mmu;
  Hypervisor hv;
  cpu::Cpu core;
};

TEST_F(HypTest, AllocPagesMonotonic) {
  const uint64_t a = hv.alloc_pages(2);
  const uint64_t b = hv.alloc_pages(1);
  EXPECT_EQ(b, a + 2 * 4096);
  EXPECT_EQ(a % 4096, 0u);
}

TEST_F(HypTest, LoadImageAppliesSectionPermissions) {
  obj::Program p;
  auto& f = p.add_function("f");
  f.nop();
  f.ret();
  p.add_rodata_u64("ro", {1});
  p.add_data_u64("rw", {2});
  const auto img = load_kernel(p);

  EXPECT_TRUE(mmu.translate(img.symbol("f"), mem::Access::Fetch, El::El1).ok());
  EXPECT_FALSE(mmu.translate(img.symbol("f"), mem::Access::Write, El::El1).ok());
  EXPECT_TRUE(mmu.translate(img.symbol("ro"), mem::Access::Read, El::El1).ok());
  EXPECT_FALSE(mmu.translate(img.symbol("ro"), mem::Access::Write, El::El1).ok());
  EXPECT_TRUE(mmu.translate(img.symbol("rw"), mem::Access::Write, El::El1).ok());
}

TEST_F(HypTest, KernelTextStage2WriteLocked) {
  // Even if stage-1 were corrupted to RW, stage 2 refuses writes to text and
  // rodata (the threat-model "write-protected memory" guarantee).
  obj::Program p;
  p.add_function("f").ret();
  p.add_rodata_u64("ops", {0xAA});
  const auto img = load_kernel(p);
  const auto text_pa =
      mmu.translate(img.symbol("f"), mem::Access::Fetch, El::El1);
  ASSERT_TRUE(text_pa.ok());
  EXPECT_FALSE(hv.stage2().lookup(text_pa.pa).write);
  const auto ro_pa =
      mmu.translate(img.symbol("ops"), mem::Access::Read, El::El1);
  ASSERT_TRUE(ro_pa.ok());
  EXPECT_FALSE(hv.stage2().lookup(ro_pa.pa).write);
  EXPECT_TRUE(hv.stage2().lookup(ro_pa.pa).read);
}

TEST_F(HypTest, XomFetchableNotReadable) {
  obj::Program p;
  auto& f = p.add_function("setter");
  f.movz(9, 0xBEEF, 0);
  f.ret();
  const auto img = load_kernel(p);
  hv.protect_xom(img.symbol("setter"), 4096);

  EXPECT_TRUE(
      mmu.translate(img.symbol("setter"), mem::Access::Fetch, El::El1).ok());
  EXPECT_EQ(mmu.translate(img.symbol("setter"), mem::Access::Read, El::El1)
                .fault,
            mem::FaultKind::Stage2);
}

TEST_F(HypTest, ConsolePutcAndWrite) {
  obj::Program p;
  auto& f = p.add_function("_start");
  f.mov_imm(0, 'h');
  f.hvc(static_cast<uint16_t>(HvcCall::ConsolePutc));
  f.mov_imm(0, 'i');
  f.hvc(static_cast<uint16_t>(HvcCall::ConsolePutc));
  f.mov_sym(0, "msg");
  f.mov_imm(1, 6);
  f.hvc(static_cast<uint16_t>(HvcCall::ConsoleWrite));
  f.hlt(0);
  p.add_rodata("msg", {' ', 'w', 'o', 'r', 'l', 'd'});
  const auto img = load_kernel(p);
  run_from(img.symbol("_start"));
  EXPECT_EQ(hv.console(), "hi world");
}

TEST_F(HypTest, SwitchUserSpaceChangesActiveMap) {
  const int a = hv.create_user_space();
  const int b = hv.create_user_space();
  hv.map_user_rw(a, 0x400000, 0x1000);
  hv.switch_user_space(a);
  EXPECT_TRUE(mmu.translate(0x400000, mem::Access::Read, El::El0).ok());
  hv.switch_user_space(b);
  EXPECT_FALSE(mmu.translate(0x400000, mem::Access::Read, El::El0).ok());
  EXPECT_EQ(hv.active_user_space(), b);
}

TEST_F(HypTest, GuestHvcSwitchesUserSpace) {
  const int a = hv.create_user_space();
  (void)hv.create_user_space();
  hv.map_user_rw(a, 0x400000, 0x1000);
  obj::Program p;
  auto& f = p.add_function("_start");
  f.mov_imm(0, static_cast<uint16_t>(a));
  f.hvc(static_cast<uint16_t>(HvcCall::SwitchUserSpace));
  f.hlt(0);
  const auto img = load_kernel(p);
  run_from(img.symbol("_start"));
  EXPECT_EQ(hv.active_user_space(), a);
}

TEST_F(HypTest, TtbrWritesAlwaysDenied) {
  obj::Program p;
  auto& f = p.add_function("_start");
  f.mov_imm(0, 0xDEAD);
  f.msr(SysReg::TTBR0_EL1, 0);
  f.hlt(0);
  const auto img = load_kernel(p);
  run_from(img.symbol("_start"));
  EXPECT_EQ(core.halt_code(), 0xE1u);  // undefined exception vectored
  EXPECT_EQ(hv.denied_msr_count(), 1u);
}

TEST_F(HypTest, SctlrLockdownAfterBoot) {
  obj::Program p;
  auto& f = p.add_function("_start");
  f.mov_imm(0, 0x1234);
  f.msr(SysReg::SCTLR_EL1, 0);  // allowed during boot
  f.hvc(static_cast<uint16_t>(HvcCall::Lockdown));
  f.msr(SysReg::SCTLR_EL1, 0);  // now denied
  f.hlt(0);
  const auto img = load_kernel(p);
  run_from(img.symbol("_start"));
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_TRUE(hv.locked_down());
  EXPECT_EQ(core.sysreg(SysReg::SCTLR_EL1), 0x1234u);  // first write stuck
}

// ---------------------------------------------------------------------------
// Module loading (§4.1 verification + §4.6 pauth table hand-off)
// ---------------------------------------------------------------------------

obj::Program make_good_module() {
  obj::Program m;
  auto& init = m.add_function("mymod_init");
  init.frame_push();
  init.mov_imm(20, 0x77);
  init.bl_sym("kernel_helper");  // cross-image call into the kernel
  init.frame_pop_ret();
  m.add_data_u64("mod_work", {0, 0});
  m.add_abs64("mod_work", 8, "mymod_init");
  m.declare_signed_ptr("mod_work", 8, 0x2222, cpu::PacKey::IB);
  compiler::instrument(m, compiler::ProtectionConfig::full());
  return m;
}

obj::Program make_evil_module() {
  obj::Program m;
  auto& init = m.add_function("evil_init");
  init.mrs(0, SysReg::APIBKeyLo);  // key exfiltration attempt
  init.ret();
  compiler::instrument(m, compiler::ProtectionConfig::full());
  return m;
}

TEST_F(HypTest, GoodModuleLoadsAndRuns) {
  obj::Program k;
  auto& helper = k.add_function("kernel_helper");
  helper.mov_imm(21, 0x88);
  helper.ret();
  auto& start = k.add_function("_start");
  start.mov_imm(0, 0);  // module id
  start.hvc(static_cast<uint16_t>(HvcCall::LoadModule));
  start.mov(9, 0);
  start.mov(19, 1);  // pauth table va
  start.mov(22, 2);  // entry count
  start.blr(9);
  start.hlt(0);
  const auto img = load_kernel(k);

  const int id = hv.register_module("mymod", make_good_module());
  ASSERT_EQ(id, 0);
  run_from(img.symbol("_start"));
  EXPECT_EQ(core.halt_code(), 0u);
  EXPECT_EQ(core.x(20), 0x77u) << "module init must have run";
  EXPECT_EQ(core.x(21), 0x88u) << "module must call kernel export";
  EXPECT_NE(core.x(19), 0u) << "pauth table address returned";
  EXPECT_EQ(core.x(22), 1u) << "one signed-pointer entry";
  ASSERT_EQ(hv.loaded_modules().size(), 1u);
  EXPECT_TRUE(hv.last_module_verify()->ok());
}

TEST_F(HypTest, EvilModuleRejected) {
  obj::Program k;
  auto& start = k.add_function("_start");
  start.mov_imm(0, 0);
  start.hvc(static_cast<uint16_t>(HvcCall::LoadModule));
  start.hlt(0);
  const auto img = load_kernel(k);

  hv.register_module("evil", make_evil_module());
  run_from(img.symbol("_start"));
  EXPECT_EQ(core.x(0), 0u) << "load must fail";
  EXPECT_TRUE(hv.loaded_modules().empty());
  ASSERT_TRUE(hv.last_module_verify().has_value());
  EXPECT_FALSE(hv.last_module_verify()->ok());
  EXPECT_EQ(hv.last_module_verify()->violations[0].kind,
            analysis::ViolationKind::KeyRegisterRead);
}

TEST_F(HypTest, UnknownModuleIdFails) {
  obj::Program k;
  auto& start = k.add_function("_start");
  start.mov_imm(0, 99);
  start.hvc(static_cast<uint16_t>(HvcCall::LoadModule));
  start.hlt(0);
  const auto img = load_kernel(k);
  run_from(img.symbol("_start"));
  EXPECT_EQ(core.x(0), 0u);
}

TEST_F(HypTest, ModulesLoadAtDistinctBases) {
  obj::Program k;
  auto& start = k.add_function("_start");
  start.mov_imm(0, 0);
  start.hvc(static_cast<uint16_t>(HvcCall::LoadModule));
  start.mov(20, 0);
  start.mov_imm(0, 1);
  start.hvc(static_cast<uint16_t>(HvcCall::LoadModule));
  start.hlt(0);
  const auto img = load_kernel(k);

  auto make_mod = [](const std::string& n) {
    obj::Program m;
    m.add_function(n + "_init").ret();
    return m;
  };
  hv.register_module("m1", make_mod("m1"));
  hv.register_module("m2", make_mod("m2"));
  run_from(img.symbol("_start"));
  EXPECT_NE(core.x(20), 0u);
  EXPECT_NE(core.x(0), 0u);
  EXPECT_NE(core.x(20), core.x(0));
}

}  // namespace
}  // namespace camo::hyp
