// Fetch/translate fast-path regression tests (DESIGN.md §3c).
//
// The predecoded instruction cache and the micro-TLB are host-side
// optimisations; these tests pin the two properties that make them safe:
//  * self-modifying code — in-place patches, the bootloader's key-setter
//    immediates, module .text staged over HVC — always executes the new
//    encoding (the write-generation protocol invalidates stale decodes), and
//  * simulated behaviour (cycles, instret, faults, register state) is
//    bit-for-bit identical with the caches on or off.
// Every self-modifying scenario runs parameterized over both settings.
#include <gtest/gtest.h>

#include "compiler/instrument.h"
#include "core/bootloader.h"
#include "core/keys.h"
#include "core/keysetter.h"
#include "harness.h"
#include "hyp/hypervisor.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obj/object.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using isa::SysReg;
using mem::El;

cpu::Cpu::Config cfg_with(bool fast_path) {
  cpu::Cpu::Config c;
  c.fast_path = fast_path;
  // This suite exercises the single-step fetch path specifically (its
  // icache/TLB assertions assume one predecode event per fetch); the
  // superblock engine has its own suite in test_superblock.cpp.
  c.superblocks = false;
  return c;
}

class FastPath : public ::testing::TestWithParam<bool> {
 protected:
  bool fast_path() const { return GetParam(); }
};

INSTANTIATE_TEST_SUITE_P(CacheOnOff, FastPath, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "CacheOn" : "CacheOff";
                         });

// ---------------------------------------------------------------------------
// Execute → patch in place → re-execute.
// ---------------------------------------------------------------------------

TEST_P(FastPath, PatchInPlaceRunsTheNewEncoding) {
  testing::SimHarness sim(cfg_with(fast_path()));

  FunctionBuilder f("f");
  f.movz(0, 0x111, 0);
  f.hlt(1);
  sim.run(f);
  ASSERT_EQ(sim.core.halt_code(), 1u);
  ASSERT_EQ(sim.core.x(0), 0x111u);

  // Patch the MOVZ immediate in place (same VA, same PA) and run again: the
  // physical write bumps the page generation, so a cached decode of the old
  // word must not survive.
  FunctionBuilder g("f");
  g.movz(0, 0x222, 0);
  g.hlt(1);
  sim.core.clear_halt();
  sim.run(g);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.x(0), 0x222u) << "stale decode executed after patch";

  if (fast_path())
    EXPECT_GE(sim.core.fast_path_stats().icache_redecodes, 1u)
        << "the patched page must have been re-decoded";
  else
    EXPECT_EQ(sim.core.fast_path_stats().icache_hits +
                  sim.core.fast_path_stats().icache_misses,
              0u)
        << "cache off must not populate the predecode cache";
}

TEST_P(FastPath, SingleWordPatchOnHotPageIsSeen) {
  // Patch one word of a page that stays hot (every other word unchanged) —
  // the whole-page generation must still catch it.
  testing::SimHarness sim(cfg_with(fast_path()));

  FunctionBuilder f("f");
  f.movz(0, 0xAAA, 0);
  f.movz(1, 0xBBB, 0);
  f.hlt(2);
  sim.run(f);
  ASSERT_EQ(sim.core.x(0), 0xAAAu);
  ASSERT_EQ(sim.core.x(1), 0xBBBu);

  // Overwrite only the second instruction.
  FunctionBuilder patch("patch");
  patch.movz(1, 0xCCC, 0);
  const uint32_t word = patch.assemble().words[0];
  const auto t =
      sim.mmu.translate(testing::kHText + 4, mem::Access::Fetch, El::El2);
  ASSERT_TRUE(t.ok());
  sim.pm.write32(t.pa, word);

  sim.core.clear_halt();
  sim.core.pc = testing::kHText;
  sim.core.run(1000);
  EXPECT_EQ(sim.core.x(0), 0xAAAu);
  EXPECT_EQ(sim.core.x(1), 0xCCCu) << "patched word not picked up";
}

// ---------------------------------------------------------------------------
// Bootloader key-setter immediates: execute, repatch with fresh keys (the
// host/EL2-side write the XOM page permits), re-execute.
// ---------------------------------------------------------------------------

constexpr uint64_t kKernBase = 0xFFFF000000080000ull;
constexpr uint64_t kBootSp = 0xFFFF000000300000ull;

obj::Program setter_kernel() {
  obj::Program k;
  auto& boot = k.add_function("early_boot");
  boot.set_no_instrument();
  boot.mov_imm(0, isa::kSctlrEnIA | isa::kSctlrEnIB | isa::kSctlrEnDA |
                      isa::kSctlrEnDB);
  boot.msr(SysReg::SCTLR_EL1, 0);
  boot.bl_sym(core::kKeySetterSymbol);
  boot.hlt(0x42);
  // Second entry point used to re-run the setter after the repatch.
  auto& again = k.add_function("call_setter");
  again.set_no_instrument();
  again.bl_sym(core::kKeySetterSymbol);
  again.hlt(0x43);
  return k;
}

TEST_P(FastPath, KeySetterRepatchInstallsTheNewKeys) {
  mem::PhysicalMemory pm{8 << 20};
  mem::Mmu mmu(pm, {});
  hyp::Hypervisor hv(pm, mmu);
  cpu::Cpu core(mmu, cfg_with(fast_path()));
  hv.map_kernel_rw(kBootSp - 0x10000, 0x10000);

  core::BootConfig cfg;
  cfg.seed = 11;
  cfg.entry_symbol = "early_boot";
  const auto boot = core::Bootloader::boot(setter_kernel(), cfg, hv, core,
                                           kKernBase, kBootSp);
  core.run(100000);
  ASSERT_EQ(core.halt_code(), 0x42u);
  ASSERT_EQ(core.pac_key(cpu::PacKey::IB), boot.keys.ib);

  // Re-generate the setter with fresh keys and patch the XOM page in place —
  // exactly what the bootloader's MOVZ/MOVK patching does, via the same
  // host-side physical writes (stage-2 XOM only constrains EL1).
  const auto fresh = core::KernelKeys::generate(4242);
  ASSERT_FALSE(fresh.ib == boot.keys.ib);
  auto setter = core::make_key_setter(fresh, cfg.key_usage);
  const auto words = setter.assemble().words;
  const auto pa =
      mmu.translate(boot.key_setter_va, mem::Access::Fetch, El::El2);
  ASSERT_TRUE(pa.ok());
  for (size_t i = 0; i < words.size(); ++i)
    pm.write32(pa.pa + i * 4, words[i]);

  core.clear_halt();
  core.pc = boot.kernel_image.symbol("call_setter");
  core.run(100000);
  ASSERT_EQ(core.halt_code(), 0x43u);
  EXPECT_EQ(core.pac_key(cpu::PacKey::IB), fresh.ib)
      << "re-executed setter must install the repatched immediates";
  EXPECT_EQ(core.pac_key(cpu::PacKey::IA), fresh.ia);
  EXPECT_EQ(core.pac_key(cpu::PacKey::DB), fresh.db);
}

// ---------------------------------------------------------------------------
// Module .text staged over HVC LoadModule, then executed.
// ---------------------------------------------------------------------------

constexpr uint64_t kVbarBase = 0xFFFF000000060000ull;
constexpr uint64_t kStackTop = 0xFFFF000000200000ull;

TEST_P(FastPath, ModuleTextLoadedViaHvcExecutesFreshCode) {
  mem::PhysicalMemory pm{8 << 20};
  mem::Mmu mmu(pm, {});
  hyp::Hypervisor hv(pm, mmu);
  cpu::Cpu core(mmu, cfg_with(fast_path()));
  hv.install(core);
  core.set_sysreg(SysReg::SCTLR_EL1, isa::kSctlrEnIA | isa::kSctlrEnIB |
                                         isa::kSctlrEnDA | isa::kSctlrEnDB);
  for (int i = 0; i < 10; ++i)
    core.set_sysreg(static_cast<SysReg>(i),
                    0xABCD0123ull * static_cast<uint64_t>(i + 3));
  obj::Program vec;
  vec.add_function("vec_sync").hlt(0xE1);
  hv.load_image(obj::Linker::link(vec, kVbarBase), hv.kernel_map(), false);
  core.set_sysreg(SysReg::VBAR_EL1, kVbarBase);
  hv.map_kernel_rw(kStackTop - 0x10000, 0x10000);
  core.set_sp_el(El::El1, kStackTop);

  obj::Program k;
  auto& start = k.add_function("_start");
  start.mov_imm(0, 0);  // module id
  start.hvc(static_cast<uint16_t>(hyp::HvcCall::LoadModule));
  start.mov(9, 0);
  start.blr(9);
  start.hlt(0);
  obj::Image img = obj::Linker::link(k, kKernBase);
  hv.load_image(img, hv.kernel_map(), false);
  hv.set_kernel_exports(img.symbols);

  obj::Program mod;
  auto& init = mod.add_function("mod_init");
  init.frame_push();
  init.mov_imm(20, 0x5EED);
  init.frame_pop_ret();
  compiler::instrument(mod, compiler::ProtectionConfig::full());
  ASSERT_EQ(hv.register_module("mod", std::move(mod)), 0);

  // Warm the caches on kernel text before the module pages even exist.
  core.pc = img.symbol("_start");
  core.run(100000);
  EXPECT_EQ(core.halt_code(), 0u);
  EXPECT_EQ(core.x(20), 0x5EEDu)
      << "module init staged by the hypervisor must have executed";
}

// ---------------------------------------------------------------------------
// Behaviour invariance: identical simulated state with caches on and off.
// ---------------------------------------------------------------------------

TEST(FastPathInvariance, FullBootRunsBitForBitIdentical) {
  const auto run_once = [](bool fast_path) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.cpu.fast_path = fast_path;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(30));
    m.boot();
    EXPECT_TRUE(m.run());
    return std::tuple<uint64_t, uint64_t, uint64_t>(
        m.cpu().cycles(), m.cpu().retired(), m.halt_code());
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(FastPathInvariance, FaultingGuestRunsBitForBitIdentical) {
  // A run that takes fetch faults (EL1 jumping to an unmapped VA) must fault
  // on the same instruction with the same cycle count either way.
  const auto run_once = [](bool fast_path) {
    testing::SimHarness sim(cfg_with(fast_path));
    FunctionBuilder f("f");
    f.mov_imm(9, 0xFFFF000000F00000ull);  // canonical but unmapped
    f.blr(9);
    sim.run(f);
    return std::tuple<uint64_t, uint64_t, uint64_t>(
        sim.core.cycles(), sim.core.retired(), sim.core.halt_code());
  };
  const auto off = run_once(false);
  EXPECT_EQ(off, run_once(true));
  EXPECT_EQ(std::get<2>(off), 0xE1u) << "insn abort must vector to sync-EL1";
}

TEST(FastPathInvariance, PacMemoizationIsExact) {
  // The PAC memo cache tags entries with the full key material, so memoized
  // signing/authentication is bit-for-bit the plain cipher — including after
  // a key change, which must miss naturally (no explicit invalidation).
  cpu::PauthUnit plain({});
  cpu::PauthUnit memo({});
  memo.set_fast_path(true);
  const auto k1 = core::KernelKeys::generate(1).ib;
  const auto k2 = core::KernelKeys::generate(2).ib;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 64; ++i) {
      const uint64_t ptr = 0xFFFF000000080000ull + i * 8;
      const uint64_t mod = 0x1000 + i % 4;
      for (const auto& k : {k1, k2}) {
        ASSERT_EQ(memo.add_pac(ptr, mod, k), plain.add_pac(ptr, mod, k));
        const auto a = memo.auth(plain.add_pac(ptr, mod, k), mod, k,
                                 cpu::PacKey::IB);
        EXPECT_TRUE(a.ok);
        ASSERT_EQ(memo.pacga(ptr, mod, k), plain.pacga(ptr, mod, k));
      }
    }
  }
  EXPECT_GT(memo.pac_cache_stats().hits, 0u) << "repeats must be memoized";
  EXPECT_EQ(plain.pac_cache_stats().hits + plain.pac_cache_stats().misses, 0u)
      << "cache off must not populate the memo cache";
}

TEST(FastPathInvariance, CacheStatsOnlyAccumulateWhenEnabled) {
  testing::SimHarness sim(cfg_with(true));
  FunctionBuilder f("f");
  for (int i = 0; i < 16; ++i) f.nop();
  f.hlt(7);
  sim.run(f);
  const auto& fp = sim.core.fast_path_stats();
  EXPECT_GE(fp.icache_misses, 1u);
  EXPECT_GT(fp.icache_hits, 0u);
  EXPECT_GT(sim.mmu.tlb_stats().hits, 0u);
  EXPECT_EQ(fp.icache_hits + fp.icache_misses + fp.icache_redecodes,
            sim.core.retired())
      << "every fetch is exactly one predecode-cache event";
}

}  // namespace
}  // namespace camo
