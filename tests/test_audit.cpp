// Security observability (DESIGN.md §3f): audit stream + provenance,
// histogram quantiles, flight recorder and the camo-audit replay contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "assembler/builder.h"
#include "attacks/attacks.h"
#include "audit_tool.h"
#include "harness.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/audit.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "par/fleet.h"
#include "par/pool.h"

namespace camo {
namespace {

using obs::AuditEvent;
using obs::AuditKind;
using obs::AuditLog;
using obs::ModifierClass;

// ---- histogram quantiles ---------------------------------------------------

TEST(Histogram, QuantilesOfEmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  h.record(37);
  // Clamped to the exact [min,max] envelope: one sample pins every quantile.
  EXPECT_EQ(h.p50(), 37.0);
  EXPECT_EQ(h.p95(), 37.0);
  EXPECT_EQ(h.p99(), 37.0);
}

TEST(Histogram, QuantilesAreOrderedAndBounded) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 1000u * 1001u / 2);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log2 buckets bound the error by one bucket width: p50 of uniform
  // 1..1000 is 500, inside bucket [256,512) — accept that whole envelope.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GE(p99, 512.0);
}

TEST(Histogram, MergeMatchesSingleHistogram) {
  obs::Histogram a, b, all;
  for (uint64_t v = 0; v < 100; ++v) {
    (v % 2 ? a : b).record(v * 7);
    all.record(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  // Quantiles are bucket-derived, so the merged result is exactly the
  // one-histogram answer (merge-order independence).
  EXPECT_DOUBLE_EQ(a.p50(), all.p50());
  EXPECT_DOUBLE_EQ(a.p95(), all.p95());
  EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

// ---- modifier classification and labels ------------------------------------

TEST(Audit, ClassifyModifier) {
  EXPECT_EQ(obs::classify_modifier(0), ModifierClass::Zero);
  // Canonical user and kernel addresses.
  EXPECT_EQ(obs::classify_modifier(0x0000'7FFF'1234'5678ull),
            ModifierClass::Address);
  EXPECT_EQ(obs::classify_modifier(0xFFFF'0000'0008'0000ull),
            ModifierClass::Address);
  // SP ‖ function-address composites put payload in the top 16 bits.
  EXPECT_EQ(obs::classify_modifier(0x1234'0000'0008'0000ull),
            ModifierClass::Composite);
  EXPECT_EQ(obs::classify_modifier(0x0001'0000'0000'0000ull),
            ModifierClass::Composite);
}

TEST(Audit, LabelsAreStable) {
  EXPECT_STREQ(obs::audit_kind_name(AuditKind::KeyInstall), "key-install");
  EXPECT_STREQ(obs::audit_kind_name(AuditKind::Sign), "sign");
  EXPECT_STREQ(obs::audit_kind_name(AuditKind::AuthFail), "auth-fail");
  EXPECT_STREQ(obs::audit_kind_name(AuditKind::AttackVerdict),
               "attack-verdict");
  EXPECT_STREQ(obs::modifier_class_name(ModifierClass::Zero), "zero");
  EXPECT_STREQ(obs::modifier_class_name(ModifierClass::Composite),
               "composite");
  // Every valid kind has a real label.
  for (uint8_t k = 0; k < static_cast<uint8_t>(AuditKind::kCount); ++k)
    EXPECT_STRNE(obs::audit_kind_name(static_cast<AuditKind>(k)),
                 "<bad-kind>");
}

// ---- audit log ring --------------------------------------------------------

TEST(AuditLog, RingKeepsNewestAndCountsDropped) {
  AuditLog log(4);
  log.set_machine_id(9);
  for (uint64_t i = 1; i <= 10; ++i) {
    AuditEvent e;
    e.kind = AuditKind::Sign;
    e.cycles = i;
    log.audit(e);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  // Oldest-first iteration over the retained tail, machine id stamped.
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log.at(i).cycles, 7 + i);
    EXPECT_EQ(log.at(i).machine, 9u);
  }
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().cycles, 7u);
  EXPECT_EQ(snap.back().cycles, 10u);
  EXPECT_EQ(log.count_kind(AuditKind::Sign), 4u);
  log.clear();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.total(), 0u);
}

// ---- causal chain ----------------------------------------------------------

std::vector<AuditEvent> chain_fixture() {
  // install(prov 7) → sign(match) → sign(other) → authfail → verdict.
  std::vector<AuditEvent> ev(5);
  ev[0].kind = AuditKind::KeyInstall;
  ev[0].prov = 7;
  ev[0].key = 0;
  ev[1].kind = AuditKind::Sign;
  ev[1].key = 0;
  ev[1].prov = 7;
  ev[1].ptr = 0xFFFF000000081000ull;
  ev[1].ptr2 = 0x002A0F0000081000ull;  // signed form (PAC in top bits)
  ev[2].kind = AuditKind::Sign;
  ev[2].key = 0;
  ev[2].prov = 7;
  ev[2].ptr = 0xFFFF000000099000ull;
  ev[2].ptr2 = 0x1BAD0F0000099000ull;
  ev[3].kind = AuditKind::AuthFail;
  ev[3].key = 0;
  ev[3].prov = 7;
  ev[3].ptr = ev[1].ptr2;  // replayed signed value, rejected under new ctx
  ev[4].kind = AuditKind::AttackVerdict;
  return ev;
}

TEST(CausalChain, LinksInstallSignFailVerdict) {
  const auto ev = chain_fixture();
  const auto chain = obs::causal_chain(ev, 3);
  EXPECT_EQ(chain, (std::vector<size_t>{0, 1, 3, 4}));
}

TEST(CausalChain, StrippedPointerStillMatchesSign) {
  auto ev = chain_fixture();
  // Attacker corrupted the PAC bits but kept the target: low 48 bits of the
  // failing pointer match the *raw* pointer that was signed.
  ev[3].ptr = 0xDEAD000000081000ull;
  const auto chain = obs::causal_chain(ev, 3);
  EXPECT_EQ(chain, (std::vector<size_t>{0, 1, 3, 4}));
}

TEST(CausalChain, ForgedPointerHasNoSignLink) {
  auto ev = chain_fixture();
  ev[3].ptr = 0x0BAD0BAD0BAD0BADull;  // matches no sign event at all
  const auto chain = obs::causal_chain(ev, 3);
  EXPECT_EQ(chain, (std::vector<size_t>{0, 3, 4}));
}

TEST(CausalChain, IgnoresOtherMachinesAndNonFailures) {
  auto ev = chain_fixture();
  ev[0].machine = 1;  // install from another fleet machine: excluded
  ev[4].machine = 2;  // verdict from another machine: excluded
  EXPECT_EQ(obs::causal_chain(ev, 3), (std::vector<size_t>{1, 3}));
  // Non-failure anchor: the chain is just the event itself.
  EXPECT_EQ(obs::causal_chain(ev, 1), (std::vector<size_t>{1}));
  EXPECT_TRUE(obs::causal_chain(ev, 99).empty());
}

TEST(CausalChain, ZeroProvenanceNeverLinksInstalls) {
  auto ev = chain_fixture();
  // Keys installed outside the audited path (host set_sysreg) carry prov 0;
  // a failure under them must not link to unrelated prov-0 installs.
  ev[0].prov = 0;
  ev[1].prov = 0;
  ev[2].prov = 0;
  ev[3].prov = 0;
  EXPECT_EQ(obs::causal_chain(ev, 3), (std::vector<size_t>{1, 3, 4}));
}

// ---- JSON codecs -----------------------------------------------------------

TEST(FlightJson, HexCodecRoundTripsFullWidth) {
  const uint64_t cases[] = {0, 1, 0xFFFF000000080000ull, ~uint64_t{0}};
  for (const uint64_t v : cases) {
    const std::string s = obs::hex_u64(v);
    EXPECT_EQ(s.rfind("0x", 0), 0u) << s;
    const auto parsed = obs::json::Value::parse("\"" + s + "\"");
    ASSERT_TRUE(parsed);
    EXPECT_EQ(obs::parse_hex_u64(*parsed), v);
  }
}

TEST(FlightJson, AuditEventRoundTripsEveryField) {
  AuditEvent e;
  e.cycles = 123456789;
  e.pc = 0xFFFF0000000ABCDEull;
  e.ptr = ~uint64_t{0};  // top bit set: would be mangled as a double
  e.ptr2 = 0x8000000000000001ull;
  e.modifier = 0x1234FFFF00080000ull;
  e.lr = 0xFFFF000000099998ull;
  e.prov = 42;
  e.machine = 3;
  e.kind = AuditKind::AuthFail;
  e.key = 2;
  e.el = 1;
  e.mclass = static_cast<uint8_t>(ModifierClass::Composite);
  e.bank = 1;
  e.aux = 7;
  e.imm = 0xBEEF;
  AuditEvent out;
  ASSERT_TRUE(obs::audit_event_from_json(obs::audit_event_json(e), &out));
  EXPECT_EQ(out.cycles, e.cycles);
  EXPECT_EQ(out.pc, e.pc);
  EXPECT_EQ(out.ptr, e.ptr);
  EXPECT_EQ(out.ptr2, e.ptr2);
  EXPECT_EQ(out.modifier, e.modifier);
  EXPECT_EQ(out.lr, e.lr);
  EXPECT_EQ(out.prov, e.prov);
  EXPECT_EQ(out.machine, e.machine);
  EXPECT_EQ(out.kind, e.kind);
  EXPECT_EQ(out.key, e.key);
  EXPECT_EQ(out.el, e.el);
  EXPECT_EQ(out.mclass, e.mclass);
  EXPECT_EQ(out.bank, e.bank);
  EXPECT_EQ(out.aux, e.aux);
  EXPECT_EQ(out.imm, e.imm);
}

// ---- key provenance on the CPU ---------------------------------------------

TEST(Provenance, GuestMsrBumpsHostInstallDoesNot) {
  testing::SimHarness h;
  // The harness installs every key via host set_sysreg: outside the audited
  // path, so everything starts at provenance 0.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(h.core.sysreg_key_provenance(static_cast<cpu::PacKey>(k)), 0u);
    EXPECT_EQ(h.core.bank_key_provenance(static_cast<cpu::PacKey>(k)), 0u);
  }
  AuditLog log;
  h.core.set_audit_sink(&log);
  assembler::FunctionBuilder f("t");
  f.mov_imm(9, 0x1111);
  f.msr(isa::SysReg::APDAKeyLo, 9);
  f.msr(isa::SysReg::APDAKeyHi, 9);
  f.mov_imm(9, 0x2222);
  f.msr(isa::SysReg::APIAKeyLo, 9);
  f.hlt(1);
  h.run(f);
  // Each MSR of a key half is a distinct install with a fresh id.
  EXPECT_EQ(h.core.sysreg_key_provenance(cpu::PacKey::DA), 2u);
  EXPECT_EQ(h.core.sysreg_key_provenance(cpu::PacKey::IA), 3u);
  EXPECT_EQ(h.core.sysreg_key_provenance(cpu::PacKey::IB), 0u);
  EXPECT_EQ(h.core.key_provenance(cpu::PacKey::DA), 2u);
  EXPECT_EQ(log.count_kind(AuditKind::KeyInstall), 3u);
  const auto snap = log.snapshot();
  uint64_t last_prov = 0;
  for (const AuditEvent& e : snap)
    if (e.kind == AuditKind::KeyInstall) {
      EXPECT_GT(e.prov, last_prov) << "provenance must be monotonic";
      last_prov = e.prov;
      EXPECT_EQ(e.bank, 0u);
    }
}

TEST(Provenance, SignAndAuthCarryTheInstallId) {
  testing::SimHarness h;
  AuditLog log;
  h.core.set_audit_sink(&log);
  assembler::FunctionBuilder f("t");
  f.mov_imm(9, 0x1111);
  f.msr(isa::SysReg::APDAKeyLo, 9);  // prov 1
  f.mov_imm(0, testing::kHData + 0x100);
  f.mov_imm(1, 0x42);
  f.pacda(0, 1);
  f.autda(0, 1);  // accepted
  f.mov_imm(2, 0x43);
  f.pacda(0, 1);
  f.autda(0, 2);  // wrong modifier: rejected
  f.hlt(1);
  h.run(f);
  const auto ev = log.snapshot();
  size_t fail_at = ev.size();
  uint64_t signs = 0, oks = 0;
  for (size_t i = 0; i < ev.size(); ++i) {
    if (ev[i].kind == AuditKind::Sign) {
      ++signs;
      EXPECT_EQ(ev[i].prov, 1u);
      EXPECT_EQ(ev[i].key, static_cast<uint8_t>(cpu::PacKey::DA));
      // Modifier 0x42 has an all-zero top 16: structurally an address.
      EXPECT_EQ(ev[i].mclass, static_cast<uint8_t>(ModifierClass::Address));
    }
    if (ev[i].kind == AuditKind::AuthOk) ++oks;
    if (ev[i].kind == AuditKind::AuthFail) fail_at = i;
  }
  EXPECT_EQ(signs, 2u);
  EXPECT_EQ(oks, 1u);
  ASSERT_LT(fail_at, ev.size()) << "wrong-modifier AUT must audit a failure";
  EXPECT_EQ(ev[fail_at].prov, 1u);
  EXPECT_NE(ev[fail_at].pc, 0u);
  // The failure links back through the matching sign to the install.
  const auto chain = obs::causal_chain(ev, fail_at);
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(ev[chain.front()].kind, AuditKind::KeyInstall);
  EXPECT_EQ(chain.back(), fail_at);
  bool has_sign = false;
  for (const size_t i : chain) has_sign |= ev[i].kind == AuditKind::Sign;
  EXPECT_TRUE(has_sign);
}

// ---- whole-machine audit stream --------------------------------------------

kernel::MachineConfig observed_config() {
  kernel::MachineConfig cfg;
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  return cfg;
}

TEST(MachineAudit, SyscallRunEmitsTypedStream) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::null_syscall(5));
  m.boot();
  ASSERT_TRUE(m.run());
  ASSERT_NE(m.stats(), nullptr);
  const AuditLog& log = m.stats()->audit_log();
  EXPECT_GT(log.count_kind(AuditKind::KeyInstall), 0u);
  EXPECT_GT(log.count_kind(AuditKind::Sign), 0u);
  EXPECT_GT(log.count_kind(AuditKind::AuthOk), 0u);
  EXPECT_GT(log.count_kind(AuditKind::ElEnter), 0u);
  EXPECT_GT(log.count_kind(AuditKind::ElExit), 0u);
  EXPECT_EQ(log.count_kind(AuditKind::AuthFail), 0u);
  // A clean run never arms the flight recorder.
  EXPECT_FALSE(m.stats()->flight().captured());
  // The sign→auth latency histogram was fed by the collector.
  const obs::Histogram* h =
      m.stats()->metrics().find_histogram("pauth.sign_to_auth.cycles");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u);
  EXPECT_GT(h->p50(), 0.0);
  // Kernel entry/exit re-keying shows up as key-switch bursts.
  const obs::Histogram* ks =
      m.stats()->metrics().find_histogram("key.switch.cycles");
  ASSERT_NE(ks, nullptr);
  EXPECT_GT(ks->count(), 0u);
}

TEST(MachineAudit, StreamIsDeterministicAcrossRuns) {
  auto run_once = [] {
    kernel::Machine m(observed_config());
    m.add_user_program(kernel::workloads::null_syscall(3));
    m.boot();
    EXPECT_TRUE(m.run());
    std::string out;
    for (const AuditEvent& e : m.stats()->audit_log().snapshot())
      out += obs::audit_event_json(e).dump() + "\n";
    return out;
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---- flight recorder + named-attack bundles --------------------------------

TEST(Flight, RopInjectionProducesSelfContainedBundle) {
  std::string bundle;
  const auto r = attacks::run_named_attack("rop-injection", "full", &bundle);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->outcome, attacks::Outcome::Detected);
  ASSERT_FALSE(bundle.empty());
  const auto doc = obs::json::Value::parse(bundle);
  ASSERT_TRUE(doc) << "bundle is not valid JSON";
  ASSERT_TRUE(doc->get("schema"));
  EXPECT_EQ(doc->get("schema")->as_string(), "camo-flight/v1");
  ASSERT_TRUE(doc->get("captured"));
  EXPECT_TRUE(doc->get("captured")->as_bool());
  const auto* scen = doc->get("scenario");
  ASSERT_NE(scen, nullptr);
  EXPECT_EQ(scen->get("attack")->as_string(), "rop-injection");
  EXPECT_EQ(scen->get("config")->as_string(), "full");
  // Trigger, ring and state are present and non-trivial.
  const auto* trig = doc->get("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_NE(obs::parse_hex_u64(*trig->get("pc")), 0u);
  const auto* ring = doc->get("ring");
  ASSERT_NE(ring, nullptr);
  EXPECT_GT(ring->size(), 0u);
  const auto* state = doc->get("state");
  ASSERT_NE(state, nullptr);
  EXPECT_NE(obs::parse_hex_u64(*state->get("pc")), 0u);
  // The audit stream and the causal chain of the terminal failure.
  const auto* audit = doc->get("audit");
  ASSERT_NE(audit, nullptr);
  EXPECT_GT(audit->size(), 0u);
  const auto* chain = doc->get("chain");
  ASSERT_NE(chain, nullptr);
  EXPECT_GT(chain->size(), 1u) << "failure must link back to sign/install";
}

TEST(Flight, BundleIsBitIdenticalAcrossRuns) {
  // The replay contract: same scenario, same seed → byte-identical bundle.
  std::string a, b;
  ASSERT_TRUE(attacks::run_named_attack("rop-injection", "full", &a));
  ASSERT_TRUE(attacks::run_named_attack("rop-injection", "full", &b));
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Flight, RegistryRejectsUnknownNames) {
  EXPECT_FALSE(attacks::run_named_attack("no-such-attack", "full"));
  EXPECT_FALSE(attacks::run_named_attack("rop-injection", "no-such-config"));
  EXPECT_FALSE(attacks::protection_config_by_name("bogus"));
  const auto& names = attacks::attack_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "rop-injection"),
            names.end());
  EXPECT_EQ(attacks::attack_config_names().size(), 3u);
}

TEST(AuditTool, CanonicalBundleIsIdempotentAndStrict) {
  std::string err;
  const std::string canon =
      audit_tool::canonical_bundle("{\"b\": 1, \"a\": [1,2]}", &err);
  ASSERT_FALSE(canon.empty()) << err;
  EXPECT_EQ(audit_tool::canonical_bundle(canon, &err), canon);
  EXPECT_TRUE(audit_tool::canonical_bundle("{not json", &err).empty());
  EXPECT_FALSE(err.empty());
}

// ---- fleet merge -----------------------------------------------------------

std::string merged_audit_dump(unsigned jobs) {
  par::Pool pool(jobs);
  auto fleet = par::run_fleet(
      pool, 5,
      [&](size_t i) {
        kernel::MachineConfig cfg = observed_config();
        cfg.seed = 0xFEED + i;
        cfg.machine_id = static_cast<unsigned>(i);
        auto m = std::make_unique<kernel::Machine>(cfg);
        m->add_user_program(kernel::workloads::null_syscall(3 + 2 * i));
        return m;
      },
      [](size_t, kernel::Machine& m) {
        m.boot();
        m.run();
        return m.halt_code();
      });
  std::string out;
  uint32_t last_machine = 0;
  for (const AuditEvent& e : fleet.audit) {
    // Task-index merge order: machine ids are non-decreasing.
    EXPECT_GE(e.machine, last_machine);
    last_machine = e.machine;
    out += obs::audit_event_json(e).dump() + "\n";
  }
  EXPECT_EQ(last_machine, 4u) << "every machine contributes audit events";
  EXPECT_GT(fleet.stats.task_us.count(), 0u);
  return out;
}

TEST(FleetAudit, MergedStreamBitIdenticalForAnyJobs) {
  const std::string serial = merged_audit_dump(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(merged_audit_dump(4), serial);
}

}  // namespace
}  // namespace camo
