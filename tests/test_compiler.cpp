// Instrumentation-pass tests: structural checks of the emitted sequences
// (Listings 2-4) and behavioural end-to-end runs of instrumented code.
#include <gtest/gtest.h>

#include "compiler/instrument.h"
#include "support/error.h"
#include "harness.h"

namespace camo::compiler {
namespace {

using assembler::FunctionBuilder;
using assembler::Item;
using camo::testing::kHData;
using camo::testing::kHText;
using isa::Op;

std::vector<Op> ops_of(const FunctionBuilder& f) {
  std::vector<Op> ops;
  for (const auto& item : f.items())
    if (item.kind == Item::Kind::Inst) ops.push_back(item.inst.op);
  return ops;
}

FunctionBuilder framed_function() {
  FunctionBuilder f("victim");
  f.frame_push();
  f.nop();
  f.frame_pop_ret();
  return f;
}

TEST(InstrumentBackward, NoneIsPlainListing1) {
  auto f = framed_function();
  instrument(f, ProtectionConfig::none());
  EXPECT_EQ(ops_of(f), (std::vector<Op>{Op::STP_PRE, Op::ADDI, Op::NOP,
                                        Op::LDP_POST, Op::RET}));
}

TEST(InstrumentBackward, ClangSpMatchesListing2) {
  auto f = framed_function();
  ProtectionConfig cfg;
  cfg.backward = BackwardScheme::ClangSp;
  instrument(f, cfg);
  EXPECT_EQ(ops_of(f),
            (std::vector<Op>{Op::PACIASP, Op::STP_PRE, Op::ADDI, Op::NOP,
                             Op::LDP_POST, Op::AUTIASP, Op::RET}));
}

TEST(InstrumentBackward, CamouflageMatchesListing3) {
  auto f = framed_function();
  ProtectionConfig cfg;
  cfg.backward = BackwardScheme::Camouflage;
  instrument(f, cfg);
  // adr ip0, fn; mov ip1, sp; bfi ip0, ip1, #32, #32; pacib lr, ip0; stp...
  EXPECT_EQ(ops_of(f),
            (std::vector<Op>{Op::ADR, Op::ADDI, Op::BFI, Op::PACIB,
                             Op::STP_PRE, Op::ADDI, Op::NOP, Op::LDP_POST,
                             Op::ADR, Op::ADDI, Op::BFI, Op::AUTIB, Op::RET}));
  // The BFI must place SP's low 32 bits in the high half (Listing 3 line 4).
  for (const auto& item : f.items()) {
    if (item.kind == Item::Kind::Inst && item.inst.op == Op::BFI) {
      EXPECT_EQ(item.inst.lsb, 32);
      EXPECT_EQ(item.inst.width, 32);
    }
  }
}

TEST(InstrumentBackward, PartsBuildsFunctionId) {
  auto f = framed_function();
  ProtectionConfig cfg;
  cfg.backward = BackwardScheme::Parts;
  instrument(f, cfg);
  const auto ops = ops_of(f);
  // movz+movk+movk (48-bit id), mov sp, bfi #48 #16, pacib.
  EXPECT_EQ(std::count(ops.begin(), ops.end(), Op::MOVK), 4);  // 2 per site
  EXPECT_EQ(std::count(ops.begin(), ops.end(), Op::PACIB), 1);
  EXPECT_EQ(std::count(ops.begin(), ops.end(), Op::AUTIB), 1);
  for (const auto& item : f.items())
    if (item.kind == Item::Kind::Inst && item.inst.op == Op::BFI) {
      EXPECT_EQ(item.inst.lsb, 48);
      EXPECT_EQ(item.inst.width, 16);
    }
}

TEST(InstrumentBackward, CompatUsesOnlyHintSpace) {
  auto f = framed_function();
  ProtectionConfig cfg;
  cfg.backward = BackwardScheme::Camouflage;
  cfg.compat_mode = true;
  instrument(f, cfg);
  for (const auto& item : f.items()) {
    if (item.kind != Item::Kind::Inst) continue;
    if (isa::is_pauth(item.inst.op)) {
      EXPECT_TRUE(isa::is_hint_space(item.inst.op))
          << isa::op_name(item.inst.op);
    }
  }
}

TEST(InstrumentBackward, NoInstrumentFunctionsUntouched) {
  auto f = framed_function();
  f.set_no_instrument();
  ProtectionConfig cfg;  // full camouflage
  instrument(f, cfg);
  EXPECT_EQ(ops_of(f), (std::vector<Op>{Op::STP_PRE, Op::ADDI, Op::NOP,
                                        Op::LDP_POST, Op::RET}));
}

TEST(InstrumentBackward, PartsFunctionIdIs48Bits) {
  const uint64_t a = parts_function_id("vfs_read");
  const uint64_t b = parts_function_id("vfs_write");
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 48, 0u);
  EXPECT_EQ(parts_function_id("vfs_read"), a);  // stable
}

TEST(InstrumentBackward, OverheadCountsOrdered) {
  // Figure 2's ordering: Clang < Camouflage < PARTS.
  const unsigned clang = backward_overhead_insns(BackwardScheme::ClangSp, false);
  const unsigned camo = backward_overhead_insns(BackwardScheme::Camouflage, false);
  const unsigned parts = backward_overhead_insns(BackwardScheme::Parts, false);
  EXPECT_LT(clang, camo);
  EXPECT_LT(camo, parts);
  EXPECT_EQ(backward_overhead_insns(BackwardScheme::None, false), 0u);
}

TEST(InstrumentPointer, StoreLoadExpansionMatchesListing4) {
  FunctionBuilder f("acc");
  f.load_protected(8, 0, 40, 0xFB45, cpu::PacKey::DB);
  instrument(f, ProtectionConfig::full());
  // ldr x8, [x0,#40]; movz x16,#0xfb45; bfi x16,x0,#16,#48; autdb x8,x16.
  EXPECT_EQ(ops_of(f),
            (std::vector<Op>{Op::LDR, Op::MOVZ, Op::BFI, Op::AUTDB}));
}

TEST(InstrumentPointer, DisabledDfiMeansPlainAccess) {
  FunctionBuilder f("acc");
  f.store_protected(1, 0, 16, 7, cpu::PacKey::DB);
  f.load_protected(2, 0, 16, 7, cpu::PacKey::DB);
  ProtectionConfig cfg = ProtectionConfig::backward_only();
  instrument(f, cfg);
  EXPECT_EQ(ops_of(f), (std::vector<Op>{Op::STR, Op::LDR}));
}

TEST(InstrumentPointer, ForwardGateIndependentOfDfi) {
  FunctionBuilder f("acc");
  f.call_protected(8, 0, 7, cpu::PacKey::IB);
  ProtectionConfig cfg;
  cfg.dfi = false;  // forward stays on
  instrument(f, cfg);
  const auto ops = ops_of(f);
  EXPECT_NE(std::find(ops.begin(), ops.end(), Op::BLRAB), ops.end());
}

TEST(InstrumentPointer, CombinedVsSplitBranches) {
  FunctionBuilder f1("a");
  f1.call_protected(8, 0, 7, cpu::PacKey::IB);
  ProtectionConfig cfg;
  cfg.combined_branches = true;
  instrument(f1, cfg);
  EXPECT_EQ(ops_of(f1), (std::vector<Op>{Op::MOVZ, Op::BFI, Op::BLRAB}));

  FunctionBuilder f2("b");
  f2.call_protected(8, 0, 7, cpu::PacKey::IB);
  cfg.combined_branches = false;
  instrument(f2, cfg);
  EXPECT_EQ(ops_of(f2),
            (std::vector<Op>{Op::MOVZ, Op::BFI, Op::AUTIB, Op::BLR}));
}

TEST(InstrumentPointer, X16X17OperandsRejected) {
  FunctionBuilder f("bad");
  f.load_protected(16, 0, 0, 1, cpu::PacKey::DB);
  EXPECT_THROW(instrument(f, ProtectionConfig::full()), camo::Error);
}

// ---------------------------------------------------------------------------
// Behavioural: run instrumented code on the core.
// ---------------------------------------------------------------------------

class SchemeRun : public ::testing::TestWithParam<BackwardScheme> {};

TEST_P(SchemeRun, FramedCallReturnsCorrectly) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  const auto fn = f.make_label();
  const auto over = f.make_label();
  f.b(over);
  f.bind(fn);
  f.frame_push(32);
  f.mov_imm(0, 123);
  f.str(0, isa::kRegZrSp, 0);  // use a local slot
  f.ldr(1, isa::kRegZrSp, 0);
  f.frame_pop_ret(32);
  f.bind(over);
  f.bl(fn);
  f.add_i(2, 1, 1);
  f.hlt(1);

  ProtectionConfig cfg;
  cfg.backward = GetParam();
  instrument(f, cfg);
  sim.run(f);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.x(2), 124u);
}

TEST_P(SchemeRun, NestedCallsPreserveReturnPath) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  const auto outer = f.make_label();
  const auto inner = f.make_label();
  const auto start = f.make_label();
  f.b(start);
  f.bind(outer);
  f.frame_push();
  f.bl(inner);
  f.add_i(0, 0, 100);
  f.frame_pop_ret();
  f.bind(inner);
  f.frame_push();
  f.mov_imm(0, 5);
  f.frame_pop_ret();
  f.bind(start);
  f.bl(outer);
  f.hlt(1);

  ProtectionConfig cfg;
  cfg.backward = GetParam();
  instrument(f, cfg);
  sim.run(f);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.x(0), 105u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRun,
                         ::testing::Values(BackwardScheme::None,
                                           BackwardScheme::ClangSp,
                                           BackwardScheme::Parts,
                                           BackwardScheme::Camouflage),
                         [](const auto& info) {
                           std::string n = backward_scheme_name(info.param);
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(InstrumentRun, ProtectedStoreLoadRoundTrip) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  f.mov_imm(0, kHData);         // object
  f.mov_imm(1, kHText + 0x40);  // pointer value to protect
  f.store_protected(1, 0, 40, 0xFB45, cpu::PacKey::DB);
  f.ldr(2, 0, 40);              // raw load: signed in memory
  f.load_protected(3, 0, 40, 0xFB45, cpu::PacKey::DB);
  f.hlt(1);
  instrument(f, ProtectionConfig::full());
  sim.run(f);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_NE(sim.core.x(2), kHText + 0x40) << "stored pointer must be signed";
  EXPECT_EQ(sim.core.x(3), kHText + 0x40) << "getter must authenticate";
}

TEST(InstrumentRun, WrongTypeIdFailsAuthentication) {
  // §4.3: the 16-bit constant segregates pointers by (type, member) — a
  // pointer signed as one member cannot be consumed as another.
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  f.mov_imm(0, kHData);
  f.mov_imm(1, kHText + 0x40);
  f.store_protected(1, 0, 40, 0xFB45, cpu::PacKey::DB);
  f.load_protected(3, 0, 40, 0x1111, cpu::PacKey::DB);
  f.hlt(1);
  instrument(f, ProtectionConfig::full());
  sim.run(f);
  EXPECT_FALSE(sim.core.config().layout.is_canonical(sim.core.x(3)));
}

TEST(InstrumentRun, ProtectedCallReachesTarget) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  const auto target = f.make_label();
  const auto start = f.make_label();
  f.b(start);
  f.bind(target);
  f.mov_imm(0, 0xAA);
  f.ret();
  f.bind(start);
  f.mov_imm(1, kHData);  // containing object
  f.adr(2, target);
  // Sign the pointer as the store side would, then call through it.
  f.store_protected(2, 1, 0, 0x77, cpu::PacKey::IB);
  f.ldr(3, 1, 0);
  f.call_protected(3, 1, 0x77, cpu::PacKey::IB);
  f.hlt(1);
  instrument(f, ProtectionConfig::full());
  sim.run(f);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.x(0), 0xAAu);
}

TEST(InstrumentRun, CompatModeRunsOnPre83Core) {
  // §5.5: the same protected binary must execute correctly (unprotected) on
  // a core without PAuth.
  cpu::Cpu::Config old_core;
  old_core.has_pauth = false;
  camo::testing::SimHarness sim(old_core);

  FunctionBuilder f("main");
  const auto fn = f.make_label();
  const auto start = f.make_label();
  f.b(start);
  f.bind(fn);
  f.frame_push();
  f.mov_imm(0, 9);
  f.frame_pop_ret();
  f.bind(start);
  f.mov_imm(1, kHData);
  f.mov_imm(2, kHText + 0x40);
  f.store_protected(2, 1, 0, 5, cpu::PacKey::DB);
  f.load_protected(3, 1, 0, 5, cpu::PacKey::DB);
  f.bl(fn);
  f.hlt(1);
  ProtectionConfig cfg;
  cfg.compat_mode = true;
  instrument(f, cfg);
  sim.run(f);
  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.x(0), 9u);
  EXPECT_EQ(sim.core.x(3), kHText + 0x40);  // no PAC applied on old core
}

TEST(InstrumentRun, CompatModeProtectsOn83Core) {
  camo::testing::SimHarness sim;
  FunctionBuilder f("main");
  f.mov_imm(1, kHData);
  f.mov_imm(2, kHText + 0x40);
  f.store_protected(2, 1, 0, 5, cpu::PacKey::DB);
  f.ldr(3, 1, 0);  // raw: signed (with IB in compat mode)
  f.load_protected(4, 1, 0, 5, cpu::PacKey::DB);
  f.hlt(1);
  ProtectionConfig cfg;
  cfg.compat_mode = true;
  instrument(f, cfg);
  sim.run(f);
  EXPECT_NE(sim.core.x(3), kHText + 0x40);
  EXPECT_EQ(sim.core.x(4), kHText + 0x40);
}

}  // namespace
}  // namespace camo::compiler
