// CPU core tests: instruction semantics, exception model, PAuth behaviour,
// cycle model. Programs are written via the FunctionBuilder, assembled into
// guest memory and executed on the simulated core.
#include <gtest/gtest.h>

#include "assembler/builder.h"
#include "cpu/cpu.h"
#include "mem/mmu.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using cpu::Cpu;
using cpu::ExcClass;
using cpu::PacKey;
using isa::Cond;
using isa::SysReg;
using mem::El;

constexpr uint64_t kText = 0xFFFF000000080000ull;
constexpr uint64_t kData = 0xFFFF000000100000ull;
constexpr uint64_t kStackTop = 0xFFFF000000140000ull;
constexpr uint64_t kVbar = 0xFFFF000000060000ull;

class CpuTest : public ::testing::Test {
 protected:
  explicit CpuTest(Cpu::Config cfg = {}) : mmu(pm, cfg.layout), core(mmu, cfg) {
    kmap.map_range(kText, 0x10000, 0x10000, mem::PagePerms::kernel_text());
    kmap.map_range(kData, 0x30000, 0x10000, mem::PagePerms::kernel_rw());
    kmap.map_range(kStackTop - 0x10000, 0x40000, 0x10000,
                   mem::PagePerms::kernel_rw());
    kmap.map_range(kVbar, 0x60000, 0x2000, mem::PagePerms::kernel_text());
    mmu.set_kernel_map(&kmap);

    // Enable every PAuth key and install distinct key material.
    core.set_sysreg(SysReg::SCTLR_EL1, isa::kSctlrEnIA | isa::kSctlrEnIB |
                                           isa::kSctlrEnDA | isa::kSctlrEnDB);
    for (int i = 0; i < 10; ++i)
      core.set_sysreg(static_cast<SysReg>(i),
                      0x1111111111111111ull * static_cast<uint64_t>(i + 1));
    core.set_sysreg(SysReg::VBAR_EL1, kVbar);
    core.set_sp_el(El::El1, kStackTop);

    // Default vectors: halt with a code identifying the vector taken.
    install_vector(Cpu::kVecSyncEl1, 0xE1);
    install_vector(Cpu::kVecIrqEl1, 0xE2);
    install_vector(Cpu::kVecSyncEl0, 0xE3);
    install_vector(Cpu::kVecIrqEl0, 0xE4);
  }

  void install_vector(uint64_t offset, uint16_t halt_code) {
    FunctionBuilder f("vec");
    f.hlt(halt_code);
    write_words(kVbar + offset, f.assemble().words);
  }

  void write_words(uint64_t va, const std::vector<uint32_t>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto t = mmu.translate(va + i * 4, mem::Access::Fetch, El::El2);
      ASSERT_TRUE(t.ok());
      pm.write32(t.pa, words[i]);
    }
  }

  /// Assemble `f` at kText and run until halt (or step limit).
  void run(FunctionBuilder& f, uint64_t max_steps = 100000) {
    write_words(kText, f.assemble().words);
    core.pc = kText;
    core.run(max_steps);
  }

  mem::PhysicalMemory pm{1 << 20};
  mem::Stage1Map kmap;
  mem::Mmu mmu;
  Cpu core;
};

TEST_F(CpuTest, MovAndArithmetic) {
  FunctionBuilder f("t");
  f.mov_imm(0, 41);
  f.mov_imm(1, 1);
  f.add(2, 0, 1);
  f.mov_imm(3, 7);
  f.mul(4, 2, 3);       // 294
  f.udiv(5, 4, 3);      // 42
  f.sub_i(6, 5, 2);     // 40
  f.mov_imm(9, 0xFFFF);
  f.movk(9, 0xABCD, 3);  // 0xabcd00000000ffff
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  EXPECT_EQ(core.x(2), 42u);
  EXPECT_EQ(core.x(4), 294u);
  EXPECT_EQ(core.x(5), 42u);
  EXPECT_EQ(core.x(6), 40u);
  EXPECT_EQ(core.x(9), 0xABCD00000000FFFFull);
}

TEST_F(CpuTest, MovImmWideValues) {
  FunctionBuilder f("t");
  f.mov_imm(0, 0xFFFF000000080000ull);
  f.mov_imm(1, 0);
  f.mov_imm(2, 0x123456789ABCDEF0ull);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(0), 0xFFFF000000080000ull);
  EXPECT_EQ(core.x(1), 0u);
  EXPECT_EQ(core.x(2), 0x123456789ABCDEF0ull);
}

TEST_F(CpuTest, LogicalAndShifts) {
  FunctionBuilder f("t");
  f.mov_imm(0, 0xFF00FF00);
  f.mov_imm(1, 0x0FF00FF0);
  f.and_(2, 0, 1);
  f.orr(3, 0, 1);
  f.eor(4, 0, 1);
  f.lsl_i(5, 0, 8);
  f.lsr_i(6, 0, 8);
  f.mov_imm(7, 4);
  f.lslv(8, 1, 7);
  f.mov_imm(9, 0x8000000000000000ull);
  f.asr_i(10, 9, 63);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(2), 0xFF00FF00u & 0x0FF00FF0u);
  EXPECT_EQ(core.x(3), 0xFF00FF00u | 0x0FF00FF0u);
  EXPECT_EQ(core.x(4), 0xFF00FF00u ^ 0x0FF00FF0u);
  EXPECT_EQ(core.x(5), 0xFF00FF0000ull);
  EXPECT_EQ(core.x(6), 0xFF00FFu);
  EXPECT_EQ(core.x(8), 0x0FF00FF00ull);
  EXPECT_EQ(core.x(10), ~uint64_t{0});
}

TEST_F(CpuTest, BitfieldOps) {
  FunctionBuilder f("t");
  // The Listing 3 modifier construction: low 32 bits of SP into the high 32
  // bits of the function address.
  f.mov_imm(0, 0x00000000DEAD0000ull);  // "function address"
  f.mov_imm(1, 0x12345678ull);          // "SP"
  f.bfi(0, 1, 32, 32);
  f.mov_imm(2, 0xABCDull);
  f.ubfx(3, 0, 32, 32);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(0), 0x12345678DEAD0000ull);
  EXPECT_EQ(core.x(3), 0x12345678u);
}

TEST_F(CpuTest, CompareAndBranch) {
  FunctionBuilder f("t");
  const auto less = f.make_label();
  const auto end = f.make_label();
  f.mov_imm(0, 5);
  f.cmp_i(0, 10);
  f.b_cond(Cond::LT, less);
  f.mov_imm(1, 111);
  f.b(end);
  f.bind(less);
  f.mov_imm(1, 222);
  f.bind(end);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(1), 222u);
}

TEST_F(CpuTest, SignedConditionsOnNegatives) {
  FunctionBuilder f("t");
  const auto ge = f.make_label();
  f.mov_imm(0, 0);
  f.sub_i(0, 0, 1);  // -1
  f.cmp_i(0, 0);
  f.b_cond(Cond::GE, ge);
  f.mov_imm(1, 1);  // taken: -1 < 0
  f.hlt(1);
  f.bind(ge);
  f.mov_imm(1, 2);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(1), 1u);
}

TEST_F(CpuTest, LoopCountsDown) {
  FunctionBuilder f("t");
  const auto loop = f.make_label();
  f.mov_imm(0, 10);
  f.mov_imm(1, 0);
  f.bind(loop);
  f.add_i(1, 1, 3);
  f.sub_i(0, 0, 1);
  f.cbnz(0, loop);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(1), 30u);
}

TEST_F(CpuTest, LoadStoreAndPairs) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData);
  f.mov_imm(1, 0xAABB);
  f.mov_imm(2, 0xCCDD);
  f.str(1, 0, 0);
  f.str(2, 0, 8);
  f.ldr(3, 0, 0);
  f.ldp(4, 5, 0, 0);
  f.stp(2, 1, 0, 16);
  f.ldr(6, 0, 16);
  f.ldr(7, 0, 24);
  f.strb(1, 0, 32);
  f.ldrb(8, 0, 32);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(3), 0xAABBu);
  EXPECT_EQ(core.x(4), 0xAABBu);
  EXPECT_EQ(core.x(5), 0xCCDDu);
  EXPECT_EQ(core.x(6), 0xCCDDu);
  EXPECT_EQ(core.x(7), 0xAABBu);
  EXPECT_EQ(core.x(8), 0xBBu);
}

TEST_F(CpuTest, FrameRecordPushPop) {
  // The canonical Listing 1 prologue/epilogue against the banked SP.
  FunctionBuilder f("t");
  f.mov_imm(29, 0x1111);
  f.mov_imm(30, 0x2222);
  f.stp_pre(29, 30, 31, -16);
  f.mov_imm(29, 0);
  f.mov_imm(30, 0);
  f.ldp_post(29, 30, 31, 16);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(29), 0x1111u);
  EXPECT_EQ(core.x(30), 0x2222u);
  EXPECT_EQ(core.sp_el(El::El1), kStackTop);
}

TEST_F(CpuTest, BlAndRet) {
  FunctionBuilder f("t");
  const auto fn = f.make_label();
  f.bl(fn);
  f.hlt(1);
  f.bind(fn);
  f.mov_imm(0, 77);
  f.ret();
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  EXPECT_EQ(core.x(0), 77u);
}

TEST_F(CpuTest, AdrResolvesPcRelative) {
  FunctionBuilder f("t");
  f.adr(0, f.entry_label());
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(0), kText);
}

// ---------------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------------

TEST_F(CpuTest, SvcVectorsToSyncHandler) {
  FunctionBuilder f("t");
  f.svc(42);
  f.hlt(9);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);  // sync from EL1
  const uint64_t esr = core.sysreg(SysReg::ESR_EL1);
  EXPECT_EQ(Cpu::esr_class(esr), ExcClass::Svc);
  EXPECT_EQ(Cpu::esr_iss(esr), 42u);
  // Preferred return is the instruction after SVC.
  EXPECT_EQ(core.sysreg(SysReg::ELR_EL1), kText + 4);
}

TEST_F(CpuTest, EretReturnsAfterSvc) {
  // Replace the sync vector with an ERET trampoline.
  FunctionBuilder v("vec");
  v.eret();
  write_words(kVbar + Cpu::kVecSyncEl1, v.assemble().words);

  FunctionBuilder f("t");
  f.mov_imm(0, 1);
  f.svc(0);
  f.add_i(0, 0, 1);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  EXPECT_EQ(core.x(0), 2u);
}

TEST_F(CpuTest, DataAbortReportsFaultAddress) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x80000);  // unmapped
  f.ldr(1, 0, 0);
  f.hlt(9);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)), ExcClass::DataAbort);
  EXPECT_EQ(core.sysreg(SysReg::FAR_EL1), kData + 0x80000);
  EXPECT_EQ(Cpu::esr_fault(core.sysreg(SysReg::ESR_EL1)),
            mem::FaultKind::Translation);
}

TEST_F(CpuTest, StoreToTextFaults) {
  FunctionBuilder f("t");
  f.mov_imm(0, kText);
  f.str(0, 0, 0);
  f.hlt(9);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_fault(core.sysreg(SysReg::ESR_EL1)),
            mem::FaultKind::Permission);
}

TEST_F(CpuTest, BrkVectors) {
  FunctionBuilder f("t");
  f.brk(7);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)), ExcClass::Brk);
  EXPECT_EQ(core.sysreg(SysReg::ELR_EL1), kText);  // points at the BRK
}

TEST_F(CpuTest, UndefinedInstructionVectors) {
  write_words(kText, {0xFF000000u});  // invalid opcode
  core.pc = kText;
  core.run(100);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)),
            ExcClass::Undefined);
}

TEST_F(CpuTest, TimerIrqDeliveredWhenUnmasked) {
  FunctionBuilder f("t");
  const auto loop = f.make_label();
  f.daifclr();
  f.bind(loop);
  f.b(loop);
  write_words(kText, f.assemble().words);
  core.pc = kText;
  core.set_timer(50);
  core.run(10000);
  EXPECT_EQ(core.halt_code(), 0xE2u);  // IRQ vector from EL1
}

TEST_F(CpuTest, MaskedIrqStaysPending) {
  FunctionBuilder f("t");
  const auto loop = f.make_label();
  f.mov_imm(0, 40);
  f.bind(loop);
  f.sub_i(0, 0, 1);
  f.cbnz(0, loop);
  f.daifclr();  // unmask: pending IRQ must fire here
  f.hlt(9);
  write_words(kText, f.assemble().words);
  core.pc = kText;
  core.pstate.irq_masked = true;
  core.set_timer(10);
  core.run(10000);
  EXPECT_EQ(core.halt_code(), 0xE2u);
}

TEST_F(CpuTest, MsrFilterDeniesLockedRegister) {
  core.set_msr_filter([](Cpu&, SysReg r, uint64_t) {
    return r != SysReg::TTBR1_EL1;  // lock TTBR1 (threat model §3.1)
  });
  FunctionBuilder f("t");
  f.mov_imm(0, 0xDEAD);
  f.msr(SysReg::TTBR1_EL1, 0);
  f.hlt(9);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)),
            ExcClass::Undefined);
  EXPECT_EQ(core.sysreg(SysReg::TTBR1_EL1), 0u);
}

TEST_F(CpuTest, CntvctReadsCycles) {
  FunctionBuilder f("t");
  f.mrs(0, SysReg::CNTVCT_EL0);
  f.nop();
  f.nop();
  f.mrs(1, SysReg::CNTVCT_EL0);
  f.hlt(1);
  run(f);
  EXPECT_GT(core.x(1), core.x(0));
}

// ---------------------------------------------------------------------------
// PAuth
// ---------------------------------------------------------------------------

TEST_F(CpuTest, PacSignAuthRoundTrip) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x1234);  // modifier
  f.mov(2, 0);
  f.pacda(2, 1);   // sign
  f.mov(3, 2);
  f.autda(3, 1);   // authenticate
  f.hlt(1);
  run(f);
  EXPECT_NE(core.x(2), core.x(0)) << "PAC must alter the pointer";
  EXPECT_EQ(core.x(3), core.x(0)) << "auth must restore the pointer";
}

TEST_F(CpuTest, AuthFailurePoisonsPointer) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x1234);
  f.mov_imm(2, 0x9999);  // wrong modifier
  f.pacda(0, 1);
  f.autda(0, 2);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  // Poisoned pointer is non-canonical: dereferencing it faults.
  EXPECT_FALSE(core.config().layout.is_canonical(core.x(0)));
}

TEST_F(CpuTest, PoisonedPointerDereferenceFaults) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x1234);
  f.mov_imm(2, 0x9999);
  f.pacda(0, 1);
  f.autda(0, 2);
  f.ldr(3, 0, 0);  // address-size fault
  f.hlt(9);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_fault(core.sysreg(SysReg::ESR_EL1)),
            mem::FaultKind::AddressSize);
}

TEST_F(CpuTest, DifferentKeysGiveDifferentPacs) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.mov(2, 0);
  f.mov(3, 0);
  f.mov(4, 0);
  f.mov(5, 0);
  f.pacia(2, 1);
  f.pacib(3, 1);
  f.pacda(4, 1);
  f.pacdb(5, 1);
  f.hlt(1);
  run(f);
  EXPECT_NE(core.x(2), core.x(3));
  EXPECT_NE(core.x(2), core.x(4));
  EXPECT_NE(core.x(4), core.x(5));
}

TEST_F(CpuTest, XpacStripsWithoutAuth) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.pacda(0, 1);
  f.xpacd(0);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(0), kData + 0x100);
}

TEST_F(CpuTest, PaciaspAutiaspRoundTrip) {
  FunctionBuilder f("t");
  f.mov_imm(30, kText + 0x40);
  f.paciasp();
  f.autiasp();
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(30), kText + 0x40);
}

TEST_F(CpuTest, RetaaReturnsOnValidSignature) {
  FunctionBuilder f("t");
  const auto fn = f.make_label();
  f.bl(fn);
  f.hlt(1);
  f.bind(fn);
  f.paciasp();
  f.autiasp();  // matched pair...
  f.paciasp();  // ...then sign again and use RETAA
  f.retaa();
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
}

TEST_F(CpuTest, RetaaWithCorruptedLrFaults) {
  FunctionBuilder f("t");
  const auto fn = f.make_label();
  f.bl(fn);
  f.hlt(1);
  f.bind(fn);
  f.paciasp();
  f.mov_imm(30, kText + 8);  // attacker overwrites LR with unsigned value
  f.retaa();
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);  // fetch of poisoned target faulted
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)),
            ExcClass::InsnAbort);
}

TEST_F(CpuTest, BlrabAuthenticatedCall) {
  FunctionBuilder f("t");
  const auto fn = f.make_label();
  const auto over = f.make_label();
  f.b(over);
  f.bind(fn);
  f.mov_imm(0, 55);
  f.ret();
  f.bind(over);
  f.adr(8, fn);
  f.mov_imm(9, 0x77);   // modifier
  f.pacib(8, 9);
  f.blrab(8, 9);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  EXPECT_EQ(core.x(0), 55u);
}

TEST_F(CpuTest, BlrabWrongModifierFaults) {
  FunctionBuilder f("t");
  const auto fn = f.make_label();
  const auto over = f.make_label();
  f.b(over);
  f.bind(fn);
  f.ret();
  f.bind(over);
  f.adr(8, fn);
  f.mov_imm(9, 0x77);
  f.mov_imm(10, 0x78);
  f.pacib(8, 9);
  f.blrab(8, 10);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)),
            ExcClass::InsnAbort);
}

TEST_F(CpuTest, Pac1716UsesX16X17) {
  FunctionBuilder f("t");
  f.mov_imm(17, kData + 0x200);
  f.mov_imm(16, 0xBEEF);
  f.pacib1716();
  f.mov(4, 17);      // signed value
  f.autib1716();
  f.mov(5, 17);      // authenticated value
  f.hlt(1);
  run(f);
  EXPECT_NE(core.x(4), kData + 0x200);
  EXPECT_EQ(core.x(5), kData + 0x200);
}

TEST_F(CpuTest, PacgaProducesTopHalfMac) {
  FunctionBuilder f("t");
  f.mov_imm(0, 0x1234);
  f.mov_imm(1, 0x5678);
  f.pacga(2, 0, 1);
  f.hlt(1);
  run(f);
  EXPECT_NE(core.x(2), 0u);
  EXPECT_EQ(core.x(2) & 0xFFFFFFFFull, 0u);
}

TEST_F(CpuTest, DisabledKeyMakesPacNop) {
  core.set_sysreg(SysReg::SCTLR_EL1,
                  core.sysreg(SysReg::SCTLR_EL1) & ~isa::kSctlrEnDA);
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.pacda(0, 1);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.x(0), kData + 0x100);  // unchanged
}

TEST_F(CpuTest, KeyChangeInvalidatesOldSignatures) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.pacda(0, 1);
  // Re-key DA (as the kernel entry key switch would).
  f.mov_imm(9, 0x1111);
  f.msr(SysReg::APDAKeyLo, 9);
  f.autda(0, 1);
  f.hlt(1);
  run(f);
  EXPECT_FALSE(core.config().layout.is_canonical(core.x(0)));
}

TEST_F(CpuTest, PacFailureObserverFires) {
  int failures = 0;
  core.set_pac_failure_observer(
      [&](Cpu&, isa::Op, uint64_t) { ++failures; });
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.mov_imm(2, 0x43);
  f.pacda(0, 1);
  f.autda(0, 2);  // fail
  f.mov_imm(0, kData + 0x100);
  f.pacda(0, 1);
  f.autda(0, 1);  // success
  f.hlt(1);
  run(f);
  EXPECT_EQ(failures, 1);
}

TEST_F(CpuTest, BreakpointHookRuns) {
  bool hit = false;
  core.add_breakpoint(kText + 4, [&](Cpu& c) {
    hit = true;
    c.set_x(7, 0xDEAD);
  });
  FunctionBuilder f("t");
  f.nop();
  f.nop();
  f.hlt(1);
  run(f);
  EXPECT_TRUE(hit);
  EXPECT_EQ(core.x(7), 0xDEADu);
}

TEST_F(CpuTest, CycleModelChargesPauth) {
  FunctionBuilder f("t");
  f.hlt(1);
  isa::Inst pac;
  pac.op = isa::Op::PACIA;
  EXPECT_EQ(Cpu::cycle_cost(pac), 4u);
  isa::Inst nop;
  nop.op = isa::Op::NOP;
  EXPECT_EQ(Cpu::cycle_cost(nop), 1u);
  // One 128-bit key = Lo + Hi MSR writes = 9 cycles (§6.1.1).
  isa::Inst lo;
  lo.op = isa::Op::MSR;
  lo.sysreg = SysReg::APIBKeyLo;
  isa::Inst hi = lo;
  hi.sysreg = SysReg::APIBKeyHi;
  EXPECT_EQ(Cpu::cycle_cost(lo) + Cpu::cycle_cost(hi), 9u);
}

// ---- FPAC (immediate faulting) variant ----

class CpuFpacTest : public CpuTest {
 protected:
  CpuFpacTest() : CpuTest([] {
    Cpu::Config c;
    c.fpac = true;
    return c;
  }()) {}
};

TEST_F(CpuFpacTest, AuthFailureFaultsImmediately) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData + 0x100);
  f.mov_imm(1, 0x42);
  f.mov_imm(2, 0x43);
  f.pacda(0, 1);
  f.autda(0, 2);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)), ExcClass::PacFail);
}

// ---- pre-8.3 core (binary compatibility, §5.5) ----

class CpuNoPauthTest : public CpuTest {
 protected:
  CpuNoPauthTest() : CpuTest([] {
    Cpu::Config c;
    c.has_pauth = false;
    return c;
  }()) {}
};

TEST_F(CpuNoPauthTest, HintSpaceOpsAreNops) {
  FunctionBuilder f("t");
  f.mov_imm(30, kText + 0x40);
  f.mov_imm(17, kData);
  f.mov_imm(16, 1);
  f.paciasp();
  f.autibsp();
  f.pacib1716();
  f.autib1716();
  f.xpaclri();
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 1u);
  EXPECT_EQ(core.x(30), kText + 0x40);
  EXPECT_EQ(core.x(17), kData);
}

TEST_F(CpuNoPauthTest, NonHintPauthUndefined) {
  FunctionBuilder f("t");
  f.mov_imm(0, kData);
  f.mov_imm(1, 1);
  f.pacia(0, 1);
  f.hlt(1);
  run(f);
  EXPECT_EQ(core.halt_code(), 0xE1u);
  EXPECT_EQ(Cpu::esr_class(core.sysreg(SysReg::ESR_EL1)),
            ExcClass::Undefined);
}

}  // namespace
}  // namespace camo
