// Census tool tests (§5.3): struct parsing, member classification,
// run-time-assignment detection, corpus generation.
#include <gtest/gtest.h>

#include "analysis/census.h"
#include "support/error.h"

namespace camo::analysis {
namespace {

TEST(Census, ParsesFunctionPointerMembers) {
  const std::string src = R"(
struct net_device_ops {
  int (*ndo_open)(struct net_device *);
  int (*ndo_stop)(struct net_device *);
  unsigned long refcount;
};
)";
  const auto r = run_census(src);
  ASSERT_EQ(r.members.size(), 3u);
  EXPECT_TRUE(r.members[0].is_function_pointer);
  EXPECT_EQ(r.members[0].member_name, "ndo_open");
  EXPECT_EQ(r.members[0].type_name, "net_device_ops");
  EXPECT_TRUE(r.members[1].is_function_pointer);
  EXPECT_FALSE(r.members[2].is_function_pointer);
  EXPECT_EQ(r.types_with_fn_ptrs, 1u);
  EXPECT_EQ(r.runtime_assigned_members, 0u) << "no assignment sites";
}

TEST(Census, ClassifiesDataPointers) {
  const std::string src = R"(
struct file {
  const struct file_operations *f_op;
  void *private_data;
  long f_pos;
};
)";
  const auto r = run_census(src);
  EXPECT_EQ(r.data_ptr_members, 2u);
  EXPECT_EQ(r.types_with_fn_ptrs, 0u);
}

TEST(Census, CountsRuntimeAssignments) {
  const std::string src = R"(
struct driver {
  int (*probe_cb)(void *);
  int (*remove_cb)(void *);
};
static int setup(struct driver *d) {
  d->probe_cb = my_probe;
  return 0;
}
)";
  const auto r = run_census(src);
  EXPECT_EQ(r.runtime_assigned_members, 1u);
  EXPECT_EQ(r.types_with_runtime_members, 1u);
  EXPECT_EQ(r.types_with_multiple, 0u) << "only one member is assigned";
}

TEST(Census, MultipleRuntimeMembersCounted) {
  const std::string src = R"(
struct ops_rich {
  int (*a_cb)(void);
  int (*b_cb)(void);
  int (*c_cb)(void);
};
void init(struct ops_rich *o) {
  o->a_cb = fa;
  o->b_cb = fb;
}
)";
  const auto r = run_census(src);
  EXPECT_EQ(r.runtime_assigned_members, 2u);
  EXPECT_EQ(r.types_with_multiple, 1u);
}

TEST(Census, DesignatedInitializersNotRuntime) {
  // const ops tables initialised with designated initializers are the
  // kernel best practice that needs *no* PAuth (§4.4).
  const std::string src = R"(
struct good_ops {
  long (*read_fn)(void *);
};
static const struct good_ops ops = {
  .read_fn = generic_read,
};
)";
  const auto r = run_census(src);
  EXPECT_EQ(r.runtime_assigned_members, 0u);
  EXPECT_EQ(r.types_with_fn_ptrs, 1u);
}

TEST(Census, DotAssignmentOutsideInitializerIsRuntime) {
  const std::string src = R"(
struct s {
  void (*h_cb)(void);
};
void f(struct s obj) {
  obj.h_cb = handler;
}
)";
  const auto r = run_census(src);
  EXPECT_EQ(r.runtime_assigned_members, 1u);
}

TEST(Census, CorpusMatchesSpecExactly) {
  CorpusSpec spec;
  spec.single_ptr_types = 30;
  spec.multi_ptr_types = 20;
  spec.total_members = 120;
  spec.const_ops_types = 10;
  spec.seed = 9;
  const auto r = run_census(generate_driver_corpus(spec));
  EXPECT_EQ(r.runtime_assigned_members, 120u);
  EXPECT_EQ(r.types_with_runtime_members, 50u);
  EXPECT_EQ(r.types_with_multiple, 20u);
  EXPECT_EQ(r.types_with_fn_ptrs, 60u);  // + 10 const ops types
}

TEST(Census, DefaultSpecReproducesPaperNumbers) {
  const auto r = run_census(generate_driver_corpus(CorpusSpec{}));
  EXPECT_EQ(r.runtime_assigned_members, 1285u);
  EXPECT_EQ(r.types_with_runtime_members, 504u);
  EXPECT_EQ(r.types_with_multiple, 229u);
}

TEST(Census, CorpusDeterministicPerSeed) {
  CorpusSpec a, b;
  a.seed = b.seed = 3;
  EXPECT_EQ(generate_driver_corpus(a), generate_driver_corpus(b));
  b.seed = 4;
  EXPECT_NE(generate_driver_corpus(a), generate_driver_corpus(b));
}

TEST(Census, RejectsInfeasibleSpec) {
  CorpusSpec bad;
  bad.single_ptr_types = 10;
  bad.multi_ptr_types = 10;
  bad.total_members = 25;  // needs >= 10 + 2*10
  EXPECT_THROW(generate_driver_corpus(bad), camo::Error);
}

TEST(Census, SummaryMentionsKeyNumbers) {
  CorpusSpec spec;
  spec.single_ptr_types = 5;
  spec.multi_ptr_types = 2;
  spec.total_members = 10;
  spec.const_ops_types = 0;
  const auto r = run_census(generate_driver_corpus(spec));
  const std::string s = r.summary();
  EXPECT_NE(s.find("10 run-time-assigned"), std::string::npos);
  EXPECT_NE(s.find("7 compound types"), std::string::npos);
}

}  // namespace
}  // namespace camo::analysis
