// Security evaluation tests (§6.2): each attack's outcome under each
// protection configuration, and the modifier replay matrix (§6.2.1, §7).
#include <gtest/gtest.h>

#include "attacks/attacks.h"

namespace camo::attacks {
namespace {

using compiler::BackwardScheme;
using compiler::ProtectionConfig;

ProtectionConfig with_backward(BackwardScheme s) {
  ProtectionConfig c = ProtectionConfig::none();
  c.backward = s;
  return c;
}

TEST(RopInjection, HijacksUnprotectedKernel) {
  const auto r = run_rop_injection(ProtectionConfig::none());
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
  EXPECT_EQ(r.halt_code, kernel::kHaltPwned);
}

TEST(RopInjection, DetectedByEveryBackwardScheme) {
  for (const auto s : {BackwardScheme::ClangSp, BackwardScheme::Parts,
                       BackwardScheme::Camouflage}) {
    const auto r = run_rop_injection(with_backward(s));
    EXPECT_EQ(r.outcome, Outcome::Detected)
        << compiler::backward_scheme_name(s) << ": " << r.detail;
    EXPECT_GE(r.pac_failures, 1u);
  }
}

TEST(RopInjection, DetectedUnderFullProtection) {
  const auto r = run_rop_injection(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(RopInjection, CompatModeProtectsOn83) {
  ProtectionConfig c = ProtectionConfig::full();
  c.compat_mode = true;
  const auto r = run_rop_injection(c);
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(ForwardInjection, HijacksWithoutForwardCfi) {
  const auto r = run_forward_edge_injection(ProtectionConfig::backward_only());
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
}

TEST(ForwardInjection, DetectedWithForwardCfi) {
  const auto r = run_forward_edge_injection(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(FopsRedirect, HijacksWithoutDfi) {
  ProtectionConfig c = ProtectionConfig::full();
  c.dfi = false;  // f_ops is a *data* pointer: forward CFI alone misses it
  const auto r = run_fops_redirect(c);
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
}

TEST(FopsRedirect, DetectedWithDfi) {
  const auto r = run_fops_redirect(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(FopsCrossObjectSwap, AcceptedWithoutDfi) {
  const auto r = run_fops_cross_object_swap(ProtectionConfig::none());
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
}

TEST(FopsCrossObjectSwap, DetectedWithDfi) {
  // §4.3: the modifier binds the signature to the containing object's
  // address, so a signature copied between objects fails.
  const auto r = run_fops_cross_object_swap(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(BruteForce, PanicsAtThreshold) {
  const auto r = run_bruteforce(ProtectionConfig::full(), 4, 16);
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
  EXPECT_EQ(r.halt_code, kernel::kHaltPacPanic);
  EXPECT_EQ(r.pac_failures, 4u);
  EXPECT_GE(r.attempts, 4u);
}

TEST(BruteForce, HigherThresholdAllowsMoreAttempts) {
  const auto r = run_bruteforce(ProtectionConfig::full(), 8, 16);
  EXPECT_EQ(r.outcome, Outcome::Detected);
  EXPECT_EQ(r.pac_failures, 8u);
}

TEST(BruteForce, TraceAuthFailuresAgreeWithPanicThreshold) {
  // The obs trace is an independent witness of the §5.4 mitigation: the
  // AuthFail events the CPU emitted must agree with the kernel's own
  // failure count, and both must equal the panic threshold.
  for (const unsigned threshold : {2u, 4u, 8u}) {
    const auto r = run_bruteforce(ProtectionConfig::full(), threshold,
                                  threshold + 8);
    EXPECT_EQ(r.halt_code, kernel::kHaltPacPanic) << r.detail;
    EXPECT_EQ(r.pac_failures, threshold);
    EXPECT_EQ(r.trace_auth_failures, threshold)
        << "trace ring disagrees with the kernel's PAC failure count";
  }
}

TEST(TrapframeEscalation, HijacksWithoutTrapframeProtection) {
  // §8: forged saved ELR/SPSR gives ERET-to-EL1 code execution even on a
  // kernel with full pointer protection — saved exception state is data.
  const auto r = run_trapframe_escalation(ProtectionConfig::full(), false);
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
  EXPECT_EQ(r.halt_code, kernel::kHaltPwned);
}

TEST(TrapframeEscalation, DetectedWithTrapframeProtection) {
  const auto r = run_trapframe_escalation(ProtectionConfig::full(), true);
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
  EXPECT_GE(r.pac_failures, 1u);
}

TEST(TrapframeEscalation, CompatBuildAlsoProtects) {
  ProtectionConfig c = ProtectionConfig::full();
  c.compat_mode = true;
  const auto r = run_trapframe_escalation(c, true);
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(ZeroModifierAblation, CrossObjectReuseAccepted) {
  // Apple-style zero modifiers preserve memcpy but make signatures
  // location-independent: the cross-object swap now authenticates (§7).
  ProtectionConfig c = ProtectionConfig::full();
  c.apple_zero_modifier = true;
  const auto r = run_fops_cross_object_swap(c);
  EXPECT_EQ(r.outcome, Outcome::Hijacked) << r.detail;
}

TEST(ZeroModifierAblation, StillDetectsRawInjection) {
  // Even with zero modifiers, *unsigned* pointer injection fails: the value
  // has no valid PAC at all.
  ProtectionConfig c = ProtectionConfig::full();
  c.apple_zero_modifier = true;
  const auto r = run_fops_redirect(c);
  EXPECT_EQ(r.outcome, Outcome::Detected) << r.detail;
}

TEST(KeyExtraction, BlockedByXom) {
  const auto r = run_key_extraction(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Blocked) << r.detail;
}

TEST(RodataTamper, BlockedByStage2) {
  const auto r = run_rodata_tamper(ProtectionConfig::full());
  EXPECT_EQ(r.outcome, Outcome::Blocked) << r.detail;
}

// ---------------------------------------------------------------------------
// Replay matrix
// ---------------------------------------------------------------------------

struct ReplayExpect {
  BackwardScheme scheme;
  ReplayScenario scenario;
  bool accepted;
};

class ReplayMatrix : public ::testing::TestWithParam<ReplayExpect> {};

TEST_P(ReplayMatrix, HostAlgebraMatchesExpectation) {
  const auto& p = GetParam();
  EXPECT_EQ(replay_accepted(p.scheme, p.scenario), p.accepted);
}

TEST_P(ReplayMatrix, CpuExecutionMatchesAlgebra) {
  const auto& p = GetParam();
  EXPECT_EQ(replay_accepted_on_cpu(p.scheme, p.scenario), p.accepted);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplayMatrix,
    ::testing::Values(
        // Same function, same SP: residual replay window for everyone.
        ReplayExpect{BackwardScheme::ClangSp,
                     ReplayScenario::SameFunctionSameSp, true},
        ReplayExpect{BackwardScheme::Parts,
                     ReplayScenario::SameFunctionSameSp, true},
        ReplayExpect{BackwardScheme::Camouflage,
                     ReplayScenario::SameFunctionSameSp, true},
        // Different function, same SP: breaks the SP-only Clang scheme.
        ReplayExpect{BackwardScheme::ClangSp,
                     ReplayScenario::DiffFunctionSameSp, true},
        ReplayExpect{BackwardScheme::Parts,
                     ReplayScenario::DiffFunctionSameSp, false},
        ReplayExpect{BackwardScheme::Camouflage,
                     ReplayScenario::DiffFunctionSameSp, false},
        // Stacks 2^16 apart: the PARTS weakness §7 identifies.
        ReplayExpect{BackwardScheme::ClangSp,
                     ReplayScenario::CrossThread64kStacks, false},
        ReplayExpect{BackwardScheme::Parts,
                     ReplayScenario::CrossThread64kStacks, true},
        ReplayExpect{BackwardScheme::Camouflage,
                     ReplayScenario::CrossThread64kStacks, false},
        // Fully different context: everyone rejects.
        ReplayExpect{BackwardScheme::ClangSp,
                     ReplayScenario::DiffFunctionDiffSp, false},
        ReplayExpect{BackwardScheme::Parts,
                     ReplayScenario::DiffFunctionDiffSp, false},
        ReplayExpect{BackwardScheme::Camouflage,
                     ReplayScenario::DiffFunctionDiffSp, false}),
    [](const auto& info) {
      std::string n = compiler::backward_scheme_name(info.param.scheme);
      n += "_";
      n += std::to_string(static_cast<int>(info.param.scenario));
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(ReplayMatrix, CamouflageStrictlyStrongerThanBoth) {
  // Count accepted replays per scheme over all non-trivial scenarios.
  auto count = [](BackwardScheme s) {
    int n = 0;
    for (const auto sc :
         {ReplayScenario::DiffFunctionSameSp,
          ReplayScenario::CrossThread64kStacks,
          ReplayScenario::DiffFunctionDiffSp})
      n += replay_accepted(s, sc);
    return n;
  };
  EXPECT_EQ(count(BackwardScheme::Camouflage), 0);
  EXPECT_GT(count(BackwardScheme::ClangSp), 0);
  EXPECT_GT(count(BackwardScheme::Parts), 0);
}

}  // namespace
}  // namespace camo::attacks
