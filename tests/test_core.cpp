// Core-library tests: key generation, XOM key-setter synthesis, modifier
// scheme helpers, and the full boot protocol (§4.1/§5.1).
#include <gtest/gtest.h>

#include "core/bootloader.h"
#include "support/error.h"
#include "core/keys.h"
#include "core/keysetter.h"
#include "core/modifier.h"
#include "harness.h"

namespace camo::core {
namespace {

using assembler::FunctionBuilder;
using isa::SysReg;
using mem::El;

TEST(Keys, DeterministicPerSeed) {
  const auto a = KernelKeys::generate(1);
  const auto b = KernelKeys::generate(1);
  const auto c = KernelKeys::generate(2);
  EXPECT_EQ(a.ia, b.ia);
  EXPECT_EQ(a.db, b.db);
  EXPECT_NE(a.ia, c.ia);
}

TEST(Keys, AllFiveKeysDistinct) {
  const auto k = KernelKeys::generate(42);
  const qarma::Key128 all[] = {k.ia, k.ib, k.da, k.db, k.ga};
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j) EXPECT_FALSE(all[i] == all[j]);
}

TEST(Keys, KeyAccessorMatchesFields) {
  const auto k = KernelKeys::generate(7);
  EXPECT_EQ(k.key(cpu::PacKey::IB), k.ib);
  EXPECT_EQ(k.key(cpu::PacKey::GA), k.ga);
}

TEST(KeyUsage, Counts) {
  EXPECT_EQ(KeyUsage::camouflage_default().count(), 3);
  EXPECT_EQ(KeyUsage::compat().count(), 1);
}

TEST(KeySetter, PaddedToExactlyOnePage) {
  const auto keys = KernelKeys::generate(3);
  auto f = make_key_setter(keys, KeyUsage::camouflage_default());
  EXPECT_EQ(f.assemble().words.size(), 1024u);
  EXPECT_TRUE(f.no_instrument());
}

TEST(KeySetter, InstallsExactlyConfiguredKeys) {
  camo::testing::SimHarness sim;
  // Zero all key registers first.
  for (int i = 0; i < 10; ++i)
    sim.core.set_sysreg(static_cast<SysReg>(i), 0);

  const auto keys = KernelKeys::generate(99);
  auto f = make_key_setter(keys, KeyUsage::camouflage_default());
  // Place the setter at kHText and call it with LR pointing at a HLT stub.
  FunctionBuilder stub("stub");
  stub.hlt(1);
  sim.write_words(camo::testing::kHText + 0x2000, stub.assemble().words);
  sim.write_words(camo::testing::kHText, f.assemble().words);
  sim.core.set_x(isa::kRegLr, camo::testing::kHText + 0x2000);
  sim.core.pc = camo::testing::kHText;
  sim.core.run(20000);

  EXPECT_EQ(sim.core.halt_code(), 1u);
  EXPECT_EQ(sim.core.pac_key(cpu::PacKey::IA), keys.ia);
  EXPECT_EQ(sim.core.pac_key(cpu::PacKey::IB), keys.ib);
  EXPECT_EQ(sim.core.pac_key(cpu::PacKey::DB), keys.db);
  // DA/GA not in the default usage: untouched (still zero).
  EXPECT_EQ(sim.core.sysreg(SysReg::APDAKeyLo), 0u);
  EXPECT_EQ(sim.core.sysreg(SysReg::APGAKeyLo), 0u);
}

TEST(KeySetter, ClearsScratchRegister) {
  camo::testing::SimHarness sim;
  const auto keys = KernelKeys::generate(5);
  auto f = make_key_setter(keys, KeyUsage::camouflage_default());
  FunctionBuilder stub("stub");
  stub.hlt(1);
  sim.write_words(camo::testing::kHText + 0x2000, stub.assemble().words);
  sim.write_words(camo::testing::kHText, f.assemble().words);
  sim.core.set_x(isa::kRegLr, camo::testing::kHText + 0x2000);
  sim.core.pc = camo::testing::kHText;
  sim.core.run(20000);
  EXPECT_EQ(sim.core.x(kKeySetterScratch), 0u)
      << "key material must not survive in GPRs (R2)";
}

TEST(KeySetter, CompatInstallsOnlyIb) {
  EXPECT_EQ(key_setter_insn_count(KeyUsage::compat()), 12u);
  EXPECT_EQ(key_setter_insn_count(KeyUsage::camouflage_default()), 32u);
}

TEST(Modifier, CamouflageCombinesSpAndFunction) {
  const uint64_t m =
      camouflage_return_modifier(0xFFFF00000013FFF0ull, 0xFFFF000000081234ull);
  EXPECT_EQ(m, 0x0013FFF000081234ull);
}

TEST(Modifier, CamouflageDistinguishesFunctionsAtSameSp) {
  // The property Listing 3 buys over Listing 2: same SP, different callee →
  // different modifier.
  const uint64_t sp = 0xFFFF000000140000ull;
  EXPECT_NE(camouflage_return_modifier(sp, 0xFFFF000000081000ull),
            camouflage_return_modifier(sp, 0xFFFF000000082000ull));
  EXPECT_EQ(clang_return_modifier(sp), clang_return_modifier(sp));
}

TEST(Modifier, PartsRepeatsAcross64KiBStacks) {
  // §7: stacks separated by exactly 2^16 bytes give identical PARTS
  // modifiers — the replay weakness Camouflage fixes.
  const uint64_t fid = 0x123456789ABCull;
  const uint64_t sp1 = 0xFFFF000000140000ull;
  const uint64_t sp2 = sp1 + 0x10000;
  EXPECT_EQ(parts_return_modifier(sp1, fid), parts_return_modifier(sp2, fid));
  EXPECT_NE(camouflage_return_modifier(sp1, fid),
            camouflage_return_modifier(sp2, fid));
}

TEST(Modifier, ObjectModifierSegregatesTypes) {
  const uint64_t obj = 0xFFFF000000180040ull;
  EXPECT_NE(object_modifier(obj, 1), object_modifier(obj, 2));
  EXPECT_NE(object_modifier(obj, 1), object_modifier(obj + 0x40, 1));
  EXPECT_EQ(object_modifier(obj, 0xFB45) & 0xFFFF, 0xFB45u);
}

// ---------------------------------------------------------------------------
// Boot protocol
// ---------------------------------------------------------------------------

constexpr uint64_t kKernBase = 0xFFFF000000080000ull;
constexpr uint64_t kBootSp = 0xFFFF000000300000ull;

obj::Program tiny_kernel() {
  obj::Program k;
  auto& boot = k.add_function("early_boot");
  boot.set_no_instrument();
  boot.mov_imm(0, isa::kSctlrEnIA | isa::kSctlrEnIB | isa::kSctlrEnDA |
                      isa::kSctlrEnDB);
  boot.msr(SysReg::SCTLR_EL1, 0);
  boot.bl_sym(kKeySetterSymbol);
  boot.hvc(static_cast<uint16_t>(hyp::HvcCall::Lockdown));
  // Prove PAuth works end-to-end with the booted keys.
  boot.mov_imm(1, kKernBase + 0x4000);
  boot.mov_imm(2, 0x42);
  boot.pacdb(1, 2);
  boot.autdb(1, 2);
  boot.hlt(0x42);
  return k;
}

struct BootFixture {
  BootFixture() : mmu(pm, {}), hv(pm, mmu), core(mmu, {}) {
    hv.map_kernel_rw(kBootSp - 0x10000, 0x10000);
  }
  mem::PhysicalMemory pm{8 << 20};
  mem::Mmu mmu;
  hyp::Hypervisor hv;
  cpu::Cpu core;
};

TEST(Bootloader, BootsTinyKernelAndInstallsKeys) {
  BootFixture fx;
  BootConfig cfg;
  cfg.seed = 1234;
  cfg.entry_symbol = "early_boot";
  const auto boot = Bootloader::boot(tiny_kernel(), cfg, fx.hv, fx.core,
                                     kKernBase, kBootSp);
  EXPECT_TRUE(boot.kernel_verify.ok()) << boot.kernel_verify.describe();
  EXPECT_EQ(boot.key_setter_va, kKernBase);

  fx.core.run(100000);
  EXPECT_EQ(fx.core.halt_code(), 0x42u);
  EXPECT_EQ(fx.core.pac_key(cpu::PacKey::IB), boot.keys.ib);
  EXPECT_EQ(fx.core.x(1), kKernBase + 0x4000) << "sign+auth must round-trip";
  EXPECT_TRUE(fx.hv.locked_down());
}

TEST(Bootloader, KeySetterPageIsXom) {
  BootFixture fx;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  const auto boot = Bootloader::boot(tiny_kernel(), cfg, fx.hv, fx.core,
                                     kKernBase, kBootSp);
  // EL1 reads of the setter page fail; fetch succeeds.
  EXPECT_EQ(fx.mmu.translate(boot.key_setter_va, mem::Access::Read, El::El1)
                .fault,
            mem::FaultKind::Stage2);
  EXPECT_TRUE(
      fx.mmu.translate(boot.key_setter_va, mem::Access::Fetch, El::El1).ok());
}

TEST(Bootloader, KeysNowhereInReadableMemory) {
  // R2 end-to-end: scan all of physical memory for any 64-bit key half.
  // Only the XOM page may contain key material (as MOVZ/MOVK immediates).
  BootFixture fx;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  const auto boot = Bootloader::boot(tiny_kernel(), cfg, fx.hv, fx.core,
                                     kKernBase, kBootSp);
  const auto setter_pa =
      fx.mmu.translate(boot.key_setter_va, mem::Access::Fetch, El::El2);
  ASSERT_TRUE(setter_pa.ok());

  const uint64_t halves[] = {boot.keys.ib.w0, boot.keys.ib.k0,
                             boot.keys.ia.w0, boot.keys.db.k0};
  for (uint64_t pa = 0; pa + 8 <= fx.pm.size(); pa += 2) {
    const uint64_t v = fx.pm.read64(pa);
    for (const uint64_t h : halves) {
      if (v == h) {
        EXPECT_GE(pa, setter_pa.pa);
        EXPECT_LT(pa, setter_pa.pa + 4096);
      }
    }
  }
  // (MOVZ/MOVK immediates split keys into 16-bit chunks, so even inside the
  // setter page no contiguous 64-bit key half should appear.)
}

TEST(Bootloader, MaliciousKernelFailsVerification) {
  obj::Program k = tiny_kernel();
  auto& spy = k.add_function("spy");
  spy.mrs(0, SysReg::APIBKeyLo);
  spy.ret();
  BootFixture fx;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  EXPECT_THROW(
      Bootloader::boot(std::move(k), cfg, fx.hv, fx.core, kKernBase, kBootSp),
      camo::Error);
}

TEST(Bootloader, SctlrWriteOutsideEarlyBootRejected) {
  obj::Program k = tiny_kernel();
  auto& late = k.add_function("late_disable");
  late.mov_imm(0, 0);
  late.msr(SysReg::SCTLR_EL1, 0);
  late.ret();
  BootFixture fx;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  EXPECT_THROW(
      Bootloader::boot(std::move(k), cfg, fx.hv, fx.core, kKernBase, kBootSp),
      camo::Error);
}

TEST(Bootloader, DifferentSeedsDifferentKeys) {
  BootFixture fx1, fx2;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  cfg.seed = 1;
  const auto b1 =
      Bootloader::boot(tiny_kernel(), cfg, fx1.hv, fx1.core, kKernBase, kBootSp);
  cfg.seed = 2;
  const auto b2 =
      Bootloader::boot(tiny_kernel(), cfg, fx2.hv, fx2.core, kKernBase, kBootSp);
  EXPECT_FALSE(b1.keys.ib == b2.keys.ib);
}

TEST(Bootloader, CompatBootUsesSingleKey) {
  BootFixture fx;
  BootConfig cfg;
  cfg.entry_symbol = "early_boot";
  cfg.protection.compat_mode = true;
  const auto boot = Bootloader::boot(tiny_kernel(), cfg, fx.hv, fx.core,
                                     kKernBase, kBootSp);
  fx.core.run(100000);
  EXPECT_EQ(fx.core.halt_code(), 0x42u);
  EXPECT_EQ(fx.core.pac_key(cpu::PacKey::IB), boot.keys.ib);
  EXPECT_EQ(fx.core.sysreg(SysReg::APIAKeyLo), 0u) << "compat: only IB set";
}

}  // namespace
}  // namespace camo::core
