// CallGraphProfiler tests: the shadow call stack built from the retire
// stream, and its accounting contract — folded-stack cycles sum to exactly
// Cpu::cycles() no matter how hostile the control flow (recursion, exception
// entry mid-call, RET to an address no call pushed), and attaching the
// profiler never changes guest cycle counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "assembler/builder.h"
#include "cpu/cpu.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "mem/mmu.h"
#include "obs/callgraph.h"
#include "obs/collector.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using cpu::Cpu;
using isa::SysReg;
using mem::El;
using obs::CallGraphProfiler;

constexpr uint64_t kText = 0xFFFF000000080000ull;
constexpr uint64_t kFnStride = 0x400;  ///< one region per test function
constexpr uint64_t kStackTop = 0xFFFF000000140000ull;
constexpr uint64_t kVbar = 0xFFFF000000060000ull;

/// Sum the "stack cycles" lines of a folded-stack export.
uint64_t folded_cycle_sum(const std::string& folded) {
  uint64_t sum = 0;
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos) ADD_FAILURE() << "bad folded line: " << line;
    sum += std::strtoull(line.c_str() + sp + 1, nullptr, 10);
  }
  return sum;
}

/// Bare-CPU harness: EL1 programs written function-by-function at
/// kText + i*kFnStride, each its own named profiler region. A plain struct
/// (not the gtest fixture) so tests can build a second, tracing-off
/// instance of the same machine for the bit-identical baseline.
struct CpuHarness {
  CpuHarness() : mmu(pm, {}), core(mmu, {}) {
    kmap.map_range(kText, 0x10000, 0x10000, mem::PagePerms::kernel_text());
    kmap.map_range(kStackTop - 0x10000, 0x40000, 0x10000,
                   mem::PagePerms::kernel_rw());
    kmap.map_range(kVbar, 0x60000, 0x2000, mem::PagePerms::kernel_text());
    mmu.set_kernel_map(&kmap);
    core.set_sysreg(SysReg::VBAR_EL1, kVbar);
    core.set_sp_el(El::El1, kStackTop);
    cg.add_region("vectors", kVbar, kVbar + 0x2000);
  }

  uint64_t fn_addr(int slot) const { return kText + slot * kFnStride; }

  /// Assemble `f` into slot `slot` and register it as a region.
  void place(FunctionBuilder& f, int slot, const std::string& name) {
    write_words(fn_addr(slot), f.assemble().words);
    cg.add_region(name, fn_addr(slot), fn_addr(slot) + kFnStride);
  }

  void install_vector(uint64_t offset, FunctionBuilder& f) {
    write_words(kVbar + offset, f.assemble().words);
  }

  void write_words(uint64_t va, const std::vector<uint32_t>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto t = mmu.translate(va + i * 4, mem::Access::Fetch, El::El2);
      ASSERT_TRUE(t.ok());
      pm.write32(t.pa, words[i]);
    }
  }

  /// Attach the profiler and run from slot 0 until halt.
  void run(bool attach = true, uint64_t max_steps = 100000) {
    if (attach) {
      core.set_cycle_attributor(&cg);
      core.set_cf_sink(&cg);
    }
    core.pc = fn_addr(0);
    core.run(max_steps);
  }

  void expect_exact_accounting() {
    EXPECT_EQ(cg.total_cycles(), core.cycles());
    EXPECT_EQ(cg.total_retires(), core.retired());
    EXPECT_EQ(folded_cycle_sum(cg.folded()), core.cycles());
  }

  mem::PhysicalMemory pm{1 << 20};
  mem::Stage1Map kmap;
  mem::Mmu mmu;
  Cpu core;
  CallGraphProfiler cg;
};

/// The gtest fixture is a thin wrapper exposing one default harness.
class CallGraphTest : public ::testing::Test, public CpuHarness {};

TEST_F(CallGraphTest, RecursionAttributesEveryCycleAndNestsStacks) {
  // main: x0 = 4; blr rec; hlt.   rec: if (x0--) rec(); ret.
  FunctionBuilder main_fn("main");
  main_fn.mov_imm(0, 4);
  main_fn.mov_imm(9, fn_addr(1));
  main_fn.blr(9);
  main_fn.hlt(1);

  FunctionBuilder rec("rec");
  auto done = rec.make_label();
  rec.stp_pre(29, 30, 31, -16);
  rec.cbz(0, done);
  rec.sub_i(0, 0, 1);
  rec.mov_imm(9, fn_addr(1));
  rec.blr(9);
  rec.bind(done);
  rec.ldp_post(29, 30, 31, 16);
  rec.ret();

  place(main_fn, 0, "main");
  place(rec, 1, "rec");
  run();
  ASSERT_EQ(core.halt_code(), 1u);

  expect_exact_accounting();
  // The recursion shows up as a nested path, not a flat self-cycle bucket.
  const std::string folded = cg.folded();
  EXPECT_NE(folded.find("main;rec;rec;rec"), std::string::npos) << folded;
  // After halt everything has returned except main's frame-less body.
  EXPECT_LE(cg.depth(), 1u);
}

TEST_F(CallGraphTest, ExceptionEntryMidCallBracketsHandlerCycles) {
  // main calls worker; worker raises SVC mid-body; the EL1 sync vector
  // ERETs straight back. Handler cycles must land under a synthetic
  // "[exc:svc]" frame nested inside main;worker.
  FunctionBuilder main_fn("main");
  main_fn.mov_imm(9, fn_addr(1));
  main_fn.blr(9);
  main_fn.hlt(1);

  FunctionBuilder worker("worker");
  worker.stp_pre(29, 30, 31, -16);
  worker.nop();
  worker.svc(42);
  worker.nop();
  worker.ldp_post(29, 30, 31, 16);
  worker.ret();

  FunctionBuilder vec("vec");
  vec.nop();
  vec.eret();

  place(main_fn, 0, "main");
  place(worker, 1, "worker");
  install_vector(Cpu::kVecSyncEl1, vec);
  run();
  ASSERT_EQ(core.halt_code(), 1u);

  expect_exact_accounting();
  const std::string folded = cg.folded();
  EXPECT_NE(folded.find("main;worker;[exc:svc];vectors"), std::string::npos)
      << folded;
}

TEST_F(CallGraphTest, RetWithoutMatchingCallStaysExact) {
  // evil returns through a forged x30 that no BL pushed: the shadow stack
  // pops its only call frame and the landing pad self-heals as a fresh
  // leaf. Shape degrades gracefully; accounting must not.
  FunctionBuilder main_fn("main");
  main_fn.mov_imm(9, fn_addr(1));
  main_fn.blr(9);
  main_fn.hlt(7);  // never reached: evil "returns" to landing instead

  FunctionBuilder evil("evil");
  evil.mov_imm(30, fn_addr(2));
  evil.ret();

  FunctionBuilder landing("landing");
  landing.nop();
  landing.hlt(2);

  place(main_fn, 0, "main");
  place(evil, 1, "evil");
  place(landing, 2, "landing");
  run();
  ASSERT_EQ(core.halt_code(), 2u);

  expect_exact_accounting();
  EXPECT_NE(cg.folded().find("landing"), std::string::npos) << cg.folded();
}

TEST_F(CallGraphTest, AttachingProfilerDoesNotChangeGuestCycles) {
  const auto build = [&](CpuHarness& t) {
    FunctionBuilder main_fn("main");
    main_fn.mov_imm(0, 3);
    main_fn.mov_imm(9, t.fn_addr(1));
    main_fn.blr(9);
    main_fn.hlt(1);
    FunctionBuilder rec("rec");
    auto done = rec.make_label();
    rec.stp_pre(29, 30, 31, -16);
    rec.cbz(0, done);
    rec.sub_i(0, 0, 1);
    rec.mov_imm(9, t.fn_addr(1));
    rec.blr(9);
    rec.bind(done);
    rec.ldp_post(29, 30, 31, 16);
    rec.ret();
    t.place(main_fn, 0, "main");
    t.place(rec, 1, "rec");
  };
  build(*this);
  run(/*attach=*/false);
  const uint64_t plain_cycles = core.cycles();
  const uint64_t plain_insns = core.retired();

  CpuHarness traced;
  build(traced);
  traced.run(/*attach=*/true);
  EXPECT_EQ(traced.core.cycles(), plain_cycles);
  EXPECT_EQ(traced.core.retired(), plain_insns);
  traced.expect_exact_accounting();
}

TEST_F(CallGraphTest, TopStacksOrdersByCycles) {
  FunctionBuilder main_fn("main");
  for (int i = 0; i < 8; ++i) main_fn.nop();
  main_fn.hlt(1);
  place(main_fn, 0, "main");
  run();
  const std::string top = cg.top_stacks(3);
  EXPECT_NE(top.find("main"), std::string::npos) << top;
  EXPECT_EQ(cg.hot_node_count(), 1u);
}

// ---------------------------------------------------------------------------
// Machine-level: the full kernel boot + syscall workload, profiled through
// the obs collector exactly as the benches use it.

TEST(CallGraphMachine, FoldedProfileAccountsForEveryKernelCycle) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::read_file(20, 64,
                                                  kernel::FileKind::Null));
  m.boot();
  ASSERT_TRUE(m.run());
  ASSERT_NE(m.stats(), nullptr);
  const CallGraphProfiler& cg = m.stats()->callgraph();
  EXPECT_EQ(cg.total_cycles(), m.cpu().cycles());
  EXPECT_EQ(cg.total_retires(), m.cpu().retired());
  const std::string folded = m.stats()->folded_profile();
  EXPECT_EQ(folded_cycle_sum(folded), m.cpu().cycles());
  // Syscalls from EL0 enter the kernel through synthetic exception frames.
  EXPECT_NE(folded.find("[exc:svc]"), std::string::npos);
  // Folded export is deterministic: sorted lines, byte-identical re-export.
  EXPECT_EQ(folded, m.stats()->folded_profile());
}

TEST(CallGraphMachine, CallgraphCanBeDisabledIndependently) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::none();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  cfg.obs.callgraph = false;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(5));
  m.boot();
  ASSERT_TRUE(m.run());
  ASSERT_NE(m.stats(), nullptr);
  EXPECT_EQ(m.stats()->callgraph().total_cycles(), 0u);
  EXPECT_EQ(m.stats()->folded_profile(), "");
  // The flat profiler still accounts for everything.
  EXPECT_EQ(m.stats()->profiler().total_cycles(), m.cpu().cycles());
}

}  // namespace
}  // namespace camo
