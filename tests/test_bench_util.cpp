// bench::Session flag parsing: the shared --json/--trace/--folded/--seed
// flags must be compacted out of argv for the binary's own parser, and a
// value-taking flag with a missing or malformed value must be a hard error
// rather than a silently dropped artifact path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace camo::bench {
namespace {

using Flags = Session::Flags;

/// argv harness: owns mutable copies of the strings, like a real argv.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv() { return ptrs.data(); }
};

TEST(BenchFlags, ParsesAndCompactsAllSharedFlags) {
  Argv a({"bench", "--smoke", "--json", "out.json", "--positional",
          "--trace", "t.json", "--folded", "f.txt", "--seed", "42",
          "--own-flag"});
  Flags f;
  const std::string err = Session::parse_flags(a.argc, a.argv(), f);
  EXPECT_EQ(err, "");
  EXPECT_TRUE(f.smoke);
  EXPECT_EQ(f.json_path, "out.json");
  EXPECT_EQ(f.trace_path, "t.json");
  EXPECT_EQ(f.folded_path, "f.txt");
  ASSERT_TRUE(f.seed.has_value());
  EXPECT_EQ(*f.seed, 42u);
  // Only the binary's own arguments remain, in order.
  ASSERT_EQ(a.argc, 3);
  EXPECT_STREQ(a.argv()[0], "bench");
  EXPECT_STREQ(a.argv()[1], "--positional");
  EXPECT_STREQ(a.argv()[2], "--own-flag");
  EXPECT_EQ(a.argv()[3], nullptr);
}

TEST(BenchFlags, SbFlagParsesOnOffAndRejectsAnythingElse) {
  {
    Argv a({"bench", "--sb", "off", "--keep"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_FALSE(f.sb);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--keep");
  }
  {
    Argv a({"bench", "--sb=on"});
    Flags f;
    f.sb = false;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.sb);
  }
  {
    Argv a({"bench"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.sb) << "superblocks default on";
  }
  {
    Argv a({"bench", "--sb", "maybe"});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err.find("--sb"), std::string::npos) << err;
  }
}

TEST(BenchFlags, SnapFlagParsesOnOffDefaultsOffRejectsAnythingElse) {
  {
    Argv a({"bench", "--snap", "on", "--keep"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.snap);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--keep");
  }
  {
    Argv a({"bench", "--snap=off"});
    Flags f;
    f.snap = true;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_FALSE(f.snap);
  }
  {
    Argv a({"bench"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_FALSE(f.snap) << "snapshot reuse defaults off";
  }
  {
    Argv a({"bench", "--snap", "maybe"});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err.find("--snap"), std::string::npos) << err;
  }
}

TEST(BenchFlags, TraceFlagGatesTierOrTakesChromeTracePath) {
  // --trace is overloaded: on|off gates the §3i trace tier, anything else
  // is the Chrome trace output path (the flag's original meaning).
  {
    Argv a({"bench", "--trace", "off", "--keep"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_FALSE(f.trace);
    EXPECT_EQ(f.trace_path, "");
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--keep");
  }
  {
    Argv a({"bench", "--trace=on"});
    Flags f;
    f.trace = false;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.trace);
    EXPECT_EQ(f.trace_path, "");
  }
  {
    Argv a({"bench", "--trace", "t.json"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.trace) << "a path must not disturb the tier gate";
    EXPECT_EQ(f.trace_path, "t.json");
  }
  {
    Argv a({"bench"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_TRUE(f.trace) << "trace tier defaults on";
  }
}

TEST(BenchFlags, EqualsFormWorks) {
  Argv a({"bench", "--json=out.json", "--seed=0x10"});
  Flags f;
  EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
  EXPECT_EQ(f.json_path, "out.json");
  ASSERT_TRUE(f.seed.has_value());
  EXPECT_EQ(*f.seed, 16u);  // strtoull base 0: hex accepted
}

TEST(BenchFlags, TrailingValueFlagIsAnError) {
  for (const char* flag : {"--json", "--trace", "--folded", "--seed"}) {
    Argv a({"bench", flag});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err, "") << flag;
    EXPECT_NE(err.find(flag), std::string::npos) << err;
  }
}

TEST(BenchFlags, EmptyValueIsAnError) {
  Argv a({"bench", "--json="});
  Flags f;
  EXPECT_NE(Session::parse_flags(a.argc, a.argv(), f), "");
}

TEST(BenchFlags, MalformedSeedIsAnError) {
  for (const char* bad : {"banana", "12x", ""}) {
    Argv a({"bench", "--seed", bad});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err, "") << "--seed " << bad;
    EXPECT_FALSE(f.seed.has_value());
  }
}

TEST(BenchFlags, JobsFlagParsesClampsAndFallsBackToEnv) {
  {
    Argv a({"bench", "--jobs", "4"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.jobs, 4u);
  }
  {
    Argv a({"bench", "--jobs=100000"});  // clamp to the pool's ceiling
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.jobs, par::Pool::kMaxJobs);
  }
  for (const char* bad : {"0", "-3", "many", "2x"}) {
    Argv a({"bench", "--jobs", bad});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err, "") << bad;
    EXPECT_NE(err.find("--jobs"), std::string::npos) << err;
  }
  {
    // No flag: the CAMO_JOBS environment variable sizes the pool; an
    // explicit --jobs always beats it.
    setenv("CAMO_JOBS", "3", 1);
    Argv a({"bench"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.jobs, 3u);
    Argv b({"bench", "--jobs", "2"});
    Flags g;
    EXPECT_EQ(Session::parse_flags(b.argc, b.argv(), g), "");
    EXPECT_EQ(g.jobs, 2u);
    unsetenv("CAMO_JOBS");
    Argv c({"bench"});
    Flags h;
    EXPECT_EQ(Session::parse_flags(c.argc, c.argv(), h), "");
    EXPECT_EQ(h.jobs, 1u);
  }
}

TEST(BenchFlags, CoresFlagParsesClampsAndDefaultsToOne) {
  {
    Argv a({"bench", "--cores", "4", "--keep"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.cores, 4u);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.argv()[1], "--keep");
  }
  {
    Argv a({"bench", "--cores=2"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.cores, 2u);
  }
  {
    Argv a({"bench", "--cores=100000"});  // clamp to the supported maximum
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.cores, 64u);
  }
  for (const char* bad : {"0", "-3", "+2", "many", "2x", ""}) {
    Argv a({"bench", "--cores", bad});
    Flags f;
    const std::string err = Session::parse_flags(a.argc, a.argv(), f);
    EXPECT_NE(err, "") << "--cores " << bad;
    EXPECT_NE(err.find("--cores"), std::string::npos) << err;
  }
  {
    // No flag means one guest core — and deliberately NO environment
    // fallback: the artifact must say what was simulated.
    setenv("CAMO_CORES", "8", 1);
    Argv a({"bench"});
    Flags f;
    EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
    EXPECT_EQ(f.cores, 1u);
    unsetenv("CAMO_CORES");
  }
}

TEST(BenchFlags, NoFlagsLeavesArgvAlone) {
  Argv a({"bench", "pos1", "pos2"});
  Flags f;
  EXPECT_EQ(Session::parse_flags(a.argc, a.argv(), f), "");
  EXPECT_EQ(a.argc, 3);
  EXPECT_FALSE(f.smoke);
  EXPECT_EQ(f.json_path, "");
  EXPECT_FALSE(f.seed.has_value());
}

}  // namespace
}  // namespace camo::bench
