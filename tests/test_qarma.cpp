// QARMA-64 cipher tests: algebraic properties the construction must satisfy,
// statistical diffusion checks, and golden regression vectors pinning this
// implementation (see the conformance note in qarma/qarma64.h).
#include <gtest/gtest.h>

#include <bit>

#include "qarma/qarma64.h"
#include "support/rng.h"

namespace camo::qarma {
namespace {

// Golden regression values for this implementation (see QarmaGolden below).
constexpr uint64_t kGoldenC5 = 0xADA79AB7E7CBC1EDull;
constexpr uint64_t kGoldenC7 = 0x828C758D48EE9BD7ull;

TEST(QarmaLayers, MixColumnsIsInvolutory) {
  // M = circ(0, rho, rho^2, rho) must be its own inverse (the paper requires
  // the central matrix Q to be involutory; QARMA-64 uses M = Q).
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t s = rng.next();
    EXPECT_EQ(Qarma64::mix_columns(Qarma64::mix_columns(s)), s);
  }
}

TEST(QarmaLayers, ShuffleInverse) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t s = rng.next();
    EXPECT_EQ(Qarma64::inv_shuffle(Qarma64::shuffle(s)), s);
    EXPECT_EQ(Qarma64::shuffle(Qarma64::inv_shuffle(s)), s);
  }
}

TEST(QarmaLayers, SubCellsInverse) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t s = rng.next();
    EXPECT_EQ(Qarma64::inv_sub_cells(Qarma64::sub_cells(s)), s);
  }
}

TEST(QarmaLayers, TweakUpdateInverse) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t t = rng.next();
    EXPECT_EQ(Qarma64::inv_update_tweak(Qarma64::update_tweak(t)), t);
    EXPECT_EQ(Qarma64::update_tweak(Qarma64::inv_update_tweak(t)), t);
  }
}

TEST(QarmaLayers, TweakUpdateHasLongPeriod) {
  // The LFSR-based schedule must not cycle quickly; check the first 64
  // iterates of a nonzero tweak are distinct.
  uint64_t t = 0x123456789ABCDEFull;
  std::vector<uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.push_back(t);
    t = Qarma64::update_tweak(t);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(QarmaLayers, DeriveW1IsBijectionSample) {
  // o(x) must be injective on a sample (it is an orthomorphism).
  Xoshiro256 rng(5);
  std::vector<uint64_t> outs;
  for (int i = 0; i < 4096; ++i) outs.push_back(Qarma64::derive_w1(rng.next()));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

class QarmaRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QarmaRoundTrip, DecryptInvertsEncrypt) {
  const Qarma64 cipher(GetParam());
  Xoshiro256 rng(100 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    const Key128 key{rng.next(), rng.next()};
    const uint64_t p = rng.next(), t = rng.next();
    const uint64_t c = cipher.encrypt(p, t, key);
    EXPECT_EQ(cipher.decrypt(c, t, key), p);
  }
}

TEST_P(QarmaRoundTrip, BijectivePerKeyTweak) {
  const Qarma64 cipher(GetParam());
  const Key128 key{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  const uint64_t tweak = 0x5555AAAA5555AAAAull;
  std::vector<uint64_t> outs;
  for (uint64_t p = 0; p < 2048; ++p)
    outs.push_back(cipher.encrypt(p, tweak, key));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

INSTANTIATE_TEST_SUITE_P(Rounds, QarmaRoundTrip, ::testing::Values(3, 5, 6, 7));

double avg_flip_distance(int which) {
  // which: 0 = plaintext bit flips, 1 = tweak, 2 = key w0, 3 = key k0
  const Qarma64 cipher(5);
  Xoshiro256 rng(42);
  uint64_t total = 0;
  int n = 0;
  for (int trial = 0; trial < 64; ++trial) {
    Key128 key{rng.next(), rng.next()};
    const uint64_t p = rng.next(), t = rng.next();
    const uint64_t base = cipher.encrypt(p, t, key);
    for (unsigned bitpos = 0; bitpos < 64; bitpos += 7) {
      const uint64_t flip = uint64_t{1} << bitpos;
      uint64_t c2;
      switch (which) {
        case 0: c2 = cipher.encrypt(p ^ flip, t, key); break;
        case 1: c2 = cipher.encrypt(p, t ^ flip, key); break;
        case 2: c2 = cipher.encrypt(p, t, {key.w0 ^ flip, key.k0}); break;
        default: c2 = cipher.encrypt(p, t, {key.w0, key.k0 ^ flip}); break;
      }
      total += static_cast<uint64_t>(std::popcount(base ^ c2));
      ++n;
    }
  }
  return static_cast<double>(total) / n;
}

TEST(QarmaDiffusion, PlaintextAvalanche) {
  const double d = avg_flip_distance(0);
  EXPECT_GT(d, 28.0);
  EXPECT_LT(d, 36.0);
}

TEST(QarmaDiffusion, TweakAvalanche) {
  const double d = avg_flip_distance(1);
  EXPECT_GT(d, 28.0);
  EXPECT_LT(d, 36.0);
}

TEST(QarmaDiffusion, WhiteningKeyAvalanche) {
  const double d = avg_flip_distance(2);
  EXPECT_GT(d, 28.0);
  EXPECT_LT(d, 36.0);
}

TEST(QarmaDiffusion, CoreKeyAvalanche) {
  const double d = avg_flip_distance(3);
  EXPECT_GT(d, 28.0);
  EXPECT_LT(d, 36.0);
}

TEST(QarmaDiffusion, OutputBitsBalanced) {
  // Each ciphertext bit should be ~50% ones over random inputs.
  const Qarma64 cipher(5);
  Xoshiro256 rng(77);
  const Key128 key{rng.next(), rng.next()};
  std::array<int, 64> ones{};
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t c = cipher.encrypt(rng.next(), rng.next(), key);
    for (int b = 0; b < 64; ++b) ones[static_cast<size_t>(b)] += (c >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(ones[static_cast<size_t>(b)], kTrials * 42 / 100) << "bit " << b;
    EXPECT_LT(ones[static_cast<size_t>(b)], kTrials * 58 / 100) << "bit " << b;
  }
}

// Golden regression vectors: computed once from this implementation and
// pinned so refactors cannot silently change every PAC in the system.
// (Official Avanzi KATs cannot be re-verified offline; see DESIGN.md §2.)
TEST(QarmaGolden, RegressionVectors) {
  const Key128 key{0x84BE85CE9804E94Bull, 0xEC2802D4E0A488E9ull};
  const uint64_t p = 0xFB623599DA6E8127ull;
  const uint64_t t = 0x477D469DEC0B8762ull;
  const uint64_t c5 = Qarma64(5).encrypt(p, t, key);
  const uint64_t c7 = Qarma64(7).encrypt(p, t, key);
  RecordProperty("c5", std::to_string(c5));
  RecordProperty("c7", std::to_string(c7));
  // Pinned values: if an intentional algorithm change occurs, rerun this
  // test, read the recorded c5/c7 properties, and update these constants
  // alongside the DESIGN.md conformance note.
  EXPECT_EQ(c5, kGoldenC5);
  EXPECT_EQ(c7, kGoldenC7);
  EXPECT_EQ(Qarma64(5).decrypt(c5, t, key), p);
}

}  // namespace
}  // namespace camo::qarma
