// Static verifier tests (§4.1): key-read rejection, SCTLR-write policing,
// allow-lists, image-level scanning.
#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "assembler/builder.h"
#include "compiler/instrument.h"

namespace camo::analysis {
namespace {

using assembler::FunctionBuilder;
using isa::SysReg;

std::vector<uint32_t> words_of(FunctionBuilder& f) { return f.assemble().words; }

TEST(Verifier, CleanCodePasses) {
  FunctionBuilder f("clean");
  f.mov_imm(0, 42);
  f.pacia(0, 1);
  f.autia(0, 1);
  f.mrs(2, SysReg::TPIDR_EL1);  // non-key sysreg read is fine
  f.ret();
  auto w = words_of(f);
  const auto r = Verifier{}.verify_words(w.data(), w.size(), 0x1000);
  EXPECT_TRUE(r.ok()) << r.describe();
  EXPECT_EQ(r.words_scanned, w.size());
}

TEST(Verifier, KeyReadRejected) {
  // §6.2.2: "key reads can be trivially found and rejected".
  for (auto reg : {SysReg::APIAKeyLo, SysReg::APIBKeyHi, SysReg::APDBKeyLo,
                   SysReg::APGAKeyHi}) {
    FunctionBuilder f("evil");
    f.nop();
    f.mrs(0, reg);
    f.ret();
    auto w = words_of(f);
    const auto r = Verifier{}.verify_words(w.data(), w.size(), 0x1000);
    ASSERT_EQ(r.violations.size(), 1u) << isa::sysreg_name(reg);
    EXPECT_EQ(r.violations[0].kind, ViolationKind::KeyRegisterRead);
    EXPECT_EQ(r.violations[0].va, 0x1004u);
  }
}

TEST(Verifier, SctlrWriteRejectedOutsideAllowlist) {
  FunctionBuilder f("evil");
  f.mov_imm(0, 0);
  f.msr(SysReg::SCTLR_EL1, 0);  // would clear the PAuth enable bits
  f.ret();
  auto w = words_of(f);
  const auto r = Verifier{}.verify_words(w.data(), w.size(), 0x2000);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, ViolationKind::SctlrWrite);
}

TEST(Verifier, SctlrWriteAllowedInEarlyBoot) {
  FunctionBuilder f("early_boot");
  f.mov_imm(0, isa::kSctlrEnIB & 0xFFFF);
  f.msr(SysReg::SCTLR_EL1, 0);
  f.ret();
  auto w = words_of(f);
  Verifier v;
  v.allow_sctlr_writes(0x2000, w.size() * 4);
  EXPECT_TRUE(v.verify_words(w.data(), w.size(), 0x2000).ok());
  // The same code anywhere else still violates.
  EXPECT_FALSE(v.verify_words(w.data(), w.size(), 0x9000).ok());
}

TEST(Verifier, KeyWriteOnlyInsideSetterPage) {
  FunctionBuilder f("rogue_setter");
  f.movz(9, 0xDEAD, 0);
  f.msr(SysReg::APIBKeyLo, 9);
  f.ret();
  auto w = words_of(f);
  Verifier v;
  v.allow_key_writes(0x5000, 0x1000);
  EXPECT_TRUE(v.verify_words(w.data(), w.size(), 0x5000).ok());
  const auto r = v.verify_words(w.data(), w.size(), 0x7000);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].kind, ViolationKind::KeyRegisterWrite);
}

TEST(Verifier, MultipleViolationsAllReported) {
  FunctionBuilder f("evil");
  f.mrs(0, SysReg::APIAKeyLo);
  f.mrs(1, SysReg::APIAKeyHi);
  f.msr(SysReg::SCTLR_EL1, 2);
  f.ret();
  auto w = words_of(f);
  const auto r = Verifier{}.verify_words(w.data(), w.size(), 0);
  EXPECT_EQ(r.violations.size(), 3u);
  EXPECT_NE(r.describe().find("pauth-key-read"), std::string::npos);
  EXPECT_NE(r.describe().find("sctlr-write"), std::string::npos);
}

TEST(Verifier, ImageScanCoversAllTextSegments) {
  obj::Program p;
  auto& good = p.add_function("good");
  good.frame_push();
  good.frame_pop_ret();
  auto& bad = p.add_function("bad");
  bad.mrs(0, SysReg::APDBKeyHi);
  bad.ret();
  compiler::instrument(p, compiler::ProtectionConfig::full());
  const auto img = obj::Linker::link(p, 0xFFFF000000080000ull);
  const auto r = Verifier{}.verify_image(img);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].va, img.symbol("bad"));
}

TEST(Verifier, InstrumentedKernelStyleCodeIsClean) {
  // The instrumentation passes themselves must never emit key reads.
  obj::Program p;
  auto& f = p.add_function("worker");
  f.frame_push();
  f.mov_imm(0, 0x1000);
  f.mov_imm(1, 0x2000);
  f.store_protected(1, 0, 8, 3, cpu::PacKey::DB);
  f.load_protected(2, 0, 8, 3, cpu::PacKey::DB);
  f.call_protected(2, 0, 3, cpu::PacKey::IB);
  f.frame_pop_ret();
  compiler::instrument(p, compiler::ProtectionConfig::full());
  const auto img = obj::Linker::link(p, 0xFFFF000000080000ull);
  EXPECT_TRUE(Verifier{}.verify_image(img).ok());
}

}  // namespace
}  // namespace camo::analysis
