// camo::obs tests: trace ring semantics, metrics monotonicity, JSON
// round-trips, and the two accounting invariants the observability layer
// promises — per-EL cycle counters and the per-symbol profile each sum to
// exactly Cpu::cycles(), and attaching the collector never changes guest
// cycle counts (events are free).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "attacks/attacks.h"
#include "cpu/cpu.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/chrome_trace.h"
#include "obs/collector.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/ring.h"

namespace camo::obs {
namespace {

TraceEvent make_event(EventKind kind, uint64_t cycles) {
  TraceEvent e;
  e.kind = kind;
  e.cycles = cycles;
  return e;
}

TEST(TraceRing, KeepsEventsInOrderBeforeWraparound) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 5; ++i)
    ring.emit(make_event(EventKind::PacSign, i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(ring.at(i).cycles, i);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(8);
  for (uint64_t i = 0; i < 20; ++i)
    ring.emit(make_event(EventKind::PacSign, i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  // Oldest retained event is #12, newest #19, still chronological.
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(ring.at(i).cycles, 12 + i);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().cycles, 12u);
  EXPECT_EQ(snap.back().cycles, 19u);
}

TEST(TraceRing, CountKind) {
  TraceRing ring(16);
  for (int i = 0; i < 3; ++i) ring.emit(make_event(EventKind::AuthFail, i));
  for (int i = 0; i < 5; ++i) ring.emit(make_event(EventKind::AuthOk, i));
  EXPECT_EQ(ring.count_kind(EventKind::AuthFail), 3u);
  EXPECT_EQ(ring.count_kind(EventKind::AuthOk), 5u);
  EXPECT_EQ(ring.count_kind(EventKind::KeyWrite), 0u);
}

TEST(Metrics, CountersAreMonotonicAndStable) {
  Registry reg;
  Counter& c = reg.counter("a.b");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(reg.value("a.b"), 42u);
  // Get-or-create returns the same object; references stay valid.
  reg.counter("zzz").inc();  // force rebalancing of the map
  EXPECT_EQ(&reg.counter("a.b"), &c);
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    c.inc(static_cast<uint64_t>(i));
    EXPECT_GE(c.value(), prev);
    prev = c.value();
  }
  EXPECT_EQ(reg.value("unknown"), 0u);
  EXPECT_FALSE(reg.has_counter("unknown"));
}

TEST(Metrics, HistogramStats) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  for (const uint64_t v : {1u, 2u, 3u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 4.0);
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(100), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(6), 1u);
}

TEST(Metrics, GaugesSetAndExport) {
  Registry reg;
  EXPECT_EQ(reg.find_gauge("host.throughput"), nullptr);
  // A registry without gauges must serialize exactly as before they existed.
  EXPECT_EQ(reg.to_json().find("gauges"), std::string::npos);

  Gauge& g = reg.gauge("host.throughput");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(1.25e6);
  EXPECT_DOUBLE_EQ(g.value(), 1.25e6);
  g.set(8e5);  // gauges are settable both directions, unlike counters
  EXPECT_DOUBLE_EQ(g.value(), 8e5);
  ASSERT_NE(reg.find_gauge("host.throughput"), nullptr);
  EXPECT_EQ(&reg.gauge("host.throughput"), &g);

  const auto parsed = json::Value::parse(reg.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(
      parsed->get("gauges")->get("host.throughput")->as_number(), 8e5);
  EXPECT_NE(reg.render_text().find("host.throughput"), std::string::npos);
}

TEST(Json, RoundTrip) {
  json::Value root = json::Value::object();
  root.set("name", json::Value("camo"));
  root.set("count", json::Value(uint64_t{123456789012345ull}));
  root.set("pi", json::Value(3.25));
  root.set("on", json::Value(true));
  json::Value arr = json::Value::array();
  arr.push(json::Value("a\"b\\c\n"));
  arr.push(json::Value(uint64_t{0}));
  root.set("items", std::move(arr));

  const std::string text = root.dump(2);
  const auto parsed = json::Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("name")->as_string(), "camo");
  EXPECT_DOUBLE_EQ(parsed->get("count")->as_number(), 123456789012345.0);
  EXPECT_DOUBLE_EQ(parsed->get("pi")->as_number(), 3.25);
  EXPECT_TRUE(parsed->get("on")->as_bool());
  ASSERT_EQ(parsed->get("items")->size(), 2u);
  EXPECT_EQ(parsed->get("items")->at(0)->as_string(), "a\"b\\c\n");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::Value::parse("{").has_value());
  EXPECT_FALSE(json::Value::parse("{\"a\": }").has_value());
  EXPECT_FALSE(json::Value::parse("[1, 2,]").has_value());
  EXPECT_FALSE(json::Value::parse("{} trailing").has_value());
  EXPECT_FALSE(json::Value::parse("nul").has_value());
  EXPECT_TRUE(json::Value::parse("  {\"a\": [1, 2]}  ").has_value());
}

TEST(Json, MetricsExportParses) {
  Registry reg;
  reg.counter("cycles.el1").inc(100);
  reg.histogram("syscall.cycles").record(64);
  const auto parsed = json::Value::parse(reg.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->get("counters")->get("cycles.el1")->as_number(),
                   100.0);
  EXPECT_DOUBLE_EQ(parsed->get("histograms")
                       ->get("syscall.cycles")
                       ->get("count")
                       ->as_number(),
                   1.0);
}

// ---------------------------------------------------------------------------
// Label tables in obs mirror the producer-side enums by declaration order.
// obs cannot include cpu/attacks headers (it sits below them), so these
// tests are the contract that keeps the integer payloads decodable.

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

TEST(ObsLabels, ExcClassMatchesCpuEnum) {
  for (uint8_t i = 0; i <= static_cast<uint8_t>(cpu::ExcClass::Irq); ++i)
    EXPECT_STREQ(exc_class_label(i),
                 cpu::exc_class_name(static_cast<cpu::ExcClass>(i)))
        << "ExcClass " << int(i);
}

TEST(ObsLabels, PacKeyMatchesCpuEnum) {
  for (uint8_t i = 0; i <= static_cast<uint8_t>(cpu::PacKey::GA); ++i)
    EXPECT_EQ(pac_key_label(i),
              lower(cpu::pac_key_name(static_cast<cpu::PacKey>(i))))
        << "PacKey " << int(i);
}

TEST(ObsLabels, OutcomeMatchesAttacksEnum) {
  for (uint8_t i = 0; i <= static_cast<uint8_t>(attacks::Outcome::Blocked);
       ++i)
    EXPECT_EQ(outcome_label(i),
              lower(attacks::outcome_name(static_cast<attacks::Outcome>(i))))
        << "Outcome " << int(i);
}

// ---------------------------------------------------------------------------
// Machine-level invariants.

kernel::MachineConfig observed_config() {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  return cfg;
}

TEST(Observability, ElCycleCountersSumToCpuCycles) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::null_syscall(50));
  m.boot();
  ASSERT_TRUE(m.run());
  ASSERT_NE(m.stats(), nullptr);
  const Registry& reg = m.stats()->metrics();
  const uint64_t total = reg.value("cycles.el0") + reg.value("cycles.el1") +
                         reg.value("cycles.el2");
  EXPECT_EQ(total, m.cpu().cycles());
  const uint64_t insns = reg.value("insn.el0") + reg.value("insn.el1") +
                         reg.value("insn.el2");
  EXPECT_EQ(insns, m.cpu().retired());
}

TEST(Observability, FastPathCountersAndThroughputGaugePublished) {
  kernel::MachineConfig cfg = observed_config();
  // The one-icache-event-per-retire invariant below holds on the
  // single-step path only: superblocks fetch through the block cache.
  cfg.cpu.superblocks = false;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(50));
  m.boot();
  ASSERT_TRUE(m.run());
  const Registry& reg = m.stats()->metrics();
  // Every retired instruction is exactly one predecode-cache event.
  const uint64_t events = reg.value("fastpath.icache.hit") +
                          reg.value("fastpath.icache.miss") +
                          reg.value("fastpath.icache.redecode");
  EXPECT_EQ(events, m.cpu().retired());
  EXPECT_GT(reg.value("fastpath.tlb.hit"), 0u);
  EXPECT_GT(reg.value("fastpath.tlb.miss"), 0u);
  // Full protection signs/authenticates on every call; repeats must memoize.
  EXPECT_GT(reg.value("fastpath.pac.hit"), 0u);
  const Gauge* g = reg.find_gauge("host.throughput");
  ASSERT_NE(g, nullptr);
  EXPECT_GT(g->value(), 0.0) << "guest insns per host second must be set";
  EXPECT_DOUBLE_EQ(g->value(), m.host_throughput());
}

TEST(Metrics, MergeFromAddsCountersMergesHistogramsOverwritesGauges) {
  Registry a, b;
  a.counter("c").inc(3);
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  a.histogram("h").record(2);
  b.histogram("h").record(100);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  a.merge_from(b);
  EXPECT_EQ(a.value("c"), 7u);
  EXPECT_EQ(a.value("only_b"), 1u);
  const Histogram* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->sum(), 102u);
  EXPECT_EQ(h->min(), 2u);
  EXPECT_EQ(h->max(), 100u);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 2.0);  // last writer wins
}

// Regression: when several machines share a process (a fleet), each
// machine's throughput must survive a registry merge under its namespaced
// gauge — a single shared "host.throughput" name would collapse to the
// last-merged machine's reading.
TEST(Observability, ThroughputGaugeIsNamespacedPerMachine) {
  Registry merged;
  double expected[2] = {0, 0};
  for (unsigned id = 0; id < 2; ++id) {
    kernel::MachineConfig cfg = observed_config();
    cfg.machine_id = id;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(30 + 20 * id));
    m.boot();
    ASSERT_TRUE(m.run());
    expected[id] = m.host_throughput();
    merged.merge_from(m.stats()->metrics());
  }
  for (unsigned id = 0; id < 2; ++id) {
    const Gauge* g =
        merged.find_gauge("host.throughput.m" + std::to_string(id));
    ASSERT_NE(g, nullptr) << "machine " << id;
    EXPECT_DOUBLE_EQ(g->value(), expected[id]) << "machine " << id;
  }
  // The un-namespaced name still exists (single-machine consumers), but
  // after a merge it is only the last writer — fleets recompute it.
  ASSERT_NE(merged.find_gauge("host.throughput"), nullptr);
  EXPECT_DOUBLE_EQ(merged.find_gauge("host.throughput")->value(),
                   expected[1]);
}

TEST(Observability, FlatProfileAccountsForEveryCycle) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::read_file(20, 64, kernel::FileKind::Null));
  m.boot();
  ASSERT_TRUE(m.run());
  const Profiler& prof = m.stats()->profiler();
  EXPECT_EQ(prof.total_cycles(), m.cpu().cycles());
  EXPECT_EQ(prof.total_retires(), m.cpu().retired());
  // The kernel's syscall path must be attributed to real symbols, not the
  // [other] catch-all.
  uint64_t named = 0;
  for (const auto& r : prof.entries())
    if (r.name != "[other]") named += r.cycles;
  EXPECT_GT(named, m.cpu().cycles() / 2);
}

TEST(Observability, AttachingCollectorDoesNotChangeGuestCycles) {
  const auto run_once = [](bool enabled) {
    kernel::MachineConfig cfg = observed_config();
    cfg.obs.enabled = enabled;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(30));
    m.boot();
    EXPECT_TRUE(m.run());
    return std::pair<uint64_t, uint64_t>(m.cpu().cycles(), m.cpu().retired());
  };
  const auto off = run_once(false);
  const auto on = run_once(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

TEST(Observability, SyscallWindowsAreSynthesized) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::null_syscall(25));
  m.boot();
  ASSERT_TRUE(m.run());
  const Collector& st = *m.stats();
  const uint64_t enters = st.ring().count_kind(EventKind::SyscallEnter);
  const uint64_t exits = st.ring().count_kind(EventKind::SyscallExit);
  // 25 benchmark syscalls plus the final exit; every window that closed did
  // so exactly once.
  EXPECT_GE(enters, 25u);
  EXPECT_LE(exits, enters);
  EXPECT_GE(exits, 25u);
  const Histogram* lat = st.metrics().find_histogram("syscall.cycles");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), exits);
  EXPECT_GT(lat->min(), 0u);
  // The metrics view agrees with the trace view.
  EXPECT_EQ(st.metrics().value("syscall.count"), enters);
}

TEST(Observability, KeySwitchAndSignEventsAppear) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::null_syscall(5));
  m.boot();
  ASSERT_TRUE(m.run());
  const Collector& st = *m.stats();
  // The full-protection entry path switches keys on every kernel entry and
  // the instrumented prologues sign return addresses.
  EXPECT_GT(st.ring().count_kind(EventKind::KeyWrite), 0u);
  EXPECT_GT(st.metrics().value("key.write"), 0u);
  EXPECT_GT(st.metrics().value("pauth.sign"), 0u);
  EXPECT_GT(st.metrics().value("pauth.auth.ok"), 0u);
  EXPECT_EQ(st.metrics().value("pauth.auth.fail"), 0u);
  EXPECT_GT(st.metrics().value("ops.pauth"), 0u);
}

TEST(Observability, ChromeTraceExportIsValidAndBalanced) {
  kernel::Machine m(observed_config());
  m.add_user_program(kernel::workloads::null_syscall(10));
  m.boot();
  ASSERT_TRUE(m.run());
  const std::string text = m.stats()->chrome_trace_json();
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.has_value()) << "chrome trace is not valid JSON";
  const json::Value* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  uint64_t begins = 0, ends = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = *events->at(i);
    ASSERT_NE(e.get("ph"), nullptr);
    const std::string ph = e.get("ph")->as_string();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "B" || ph == "E" || ph == "i") {
      ASSERT_NE(e.get("ts"), nullptr);
      ASSERT_NE(e.get("pid"), nullptr);
      ASSERT_NE(e.get("tid"), nullptr);
    }
  }
  EXPECT_EQ(begins, ends) << "unbalanced B/E spans break trace viewers";
}

TEST(Observability, ChromeTraceRoundTripsSyntheticRing) {
  // A hand-built ring snapshot: one syscall window containing a key write,
  // a sign and an auth failure, then an exception window left open (as a
  // wrapped ring would leave it) to exercise the truncation tolerance.
  std::vector<TraceEvent> ring;
  auto push = [&](EventKind k, uint64_t cycles) -> TraceEvent& {
    ring.push_back(make_event(k, cycles));
    return ring.back();
  };
  push(EventKind::SyscallEnter, 100).imm = 1;
  push(EventKind::KeyWrite, 110).imm = 2;
  // Sign events are deliberately not exported (too dense to render); the
  // exporter must skip them without disturbing the span bookkeeping.
  push(EventKind::PacSign, 120).a = 0xFFFF000000081000ull;
  push(EventKind::Stage2Fault, 125).a = 0xFFFF000000090000ull;
  push(EventKind::AuthFail, 130).pc = 0xFFFF000000082000ull;
  push(EventKind::SyscallExit, 140).imm = 1;
  push(EventKind::ExcEnter, 150).k1 = 1;  // still open at the end
  const std::string text = chrome_trace_json(ring);
  const auto doc = json::Value::parse(text);
  ASSERT_TRUE(doc.has_value()) << "synthetic export is not valid JSON";
  const json::Value* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 0u);
  uint64_t begins = 0, ends = 0, instants = 0;
  double last_ts = -1;
  for (size_t i = 0; i < events->size(); ++i) {
    const json::Value& e = *events->at(i);
    ASSERT_NE(e.get("ph"), nullptr);
    const std::string ph = e.get("ph")->as_string();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
    if (ph == "M") continue;  // metadata rows carry no timestamp ordering
    ASSERT_NE(e.get("ts"), nullptr);
    EXPECT_GE(e.get("ts")->as_number(), last_ts)
        << "events must stay in chronological order";
    last_ts = e.get("ts")->as_number();
  }
  // The open exception window is closed at the last timestamp, so spans
  // balance even for a truncated stream.
  EXPECT_EQ(begins, 2u) << "syscall window + exception window";
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(instants, 3u) << "key write, stage-2 fault, auth failure";
}

TEST(Observability, DisabledMachineHasNoCollector) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(3));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.stats(), nullptr);
}

}  // namespace
}  // namespace camo::obs
