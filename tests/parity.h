// Shared parity-assertion helper: when two Machine configurations that must
// execute identically disagree, the plain EXPECT_EQ on their fingerprints
// says only *that* they differ. MachinesConverge() re-runs the pair through
// the divergence bisector (kernel/bisect.h) and reports the first divergent
// retired instruction and both digests — turning "cycles 12345 != 12389"
// into an actionable location (DESIGN.md §3g).
#pragma once

#include <gtest/gtest.h>

#include <iomanip>

#include "kernel/bisect.h"

namespace camo::testing_support {

inline ::testing::AssertionResult MachinesConverge(
    const kernel::BisectSide& a, const kernel::BisectSide& b,
    const kernel::BisectOptions& opts = {}) {
  const obs::DivergenceReport r = kernel::bisect_divergence(a, b, opts);
  if (!r.diverged) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "runs diverge at retirement " << r.first_divergent
         << " (verified equal through " << r.compared << "): " << r.a.label
         << " digest 0x" << std::hex << r.a.digest << " pc 0x"
         << (r.a.ring.empty() ? 0 : r.a.ring.back().pc) << " vs " << r.b.label
         << " digest 0x" << r.b.digest << " pc 0x"
         << (r.b.ring.empty() ? 0 : r.b.ring.back().pc) << std::dec
         << " — re-run `camo-cov bisect` with these configs for the full "
            "camo-div/v1 bundle";
}

}  // namespace camo::testing_support
