// Trace-tier execution engine (DESIGN.md §3i): branch-following superblock
// traces with guarded side exits must be bit-for-bit invisible to the guest.
// This file covers the invalidation protocol for multi-page traces (SMC in a
// page the trace crosses into, including from a peer core), forged control
// flow that misses a segment-boundary guard, asynchronous event delivery at
// guard boundaries, and machine-level parity across all six engine combos
// (interp/sb/trace × fast_path on/off).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "compiler/instrument.h"
#include "harness.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/collector.h"
#include "parity.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using testing::SimHarness;

/// Assemble a code fragment in isolation and return its words (see
/// test_superblock.cpp for the rationale: hand-placed absolute addresses).
template <class Gen>
std::vector<uint32_t> words_of(Gen&& gen) {
  FunctionBuilder f("frag");
  gen(f);
  return f.assemble().words;
}

/// The six engine combinations: {interp, sb, trace} × fast_path. Guest-visible
/// behaviour in this file must be identical under all of them; trace-tier
/// counters are asserted only on the trace engine.
class TraceTier : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  int engine() const { return std::get<0>(GetParam()); }
  bool fast_path() const { return std::get<1>(GetParam()); }
  bool trace_engine() const { return engine() == 2; }
  cpu::Cpu::Config cfg() const {
    cpu::Cpu::Config c;
    c.superblocks = engine() >= 1;
    c.traces = engine() == 2;
    c.fast_path = fast_path();
    return c;
  }
};

std::string combo_name(
    const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
  static const char* const kEngines[] = {"Interp", "Sb", "Trace"};
  return std::string(kEngines[std::get<0>(info.param)]) +
         (std::get<1>(info.param) ? "FpOn" : "FpOff");
}

INSTANTIATE_TEST_SUITE_P(
    EngineCombos, TraceTier,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Bool()),
    combo_name);

// ---------------------------------------------------------------------------
// SMC in the *second* page of a cross-page trace.
//
// Layout (two writable+executable kernel pages):
//   page 1: loop driver at +0x000, controller at +0x800, NOP pad at +0xF80
//           falling through the page boundary
//   page 2: the patch site S at +0x1000: `add x0, x0, #K ; br x13`
// The loop runs pad → boundary → S twenty times, which is enough for the
// edge profiles to bias and a trace spanning both pages to form. On the
// tenth iteration the controller (page 1) rewrites S to K=2. The trace's
// page records cover page 2, so the store must invalidate it — a trace that
// only validated its head page would keep adding 1.
// ---------------------------------------------------------------------------

TEST_P(TraceTier, SmcInSecondPageOfCrossPageTraceInvalidates) {
  SimHarness sim(cfg());
  constexpr uint64_t kWx = 0xFFFF000000200000ull;
  constexpr uint64_t kWxPa = 0x50000;
  mem::PagePerms wx;
  wx.r_el1 = wx.w_el1 = wx.x_el1 = true;
  sim.kmap.map_range(kWx, kWxPa, 0x2000, wx);

  const uint64_t site = kWx + 0x1000;  // patch site: first insn of page 2
  const uint64_t cback = kWx + 0x800;  // loop controller
  const uint64_t pad = kWx + 0xF80;    // NOP run into the page boundary
  const uint32_t br13 = words_of([](FunctionBuilder& f) { f.br(13); })[0];
  const uint32_t add2 =
      words_of([](FunctionBuilder& f) { f.add_i(0, 0, 2); })[0];
  const uint64_t patch =
      static_cast<uint64_t>(add2) | (static_cast<uint64_t>(br13) << 32);

  const auto init = words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(19, 20);  // loop count
    f.mov_imm(9, site);
    f.mov_imm(10, patch);
    f.mov_imm(12, pad);
    f.mov_imm(13, cback);
    f.br(13);
  });
  const auto controller = words_of([&](FunctionBuilder& f) {
    const auto done = f.make_label();
    const auto skip = f.make_label();
    f.cbz(19, done);
    f.sub_i(19, 19, 1);
    f.sub_i(11, 19, 10);
    f.cbnz(11, skip);    // patch exactly once, when x19 hits 10
    f.str(10, 9, 0);     // rewrite S in the trace's *second* page
    f.bind(skip);
    f.br(12);            // pad → page boundary → S
    f.bind(done);
    f.hlt(0x55);
  });
  const auto hot = words_of([&](FunctionBuilder& f) {
    f.add_i(0, 0, 1);  // S: becomes add #2 after the patch
    f.br(13);
  });

  ASSERT_LE(init.size() * 4, 0x800u);
  ASSERT_LE(controller.size() * 4, 0x780u);
  sim.write_words(kWx, init);
  sim.write_words(cback, controller);
  const uint32_t nop = words_of([](FunctionBuilder& f) { f.nop(); })[0];
  sim.write_words(pad, std::vector<uint32_t>(0x80 / 4, nop));
  sim.write_words(site, hot);

  sim.core.pc = kWx;
  sim.core.run(100000);
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0x55u);
  // The patch lands when the decremented count reaches 10: the first 9
  // iterations add 1, the remaining 11 add 2.
  EXPECT_EQ(sim.core.x(0), 9u * 1 + 11u * 2);
  if (trace_engine()) {
    const auto& st = sim.core.superblock_stats();
    EXPECT_GE(st.traces_formed, 1u)
        << "20 stable iterations must bias the edges and form a trace";
    EXPECT_GE(st.trace_invalidations, 1u)
        << "the store into page 2 must invalidate the cross-page trace";
  }
}

// ---------------------------------------------------------------------------
// Forged branch target mid-trace: a register branch the trace recorded as
// strongly biased toward the next segment suddenly goes elsewhere. The
// segment-boundary guard must take the side exit and hand the real pc to the
// plain dispatcher — a trace that trusted its recorded successor would keep
// executing stale segments.
// ---------------------------------------------------------------------------

TEST_P(TraceTier, ForgedBranchTargetTakesGuardSideExit) {
  SimHarness sim(cfg());
  const uint64_t hot = testing::kHText + 0x400;
  const uint64_t cback = testing::kHText + 0x800;
  const uint64_t done = testing::kHText + 0xC00;

  sim.write_words(testing::kHText, words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(19, 12);  // 12 stable iterations: enough to form the trace
    f.mov_imm(13, cback);
    f.mov_imm(15, done);
    f.mov_imm(12, hot);
    f.br(12);
  }));
  sim.write_words(hot, words_of([](FunctionBuilder& f) {
    f.add_i(0, 0, 1);
    f.br(13);  // biased to cback; forged to done on the last pass
  }));
  sim.write_words(cback, words_of([](FunctionBuilder& f) {
    const auto cont = f.make_label();
    f.sub_i(19, 19, 1);
    f.cbnz(19, cont);
    f.mov(13, 15);  // retarget: the next `br x13` in hot goes to done
    f.bind(cont);
    f.br(12);
  }));
  sim.write_words(done, words_of([](FunctionBuilder& f) { f.hlt(0x77); }));

  sim.core.pc = testing::kHText;
  sim.core.run(100000);
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0x77u);
  EXPECT_EQ(sim.core.x(0), 13u) << "12 loop passes plus the forged final one";
  if (trace_engine()) {
    const auto& st = sim.core.superblock_stats();
    EXPECT_GE(st.traces_formed, 1u);
    EXPECT_GE(st.trace_guard_exits, 1u)
        << "the forged target must miss the segment guard, not be followed";
  }
}

// ---------------------------------------------------------------------------
// Asynchronous events at guard boundaries: a timer IRQ and a breakpoint both
// land inside what the trace tier runs as one long dispatch, and must be
// observed on exactly the same instruction as the single-step interpreter.
// ---------------------------------------------------------------------------

FunctionBuilder counted_loop() {
  FunctionBuilder f("loop");
  const auto loop = f.make_label();
  f.daifclr();
  f.mov_imm(19, 100000);
  f.bind(loop);
  f.add_i(0, 0, 1);
  f.add_i(1, 1, 1);
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);
  return f;
}

TEST_P(TraceTier, TimerIrqDeliveredAtIdenticalPointMidTrace) {
  SimHarness sim(cfg());
  sim.core.set_timer_period(157);  // lands mid-trace once the loop is hot
  sim.run(counted_loop());
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0xE2u) << "IRQ vector must halt the sim";

  cpu::Cpu::Config ref_cfg = cfg();
  ref_cfg.superblocks = false;
  ref_cfg.traces = false;
  SimHarness ref(ref_cfg);
  ref.core.set_timer_period(157);
  ref.run(counted_loop());
  EXPECT_EQ(sim.core.cycles(), ref.core.cycles());
  EXPECT_EQ(sim.core.retired(), ref.core.retired());
  EXPECT_EQ(sim.core.x(0), ref.core.x(0));
}

TEST_P(TraceTier, BreakpointAtGuardBoundaryFiresIdentically) {
  const auto run_with_bp = [&](cpu::Cpu::Config c, uint64_t bp_va,
                               uint64_t* hits, uint64_t* first_x0) {
    SimHarness sim(c);
    sim.write_words(testing::kHText, counted_loop().assemble().words);
    sim.core.add_breakpoint(bp_va, [&](cpu::Cpu& cc) {
      if ((*hits)++ == 0) *first_x0 = cc.x(0);
    });
    sim.core.pc = testing::kHText;
    sim.core.run(2000);
    return sim.core.retired();
  };
  // The loop head is a trace segment boundary once the back edge biases;
  // the add one instruction in is mid-segment. Both must fire exactly as
  // under the interpreter.
  const auto words = counted_loop().assemble().words;
  const uint64_t loop_head =
      testing::kHText + (words.size() - 5) * 4;  // add/add/sub/cbnz/hlt
  for (const uint64_t bp : {loop_head, loop_head + 4}) {
    uint64_t hits = 0, first_x0 = ~uint64_t{0};
    const uint64_t retired = run_with_bp(cfg(), bp, &hits, &first_x0);
    cpu::Cpu::Config ref_cfg = cfg();
    ref_cfg.superblocks = false;
    ref_cfg.traces = false;
    uint64_t ref_hits = 0, ref_first_x0 = ~uint64_t{0};
    const uint64_t ref_retired =
        run_with_bp(ref_cfg, bp, &ref_hits, &ref_first_x0);
    EXPECT_GT(hits, 0u);
    EXPECT_EQ(hits, ref_hits) << "bp at +0x" << std::hex << bp;
    EXPECT_EQ(first_x0, ref_first_x0);
    EXPECT_EQ(retired, ref_retired);
  }
}

// ---------------------------------------------------------------------------
// Cross-core SMC against a hot trace: core B loops through a block long
// enough to form a trace over it; core A rewrites the loop body through its
// own Mmu. Core B's next run must fetch the new code — the page write
// generation the trace validates against lives in the shared PhysicalMemory.
// ---------------------------------------------------------------------------

TEST_P(TraceTier, CrossCoreSmcInvalidatesPeerTrace) {
  const cpu::Cpu::Config c = cfg();
  mem::PhysicalMemory pm{1 << 20};
  mem::Stage1Map kmap;
  mem::Mmu mmu_a(pm, c.layout), mmu_b(pm, c.layout);
  cpu::Cpu a(mmu_a, c), b(mmu_b, c);

  constexpr uint64_t kWx = 0xFFFF000000200000ull;
  mem::PagePerms wx;
  wx.r_el1 = wx.w_el1 = wx.x_el1 = true;
  kmap.map_range(kWx, 0x50000, 0x2000, wx);
  mmu_a.set_kernel_map(&kmap);
  mmu_b.set_kernel_map(&kmap);

  const auto write_words = [&](uint64_t va,
                               const std::vector<uint32_t>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto t =
          mmu_a.translate(va + i * 4, mem::Access::Fetch, mem::El::El2);
      ASSERT_TRUE(t.ok()) << "cross-core harness: text not mapped";
      pm.write32(t.pa, words[i]);
    }
  };

  const uint64_t site = kWx + 0x800;     // the loop core B forms a trace over
  const uint64_t entry_b = kWx;          // core B's per-pass driver
  const uint64_t patcher = kWx + 0x400;  // core A's program
  const uint32_t add2 =
      words_of([](FunctionBuilder& f) { f.add_i(0, 0, 2); })[0];
  const uint32_t sub1 =
      words_of([](FunctionBuilder& f) { f.sub_i(19, 19, 1); })[0];
  const uint64_t patch =
      static_cast<uint64_t>(add2) | (static_cast<uint64_t>(sub1) << 32);

  write_words(entry_b, words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(19, 12);  // hot enough for the loop trace to form
    f.mov_imm(12, site);
    f.br(12);
  }));
  write_words(site, words_of([](FunctionBuilder& f) {
    const auto loop = f.make_label();
    f.bind(loop);
    f.add_i(0, 0, 1);  // becomes add #2 after core A's store
    f.sub_i(19, 19, 1);
    f.cbnz(19, loop);
    f.hlt(0x55);
  }));
  write_words(patcher, words_of([&](FunctionBuilder& f) {
    f.mov_imm(9, site);
    f.mov_imm(10, patch);
    f.str(10, 9, 0);  // core A rewrites core B's hot loop
    f.hlt(0x66);
  }));

  // Pass 1: core B runs the loop hot — block cached, trace formed.
  b.pc = entry_b;
  b.run(10000);
  ASSERT_TRUE(b.halted());
  EXPECT_EQ(b.halt_code(), 0x55u);
  EXPECT_EQ(b.x(0), 12u);
  if (trace_engine())
    EXPECT_GE(b.superblock_stats().traces_formed, 1u)
        << "12 stable loop passes must form a trace on core B";

  // Core A patches the loop through its own Mmu — never executed on A.
  a.pc = patcher;
  a.run(1000);
  ASSERT_TRUE(a.halted());
  EXPECT_EQ(a.halt_code(), 0x66u);

  // Pass 2: core B must fetch the new code, not replay its trace.
  b.clear_halt();
  b.pc = entry_b;
  b.run(10000);
  ASSERT_TRUE(b.halted());
  EXPECT_EQ(b.halt_code(), 0x55u);
  EXPECT_EQ(b.x(0), 24u)
      << "core B replayed a stale trace after core A's store";
  if (trace_engine())
    EXPECT_GE(b.superblock_stats().trace_invalidations, 1u)
        << "the cross-core store must invalidate core B's trace";
}

// ---------------------------------------------------------------------------
// Machine-level parity: a full boot + protected workload mix (syscalls,
// context switches, preemption) is bit-for-bit identical across all six
// engine combinations and at 1 and 2 guest cores, including the obs retire
// stream and every derived artifact.
// ---------------------------------------------------------------------------

kernel::BisectSide parity_side(bool superblocks, bool traces, bool fast_path,
                               unsigned cores = 1) {
  kernel::BisectSide s;
  s.label = std::string(traces ? "trace" : superblocks ? "sb" : "interp") +
            (fast_path ? " fp-on" : " fp-off") +
            (cores > 1 ? " cores=" + std::to_string(cores) : "");
  s.cfg.kernel.protection = compiler::ProtectionConfig::full();
  s.cfg.kernel.log_pac_failures = false;
  s.cfg.kernel.preempt = true;
  s.cfg.cpu.superblocks = superblocks;
  s.cfg.cpu.traces = traces;
  s.cfg.cpu.fast_path = fast_path;
  s.cfg.cores = cores;
  s.cfg.smp_quantum = 50;  // real interleaving at this workload size
  s.setup = [](kernel::Machine& m) {
    m.add_user_program(kernel::workloads::null_syscall(25));
    m.add_user_program(kernel::workloads::yield_loop(10));
  };
  return s;
}

std::tuple<std::vector<uint64_t>, uint64_t, std::string> machine_fingerprint(
    bool superblocks, bool traces, bool fast_path, unsigned cores = 1) {
  const kernel::BisectSide s = parity_side(superblocks, traces, fast_path,
                                           cores);
  kernel::Machine m(s.cfg);
  s.setup(m);
  m.boot();
  EXPECT_TRUE(m.run());
  std::vector<uint64_t> clocks;
  for (unsigned c = 0; c < m.cores(); ++c) {
    clocks.push_back(m.core(c).cycles());
    clocks.push_back(m.core(c).retired());
  }
  return {std::move(clocks), m.halt_code(), m.console()};
}

TEST(TraceParity, MachineRunBitForBitAcrossAllSixEngineCombos) {
  for (const unsigned cores : {1u, 2u}) {
    const auto ref = machine_fingerprint(false, false, false, cores);
    for (const bool fp : {false, true}) {
      for (const auto& [sb, tr] : {std::pair{false, false},
                                   std::pair{true, false},
                                   std::pair{true, true}}) {
        if (!sb && !tr && !fp) continue;  // the reference itself
        const auto cur = machine_fingerprint(sb, tr, fp, cores);
        if (cur == ref) continue;
        // Fingerprints disagree: escalate to the divergence bisector so the
        // failure names the first divergent retired instruction.
        EXPECT_EQ(cur, ref) << "cores=" << cores << " sb=" << sb
                            << " traces=" << tr << " fp=" << fp;
        EXPECT_TRUE(testing_support::MachinesConverge(
            parity_side(false, false, false, cores),
            parity_side(sb, tr, fp, cores)));
      }
    }
  }
}

TEST(TraceParity, ObsTraceByteIdenticalAcrossInterpSbTrace) {
  const auto traced = [](bool superblocks, bool traces) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.obs.enabled = true;
    cfg.cpu.superblocks = superblocks;
    cfg.cpu.traces = traces;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(25));
    m.boot();
    EXPECT_TRUE(m.run());
    const obs::Collector* st = m.stats();
    EXPECT_NE(st, nullptr);
    return std::tuple<std::string, std::string, std::string>(
        st->chrome_trace_json(), st->flat_profile(), st->folded_profile());
  };
  const auto ref = traced(false, false);
  EXPECT_EQ(traced(true, false), ref);
  EXPECT_EQ(traced(true, true), ref);
}

// ---------------------------------------------------------------------------
// Counters: the trace tier's stats flow into the metrics registry as
// fastpath.trace.* and stay zero with the tier off.
// ---------------------------------------------------------------------------

TEST(TraceStats, CountersPublishedWhenTierOn) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  cfg.cpu.superblocks = true;
  cfg.cpu.traces = true;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(40));
  m.boot();
  ASSERT_TRUE(m.run());
  const obs::Registry& reg = m.stats()->metrics();
  EXPECT_GT(reg.value("fastpath.trace.formed"), 0u);
  EXPECT_GT(reg.value("fastpath.trace.hits"), 0u);
  const auto& st = m.cpu().superblock_stats();
  EXPECT_EQ(reg.value("fastpath.trace.formed"), st.traces_formed);
  EXPECT_EQ(reg.value("fastpath.trace.hits"), st.trace_hits);
  EXPECT_EQ(reg.value("fastpath.trace.guard_exits"), st.trace_guard_exits);
  EXPECT_EQ(reg.value("fastpath.trace.invalidations"),
            st.trace_invalidations);
}

TEST(TraceStats, CountersStayZeroWhenTierOff) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  cfg.cpu.superblocks = true;
  cfg.cpu.traces = false;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(40));
  m.boot();
  ASSERT_TRUE(m.run());
  const obs::Registry& reg = m.stats()->metrics();
  EXPECT_EQ(reg.value("fastpath.trace.formed"), 0u);
  EXPECT_EQ(reg.value("fastpath.trace.hits"), 0u);
  EXPECT_EQ(reg.value("fastpath.trace.guard_exits"), 0u);
  EXPECT_EQ(reg.value("fastpath.trace.invalidations"), 0u);
  EXPECT_GT(reg.value("fastpath.sb.hits"), 0u)
      << "the superblock tier underneath must still be live";
}

}  // namespace
}  // namespace camo
