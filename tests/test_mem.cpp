// Memory subsystem tests: VA layout (paper Tables 1-2, Appendix A), stage-1
// translation and permissions, stage-2 overlay (XOM), physical memory.
#include <gtest/gtest.h>

#include "mem/mmu.h"
#include "mem/phys.h"
#include "mem/valayout.h"
#include "support/error.h"

namespace camo::mem {
namespace {

constexpr uint64_t kKernBase = 0xFFFF000000080000ull;
constexpr uint64_t kUserBase = 0x0000000000400000ull;

TEST(Phys, ReadWriteWidths) {
  PhysicalMemory pm(0x10000);
  pm.write64(0x100, 0x1122334455667788ull);
  EXPECT_EQ(pm.read64(0x100), 0x1122334455667788ull);
  EXPECT_EQ(pm.read32(0x100), 0x55667788u);
  EXPECT_EQ(pm.read8(0x107), 0x11u);
  pm.write8(0x100, 0xAA);
  EXPECT_EQ(pm.read64(0x100), 0x11223344556677AAull);
}

TEST(Phys, OutOfRangeThrows) {
  PhysicalMemory pm(0x1000);
  EXPECT_THROW(pm.read64(0x0FFD), camo::Error);
  EXPECT_THROW(pm.write8(0x1000, 1), camo::Error);
  EXPECT_NO_THROW(pm.read64(0x0FF8));
}

TEST(Phys, BlockOps) {
  PhysicalMemory pm(0x1000);
  const char data[] = "camouflage";
  pm.write_block(0x10, data, sizeof data);
  char out[sizeof data];
  pm.read_block(0x10, out, sizeof data);
  EXPECT_STREQ(out, "camouflage");
  pm.fill(0x10, 0, sizeof data);
  EXPECT_EQ(pm.read8(0x10), 0u);
}

TEST(Phys, WritesBumpPageGenerationReadsDoNot) {
  PhysicalMemory pm(0x3000);
  EXPECT_EQ(pm.page_count(), 3u);
  EXPECT_EQ(pm.page_generation(0), 0u);

  pm.write8(0x10, 1);
  pm.write32(0x20, 2);
  pm.write64(0x30, 3);
  EXPECT_EQ(pm.page_generation(0), 3u);
  EXPECT_EQ(pm.page_generation(1), 0u) << "other pages untouched";

  (void)pm.read64(0x10);
  char scratch[8];
  pm.read_block(0x10, scratch, sizeof scratch);
  EXPECT_EQ(pm.page_generation(0), 3u) << "reads never bump a generation";

  // A block write spanning a page boundary bumps both pages.
  const uint8_t data[8] = {};
  pm.write_block(0x0FFC, data, 8);
  EXPECT_EQ(pm.page_generation(0), 4u);
  EXPECT_EQ(pm.page_generation(1), 1u);
  pm.fill(0x2000, 0xFF, 0x1000);
  EXPECT_EQ(pm.page_generation(2), 1u);
  // Out-of-range pages read as generation 0 (never hold code).
  EXPECT_EQ(pm.page_generation(1000), 0u);
}

// ---------------------------------------------------------------------------
// VaLayout
// ---------------------------------------------------------------------------

TEST(VaLayout, KernelHalfSelection) {
  EXPECT_TRUE(VaLayout::is_kernel_va(0xFFFF000000000000ull));
  EXPECT_FALSE(VaLayout::is_kernel_va(0x0000FFFFFFFFFFFFull));
  // Bit 55 is the selector even with a tag byte present.
  EXPECT_TRUE(VaLayout::is_kernel_va(uint64_t{1} << 55));
}

TEST(VaLayout, PacWidthMatchesPaper) {
  // §5.4: "with typical Linux page and virtual address configurations the
  // space remaining for the PACs is 15 bits" (kernel, TBI off). User space
  // with TBI gets 7 bits.
  VaLayout l;
  EXPECT_EQ(l.pac_width(kKernBase), 15u);
  EXPECT_EQ(l.pac_width(kUserBase), 7u);
}

TEST(VaLayout, PacWidthScalesWithVaBits) {
  // Appendix B: PACs can have up to 31 bits with small VA spaces.
  VaLayout l;
  l.va_bits = 32;
  l.tbi_kernel = false;
  EXPECT_EQ(l.pac_width(kKernBase), 31u);
  l.va_bits = 39;
  EXPECT_EQ(l.pac_width(kKernBase), 24u);
}

TEST(VaLayout, PacMaskExcludesBit55) {
  VaLayout l;
  EXPECT_FALSE(l.pac_mask(kKernBase) & (uint64_t{1} << 55));
  EXPECT_FALSE(l.pac_mask(kUserBase) & (uint64_t{1} << 55));
  // Kernel mask covers the top byte (TBI off), user mask does not.
  EXPECT_TRUE(l.pac_mask(kKernBase) & (uint64_t{1} << 63));
  EXPECT_FALSE(l.pac_mask(kUserBase) & (uint64_t{1} << 63));
}

TEST(VaLayout, Canonical) {
  VaLayout l;
  EXPECT_TRUE(l.is_canonical(kKernBase));
  EXPECT_TRUE(l.is_canonical(kUserBase));
  EXPECT_FALSE(l.is_canonical(kKernBase & ~(uint64_t{1} << 62)));
  // User pointers with a tag byte are canonical under TBI...
  EXPECT_TRUE(l.is_canonical(0xAB00000000400000ull));
  // ...but garbage in bits 54:48 is not.
  EXPECT_FALSE(l.is_canonical(0x0001000000400000ull));
  EXPECT_EQ(l.canonical(kKernBase ^ (uint64_t{1} << 60)), kKernBase);
}

TEST(VaLayout, TablesRender) {
  VaLayout l;
  const std::string t1 = l.render_table1();
  EXPECT_NE(t1.find("0xffff000000000000"), std::string::npos);
  EXPECT_NE(t1.find("Kernel"), std::string::npos);
  EXPECT_NE(t1.find("Invalid"), std::string::npos);
  const std::string t2 = l.render_table2();
  EXPECT_NE(t2.find("user="), std::string::npos);
  EXPECT_NE(t2.find("kernel=15"), std::string::npos);
  EXPECT_NE(t2.find("tttttttt"), std::string::npos);  // user tag byte
}

// ---------------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------------

class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : pm(1 << 20), mmu(pm, VaLayout{}) {
    kmap.map_range(kKernBase, 0x10000, 0x3000, PagePerms::kernel_rw());
    kmap.map_range(kKernBase + 0x3000, 0x13000, 0x1000,
                   PagePerms::kernel_text());
    umap.map_range(kUserBase, 0x20000, 0x2000, PagePerms::user_rw());
    umap.map_range(kUserBase + 0x2000, 0x22000, 0x1000, PagePerms::user_text());
    mmu.set_kernel_map(&kmap);
    mmu.set_user_map(&umap);
  }
  PhysicalMemory pm;
  Stage1Map kmap, umap;
  Stage2Map s2;
  Mmu mmu;
};

TEST_F(MmuTest, BasicTranslation) {
  const auto r = mmu.translate(kKernBase + 0x1234, Access::Read, El::El1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.pa, 0x11234u);
}

TEST_F(MmuTest, UnmappedFaults) {
  const auto r = mmu.translate(kKernBase + 0x100000, Access::Read, El::El1);
  EXPECT_EQ(r.fault, FaultKind::Translation);
}

TEST_F(MmuTest, NonCanonicalAddressSizeFault) {
  const auto r =
      mmu.translate(kKernBase & ~(uint64_t{1} << 60), Access::Read, El::El1);
  EXPECT_EQ(r.fault, FaultKind::AddressSize);
}

TEST_F(MmuTest, KernelRwNotExecutable) {
  EXPECT_TRUE(mmu.translate(kKernBase, Access::Write, El::El1).ok());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Fetch, El::El1).fault,
            FaultKind::Permission);
}

TEST_F(MmuTest, KernelTextNotWritable) {
  const uint64_t text = kKernBase + 0x3000;
  EXPECT_TRUE(mmu.translate(text, Access::Fetch, El::El1).ok());
  EXPECT_TRUE(mmu.translate(text, Access::Read, El::El1).ok());
  EXPECT_EQ(mmu.translate(text, Access::Write, El::El1).fault,
            FaultKind::Permission);
}

TEST_F(MmuTest, UserCannotTouchKernel) {
  EXPECT_EQ(mmu.translate(kKernBase, Access::Read, El::El0).fault,
            FaultKind::Permission);
  EXPECT_EQ(mmu.translate(kKernBase + 0x3000, Access::Fetch, El::El0).fault,
            FaultKind::Permission);
}

TEST_F(MmuTest, KernelCanReadUserButNotExecute) {
  // PXN semantics: kernel must never fetch from user-executable pages.
  EXPECT_TRUE(mmu.translate(kUserBase, Access::Read, El::El1).ok());
  EXPECT_TRUE(mmu.translate(kUserBase, Access::Write, El::El1).ok());
  EXPECT_EQ(mmu.translate(kUserBase + 0x2000, Access::Fetch, El::El1).fault,
            FaultKind::Permission);
}

TEST_F(MmuTest, TbiTagIgnoredForUserTranslation) {
  const uint64_t tagged = 0xAB00000000400010ull;
  const auto r = mmu.translate(tagged, Access::Read, El::El0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.pa, 0x20010u);
}

TEST_F(MmuTest, Stage2XomBlocksReadAllowsFetch) {
  // The heart of the key-concealment design (§5.1 / Appendix A.2): stage-2
  // removes the read permission that stage-1 EL1 mappings imply.
  kmap.map_range(kKernBase + 0x4000, 0x14000, 0x1000,
                 PagePerms::kernel_text());
  s2.restrict_range(0x14000, 0x1000, Stage2Map::xom());
  mmu.set_stage2(&s2);

  const uint64_t xom = kKernBase + 0x4000;
  EXPECT_TRUE(mmu.translate(xom, Access::Fetch, El::El1).ok());
  EXPECT_EQ(mmu.translate(xom, Access::Read, El::El1).fault, FaultKind::Stage2);
  EXPECT_EQ(mmu.translate(xom, Access::Write, El::El1).fault,
            FaultKind::Permission);  // stage-1 already denies writes
}

TEST_F(MmuTest, Stage2DoesNotApplyToHypervisor) {
  s2.restrict_range(0x10000, 0x1000, Stage2Map::xom());
  mmu.set_stage2(&s2);
  EXPECT_TRUE(mmu.translate(kKernBase, Access::Read, El::El2).ok());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Read, El::El1).fault,
            FaultKind::Stage2);
}

TEST_F(MmuTest, Stage2ReadOnlyLocksData) {
  s2.restrict_range(0x10000, 0x1000, Stage2Map::read_only());
  mmu.set_stage2(&s2);
  EXPECT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Write, El::El1).fault,
            FaultKind::Stage2);
}

TEST_F(MmuTest, AccessorHelpers) {
  ASSERT_EQ(mmu.write64(kKernBase + 8, 0xCAFE, El::El1), FaultKind::None);
  const auto r = mmu.read64(kKernBase + 8, El::El1);
  EXPECT_EQ(r.fault, FaultKind::None);
  EXPECT_EQ(r.value, 0xCAFEu);
  EXPECT_EQ(mmu.read64(kKernBase + 0x100000, El::El1).fault,
            FaultKind::Translation);
}

TEST_F(MmuTest, ProtectRangeChangesPerms) {
  kmap.protect_range(kKernBase, 0x1000, PagePerms::kernel_ro());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Write, El::El1).fault,
            FaultKind::Permission);
  EXPECT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
}

TEST(Stage1Map, UnalignedMapThrows) {
  Stage1Map m;
  EXPECT_THROW(m.map_range(0x1001, 0x2000, 0x1000, PagePerms::kernel_rw()),
               camo::Error);
}

// ---------------------------------------------------------------------------
// Fast path: generation counters + micro-TLB (DESIGN.md §3c)
// ---------------------------------------------------------------------------

TEST(Stage1Map, GenerationBumpsOnEveryMutation) {
  Stage1Map m;
  EXPECT_EQ(m.generation(), 0u);
  m.map_page(0x1000, 0x2000, PagePerms::kernel_rw());
  const uint64_t g1 = m.generation();
  EXPECT_GT(g1, 0u);
  m.protect_range(0x1000, 0x1000, PagePerms::kernel_ro());
  const uint64_t g2 = m.generation();
  EXPECT_GT(g2, g1);
  m.unmap_page(0x1000);
  EXPECT_GT(m.generation(), g2);
}

TEST(Stage2Map, GenerationBumpsOnRestrict) {
  Stage2Map m;
  EXPECT_EQ(m.generation(), 0u);
  m.restrict_page(0x4000, Stage2Map::xom());
  const uint64_t g1 = m.generation();
  EXPECT_GT(g1, 0u);
  m.restrict_range(0x8000, 0x2000, Stage2Map::read_only());
  EXPECT_GT(m.generation(), g1);
}

TEST_F(MmuTest, TlbHitRepaysRepeatedTranslation) {
  const auto before = mmu.tlb_stats();
  const auto r1 = mmu.translate(kKernBase + 0x10, Access::Read, El::El1);
  const auto r2 = mmu.translate(kKernBase + 0x18, Access::Read, El::El1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.pa, r1.pa + 8);
  EXPECT_EQ(mmu.tlb_stats().misses, before.misses + 1);
  EXPECT_EQ(mmu.tlb_stats().hits, before.hits + 1);
}

TEST_F(MmuTest, TbiTaggedAndUntaggedShareOneTlbEntry) {
  // The TLB tag is the post-TBI canonical page number, so the tagged form
  // must hit the entry the untagged form installed (and vice versa).
  const uint64_t untagged = kUserBase + 0x10;
  const uint64_t tagged = 0xAB00000000400010ull;
  const auto r1 = mmu.translate(untagged, Access::Read, El::El0);
  const auto before = mmu.tlb_stats();
  const auto r2 = mmu.translate(tagged, Access::Read, El::El0);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.pa, r2.pa);
  EXPECT_EQ(mmu.tlb_stats().hits, before.hits + 1) << "tagged form must hit";
  EXPECT_EQ(mmu.tlb_stats().misses, before.misses);
}

TEST_F(MmuTest, NonCanonicalFaultsIdenticallyWithCachesOn) {
  // Warm the TLB with the legitimate pointer, then present its PAC-poisoned
  // (non-canonical) form: it must fault before the probe, for data and fetch
  // alike, exactly as with the fast path off.
  ASSERT_TRUE(mmu.translate(kUserBase, Access::Read, El::El0).ok());
  const uint64_t poisoned = kUserBase | (uint64_t{0x41} << 48);  // bits 54:48
  const auto hits_before = mmu.tlb_stats().hits;
  EXPECT_EQ(mmu.translate(poisoned, Access::Read, El::El0).fault,
            FaultKind::AddressSize);
  EXPECT_EQ(mmu.translate(poisoned, Access::Fetch, El::El0).fault,
            FaultKind::AddressSize);
  EXPECT_EQ(mmu.tlb_stats().hits, hits_before)
      << "a poisoned VA must never hit a cached translation";

  mmu.set_fast_path(false);
  EXPECT_EQ(mmu.translate(poisoned, Access::Read, El::El0).fault,
            FaultKind::AddressSize);
  EXPECT_EQ(mmu.translate(poisoned, Access::Fetch, El::El0).fault,
            FaultKind::AddressSize);
}

TEST_F(MmuTest, FaultingTranslationsAreNeverCached) {
  const uint64_t unmapped = kKernBase + 0x100000;
  EXPECT_EQ(mmu.translate(unmapped, Access::Read, El::El1).fault,
            FaultKind::Translation);
  const auto before = mmu.tlb_stats();
  EXPECT_EQ(mmu.translate(unmapped, Access::Read, El::El1).fault,
            FaultKind::Translation);
  EXPECT_EQ(mmu.tlb_stats().hits, before.hits);
  EXPECT_EQ(mmu.tlb_stats().misses, before.misses + 1);
}

TEST_F(MmuTest, ProtectRangeVisibleOnTheVeryNextAccess) {
  // Warm both the read and write ways, then drop the write permission: the
  // generation bump must invalidate the cached write translation instantly.
  ASSERT_TRUE(mmu.translate(kKernBase, Access::Write, El::El1).ok());
  ASSERT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
  kmap.protect_range(kKernBase, 0x1000, PagePerms::kernel_ro());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Write, El::El1).fault,
            FaultKind::Permission);
  EXPECT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
}

TEST_F(MmuTest, Stage2RestrictVisibleOnTheVeryNextAccess) {
  mmu.set_stage2(&s2);
  ASSERT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());  // warm
  s2.restrict_range(0x10000, 0x1000, Stage2Map::xom());
  EXPECT_EQ(mmu.translate(kKernBase, Access::Read, El::El1).fault,
            FaultKind::Stage2);
}

TEST_F(MmuTest, MapPointerSwapFlushesTlb) {
  // Two address spaces with the same VA mapped to different PAs: the cached
  // entry from the first space must not leak into the second.
  Stage1Map other;
  other.map_range(kUserBase, 0x30000, 0x1000, PagePerms::user_rw());
  const auto r1 = mmu.translate(kUserBase, Access::Read, El::El0);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.pa, 0x20000u);
  mmu.set_user_map(&other);
  const auto r2 = mmu.translate(kUserBase, Access::Read, El::El0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.pa, 0x30000u);
}

TEST_F(MmuTest, FastPathOffTakesNoTlbStats) {
  mmu.set_fast_path(false);
  const auto before = mmu.tlb_stats();
  ASSERT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
  ASSERT_TRUE(mmu.translate(kKernBase, Access::Read, El::El1).ok());
  EXPECT_EQ(mmu.tlb_stats().hits, before.hits);
  EXPECT_EQ(mmu.tlb_stats().misses, before.misses);
}

}  // namespace
}  // namespace camo::mem
