// Guest SMP (DESIGN.md §3h): the deterministic round-robin interleaver, the
// cores=1 compatibility gate, fleet composability, IPI-driven migration, and
// the cross-core trapframe attack's per-core audit attribution.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "attacks/attacks.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/collector.h"
#include "obs/json.h"
#include "par/fleet.h"

namespace camo {
namespace {

kernel::MachineConfig smp_config(unsigned cores, uint64_t quantum = 50) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.kernel.preempt = true;
  cfg.cores = cores;
  // The default quantum (10000) serializes workloads this small onto core 0;
  // a short quantum makes the interleaver actually interleave.
  cfg.smp_quantum = quantum;
  return cfg;
}

/// Three tasks: on two cores this oversubscribes, so the runqueue always
/// holds a parked Runnable task and cross-core migration windows open.
void add_mix(kernel::Machine& m) {
  m.add_user_program(kernel::workloads::yield_loop(10));
  m.add_user_program(kernel::workloads::null_syscall(20));
  m.add_user_program(kernel::workloads::yield_loop(10));
}

/// Everything guest-deterministic a run produces: per-core clocks and retire
/// counts, IPI count and per-cpu retire counters (SMP only), halt code,
/// console, and the full obs trace. Host wall-clock gauges are deliberately
/// excluded — they vary run to run at cores=1 too.
using Fp = std::tuple<std::vector<uint64_t>, uint64_t, std::string,
                      std::string>;

Fp fingerprint(kernel::MachineConfig cfg) {
  cfg.obs.enabled = true;
  kernel::Machine m(cfg);
  add_mix(m);
  m.boot();
  EXPECT_TRUE(m.run());
  std::vector<uint64_t> clocks;
  for (unsigned c = 0; c < m.cores(); ++c) {
    clocks.push_back(m.core(c).cycles());
    clocks.push_back(m.core(c).retired());
  }
  if (m.cores() > 1) {
    clocks.push_back(m.read_global(kernel::kSymIpiCount));
    for (unsigned c = 0; c < m.cores(); ++c)
      clocks.push_back(
          m.stats()->metrics().value("insn.c" + std::to_string(c)));
  }
  return {std::move(clocks), m.halted() ? m.halt_code() : ~uint64_t{0},
          m.console(), m.stats()->chrome_trace_json()};
}

TEST(Smp, TwoRunsBitIdentical) {
  for (const unsigned cores : {2u, 4u}) {
    const Fp a = fingerprint(smp_config(cores));
    const Fp b = fingerprint(smp_config(cores));
    EXPECT_EQ(a, b) << "cores=" << cores
                    << ": the interleaver is not deterministic";
    EXPECT_EQ(std::get<1>(a), kernel::kHaltDone) << "cores=" << cores;
  }
}

TEST(Smp, SingleCoreIgnoresSmpKnobs) {
  // cores=1 is the pre-SMP machine: the interleaver quantum must be
  // completely inert, and no per-cpu counters may appear in the registry.
  kernel::MachineConfig pre_smp;  // untouched cores/smp_quantum defaults
  pre_smp.kernel.protection = compiler::ProtectionConfig::full();
  pre_smp.kernel.log_pac_failures = false;
  pre_smp.kernel.preempt = true;
  const Fp deflt = fingerprint(pre_smp);
  EXPECT_EQ(deflt, fingerprint(smp_config(1, 50)));
  EXPECT_EQ(deflt, fingerprint(smp_config(1, 7)));

  kernel::MachineConfig cfg = smp_config(1);
  cfg.obs.enabled = true;
  kernel::Machine m(cfg);
  add_mix(m);
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.cores(), 1u);
  EXPECT_FALSE(m.stats()->metrics().has_counter("insn.c0"))
      << "uniprocessor registries must not grow per-cpu counters";
}

TEST(Smp, SecondariesExecuteAndTasksMigrate) {
  kernel::MachineConfig cfg = smp_config(2);
  kernel::Machine m(cfg);
  add_mix(m);
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kernel::kHaltDone);
  ASSERT_EQ(m.cores(), 2u);
  EXPECT_GT(m.core(1).retired(), 0u) << "core 1 never ran";
  EXPECT_GE(m.read_global(kernel::kSymIpiCount), 1u)
      << "an oversubscribed runqueue must kick the peer core";
  unsigned off_core0 = 0;
  for (unsigned pid = 1; pid <= 3; ++pid)
    if (m.read_u64(m.task_struct(pid) + kernel::task::kCpu) != 0)
      ++off_core0;
  EXPECT_GE(off_core0, 1u) << "no task ever migrated off core 0";
}

TEST(Smp, FleetComposableAcrossJobs) {
  // N independent 2-core machines sharded across 4 host threads must land
  // on exactly the serial results: guest SMP and host fleet parallelism are
  // orthogonal by construction.
  const auto factory = [](size_t i) {
    kernel::MachineConfig cfg = smp_config(2);
    cfg.machine_id = static_cast<unsigned>(i);
    auto m = std::make_unique<kernel::Machine>(cfg);
    m->add_user_program(kernel::workloads::yield_loop(5 + i));
    m->add_user_program(kernel::workloads::null_syscall(10 + i));
    m->add_user_program(kernel::workloads::yield_loop(5));
    return m;
  };
  const auto tenant = [](size_t, kernel::Machine& m) {
    m.boot();
    EXPECT_TRUE(m.run());
    std::vector<uint64_t> r;
    for (unsigned c = 0; c < m.cores(); ++c) {
      r.push_back(m.core(c).cycles());
      r.push_back(m.core(c).retired());
    }
    r.push_back(m.halt_code());
    return r;
  };
  par::Pool serial(1), wide(4);
  const auto a = par::run_fleet(serial, 4, factory, tenant);
  const auto b = par::run_fleet(wide, 4, factory, tenant);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i)
    EXPECT_EQ(a.results[i], b.results[i]) << "machine " << i;
}

TEST(Smp, TrapframeMigrationAttackAttributedToDestinationCore) {
  std::string bundle;
  const auto rep =
      attacks::run_named_attack("trapframe-migration", "full", &bundle);
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->outcome, attacks::Outcome::Detected) << rep->detail;
  EXPECT_GE(rep->trace_auth_failures, 1u);

  // The bundle's audit stream must attribute the failure to core 1 — the
  // destination of the migration, where the corrupted trapframe was
  // authenticated — and carry a non-trivial causal chain back to the
  // signing key's install.
  const auto root = obs::json::Value::parse(bundle);
  ASSERT_TRUE(root.has_value());
  const obs::json::Value* audit = root->get("audit");
  ASSERT_NE(audit, nullptr);
  ASSERT_TRUE(audit->is_array());
  const obs::json::Value* fail = nullptr;
  for (size_t i = 0; i < audit->size(); ++i) {
    const obs::json::Value* e = audit->at(i);
    const obs::json::Value* kind = e->get("kind");
    if (kind != nullptr && kind->is_string() &&
        kind->as_string() == "auth-fail")
      fail = e;
  }
  ASSERT_NE(fail, nullptr) << "no AuthFail event in the audit stream";
  const obs::json::Value* cpu = fail->get("cpu");
  ASSERT_NE(cpu, nullptr) << "AuthFail carries no cpu attribution";
  EXPECT_EQ(cpu->as_number(), 1.0)
      << "the failure must land on the migration's destination core";
  const obs::json::Value* chain = root->get("chain");
  ASSERT_NE(chain, nullptr);
  EXPECT_GE(chain->size(), 2u) << "causal chain must reach the key install";
}

TEST(Smp, AttackRegistryListsTrapframeMigrationLast) {
  // Appended at the end so every pre-SMP matrix artifact keeps its row
  // order (bench_security_matrix baselines index by position).
  const auto& names = attacks::attack_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "trapframe-migration");
}

}  // namespace
}  // namespace camo
