// obs::CoverageMap unit and determinism tests (DESIGN.md §3g).
//
// The determinism claims are the load-bearing part: a coverage bundle is a
// pure function of the retire stream, so it must be byte-identical across
// every fast_path×superblocks combination and across any fleet --jobs
// value. Both are pinned here.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "compiler/instrument.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/coverage.h"
#include "par/fleet.h"
#include "par/pool.h"

namespace {

using namespace camo;  // NOLINT

// ---------------------------------------------------------------------------
// Map mechanics
// ---------------------------------------------------------------------------

TEST(CoverageMap, StraightLineRunIsOneBlock) {
  obs::CoverageMap m;
  for (uint64_t i = 0; i < 5; ++i)
    m.retire(0x1000 + 4 * i, 0x40001000 + 4 * i, 1);
  m.flush();
  ASSERT_EQ(m.unique_blocks(), 1u);
  EXPECT_EQ(m.blocks().at(0x1000).hits, 1u);
  EXPECT_EQ(m.blocks().at(0x1000).max_len, 5u);
  EXPECT_EQ(m.unique_edges(), 0u);
  EXPECT_EQ(m.retired_at(1), 5u);
  EXPECT_EQ(m.retired_total(), 5u);
}

TEST(CoverageMap, BranchSplitsBlocksAndRecordsEdge) {
  obs::CoverageMap m;
  m.retire(0x1000, 0x40001000, 1);
  m.retire(0x1004, 0x40001004, 1);
  m.retire(0x2000, 0x40002000, 1);  // taken branch
  m.retire(0x1000, 0x40001000, 1);  // back again
  m.flush();
  ASSERT_EQ(m.unique_blocks(), 2u);
  EXPECT_EQ(m.blocks().at(0x1000).hits, 2u);
  EXPECT_EQ(m.blocks().at(0x1000).max_len, 2u);
  EXPECT_EQ(m.edges().at({0x1000, 0x2000}), 1u);
  EXPECT_EQ(m.edges().at({0x2000, 0x1000}), 1u);
}

TEST(CoverageMap, PaDiscontinuityStartsNewBlockEvenWhenVaIsContiguous) {
  // Page boundary where the next VA page maps to a distant PA: the map is
  // PA-keyed, so the straight-line run must split.
  obs::CoverageMap m;
  m.retire(0x1FFC, 0x40001FFC, 1);
  m.retire(0x8000, 0x40002000, 1);
  m.flush();
  ASSERT_EQ(m.unique_blocks(), 2u);
  EXPECT_EQ(m.edges().at({0x1FFC, 0x8000}), 1u);
}

TEST(CoverageMap, FlushPreventsSyntheticEdgesAcrossSnapshots) {
  obs::CoverageMap m;
  m.retire(0x1000, 0x40001000, 1);
  m.flush();
  m.retire(0x2000, 0x40002000, 1);
  m.flush();
  // Two blocks, but no edge: the flush forgot the continuation state.
  EXPECT_EQ(m.unique_blocks(), 2u);
  EXPECT_EQ(m.unique_edges(), 0u);
}

TEST(CoverageMap, SnapshotLeavesLiveMapAccumulating) {
  obs::CoverageMap m;
  m.retire(0x1000, 0x40001000, 1);
  const obs::CoverageMap s = m.snapshot();
  EXPECT_EQ(s.blocks().at(0x1000).max_len, 1u);
  m.retire(0x1004, 0x40001004, 1);  // still extends the live run
  m.flush();
  EXPECT_EQ(m.blocks().at(0x1000).max_len, 2u);
}

TEST(CoverageMap, MergeAddsHitsMaxesLengthsAndDedupesRegions) {
  obs::CoverageMap a, b;
  a.retire(0x1000, 0x40001000, 1);
  a.retire(0x1004, 0x40001004, 1);
  b.retire(0x1000, 0x40001000, 0);
  b.retire(0x2000, 0x40002000, 0);
  a.add_region({"f", 0x1000, 8, "", -1});
  b.add_region({"f", 0x1000, 8, "", -1});
  b.add_region({"g", 0x2000, 4, "t", 0});
  a.merge_from(b.snapshot());
  a.flush();
  EXPECT_EQ(a.blocks().at(0x1000).hits, 2u);
  EXPECT_EQ(a.blocks().at(0x1000).max_len, 2u);
  EXPECT_EQ(a.blocks().at(0x2000).hits, 1u);
  EXPECT_EQ(a.edges().at({0x1000, 0x2000}), 1u);
  EXPECT_EQ(a.retired_at(0), 2u);
  EXPECT_EQ(a.retired_at(1), 2u);
  EXPECT_EQ(a.regions().size(), 2u);
}

TEST(CoverageMap, AnyExecutedSeesRunInteriors) {
  obs::CoverageMap m;
  for (uint64_t i = 0; i < 8; ++i)
    m.retire(0x1000 + 4 * i, 0x40001000 + 4 * i, 1);
  m.flush();
  EXPECT_TRUE(m.any_executed(0x1000, 4));
  EXPECT_TRUE(m.any_executed(0x1010, 4));   // interior, not a block start
  EXPECT_TRUE(m.any_executed(0x0FF0, 0x20));  // overlaps the run start
  EXPECT_FALSE(m.any_executed(0x1020, 4));  // one past the run
  EXPECT_FALSE(m.any_executed(0x0F00, 0x100));
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

obs::CoverageMap sample_map() {
  obs::CoverageMap m;
  m.retire(0x1000, 0x40001000, 1);
  m.retire(0x1004, 0x40001004, 1);
  m.retire(0x2000, 0x40002000, 0);
  m.retire(0x1000, 0x40001000, 2);
  m.add_region({"sys_write", 0x2000, 64, "syscall_table", 1});
  m.add_region({"helper", 0x1000, 8, "", -1});
  return m;
}

TEST(CoverageCodec, RoundTripIsByteIdentical) {
  const std::string text = obs::cov_bundle_json(sample_map(), "unit", 3);
  const auto doc = obs::json::Value::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(obs::validate_cov_bundle(*doc), "");
  obs::CovBundle b;
  ASSERT_TRUE(obs::cov_bundle_from_json(*doc, &b));
  EXPECT_EQ(b.label, "unit");
  EXPECT_EQ(b.machines, 3u);
  EXPECT_EQ(b.map.retired_at(0), 1u);
  EXPECT_EQ(b.map.retired_at(1), 2u);
  EXPECT_EQ(b.map.retired_at(2), 1u);
  EXPECT_EQ(obs::cov_bundle_json(b.map, b.label, b.machines), text);
}

TEST(CoverageCodec, ValidatorRejectsCorruptBundles) {
  const std::string text = obs::cov_bundle_json(sample_map(), "unit", 1);
  auto doc = obs::json::Value::parse(text);
  ASSERT_TRUE(doc.has_value());
  doc->set("schema", obs::json::Value("camo-cov/v0"));
  EXPECT_NE(obs::validate_cov_bundle(*doc), "");
  auto doc2 = obs::json::Value::parse(text);
  doc2->set("blocks", obs::json::Value("nope"));
  EXPECT_NE(obs::validate_cov_bundle(*doc2), "");
  obs::CovBundle b;
  EXPECT_FALSE(obs::cov_bundle_from_json(*doc, &b));
}

TEST(CoverageCodec, DiffSeparatesBlockSets) {
  obs::CoverageMap a, b;
  a.retire(0x1000, 0x40001000, 1);
  a.retire(0x3000, 0x40003000, 1);
  b.retire(0x1000, 0x40001000, 1);
  b.retire(0x4000, 0x40004000, 1);
  const obs::CovDiff d = obs::diff_coverage(a, b);
  EXPECT_EQ(d.common, 1u);
  ASSERT_EQ(d.only_a.size(), 1u);
  EXPECT_EQ(d.only_a[0], 0x3000u);
  ASSERT_EQ(d.only_b.size(), 1u);
  EXPECT_EQ(d.only_b[0], 0x4000u);
}

// ---------------------------------------------------------------------------
// Determinism: engine combos and fleet --jobs
// ---------------------------------------------------------------------------

std::string combo_bundle(bool superblocks, bool fast_path) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.kernel.preempt = true;
  cfg.obs.enabled = true;
  cfg.obs.coverage = true;
  cfg.cpu.superblocks = superblocks;
  cfg.cpu.fast_path = fast_path;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(25));
  m.add_user_program(kernel::workloads::yield_loop(10));
  m.boot();
  EXPECT_TRUE(m.run());
  return obs::cov_bundle_json(m.stats()->coverage(), "combo", 1);
}

TEST(CoverageDeterminism, BundleByteIdenticalAcrossAllEngineCombos) {
  const std::string ref = combo_bundle(false, false);
  EXPECT_NE(ref.find("\"schema\": \"camo-cov/v1\""), std::string::npos);
  // Regions prove the annotation ran; EL0 retirements prove user coverage.
  EXPECT_NE(ref.find("syscall_table["), std::string::npos);
  EXPECT_EQ(ref, combo_bundle(false, true));
  EXPECT_EQ(ref, combo_bundle(true, false));
  EXPECT_EQ(ref, combo_bundle(true, true));
}

std::string fleet_bundle(unsigned jobs) {
  par::Pool pool(jobs);
  const auto shared_cache = std::make_shared<kernel::ImageCache>();
  auto result = par::run_fleet(
      pool, 6,
      [&](size_t i) {
        kernel::MachineConfig cfg;
        cfg.kernel.protection = compiler::ProtectionConfig::full();
        cfg.kernel.log_pac_failures = false;
        cfg.obs.enabled = true;
        cfg.obs.coverage = true;
        cfg.machine_id = static_cast<unsigned>(i);
        cfg.image_cache = shared_cache;
        auto m = std::make_unique<kernel::Machine>(cfg);
        // Different workloads per task so the merge actually merges
        // distinct maps, not six copies of one.
        m->add_user_program(kernel::workloads::null_syscall(3 + i));
        return m;
      },
      [](size_t, kernel::Machine& m) {
        m.boot();
        EXPECT_TRUE(m.run());
        return m.cpu().retired();
      });
  return obs::cov_bundle_json(result.coverage, "fleet", 6);
}

TEST(CoverageDeterminism, FleetMergedBundleByteIdenticalAcrossJobs) {
  const std::string serial = fleet_bundle(1);
  EXPECT_NE(serial.find("\"schema\": \"camo-cov/v1\""), std::string::npos);
  EXPECT_EQ(serial, fleet_bundle(4));
}

}  // namespace
