// ISA tests: encode/decode round-trips for every format, field-range
// validation, HINT-space classification, disassembly smoke checks.
#include <gtest/gtest.h>

#include "isa/isa.h"
#include "support/error.h"

namespace camo::isa {
namespace {

Inst mk(Op op) {
  Inst i;
  i.op = op;
  return i;
}

void expect_roundtrip(const Inst& inst) {
  const uint32_t word = encode(inst);
  const Inst back = decode(word);
  EXPECT_EQ(back, inst) << disasm(inst) << " | got " << disasm(back);
}

TEST(IsaEncode, MovwRoundTrip) {
  for (Op op : {Op::MOVZ, Op::MOVK, Op::MOVN}) {
    for (uint8_t hw : {0, 1, 2, 3}) {
      Inst i = mk(op);
      i.rd = 7;
      i.imm = 0xBEEF;
      i.hw = hw;
      expect_roundtrip(i);
    }
  }
}

TEST(IsaEncode, R3RoundTrip) {
  for (Op op : {Op::ADD, Op::SUB, Op::ADDS, Op::SUBS, Op::AND, Op::ORR,
                Op::EOR, Op::MUL, Op::UDIV, Op::LSLV, Op::LSRV, Op::PACGA}) {
    Inst i = mk(op);
    i.rd = 1;
    i.rn = 30;
    i.rm = 31;
    expect_roundtrip(i);
  }
}

TEST(IsaEncode, ImmediateRoundTrip) {
  for (Op op : {Op::ADDI, Op::SUBI, Op::ADDSI, Op::SUBSI, Op::ANDI, Op::ORRI,
                Op::EORI}) {
    for (int64_t imm : {int64_t{0}, int64_t{1}, int64_t{0xFFF}}) {
      Inst i = mk(op);
      i.rd = 3;
      i.rn = 31;
      i.imm = imm;
      expect_roundtrip(i);
    }
  }
}

TEST(IsaEncode, ShiftAndBitfieldRoundTrip) {
  for (Op op : {Op::LSLI, Op::LSRI, Op::ASRI}) {
    Inst i = mk(op);
    i.rd = 2;
    i.rn = 3;
    i.imm = 63;
    expect_roundtrip(i);
  }
  Inst bfi = mk(Op::BFI);
  bfi.rd = 16;
  bfi.rn = 17;
  bfi.lsb = 32;
  bfi.width = 32;
  expect_roundtrip(bfi);
  Inst ubfx = mk(Op::UBFX);
  ubfx.rd = 1;
  ubfx.rn = 2;
  ubfx.lsb = 0;
  ubfx.width = 64;  // full-width extract (encodes as 0)
  expect_roundtrip(ubfx);
}

TEST(IsaEncode, MemRoundTrip) {
  Inst ldr = mk(Op::LDR);
  ldr.rd = 8;
  ldr.rn = 0;
  ldr.imm = 40;  // the f_ops offset from Listing 4
  expect_roundtrip(ldr);

  Inst strb = mk(Op::STRB);
  strb.rd = 1;
  strb.rn = 31;
  strb.imm = 4095;
  expect_roundtrip(strb);

  Inst bad = mk(Op::LDR);
  bad.imm = 7;  // unscaled
  EXPECT_THROW(encode(bad), Error);
}

TEST(IsaEncode, PairRoundTrip) {
  for (Op op : {Op::LDP, Op::STP, Op::LDP_POST, Op::STP_PRE}) {
    for (int64_t imm : {int64_t{-16}, int64_t{0}, int64_t{16}, int64_t{504},
                        int64_t{-512}}) {
      Inst i = mk(op);
      i.rd = 29;
      i.rm = 30;
      i.rn = 31;
      i.imm = imm;
      expect_roundtrip(i);
    }
  }
}

TEST(IsaEncode, BranchRoundTrip) {
  for (Op op : {Op::B, Op::BL}) {
    for (int64_t imm : {int64_t{0}, int64_t{4}, int64_t{-4}, int64_t{1 << 20},
                        int64_t{-(1 << 20)}}) {
      Inst i = mk(op);
      i.imm = imm;
      expect_roundtrip(i);
    }
  }
  for (Cond c : {Cond::EQ, Cond::NE, Cond::LT, Cond::GE, Cond::HI, Cond::AL}) {
    Inst i = mk(Op::BCOND);
    i.cond = c;
    i.imm = -64;
    expect_roundtrip(i);
  }
  for (Op op : {Op::CBZ, Op::CBNZ}) {
    Inst i = mk(op);
    i.rd = 9;
    i.imm = 0x100;
    expect_roundtrip(i);
  }
}

TEST(IsaEncode, RegisterBranchRoundTrip) {
  for (Op op : {Op::BR, Op::BLR, Op::RET, Op::BRAA, Op::BRAB, Op::BLRAA,
                Op::BLRAB}) {
    Inst i = mk(op);
    i.rn = 8;
    i.rm = 31;  // SP modifier for the PAuth forms
    expect_roundtrip(i);
  }
  expect_roundtrip(mk(Op::RETAA));
  expect_roundtrip(mk(Op::RETAB));
}

TEST(IsaEncode, SysRoundTrip) {
  for (uint8_t r = 0; r < static_cast<uint8_t>(SysReg::kCount); ++r) {
    Inst i = mk(Op::MRS);
    i.rd = 5;
    i.sysreg = static_cast<SysReg>(r);
    expect_roundtrip(i);
    i.op = Op::MSR;
    expect_roundtrip(i);
  }
}

TEST(IsaEncode, PacRoundTrip) {
  for (Op op : {Op::PACIA, Op::PACIB, Op::PACDA, Op::PACDB, Op::AUTIA,
                Op::AUTIB, Op::AUTDA, Op::AUTDB, Op::XPACI, Op::XPACD}) {
    Inst i = mk(op);
    i.rd = 30;
    i.rn = 31;  // SP modifier
    expect_roundtrip(i);
  }
}

TEST(IsaEncode, NoOperandRoundTrip) {
  for (Op op : {Op::ERET, Op::NOP, Op::ISB, Op::DAIFSET, Op::DAIFCLR,
                Op::PACIASP, Op::AUTIASP, Op::PACIBSP, Op::AUTIBSP,
                Op::PACIA1716, Op::PACIB1716, Op::AUTIA1716, Op::AUTIB1716,
                Op::XPACLRI}) {
    expect_roundtrip(mk(op));
  }
}

TEST(IsaEncode, Imm16RoundTrip) {
  for (Op op : {Op::SVC, Op::HVC, Op::BRK, Op::HLT}) {
    Inst i = mk(op);
    i.imm = 0xABCD;
    expect_roundtrip(i);
  }
}

TEST(IsaEncode, AdrRoundTrip) {
  for (int64_t imm : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{262143},
                      int64_t{-262144}}) {
    Inst i = mk(Op::ADR);
    i.rd = 16;
    i.imm = imm;
    expect_roundtrip(i);
  }
}

TEST(IsaDecode, UnknownOpcodeIsInvalid) {
  EXPECT_EQ(decode(0x00000000u).op, Op::Invalid);
  EXPECT_EQ(decode(0xFF000000u).op, Op::Invalid);
  // Sys with out-of-range sysreg field decodes to Invalid, not UB.
  Inst i = mk(Op::MRS);
  i.sysreg = SysReg::DAIF;
  uint32_t w = encode(i);
  w = (w & ~0x0000FF00u) | (0xEEu << 8);
  EXPECT_EQ(decode(w).op, Op::Invalid);
}

TEST(IsaEncode, RangeChecks) {
  Inst b = mk(Op::B);
  b.imm = int64_t{1} << 30;
  EXPECT_THROW(encode(b), Error);

  Inst movw = mk(Op::MOVZ);
  movw.imm = 0x10000;
  EXPECT_THROW(encode(movw), Error);

  Inst pair = mk(Op::STP);
  pair.imm = 1024;  // > 63*8
  EXPECT_THROW(encode(pair), Error);
}

TEST(IsaHintSpace, Classification) {
  // The §5.5 compatibility story depends on exactly these being NOPs on
  // pre-8.3 cores.
  for (Op op : {Op::NOP, Op::PACIASP, Op::AUTIASP, Op::PACIBSP, Op::AUTIBSP,
                Op::PACIA1716, Op::PACIB1716, Op::AUTIA1716, Op::AUTIB1716,
                Op::XPACLRI})
    EXPECT_TRUE(is_hint_space(op)) << op_name(op);
  for (Op op : {Op::PACIA, Op::AUTIB, Op::RETAA, Op::BLRAB, Op::PACGA,
                Op::LDR, Op::RET})
    EXPECT_FALSE(is_hint_space(op)) << op_name(op);
}

TEST(IsaHintSpace, PauthClassification) {
  EXPECT_TRUE(is_pauth(Op::PACIB));
  EXPECT_TRUE(is_pauth(Op::RETAB));
  EXPECT_TRUE(is_pauth(Op::PACIB1716));
  EXPECT_FALSE(is_pauth(Op::MOVZ));
  EXPECT_FALSE(is_pauth(Op::MSR));
}

TEST(IsaDisasm, Listing4Shape) {
  // The exact sequence from the paper's Listing 4.
  Inst ldr = mk(Op::LDR);
  ldr.rd = 8;
  ldr.rn = 0;
  ldr.imm = 40;
  EXPECT_EQ(disasm(ldr), "ldr x8, [x0, #40]");

  Inst mov = mk(Op::MOVZ);
  mov.rd = 9;
  mov.imm = 0xFB45;
  EXPECT_EQ(disasm(mov), "movz x9, #0xfb45, lsl #0");

  Inst bfi = mk(Op::BFI);
  bfi.rd = 9;
  bfi.rn = 0;
  bfi.lsb = 16;
  bfi.width = 48;
  EXPECT_EQ(disasm(bfi), "bfi x9, x0, #16, #48");

  Inst aut = mk(Op::AUTDB);
  aut.rd = 8;
  aut.rn = 9;
  EXPECT_EQ(disasm(aut), "autdb x8, x9");

  Inst blr = mk(Op::BLR);
  blr.rn = 8;
  EXPECT_EQ(disasm(blr), "blr x8");
}

TEST(IsaDisasm, SpAndZrNames) {
  EXPECT_EQ(reg_name(31, true), "sp");
  EXPECT_EQ(reg_name(31, false), "xzr");
  EXPECT_EQ(reg_name(29), "fp");
  EXPECT_EQ(reg_name(30), "lr");
  EXPECT_EQ(reg_name(0), "x0");
}

TEST(IsaDisasm, EveryOpHasName) {
  for (size_t i = 1; i < static_cast<size_t>(Op::kCount); ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_NE(std::string(op_name(op)), "");
    EXPECT_NE(std::string(op_name(op)), "<invalid>") << i;
  }
}

}  // namespace
}  // namespace camo::isa
