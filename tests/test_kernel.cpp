// Integration tests of the full system: boot, syscalls, scheduling with
// key switching, the file layer, the §4.6 static-pointer path, hooks,
// modules, preemption, and the §5.4 panic policy — across protection
// configurations including the pre-8.3 compatibility build.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "support/error.h"

namespace camo::kernel {
namespace {

using compiler::BackwardScheme;
using compiler::ProtectionConfig;

MachineConfig config_for(ProtectionConfig prot) {
  MachineConfig cfg;
  cfg.kernel.protection = prot;
  return cfg;
}

TEST(MachineBoot, KernelOnlyBootsToDone) {
  Machine m;  // no user tasks: idle loop sees zero tasks -> done
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_TRUE(m.boot_result().kernel_verify.ok())
      << m.boot_result().kernel_verify.describe();
  EXPECT_TRUE(m.hyp().locked_down());
}

TEST(MachineBoot, KernelImageVerifiesCleanUnderFullProtection) {
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::null_syscall(1));
  m.boot();
  EXPECT_TRUE(m.boot_result().kernel_verify.ok());
  EXPECT_GT(m.boot_result().kernel_verify.words_scanned, 1000u);
}

class AllConfigs : public ::testing::TestWithParam<int> {
 protected:
  static ProtectionConfig prot() {
    switch (GetParam()) {
      case 0: return ProtectionConfig::none();
      case 1: {
        ProtectionConfig c;
        c.backward = BackwardScheme::ClangSp;
        c.forward_cfi = c.dfi = false;
        return c;
      }
      case 2: return ProtectionConfig::backward_only();
      case 3: return ProtectionConfig::full();
      default: {
        ProtectionConfig c = ProtectionConfig::full();
        c.compat_mode = true;
        return c;
      }
    }
  }
};

TEST_P(AllConfigs, SyscallsAndExitWork) {
  Machine m(config_for(prot()));
  const int pid = m.add_user_program(workloads::null_syscall(25));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  // 25 getpid + 1 exit
  EXPECT_EQ(m.read_u64(m.task_struct(static_cast<unsigned>(pid)) +
                       task::kSyscalls),
            26u);
}

TEST_P(AllConfigs, FileReadThroughProtectedFops) {
  Machine m(config_for(prot()));
  m.add_user_program(workloads::read_file(5, 64, FileKind::Ram));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
}

TEST_P(AllConfigs, TwoTasksPingPong) {
  Machine m(config_for(prot()));
  m.add_user_program(workloads::yield_loop(10));
  m.add_user_program(workloads::yield_loop(10));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_u64(m.task_struct(1) + task::kSyscalls), 11u);
  EXPECT_EQ(m.read_u64(m.task_struct(2) + task::kSyscalls), 11u);
}

std::string config_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"none", "clang", "backward", "full",
                                      "compat"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Protections, AllConfigs, ::testing::Range(0, 5),
                         config_name);

TEST(MachineRun, ConsoleWriteReachesHost) {
  Machine m;
  // write_file on the console fd would flood; use load of a program that
  // writes one byte via fd 0 (see workloads::load_module's tail) — instead
  // just use write_file with the console kind.
  m.add_user_program(workloads::write_file(3, 4, FileKind::Console));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.console().size(), 12u);  // 3 writes x 4 bytes (ubuf zeroes)
}

TEST(MachineRun, RamReadReturnsPattern) {
  // ram_read must copy the ramfs pattern into user memory; the download
  // workload checksums it, which only terminates correctly if reads work.
  Machine m;
  m.add_user_program(workloads::download(3));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
}

TEST(MachineRun, StaticWorkSignedAtBootAndCallable) {
  // §4.6 end-to-end: the work_struct.func slot was statically initialised,
  // signed in place by the early-boot .pauth_init walk, and is callable
  // through the protected-call path.
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::queue_work(7));
  m.boot();
  // After linking (before boot runs the walker) the slot holds the raw
  // address.
  const uint64_t slot = m.kernel_symbol(kSymStaticWork) + 8;
  const uint64_t raw = m.kernel_symbol("default_work");
  EXPECT_EQ(m.read_u64(slot), raw);
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  // work ran 7 times, each adding work->data == 1
  EXPECT_EQ(m.read_global(kSymWorkCounter), 7u);
}

TEST(MachineRun, StaticWorkSlotIsSignedAfterBoot) {
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::queue_work(1));
  m.boot();
  const uint64_t slot = m.kernel_symbol(kSymStaticWork) + 8;
  const uint64_t raw = m.kernel_symbol("default_work");
  ASSERT_TRUE(m.run());
  const uint64_t signed_val = m.read_u64(slot);
  EXPECT_NE(signed_val, raw) << "slot must hold a signed pointer";
  EXPECT_EQ(m.cpu().pauth().strip(signed_val), raw);
}

TEST(MachineRun, StaticWorkUnsignedWhenDfiDisabledForwardOff) {
  Machine m(config_for(ProtectionConfig::none()));
  m.add_user_program(workloads::queue_work(2));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymWorkCounter), 2u);
  // With protection off the walker still runs but PAC* are NOPs only if
  // SCTLR bits are off — they are on; however the table is still signed.
  // The calls authenticate symmetrically, so behaviour is identical.
}

TEST(MachineRun, HookRegisterAndCall) {
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::call_hook(5));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymHookCounter), 5u);  // default_hook += 1 each
}

TEST(MachineRun, PreemptiveSchedulingViaTimer) {
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.preempt = true;
  cfg.preempt_timeslice = 5000;
  Machine m(cfg);
  // Two compute-heavy tasks with *no* voluntary yields: only timer IRQs can
  // interleave them.
  m.add_user_program(workloads::image_resize(20));
  m.add_user_program(workloads::image_resize(20));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_GT(m.read_global(kSymJiffies), 4u) << "timer IRQs must have fired";
}

TEST(MachineRun, ModuleLoadsThroughSyscall) {
  Machine m(config_for(ProtectionConfig::full()));
  obj::Program mod;
  auto& init = mod.add_function("drv_init");
  init.frame_push();
  init.mov_sym(9, kSymWorkCounter);
  init.mov_imm(10, 1000);
  init.str(10, 9, 0);
  init.frame_pop_ret();
  const int id = m.register_module("drv", std::move(mod));
  m.add_user_program(workloads::load_module(static_cast<uint64_t>(id)));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymWorkCounter), 1000u);
  EXPECT_EQ(m.console().back(), 'Y');
}

TEST(MachineRun, MaliciousModuleRejectedAtLoad) {
  Machine m(config_for(ProtectionConfig::full()));
  obj::Program mod;
  auto& init = mod.add_function("spy_init");
  init.mrs(0, isa::SysReg::APIBKeyLo);  // key exfiltration
  init.ret();
  const int id = m.register_module("spy", std::move(mod));
  m.add_user_program(workloads::load_module(static_cast<uint64_t>(id)));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.console().back(), 'N');
  EXPECT_FALSE(m.hyp().last_module_verify()->ok());
}

TEST(MachineRun, ModuleWithStaticSignedPointer) {
  // A module's own .pauth_init table is walked at load (§4.6).
  Machine m(config_for(ProtectionConfig::full()));
  obj::Program mod;
  auto& workfn = mod.add_function("drv_work");
  workfn.mov_sym(9, kSymHookCounter);
  workfn.mov_imm(10, 77);
  workfn.str(10, 9, 0);
  workfn.ret();
  mod.add_data_u64("drv_workitem", {0, 0});
  mod.add_abs64("drv_workitem", 8, "drv_work");
  mod.declare_signed_ptr("drv_workitem", 8, kTypeWorkFunc, cpu::PacKey::IB);
  auto& init = mod.add_function("drv2_init");
  init.frame_push();
  init.mov_sym(9, "drv_workitem");
  init.ldr(10, 9, 8);
  init.call_protected(10, 9, kTypeWorkFunc, cpu::PacKey::IB);
  init.frame_pop_ret();
  const int id = m.register_module("drv2", std::move(mod));
  m.add_user_program(workloads::load_module(static_cast<uint64_t>(id)));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.console().back(), 'Y');
  EXPECT_EQ(m.read_global(kSymHookCounter), 77u);
}

TEST(MachineRun, UserKeysSwitchedPerTask) {
  // Each task's thread_struct user keys differ; both tasks run and exit —
  // the exit path restored per-task keys each time or EL0 would misbehave.
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::null_syscall(5));
  m.add_user_program(workloads::null_syscall(5));
  m.boot();
  const uint64_t k1 = m.read_u64(m.task_struct(1) + task::kUserKeys);
  const uint64_t k2 = m.read_u64(m.task_struct(2) + task::kUserKeys);
  // Before boot the slots are zero; populated by early_boot.
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  const uint64_t k1b = m.read_u64(m.task_struct(1) + task::kUserKeys);
  const uint64_t k2b = m.read_u64(m.task_struct(2) + task::kUserKeys);
  EXPECT_NE(k1b, 0u);
  EXPECT_NE(k1b, k2b);
  (void)k1;
  (void)k2;
}

TEST(MachineRun, KernelStacksLayoutMatchesPaper) {
  // 16 KiB stacks (§4.2), 4 KiB aligned, tops congruent modulo 2^16 (§7).
  Machine m;
  m.add_user_program(workloads::null_syscall(1));
  m.add_user_program(workloads::null_syscall(1));
  m.boot();
  ASSERT_TRUE(m.run());
  const uint64_t t1 = m.read_u64(m.task_struct(1) + task::kKstackTop);
  const uint64_t t2 = m.read_u64(m.task_struct(2) + task::kKstackTop);
  EXPECT_EQ(t1 % 0x1000, 0u);
  EXPECT_EQ(t2 - t1, kKernelStackStride);
  EXPECT_EQ(t1 & 0xFFFF, t2 & 0xFFFF);
}

TEST(MachineRun, SavedTaskSpIsSigned) {
  // §5.2: the scheduled-out task's kernel SP is stored signed. Freeze the
  // machine mid-run and inspect a suspended task's KSP slot.
  Machine m(config_for(ProtectionConfig::full()));
  m.add_user_program(workloads::yield_loop(50));
  m.add_user_program(workloads::yield_loop(50));
  m.boot();
  m.run(200000);  // long enough for several switches, not to completion
  bool saw_signed = false;
  for (unsigned pid = 0; pid <= 2; ++pid) {
    const uint64_t ksp = m.read_u64(m.task_struct(pid) + task::kKsp);
    if (ksp == 0) continue;
    if (!m.cpu().config().layout.is_canonical(ksp)) saw_signed = true;
  }
  EXPECT_TRUE(saw_signed) << "at least one suspended task must have a "
                             "PAC-signed saved SP";
}

TEST(MachineRun, Figure4WorkloadsComplete) {
  for (int i = 0; i < 3; ++i) {
    Machine m(config_for(ProtectionConfig::full()));
    switch (i) {
      case 0: m.add_user_program(workloads::image_resize(10)); break;
      case 1: m.add_user_program(workloads::package_build(5)); break;
      default: m.add_user_program(workloads::download(5)); break;
    }
    m.boot();
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.halt_code(), kHaltDone) << "workload " << i;
  }
}

TEST(MachineRun, PacFailurePanicAfterThreshold) {
  // §5.4: repeated authentication failures halt the system. Corrupt the
  // hook pointer and keep calling it: each call faults, the kernel kills
  // the task; spawn enough attackers to cross the threshold.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.pac_failure_threshold = 3;
  Machine m(cfg);
  for (int i = 0; i < 4; ++i) m.add_user_program(workloads::call_hook(2));
  m.boot();
  // Let the kernel initialise, then corrupt the signed hook slot.
  bool corrupted = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_call_hook"),
                         [&](cpu::Cpu&) {
                           if (corrupted) return;
                           corrupted = true;
                           const uint64_t slot = m.kernel_symbol(kSymHookObj);
                           m.write_u64(slot, m.kernel_symbol("alt_hook"));
                         });
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltPacPanic);
  EXPECT_EQ(m.read_global(kSymPacFailCount), 3u);
  EXPECT_NE(m.console().find("PAC fail"), std::string::npos);
}

TEST(MachineRun, SinglePacFailureKillsTaskOnly) {
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.pac_failure_threshold = 100;
  Machine m(cfg);
  m.add_user_program(workloads::call_hook(3));
  m.add_user_program(workloads::null_syscall(10));  // innocent bystander
  m.boot();
  bool corrupted = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_call_hook"), [&](cpu::Cpu&) {
    if (corrupted) return;
    corrupted = true;
    m.write_u64(m.kernel_symbol(kSymHookObj), m.kernel_symbol("alt_hook"));
  });
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone) << "system must survive";
  EXPECT_EQ(m.read_global(kSymPacFailCount), 1u);
  EXPECT_EQ(m.read_u64(m.task_struct(1) + task::kState),
            static_cast<uint64_t>(TaskState::Dead));
  EXPECT_EQ(m.read_u64(m.task_struct(2) + task::kSyscalls), 11u)
      << "other task must finish unharmed";
}

TEST(MachineRun, TrapframeProtectionIsTransparent) {
  // The §8 extension must not break normal operation in any configuration.
  for (const bool compat : {false, true}) {
    MachineConfig cfg = config_for(ProtectionConfig::full());
    cfg.kernel.protection.compat_mode = compat;
    cfg.kernel.protect_trapframe = true;
    Machine m(cfg);
    m.add_user_program(workloads::yield_loop(10));
    m.add_user_program(workloads::read_file(5, 64, FileKind::Ram));
    m.boot();
    ASSERT_TRUE(m.run());
    EXPECT_EQ(m.halt_code(), kHaltDone) << "compat=" << compat;
  }
}

TEST(MachineRun, TrapframeProtectionNopOnPre83Core) {
  // Compat + trapframe protection on a pre-8.3 core: all HINT-space, runs
  // unprotected but correct.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.protection.compat_mode = true;
  cfg.kernel.protect_trapframe = true;
  cfg.cpu.has_pauth = false;
  Machine m(cfg);
  m.add_user_program(workloads::null_syscall(10));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
}

TEST(MachineRun, FpacCoreDetectsAtAuthSite) {
  // ARMv8.6 FPAC semantics: the AUT* itself faults, so detection happens at
  // the authentication site instead of the later dereference.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.cpu.fpac = true;
  cfg.kernel.pac_failure_threshold = 100;
  Machine m(cfg);
  m.add_user_program(workloads::call_hook(2));
  m.add_user_program(workloads::null_syscall(5));
  m.boot();
  bool corrupted = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_call_hook"), [&](cpu::Cpu&) {
    if (corrupted) return;
    corrupted = true;
    m.write_u64(m.kernel_symbol(kSymHookObj), m.kernel_symbol("alt_hook"));
  });
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymPacFailCount), 1u);
  EXPECT_EQ(m.read_u64(m.task_struct(1) + task::kState),
            static_cast<uint64_t>(TaskState::Dead));
}

TEST(MachineRun, ZeroModifierConfigStillFunctional) {
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.protection.apple_zero_modifier = true;
  Machine m(cfg);
  m.add_user_program(workloads::read_file(5, 64, FileKind::Ram));
  m.add_user_program(workloads::queue_work(3));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymWorkCounter), 3u);
}

// ---------------------------------------------------------------------------
// Syscall edge cases and error paths
// ---------------------------------------------------------------------------

namespace {

/// Build a user program from raw builder code; the callback receives the
/// function and a syscall emitter.
obj::Program custom_user(
    const std::function<void(assembler::FunctionBuilder&,
                             std::function<void(Sys)>)>& body) {
  obj::Program p;
  auto& f = p.add_function("_ustart");
  p.add_bss("ubuf", 4096, 16);
  auto sys = [&f](Sys nr) {
    f.movz(8, static_cast<uint16_t>(nr), 0);
    f.svc(0);
  };
  body(f, sys);
  f.movz(8, static_cast<uint16_t>(Sys::Exit), 0);
  f.svc(0);
  return p;
}

}  // namespace

TEST(SyscallEdge, InvalidSyscallNumberReturnsEinval) {
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto sys) {
    f.movz(8, 200, 0);  // out of range
    f.svc(0);
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3008);  // result slot 0
    sys(Sys::GetPid);   // proves the kernel survived
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3016);  // result slot 1
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  const uint64_t ubuf = m.user_symbol(1, "ubuf");
  EXPECT_EQ(static_cast<int64_t>(m.read_user_u64(1, ubuf + 3008)), kEInval);
  EXPECT_EQ(m.read_user_u64(1, ubuf + 3016), 1u);  // pid
}

TEST(SyscallEdge, BadFdReturnsEinval) {
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto sys) {
    f.mov_imm(0, 99);  // fd out of range
    f.mov_sym(1, "ubuf");
    f.mov_imm(2, 16);
    sys(Sys::Read);
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3008);
    f.mov_imm(0, 5);  // valid index, but not open
    f.mov_sym(1, "ubuf");
    f.mov_imm(2, 16);
    sys(Sys::Write);
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3016);
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  const uint64_t ubuf = m.user_symbol(1, "ubuf");
  EXPECT_EQ(static_cast<int64_t>(m.read_user_u64(1, ubuf + 3008)), kEInval);
  EXPECT_EQ(static_cast<int64_t>(m.read_user_u64(1, ubuf + 3016)), kEInval);
}

TEST(SyscallEdge, RamFileWriteReadRoundTrip) {
  // User writes a pattern into the ram file and reads it back — exercises
  // both protected-f_ops call paths and the kernel copy helpers.
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto sys) {
    const auto fill = f.make_label();
    const auto check = f.make_label();
    const auto fail = f.make_label();
    const auto done = f.make_label();
    // fill ubuf[i] = i & 0xff for 96 bytes (crosses a 64-byte block + tail)
    f.mov_sym(9, "ubuf");
    f.movz(10, 0, 0);
    f.bind(fill);
    f.add(11, 9, 10);
    f.strb(10, 11, 0);
    f.add_i(10, 10, 1);
    f.cmp_i(10, 96);
    f.b_cond(isa::Cond::LO, fill);
    // open(ram); write(96); read back into ubuf+2048; compare
    f.mov_imm(0, static_cast<uint64_t>(FileKind::Ram));
    sys(Sys::Open);
    f.mov(20, 0);
    f.mov(0, 20);
    f.mov_sym(1, "ubuf");
    f.mov_imm(2, 96);
    sys(Sys::Write);
    f.mov(0, 20);
    f.mov_sym(1, "ubuf");
    f.add_i(1, 1, 2048);
    f.mov_imm(2, 96);
    sys(Sys::Read);
    f.mov(22, 0);  // bytes read
    f.mov_sym(9, "ubuf");
    f.movz(10, 0, 0);
    f.bind(check);
    f.add(11, 9, 10);
    f.ldrb(12, 11, 0);
    f.add_i(11, 11, 2048);
    f.ldrb(13, 11, 0);
    f.cmp(12, 13);
    f.b_cond(isa::Cond::NE, fail);
    f.add_i(10, 10, 1);
    f.cmp_i(10, 96);
    f.b_cond(isa::Cond::LO, check);
    f.mov_imm(23, 1);  // match
    f.b(done);
    f.bind(fail);
    f.movz(23, 0, 0);
    f.bind(done);
    f.mov_sym(9, "ubuf");
    f.str(22, 9, 3008);
    f.str(23, 9, 3016);
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  const uint64_t ubuf = m.user_symbol(1, "ubuf");
  EXPECT_EQ(m.read_user_u64(1, ubuf + 3008), 96u);
  EXPECT_EQ(m.read_user_u64(1, ubuf + 3016), 1u) << "data must round-trip";
}

TEST(SyscallEdge, RegisterHookSwitchesImplementation) {
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto sys) {
    sys(Sys::CallHook);  // default_hook: +1
    f.mov_imm(0, 1);
    sys(Sys::RegisterHook);  // switch to alt_hook
    sys(Sys::CallHook);      // +2
    sys(Sys::CallHook);      // +2
    f.mov_imm(0, 7);
    sys(Sys::RegisterHook);  // invalid index
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3008);
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.read_global(kSymHookCounter), 5u);
  EXPECT_EQ(static_cast<int64_t>(
                m.read_user_u64(1, m.user_symbol(1, "ubuf") + 3008)),
            kEInval);
}

TEST(SyscallEdge, UserTouchingKernelMemoryIsKilled) {
  // EL0 loads of kernel addresses fault to the EL0-sync handler, which
  // SIGKILLs the offender; other tasks continue.
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto) {
    f.mov_imm(9, kKernelBase);
    f.ldr(10, 9, 0);  // permission fault from EL0
    f.hlt(0x99);      // never reached (HLT is privileged anyway)
  }));
  m.add_user_program(workloads::null_syscall(5));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_u64(m.task_struct(1) + task::kState),
            static_cast<uint64_t>(TaskState::Dead));
  EXPECT_EQ(m.read_u64(m.task_struct(2) + task::kSyscalls), 6u);
  EXPECT_EQ(m.read_global(kSymPacFailCount), 0u) << "not a PAuth event";
}

TEST(SyscallEdge, OpenExhaustionReturnsEinval) {
  Machine m;
  m.add_user_program(custom_user([](auto& f, auto sys) {
    const auto loop = f.make_label();
    f.movz(19, 0, 0);
    f.movz(20, 0, 0);
    f.bind(loop);
    f.mov_imm(0, static_cast<uint64_t>(FileKind::Null));
    sys(Sys::Open);
    // count successes; stop after 20 attempts
    f.lsr_i(9, 0, 63);  // 1 if negative (error)
    f.add(20, 20, 9);
    f.add_i(19, 19, 1);
    f.cmp_i(19, 20);
    f.b_cond(isa::Cond::LO, loop);
    f.mov_sym(9, "ubuf");
    f.str(20, 9, 3008);
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  // 15 slots free (fd0 console pre-opened) -> 5 of 20 attempts fail.
  EXPECT_EQ(m.read_user_u64(1, m.user_symbol(1, "ubuf") + 3008), 5u);
}

TEST(SyscallEdge, GetJiffiesReflectsTimerTicks) {
  MachineConfig cfg;
  cfg.kernel.preempt = true;
  cfg.preempt_timeslice = 3000;
  Machine m(cfg);
  m.add_user_program(custom_user([](auto& f, auto sys) {
    const auto spin = f.make_label();
    f.mov_imm(19, 20000);
    f.bind(spin);
    f.sub_i(19, 19, 1);
    f.cbnz(19, spin);
    sys(Sys::GetJiffies);
    f.mov_sym(9, "ubuf");
    f.str(0, 9, 3008);
  }));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_GT(m.read_user_u64(1, m.user_symbol(1, "ubuf") + 3008), 0u);
}

// ---------------------------------------------------------------------------
// §8 ISA extension: EL2-managed banked kernel keys
// ---------------------------------------------------------------------------

TEST(BankedKeys, WorkloadsRunWithoutKeySwitching) {
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.cpu.banked_keys = true;
  Machine m(cfg);
  m.add_user_program(workloads::read_file(5, 64, FileKind::Ram));
  m.add_user_program(workloads::yield_loop(10));
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymPacFailCount), 0u);
}

TEST(BankedKeys, NullSyscallCheaperThanXomSwitching) {
  // The extension's point: the per-transition key switch disappears.
  auto cycles_for = [](bool banked) {
    MachineConfig cfg = config_for(ProtectionConfig::full());
    cfg.cpu.banked_keys = banked;
    Machine m(cfg);
    m.add_user_program(workloads::null_syscall(200));
    m.boot();
    m.run();
    EXPECT_EQ(m.halt_code(), kHaltDone);
    return m.cpu().cycles();
  };
  const uint64_t xom = cycles_for(false);
  const uint64_t banked = cycles_for(true);
  EXPECT_LT(banked, xom);
  // Per syscall the saving must be at least the 3-key MSR switch (27 cyc).
  EXPECT_GT((xom - banked) / 201, 27u);
}

TEST(BankedKeys, KernelKeysInvisibleToKeyRegisterReads) {
  // Even an MRS of the key registers at EL1 (which §4.1's verifier forbids,
  // but suppose a gadget survived) only sees *user* keys under banking.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.cpu.banked_keys = true;
  Machine m(cfg);
  m.add_user_program(workloads::null_syscall(3));
  m.boot();
  m.run();
  const auto& kk = m.boot_result().keys;
  for (int reg = 0; reg < 10; ++reg) {
    const uint64_t v = m.cpu().sysreg(static_cast<isa::SysReg>(reg));
    EXPECT_NE(v, kk.ib.k0);
    EXPECT_NE(v, kk.ib.w0);
    EXPECT_NE(v, kk.db.k0);
  }
}

TEST(BankedKeys, RopStillDetected) {
  // Protection strength is unchanged; only key logistics differ.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.cpu.banked_keys = true;
  Machine m(cfg);
  m.add_user_program(workloads::stat_file(5));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kSymGadget);
  bool injected = false;
  m.cpu().add_breakpoint(m.kernel_symbol("get_file"), [&](cpu::Cpu& c) {
    if (injected) return;
    injected = true;
    m.write_u64(c.x(isa::kRegFp) + 8, gadget);
  });
  ASSERT_TRUE(m.run());
  EXPECT_GE(m.read_global(kSymPacFailCount), 1u);
  EXPECT_EQ(m.read_global(kSymPwnedFlag), 0u);
}

TEST(BankedKeys, El1SigningIndependentOfKeyRegisters) {
  // Kernel-signed pointers authenticate even after user keys change in the
  // registers — the bank is authoritative at EL1.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.cpu.banked_keys = true;
  Machine m(cfg);
  m.add_user_program(workloads::yield_loop(20));
  m.add_user_program(workloads::yield_loop(20));  // switches rewrite AP regs
  m.boot();
  ASSERT_TRUE(m.run());
  EXPECT_EQ(m.halt_code(), kHaltDone);
}

TEST(MachineStress, SixteenMixedTasksUnderPreemption) {
  // System test: a full mix of workloads, preemptive scheduling, module
  // loading, hooks and the work queue, all at once under full protection.
  MachineConfig cfg = config_for(ProtectionConfig::full());
  cfg.kernel.preempt = true;
  cfg.kernel.protect_trapframe = true;
  cfg.preempt_timeslice = 7000;
  Machine m(cfg);
  obj::Program mod;
  mod.add_function("stress_init").ret();
  const int mod_id = m.register_module("stress", std::move(mod));
  for (int i = 0; i < 3; ++i) {
    m.add_user_program(workloads::yield_loop(20));
    m.add_user_program(workloads::read_file(10, 64, FileKind::Ram));
    m.add_user_program(workloads::queue_work(5));
    m.add_user_program(workloads::image_resize(5));
  }
  m.add_user_program(workloads::call_hook(10));
  m.add_user_program(workloads::open_close(10));
  m.add_user_program(workloads::stat_file(10));
  m.add_user_program(workloads::load_module(static_cast<uint64_t>(mod_id)));
  m.boot();
  ASSERT_TRUE(m.run(400'000'000));
  EXPECT_EQ(m.halt_code(), kHaltDone);
  EXPECT_EQ(m.read_global(kSymPacFailCount), 0u);
  EXPECT_EQ(m.read_global(kSymWorkCounter), 15u);
  EXPECT_EQ(m.read_global(kSymHookCounter), 10u);
  EXPECT_EQ(m.console().back(), 'Y');
  for (unsigned pid = 1; pid <= 16; ++pid)
    EXPECT_EQ(m.read_u64(m.task_struct(pid) + task::kState),
              static_cast<uint64_t>(TaskState::Dead))
        << "pid " << pid;
}

TEST(MachineDeterminism, IdenticalRunsIdenticalCyclesAndConsole) {
  // The EXPERIMENTS.md reproducibility claim: same seed, same config =>
  // bit-identical behaviour.
  auto run_once = [] {
    MachineConfig cfg = config_for(ProtectionConfig::full());
    cfg.seed = 777;
    Machine m(cfg);
    m.add_user_program(workloads::package_build(3));
    m.add_user_program(workloads::write_file(2, 8, FileKind::Console));
    m.boot();
    m.run();
    return std::make_tuple(m.cpu().cycles(), m.cpu().retired(), m.console());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MachineDeterminism, SeedChangesKeysNotBehaviour) {
  auto cycles_for = [](uint64_t seed) {
    MachineConfig cfg = config_for(ProtectionConfig::full());
    cfg.seed = seed;
    Machine m(cfg);
    m.add_user_program(workloads::null_syscall(50));
    m.boot();
    m.run();
    EXPECT_EQ(m.halt_code(), kHaltDone);
    return m.cpu().cycles();
  };
  // Different keys, same instruction stream shape => same cycle count.
  EXPECT_EQ(cycles_for(1), cycles_for(999));
}

TEST(MachineBoot, AddProgramAfterBootThrows) {
  Machine m;
  m.boot();
  EXPECT_THROW(m.add_user_program(workloads::null_syscall(1)), camo::Error);
}

}  // namespace
}  // namespace camo::kernel
