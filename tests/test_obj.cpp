// Object-format and linker tests: layout, symbols, relocation kinds, the
// .pauth_init table (§4.6), error handling.
#include <gtest/gtest.h>

#include <cstring>

#include "obj/object.h"
#include "support/bits.h"
#include "support/error.h"

namespace camo::obj {
namespace {

constexpr uint64_t kBase = 0xFFFF000000080000ull;

uint64_t read_u64(const Image& img, uint64_t va) {
  for (const auto& s : img.segments)
    if (va >= s.va && va + 8 <= s.va + s.bytes.size()) {
      uint64_t v;
      std::memcpy(&v, &s.bytes[va - s.va], 8);
      return v;
    }
  ADD_FAILURE() << "va not in image";
  return 0;
}

uint32_t read_word(const Image& img, uint64_t va) {
  for (const auto& s : img.segments)
    if (va >= s.va && va + 4 <= s.va + s.bytes.size()) {
      uint32_t v;
      std::memcpy(&v, &s.bytes[va - s.va], 4);
      return v;
    }
  ADD_FAILURE() << "va not in image";
  return 0;
}

TEST(Linker, LaysOutSectionsPageAligned) {
  Program p;
  auto& f = p.add_function("f");
  f.nop();
  f.ret();
  p.add_rodata_u64("ro", {1, 2, 3});
  p.add_data_u64("rw", {4});
  p.add_bss("zero", 64);

  const Image img = Linker::link(p, kBase);
  EXPECT_EQ(img.symbol("f"), kBase);
  EXPECT_EQ(img.symbol("ro") % 4096, 0u);  // first rodata symbol
  EXPECT_GT(img.symbol("rw"), img.symbol("ro"));
  EXPECT_GT(img.symbol("zero"), img.symbol("rw"));
  EXPECT_EQ(img.symbol("rw") % 4096, 0u);
  EXPECT_EQ(read_u64(img, img.symbol("ro") + 8), 2u);
  EXPECT_EQ(read_u64(img, img.symbol("rw")), 4u);
  EXPECT_EQ(img.base_va(), kBase);
  EXPECT_GT(img.end_va(), img.symbol("zero"));
}

TEST(Linker, FunctionSizesRecorded) {
  Program p;
  auto& f = p.add_function("f");
  f.nop();
  f.nop();
  f.ret();
  const Image img = Linker::link(p, kBase);
  EXPECT_EQ(img.function_sizes.at("f"), 12u);
}

TEST(Linker, BranchRelocationAcrossFunctions) {
  Program p;
  auto& caller = p.add_function("caller");
  caller.bl_sym("callee");
  caller.ret();
  auto& callee = p.add_function("callee");
  callee.ret();

  const Image img = Linker::link(p, kBase);
  const uint32_t w = read_word(img, img.symbol("caller"));
  const isa::Inst inst = isa::decode(w);
  EXPECT_EQ(inst.op, isa::Op::BL);
  EXPECT_EQ(img.symbol("caller") + static_cast<uint64_t>(inst.imm),
            img.symbol("callee"));
}

TEST(Linker, MovSymMaterializesAbsoluteAddress) {
  Program p;
  auto& f = p.add_function("f");
  f.mov_sym(0, "blob");
  f.ret();
  p.add_data_u64("blob", {0});

  const Image img = Linker::link(p, kBase);
  const uint64_t target = img.symbol("blob");
  uint64_t acc = 0;
  for (int i = 0; i < 4; ++i) {
    const isa::Inst inst =
        isa::decode(read_word(img, kBase + static_cast<uint64_t>(i) * 4));
    acc = camo::insert_bits(acc, 16u * inst.hw, 16,
                            static_cast<uint64_t>(inst.imm));
  }
  EXPECT_EQ(acc, target);
}

TEST(Linker, AdrSymRelocates) {
  Program p;
  auto& f = p.add_function("f");
  f.adr_sym(3, "anchor");
  f.ret();
  auto& g = p.add_function("anchor");
  g.ret();

  const Image img = Linker::link(p, kBase);
  const isa::Inst inst = isa::decode(read_word(img, kBase));
  EXPECT_EQ(inst.op, isa::Op::ADR);
  EXPECT_EQ(kBase + static_cast<uint64_t>(inst.imm), img.symbol("anchor"));
}

TEST(Linker, Abs64PopulatesOpsTable) {
  // The kernel ops-structure pattern: .rodata table of function pointers.
  Program p;
  auto& read_fn = p.add_function("myfs_read");
  read_fn.ret();
  auto& write_fn = p.add_function("myfs_write");
  write_fn.ret();
  p.add_rodata_u64("myfs_ops", {0, 0});
  p.add_abs64("myfs_ops", 0, "myfs_read");
  p.add_abs64("myfs_ops", 8, "myfs_write");

  const Image img = Linker::link(p, kBase);
  EXPECT_EQ(read_u64(img, img.symbol("myfs_ops")), img.symbol("myfs_read"));
  EXPECT_EQ(read_u64(img, img.symbol("myfs_ops") + 8),
            img.symbol("myfs_write"));
}

TEST(Linker, PauthInitTableSerialized) {
  // DECLARE_WORK-style static initialisation (§4.6).
  Program p;
  auto& f = p.add_function("worker_fn");
  f.ret();
  p.add_data_u64("my_work", {0, 0});           // {data, func}
  p.add_abs64("my_work", 8, "worker_fn");      // static initialiser
  p.declare_signed_ptr("my_work", 8, 0x1234, cpu::PacKey::IB);

  const Image img = Linker::link(p, kBase);
  ASSERT_EQ(img.pauth_init.size(), 1u);
  EXPECT_EQ(img.pauth_table_count, 1u);
  const auto& e = img.pauth_init[0];
  EXPECT_EQ(e.container_va, img.symbol("my_work"));
  EXPECT_EQ(e.slot_va, img.symbol("my_work") + 8);
  EXPECT_EQ(e.type_id, 0x1234u);
  EXPECT_EQ(e.key, cpu::PacKey::IB);

  // Serialized form in .rodata: slot, container, type_id, key.
  const uint64_t t = img.pauth_table_va;
  EXPECT_EQ(img.symbol("__pauth_init_table"), t);
  EXPECT_EQ(read_u64(img, t), e.slot_va);
  EXPECT_EQ(read_u64(img, t + 8), e.container_va);
  const uint64_t meta = read_u64(img, t + 16);
  EXPECT_EQ(meta & 0xFFFF, 0x1234u);
  EXPECT_EQ((meta >> 16) & 0xFF, static_cast<uint64_t>(cpu::PacKey::IB));
}

TEST(Linker, ExternSymbolsResolve) {
  Program p;
  auto& f = p.add_function("mod_init");
  f.bl_sym("kernel_export");
  f.ret();
  EXPECT_THROW(Linker::link(p, kBase), camo::Error);
  const Image img =
      Linker::link(p, kBase, {{"kernel_export", kBase - 0x1000}});
  const isa::Inst inst = isa::decode(read_word(img, kBase));
  EXPECT_EQ(kBase + static_cast<uint64_t>(inst.imm), kBase - 0x1000);
}

TEST(Linker, DuplicateSymbolRejected) {
  Program p;
  p.add_function("dup").ret();
  p.add_function("dup").ret();
  EXPECT_THROW(Linker::link(p, kBase), camo::Error);
}

TEST(Linker, UnexpandedPseudoRejected) {
  Program p;
  auto& f = p.add_function("f");
  f.frame_push();
  f.frame_pop_ret();
  EXPECT_THROW(Linker::link(p, kBase), camo::Error);
}

TEST(Linker, UnalignedBaseStillWorksForFunctions) {
  // Functions are 8-aligned within text; base itself must be page aligned
  // for segment mapping, which load_image checks — linker accepts any base.
  Program p;
  p.add_function("a").ret();
  p.add_function("b").ret();
  const Image img = Linker::link(p, kBase);
  EXPECT_EQ(img.symbol("b") % 8, 0u);
}

TEST(Disassembler, AnnotatesBranchTargets) {
  Program p;
  auto& caller = p.add_function("caller");
  caller.bl_sym("callee");
  caller.ret();
  auto& callee = p.add_function("callee");
  callee.nop();
  callee.ret();
  const Image img = Linker::link(p, kBase);
  const std::string dis = disassemble_function(img, "caller");
  EXPECT_NE(dis.find("caller:"), std::string::npos);
  EXPECT_NE(dis.find("bl "), std::string::npos);
  EXPECT_NE(dis.find("<callee>"), std::string::npos);
  EXPECT_NE(dis.find("ret"), std::string::npos);
}

TEST(Disassembler, WholeImageSortedByAddress) {
  Program p;
  p.add_function("bbb").ret();
  p.add_function("aaa").ret();
  const Image img = Linker::link(p, kBase);
  const std::string dis = disassemble_image(img);
  // bbb was added first => lower address => printed first despite the name.
  EXPECT_LT(dis.find("bbb:"), dis.find("aaa:"));
}

TEST(Disassembler, RejectsNonFunctions) {
  Program p;
  p.add_function("f").ret();
  p.add_rodata_u64("blob", {1});
  const Image img = Linker::link(p, kBase);
  EXPECT_THROW(disassemble_function(img, "blob"), camo::Error);
  EXPECT_THROW(disassemble_function(img, "missing"), camo::Error);
}

TEST(Image, SymbolLookupErrors) {
  Program p;
  p.add_function("f").ret();
  const Image img = Linker::link(p, kBase);
  EXPECT_TRUE(img.has_symbol("f"));
  EXPECT_FALSE(img.has_symbol("g"));
  EXPECT_THROW(img.symbol("g"), camo::Error);
}

}  // namespace
}  // namespace camo::obj
