// Snapshot/fork machines (DESIGN.md §3j).
//
// The contract under test: a machine populated by Machine::fork() from a
// booted template's snapshot is bit-identical to a machine that booted
// fresh — same per-core clocks and retire counts, same halt code and
// console, same trace-ring bytes and same audit stream — for every engine
// combination, core count and host job count. Plus the memory half of the
// contract: forks are copy-on-write views of one shared page store, so a
// child's writes are invisible to the template and to sibling forks, and
// per-page write generations only ever move forward within each child.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/abi.h"
#include "kernel/machine.h"
#include "kernel/snapshot.h"
#include "kernel/workloads.h"
#include "mem/phys.h"
#include "obs/digest.h"
#include "obs/flight.h"
#include "par/fleet.h"
#include "par/pool.h"

namespace camo::kernel {
namespace {

struct Engines {
  bool fast_path = false;
  bool superblocks = false;
  bool traces = false;
};

constexpr Engines kEngineCombos[] = {
    {false, false, false},  // reference interpreter
    {true, false, false},   // predecode fast path
    {true, true, false},    // superblocks
    {true, true, true},     // trace tier
};

MachineConfig snap_config(const Engines& e, unsigned cores,
                          std::shared_ptr<SnapshotCache> snap_cache = nullptr,
                          std::shared_ptr<ImageCache> img_cache = nullptr) {
  MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.kernel.preempt = true;
  cfg.cpu.fast_path = e.fast_path;
  cfg.cpu.superblocks = e.superblocks;
  cfg.cpu.traces = e.traces;
  cfg.cores = cores;
  cfg.smp_quantum = 50;  // real interleaving at this workload size
  cfg.obs.enabled = true;
  cfg.snapshot_cache = std::move(snap_cache);
  cfg.image_cache = std::move(img_cache);
  return cfg;
}

void add_workload(Machine& m) {
  m.add_user_program(workloads::null_syscall(25));
  m.add_user_program(workloads::yield_loop(10));
}

// Field-wise encodings of the observability streams: comparing field by
// field (rather than memcmp of the structs) keeps padding bytes out of the
// equality and makes a mismatch print as a readable integer diff.
std::vector<uint64_t> encode_trace(const std::vector<obs::TraceEvent>& es) {
  std::vector<uint64_t> out;
  out.reserve(es.size() * 9);
  for (const obs::TraceEvent& e : es) {
    out.push_back(e.cycles);
    out.push_back(e.pc);
    out.push_back(e.a);
    out.push_back(e.b);
    out.push_back(static_cast<uint64_t>(e.kind));
    out.push_back(e.el);
    out.push_back(e.k1);
    out.push_back(e.k2);
    out.push_back(e.imm);
  }
  return out;
}

std::vector<uint64_t> encode_audit(const std::vector<obs::AuditEvent>& es) {
  std::vector<uint64_t> out;
  out.reserve(es.size() * 16);
  for (const obs::AuditEvent& e : es) {
    out.push_back(e.cycles);
    out.push_back(e.pc);
    out.push_back(e.ptr);
    out.push_back(e.ptr2);
    out.push_back(e.modifier);
    out.push_back(e.lr);
    out.push_back(e.prov);
    out.push_back(e.machine);
    out.push_back(static_cast<uint64_t>(e.kind));
    out.push_back(e.key);
    out.push_back(e.el);
    out.push_back(e.mclass);
    out.push_back(e.bank);
    out.push_back(e.aux);
    out.push_back(e.cpu);
    out.push_back(e.imm);
  }
  return out;
}

/// Everything the bit-identity contract covers, from one completed run.
struct RunRecord {
  std::vector<uint64_t> clocks;  ///< per-core {cycles, retired}
  uint64_t halt = 0;
  std::string console;
  std::vector<uint64_t> trace;
  std::vector<uint64_t> audit;

  bool operator==(const RunRecord& o) const {
    return clocks == o.clocks && halt == o.halt && console == o.console &&
           trace == o.trace && audit == o.audit;
  }
};

RunRecord record_run(Machine& m) {
  RunRecord r;
  EXPECT_TRUE(m.run());
  for (unsigned c = 0; c < m.cores(); ++c) {
    r.clocks.push_back(m.core(c).cycles());
    r.clocks.push_back(m.core(c).retired());
  }
  r.halt = m.halt_code();
  r.console = m.console();
  const obs::Collector* st = m.stats();
  EXPECT_NE(st, nullptr);
  r.trace = encode_trace(st->ring().snapshot());
  r.audit = encode_audit(st->audit_log().snapshot());
  return r;
}

RunRecord fresh_boot_reference(const Engines& e, unsigned cores) {
  Machine m(snap_config(e, cores));  // no caches: the classic boot path
  add_workload(m);
  m.boot();
  EXPECT_FALSE(m.forked());
  return record_run(m);
}

// ---------------------------------------------------------------------------
// Tentpole contract: a forked fleet is bit-identical to fresh boots across
// every engine combo × core count × job count.
// ---------------------------------------------------------------------------

TEST(Snapshot, ForkedFleetBitIdenticalToFreshBootAcrossCombos) {
  for (const unsigned cores : {1u, 2u}) {
    for (const Engines& e : kEngineCombos) {
      const RunRecord ref = fresh_boot_reference(e, cores);
      const std::string where =
          "cores=" + std::to_string(cores) +
          " fp=" + std::to_string(e.fast_path) +
          " sb=" + std::to_string(e.superblocks) +
          " tr=" + std::to_string(e.traces);
      for (const unsigned jobs : {1u, 4u}) {
        auto snap_cache = std::make_shared<SnapshotCache>();
        auto img_cache = std::make_shared<ImageCache>();
        par::Pool pool(jobs);
        struct Out {
          RunRecord rec;
          bool forked = false;
        };
        auto fleet = par::run_fleet(
            pool, 3,
            [&](size_t) {
              auto m = std::make_unique<Machine>(
                  snap_config(e, cores, snap_cache, img_cache));
              add_workload(*m);
              return m;
            },
            [](size_t, Machine& m) {
              m.boot();
              Out o;
              o.rec = record_run(m);
              o.forked = m.forked();
              return o;
            });
        unsigned forks = 0;
        for (const Out& o : fleet.results) {
          EXPECT_EQ(o.rec, ref) << where << " jobs=" << jobs;
          forks += o.forked ? 1 : 0;
        }
        // Exactly one template boot per signature; the other two forked.
        EXPECT_EQ(forks, 2u) << where << " jobs=" << jobs;
        EXPECT_EQ(snap_cache->stats().misses, 1u) << where;
        EXPECT_EQ(snap_cache->stats().hits, 2u) << where;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CoW isolation: a child's writes are invisible to the template and to
// sibling forks; page generations move only forward within the writer.
// ---------------------------------------------------------------------------

TEST(Snapshot, CowIsolationBetweenTemplateAndForks) {
  auto snap_cache = std::make_shared<SnapshotCache>();
  auto img_cache = std::make_shared<ImageCache>();
  const auto make = [&] {
    auto m = std::make_unique<Machine>(
        snap_config(kEngineCombos[3], 1, snap_cache, img_cache));
    add_workload(*m);
    m->boot();
    return m;
  };
  auto tmpl = make();  // first boot per signature: the template
  auto child1 = make();
  auto child2 = make();
  EXPECT_FALSE(tmpl->forked());
  EXPECT_TRUE(child1->forked());
  EXPECT_TRUE(child2->forked());

  const mem::PhysicalMemory& pm1 = child1->mmu().phys();
  ASSERT_TRUE(pm1.cow());
  EXPECT_EQ(pm1.cow_pages(), 0u);  // fresh fork: every page still shared
  EXPECT_EQ(pm1.cow_pages() + pm1.shared_pages(), pm1.page_count());

  std::vector<uint64_t> gens_before(pm1.page_count());
  for (uint64_t p = 0; p < pm1.page_count(); ++p)
    gens_before[p] = pm1.page_generation(p);

  // The attacker's write primitive against a kernel global, on child1 only.
  const uint64_t before = tmpl->read_global(kSymPwnedFlag);
  child1->write_global(kSymPwnedFlag, 0x5AFE5AFE5AFE5AFEull);
  EXPECT_EQ(child1->read_global(kSymPwnedFlag), 0x5AFE5AFE5AFE5AFEull);
  EXPECT_EQ(tmpl->read_global(kSymPwnedFlag), before);
  EXPECT_EQ(child2->read_global(kSymPwnedFlag), before);

  // Exactly one page privatized by the aligned u64 write; generations are
  // monotonic within the writer and untouched in the siblings.
  EXPECT_EQ(pm1.cow_pages(), 1u);
  EXPECT_EQ(pm1.cow_pages() + pm1.shared_pages(), pm1.page_count());
  uint64_t bumped = 0;
  for (uint64_t p = 0; p < pm1.page_count(); ++p) {
    EXPECT_GE(pm1.page_generation(p), gens_before[p]) << "page " << p;
    bumped += pm1.page_generation(p) != gens_before[p] ? 1 : 0;
  }
  EXPECT_EQ(bumped, 1u);
  const mem::PhysicalMemory& pm2 = child2->mmu().phys();
  for (uint64_t p = 0; p < pm2.page_count(); ++p)
    EXPECT_EQ(pm2.page_generation(p), gens_before[p]) << "page " << p;

  // The tampered child is quarantined by CoW: template and untouched
  // sibling still run to the same bit-identical completion.
  const RunRecord a = record_run(*tmpl);
  const RunRecord b = record_run(*child2);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Double fork: one snapshot stamps out any number of children directly
// through take_snapshot()/fork(), all bit-identical to a fresh boot.
// ---------------------------------------------------------------------------

TEST(Snapshot, DoubleForkFromOneSnapshot) {
  const Engines& e = kEngineCombos[2];
  const RunRecord ref = fresh_boot_reference(e, 1);

  auto snap_cache = std::make_shared<SnapshotCache>();
  Machine tmpl(snap_config(e, 1, snap_cache));
  add_workload(tmpl);
  tmpl.boot();
  const MachineSnapshot snap = tmpl.take_snapshot();
  EXPECT_TRUE(snap.pages != nullptr);
  EXPECT_TRUE(snap.boot != nullptr);
  EXPECT_EQ(snap.cores.size(), 1u);

  for (int i = 0; i < 2; ++i) {
    Machine child(snap_config(e, 1, snap_cache));
    add_workload(child);
    child.fork(snap);  // directly, bypassing the cache
    EXPECT_TRUE(child.forked());
    EXPECT_EQ(record_run(child), ref) << "fork #" << i;
  }
  // The template itself still runs to the same completion after donating
  // its snapshot (take_snapshot is non-destructive).
  EXPECT_EQ(record_run(tmpl), ref);
}

// ---------------------------------------------------------------------------
// Mid-run snapshot: capture after N steps, fork, and both machines converge
// to identical final state — checked through the flight-recorder digest
// path (obs/digest.h) on top of the usual run record.
// ---------------------------------------------------------------------------

TEST(Snapshot, MidRunSnapshotReplaysViaFlightDigest) {
  const Engines& e = kEngineCombos[1];
  auto snap_cache = std::make_shared<SnapshotCache>();

  Machine a(snap_config(e, 1, snap_cache));
  add_workload(a);
  a.boot();
  ASSERT_FALSE(a.run(4000));  // part-way: budget exhausted, not halted
  const MachineSnapshot mid = a.take_snapshot();

  Machine b(snap_config(e, 1, snap_cache));
  add_workload(b);
  b.fork(mid);
  EXPECT_TRUE(b.forked());

  // Same architectural state at the fork point: the flight digest covers
  // registers, PSTATE, key banks with provenance and MMU epochs.
  const auto digest_of = [](const Machine& m) {
    obs::FlightSnapshot s;
    m.fill_snapshot(s);
    return obs::snapshot_digest(s, m.cpu().cycles(), m.cpu().retired());
  };
  EXPECT_EQ(digest_of(b), digest_of(a));

  // Both continue to the same bit-identical completion.
  const RunRecord ra = record_run(a);
  const RunRecord rb = record_run(b);
  EXPECT_EQ(rb.clocks, ra.clocks);
  EXPECT_EQ(rb.halt, ra.halt);
  EXPECT_EQ(rb.console, ra.console);
  EXPECT_EQ(rb.trace, ra.trace);
  EXPECT_EQ(rb.audit, ra.audit);
  EXPECT_EQ(digest_of(b), digest_of(a));
}

}  // namespace
}  // namespace camo::kernel
