// Divergence bisector tests (DESIGN.md §3g).
//
// The exactness claim is pinned against an oracle: a machine pair advanced
// one retirement at a time, comparing obs::snapshot_digest after every
// step, finds the true first divergent retirement; bisect_divergence —
// which only probes O(log) points — must report the same index.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "compiler/instrument.h"
#include "kernel/bisect.h"
#include "kernel/workloads.h"
#include "obs/digest.h"
#include "obs/divergence.h"

namespace {

using namespace camo;  // NOLINT

kernel::BisectSide standard_side(const std::string& label, bool superblocks,
                                 bool fast_path) {
  kernel::BisectSide s;
  s.label = label;
  s.cfg.kernel.protection = compiler::ProtectionConfig::full();
  s.cfg.kernel.log_pac_failures = false;
  s.cfg.kernel.preempt = true;
  s.cfg.cpu.superblocks = superblocks;
  s.cfg.cpu.fast_path = fast_path;
  s.setup = [](kernel::Machine& m) {
    m.add_user_program(kernel::workloads::null_syscall(25));
    m.add_user_program(kernel::workloads::yield_loop(10));
  };
  return s;
}

// One-shot SP corruption at the first execution of sys_getpid: the handler
// and the trapframe restore path both address [SP], so the shift persists
// past the exception return (see tools/cov_tool.h).
void add_perturbation(kernel::BisectSide* s) {
  s->prepare = [](kernel::Machine& m) {
    auto fired = std::make_shared<bool>(false);
    m.cpu().add_breakpoint(m.kernel_symbol("sys_getpid"),
                           [fired](cpu::Cpu& c) {
                             if (*fired) return;
                             *fired = true;
                             c.set_sp(c.sp() - 16);
                           });
  };
}

uint64_t digest_of(const kernel::Machine& m) {
  obs::FlightSnapshot s;
  m.fill_snapshot(s);
  return obs::snapshot_digest(s, m.cpu().cycles(), m.cpu().retired());
}

std::unique_ptr<kernel::Machine> build_side(const kernel::BisectSide& s) {
  auto m = std::make_unique<kernel::Machine>(s.cfg);
  if (s.setup) s.setup(*m);
  m->boot();
  if (s.prepare) s.prepare(*m);
  return m;
}

/// Advance exactly one retirement (IRQ deliveries consume run() budget
/// without retiring, so a single run(1) is not enough).
bool step_one(kernel::Machine& m) {
  const uint64_t before = m.cpu().retired();
  while (!m.halted() && m.cpu().retired() == before) m.cpu().run(1);
  return m.cpu().retired() == before + 1;
}

/// Ground truth by exhaustive single-stepping: the 1-based index of the
/// first retirement after which the two sides' digests differ (0 = never).
uint64_t oracle_first_divergence(const kernel::BisectSide& a,
                                 const kernel::BisectSide& b,
                                 uint64_t limit) {
  auto ma = build_side(a);
  auto mb = build_side(b);
  for (uint64_t n = 1; n <= limit; ++n) {
    const bool sa = step_one(*ma);
    const bool sb = step_one(*mb);
    if (digest_of(*ma) != digest_of(*mb)) return n;
    if (!sa || !sb) break;  // both halted in lockstep
  }
  return 0;
}

TEST(Bisect, EngineCombosConverge) {
  const obs::DivergenceReport r = kernel::bisect_divergence(
      standard_side("interp", false, false), standard_side("sb", true, true));
  EXPECT_FALSE(r.diverged);
  EXPECT_TRUE(r.a.halted);
  EXPECT_TRUE(r.b.halted);
  EXPECT_EQ(r.a.digest, r.b.digest);
  EXPECT_GT(r.compared, 0u);
}

TEST(Bisect, LocalizesSeededPerturbationExactly) {
  kernel::BisectSide a = standard_side("clean", true, true);
  kernel::BisectSide b = standard_side("perturbed", true, true);
  add_perturbation(&b);

  const uint64_t truth = oracle_first_divergence(a, b, 50'000);
  ASSERT_GT(truth, 0u) << "perturbation did not perturb";

  kernel::BisectOptions opts;
  opts.digest_interval = 64;
  const obs::DivergenceReport r = kernel::bisect_divergence(a, b, opts);
  ASSERT_TRUE(r.diverged);
  EXPECT_EQ(r.first_divergent, truth);
  EXPECT_EQ(r.compared, truth - 1);
  EXPECT_EQ(r.a.retired, truth);
  EXPECT_EQ(r.b.retired, truth);
  EXPECT_NE(r.a.digest, r.b.digest);
  EXPECT_FALSE(r.a.ring.empty());
  EXPECT_FALSE(r.b.ring.empty());
  // The captured rings agree up to the divergence point: the final retired
  // instruction is the same PC on both sides (the state after differs).
  EXPECT_EQ(r.a.ring.back().pc, r.b.ring.back().pc);
}

TEST(Bisect, FirstDivergentIsIntervalInvariant) {
  kernel::BisectSide a = standard_side("clean", true, true);
  kernel::BisectSide b = standard_side("perturbed", true, true);
  add_perturbation(&b);
  kernel::BisectOptions coarse;
  coarse.digest_interval = 2048;
  kernel::BisectOptions fine;
  fine.digest_interval = 16;
  const obs::DivergenceReport rc = kernel::bisect_divergence(a, b, coarse);
  const obs::DivergenceReport rf = kernel::bisect_divergence(a, b, fine);
  ASSERT_TRUE(rc.diverged);
  ASSERT_TRUE(rf.diverged);
  EXPECT_EQ(rc.first_divergent, rf.first_divergent);
}

TEST(Bisect, BundleRoundTripsThroughValidator) {
  kernel::BisectSide a = standard_side("clean", true, true);
  kernel::BisectSide b = standard_side("perturbed", true, true);
  add_perturbation(&b);
  const obs::DivergenceReport r = kernel::bisect_divergence(a, b);
  ASSERT_TRUE(r.diverged);
  const std::string text = obs::div_bundle_json(r);
  const auto doc = obs::json::Value::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(obs::validate_div_bundle(*doc), "");
  EXPECT_NE(text.find("camo-div/v1"), std::string::npos);
  EXPECT_NE(text.find("perturbed"), std::string::npos);
}

TEST(Digest, FnvMatchesReferenceVector) {
  // FNV-1a 64-bit of the bytes 0x01 0x00 ... (one u64, little-endian).
  obs::StateDigest d;
  d.add(1);
  uint64_t h = 14695981039346656037ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (i == 0) ? 1u : 0u;
    h *= 1099511628211ull;
  }
  EXPECT_EQ(d.value(), h);
  // Order sensitivity: (1, 2) != (2, 1).
  obs::StateDigest ab, ba;
  ab.add(1);
  ab.add(2);
  ba.add(2);
  ba.add(1);
  EXPECT_NE(ab.value(), ba.value());
}

}  // namespace
