// Shared test harness: a minimal simulated machine with a kernel-half
// mapping, PAuth keys installed, and halt-vectors, for tests that execute
// guest code outside the full kernel environment.
#pragma once

#include <gtest/gtest.h>

#include "assembler/builder.h"
#include "cpu/cpu.h"
#include "mem/mmu.h"

namespace camo::testing {

constexpr uint64_t kHText = 0xFFFF000000080000ull;
constexpr uint64_t kHData = 0xFFFF000000100000ull;
constexpr uint64_t kHStackTop = 0xFFFF000000140000ull;
constexpr uint64_t kHVbar = 0xFFFF000000060000ull;

class SimHarness {
 public:
  explicit SimHarness(cpu::Cpu::Config cfg = {})
      : mmu(pm, cfg.layout), core(mmu, cfg) {
    kmap.map_range(kHText, 0x10000, 0x10000, mem::PagePerms::kernel_text());
    kmap.map_range(kHData, 0x30000, 0x10000, mem::PagePerms::kernel_rw());
    kmap.map_range(kHStackTop - 0x10000, 0x40000, 0x10000,
                   mem::PagePerms::kernel_rw());
    kmap.map_range(kHVbar, 0x60000, 0x2000, mem::PagePerms::kernel_text());
    mmu.set_kernel_map(&kmap);

    core.set_sysreg(isa::SysReg::SCTLR_EL1,
                    isa::kSctlrEnIA | isa::kSctlrEnIB | isa::kSctlrEnDA |
                        isa::kSctlrEnDB);
    for (int i = 0; i < 10; ++i)
      core.set_sysreg(static_cast<isa::SysReg>(i),
                      0x9E3779B97F4A7C15ull * static_cast<uint64_t>(i + 1));
    core.set_sysreg(isa::SysReg::VBAR_EL1, kHVbar);
    core.set_sp_el(mem::El::El1, kHStackTop);

    install_halt_vector(cpu::Cpu::kVecSyncEl1, 0xE1);
    install_halt_vector(cpu::Cpu::kVecIrqEl1, 0xE2);
    install_halt_vector(cpu::Cpu::kVecSyncEl0, 0xE3);
    install_halt_vector(cpu::Cpu::kVecIrqEl0, 0xE4);
  }

  void install_halt_vector(uint64_t offset, uint16_t code) {
    assembler::FunctionBuilder f("vec");
    f.hlt(code);
    write_words(kHVbar + offset, f.assemble().words);
  }

  void write_words(uint64_t va, const std::vector<uint32_t>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto t = mmu.translate(va + i * 4, mem::Access::Fetch, mem::El::El2);
      ASSERT_TRUE(t.ok()) << "harness: text not mapped";
      pm.write32(t.pa, words[i]);
    }
  }

  /// Assemble at kHText and run to halt.
  void run(const assembler::FunctionBuilder& f, uint64_t max_steps = 200000) {
    write_words(kHText, f.assemble().words);
    core.pc = kHText;
    core.run(max_steps);
  }

  mem::PhysicalMemory pm{1 << 20};
  mem::Stage1Map kmap;
  mem::Mmu mmu;
  cpu::Cpu core;
};

}  // namespace camo::testing
