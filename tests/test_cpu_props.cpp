// CPU property tests: ALU/flag semantics checked against host arithmetic
// over random operands, and PAuth-unit algebraic properties (sign/auth
// identity, poison canonicality, strip idempotence, modifier/key
// sensitivity) over random pointers.
#include <gtest/gtest.h>

#include "cpu/pauth.h"
#include "support/format.h"
#include "core/modifier.h"
#include "harness.h"
#include "support/rng.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using camo::testing::kHData;
using camo::testing::SimHarness;
using cpu::PacKey;
using isa::Cond;

// ---------------------------------------------------------------------------
// ALU semantics vs host arithmetic
// ---------------------------------------------------------------------------

struct AluCase {
  const char* name;
  void (*emit)(FunctionBuilder&);  // x2 = f(x0, x1)
  uint64_t (*host)(uint64_t, uint64_t);
};

const AluCase kAluCases[] = {
    {"add", [](FunctionBuilder& f) { f.add(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a + b; }},
    {"sub", [](FunctionBuilder& f) { f.sub(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a - b; }},
    {"and", [](FunctionBuilder& f) { f.and_(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a & b; }},
    {"orr", [](FunctionBuilder& f) { f.orr(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a | b; }},
    {"eor", [](FunctionBuilder& f) { f.eor(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a ^ b; }},
    {"mul", [](FunctionBuilder& f) { f.mul(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a * b; }},
    {"udiv", [](FunctionBuilder& f) { f.udiv(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return b == 0 ? 0 : a / b; }},
    {"lslv", [](FunctionBuilder& f) { f.lslv(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a << (b & 63); }},
    {"lsrv", [](FunctionBuilder& f) { f.lsrv(2, 0, 1); },
     [](uint64_t a, uint64_t b) { return a >> (b & 63); }},
};

class AluProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(AluProperty, MatchesHostSemantics) {
  const AluCase& c = kAluCases[GetParam()];
  Xoshiro256 rng(0xA10 + GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    uint64_t a = rng.next(), b = rng.next();
    if (trial < 8) {  // edge operands
      const uint64_t edges[] = {0, 1, ~uint64_t{0}, uint64_t{1} << 63};
      a = edges[trial % 4];
      b = edges[(trial / 4) % 4];
    }
    SimHarness sim;
    FunctionBuilder f("t");
    f.mov_imm(0, a);
    f.mov_imm(1, b);
    c.emit(f);
    f.hlt(1);
    sim.run(f);
    ASSERT_EQ(sim.core.x(2), c.host(a, b))
        << c.name << "(" << a << ", " << b << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, AluProperty,
                         ::testing::Range<size_t>(0, std::size(kAluCases)),
                         [](const auto& info) {
                           return std::string(kAluCases[info.param].name);
                         });

TEST(FlagProperty, SubsConditionsMatchSignedComparisons) {
  // For every pair, the B.cond outcome after CMP must match the host's
  // signed/unsigned comparison of the operands.
  Xoshiro256 rng(0xF1A6);
  struct CondCase {
    Cond cond;
    bool (*host)(uint64_t, uint64_t);
  };
  const CondCase conds[] = {
      {Cond::EQ, [](uint64_t a, uint64_t b) { return a == b; }},
      {Cond::NE, [](uint64_t a, uint64_t b) { return a != b; }},
      {Cond::HS, [](uint64_t a, uint64_t b) { return a >= b; }},
      {Cond::LO, [](uint64_t a, uint64_t b) { return a < b; }},
      {Cond::HI, [](uint64_t a, uint64_t b) { return a > b; }},
      {Cond::LS, [](uint64_t a, uint64_t b) { return a <= b; }},
      {Cond::GE,
       [](uint64_t a, uint64_t b) {
         return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
       }},
      {Cond::LT,
       [](uint64_t a, uint64_t b) {
         return static_cast<int64_t>(a) < static_cast<int64_t>(b);
       }},
      {Cond::GT,
       [](uint64_t a, uint64_t b) {
         return static_cast<int64_t>(a) > static_cast<int64_t>(b);
       }},
      {Cond::LE,
       [](uint64_t a, uint64_t b) {
         return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
       }},
  };
  for (int trial = 0; trial < 40; ++trial) {
    uint64_t a = rng.next(), b = rng.next();
    if (trial % 5 == 0) b = a;                       // equality edge
    if (trial % 7 == 0) a = uint64_t{1} << 63;       // sign edge
    for (const auto& cc : conds) {
      SimHarness sim;
      FunctionBuilder f("t");
      const auto taken = f.make_label();
      f.mov_imm(0, a);
      f.mov_imm(1, b);
      f.cmp(0, 1);
      f.b_cond(cc.cond, taken);
      f.mov_imm(2, 0);
      f.hlt(1);
      f.bind(taken);
      f.mov_imm(2, 1);
      f.hlt(1);
      sim.run(f);
      ASSERT_EQ(sim.core.x(2) == 1, cc.host(a, b))
          << "cond " << isa::cond_name(cc.cond) << " a=" << a << " b=" << b;
    }
  }
}

// ---------------------------------------------------------------------------
// PAuth unit properties
// ---------------------------------------------------------------------------

class PauthProperty : public ::testing::Test {
 protected:
  mem::VaLayout layout;
  cpu::PauthUnit unit{mem::VaLayout{}};
  Xoshiro256 rng{0xBAC};

  uint64_t random_kernel_ptr() {
    return layout.canonical((uint64_t{1} << 55) | rng.next());
  }
  uint64_t random_user_ptr() { return rng.next() & mask(47); }
  qarma::Key128 random_key() { return {rng.next(), rng.next()}; }
};

TEST_F(PauthProperty, SignAuthIdentity) {
  for (int i = 0; i < 500; ++i) {
    const uint64_t ptr = i % 2 ? random_kernel_ptr() : random_user_ptr();
    const uint64_t mod = rng.next();
    const auto key = random_key();
    const uint64_t s = unit.add_pac(ptr, mod, key);
    const auto a = unit.auth(s, mod, key, PacKey::DB);
    ASSERT_TRUE(a.ok) << hex(ptr);
    ASSERT_EQ(a.ptr, layout.canonical(ptr));
  }
}

TEST_F(PauthProperty, SignedPointerPreservesAddressBits) {
  for (int i = 0; i < 500; ++i) {
    const uint64_t ptr = random_kernel_ptr();
    const uint64_t s = unit.add_pac(ptr, rng.next(), random_key());
    ASSERT_EQ(s & mask(layout.va_bits), ptr & mask(layout.va_bits));
    ASSERT_EQ((s >> 55) & 1, (ptr >> 55) & 1) << "bit 55 must survive";
  }
}

TEST_F(PauthProperty, WrongModifierPoisonsNonCanonical) {
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    const uint64_t ptr = random_kernel_ptr();
    const auto key = random_key();
    const uint64_t s = unit.add_pac(ptr, 1, key);
    const auto a = unit.auth(s, 2, key, PacKey::DB);
    if (a.ok) {
      ++accepted;  // 2^-15 chance per trial
      continue;
    }
    ASSERT_FALSE(layout.is_canonical(a.ptr)) << hex(a.ptr);
  }
  EXPECT_LE(accepted, 2);
}

TEST_F(PauthProperty, WrongKeyPoisons) {
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    const uint64_t ptr = random_kernel_ptr();
    const uint64_t mod = rng.next();
    const uint64_t s = unit.add_pac(ptr, mod, random_key());
    accepted += unit.auth(s, mod, random_key(), PacKey::IB).ok;
  }
  EXPECT_LE(accepted, 2);
}

TEST_F(PauthProperty, StripIsIdempotentAndSignatureFree) {
  for (int i = 0; i < 200; ++i) {
    const uint64_t ptr = random_kernel_ptr();
    const uint64_t s = unit.add_pac(ptr, rng.next(), random_key());
    const uint64_t x1 = unit.strip(s);
    ASSERT_EQ(x1, ptr);
    ASSERT_EQ(unit.strip(x1), x1);
  }
}

TEST_F(PauthProperty, PacBitsWellDistributed) {
  // Over random pointers, every PAC bit position must flip sometimes (no
  // stuck-at bits in the scatter).
  const auto key = random_key();
  uint64_t ones = 0, zeros = 0;
  const uint64_t m = layout.pac_mask(uint64_t{1} << 55);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t s = unit.add_pac(random_kernel_ptr(), rng.next(), key);
    ones |= s & m;
    zeros |= ~s & m;
  }
  EXPECT_EQ(ones, m);
  EXPECT_EQ(zeros, m);
}

TEST_F(PauthProperty, UserPointerTagSurvivesUnderTbi) {
  for (int i = 0; i < 200; ++i) {
    const uint64_t tagged = (rng.next() << 56) | random_user_ptr();
    const uint64_t s = unit.add_pac(tagged, 7, random_key());
    ASSERT_EQ(s >> 56, tagged >> 56) << "TBI tag byte must pass through";
  }
}

TEST_F(PauthProperty, PacgaIsKeyAndInputSensitive) {
  const auto k1 = random_key(), k2 = random_key();
  const uint64_t a = unit.pacga(1, 2, k1);
  EXPECT_NE(a, unit.pacga(1, 2, k2));
  EXPECT_NE(a, unit.pacga(1, 3, k1));
  EXPECT_NE(a, unit.pacga(2, 2, k1));
  EXPECT_EQ(a & mask(32), 0u) << "low half must be zero";
}

// §6.3 compliance: the deliberate ISO-C breakage the paper documents.
TEST_F(PauthProperty, MemcpyOfSignedPointerBreaksAsDocumented) {
  // A signed pointer byte-copied into a different containing object fails
  // authentication there (modifier embeds the object address).
  const auto key = random_key();
  const uint64_t obj_a = 0xFFFF000000180040ull;
  const uint64_t obj_b = 0xFFFF000000190080ull;
  const uint64_t target = 0xFFFF000000081000ull;
  const uint64_t s =
      unit.add_pac(target, core::object_modifier(obj_a, 7), key);
  // "memcpy": the bit pattern moves unchanged to object B's slot.
  const auto a = unit.auth(s, core::object_modifier(obj_b, 7), key, PacKey::DB);
  EXPECT_FALSE(a.ok);
}

TEST_F(PauthProperty, NullPointerIsNotAllZeroBitsWhenSigned) {
  // The paper (§6.3): "Null pointer values are represented by zero bits"
  // does not hold — a signed NULL carries a PAC.
  const uint64_t signed_null = unit.add_pac(0, 0x1234, random_key());
  EXPECT_NE(signed_null, 0u);
  EXPECT_EQ(unit.strip(signed_null), 0u);
}

}  // namespace
}  // namespace camo
