// Unit tests for the support utilities (bits, PRNG, formatting).
#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/format.h"
#include "support/rng.h"

namespace camo {
namespace {

TEST(Bits, MaskWidths) {
  EXPECT_EQ(mask(0), 0u);
  EXPECT_EQ(mask(1), 1u);
  EXPECT_EQ(mask(16), 0xFFFFu);
  EXPECT_EQ(mask(63), 0x7FFFFFFFFFFFFFFFu);
  EXPECT_EQ(mask(64), ~uint64_t{0});
}

TEST(Bits, ExtractInsertRoundTrip) {
  const uint64_t v = 0x0123456789ABCDEFull;
  for (unsigned lsb : {0u, 4u, 16u, 48u, 55u}) {
    for (unsigned w : {1u, 4u, 8u}) {
      const uint64_t field = bits(v, lsb, w);
      EXPECT_EQ(insert_bits(v, lsb, w, field), v) << lsb << " " << w;
    }
  }
}

TEST(Bits, InsertReplacesOnlyField) {
  EXPECT_EQ(insert_bits(0, 8, 8, 0xAB), 0xAB00u);
  EXPECT_EQ(insert_bits(~uint64_t{0}, 0, 16, 0), 0xFFFFFFFFFFFF0000u);
  // Excess field bits must be truncated, not smeared.
  EXPECT_EQ(insert_bits(0, 4, 4, 0xFF), 0xF0u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x7F, 8), 0x7F);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x8000000000000000ull, 64),
            std::numeric_limits<int64_t>::min());
}

TEST(Bits, Rotations) {
  EXPECT_EQ(ror64(1, 1), uint64_t{1} << 63);
  EXPECT_EQ(ror64(0xF, 4), 0xF000000000000000u);
  EXPECT_EQ(rol64(ror64(0xDEADBEEF, 13), 13), 0xDEADBEEFu);
  EXPECT_EQ(ror64(0x1234, 0), 0x1234u);
}

TEST(Bits, Alignment) {
  EXPECT_TRUE(is_aligned(0x1000, 0x1000));
  EXPECT_FALSE(is_aligned(0x1001, 0x1000));
  EXPECT_EQ(align_up(0x1001, 0x1000), 0x2000u);
  EXPECT_EQ(align_up(0x1000, 0x1000), 0x1000u);
  EXPECT_EQ(align_down(0x1FFF, 0x1000), 0x1000u);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowBound) {
  Xoshiro256 r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, SplitMixKnownFirstValue) {
  // First output for seed 0 is a well-known SplitMix64 value.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
}

TEST(Format, Hex) {
  EXPECT_EQ(hex(0xDEAD, 8), "0x0000dead");
  EXPECT_EQ(hex_short(0), "0x0");
  EXPECT_EQ(hex(~uint64_t{0}), "0xffffffffffffffff");
}

TEST(Format, Strformat) {
  EXPECT_EQ(strformat("%s-%d", "x", 7), "x-7");
  EXPECT_EQ(strformat("%04x", 0xAB), "00ab");
}

}  // namespace
}  // namespace camo
