// camo-perfdiff tests: schema validation shared with the benches, matching
// and min-of-N semantics, gate direction rules (cost units one-sided,
// everything else exact-gated), and the markdown report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench_schema.h"
#include "obs/json.h"
#include "perfdiff.h"

namespace camo::perfdiff {
namespace {

obs::BenchDoc doc(const std::string& bench,
                  std::vector<obs::BenchSeriesPoint> series) {
  obs::BenchDoc d;
  d.bench = bench;
  d.title = bench;
  d.series = std::move(series);
  return d;
}

obs::BenchSeriesPoint pt(const std::string& config,
                         const std::string& benchmark, double value,
                         const std::string& unit) {
  return {config, benchmark, value, unit, std::nullopt};
}

TEST(PerfDiff, SelfCompareIsCleanPass) {
  const auto base = doc("Figure 3", {pt("none", "null syscall", 100, "cycles/op"),
                                     pt("full", "null syscall", 131, "cycles/op")});
  const auto rep = diff({base}, {base}, {});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.regressed, 0);
  EXPECT_EQ(rep.improved, 0);
  ASSERT_EQ(rep.deltas.size(), 2u);
  for (const auto& d : rep.deltas) EXPECT_EQ(d.status, Status::Ok);
}

TEST(PerfDiff, RegressionBeyondThresholdFailsTheGate) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1100, "cycles/op")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.regressed, 1);
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_EQ(rep.deltas[0].status, Status::Regressed);
  EXPECT_NEAR(rep.deltas[0].pct, 10.0, 1e-9);
}

TEST(PerfDiff, ImprovementPassesAndIsCounted) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 850, "cycles/op")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.improved, 1);
  EXPECT_EQ(rep.deltas[0].status, Status::Improved);
}

TEST(PerfDiff, WithinNoiseThresholdIsOk) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1049, "cycles/op")});
  const auto rep = diff({base}, {cur}, {});  // default threshold 5%
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.deltas[0].status, Status::Ok);
  // A tighter threshold flags the same delta.
  Options tight;
  tight.threshold_pct = 1.0;
  EXPECT_FALSE(diff({base}, {cur}, tight).ok);
}

TEST(PerfDiff, NonCostUnitsAreExactGatedInBothDirections) {
  // A ratio that *drops* 50% is not an "improvement" — for a deterministic
  // simulation it means the behaviour changed, and the gate must say so.
  const auto base = doc("Abl", {pt("parts", "collisions", 40, "pairs")});
  const auto cur = doc("Abl", {pt("parts", "collisions", 20, "pairs")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.deltas[0].status, Status::Changed);
}

TEST(PerfDiff, MissingSeriesFailsUnlessAllowed) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                                pt("full", "write", 900, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.missing, 1);
  Options opts;
  opts.allow_missing = true;
  EXPECT_TRUE(diff({base}, {cur}, opts).ok);
}

TEST(PerfDiff, NewSeriesAllowedByDefaultForbiddenOnRequest) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                               pt("full", "stat", 500, "cycles/op")});
  EXPECT_TRUE(diff({base}, {cur}, {}).ok);
  Options opts;
  opts.allow_new = false;
  const auto rep = diff({base}, {cur}, opts);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.added, 1);
  EXPECT_EQ(rep.deltas.back().status, Status::New);
}

TEST(PerfDiff, MinOfNStripsRepetitionNoise) {
  // Three recorded repetitions on each side; only the minima are compared.
  const auto base = doc("Fig", {pt("full", "read", 1030, "cycles/op"),
                                pt("full", "read", 1000, "cycles/op"),
                                pt("full", "read", 1080, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1100, "cycles/op"),
                               pt("full", "read", 1010, "cycles/op")});
  const auto rep = diff({base}, {cur}, {});
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.deltas[0].baseline, 1000);
  EXPECT_DOUBLE_EQ(rep.deltas[0].current, 1010);
  EXPECT_TRUE(rep.ok);
}

TEST(PerfDiff, SameBenchmarkNameInDifferentBenchesDoesNotCollide) {
  const auto b1 = doc("Fig3", {pt("full", "read", 100, "cycles/op")});
  const auto b2 = doc("Fig4", {pt("full", "read", 900, "cycles/op")});
  const auto rep = diff({b1, b2}, {b1, b2}, {});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.deltas.size(), 2u);
}

TEST(PerfDiff, ZeroBaselineGoingNonzeroIsFlagged) {
  const auto base = doc("Sec", {pt("full", "auth failures", 0, "count")});
  const auto cur = doc("Sec", {pt("full", "auth failures", 3, "count")});
  EXPECT_FALSE(diff({base}, {cur}, {}).ok);
}

TEST(PerfDiff, UnitCostClassification) {
  EXPECT_TRUE(unit_is_cost("cycles"));
  EXPECT_TRUE(unit_is_cost("cycles/op"));
  EXPECT_TRUE(unit_is_cost("ns"));
  EXPECT_TRUE(unit_is_cost("insns"));
  EXPECT_FALSE(unit_is_cost("ratio"));
  EXPECT_FALSE(unit_is_cost("pairs"));
  EXPECT_FALSE(unit_is_cost("tries"));
}

TEST(PerfDiff, InformationalUnitClassification) {
  EXPECT_TRUE(unit_is_informational("insns/s"));
  EXPECT_TRUE(unit_is_informational("ns"));
  EXPECT_TRUE(unit_is_informational("us"));
  EXPECT_TRUE(unit_is_informational("ms"));
  EXPECT_TRUE(unit_is_informational("seconds-host"));
  EXPECT_FALSE(unit_is_informational("cycles"));
  EXPECT_FALSE(unit_is_informational("cycles/op"));
  EXPECT_FALSE(unit_is_informational("ratio"));
  // "ns" is cost-shaped AND informational; informational wins in diff().
  EXPECT_TRUE(unit_is_cost("ns"));
}

TEST(PerfDiff, InformationalSeriesAreReportedButNeverGated) {
  // Host throughput swings wildly between machines; a 10x move in either
  // direction must not fail the gate, but the delta must still be printed.
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                                pt("fastpath-on", "read", 4e6, "insns/s")});
  const auto cur = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                               pt("fastpath-on", "read", 4e7, "insns/s")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.regressed, 0);
  EXPECT_EQ(rep.improved, 0);
  ASSERT_EQ(rep.deltas.size(), 2u);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);
  EXPECT_NEAR(rep.deltas[1].pct, 900.0, 1e-9);
  const std::string md = rep.markdown();
  EXPECT_NE(md.find("info"), std::string::npos) << md;
  EXPECT_NE(md.find("+900.00%"), std::string::npos) << md;
}

TEST(PerfDiff, InformationalWallClockDropNeverImproves) {
  // "ns" is a cost unit by shape but host wall clock by nature: a 50% drop
  // is reported as info, not counted as an improvement or regression.
  const auto base = doc("Fig", {pt("full", "read", 200, "ns")});
  const auto cur = doc("Fig", {pt("full", "read", 100, "ns")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.improved, 0);
  EXPECT_EQ(rep.deltas[0].status, Status::Info);
}

TEST(PerfDiff, InformationalSeriesExemptFromMissingAndNewGates) {
  // Baselines recorded before a host-metric existed (or after it was
  // dropped) must keep passing even under the strictest options.
  Options strict;
  strict.allow_missing = false;
  strict.allow_new = false;
  const auto with = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                                pt("fastpath-on", "read", 4e6, "insns/s")});
  const auto without = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto gained = diff({without}, {with}, strict);
  EXPECT_TRUE(gained.ok) << gained.markdown();
  EXPECT_EQ(gained.added, 0);
  EXPECT_EQ(gained.deltas.back().status, Status::Info);
  const auto lost = diff({with}, {without}, strict);
  EXPECT_TRUE(lost.ok) << lost.markdown();
  EXPECT_EQ(lost.missing, 0);
}

TEST(PerfDiff, FleetSeriesAreInformationalRegardlessOfUnit) {
  EXPECT_TRUE(series_is_informational("fleet.steals"));
  EXPECT_TRUE(series_is_informational("fleet.imbalance"));
  EXPECT_TRUE(series_is_informational("fleet.throughput"));
  EXPECT_FALSE(series_is_informational("guest cycles"));
  EXPECT_FALSE(series_is_informational("nonfleet.thing"));
  // Wall-clock seconds are informational by unit, like ns/us/ms.
  EXPECT_TRUE(unit_is_informational("s"));
  EXPECT_TRUE(unit_is_informational("seconds"));

  // A 10x steal-count swing (host scheduling) never gates, even though its
  // unit ("steals") is otherwise exact-gated; the deterministic cycles
  // series in the same doc still does.
  const auto base = doc("Fleet", {pt("download", "guest cycles", 1000, "cycles"),
                                  pt("fleet", "fleet.steals", 2, "steals"),
                                  pt("fleet", "fleet.imbalance", 1.1, "ratio")});
  const auto cur = doc("Fleet", {pt("download", "guest cycles", 1000, "cycles"),
                                 pt("fleet", "fleet.steals", 20, "steals"),
                                 pt("fleet", "fleet.imbalance", 3.9, "ratio")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok) << rep.markdown();
  ASSERT_EQ(rep.deltas.size(), 3u);
  EXPECT_EQ(rep.deltas[0].status, Status::Ok);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);
  EXPECT_EQ(rep.deltas[2].status, Status::Info);

  // ... but a drifted deterministic series still fails the gate.
  const auto drift = doc("Fleet", {pt("download", "guest cycles", 1200, "cycles"),
                                   pt("fleet", "fleet.steals", 2, "steals"),
                                   pt("fleet", "fleet.imbalance", 1.1, "ratio")});
  EXPECT_FALSE(diff({base}, {drift}, {}).ok);
}

TEST(PerfDiff, HistogramSeriesAreInformationalRegardlessOfUnit) {
  // Quantiles summarize distributions whose exact shape shifts with any
  // instrumentation change; they inform, they never gate.
  EXPECT_TRUE(series_is_informational("hist.pauth.sign_to_auth.p50"));
  EXPECT_TRUE(series_is_informational("hist.key.switch.p99"));
  EXPECT_TRUE(series_is_informational("hist.task.count"));
  EXPECT_FALSE(series_is_informational("histogram.other"));
  EXPECT_TRUE(unit_is_informational("ops/s"));
  EXPECT_TRUE(unit_is_informational("ns/op"));

  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                                pt("full", "hist.sign.p99", 40, "cycles")});
  const auto cur = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                               pt("full", "hist.sign.p99", 400, "cycles")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok) << rep.markdown();
  ASSERT_EQ(rep.deltas.size(), 2u);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);
}

TEST(PerfDiff, CoverageAndDivergenceSeriesAreInformational) {
  // Coverage counters move whenever the attack mix or kernel layout does;
  // they are diagnostic shape (DESIGN.md §3g), never a perf gate — exactly
  // like fleet.* and hist.*.
  EXPECT_TRUE(series_is_informational("cov.blocks"));
  EXPECT_TRUE(series_is_informational("cov.edges"));
  EXPECT_TRUE(series_is_informational("cov.retired.el0"));
  EXPECT_TRUE(series_is_informational("div.first_divergent"));
  EXPECT_FALSE(series_is_informational("coverage.blocks"));
  EXPECT_FALSE(series_is_informational("divergence.first"));

  // A large swing in cov.* must not gate; the deterministic series beside
  // it still does.
  const auto base = doc("Sec", {pt("full", "read", 1000, "cycles/op"),
                                pt("full", "cov.blocks", 50, "count")});
  const auto cur = doc("Sec", {pt("full", "read", 1000, "cycles/op"),
                               pt("full", "cov.blocks", 500, "count")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok) << rep.markdown();
  ASSERT_EQ(rep.deltas.size(), 2u);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);
  const auto drift = doc("Sec", {pt("full", "read", 1100, "cycles/op"),
                                 pt("full", "cov.blocks", 50, "count")});
  EXPECT_FALSE(diff({base}, {drift}, {}).ok);

  // Informational exemption also covers missing/new under strict options:
  // baselines recorded before coverage existed keep passing.
  Options strict;
  strict.allow_missing = false;
  strict.allow_new = false;
  const auto without = doc("Sec", {pt("full", "read", 1000, "cycles/op")});
  EXPECT_TRUE(diff({without}, {base}, strict).ok);
  EXPECT_TRUE(diff({base}, {without}, strict).ok);
}

TEST(PerfDiff, MarkdownReportsRunHeaders) {
  // diff() refuses cross-jobs and cross-engine comparisons, so both sides
  // record jobs=8 and the same engine per sub-case.
  auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  base.jobs = 8;
  base.sb = false;
  const auto rep = diff({base}, {base}, {});
  ASSERT_EQ(rep.headers.size(), 1u);
  EXPECT_EQ(rep.headers[0].bench, "Fig");
  EXPECT_EQ(rep.headers[0].jobs, 8u);
  EXPECT_FALSE(rep.headers[0].sb);
  const std::string md = rep.markdown();
  EXPECT_NE(md.find("jobs=8"), std::string::npos) << md;
  EXPECT_NE(md.find("engine=interp"), std::string::npos) << md;

  auto base2 = base;
  base2.jobs = 2;
  base2.sb = true;
  const std::string md2 = diff({base2}, {base2}, {}).markdown();
  EXPECT_NE(md2.find("jobs=2"), std::string::npos) << md2;
  EXPECT_NE(md2.find("engine=sb"), std::string::npos) << md2;

  // The trace tier reads as its own engine in the header.
  auto base_tr = base2;
  base_tr.trace = true;
  const auto rep_tr = diff({base_tr}, {base_tr}, {});
  ASSERT_EQ(rep_tr.headers.size(), 1u);
  EXPECT_TRUE(rep_tr.headers[0].trace);
  EXPECT_NE(rep_tr.markdown().find("engine=trace"), std::string::npos)
      << rep_tr.markdown();

  // The guest core count rides in the same header line (absent = 1).
  EXPECT_NE(md2.find("cores=1"), std::string::npos) << md2;
  auto base3 = base;
  base3.cores = 2;
  const auto rep3 = diff({base3}, {base3}, {});
  ASSERT_EQ(rep3.headers.size(), 1u);
  EXPECT_EQ(rep3.headers[0].cores, 2u);
  EXPECT_NE(rep3.markdown().find("cores=2"), std::string::npos)
      << rep3.markdown();
}

TEST(PerfDiff, SbHeaderFieldValidatesAndParses) {
  const std::string text = R"({"schema":"camo-bench/v1","bench":"b",)"
                           R"("title":"t","smoke":true,"jobs":4,"sb":false,)"
                           R"("series":[{"config":"c","benchmark":"m",)"
                           R"("value":1,"unit":"cycles"}]})";
  const auto parsed = obs::json::Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_bench_json(*parsed), "");
  const auto d = obs::parse_bench_doc(*parsed, nullptr);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->jobs, 4u);
  EXPECT_FALSE(d->sb);

  // Absent "sb" means the default engine; a non-bool "sb" is rejected.
  const std::string bad = R"({"schema":"camo-bench/v1","bench":"b",)"
                          R"("title":"t","smoke":true,"sb":1,"series":[]})";
  const auto parsed_bad = obs::json::Value::parse(bad);
  ASSERT_TRUE(parsed_bad.has_value());
  EXPECT_NE(obs::validate_bench_json(*parsed_bad), "");
}

TEST(PerfDiff, RefusesCrossJobsComparison) {
  auto base = doc("Fleet", {pt("download", "guest cycles", 1000, "cycles")});
  auto cur = base;
  cur.jobs = 8;  // baseline implicitly jobs = 1
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_NE(rep.error.find("--jobs 1"), std::string::npos) << rep.error;
  EXPECT_NE(rep.error.find("--jobs 8"), std::string::npos) << rep.error;
  EXPECT_NE(rep.markdown().find("FAIL"), std::string::npos);

  // Matching jobs values (even != 1) compare normally, and different bench
  // ids never cross-check jobs.
  base.jobs = 8;
  EXPECT_TRUE(diff({base}, {cur}, {}).ok);
  auto other = doc("Other", {pt("c", "b", 1, "cycles")});
  other.jobs = 4;
  EXPECT_TRUE(diff({base, other}, {cur, other}, {}).ok);
}

TEST(PerfDiff, RefusesCrossCoresComparison) {
  auto base = doc("SMP", {pt("cores=2", "makespan", 1000, "cycles")});
  auto cur = base;
  cur.cores = 2;  // baseline implicitly cores = 1
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_NE(rep.error.find("--cores 1"), std::string::npos) << rep.error;
  EXPECT_NE(rep.error.find("--cores 2"), std::string::npos) << rep.error;
  EXPECT_NE(rep.markdown().find("FAIL"), std::string::npos);

  // Matching cores values compare normally; different bench ids never
  // cross-check cores.
  base.cores = 2;
  EXPECT_TRUE(diff({base}, {cur}, {}).ok);
  auto other = doc("Other", {pt("c", "b", 1, "cycles")});
  other.cores = 4;
  EXPECT_TRUE(diff({base, other}, {cur, other}, {}).ok);
}

TEST(PerfDiff, RefusesCrossEngineComparison) {
  // interp vs sb vs trace recordings measure different host
  // implementations; a diff across any pair is refused outright.
  auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  auto cur = base;
  cur.sb = false;  // baseline implicitly engine=sb
  const auto rep = diff({base}, {cur}, {});
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.deltas.empty());
  EXPECT_NE(rep.error.find("engine=sb"), std::string::npos) << rep.error;
  EXPECT_NE(rep.error.find("engine=interp"), std::string::npos) << rep.error;
  EXPECT_NE(rep.markdown().find("FAIL"), std::string::npos);

  // sb-with-traces vs plain sb is a cross-engine pair too.
  auto traced = base;
  traced.trace = true;
  const auto rep2 = diff({base}, {traced}, {});
  EXPECT_FALSE(rep2.ok);
  EXPECT_NE(rep2.error.find("engine=trace"), std::string::npos) << rep2.error;

  // Matching engines compare normally; different bench ids never
  // cross-check engines.
  EXPECT_TRUE(diff({traced}, {traced}, {}).ok);
  auto other = doc("Other", {pt("c", "b", 1, "cycles")});
  other.sb = false;
  EXPECT_TRUE(diff({traced, other}, {traced, other}, {}).ok);
}

TEST(PerfDiff, TraceSeriesAndHeaderArePerfdiffAware) {
  // fastpath.trace.* telemetry rides under the "trace." prefix:
  // informational regardless of unit, like fleet./hist./cov./div.
  EXPECT_TRUE(series_is_informational("trace.formed"));
  EXPECT_TRUE(series_is_informational("trace.hits"));
  EXPECT_TRUE(series_is_informational("hist.trace.len.p95"));
  EXPECT_FALSE(series_is_informational("tracing.overhead"));

  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                                pt("full", "trace.formed", 4, "count")});
  const auto cur = doc("Fig", {pt("full", "read", 1000, "cycles/op"),
                               pt("full", "trace.formed", 400, "count")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok) << rep.markdown();
  ASSERT_EQ(rep.deltas.size(), 2u);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);

  // "trace" header field: bool, absent means false, non-bool rejected.
  const std::string text = R"({"schema":"camo-bench/v1","bench":"b",)"
                           R"("title":"t","smoke":true,"trace":true,)"
                           R"("series":[{"config":"c","benchmark":"m",)"
                           R"("value":1,"unit":"cycles"}]})";
  const auto parsed = obs::json::Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_bench_json(*parsed), "");
  const auto d = obs::parse_bench_doc(*parsed, nullptr);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->trace);
  EXPECT_TRUE(d->sb);

  const std::string absent = R"({"schema":"camo-bench/v1","bench":"b",)"
                             R"("title":"t","smoke":true,)"
                             R"("series":[{"config":"c","benchmark":"m",)"
                             R"("value":1,"unit":"cycles"}]})";
  const auto parsed_absent = obs::json::Value::parse(absent);
  ASSERT_TRUE(parsed_absent.has_value());
  const auto d2 = obs::parse_bench_doc(*parsed_absent, nullptr);
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(d2->trace);

  const std::string bad = R"({"schema":"camo-bench/v1","bench":"b",)"
                          R"("title":"t","smoke":true,"trace":1,)"
                          R"("series":[]})";
  const auto parsed_bad = obs::json::Value::parse(bad);
  ASSERT_TRUE(parsed_bad.has_value());
  EXPECT_NE(obs::validate_bench_json(*parsed_bad), "");
}

TEST(PerfDiff, SnapshotSeriesAndHeaderArePerfdiffAware) {
  // snap.*/imgcache.* telemetry describes host boot-reuse machinery
  // (DESIGN.md §3j): informational regardless of unit, like fleet./hist./
  // cov./div./trace.
  EXPECT_TRUE(series_is_informational("snap.forks"));
  EXPECT_TRUE(series_is_informational("snap.cow_pages"));
  EXPECT_TRUE(series_is_informational("snap.shared_pages"));
  EXPECT_TRUE(series_is_informational("imgcache.hits"));
  EXPECT_TRUE(series_is_informational("imgcache.misses"));
  EXPECT_TRUE(series_is_informational("hist.snap.cow_pages.p95"));
  EXPECT_FALSE(series_is_informational("snapshot.count"));
  EXPECT_FALSE(series_is_informational("image.bytes"));

  // A swing in snap.* must not gate; the deterministic series beside it
  // still does. Missing/new under strict options is exempt too, so snap-on
  // runs (which add the series) gate cleanly against snap-off baselines.
  const auto base = doc("Sec", {pt("full", "read", 1000, "cycles/op"),
                                pt("full", "snap.forks", 5, "count")});
  const auto cur = doc("Sec", {pt("full", "read", 1000, "cycles/op"),
                               pt("full", "snap.forks", 50, "count")});
  const auto rep = diff({base}, {cur}, {});
  EXPECT_TRUE(rep.ok) << rep.markdown();
  ASSERT_EQ(rep.deltas.size(), 2u);
  EXPECT_EQ(rep.deltas[1].status, Status::Info);
  Options strict;
  strict.allow_missing = false;
  strict.allow_new = false;
  const auto without = doc("Sec", {pt("full", "read", 1000, "cycles/op")});
  EXPECT_TRUE(diff({without}, {base}, strict).ok);
  EXPECT_TRUE(diff({base}, {without}, strict).ok);

  // A snap-header mismatch is NOT refused — snapshot reuse is
  // guest-invisible, every gated series is identical either way — and the
  // report header says how the current run was driven.
  auto snap_on = base;
  snap_on.snap = true;
  const auto rep_mix = diff({base}, {snap_on}, {});
  EXPECT_TRUE(rep_mix.ok) << rep_mix.markdown();
  EXPECT_TRUE(rep_mix.error.empty());
  ASSERT_EQ(rep_mix.headers.size(), 1u);
  EXPECT_TRUE(rep_mix.headers[0].snap);
  EXPECT_NE(rep_mix.markdown().find("snap=on"), std::string::npos)
      << rep_mix.markdown();
  EXPECT_NE(diff({base}, {base}, {}).markdown().find("snap=off"),
            std::string::npos);

  // "snap" header field: bool, absent means false, non-bool rejected.
  const std::string text = R"({"schema":"camo-bench/v1","bench":"b",)"
                           R"("title":"t","smoke":true,"snap":true,)"
                           R"("series":[{"config":"c","benchmark":"m",)"
                           R"("value":1,"unit":"cycles"}]})";
  const auto parsed = obs::json::Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(obs::validate_bench_json(*parsed), "");
  const auto d = obs::parse_bench_doc(*parsed, nullptr);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->snap);

  const std::string absent = R"({"schema":"camo-bench/v1","bench":"b",)"
                             R"("title":"t","smoke":true,)"
                             R"("series":[{"config":"c","benchmark":"m",)"
                             R"("value":1,"unit":"cycles"}]})";
  const auto parsed_absent = obs::json::Value::parse(absent);
  ASSERT_TRUE(parsed_absent.has_value());
  const auto d2 = obs::parse_bench_doc(*parsed_absent, nullptr);
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(d2->snap);

  const std::string bad = R"({"schema":"camo-bench/v1","bench":"b",)"
                          R"("title":"t","smoke":true,"snap":1,)"
                          R"("series":[]})";
  const auto parsed_bad = obs::json::Value::parse(bad);
  ASSERT_TRUE(parsed_bad.has_value());
  EXPECT_NE(obs::validate_bench_json(*parsed_bad), "");
}

TEST(PerfDiff, MarkdownReportNamesTheOffender) {
  const auto base = doc("Fig", {pt("full", "read", 1000, "cycles/op")});
  const auto cur = doc("Fig", {pt("full", "read", 1200, "cycles/op")});
  const std::string md = diff({base}, {cur}, {}).markdown();
  EXPECT_NE(md.find("Fig / full / read"), std::string::npos) << md;
  EXPECT_NE(md.find("REGRESSED"), std::string::npos) << md;
  EXPECT_NE(md.find("+20.00%"), std::string::npos) << md;
  EXPECT_NE(md.find("FAIL"), std::string::npos) << md;
  const std::string ok_md = diff({base}, {base}, {}).markdown();
  EXPECT_NE(ok_md.find("PASS"), std::string::npos) << ok_md;
}

// ---------------------------------------------------------------------------
// Schema plumbing shared with the bench emitters.

TEST(BenchSchema, ParseRoundTripIncludingSeed) {
  const char* text = R"({
    "schema": "camo-bench/v1", "bench": "Fig", "title": "t", "smoke": true,
    "seed": 2024,
    "series": [{"config": "full", "benchmark": "read", "value": 1.5,
                "unit": "cycles/op", "relative": 1.2}]
  })";
  const auto json = obs::json::Value::parse(text);
  ASSERT_TRUE(json.has_value());
  std::string err;
  const auto doc = obs::parse_bench_doc(*json, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->bench, "Fig");
  EXPECT_TRUE(doc->smoke);
  ASSERT_TRUE(doc->seed.has_value());
  EXPECT_EQ(*doc->seed, 2024u);
  ASSERT_EQ(doc->series.size(), 1u);
  EXPECT_EQ(doc->series[0].unit, "cycles/op");
  ASSERT_TRUE(doc->series[0].relative.has_value());
  EXPECT_EQ(doc->jobs, 1u);  // absent means serial
}

TEST(BenchSchema, JobsFieldParsesAndValidates) {
  const char* text = R"({
    "schema": "camo-bench/v1", "bench": "Fleet", "title": "t", "smoke": true,
    "jobs": 8,
    "series": [{"config": "fleet", "benchmark": "fleet.steals", "value": 3,
                "unit": "steals"}]
  })";
  const auto json = obs::json::Value::parse(text);
  ASSERT_TRUE(json.has_value());
  std::string err;
  const auto doc = obs::parse_bench_doc(*json, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->jobs, 8u);

  for (const char* bad : {R"("eight")", "0", "-2"}) {
    const std::string t = std::string(R"({
      "schema": "camo-bench/v1", "bench": "b", "title": "t", "smoke": false,
      "jobs": )") + bad + R"(,
      "series": [{"config": "c", "benchmark": "m", "value": 1, "unit": "u"}]
    })";
    const auto j = obs::json::Value::parse(t);
    ASSERT_TRUE(j.has_value()) << t;
    EXPECT_FALSE(obs::validate_bench_json(*j).empty()) << t;
  }
}

TEST(BenchSchema, CoresFieldParsesAndValidates) {
  const char* text = R"({
    "schema": "camo-bench/v1", "bench": "SMP", "title": "t", "smoke": true,
    "cores": 2,
    "series": [{"config": "cores=2", "benchmark": "makespan", "value": 3,
                "unit": "cycles"}]
  })";
  const auto json = obs::json::Value::parse(text);
  ASSERT_TRUE(json.has_value());
  std::string err;
  const auto doc = obs::parse_bench_doc(*json, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->cores, 2u);

  // Absent means 1 guest core: pre-SMP artifacts parse unchanged.
  const char* absent = R"({
    "schema": "camo-bench/v1", "bench": "b", "title": "t", "smoke": false,
    "series": [{"config": "c", "benchmark": "m", "value": 1, "unit": "u"}]
  })";
  const auto j2 = obs::json::Value::parse(absent);
  ASSERT_TRUE(j2.has_value());
  const auto d2 = obs::parse_bench_doc(*j2, nullptr);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->cores, 1u);

  for (const char* bad : {R"("two")", "0", "-2"}) {
    const std::string t = std::string(R"({
      "schema": "camo-bench/v1", "bench": "b", "title": "t", "smoke": false,
      "cores": )") + bad + R"(,
      "series": [{"config": "c", "benchmark": "m", "value": 1, "unit": "u"}]
    })";
    const auto j = obs::json::Value::parse(t);
    ASSERT_TRUE(j.has_value()) << t;
    EXPECT_FALSE(obs::validate_bench_json(*j).empty()) << t;
  }
}

TEST(BenchSchema, RejectsWrongSchemaAndMalformedSeries) {
  const auto reject = [](const char* text) {
    const auto json = obs::json::Value::parse(text);
    ASSERT_TRUE(json.has_value()) << text;
    EXPECT_FALSE(obs::validate_bench_json(*json).empty()) << text;
  };
  reject(R"({"schema": "camo-bench/v2", "bench": "b", "title": "t",
             "smoke": false, "series": []})");
  reject(R"({"schema": "camo-bench/v1", "bench": "b", "title": "t",
             "smoke": false, "series": []})");  // empty series
  reject(R"({"schema": "camo-bench/v1", "bench": "b", "title": "t",
             "smoke": false,
             "series": [{"config": "c", "benchmark": "m", "unit": "u"}]})");
  reject(R"({"schema": "camo-bench/v1", "bench": "b", "title": "t",
             "smoke": false, "seed": "not-a-number",
             "series": [{"config": "c", "benchmark": "m", "value": 1,
                         "unit": "u"}]})");
}

}  // namespace
}  // namespace camo::perfdiff
