// Superblock execution engine (DESIGN.md §3e): bit-for-bit parity with the
// single-step interpreter across every engine combination, exact max_steps
// budgets, and the invalidation protocol under self-modifying code and
// forged control flow into the middle of cached blocks.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "compiler/instrument.h"
#include "harness.h"
#include "kernel/machine.h"
#include "kernel/workloads.h"
#include "obs/collector.h"
#include "parity.h"

namespace camo {
namespace {

using assembler::FunctionBuilder;
using testing::SimHarness;

/// Assemble a code fragment in isolation and return its words. Fragments are
/// placed at hand-chosen addresses below, so tests can refer to absolute
/// locations (a patch target, a mid-block entry) without the circularity of
/// an address that depends on mov_imm expansion lengths.
template <class Gen>
std::vector<uint32_t> words_of(Gen&& gen) {
  FunctionBuilder f("frag");
  gen(f);
  return f.assemble().words;
}

/// The four engine combinations: superblocks × fast_path. Everything in
/// this file must behave identically under all of them.
class Superblock
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {
 protected:
  bool superblocks() const { return std::get<0>(GetParam()); }
  bool fast_path() const { return std::get<1>(GetParam()); }
  cpu::Cpu::Config cfg() const {
    cpu::Cpu::Config c;
    c.superblocks = superblocks();
    c.fast_path = fast_path();
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(
    EngineCombos, Superblock,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::string(std::get<0>(info.param) ? "SbOn" : "SbOff") +
             (std::get<1>(info.param) ? "FpOn" : "FpOff");
    });

// ---------------------------------------------------------------------------
// SMC straddling a page boundary mid-block.
//
// Layout (two writable+executable kernel pages):
//   page 1: controller at +0x000, patch/loop logic at +0x800, NOP pad from
//           +0xF00 falling through the page boundary
//   page 2: the patch site S at +0x000: `add x0, x0, #K ; br x13`
// Pass 1 executes the pad into page 2 with K=1 (caching both blocks and the
// fall-through chain edge), then a store in page 1 rewrites S to K=2, and
// pass 2 re-runs the same pad → boundary → S path. A stale cached decode of
// page 2 would add 1 again; the page write generation must invalidate it.
// ---------------------------------------------------------------------------

TEST_P(Superblock, SmcAcrossPageBoundaryInvalidatesCachedBlock) {
  SimHarness sim(cfg());
  constexpr uint64_t kWx = 0xFFFF000000200000ull;
  constexpr uint64_t kWxPa = 0x50000;
  mem::PagePerms wx;
  wx.r_el1 = wx.w_el1 = wx.x_el1 = true;
  sim.kmap.map_range(kWx, kWxPa, 0x2000, wx);

  const uint64_t site = kWx + 0x1000;       // patch site: first insn, page 2
  const uint64_t cback = kWx + 0x800;       // loop controller
  const uint64_t pad = kWx + 0xF00;         // NOP run into the boundary
  const uint32_t br13 = words_of([](FunctionBuilder& f) { f.br(13); })[0];
  const uint32_t add2 =
      words_of([](FunctionBuilder& f) { f.add_i(0, 0, 2); })[0];
  const uint64_t patch =
      static_cast<uint64_t>(add2) | (static_cast<uint64_t>(br13) << 32);

  const auto init = words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(9, site);
    f.mov_imm(10, patch);
    f.mov_imm(11, 0);
    f.mov_imm(12, pad);
    f.mov_imm(13, cback);
    f.br(12);
  });
  const auto controller = words_of([&](FunctionBuilder& f) {
    const auto done = f.make_label();
    f.cbnz(11, done);
    f.mov_imm(11, 1);
    f.str(10, 9, 0);  // rewrite S in the already-executed page-2 block
    f.br(12);         // second pass over pad → boundary → patched S
    f.bind(done);
    f.hlt(0x55);
  });
  const auto hot = words_of([&](FunctionBuilder& f) {
    f.add_i(0, 0, 1);  // S: becomes add #2 after the patch
    f.br(13);
  });

  ASSERT_LE(init.size() * 4, 0x800u);
  ASSERT_LE(controller.size() * 4, 0x700u);
  sim.write_words(kWx, init);
  sim.write_words(cback, controller);
  const uint32_t nop = words_of([](FunctionBuilder& f) { f.nop(); })[0];
  sim.write_words(pad, std::vector<uint32_t>(0x100 / 4, nop));
  sim.write_words(site, hot);

  sim.core.pc = kWx;
  sim.core.run(100000);
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0x55u);
  EXPECT_EQ(sim.core.x(0), 3u) << "pass 1 adds 1, patched pass 2 adds 2";
  if (superblocks())
    EXPECT_GE(sim.core.superblock_stats().invalidations, 1u)
        << "the store must invalidate the cached page-2 block";
}

// ---------------------------------------------------------------------------
// Cross-core SMC: the Machine's SMP shape in miniature (DESIGN.md §3h) —
// two cores, each with its own Mmu, micro-TLB and superblock cache, sharing
// one physical memory and one kernel map. Core B executes and caches a
// block; core A's guest store rewrites it; core B's next dispatch must
// re-translate, because the write generation the cache is validated against
// lives in the *shared* PhysicalMemory, not in either core.
// ---------------------------------------------------------------------------

TEST_P(Superblock, CrossCoreSmcInvalidatesPeerCachedBlock) {
  const cpu::Cpu::Config c = cfg();
  mem::PhysicalMemory pm{1 << 20};
  mem::Stage1Map kmap;
  mem::Mmu mmu_a(pm, c.layout), mmu_b(pm, c.layout);
  cpu::Cpu a(mmu_a, c), b(mmu_b, c);

  constexpr uint64_t kWx = 0xFFFF000000200000ull;
  mem::PagePerms wx;
  wx.r_el1 = wx.w_el1 = wx.x_el1 = true;
  kmap.map_range(kWx, 0x50000, 0x2000, wx);
  mmu_a.set_kernel_map(&kmap);
  mmu_b.set_kernel_map(&kmap);

  const auto write_words = [&](uint64_t va,
                               const std::vector<uint32_t>& words) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto t =
          mmu_a.translate(va + i * 4, mem::Access::Fetch, mem::El::El2);
      ASSERT_TRUE(t.ok()) << "cross-core harness: text not mapped";
      pm.write32(t.pa, words[i]);
    }
  };

  const uint64_t site = kWx + 0x800;     // the block core B caches
  const uint64_t entry_b = kWx;          // core B's per-pass driver
  const uint64_t patcher = kWx + 0x400;  // core A's program
  const uint32_t hlt55 = words_of([](FunctionBuilder& f) { f.hlt(0x55); })[0];
  const uint32_t add2 =
      words_of([](FunctionBuilder& f) { f.add_i(0, 0, 2); })[0];
  const uint64_t patch =
      static_cast<uint64_t>(add2) | (static_cast<uint64_t>(hlt55) << 32);

  write_words(entry_b, words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(12, site);
    f.br(12);
  }));
  write_words(site, words_of([](FunctionBuilder& f) {
    f.add_i(0, 0, 1);  // becomes add #2 after core A's store
    f.hlt(0x55);
  }));
  write_words(patcher, words_of([&](FunctionBuilder& f) {
    f.mov_imm(9, site);
    f.mov_imm(10, patch);
    f.str(10, 9, 0);  // core A rewrites core B's cached block
    f.hlt(0x66);
  }));

  // Pass 1: core B runs and caches the site block.
  b.pc = entry_b;
  b.run(1000);
  ASSERT_TRUE(b.halted());
  EXPECT_EQ(b.halt_code(), 0x55u);
  EXPECT_EQ(b.x(0), 1u);

  // Core A patches the site through its own Mmu — never executed on A.
  a.pc = patcher;
  a.run(1000);
  ASSERT_TRUE(a.halted());
  EXPECT_EQ(a.halt_code(), 0x66u);

  // Pass 2: core B must fetch the new code, not its cached decode.
  b.clear_halt();
  b.pc = entry_b;
  b.run(1000);
  ASSERT_TRUE(b.halted());
  EXPECT_EQ(b.halt_code(), 0x55u);
  EXPECT_EQ(b.x(0), 2u)
      << "core B dispatched a stale cached block after core A's store";
  if (superblocks())
    EXPECT_GE(b.superblock_stats().invalidations, 1u)
        << "the cross-core store must invalidate core B's cached block";
}

// ---------------------------------------------------------------------------
// Forged RET into the middle of a cached block: executing a straight-line
// run from its start caches a block at its start PA; a later RET targeting
// an interior instruction must execute from exactly that instruction, never
// a misaligned or offset cached entry.
// ---------------------------------------------------------------------------

TEST_P(Superblock, ForgedRetIntoMiddleOfCachedBlock) {
  SimHarness sim(cfg());
  const uint64_t hot_va = testing::kHText + 0x400;
  const uint64_t cback = testing::kHText + 0x800;

  const auto init = words_of([&](FunctionBuilder& f) {
    f.mov_imm(0, 0);
    f.mov_imm(9, hot_va + 8);  // forged return target: 3rd insn of the block
    f.mov_imm(11, 0);
    f.mov_imm(12, hot_va);
    f.mov_imm(13, cback);
    f.br(12);  // first pass: run the block from the top (and cache it)
  });
  const auto hot = words_of([&](FunctionBuilder& f) {
    f.add_i(0, 0, 1);
    f.add_i(0, 0, 1);
    f.add_i(0, 0, 1);  // hot_va + 8: the forged entry point
    f.add_i(0, 0, 1);
    f.br(13);
  });
  const auto controller = words_of([&](FunctionBuilder& f) {
    const auto done = f.make_label();
    f.cbnz(11, done);
    f.mov_imm(11, 1);
    f.mov(30, 9);
    f.ret();  // forged RET to hot_va + 8
    f.bind(done);
    f.hlt(0x66);
  });

  sim.write_words(testing::kHText, init);
  sim.write_words(hot_va, hot);
  sim.write_words(cback, controller);

  sim.core.pc = testing::kHText;
  sim.core.run(100000);
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0x66u);
  EXPECT_EQ(sim.core.x(0), 6u)
      << "full pass adds 4, forged mid-block entry adds 2";
}

// ---------------------------------------------------------------------------
// Exact step budgets: run(max_steps) retires exactly max_steps (blocks are
// split at the boundary, never overshot), and any split of a budget lands
// on the identical simulated state.
// ---------------------------------------------------------------------------

FunctionBuilder long_loop() {
  FunctionBuilder f("loop");
  const auto loop = f.make_label();
  f.mov_imm(19, 100000);
  f.bind(loop);
  f.add_i(0, 0, 1);
  f.add_i(1, 1, 1);
  f.add_i(2, 2, 1);
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);
  return f;
}

TEST_P(Superblock, RunRetiresExactlyMaxSteps) {
  SimHarness sim(cfg());
  sim.write_words(testing::kHText, long_loop().assemble().words);
  sim.core.pc = testing::kHText;
  EXPECT_EQ(sim.core.run(997), 997u);
  EXPECT_EQ(sim.core.retired(), 997u);
  EXPECT_FALSE(sim.core.halted());
  EXPECT_EQ(sim.core.run(1), 1u);
  EXPECT_EQ(sim.core.retired(), 998u);
}

TEST_P(Superblock, SplitBudgetsLandOnIdenticalState) {
  const auto run_split = [&](std::vector<uint64_t> budgets) {
    SimHarness sim(cfg());
    sim.write_words(testing::kHText, long_loop().assemble().words);
    sim.core.pc = testing::kHText;
    for (uint64_t b : budgets) sim.core.run(b);
    return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t>(
        sim.core.pc, sim.core.cycles(), sim.core.retired(), sim.core.x(0),
        sim.core.x(19));
  };
  const auto whole = run_split({5000});
  EXPECT_EQ(whole, run_split({1, 4999}));
  EXPECT_EQ(whole, run_split({2500, 2500}));
  EXPECT_EQ(whole, run_split({4999, 1}));
  EXPECT_EQ(whole, run_split({1337, 1, 3662}));
}

// ---------------------------------------------------------------------------
// Timer/IRQ and breakpoint parity: both can hit in the middle of what the
// engine would run as one block, and must be observed on exactly the same
// instruction as the single-step path.
// ---------------------------------------------------------------------------

TEST_P(Superblock, TimerIrqDeliveredAtIdenticalPoint) {
  SimHarness sim(cfg());
  FunctionBuilder f("irq");
  const auto loop = f.make_label();
  f.daifclr();
  f.mov_imm(19, 100000);
  f.bind(loop);
  f.add_i(0, 0, 1);
  f.sub_i(19, 19, 1);
  f.cbnz(19, loop);
  f.hlt(1);
  sim.core.set_timer_period(157);  // lands mid straight-line run
  sim.run(f);
  ASSERT_TRUE(sim.core.halted());
  EXPECT_EQ(sim.core.halt_code(), 0xE2u) << "IRQ vector must halt the sim";

  // The cycle count and retire count at delivery are the parity signal:
  // compare against a single-step reference run.
  cpu::Cpu::Config ref_cfg = cfg();
  ref_cfg.superblocks = false;
  SimHarness ref(ref_cfg);
  ref.core.set_timer_period(157);
  ref.run(f);
  EXPECT_EQ(sim.core.cycles(), ref.core.cycles());
  EXPECT_EQ(sim.core.retired(), ref.core.retired());
  EXPECT_EQ(sim.core.x(0), ref.core.x(0));
}

TEST_P(Superblock, BreakpointInsideStraightLineRunFires) {
  SimHarness sim(cfg());
  sim.write_words(testing::kHText, long_loop().assemble().words);
  // long_loop's body: the 2nd add of the loop sits 4 instructions into the
  // straight-line run that a block would cover.
  uint64_t hits = 0;
  uint64_t first_x0 = ~uint64_t{0};
  const uint64_t bp = testing::kHText + long_loop().assemble().words.size() * 4 -
                      4 /*hlt*/ - 4 /*cbnz*/ - 4 /*sub*/ - 4 /*add x2*/;
  sim.core.add_breakpoint(bp, [&](cpu::Cpu& c) {
    if (hits++ == 0) first_x0 = c.x(0);
  });
  sim.core.pc = testing::kHText;
  sim.core.run(1000);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(first_x0, 1u) << "hook must run before the insn at the bp";
  EXPECT_EQ(sim.core.retired(), 1000u);
}

// ---------------------------------------------------------------------------
// Machine-level parity: a full boot + protected workload mix (syscalls,
// context switches, preemption) is bit-for-bit identical across all four
// engine combinations, including the obs retire stream.
// ---------------------------------------------------------------------------

kernel::BisectSide parity_side(bool superblocks, bool fast_path,
                               unsigned cores = 1) {
  kernel::BisectSide s;
  s.label = std::string(superblocks ? "sb-on" : "sb-off") +
            (fast_path ? " fp-on" : " fp-off") +
            (cores > 1 ? " cores=" + std::to_string(cores) : "");
  s.cfg.kernel.protection = compiler::ProtectionConfig::full();
  s.cfg.kernel.log_pac_failures = false;
  s.cfg.kernel.preempt = true;
  s.cfg.cpu.superblocks = superblocks;
  s.cfg.cpu.fast_path = fast_path;
  s.cfg.cores = cores;
  s.cfg.smp_quantum = 50;  // real interleaving at this workload size
  s.setup = [](kernel::Machine& m) {
    m.add_user_program(kernel::workloads::null_syscall(25));
    m.add_user_program(kernel::workloads::yield_loop(10));
  };
  return s;
}

std::tuple<std::vector<uint64_t>, uint64_t, std::string> machine_fingerprint(
    bool superblocks, bool fast_path, unsigned cores = 1) {
  const kernel::BisectSide s = parity_side(superblocks, fast_path, cores);
  kernel::Machine m(s.cfg);
  s.setup(m);
  m.boot();
  EXPECT_TRUE(m.run());
  // Per-core clocks and retire counts: at cores=1 this is the classic
  // {cycles, retired} pair; multi-core runs must agree core by core.
  std::vector<uint64_t> clocks;
  for (unsigned c = 0; c < m.cores(); ++c) {
    clocks.push_back(m.core(c).cycles());
    clocks.push_back(m.core(c).retired());
  }
  return {std::move(clocks), m.halt_code(), m.console()};
}

TEST(SuperblockParity, MachineRunBitForBitAcrossAllEngineCombos) {
  for (const unsigned cores : {1u, 2u}) {
    const auto ref = machine_fingerprint(false, false, cores);
    for (const auto& [sb, fp] : {std::pair{false, true},
                                std::pair{true, false},
                                std::pair{true, true}}) {
      const auto cur = machine_fingerprint(sb, fp, cores);
      if (cur == ref) continue;
      // Fingerprints disagree: escalate to the divergence bisector so the
      // failure names the first divergent retired instruction instead of
      // just the end-of-run totals (DESIGN.md §3g).
      EXPECT_EQ(cur, ref) << "cores=" << cores;
      EXPECT_TRUE(testing_support::MachinesConverge(
          parity_side(false, false, cores), parity_side(sb, fp, cores)));
    }
  }
}

TEST(SuperblockParity, ObsTraceByteIdenticalWithEngineOnAndOff) {
  const auto traced = [](bool superblocks) {
    kernel::MachineConfig cfg;
    cfg.kernel.protection = compiler::ProtectionConfig::full();
    cfg.kernel.log_pac_failures = false;
    cfg.obs.enabled = true;
    cfg.cpu.superblocks = superblocks;
    kernel::Machine m(cfg);
    m.add_user_program(kernel::workloads::null_syscall(25));
    m.boot();
    EXPECT_TRUE(m.run());
    const obs::Collector* st = m.stats();
    EXPECT_NE(st, nullptr);
    return std::tuple<std::string, std::string, std::string>(
        st->chrome_trace_json(), st->flat_profile(), st->folded_profile());
  };
  EXPECT_EQ(traced(false), traced(true));
}

// ---------------------------------------------------------------------------
// Counters: the engine's stats flow into the metrics registry as
// fastpath.sb.* and stay zero with the engine off.
// ---------------------------------------------------------------------------

TEST(SuperblockStats, CountersPublishedWhenEngineOn) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  cfg.cpu.superblocks = true;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(25));
  m.boot();
  ASSERT_TRUE(m.run());
  const obs::Registry& reg = m.stats()->metrics();
  EXPECT_GT(reg.value("fastpath.sb.blocks"), 0u);
  EXPECT_GT(reg.value("fastpath.sb.hits"), 0u);
  EXPECT_GT(reg.value("fastpath.sb.chain_hits"), 0u);
  const auto& sb = m.cpu().superblock_stats();
  EXPECT_EQ(reg.value("fastpath.sb.blocks"), sb.blocks);
  EXPECT_EQ(reg.value("fastpath.sb.hits"), sb.hits);
}

TEST(SuperblockStats, CountersStayZeroWhenEngineOff) {
  kernel::MachineConfig cfg;
  cfg.kernel.protection = compiler::ProtectionConfig::full();
  cfg.kernel.log_pac_failures = false;
  cfg.obs.enabled = true;
  cfg.cpu.superblocks = false;
  kernel::Machine m(cfg);
  m.add_user_program(kernel::workloads::null_syscall(25));
  m.boot();
  ASSERT_TRUE(m.run());
  const obs::Registry& reg = m.stats()->metrics();
  EXPECT_EQ(reg.value("fastpath.sb.blocks"), 0u);
  EXPECT_EQ(reg.value("fastpath.sb.hits"), 0u);
  EXPECT_EQ(reg.value("fastpath.sb.invalidations"), 0u);
  EXPECT_EQ(reg.value("fastpath.sb.chain_hits"), 0u);
}

}  // namespace
}  // namespace camo
