// ISA fuzz/property tests: encode/decode round-trips over randomly generated
// valid instructions of every format, and total decode/disassembly safety
// over arbitrary 32-bit words (the verifier and module loader decode
// attacker-supplied words, so decode must be total).
#include <gtest/gtest.h>

#include "isa/isa.h"
#include "support/rng.h"

namespace camo::isa {
namespace {

/// Generate a random valid instruction for `op`.
Inst random_inst(Op op, Xoshiro256& rng) {
  Inst i;
  i.op = op;
  auto reg = [&] { return static_cast<uint8_t>(rng.next_below(32)); };
  switch (format_of(op)) {
    case Format::None:
      break;
    case Format::MovW:
      i.rd = reg();
      i.imm = static_cast<int64_t>(rng.next_below(0x10000));
      i.hw = static_cast<uint8_t>(rng.next_below(4));
      break;
    case Format::R3:
      i.rd = reg();
      i.rn = reg();
      i.rm = reg();
      break;
    case Format::RI:
      i.rd = reg();
      i.rn = reg();
      i.imm = static_cast<int64_t>(rng.next_below(0x1000));
      break;
    case Format::Shift:
      i.rd = reg();
      i.rn = reg();
      i.imm = static_cast<int64_t>(rng.next_below(64));
      break;
    case Format::BitF:
      i.rd = reg();
      i.rn = reg();
      i.lsb = static_cast<uint8_t>(rng.next_below(64));
      i.width = static_cast<uint8_t>(1 + rng.next_below(64u - i.lsb));
      break;
    case Format::Adr:
      i.rd = reg();
      i.imm = static_cast<int64_t>(rng.next_below(1 << 19)) - (1 << 18);
      break;
    case Format::Mem: {
      const int scale = (op == Op::LDRB || op == Op::STRB) ? 1 : 8;
      i.rd = reg();
      i.rn = reg();
      i.imm = static_cast<int64_t>(rng.next_below(0x1000)) * scale;
      break;
    }
    case Format::MemP:
      i.rd = reg();
      i.rn = reg();
      i.rm = reg();
      i.imm = (static_cast<int64_t>(rng.next_below(128)) - 64) * 8;
      break;
    case Format::Branch:
      i.imm = (static_cast<int64_t>(rng.next_below(1 << 24)) - (1 << 23)) * 4;
      break;
    case Format::BCond: {
      static constexpr Cond conds[] = {Cond::EQ, Cond::NE, Cond::HS, Cond::LO,
                                       Cond::MI, Cond::PL, Cond::HI, Cond::LS,
                                       Cond::GE, Cond::LT, Cond::GT, Cond::LE,
                                       Cond::AL};
      i.cond = conds[rng.next_below(std::size(conds))];
      i.imm = (static_cast<int64_t>(rng.next_below(1 << 18)) - (1 << 17)) * 4;
      break;
    }
    case Format::CmpBr:
      i.rd = reg();
      i.imm = (static_cast<int64_t>(rng.next_below(1 << 19)) - (1 << 18)) * 4;
      break;
    case Format::BReg:
      i.rn = reg();
      i.rm = reg();
      break;
    case Format::Sys:
      i.rd = reg();
      i.sysreg = static_cast<SysReg>(
          rng.next_below(static_cast<uint64_t>(SysReg::kCount)));
      break;
    case Format::Pac:
      i.rd = reg();
      i.rn = reg();
      break;
    case Format::Imm16:
      i.imm = static_cast<int64_t>(rng.next_below(0x10000));
      break;
  }
  return i;
}

TEST(IsaFuzz, RoundTripEveryOpcodeManyTimes) {
  Xoshiro256 rng(0xF0221);
  for (size_t opnum = 1; opnum < static_cast<size_t>(Op::kCount); ++opnum) {
    const Op op = static_cast<Op>(opnum);
    for (int trial = 0; trial < 200; ++trial) {
      const Inst inst = random_inst(op, rng);
      uint32_t word = 0;
      ASSERT_NO_THROW(word = encode(inst)) << disasm(inst);
      const Inst back = decode(word);
      ASSERT_EQ(back, inst) << op_name(op) << " trial " << trial << "\n  in:  "
                            << disasm(inst) << "\n  out: " << disasm(back);
    }
  }
}

TEST(IsaFuzz, DecodeIsTotalOverRandomWords) {
  // Arbitrary words must decode (possibly to Invalid) and disassemble
  // without crashing — the §4.1 verifier scans untrusted module bytes.
  Xoshiro256 rng(0xDEC0DE);
  for (int trial = 0; trial < 200000; ++trial) {
    const uint32_t word = static_cast<uint32_t>(rng.next());
    const Inst inst = decode(word);
    if (inst.op != Op::Invalid) {
      // Whatever decodes must re-encode into a decodable word (not
      // necessarily bit-identical: unused fields are normalized away).
      const Inst again = decode(encode(inst));
      EXPECT_EQ(again, inst) << disasm(inst);
    }
    (void)disasm(inst, 0x1000);
  }
}

TEST(IsaFuzz, EncodeNormalizesUnusedFields) {
  // Fields outside an op's format never survive an encode/decode cycle —
  // required for the verifier's pattern matching to be exact.
  Inst i;
  i.op = Op::NOP;
  i.rd = 7;
  i.rn = 8;
  i.imm = 99;  // all ignored by Format::None
  const Inst back = decode(encode(i));
  EXPECT_EQ(back.rd, 0);
  EXPECT_EQ(back.rn, 0);
  EXPECT_EQ(back.imm, 0);
}

TEST(IsaFuzz, AllOpcodesHaveDistinctEncodings) {
  std::vector<uint32_t> seen;
  for (size_t opnum = 1; opnum < static_cast<size_t>(Op::kCount); ++opnum) {
    Inst i;
    i.op = static_cast<Op>(opnum);
    if (format_of(i.op) == Format::BitF) i.width = 1;
    seen.push_back(encode(i) >> 24);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace camo::isa
