#include "qarma/qarma64.h"

#include <array>

#include "support/bits.h"
#include "support/error.h"

namespace camo::qarma {
namespace {

// The 64-bit state is 16 4-bit cells; cell 0 is the most significant nibble,
// matching the row-major 4x4 layout of the QARMA paper (cell i sits at row
// i/4, column i%4).
constexpr unsigned cell_shift(int i) { return static_cast<unsigned>(60 - 4 * i); }

uint64_t get_cell(uint64_t v, int i) { return bits(v, cell_shift(i), 4); }

uint64_t set_cell(uint64_t v, int i, uint64_t c) {
  return insert_bits(v, cell_shift(i), 4, c);
}

/// rho^e: left rotation of a 4-bit cell by e.
constexpr uint64_t rot4(uint64_t c, int e) {
  return ((c << e) | (c >> (4 - e))) & 0xF;
}

// sigma_1, the S-box recommended for PAuth-style usage in the QARMA paper.
constexpr std::array<uint8_t, 16> kSbox = {10, 13, 14, 6, 15, 7, 3, 5,
                                           9,  8,  0,  12, 11, 1, 2, 4};
constexpr std::array<uint8_t, 16> make_inverse(const std::array<uint8_t, 16>& s) {
  std::array<uint8_t, 16> inv{};
  for (int i = 0; i < 16; ++i) inv[s[static_cast<size_t>(i)]] = static_cast<uint8_t>(i);
  return inv;
}
constexpr std::array<uint8_t, 16> kSboxInv = make_inverse(kSbox);

// Cell permutation tau (a MIDORI-style shuffle): new cell i = old cell kTau[i].
constexpr std::array<uint8_t, 16> kTau = {0, 11, 6, 13, 10, 1, 12, 7,
                                          5, 14, 3, 8,  15, 4, 9,  2};
constexpr std::array<uint8_t, 16> kTauInv = make_inverse(kTau);

// Tweak-schedule cell permutation h: new cell i = old cell kH[i].
constexpr std::array<uint8_t, 16> kH = {6, 5, 14, 15, 0, 1, 2, 3,
                                        7, 12, 13, 4, 8, 9, 10, 11};
constexpr std::array<uint8_t, 16> kHInv = make_inverse(kH);

// Cells of the tweak that pass through the LFSR omega each schedule step.
constexpr std::array<uint8_t, 7> kLfsrCells = {0, 1, 3, 4, 8, 11, 13};

// omega: b3 b2 b1 b0 -> (b0 xor b1) b3 b2 b1.
constexpr uint64_t lfsr(uint64_t c) {
  return ((((c >> 0) ^ (c >> 1)) & 1) << 3) | (c >> 1);
}
// omega^-1: n3 n2 n1 n0 -> n2 n1 n0 (n3 xor n0).
constexpr uint64_t lfsr_inv(uint64_t c) {
  return ((c << 1) & 0xF) | (((c >> 3) ^ c) & 1);
}

// Round constants: fractional digits of pi (as in PRINCE/QARMA), plus the
// reflection constant alpha.
constexpr std::array<uint64_t, 8> kRoundConst = {
    0x0000000000000000ULL, 0x13198A2E03707344ULL, 0xA4093822299F31D0ULL,
    0x082EFA98EC4E6C89ULL, 0x452821E638D01377ULL, 0xBE5466CF34E90C6CULL,
    0x3F84D5B5B5470917ULL, 0x9216D5D98979FB1BULL};
constexpr uint64_t kAlpha = 0xC0AC29B7C97C50DDULL;

uint64_t permute(uint64_t v, const std::array<uint8_t, 16>& p) {
  uint64_t out = 0;
  for (int i = 0; i < 16; ++i) out = set_cell(out, i, get_cell(v, p[static_cast<size_t>(i)]));
  return out;
}

uint64_t substitute(uint64_t v, const std::array<uint8_t, 16>& s) {
  uint64_t out = 0;
  for (int i = 0; i < 16; ++i) out = set_cell(out, i, s[get_cell(v, i)]);
  return out;
}

}  // namespace

uint64_t Qarma64::mix_columns(uint64_t state) {
  // M = circ(0, rho^1, rho^2, rho^1) applied to each column of the 4x4 cell
  // array: new row r = rho^1(row r+1) ^ rho^2(row r+2) ^ rho^1(row r+3).
  uint64_t out = 0;
  for (int col = 0; col < 4; ++col) {
    std::array<uint64_t, 4> in{};
    for (int row = 0; row < 4; ++row) in[static_cast<size_t>(row)] = get_cell(state, 4 * row + col);
    for (int row = 0; row < 4; ++row) {
      const uint64_t c = rot4(in[static_cast<size_t>((row + 1) & 3)], 1) ^
                         rot4(in[static_cast<size_t>((row + 2) & 3)], 2) ^
                         rot4(in[static_cast<size_t>((row + 3) & 3)], 1);
      out = set_cell(out, 4 * row + col, c);
    }
  }
  return out;
}

uint64_t Qarma64::shuffle(uint64_t state) { return permute(state, kTau); }
uint64_t Qarma64::inv_shuffle(uint64_t state) { return permute(state, kTauInv); }
uint64_t Qarma64::sub_cells(uint64_t state) { return substitute(state, kSbox); }
uint64_t Qarma64::inv_sub_cells(uint64_t state) {
  return substitute(state, kSboxInv);
}

uint64_t Qarma64::update_tweak(uint64_t tweak) {
  uint64_t t = permute(tweak, kH);
  for (uint8_t i : kLfsrCells) t = set_cell(t, i, lfsr(get_cell(t, i)));
  return t;
}

uint64_t Qarma64::inv_update_tweak(uint64_t tweak) {
  uint64_t t = tweak;
  for (uint8_t i : kLfsrCells) t = set_cell(t, i, lfsr_inv(get_cell(t, i)));
  return permute(t, kHInv);
}

uint64_t Qarma64::derive_w1(uint64_t w0) {
  // The orthomorphism o(x) = (x >>> 1) ^ (x >> 63).
  return ror64(w0, 1) ^ (w0 >> 63);
}

Qarma64::Qarma64(int rounds) : rounds_(rounds) {
  if (rounds < 3 || rounds > 7) fail("Qarma64: rounds must be in [3,7]");
}

uint64_t Qarma64::encrypt(uint64_t plaintext, uint64_t tweak,
                          const Key128& key) const {
  const uint64_t w0 = key.w0;
  const uint64_t w1 = derive_w1(w0);
  const uint64_t k0 = key.k0;
  const uint64_t k1 = mix_columns(k0);  // reflector key, k1 = Q * k0

  uint64_t s = plaintext ^ w0;
  uint64_t t = tweak;

  // r forward rounds; round 0 is "short" (no shuffle / MixColumns).
  for (int i = 0; i < rounds_; ++i) {
    s ^= k0 ^ t ^ kRoundConst[static_cast<size_t>(i)];
    if (i != 0) {
      s = shuffle(s);
      s = mix_columns(s);
    }
    s = sub_cells(s);
    t = update_tweak(t);
  }

  // Central construction: one full forward round keyed by w1 + T_r, the keyed
  // pseudo-reflector tau . Q . tau^-1 with key k1, one full backward round
  // keyed by w0 + T_r.
  s ^= w1 ^ t;
  s = shuffle(s);
  s = mix_columns(s);
  s = sub_cells(s);

  s = shuffle(s);
  s = mix_columns(s);
  s ^= k1;
  s = inv_shuffle(s);

  s = inv_sub_cells(s);
  s = mix_columns(s);
  s = inv_shuffle(s);
  s ^= w0 ^ t;

  // r backward rounds mirroring the forward ones, with alpha folded into the
  // round tweakey.
  for (int i = rounds_ - 1; i >= 0; --i) {
    t = inv_update_tweak(t);
    s = inv_sub_cells(s);
    if (i != 0) {
      s = mix_columns(s);
      s = inv_shuffle(s);
    }
    s ^= k0 ^ t ^ kRoundConst[static_cast<size_t>(i)] ^ kAlpha;
  }

  return s ^ w1;
}

uint64_t Qarma64::decrypt(uint64_t ciphertext, uint64_t tweak,
                          const Key128& key) const {
  // Structural inverse of encrypt(); kept explicit (rather than relying on
  // the alpha-reflection key trick) so invertibility holds by construction.
  const uint64_t w0 = key.w0;
  const uint64_t w1 = derive_w1(w0);
  const uint64_t k0 = key.k0;
  const uint64_t k1 = mix_columns(k0);

  uint64_t s = ciphertext ^ w1;

  // Recompute the forward tweak sequence.
  std::array<uint64_t, 8> tseq{};
  tseq[0] = tweak;
  for (int i = 0; i < rounds_; ++i) tseq[static_cast<size_t>(i + 1)] = update_tweak(tseq[static_cast<size_t>(i)]);

  // Undo the backward rounds (forward direction).
  for (int i = 0; i < rounds_; ++i) {
    s ^= k0 ^ tseq[static_cast<size_t>(i)] ^ kRoundConst[static_cast<size_t>(i)] ^ kAlpha;
    if (i != 0) {
      s = shuffle(s);
      s = mix_columns(s);
    }
    s = sub_cells(s);
  }

  const uint64_t tr = tseq[static_cast<size_t>(rounds_)];

  // Undo the central construction.
  s ^= w0 ^ tr;
  s = shuffle(s);
  s = mix_columns(s);
  s = sub_cells(s);

  s = shuffle(s);
  s ^= k1;
  s = mix_columns(s);
  s = inv_shuffle(s);

  s = inv_sub_cells(s);
  s = mix_columns(s);
  s = inv_shuffle(s);
  s ^= w1 ^ tr;

  // Undo the forward rounds.
  uint64_t t = tr;
  for (int i = rounds_ - 1; i >= 0; --i) {
    t = inv_update_tweak(t);
    s = inv_sub_cells(s);
    if (i != 0) {
      s = mix_columns(s);
      s = inv_shuffle(s);
    }
    s ^= k0 ^ t ^ kRoundConst[static_cast<size_t>(i)];
  }

  return s ^ w0;
}

uint64_t compute_pac_cipher(uint64_t data, uint64_t modifier,
                            const Key128& key) {
  static const Qarma64 cipher(5);
  return cipher.encrypt(data, modifier, key);
}

}  // namespace camo::qarma
