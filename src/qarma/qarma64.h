// QARMA-64: the tweakable block cipher family used as the reference PAC
// algorithm for ARMv8.3 pointer authentication (R. Avanzi, "The QARMA Block
// Cipher Family", IACR ToSC 2017).
//
// QARMA-64 operates on a 64-bit block arranged as 16 4-bit cells, takes a
// 64-bit tweak (the PAuth "modifier") and a 128-bit key split into a
// whitening half w0 and a core half k0. The structure is a 3-round
// Even-Mansour construction with r forward rounds, a keyed pseudo-reflector
// and r backward rounds (we default to r = 5, the variant ARM's reference
// parameters use; r is configurable up to 7).
//
// Conformance note (see DESIGN.md §2): the ARM architecture does NOT mandate
// QARMA — the PAC hash is implementation defined. This implementation follows
// the published construction; official known-answer vectors cannot be
// re-verified offline, so the test-suite pins golden regression vectors of
// this implementation and property-checks the algebraic requirements
// (bijectivity per (key, tweak), involutory MixColumns, α-independence of
// inverse, full avalanche).
#pragma once

#include <cstdint>

namespace camo::qarma {

/// 128-bit QARMA key: whitening half `w0` and core half `k0`.
struct Key128 {
  uint64_t w0 = 0;
  uint64_t k0 = 0;

  friend bool operator==(const Key128&, const Key128&) = default;
};

/// QARMA-64 cipher instance with a fixed round count.
class Qarma64 {
 public:
  /// rounds must be in [3, 7]; 5 is the standard lightweight parameter.
  explicit Qarma64(int rounds = 5);

  /// Encrypt one 64-bit block under (key, tweak).
  uint64_t encrypt(uint64_t plaintext, uint64_t tweak, const Key128& key) const;

  /// Decrypt one 64-bit block under (key, tweak). Inverse of encrypt().
  uint64_t decrypt(uint64_t ciphertext, uint64_t tweak, const Key128& key) const;

  int rounds() const { return rounds_; }

  // -- Exposed internals (used by unit tests to check algebraic properties) --

  /// MixColumns with the involutory matrix M = circ(0, rho^1, rho^2, rho^1).
  static uint64_t mix_columns(uint64_t state);
  /// Cell permutation tau.
  static uint64_t shuffle(uint64_t state);
  static uint64_t inv_shuffle(uint64_t state);
  /// S-box layer (sigma_1) and its inverse.
  static uint64_t sub_cells(uint64_t state);
  static uint64_t inv_sub_cells(uint64_t state);
  /// One tweak-schedule step (h permutation + LFSR omega on selected cells).
  static uint64_t update_tweak(uint64_t tweak);
  static uint64_t inv_update_tweak(uint64_t tweak);
  /// Orthomorphism used to derive w1 from w0.
  static uint64_t derive_w1(uint64_t w0);

 private:
  int rounds_;
};

/// Convenience: one-shot QARMA-64 encryption with the default 5 rounds.
/// This is the function the CPU model's PAuth unit calls to compute a PAC.
uint64_t compute_pac_cipher(uint64_t data, uint64_t modifier, const Key128& key);

}  // namespace camo::qarma
