// camo::par — work-stealing fleet executor (DESIGN.md §3d).
//
// Every sweep-shaped experiment in this repository (the §6.2 security
// matrix, the §5.4 brute-force campaign, the modifier ablation, the census
// scaling runs, multi-tenant fleets) runs dozens of fully independent
// single-threaded kernel::Machine instances. Pool shards that fan-out
// across host threads:
//
//  * one deque per worker; the submitting worker pushes to its own deque
//    and pops LIFO from the back,
//  * an idle worker steals *half* of the fullest victim's deque (taking
//    the oldest tasks, FIFO end), which amortizes steal traffic and keeps
//    large batches balanced without a global queue,
//  * the thread calling for_each_index() participates as worker 0 and
//    helps until its batch drains, so nested submission from inside a
//    task cannot deadlock — the nested caller simply works its own batch,
//  * jobs == 1 never touches a thread: the batch runs inline on the
//    caller, in index order, byte-identical to the serial code it
//    replaced (one lock acquisition updates the telemetry counters after
//    the loop). This is what keeps `--jobs 1` bench output bit-for-bit
//    stable against the checked-in baselines.
//
// Sizing: explicit constructor argument, else the CAMO_JOBS environment
// variable, else 1. Parallel speedup is bounded by the serial fraction of
// machine construction — pair the pool with kernel::ImageCache so the
// kernel image is built/verified/signed once per configuration.
//
// Determinism: the pool itself makes no ordering promise about execution,
// only completion. Callers that need bit-identical output regardless of
// thread count (all of ours) must write results by task index and merge
// any per-task state in index order — par::run_fleet (fleet.h) implements
// that protocol.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace camo::par {

class Pool {
 public:
  /// Scheduler telemetry (fleet.* observability series; informational —
  /// steal counts depend on host scheduling and are never gated).
  struct Stats {
    uint64_t submitted = 0;  ///< tasks handed to for_each_index()
    uint64_t steals = 0;     ///< steal operations that moved >= 1 task
    uint64_t stolen_tasks = 0;
    std::vector<uint64_t> executed;  ///< per-worker completed-task counts

    /// Max-over-mean of per-worker executed counts: 1.0 is a perfectly
    /// balanced fleet, jobs() is one worker doing everything.
    double imbalance() const;
  };

  /// `jobs` threads participate in each batch (the caller plus jobs - 1
  /// spawned workers). 0 means env_jobs().
  explicit Pool(unsigned jobs = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned jobs() const { return jobs_; }

  /// CAMO_JOBS environment sizing: a positive integer, clamped to
  /// [1, kMaxJobs]; absent or malformed values mean 1 (serial).
  static unsigned env_jobs();
  static constexpr unsigned kMaxJobs = 256;

  /// Run body(i) for every i in [0, n). Blocks until all n complete. The
  /// first exception thrown by any task is rethrown here after the batch
  /// drains (remaining tasks still run; they are independent machines).
  /// With jobs == 1 the loop runs inline, in index order.
  void for_each_index(size_t n, const std::function<void(size_t)>& body);

  /// Deterministic parallel map: out[i] = fn(i), results in index order
  /// regardless of the steal schedule. R must be default-constructible.
  template <class Fn>
  auto map(size_t n, Fn&& fn) -> std::vector<decltype(fn(size_t{0}))> {
    using R = decltype(fn(size_t{0}));
    static_assert(!std::is_same<R, bool>::value,
                  "std::vector<bool> packs bits: concurrent out[i] writes "
                  "race — return int or char instead");
    std::vector<R> out(n);
    for_each_index(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Snapshot of the scheduler counters.
  Stats stats() const;

 private:
  struct Batch;
  struct Task {
    Batch* batch;
    size_t index;
  };

  /// One task if any is runnable: own deque (LIFO) first, else steal half
  /// of the fullest victim (FIFO end). Caller holds mu_.
  bool take_locked(unsigned self, Task& out);
  void run_task(std::unique_lock<std::mutex>& lock, unsigned self,
                const Task& t);
  void worker_main(unsigned self);
  /// The calling thread's worker slot: its own slot inside worker_main or
  /// a nested batch, slot 0 for the external caller.
  unsigned self_slot() const;

  unsigned jobs_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: work arrived / shutdown
  std::vector<std::deque<Task>> deques_;  ///< one per worker slot
  std::vector<std::thread> threads_;      ///< jobs_ - 1 spawned workers
  bool stopping_ = false;

  // Telemetry, guarded by mu_.
  uint64_t submitted_ = 0;
  uint64_t steals_ = 0;
  uint64_t stolen_tasks_ = 0;
  std::vector<uint64_t> executed_;
};

}  // namespace camo::par
