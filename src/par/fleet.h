// par::run_fleet — deterministic multi-machine execution (DESIGN.md §3d).
//
// A fleet is n fully independent, single-threaded kernel::Machine runs
// sharded across the pool. Determinism is by construction, not by luck:
//
//  * each task i owns its machine exclusively; machines share nothing
//    mutable (a kernel::ImageCache, if configured, hands out immutable
//    prepared images under its own lock; likewise a kernel::SnapshotCache
//    — DESIGN.md §3j — hands out immutable post-boot snapshots, so boot()
//    inside a task either boots the one template per configuration, with
//    concurrent first-boots serializing under the cache lock, or forks it
//    copy-on-write; forked and fresh machines are bit-identical),
//  * task i writes only slot i — results, registry snapshot, trace ring
//    snapshot, host counters are captured into the slot the moment the
//    task finishes and the machine is destroyed (a 64 MiB guest does not
//    outlive its run),
//  * after the pool drains, slots are merged in task-index order: result
//    vector, registry (counters add, histograms merge, gauges last-writer-
//    wins in index order), and the concatenated trace.
//
// Consequently FleetResult::results, the trace, and the merged registry's
// counters and histograms are bit-identical for any jobs value and any
// steal schedule. Gauges are the deliberate exception: their *names* are
// deterministic, but they carry host wall-clock readings (throughput), so
// their values vary run to run — like FleetStats (steals, imbalance),
// they are informational only and never regression-gated.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "kernel/machine.h"
#include "obs/audit.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/pool.h"

namespace camo::par {

/// Host-side fleet telemetry. Everything here is scheduling- or wall-clock-
/// dependent except `machines` and `guest_instret`.
struct FleetStats {
  size_t machines = 0;
  unsigned jobs = 1;
  uint64_t steals = 0;        ///< pool steal operations during this fleet
  double imbalance = 0;       ///< max-over-mean per-worker task counts
  uint64_t guest_instret = 0; ///< total guest instructions (deterministic)
  double host_seconds = 0;    ///< summed per-machine CPU-loop wall clock
  /// Per-task host duration distribution in microseconds (DESIGN.md §3f).
  /// Host wall-clock, so informational like the rest of FleetStats — which
  /// is also why it lives here and not in the merged (deterministic)
  /// registry. Recorded in task-index order after the pool drains.
  obs::Histogram task_us;
  /// Aggregate guest instructions per summed host second (informational).
  double throughput() const {
    return host_seconds > 0
               ? static_cast<double>(guest_instret) / host_seconds
               : 0;
  }
};

template <class R>
struct FleetResult {
  std::vector<R> results;            ///< task-index order
  obs::Registry metrics;             ///< merged in task-index order
  std::vector<obs::TraceEvent> trace;  ///< rings concatenated in index order
  /// Audit logs concatenated in task-index order; every event carries its
  /// machine id, so the merged stream is bit-identical for any jobs value
  /// while staying per-machine attributable.
  std::vector<obs::AuditEvent> audit;
  /// Per-machine coverage maps merged in task-index order (empty unless
  /// machines were configured with obs.coverage). Bit-identical for any
  /// jobs value: coverage is a pure function of each machine's retire
  /// stream and merge_from is applied in index order.
  obs::CoverageMap coverage;
  FleetStats stats;
};

/// Run an n-machine fleet on `pool`. `factory(i)` builds machine i
/// (configured, user programs added, NOT booted). `task(i, Machine&)` boots,
/// drives and measures it, returning the per-machine result. After the task
/// returns, the machine's registry, trace ring and host counters are
/// snapshotted into slot i and the machine is destroyed.
template <class Factory, class Task>
auto run_fleet(Pool& pool, size_t n, Factory&& factory, Task&& task)
    -> FleetResult<decltype(task(size_t{0},
                                 std::declval<kernel::Machine&>()))> {
  using R = decltype(task(size_t{0}, std::declval<kernel::Machine&>()));
  struct Slot {
    R result{};
    obs::Registry reg;
    std::vector<obs::TraceEvent> trace;
    std::vector<obs::AuditEvent> audit;
    obs::CoverageMap coverage;
    bool has_coverage = false;
    uint64_t instret = 0;
    double host_seconds = 0;
    double throughput = 0;
    bool observed = false;
  };
  std::vector<Slot> slots(n);
  const Pool::Stats before = pool.stats();

  pool.for_each_index(n, [&](size_t i) {
    std::unique_ptr<kernel::Machine> m = factory(i);
    Slot& s = slots[i];
    s.result = task(i, *m);
    s.instret = m->total_retired();
    s.host_seconds = m->host_seconds();
    s.throughput = m->host_throughput();
    if (const obs::Collector* st = m->stats()) {
      s.reg = st->metrics();
      s.trace = st->ring().snapshot();
      s.audit = st->audit_log().snapshot();
      if (st->options().coverage) {
        s.coverage = st->coverage().snapshot();
        s.has_coverage = true;
      }
      s.observed = true;
    }
  });

  const Pool::Stats after = pool.stats();
  FleetResult<R> out;
  out.results.reserve(n);
  for (Slot& s : slots) {
    out.results.push_back(std::move(s.result));
    if (s.observed) {
      out.metrics.merge_from(s.reg);
      out.trace.insert(out.trace.end(), s.trace.begin(), s.trace.end());
      out.audit.insert(out.audit.end(), s.audit.begin(), s.audit.end());
      if (s.has_coverage) out.coverage.merge_from(s.coverage);
    }
    out.stats.guest_instret += s.instret;
    out.stats.host_seconds += s.host_seconds;
    out.stats.task_us.record(static_cast<uint64_t>(s.host_seconds * 1e6));
  }
  out.stats.machines = n;
  out.stats.jobs = pool.jobs();
  out.stats.steals = after.steals - before.steals;
  Pool::Stats delta = after;  // this fleet's share of the pool counters
  for (size_t w = 0; w < delta.executed.size(); ++w)
    delta.executed[w] -= before.executed[w];
  out.stats.imbalance = delta.imbalance();
  // The fleet-wide aggregate; per-machine gauges keep their namespaced
  // "host.throughput.m<id>" entries from the merge above.
  if (out.stats.host_seconds > 0)
    out.metrics.gauge("host.throughput").set(out.stats.throughput());
  return out;
}

}  // namespace camo::par
