#include "par/pool.h"

#include <cstdlib>
#include <exception>
#include <memory>

namespace camo::par {

namespace {

// The calling thread's identity inside a pool: workers set this on entry so
// nested for_each_index() calls push to — and pop from — their own deque.
// Threads foreign to the pool (the external submitter) use slot 0.
thread_local const Pool* tl_pool = nullptr;
thread_local unsigned tl_slot = 0;

}  // namespace

/// One batch of n tasks sharing a body. pending/error are guarded by the
/// pool mutex; done_cv fires exactly once, when pending reaches zero.
struct Pool::Batch {
  const std::function<void(size_t)>* body = nullptr;
  size_t pending = 0;
  std::exception_ptr error;
  std::condition_variable done_cv;
};

double Pool::Stats::imbalance() const {
  uint64_t total = 0, max = 0;
  for (const uint64_t e : executed) {
    total += e;
    if (e > max) max = e;
  }
  if (total == 0 || executed.empty()) return 0;
  return static_cast<double>(max) * static_cast<double>(executed.size()) /
         static_cast<double>(total);
}

unsigned Pool::env_jobs() {
  const char* env = std::getenv("CAMO_JOBS");
  if (!env || !*env) return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return 1;
  return v > kMaxJobs ? kMaxJobs : static_cast<unsigned>(v);
}

Pool::Pool(unsigned jobs) : jobs_(jobs == 0 ? env_jobs() : jobs) {
  if (jobs_ > kMaxJobs) jobs_ = kMaxJobs;
  deques_.resize(jobs_);
  executed_.assign(jobs_, 0);
  threads_.reserve(jobs_ > 0 ? jobs_ - 1 : 0);
  for (unsigned slot = 1; slot < jobs_; ++slot)
    threads_.emplace_back([this, slot] { worker_main(slot); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned Pool::self_slot() const { return tl_pool == this ? tl_slot : 0; }

bool Pool::take_locked(unsigned self, Task& out) {
  std::deque<Task>& own = deques_[self];
  if (own.empty()) {
    // Steal half (rounded up) of the fullest victim's deque, oldest tasks
    // first, so a freshly submitted batch fans out in O(log n) steals.
    unsigned victim = self;
    size_t best = 0;
    for (unsigned w = 0; w < jobs_; ++w) {
      if (w != self && deques_[w].size() > best) {
        best = deques_[w].size();
        victim = w;
      }
    }
    if (best == 0) return false;
    const size_t grab = (best + 1) / 2;
    std::deque<Task>& from = deques_[victim];
    own.insert(own.end(), from.begin(),
               from.begin() + static_cast<ptrdiff_t>(grab));
    from.erase(from.begin(), from.begin() + static_cast<ptrdiff_t>(grab));
    ++steals_;
    stolen_tasks_ += grab;
  }
  out = own.back();
  own.pop_back();
  return true;
}

void Pool::run_task(std::unique_lock<std::mutex>& lock, unsigned self,
                    const Task& t) {
  lock.unlock();
  std::exception_ptr err;
  try {
    (*t.batch->body)(t.index);
  } catch (...) {
    err = std::current_exception();
  }
  lock.lock();
  ++executed_[self];
  if (err && !t.batch->error) t.batch->error = err;
  if (--t.batch->pending == 0) t.batch->done_cv.notify_all();
}

void Pool::worker_main(unsigned self) {
  tl_pool = this;
  tl_slot = self;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task t;
    if (take_locked(self, t)) {
      run_task(lock, self, t);
    } else if (stopping_) {
      return;
    } else {
      work_cv_.wait(lock);
    }
  }
}

void Pool::for_each_index(size_t n,
                          const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1 || n == 1) {
    // Serial fast path: no threads, index order — byte-identical to the
    // loop this API replaced (the --jobs 1 baseline contract). Exception
    // semantics match the parallel path: every task runs, the first error
    // is rethrown after the batch drains.
    std::exception_ptr err;
    for (size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      submitted_ += n;
      executed_[self_slot()] += n;
    }
    if (err) std::rethrow_exception(err);
    return;
  }
  Batch batch;
  batch.body = &body;
  batch.pending = n;
  const unsigned self = self_slot();
  std::unique_lock<std::mutex> lock(mu_);
  submitted_ += n;
  for (size_t i = 0; i < n; ++i) deques_[self].push_back({&batch, i});
  work_cv_.notify_all();
  // Help until this batch drains. Stealing may hand us tasks from an outer
  // batch while ours are in flight elsewhere; they are independent, so
  // running them here is useful work, not a hazard.
  while (batch.pending > 0) {
    Task t;
    if (take_locked(self, t))
      run_task(lock, self, t);
    else
      batch.done_cv.wait(lock);
  }
  const std::exception_ptr err = batch.error;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

Pool::Stats Pool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.submitted = submitted_;
  s.steals = steals_;
  s.stolen_tasks = stolen_tasks_;
  s.executed = executed_;
  return s;
}

}  // namespace camo::par
