// The EL2 hypervisor.
//
// In the paper the hypervisor is proprietary firmware; here it is host-side
// C++ implementing exactly the properties the design relies on (§3.1, §5.1,
// Appendix A.2):
//
//  * it owns both translation stages — EL1 cannot touch MMU state directly
//    (MSR writes to TTBRx/SCTLR/VBAR trap and are denied after lockdown);
//    the kernel requests address-space switches through HVC;
//  * it enforces execute-only memory via the stage-2 overlay (the key-setter
//    page is fetchable but not readable at EL1);
//  * it write-protects kernel text/rodata at stage 2, realizing the threat
//    model's "adversary cannot modify write-protected memory";
//  * it links, statically verifies (§4.1) and maps loadable kernel modules
//    on behalf of the kernel (HVC LoadModule), rejecting modules that read
//    PAuth key registers or tamper with SCTLR_EL1.
//
// It also provides a console for guest output and the physical-page
// allocator used when loading images.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "compiler/instrument.h"
#include "cpu/cpu.h"
#include "mem/mmu.h"
#include "obj/object.h"

namespace camo::hyp {

/// Guest→hypervisor call numbers (HVC immediate).
enum class HvcCall : uint16_t {
  ConsolePutc = 1,   ///< x0 = character
  ConsoleWrite = 2,  ///< x0 = buffer VA, x1 = length
  SwitchUserSpace = 3,  ///< x0 = address-space id
  LoadModule = 4,    ///< x0 = module id; ret x0 = init fn VA (0 = rejected),
                     ///< x1 = .pauth_init table VA, x2 = entry count
  Lockdown = 5,      ///< lock SCTLR/VBAR for the rest of the run
  SendIpi = 6,       ///< x0 = target core id; rings its IPI doorbell
};

class Hypervisor {
 public:
  Hypervisor(mem::PhysicalMemory& phys, mem::Mmu& mmu);

  // ---- physical memory management ----
  /// Allocate `count` fresh 4 KiB physical pages; returns the base PA.
  uint64_t alloc_pages(uint64_t count);

  // ---- translation ownership ----
  mem::Stage1Map& kernel_map() { return kernel_map_; }
  mem::Stage2Map& stage2() { return stage2_; }
  /// Create an empty user address space; returns its id.
  int create_user_space();
  mem::Stage1Map& user_space(int id);
  /// Make `id` the active user half (what HVC SwitchUserSpace does).
  void switch_user_space(int id);
  int active_user_space() const { return active_user_; }

  /// Map a linked image: allocates physical pages per segment, copies bytes
  /// and installs stage-1 mappings with kind-appropriate permissions
  /// (Text→RX, RoData→RO, Data/Bss→RW). Kernel-half images additionally get
  /// stage-2 write protection on Text and RoData.
  void load_image(const obj::Image& image, mem::Stage1Map& map, bool user);

  /// Map an anonymous zeroed kernel RW region (stacks, heaps).
  void map_kernel_rw(uint64_t va, uint64_t len);
  void map_user_rw(int space, uint64_t va, uint64_t len);

  /// Stage-2 execute-only protection for [va, va+len) of the kernel half
  /// (the key-setter page, §5.1).
  void protect_xom(uint64_t va, uint64_t len);

  // ---- CPU integration ----
  /// Install the HVC handler and the MSR lockdown filter on a core, and
  /// register it (by cpu_id) as an IPI target for HVC SendIpi.
  void install(cpu::Cpu& cpu);
  /// Wire a secondary core's Mmu to the hypervisor-owned kernel map and
  /// stage-2 overlay (the primary Mmu is wired by the constructor). All
  /// cores then share one stage-2 physical view by construction.
  void adopt_mmu(mem::Mmu& mmu);
  void lockdown() { locked_ = true; }
  bool locked_down() const { return locked_; }
  /// Number of denied EL1 writes to locked MMU registers (attack telemetry).
  uint64_t denied_msr_count() const { return denied_msr_; }

  // ---- modules ----
  /// Register a module (already instrumented). Returns the module id the
  /// guest passes to HVC LoadModule.
  int register_module(std::string name, obj::Program program);
  /// Kernel exports modules may link against.
  void set_kernel_exports(std::unordered_map<std::string, uint64_t> syms) {
    kernel_exports_ = std::move(syms);
  }
  /// The verifier applied to modules (host boot code also uses it for the
  /// kernel image; allow-lists are configured by the bootloader).
  analysis::Verifier& verifier() { return verifier_; }
  /// Result of the most recent module verification (for logs/tests).
  const std::optional<analysis::VerifyResult>& last_module_verify() const {
    return last_verify_;
  }
  /// Loaded-module info (host-side view).
  struct LoadedModule {
    std::string name;
    obj::Image image;
  };
  const std::vector<LoadedModule>& loaded_modules() const { return loaded_; }
  /// A registered-but-not-yet-loaded module (public so snapshot State can
  /// carry the registration table).
  struct PendingModule {
    std::string name;
    obj::Program program;
  };

  // ---- console ----
  const std::string& console() const { return console_; }
  void clear_console() { console_.clear(); }

  // ---- observability ----
  /// Structured EL2-side trace events (HVC calls, module loads, denied MSR
  /// writes). Null disables emission.
  void set_trace_sink(obs::TraceSink* s) { sink_ = s; }
  /// Security audit stream (obs/audit.h): MSR denials and module-verify
  /// verdicts. Null disables emission.
  void set_audit_sink(obs::AuditSink* s) { audit_ = s; }

  // ---- snapshot/fork (DESIGN.md §3j) ----
  /// Complete hypervisor-owned state: both translation stages, every user
  /// address space, the page/module-VA allocators, lockdown and module
  /// bookkeeping, and the console. CPU wiring (cpus_) and observability
  /// sinks are owned by the destination machine and excluded. Maps travel
  /// by value; restore_state() re-creates user spaces as fresh objects so
  /// every fork's maps carry process-unique uids (no ABA against the
  /// template's superblock/trace validation keys).
  struct State {
    mem::Stage1Map kernel_map;
    mem::Stage2Map stage2;
    std::vector<mem::Stage1Map> user_spaces;
    int active_user = -1;
    uint64_t next_free_pa = 0;
    uint64_t next_module_va = 0;
    bool locked = false;
    uint64_t denied_msr = 0;
    std::vector<PendingModule> modules;
    std::vector<LoadedModule> loaded;
    std::unordered_map<std::string, uint64_t> kernel_exports;
    analysis::Verifier verifier;
    std::optional<analysis::VerifyResult> last_verify;
    std::string console;
  };
  State save_state() const;
  void restore_state(const State& s);

 private:
  void handle_hvc(cpu::Cpu& cpu, uint16_t imm);
  bool filter_msr(cpu::Cpu& cpu, isa::SysReg reg, uint64_t value);
  void do_load_module(cpu::Cpu& cpu);

  mem::PhysicalMemory* phys_;
  mem::Mmu* mmu_;
  mem::Stage1Map kernel_map_;
  mem::Stage2Map stage2_;
  std::vector<std::unique_ptr<mem::Stage1Map>> user_spaces_;
  int active_user_ = -1;
  std::vector<cpu::Cpu*> cpus_;  ///< IPI targets, indexed by cpu_id

  uint64_t next_free_pa_ = 0x100000;  ///< first MiB reserved
  // Module area sits within B/BL range (±32 MiB) of the kernel image, just
  // as Linux keeps its module region near kernel text for direct branches.
  uint64_t next_module_va_ = 0xFFFF000001000000ull;

  bool locked_ = false;
  uint64_t denied_msr_ = 0;

  std::vector<PendingModule> modules_;
  std::vector<LoadedModule> loaded_;
  std::unordered_map<std::string, uint64_t> kernel_exports_;
  analysis::Verifier verifier_;
  std::optional<analysis::VerifyResult> last_verify_;

  std::string console_;
  obs::TraceSink* sink_ = nullptr;
  obs::AuditSink* audit_ = nullptr;
};

}  // namespace camo::hyp
