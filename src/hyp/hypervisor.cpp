#include "hyp/hypervisor.h"

#include <memory>

#include "support/bits.h"
#include "support/error.h"

namespace camo::hyp {

using mem::PagePerms;
using mem::Stage2Map;
using mem::VaLayout;

Hypervisor::Hypervisor(mem::PhysicalMemory& phys, mem::Mmu& mmu)
    : phys_(&phys), mmu_(&mmu) {
  mmu_->set_kernel_map(&kernel_map_);
  mmu_->set_stage2(&stage2_);
}

uint64_t Hypervisor::alloc_pages(uint64_t count) {
  const uint64_t pa = next_free_pa_;
  const uint64_t len = count * VaLayout::kPageSize;
  if (pa + len > phys_->size()) fail("hypervisor: out of physical memory");
  next_free_pa_ += len;
  return pa;
}

int Hypervisor::create_user_space() {
  user_spaces_.push_back(std::make_unique<mem::Stage1Map>());
  return static_cast<int>(user_spaces_.size()) - 1;
}

mem::Stage1Map& Hypervisor::user_space(int id) {
  if (id < 0 || static_cast<size_t>(id) >= user_spaces_.size())
    fail("hypervisor: bad address-space id");
  return *user_spaces_[static_cast<size_t>(id)];
}

void Hypervisor::switch_user_space(int id) {
  mmu_->set_user_map(&user_space(id));
  active_user_ = id;
}

void Hypervisor::load_image(const obj::Image& image, mem::Stage1Map& map,
                            bool user) {
  for (const auto& seg : image.segments) {
    const uint64_t va = align_down(seg.va, VaLayout::kPageSize);
    const uint64_t len =
        align_up(seg.va + seg.bytes.size(), VaLayout::kPageSize) - va;
    const uint64_t pa = alloc_pages(len / VaLayout::kPageSize);
    phys_->fill(pa, 0, len);
    phys_->write_block(pa + (seg.va - va), seg.bytes.data(), seg.bytes.size());

    PagePerms perms;
    switch (seg.kind) {
      case obj::SectionKind::Text:
        perms = user ? PagePerms::user_text() : PagePerms::kernel_text();
        break;
      case obj::SectionKind::RoData:
        perms = user ? PagePerms::user_ro() : PagePerms::kernel_ro();
        break;
      case obj::SectionKind::Data:
      case obj::SectionKind::Bss:
        perms = user ? PagePerms::user_rw() : PagePerms::kernel_rw();
        break;
    }
    map.map_range(va, pa, len, perms);

    // Realize the threat model: kernel text and rodata are write-protected
    // below EL2, so the attacker's write primitive cannot touch them.
    if (!user && (seg.kind == obj::SectionKind::Text ||
                  seg.kind == obj::SectionKind::RoData))
      stage2_.restrict_range(pa, len, Stage2Map::read_only());
  }
}

void Hypervisor::map_kernel_rw(uint64_t va, uint64_t len) {
  len = align_up(len, VaLayout::kPageSize);
  const uint64_t pa = alloc_pages(len / VaLayout::kPageSize);
  phys_->fill(pa, 0, len);
  kernel_map_.map_range(va, pa, len, PagePerms::kernel_rw());
}

void Hypervisor::map_user_rw(int space, uint64_t va, uint64_t len) {
  len = align_up(len, VaLayout::kPageSize);
  const uint64_t pa = alloc_pages(len / VaLayout::kPageSize);
  phys_->fill(pa, 0, len);
  user_space(space).map_range(va, pa, len, PagePerms::user_rw());
}

void Hypervisor::protect_xom(uint64_t va, uint64_t len) {
  for (uint64_t off = 0; off < len; off += VaLayout::kPageSize) {
    const auto t =
        mmu_->translate(va + off, mem::Access::Fetch, mem::El::El2);
    if (!t.ok()) fail("protect_xom: page not mapped executable");
    stage2_.restrict_page(t.pa, Stage2Map::xom());
  }
}

void Hypervisor::install(cpu::Cpu& cpu) {
  cpu.set_hvc_handler(
      [this](cpu::Cpu& c, uint16_t imm) { handle_hvc(c, imm); });
  cpu.set_msr_filter([this](cpu::Cpu& c, isa::SysReg r, uint64_t v) {
    return filter_msr(c, r, v);
  });
  const unsigned id = cpu.cpu_id();
  if (cpus_.size() <= id) cpus_.resize(id + 1, nullptr);
  cpus_[id] = &cpu;
}

void Hypervisor::adopt_mmu(mem::Mmu& mmu) {
  mmu.set_kernel_map(&kernel_map_);
  mmu.set_stage2(&stage2_);
}

Hypervisor::State Hypervisor::save_state() const {
  State s;
  s.kernel_map.copy_from(kernel_map_);
  s.stage2.copy_from(stage2_);
  s.user_spaces.resize(user_spaces_.size());
  for (size_t i = 0; i < user_spaces_.size(); ++i)
    s.user_spaces[i].copy_from(*user_spaces_[i]);
  s.active_user = active_user_;
  s.next_free_pa = next_free_pa_;
  s.next_module_va = next_module_va_;
  s.locked = locked_;
  s.denied_msr = denied_msr_;
  s.modules = modules_;
  s.loaded = loaded_;
  s.kernel_exports = kernel_exports_;
  s.verifier = verifier_;
  s.last_verify = last_verify_;
  s.console = console_;
  return s;
}

void Hypervisor::restore_state(const State& s) {
  kernel_map_.copy_from(s.kernel_map);
  stage2_.copy_from(s.stage2);
  // Fresh map objects per restore: each fork's user spaces get their own
  // process-unique uids, so nothing validated against the template's maps
  // can alias a fork's (see Stage1Map::copy_from).
  user_spaces_.clear();
  for (const auto& us : s.user_spaces) {
    user_spaces_.push_back(std::make_unique<mem::Stage1Map>());
    user_spaces_.back()->copy_from(us);
  }
  active_user_ = s.active_user;
  next_free_pa_ = s.next_free_pa;
  next_module_va_ = s.next_module_va;
  locked_ = s.locked;
  denied_msr_ = s.denied_msr;
  modules_ = s.modules;
  loaded_ = s.loaded;
  kernel_exports_ = s.kernel_exports;
  verifier_ = s.verifier;
  last_verify_ = s.last_verify;
  console_ = s.console;
  // The primary Mmu was wired to kernel_map_/stage2_ at construction; their
  // contents just changed wholesale, so drop any cached translations.
  mmu_->flush_tlb();
}

bool Hypervisor::filter_msr(cpu::Cpu& cpu, isa::SysReg reg, uint64_t) {
  using isa::SysReg;
  const auto deny = [&] {
    ++denied_msr_;
    if (sink_) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::MsrDenied;
      e.cycles = cpu.cycles();
      e.pc = cpu.pc;
      e.el = static_cast<uint8_t>(cpu.pstate.el);
      e.imm = static_cast<uint16_t>(reg);
      sink_->emit(e);
    }
    if (audit_) {
      obs::AuditEvent a;
      a.kind = obs::AuditKind::HypDenied;
      a.cycles = cpu.cycles();
      a.pc = cpu.pc;
      a.el = static_cast<uint8_t>(cpu.pstate.el);
      a.cpu = static_cast<uint8_t>(cpu.cpu_id());
      a.imm = static_cast<uint16_t>(reg);
      audit_->audit(a);
    }
    return false;
  };
  // Translation control is never EL1-writable: the paper's threat model has
  // the hypervisor lock MMU system registers outright.
  if (reg == SysReg::TTBR0_EL1 || reg == SysReg::TTBR1_EL1) return deny();
  // SCTLR/VBAR are writable during early boot only; Lockdown freezes them.
  if (locked_ && (reg == SysReg::SCTLR_EL1 || reg == SysReg::VBAR_EL1))
    return deny();
  return true;
}

void Hypervisor::handle_hvc(cpu::Cpu& cpu, uint16_t imm) {
  if (sink_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::HvcCall;
    e.cycles = cpu.cycles();
    e.pc = cpu.pc;
    e.a = cpu.x(0);
    e.b = cpu.x(1);
    e.el = static_cast<uint8_t>(cpu.pstate.el);
    e.imm = imm;
    sink_->emit(e);
  }
  switch (static_cast<HvcCall>(imm)) {
    case HvcCall::ConsolePutc:
      console_.push_back(static_cast<char>(cpu.x(0)));
      break;
    case HvcCall::ConsoleWrite: {
      // Read through the *calling* core's Mmu: on a single-core machine this
      // is the primary Mmu, on SMP it resolves the caller's stage-1 state.
      const uint64_t va = cpu.x(0);
      const uint64_t len = cpu.x(1);
      for (uint64_t i = 0; i < len && i < 4096; ++i) {
        const auto r = cpu.mmu().read8(va + i, mem::El::El2);
        if (r.fault != mem::FaultKind::None) break;
        console_.push_back(static_cast<char>(r.value));
      }
      break;
    }
    case HvcCall::SwitchUserSpace: {
      // Switch the calling core's user half only — each core runs its own
      // task. active_user_ tracks the most recent switch (host telemetry).
      const int id = static_cast<int>(cpu.x(0));
      cpu.mmu().set_user_map(&user_space(id));
      active_user_ = id;
      break;
    }
    case HvcCall::LoadModule:
      do_load_module(cpu);
      break;
    case HvcCall::Lockdown:
      lockdown();
      break;
    case HvcCall::SendIpi: {
      // IPI doorbell: latch the source bit on the target core. An invalid
      // target is a deterministic no-op (the guest scheduler never sends
      // one; attack code might probe).
      const uint64_t target = cpu.x(0);
      if (target < cpus_.size() && cpus_[target] != nullptr)
        cpus_[target]->raise_irq(cpu::Cpu::kIrqSrcIpi);
      break;
    }
    default:
      fail("hypervisor: unknown HVC #" + std::to_string(imm));
  }
}

int Hypervisor::register_module(std::string name, obj::Program program) {
  modules_.push_back({std::move(name), std::move(program)});
  return static_cast<int>(modules_.size()) - 1;
}

void Hypervisor::do_load_module(cpu::Cpu& cpu) {
  const auto id = cpu.x(0);
  if (id >= modules_.size()) {
    cpu.set_x(0, 0);
    return;
  }
  auto& mod = modules_[id];

  const uint64_t base = next_module_va_;
  obj::Image image = obj::Linker::link(mod.program, base, kernel_exports_);
  next_module_va_ = align_up(image.end_va(), 0x100000);  // 1 MiB module slots

  // §4.1: scan the module for key reads / SCTLR tampering before mapping.
  last_verify_ = verifier_.verify_image(image);
  const bool ok = last_verify_->ok();

  const std::string init_sym = mod.name + "_init";
  const uint64_t init_va =
      ok && image.has_symbol(init_sym) ? image.symbol(init_sym) : 0;

  if (sink_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::ModuleLoad;
    e.cycles = cpu.cycles();
    e.pc = cpu.pc;
    e.a = id;
    e.b = init_va;
    e.el = static_cast<uint8_t>(cpu.pstate.el);
    e.k1 = ok ? 1 : 0;
    sink_->emit(e);
  }
  if (audit_) {
    obs::AuditEvent a;
    a.kind = obs::AuditKind::ModuleVerify;
    a.cycles = cpu.cycles();
    a.pc = cpu.pc;
    a.ptr = id;
    a.ptr2 = init_va;
    a.el = static_cast<uint8_t>(cpu.pstate.el);
    a.aux = ok ? 1 : 0;
    a.cpu = static_cast<uint8_t>(cpu.cpu_id());
    audit_->audit(a);
  }

  if (!ok) {
    cpu.set_x(0, 0);
    return;
  }

  load_image(image, kernel_map_, /*user=*/false);
  loaded_.push_back({mod.name, image});

  cpu.set_x(0, init_va);
  cpu.set_x(1, image.pauth_table_va);
  cpu.set_x(2, image.pauth_table_count);
}

}  // namespace camo::hyp
