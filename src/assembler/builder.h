// FunctionBuilder: the assembly-level IR that guest code is written in.
//
// A function body is a list of items: concrete instructions, local labels,
// symbol references (resolved by the linker via relocations) and *pseudo
// instructions*. Pseudo instructions are the hooks the instrumentation
// passes rewrite:
//
//   FramePush / FramePopRet   the canonical prologue/epilogue (Listing 1).
//                             The backward-edge CFI pass expands them per the
//                             configured scheme (Listings 2 and 3), matching
//                             the paper's compiler modification; the same
//                             expansions implement the frame_push/frame_pop
//                             assembler macros of §5.2.
//   StoreProtected/LoadProtected  the set_xxx()/xxx() getter/setter pattern
//                             of §5.3 (Listing 4): sign/authenticate a
//                             pointer member against the containing object's
//                             address ‖ 16-bit type constant.
//   CallProtected             authenticated indirect call through a writable
//                             function pointer (forward-edge CFI, §4.4).
//
// A function must be run through compiler::instrument() (which expands all
// pseudo items) before it can be assembled to words.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/pauth.h"
#include "isa/isa.h"

namespace camo::assembler {

using Label = int;

enum class PseudoKind : uint8_t {
  FramePush,
  FramePopRet,
  StoreProtected,
  LoadProtected,
  CallProtected,
};

struct PseudoInst {
  PseudoKind kind = PseudoKind::FramePush;
  uint8_t rt = 0;          ///< pointer / value register
  uint8_t robj = 0;        ///< containing-object base register
  int64_t offset = 0;      ///< member offset (Load/StoreProtected),
                           ///< or local-stack bytes (FramePush/FramePopRet)
  uint16_t type_id = 0;    ///< 16-bit type·member constant (§4.3)
  cpu::PacKey key = cpu::PacKey::DB;
};

/// Relocation kinds a linker must resolve.
enum class RelocKind : uint8_t {
  Branch26,  ///< B/BL word offset
  Adr19,     ///< ADR byte offset (PC-relative)
  Abs16Hw0,  ///< MOVZ/MOVK absolute-address 16-bit chunks
  Abs16Hw1,
  Abs16Hw2,
  Abs16Hw3,
  Abs64,     ///< 64-bit data pointer (data sections only)
};

struct Item {
  enum class Kind : uint8_t { Inst, Pseudo, LabelDef } kind = Kind::Inst;
  isa::Inst inst;
  PseudoInst pseudo;
  Label label = -1;      ///< branch/adr target (local label), or LabelDef id
  std::string sym;       ///< external symbol reference (→ relocation)
  RelocKind reloc = RelocKind::Branch26;
};

/// A relocation produced when a function is assembled.
struct Reloc {
  uint64_t offset = 0;  ///< byte offset within the function
  RelocKind kind = RelocKind::Branch26;
  std::string sym;
  int64_t addend = 0;
};

struct AssembledFunction {
  std::vector<uint32_t> words;
  std::vector<Reloc> relocs;
};

class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name);

  const std::string& name() const { return name_; }
  std::vector<Item>& items() { return items_; }
  const std::vector<Item>& items() const { return items_; }

  /// Functions marked no_instrument are left untouched by every pass (used
  /// for the XOM key setter, exception vectors and hand-scheduled code).
  FunctionBuilder& set_no_instrument(bool v = true) {
    no_instrument_ = v;
    return *this;
  }
  bool no_instrument() const { return no_instrument_; }

  // ---- labels ----
  Label make_label();
  void bind(Label l);
  /// The implicit entry label (bound at offset 0; the Camouflage modifier's
  /// "function address" half resolves against it).
  Label entry_label() const { return 0; }

  // ---- raw emission ----
  void emit(const isa::Inst& inst);
  void emit_pseudo(const PseudoInst& p);

  // ---- mnemonics ----
  void movz(uint8_t rd, uint16_t imm, uint8_t hw = 0);
  void movk(uint8_t rd, uint16_t imm, uint8_t hw);
  void movn(uint8_t rd, uint16_t imm, uint8_t hw = 0);
  /// Materialize an arbitrary 64-bit constant (1-4 instructions).
  void mov_imm(uint8_t rd, uint64_t value);
  /// Register move (ORR alias). Neither operand may be SP.
  void mov(uint8_t rd, uint8_t rn);
  /// Move between SP and a register (ADD-immediate alias).
  void mov_from_sp(uint8_t rd);
  void mov_to_sp(uint8_t rn);

  void add(uint8_t rd, uint8_t rn, uint8_t rm);
  void sub(uint8_t rd, uint8_t rn, uint8_t rm);
  void adds(uint8_t rd, uint8_t rn, uint8_t rm);
  void subs(uint8_t rd, uint8_t rn, uint8_t rm);
  void and_(uint8_t rd, uint8_t rn, uint8_t rm);
  void orr(uint8_t rd, uint8_t rn, uint8_t rm);
  void eor(uint8_t rd, uint8_t rn, uint8_t rm);
  void mul(uint8_t rd, uint8_t rn, uint8_t rm);
  void udiv(uint8_t rd, uint8_t rn, uint8_t rm);
  void lslv(uint8_t rd, uint8_t rn, uint8_t rm);
  void lsrv(uint8_t rd, uint8_t rn, uint8_t rm);
  void cmp(uint8_t rn, uint8_t rm);

  void add_i(uint8_t rd, uint8_t rn, uint16_t imm);
  void sub_i(uint8_t rd, uint8_t rn, uint16_t imm);
  void and_i(uint8_t rd, uint8_t rn, uint16_t imm);
  void orr_i(uint8_t rd, uint8_t rn, uint16_t imm);
  void eor_i(uint8_t rd, uint8_t rn, uint16_t imm);
  void cmp_i(uint8_t rn, uint16_t imm);

  void lsl_i(uint8_t rd, uint8_t rn, uint8_t shift);
  void lsr_i(uint8_t rd, uint8_t rn, uint8_t shift);
  void asr_i(uint8_t rd, uint8_t rn, uint8_t shift);
  void bfi(uint8_t rd, uint8_t rn, uint8_t lsb, uint8_t width);
  void ubfx(uint8_t rd, uint8_t rn, uint8_t lsb, uint8_t width);

  void adr(uint8_t rd, Label target);
  /// ADR of an external symbol (Adr19 relocation; linker checks range).
  void adr_sym(uint8_t rd, const std::string& sym);
  /// Materialize an external symbol's absolute address (4 instructions).
  void mov_sym(uint8_t rd, const std::string& sym);

  void ldr(uint8_t rt, uint8_t rn, uint16_t off = 0);
  void str(uint8_t rt, uint8_t rn, uint16_t off = 0);
  void ldrb(uint8_t rt, uint8_t rn, uint16_t off = 0);
  void strb(uint8_t rt, uint8_t rn, uint16_t off = 0);
  void ldp(uint8_t rt, uint8_t rt2, uint8_t rn, int16_t off = 0);
  void stp(uint8_t rt, uint8_t rt2, uint8_t rn, int16_t off = 0);
  void stp_pre(uint8_t rt, uint8_t rt2, uint8_t rn, int16_t off);
  void ldp_post(uint8_t rt, uint8_t rt2, uint8_t rn, int16_t off);
  /// Atomic swap: rd = old [rn], [rn] = rm — indivisible even under the SMP
  /// interleaver (it never splits one instruction). Spinlock primitive.
  void swp(uint8_t rd, uint8_t rn, uint8_t rm);

  void b(Label target);
  void bl(Label target);
  void bl_sym(const std::string& sym);
  void b_sym(const std::string& sym);
  void b_cond(isa::Cond cond, Label target);
  void cbz(uint8_t rt, Label target);
  void cbnz(uint8_t rt, Label target);
  void br(uint8_t rn);
  void blr(uint8_t rn);
  void ret();
  void braa(uint8_t rn, uint8_t rm);
  void brab(uint8_t rn, uint8_t rm);
  void blraa(uint8_t rn, uint8_t rm);
  void blrab(uint8_t rn, uint8_t rm);
  void retaa();
  void retab();

  void mrs(uint8_t rt, isa::SysReg sr);
  void msr(isa::SysReg sr, uint8_t rt);
  void svc(uint16_t imm);
  void hvc(uint16_t imm);
  void brk(uint16_t imm);
  void hlt(uint16_t imm);
  void eret();
  void daifset();
  void daifclr();
  void isb();
  void nop();

  void pacia(uint8_t rd, uint8_t rn);
  void pacib(uint8_t rd, uint8_t rn);
  void pacda(uint8_t rd, uint8_t rn);
  void pacdb(uint8_t rd, uint8_t rn);
  void autia(uint8_t rd, uint8_t rn);
  void autib(uint8_t rd, uint8_t rn);
  void autda(uint8_t rd, uint8_t rn);
  void autdb(uint8_t rd, uint8_t rn);
  void pacga(uint8_t rd, uint8_t rn, uint8_t rm);
  void xpaci(uint8_t rd);
  void xpacd(uint8_t rd);
  void paciasp();
  void autiasp();
  void pacibsp();
  void autibsp();
  void pacia1716();
  void pacib1716();
  void autia1716();
  void autib1716();
  void xpaclri();

  // ---- pseudo instructions (expanded by compiler::instrument) ----
  /// Canonical prologue; locals_bytes of extra stack (16-aligned).
  void frame_push(uint16_t locals_bytes = 0);
  /// Canonical epilogue + return (must mirror frame_push's locals_bytes).
  void frame_pop_ret(uint16_t locals_bytes = 0);
  /// set-style accessor: sign rt against (robj, type_id), store to
  /// [robj + offset].
  void store_protected(uint8_t rt, uint8_t robj, uint16_t offset,
                       uint16_t type_id, cpu::PacKey key = cpu::PacKey::DB);
  /// get-style accessor: load [robj + offset] into rt, authenticate.
  void load_protected(uint8_t rt, uint8_t robj, uint16_t offset,
                      uint16_t type_id, cpu::PacKey key = cpu::PacKey::DB);
  /// Authenticated indirect call through writable function pointer rt.
  void call_protected(uint8_t rt, uint8_t robj, uint16_t type_id,
                      cpu::PacKey key = cpu::PacKey::IB);

  // ---- assembly ----
  /// True when no pseudo items remain (i.e. instrument() has run).
  bool lowered() const;
  /// Resolve local labels and encode. Fails on unresolved pseudos or
  /// unbound labels. Relocation offsets are function-relative.
  AssembledFunction assemble() const;
  /// Pretty listing for debugging/golden tests.
  std::string listing() const;

 private:
  void emit_label_ref(isa::Op op, Label target, isa::Cond cond, uint8_t rt);

  std::string name_;
  std::vector<Item> items_;
  int next_label_ = 0;
  bool no_instrument_ = false;
};

}  // namespace camo::assembler
