#include "assembler/builder.h"

#include <sstream>
#include <unordered_map>

#include "support/bits.h"
#include "support/error.h"
#include "support/format.h"

namespace camo::assembler {

using isa::Inst;
using isa::Op;

FunctionBuilder::FunctionBuilder(std::string name) : name_(std::move(name)) {
  bind(make_label());  // label 0: the function entry
}

Label FunctionBuilder::make_label() { return next_label_++; }

void FunctionBuilder::bind(Label l) {
  if (l < 0 || l >= next_label_) fail("bind: unknown label");
  Item item;
  item.kind = Item::Kind::LabelDef;
  item.label = l;
  items_.push_back(std::move(item));
}

void FunctionBuilder::emit(const Inst& inst) {
  Item item;
  item.inst = inst;
  items_.push_back(std::move(item));
}

void FunctionBuilder::emit_pseudo(const PseudoInst& p) {
  Item item;
  item.kind = Item::Kind::Pseudo;
  item.pseudo = p;
  items_.push_back(std::move(item));
}

void FunctionBuilder::emit_label_ref(Op op, Label target, isa::Cond cond,
                                     uint8_t rt) {
  Item item;
  item.inst.op = op;
  item.inst.cond = cond;
  item.inst.rd = rt;
  item.label = target;
  items_.push_back(std::move(item));
}

// ---- mnemonics ------------------------------------------------------------

namespace {
Inst make(Op op) {
  Inst i;
  i.op = op;
  return i;
}
}  // namespace

void FunctionBuilder::movz(uint8_t rd, uint16_t imm, uint8_t hw) {
  Inst i = make(Op::MOVZ);
  i.rd = rd;
  i.imm = imm;
  i.hw = hw;
  emit(i);
}
void FunctionBuilder::movk(uint8_t rd, uint16_t imm, uint8_t hw) {
  Inst i = make(Op::MOVK);
  i.rd = rd;
  i.imm = imm;
  i.hw = hw;
  emit(i);
}
void FunctionBuilder::movn(uint8_t rd, uint16_t imm, uint8_t hw) {
  Inst i = make(Op::MOVN);
  i.rd = rd;
  i.imm = imm;
  i.hw = hw;
  emit(i);
}

void FunctionBuilder::mov_imm(uint8_t rd, uint64_t value) {
  movz(rd, static_cast<uint16_t>(value & 0xFFFF), 0);
  for (uint8_t hw = 1; hw < 4; ++hw) {
    const uint16_t chunk = static_cast<uint16_t>((value >> (16 * hw)) & 0xFFFF);
    if (chunk != 0) movk(rd, chunk, hw);
  }
}

void FunctionBuilder::mov(uint8_t rd, uint8_t rn) {
  if (rd == isa::kRegZrSp || rn == isa::kRegZrSp)
    fail("mov: use mov_from_sp/mov_to_sp for SP");
  Inst i = make(Op::ORR);
  i.rd = rd;
  i.rn = isa::kRegZrSp;  // XZR
  i.rm = rn;
  emit(i);
}

void FunctionBuilder::mov_from_sp(uint8_t rd) {
  Inst i = make(Op::ADDI);
  i.rd = rd;
  i.rn = isa::kRegZrSp;
  i.imm = 0;
  emit(i);
}

void FunctionBuilder::mov_to_sp(uint8_t rn) {
  Inst i = make(Op::ADDI);
  i.rd = isa::kRegZrSp;
  i.rn = rn;
  i.imm = 0;
  emit(i);
}

#define CAMO_R3(fn, OP)                                              \
  void FunctionBuilder::fn(uint8_t rd, uint8_t rn, uint8_t rm) {     \
    Inst i = make(Op::OP);                                           \
    i.rd = rd;                                                       \
    i.rn = rn;                                                       \
    i.rm = rm;                                                       \
    emit(i);                                                         \
  }
CAMO_R3(add, ADD)
CAMO_R3(sub, SUB)
CAMO_R3(adds, ADDS)
CAMO_R3(subs, SUBS)
CAMO_R3(and_, AND)
CAMO_R3(orr, ORR)
CAMO_R3(eor, EOR)
CAMO_R3(mul, MUL)
CAMO_R3(udiv, UDIV)
CAMO_R3(lslv, LSLV)
CAMO_R3(lsrv, LSRV)
CAMO_R3(pacga, PACGA)
CAMO_R3(swp, SWP)
#undef CAMO_R3

void FunctionBuilder::cmp(uint8_t rn, uint8_t rm) {
  subs(isa::kRegZrSp, rn, rm);
}

#define CAMO_RI(fn, OP)                                              \
  void FunctionBuilder::fn(uint8_t rd, uint8_t rn, uint16_t imm) {   \
    Inst i = make(Op::OP);                                           \
    i.rd = rd;                                                       \
    i.rn = rn;                                                       \
    i.imm = imm;                                                     \
    emit(i);                                                         \
  }
CAMO_RI(add_i, ADDI)
CAMO_RI(sub_i, SUBI)
CAMO_RI(and_i, ANDI)
CAMO_RI(orr_i, ORRI)
CAMO_RI(eor_i, EORI)
#undef CAMO_RI

void FunctionBuilder::cmp_i(uint8_t rn, uint16_t imm) {
  Inst i = make(Op::SUBSI);
  i.rd = isa::kRegZrSp;
  i.rn = rn;
  i.imm = imm;
  emit(i);
}

#define CAMO_SHIFT(fn, OP)                                          \
  void FunctionBuilder::fn(uint8_t rd, uint8_t rn, uint8_t shift) { \
    Inst i = make(Op::OP);                                          \
    i.rd = rd;                                                      \
    i.rn = rn;                                                      \
    i.imm = shift;                                                  \
    emit(i);                                                        \
  }
CAMO_SHIFT(lsl_i, LSLI)
CAMO_SHIFT(lsr_i, LSRI)
CAMO_SHIFT(asr_i, ASRI)
#undef CAMO_SHIFT

void FunctionBuilder::bfi(uint8_t rd, uint8_t rn, uint8_t lsb, uint8_t width) {
  Inst i = make(Op::BFI);
  i.rd = rd;
  i.rn = rn;
  i.lsb = lsb;
  i.width = width;
  emit(i);
}
void FunctionBuilder::ubfx(uint8_t rd, uint8_t rn, uint8_t lsb, uint8_t width) {
  Inst i = make(Op::UBFX);
  i.rd = rd;
  i.rn = rn;
  i.lsb = lsb;
  i.width = width;
  emit(i);
}

void FunctionBuilder::adr(uint8_t rd, Label target) {
  emit_label_ref(Op::ADR, target, isa::Cond::AL, rd);
}

void FunctionBuilder::adr_sym(uint8_t rd, const std::string& sym) {
  Item item;
  item.inst = make(Op::ADR);
  item.inst.rd = rd;
  item.sym = sym;
  item.reloc = RelocKind::Adr19;
  items_.push_back(std::move(item));
}

void FunctionBuilder::mov_sym(uint8_t rd, const std::string& sym) {
  static constexpr RelocKind kinds[] = {RelocKind::Abs16Hw0, RelocKind::Abs16Hw1,
                                        RelocKind::Abs16Hw2, RelocKind::Abs16Hw3};
  for (uint8_t hw = 0; hw < 4; ++hw) {
    Item item;
    item.inst = make(hw == 0 ? Op::MOVZ : Op::MOVK);
    item.inst.rd = rd;
    item.inst.hw = hw;
    item.sym = sym;
    item.reloc = kinds[hw];
    items_.push_back(std::move(item));
  }
}

#define CAMO_MEM(fn, OP)                                             \
  void FunctionBuilder::fn(uint8_t rt, uint8_t rn, uint16_t off) {   \
    Inst i = make(Op::OP);                                           \
    i.rd = rt;                                                       \
    i.rn = rn;                                                       \
    i.imm = off;                                                     \
    emit(i);                                                         \
  }
CAMO_MEM(ldr, LDR)
CAMO_MEM(str, STR)
CAMO_MEM(ldrb, LDRB)
CAMO_MEM(strb, STRB)
#undef CAMO_MEM

#define CAMO_MEMP(fn, OP)                                                    \
  void FunctionBuilder::fn(uint8_t rt, uint8_t rt2, uint8_t rn, int16_t off) { \
    Inst i = make(Op::OP);                                                   \
    i.rd = rt;                                                               \
    i.rm = rt2;                                                              \
    i.rn = rn;                                                               \
    i.imm = off;                                                             \
    emit(i);                                                                 \
  }
CAMO_MEMP(ldp, LDP)
CAMO_MEMP(stp, STP)
CAMO_MEMP(stp_pre, STP_PRE)
CAMO_MEMP(ldp_post, LDP_POST)
#undef CAMO_MEMP

void FunctionBuilder::b(Label target) {
  emit_label_ref(Op::B, target, isa::Cond::AL, 0);
}
void FunctionBuilder::bl(Label target) {
  emit_label_ref(Op::BL, target, isa::Cond::AL, 0);
}
void FunctionBuilder::bl_sym(const std::string& sym) {
  Item item;
  item.inst = make(Op::BL);
  item.sym = sym;
  item.reloc = RelocKind::Branch26;
  items_.push_back(std::move(item));
}
void FunctionBuilder::b_sym(const std::string& sym) {
  Item item;
  item.inst = make(Op::B);
  item.sym = sym;
  item.reloc = RelocKind::Branch26;
  items_.push_back(std::move(item));
}
void FunctionBuilder::b_cond(isa::Cond cond, Label target) {
  emit_label_ref(Op::BCOND, target, cond, 0);
}
void FunctionBuilder::cbz(uint8_t rt, Label target) {
  emit_label_ref(Op::CBZ, target, isa::Cond::AL, rt);
}
void FunctionBuilder::cbnz(uint8_t rt, Label target) {
  emit_label_ref(Op::CBNZ, target, isa::Cond::AL, rt);
}

void FunctionBuilder::br(uint8_t rn) {
  Inst i = make(Op::BR);
  i.rn = rn;
  emit(i);
}
void FunctionBuilder::blr(uint8_t rn) {
  Inst i = make(Op::BLR);
  i.rn = rn;
  emit(i);
}
void FunctionBuilder::ret() {
  Inst i = make(Op::RET);
  i.rn = isa::kRegLr;
  emit(i);
}

#define CAMO_PACBR(fn, OP)                                   \
  void FunctionBuilder::fn(uint8_t rn, uint8_t rm) {         \
    Inst i = make(Op::OP);                                   \
    i.rn = rn;                                               \
    i.rm = rm;                                               \
    emit(i);                                                 \
  }
CAMO_PACBR(braa, BRAA)
CAMO_PACBR(brab, BRAB)
CAMO_PACBR(blraa, BLRAA)
CAMO_PACBR(blrab, BLRAB)
#undef CAMO_PACBR

void FunctionBuilder::retaa() { emit(make(Op::RETAA)); }
void FunctionBuilder::retab() { emit(make(Op::RETAB)); }

void FunctionBuilder::mrs(uint8_t rt, isa::SysReg sr) {
  Inst i = make(Op::MRS);
  i.rd = rt;
  i.sysreg = sr;
  emit(i);
}
void FunctionBuilder::msr(isa::SysReg sr, uint8_t rt) {
  Inst i = make(Op::MSR);
  i.rd = rt;
  i.sysreg = sr;
  emit(i);
}

#define CAMO_IMM16(fn, OP)                      \
  void FunctionBuilder::fn(uint16_t imm) {      \
    Inst i = make(Op::OP);                      \
    i.imm = imm;                                \
    emit(i);                                    \
  }
CAMO_IMM16(svc, SVC)
CAMO_IMM16(hvc, HVC)
CAMO_IMM16(brk, BRK)
CAMO_IMM16(hlt, HLT)
#undef CAMO_IMM16

void FunctionBuilder::eret() { emit(make(Op::ERET)); }
void FunctionBuilder::daifset() { emit(make(Op::DAIFSET)); }
void FunctionBuilder::daifclr() { emit(make(Op::DAIFCLR)); }
void FunctionBuilder::isb() { emit(make(Op::ISB)); }
void FunctionBuilder::nop() { emit(make(Op::NOP)); }

#define CAMO_PAC(fn, OP)                                 \
  void FunctionBuilder::fn(uint8_t rd, uint8_t rn) {     \
    Inst i = make(Op::OP);                               \
    i.rd = rd;                                           \
    i.rn = rn;                                           \
    emit(i);                                             \
  }
CAMO_PAC(pacia, PACIA)
CAMO_PAC(pacib, PACIB)
CAMO_PAC(pacda, PACDA)
CAMO_PAC(pacdb, PACDB)
CAMO_PAC(autia, AUTIA)
CAMO_PAC(autib, AUTIB)
CAMO_PAC(autda, AUTDA)
CAMO_PAC(autdb, AUTDB)
#undef CAMO_PAC

void FunctionBuilder::xpaci(uint8_t rd) {
  Inst i = make(Op::XPACI);
  i.rd = rd;
  emit(i);
}
void FunctionBuilder::xpacd(uint8_t rd) {
  Inst i = make(Op::XPACD);
  i.rd = rd;
  emit(i);
}
void FunctionBuilder::paciasp() { emit(make(Op::PACIASP)); }
void FunctionBuilder::autiasp() { emit(make(Op::AUTIASP)); }
void FunctionBuilder::pacibsp() { emit(make(Op::PACIBSP)); }
void FunctionBuilder::autibsp() { emit(make(Op::AUTIBSP)); }
void FunctionBuilder::pacia1716() { emit(make(Op::PACIA1716)); }
void FunctionBuilder::pacib1716() { emit(make(Op::PACIB1716)); }
void FunctionBuilder::autia1716() { emit(make(Op::AUTIA1716)); }
void FunctionBuilder::autib1716() { emit(make(Op::AUTIB1716)); }
void FunctionBuilder::xpaclri() { emit(make(Op::XPACLRI)); }

// ---- pseudo instructions ---------------------------------------------------

void FunctionBuilder::frame_push(uint16_t locals_bytes) {
  if (locals_bytes % 16 != 0) fail("frame_push: locals must be 16-aligned");
  PseudoInst p;
  p.kind = PseudoKind::FramePush;
  p.offset = locals_bytes;
  emit_pseudo(p);
}

void FunctionBuilder::frame_pop_ret(uint16_t locals_bytes) {
  if (locals_bytes % 16 != 0) fail("frame_pop_ret: locals must be 16-aligned");
  PseudoInst p;
  p.kind = PseudoKind::FramePopRet;
  p.offset = locals_bytes;
  emit_pseudo(p);
}

void FunctionBuilder::store_protected(uint8_t rt, uint8_t robj, uint16_t offset,
                                      uint16_t type_id, cpu::PacKey key) {
  PseudoInst p;
  p.kind = PseudoKind::StoreProtected;
  p.rt = rt;
  p.robj = robj;
  p.offset = offset;
  p.type_id = type_id;
  p.key = key;
  emit_pseudo(p);
}

void FunctionBuilder::load_protected(uint8_t rt, uint8_t robj, uint16_t offset,
                                     uint16_t type_id, cpu::PacKey key) {
  PseudoInst p;
  p.kind = PseudoKind::LoadProtected;
  p.rt = rt;
  p.robj = robj;
  p.offset = offset;
  p.type_id = type_id;
  p.key = key;
  emit_pseudo(p);
}

void FunctionBuilder::call_protected(uint8_t rt, uint8_t robj, uint16_t type_id,
                                     cpu::PacKey key) {
  PseudoInst p;
  p.kind = PseudoKind::CallProtected;
  p.rt = rt;
  p.robj = robj;
  p.type_id = type_id;
  p.key = key;
  emit_pseudo(p);
}

// ---- assembly ---------------------------------------------------------------

bool FunctionBuilder::lowered() const {
  for (const auto& item : items_)
    if (item.kind == Item::Kind::Pseudo) return false;
  return true;
}

AssembledFunction FunctionBuilder::assemble() const {
  // Pass 1: byte offsets for every instruction; label bindings.
  std::unordered_map<Label, uint64_t> label_offset;
  uint64_t off = 0;
  for (const auto& item : items_) {
    switch (item.kind) {
      case Item::Kind::LabelDef:
        label_offset[item.label] = off;
        break;
      case Item::Kind::Pseudo:
        fail("assemble: function '" + name_ +
             "' has unexpanded pseudo instructions (run instrument())");
      case Item::Kind::Inst:
        off += 4;
        break;
    }
  }

  // Pass 2: resolve local labels, collect relocations, encode.
  AssembledFunction out;
  out.words.reserve(off / 4);
  off = 0;
  for (const auto& item : items_) {
    if (item.kind != Item::Kind::Inst) continue;
    isa::Inst inst = item.inst;
    if (!item.sym.empty()) {
      out.relocs.push_back({off, item.reloc, item.sym, 0});
    } else if (item.label >= 0) {
      auto it = label_offset.find(item.label);
      if (it == label_offset.end())
        fail("assemble: unbound label in '" + name_ + "'");
      inst.imm = static_cast<int64_t>(it->second) - static_cast<int64_t>(off);
    }
    out.words.push_back(isa::encode(inst));
    off += 4;
  }
  return out;
}

std::string FunctionBuilder::listing() const {
  std::ostringstream os;
  os << name_ << ":\n";
  uint64_t off = 0;
  for (const auto& item : items_) {
    switch (item.kind) {
      case Item::Kind::LabelDef:
        os << ".L" << item.label << ":\n";
        break;
      case Item::Kind::Pseudo:
        os << strformat("  %04llx  <pseudo:%d>\n",
                        static_cast<unsigned long long>(off),
                        static_cast<int>(item.pseudo.kind));
        off += 4;
        break;
      case Item::Kind::Inst: {
        std::string text = isa::disasm(item.inst, off);
        if (!item.sym.empty()) text += "  // -> " + item.sym;
        if (item.label >= 0) text += "  // -> .L" + std::to_string(item.label);
        os << strformat("  %04llx  %s\n",
                        static_cast<unsigned long long>(off), text.c_str());
        off += 4;
      }
    }
  }
  return os.str();
}

}  // namespace camo::assembler
