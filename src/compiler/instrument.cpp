#include "compiler/instrument.h"

#include "support/bits.h"
#include "support/error.h"

namespace camo::compiler {

using assembler::FunctionBuilder;
using assembler::Item;
using assembler::Label;
using assembler::PseudoInst;
using assembler::PseudoKind;
using cpu::PacKey;
using isa::Inst;
using isa::Op;

namespace {

constexpr uint8_t kIp0 = isa::kRegIp0;  // x16
constexpr uint8_t kIp1 = isa::kRegIp1;  // x17
constexpr uint8_t kFp = isa::kRegFp;
constexpr uint8_t kLr = isa::kRegLr;
constexpr uint8_t kSp = isa::kRegZrSp;

/// Append-only emitter over a raw Item vector (expansion target).
class Emitter {
 public:
  explicit Emitter(std::vector<Item>& out) : out_(&out) {}

  void inst(Op op, uint8_t rd = 0, uint8_t rn = 0, uint8_t rm = 0,
            int64_t imm = 0, uint8_t lsb = 0, uint8_t width = 0,
            uint8_t hw = 0) {
    Item item;
    item.inst.op = op;
    item.inst.rd = rd;
    item.inst.rn = rn;
    item.inst.rm = rm;
    item.inst.imm = imm;
    item.inst.lsb = lsb;
    item.inst.width = width;
    item.inst.hw = hw;
    out_->push_back(std::move(item));
  }

  /// ADR with a local-label target (the function entry).
  void adr_label(uint8_t rd, Label l) {
    Item item;
    item.inst.op = Op::ADR;
    item.inst.rd = rd;
    item.label = l;
    out_->push_back(std::move(item));
  }

  void mov_from_sp(uint8_t rd) { inst(Op::ADDI, rd, kSp, 0, 0); }
  void mov(uint8_t rd, uint8_t rn) { inst(Op::ORR, rd, kSp, rn); }  // ORR rd, xzr, rn

 private:
  std::vector<Item>* out_;
};

/// Emit the modifier construction of §4.2: ip_mod = function address with the
/// low 32 bits of SP in its high half (Listing 3 lines 2-4).
void emit_camouflage_modifier(Emitter& e, Label entry) {
  e.adr_label(kIp0, entry);
  e.mov_from_sp(kIp1);
  e.inst(Op::BFI, kIp0, kIp1, 0, 0, 32, 32);
}

/// Emit the PARTS modifier: 48-bit function id with the low 16 bits of SP in
/// the top 16 (the replay-prone construction §7 improves on).
void emit_parts_modifier(Emitter& e, const std::string& fn_name) {
  const uint64_t id = parts_function_id(fn_name);
  e.inst(Op::MOVZ, kIp0, 0, 0, static_cast<int64_t>(bits(id, 0, 16)), 0, 0, 0);
  e.inst(Op::MOVK, kIp0, 0, 0, static_cast<int64_t>(bits(id, 16, 16)), 0, 0, 1);
  e.inst(Op::MOVK, kIp0, 0, 0, static_cast<int64_t>(bits(id, 32, 16)), 0, 0, 2);
  e.mov_from_sp(kIp1);
  e.inst(Op::BFI, kIp0, kIp1, 0, 0, 48, 16);
}

/// Sign LR with the modifier already in ip0, key IB, honouring compat mode.
void emit_sign_lr(Emitter& e, bool compat) {
  if (compat) {
    e.mov(kIp1, kLr);
    e.inst(Op::PACIB1716);
    e.mov(kLr, kIp1);
  } else {
    e.inst(Op::PACIB, kLr, kIp0);
  }
}

void emit_auth_lr(Emitter& e, bool compat) {
  if (compat) {
    e.mov(kIp1, kLr);
    e.inst(Op::AUTIB1716);
    e.mov(kLr, kIp1);
  } else {
    e.inst(Op::AUTIB, kLr, kIp0);
  }
}

void expand_frame_push(Emitter& e, const PseudoInst& p,
                       const ProtectionConfig& cfg, const std::string& fn_name,
                       Label entry) {
  switch (cfg.backward) {
    case BackwardScheme::None:
      break;
    case BackwardScheme::ClangSp:
      e.inst(Op::PACIASP);  // HINT space already; compat-safe
      break;
    case BackwardScheme::Parts:
      emit_parts_modifier(e, fn_name);
      emit_sign_lr(e, cfg.compat_mode);
      break;
    case BackwardScheme::Camouflage:
      emit_camouflage_modifier(e, entry);
      emit_sign_lr(e, cfg.compat_mode);
      break;
  }
  e.inst(Op::STP_PRE, kFp, kSp, kLr, -16);
  e.mov_from_sp(kFp);
  if (p.offset > 0) e.inst(Op::SUBI, kSp, kSp, 0, p.offset);
}

void expand_frame_pop_ret(Emitter& e, const PseudoInst& p,
                          const ProtectionConfig& cfg,
                          const std::string& fn_name, Label entry) {
  if (p.offset > 0) e.inst(Op::ADDI, kSp, kSp, 0, p.offset);
  e.inst(Op::LDP_POST, kFp, kSp, kLr, 16);
  switch (cfg.backward) {
    case BackwardScheme::None:
      break;
    case BackwardScheme::ClangSp:
      e.inst(Op::AUTIASP);
      break;
    case BackwardScheme::Parts:
      emit_parts_modifier(e, fn_name);
      emit_auth_lr(e, cfg.compat_mode);
      break;
    case BackwardScheme::Camouflage:
      emit_camouflage_modifier(e, entry);
      emit_auth_lr(e, cfg.compat_mode);
      break;
  }
  e.inst(Op::RET, 0, kLr);
}

/// modifier := type_id ‖ low 48 bits of the containing object address (§4.3),
/// built in `dst` — or zero under the Apple-style ablation.
void emit_object_modifier(Emitter& e, uint8_t dst, uint8_t robj,
                          uint16_t type_id, const ProtectionConfig& cfg) {
  if (cfg.apple_zero_modifier) {
    e.inst(Op::MOVZ, dst, 0, 0, 0, 0, 0, 0);
    return;
  }
  e.inst(Op::MOVZ, dst, 0, 0, type_id, 0, 0, 0);
  e.inst(Op::BFI, dst, robj, 0, 0, 16, 48);
}

bool pointer_protection_enabled(const ProtectionConfig& cfg, PacKey key) {
  return cpu::is_instruction_key(key) ? cfg.forward_cfi : cfg.dfi;
}

/// In compat mode no HINT-space D-key instructions exist, so all protected
/// pointers use the IB key (§5.5).
Op sign_op_for(PacKey key, bool compat) {
  if (compat) return Op::PACIB1716;
  switch (key) {
    case PacKey::IA: return Op::PACIA;
    case PacKey::IB: return Op::PACIB;
    case PacKey::DA: return Op::PACDA;
    case PacKey::DB: return Op::PACDB;
    case PacKey::GA: break;
  }
  fail("instrument: GA key cannot sign pointers");
}

Op auth_op_for(PacKey key, bool compat) {
  if (compat) return Op::AUTIB1716;
  switch (key) {
    case PacKey::IA: return Op::AUTIA;
    case PacKey::IB: return Op::AUTIB;
    case PacKey::DA: return Op::AUTDA;
    case PacKey::DB: return Op::AUTDB;
    case PacKey::GA: break;
  }
  fail("instrument: GA key cannot authenticate pointers");
}

void check_regs(const PseudoInst& p) {
  if (p.rt == kIp0 || p.rt == kIp1 || p.robj == kIp0 || p.robj == kIp1)
    fail("instrument: protected-pointer operands must not use x16/x17");
}

void expand_store_protected(Emitter& e, const PseudoInst& p,
                            const ProtectionConfig& cfg) {
  check_regs(p);
  if (pointer_protection_enabled(cfg, p.key)) {
    // Like the paper's setter macro: sign a copy, store the signed copy, and
    // leave the caller's register untouched.
    emit_object_modifier(e, kIp0, p.robj, p.type_id, cfg);
    e.mov(kIp1, p.rt);
    if (cfg.compat_mode)
      e.inst(Op::PACIB1716);
    else
      e.inst(sign_op_for(p.key, false), kIp1, kIp0);
    e.inst(Op::STR, kIp1, p.robj, 0, p.offset);
    return;
  }
  e.inst(Op::STR, p.rt, p.robj, 0, p.offset);
}

void expand_load_protected(Emitter& e, const PseudoInst& p,
                           const ProtectionConfig& cfg) {
  check_regs(p);
  e.inst(Op::LDR, p.rt, p.robj, 0, p.offset);
  if (!pointer_protection_enabled(cfg, p.key)) return;
  emit_object_modifier(e, kIp0, p.robj, p.type_id, cfg);
  if (cfg.compat_mode) {
    e.mov(kIp1, p.rt);
    e.inst(Op::AUTIB1716);
    e.mov(p.rt, kIp1);
    return;
  }
  e.inst(auth_op_for(p.key, false), p.rt, kIp0);
}

void expand_call_protected(Emitter& e, const PseudoInst& p,
                           const ProtectionConfig& cfg) {
  check_regs(p);
  if (!pointer_protection_enabled(cfg, p.key)) {
    e.inst(Op::BLR, 0, p.rt);
    return;
  }
  emit_object_modifier(e, kIp0, p.robj, p.type_id, cfg);
  if (cfg.compat_mode) {
    e.mov(kIp1, p.rt);
    e.inst(Op::AUTIB1716);
    e.inst(Op::BLR, 0, kIp1);
    return;
  }
  if (cfg.combined_branches && cpu::is_b_key(p.key)) {
    e.inst(Op::BLRAB, 0, p.rt, kIp0);
  } else if (cfg.combined_branches && p.key == PacKey::IA) {
    e.inst(Op::BLRAA, 0, p.rt, kIp0);
  } else {
    e.inst(auth_op_for(p.key, false), p.rt, kIp0);
    e.inst(Op::BLR, 0, p.rt);
  }
}

}  // namespace

const char* backward_scheme_name(BackwardScheme s) {
  switch (s) {
    case BackwardScheme::None: return "none";
    case BackwardScheme::ClangSp: return "clang-sp";
    case BackwardScheme::Parts: return "parts";
    case BackwardScheme::Camouflage: return "camouflage";
  }
  return "<bad-scheme>";
}

std::string ProtectionConfig::describe() const {
  std::string s = "backward=";
  s += backward_scheme_name(backward);
  s += forward_cfi ? " +forward" : "";
  s += dfi ? " +dfi" : "";
  s += compat_mode ? " +compat" : "";
  return s;
}

uint64_t parts_function_id(const std::string& name) {
  // FNV-1a, truncated to 48 bits: a deterministic stand-in for the unique
  // function ids PARTS assigns during LTO.
  uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h & mask(48);
}

unsigned backward_overhead_insns(BackwardScheme s, bool compat) {
  const unsigned wrap = compat ? 2 : 0;  // mov x17,lr / mov lr,x17
  switch (s) {
    case BackwardScheme::None: return 0;
    case BackwardScheme::ClangSp: return 2;                  // paciasp+autiasp
    case BackwardScheme::Parts: return 2 * (5 + 1 + wrap);   // movz+2movk+mov+bfi+pac
    case BackwardScheme::Camouflage: return 2 * (3 + 1 + wrap);  // adr+mov+bfi+pac
  }
  return 0;
}

void instrument(FunctionBuilder& f, const ProtectionConfig& cfg) {
  const ProtectionConfig effective =
      f.no_instrument() ? ProtectionConfig::none() : cfg;

  std::vector<Item> out;
  out.reserve(f.items().size() * 2);
  Emitter e(out);
  for (const auto& item : f.items()) {
    if (item.kind != Item::Kind::Pseudo) {
      out.push_back(item);
      continue;
    }
    const PseudoInst& p = item.pseudo;
    switch (p.kind) {
      case PseudoKind::FramePush:
        expand_frame_push(e, p, effective, f.name(), f.entry_label());
        break;
      case PseudoKind::FramePopRet:
        expand_frame_pop_ret(e, p, effective, f.name(), f.entry_label());
        break;
      case PseudoKind::StoreProtected:
        expand_store_protected(e, p, effective);
        break;
      case PseudoKind::LoadProtected:
        expand_load_protected(e, p, effective);
        break;
      case PseudoKind::CallProtected:
        expand_call_protected(e, p, effective);
        break;
    }
  }
  f.items() = std::move(out);
}

void instrument(obj::Program& prog, const ProtectionConfig& cfg) {
  for (auto& f : prog.functions()) instrument(f, cfg);
}

}  // namespace camo::compiler
