// Instrumentation passes: the "compiler modifications" of §5.
//
// instrument() lowers the pseudo instructions left by FunctionBuilder into
// concrete PAuth sequences according to a ProtectionConfig:
//
//  * Backward-edge CFI (§4.2/§5.2): FramePush/FramePopRet expand to one of
//      - None:       the plain Listing-1 frame record,
//      - ClangSp:    Listing 2 — pacia lr, sp (HINT-space PACIASP/AUTIASP),
//      - Parts:      PARTS-style modifier, 48-bit LTO function id ‖ 16-bit SP,
//      - Camouflage: Listing 3 — modifier = low 32 bits of SP ‖ low 32 bits
//                    of the function address taken from PC (ADR).
//  * Pointer integrity / forward-edge CFI / DFI (§4.3-§4.5, Listing 4):
//    Load/Store/CallProtected expand to the 16-bit type constant ‖ 48-bit
//    object address modifier construction plus the PAC*/AUT* instruction of
//    the declared key; CallProtected can use the combined BLRAB form.
//  * Compatibility mode (§5.5): only HINT-space instructions are emitted
//    (PACIB1716/AUTIB1716 wrappers through X16/X17) so the binary runs
//    unprotected-but-correct on pre-8.3 cores, and the IB key is shared for
//    instruction and data pointers (no HINT-space D-key instructions exist).
#pragma once

#include <cstdint>
#include <string>

#include "assembler/builder.h"
#include "obj/object.h"

namespace camo::compiler {

enum class BackwardScheme : uint8_t { None, ClangSp, Parts, Camouflage };

const char* backward_scheme_name(BackwardScheme s);

struct ProtectionConfig {
  BackwardScheme backward = BackwardScheme::Camouflage;
  bool forward_cfi = true;  ///< protect writable function pointers (IB key)
  bool dfi = true;          ///< protect data pointers to ops tables (DB key)
  bool compat_mode = false; ///< §5.5 binary compatibility build
  bool combined_branches = true;  ///< use BLRAB instead of AUTIB+BLR
  /// Ablation: sign pointers with a zero modifier like Apple's vtable
  /// scheme (§7) instead of the object-address‖type-id modifier. Preserves
  /// memcpy of protected structs, but is susceptible to reuse attacks — the
  /// ablation bench demonstrates exactly that trade-off.
  bool apple_zero_modifier = false;

  static ProtectionConfig none() {
    return {BackwardScheme::None, false, false, false, true};
  }
  static ProtectionConfig backward_only() {
    return {BackwardScheme::Camouflage, false, false, false, true};
  }
  static ProtectionConfig full() { return {}; }

  std::string describe() const;
};

/// Expand all pseudo instructions in `f` in place.
void instrument(assembler::FunctionBuilder& f, const ProtectionConfig& cfg);

/// Instrument every function of a program.
void instrument(obj::Program& prog, const ProtectionConfig& cfg);

/// The 48-bit LTO-style function id PARTS uses (we derive it from the symbol
/// name, standing in for the link-time-optimization pass).
uint64_t parts_function_id(const std::string& name);

/// Count instrumentation-only instructions a scheme adds to one prologue +
/// epilogue pair (used by the Figure-2 bench narrative).
unsigned backward_overhead_insns(BackwardScheme s, bool compat);

}  // namespace camo::compiler
