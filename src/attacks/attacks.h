// Attack injection framework: turns the paper's security arguments (§6.2)
// into executable experiments.
//
// The Attacker models exactly the threat-model adversary (§3.1): full control
// of user processes plus a kernel-memory read/write primitive that honours
// memory protections — writes to stage-2-protected pages (kernel text,
// rodata) and reads of execute-only memory fail, everything else succeeds.
//
// Each run_* function builds a fresh Machine under the given protection
// configuration, mounts one attack, runs to completion and classifies:
//   Hijacked — the gadget executed (the kernel halts with kHaltPwned),
//   Detected — a PAuth authentication failure fired (task killed or §5.4
//              panic),
//   Blocked  — the memory protection stopped the primitive itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/machine.h"
#include "obs/coverage.h"
#include "obs/metrics.h"

namespace camo::attacks {

enum class Outcome : uint8_t { Hijacked, Detected, Blocked };

const char* outcome_name(Outcome o);

struct AttackReport {
  Outcome outcome = Outcome::Blocked;
  std::string detail;
  uint64_t pac_failures = 0;
  uint64_t halt_code = 0;
  uint64_t attempts = 1;  ///< brute force: tries until panic/success
  /// AuthFail events observed in the machine's trace ring — the obs-side
  /// view of the same failures the guest counts in pac_fail_count.
  uint64_t trace_auth_failures = 0;
  /// Execution coverage of the attack run (null unless collect_coverage()
  /// was set before the run). Shared so reports stay cheap to copy.
  std::shared_ptr<obs::CoverageMap> coverage;
};

/// Process-wide knob: when set, every attack Machine also collects PA-keyed
/// execution coverage (obs/coverage.h) and each AttackReport carries its
/// map. Default off — the per-retirement feed costs a map probe, so only
/// coverage consumers (bench_security_matrix --cov, camo-cov) enable it.
/// Set it before spawning fleet workers; reads are unsynchronized.
bool& collect_coverage();

/// Process-wide knob: when set, every attack Machine shares one prepared-
/// kernel ImageCache and one post-boot SnapshotCache (DESIGN.md §3j) — the
/// first machine per boot signature boots a template, every later identical
/// machine forks it copy-on-write. Guest-visible results (fingerprint,
/// trace bytes, audit stream) are bit-identical either way; only host boot
/// cost changes. Set before spawning fleet workers; reads unsynchronized.
bool& snapshot_mode();

/// Aggregate snapshot/fork statistics over every attack machine classified
/// since the last reset (meaningful only under snapshot_mode). All fields
/// are order-independent sums/counts, so fleet --jobs never changes them.
struct SnapStats {
  uint64_t machines = 0;        ///< CoW attack machines observed
  uint64_t forks = 0;           ///< machines populated by fork()
  uint64_t template_boots = 0;  ///< snapshot-cache misses (full boots)
  uint64_t cow_pages = 0;       ///< privatized pages, summed over machines
  uint64_t shared_pages = 0;    ///< store/zero-backed pages, summed
  uint64_t imgcache_hits = 0;    ///< shared prepared-kernel reuses
  uint64_t imgcache_misses = 0;  ///< shared prepared-kernel builds
  obs::Histogram cow_hist;      ///< per-machine privatized-page counts
};
/// Thread-safe read of the aggregate (plus the shared cache's boot count).
SnapStats snapshot_stats();
/// Zero the aggregate and drop the shared caches (a fresh template boots on
/// the next attack machine). Benches call this once before their sweep.
void reset_snapshot_stats();

/// The threat-model memory primitive (kernel-level read/write that cannot
/// bypass stage-2 protections or read XOM).
class Attacker {
 public:
  explicit Attacker(kernel::Machine& m) : m_(&m) {}

  bool read(uint64_t va, uint64_t& out);
  bool write(uint64_t va, uint64_t value);

 private:
  kernel::Machine* m_;
};

// ---- full-system attacks ---------------------------------------------------

/// Classic kernel ROP: overwrite a saved return address on a kernel task
/// stack with the raw gadget address (§2.1, §6.2.1 "injection of arbitrary
/// unsigned pointers").
AttackReport run_rop_injection(const compiler::ProtectionConfig& prot);

/// Overwrite the writable lone function pointer (§4.4) with the raw gadget
/// address, then have user space trigger it.
AttackReport run_forward_edge_injection(const compiler::ProtectionConfig& prot);

/// DFI bypass attempt (§4.5): point an open file's f_ops at a fake
/// operations table forged in writable kernel memory.
AttackReport run_fops_redirect(const compiler::ProtectionConfig& prot);

/// Reuse attack across objects: copy the *validly signed* f_ops value from
/// one struct file into another. The 48-bit object-address modifier makes
/// the signature location-bound (§4.3).
AttackReport run_fops_cross_object_swap(const compiler::ProtectionConfig& prot);

/// PAC brute force (§5.4): guess PAC bits for the hook pointer until the
/// failure threshold halts the system (or a guess lands).
AttackReport run_bruteforce(const compiler::ProtectionConfig& prot,
                            unsigned threshold, unsigned max_tries = 64);

/// Try to learn the kernel keys: read the XOM key-setter page through the
/// kernel-read primitive and scan all EL1-readable kernel memory for key
/// halves (§6.2.2).
AttackReport run_key_extraction(const compiler::ProtectionConfig& prot);

/// Try to tamper with a read-only operations table directly (threat model:
/// write-protected memory is out of reach).
AttackReport run_rodata_tamper(const compiler::ProtectionConfig& prot);

/// §8 future-work extension: rewrite a *sleeping* task's saved exception
/// state — ELR to the gadget and SPSR to EL1 — so its next ERET executes the
/// gadget at kernel privilege. Defended by KernelConfig::protect_trapframe
/// (saved ELR signed against trapframe address ‖ SPSR).
AttackReport run_trapframe_escalation(const compiler::ProtectionConfig& prot,
                                      bool protect_trapframe);

/// SMP variant of the trapframe attack: on a 2-core machine, corrupt a
/// sleeping task's saved exception state after core 0 parked it and arrange
/// for core 1 to migrate the task in. Kernel keys are machine-wide (every
/// core's bank holds the same boot-derived keys), so the migrated frame's
/// signature would authenticate anywhere — only the *corruption* fails
/// closed, on the destination core, which the audit stream's per-event cpu
/// id attributes (trapframe protection is always on for this scenario).
AttackReport run_trapframe_migration(const compiler::ProtectionConfig& prot);

// ---- modifier replay matrix (§6.2.1, §7) -----------------------------------

/// Replay scenarios for backward-edge CFI. "Accepted" means the replayed
/// signed return address authenticates — i.e. the scheme does NOT stop it.
enum class ReplayScenario : uint8_t {
  SameFunctionSameSp,    ///< residual weakness of every SP-based scheme
  DiffFunctionSameSp,    ///< breaks the Clang SP-only modifier (Listing 2)
  CrossThread64kStacks,  ///< breaks PARTS' 16-bit SP window (§7)
  DiffFunctionDiffSp,    ///< baseline: must be rejected by every scheme
};

const char* replay_scenario_name(ReplayScenario s);

/// Host-side evaluation of the modifier algebra (the same constructions the
/// instrumentation emits; equivalence is covered by the compiler tests).
bool replay_accepted(compiler::BackwardScheme scheme, ReplayScenario scenario);

/// The same replay matrix exercised on the CPU with real signed pointers
/// (signs under modifier A, authenticates under modifier B).
bool replay_accepted_on_cpu(compiler::BackwardScheme scheme,
                            ReplayScenario scenario);

// ---- scenario registry (camo-audit / --flight-rec) -------------------------

/// Stable names for every full-system attack above, in a fixed order:
/// rop-injection, forward-edge, fops-redirect, fops-cross-object,
/// bruteforce, key-extraction, rodata-tamper, trapframe,
/// trapframe-protected, trapframe-migration.
const std::vector<std::string>& attack_names();

/// Stable names for the protection presets: none, backward, full.
const std::vector<std::string>& attack_config_names();

/// Resolve a preset name; returns nullopt for unknown names.
std::optional<compiler::ProtectionConfig> protection_config_by_name(
    const std::string& name);

/// Run one named attack under one named protection preset. When
/// `flight_bundle` is non-null, the run's camo-flight/v1 replay bundle
/// (flight ring + snapshot + audit stream + causal chain) is assembled into
/// it — this is the producer side of `camo-audit replay`. Returns nullopt
/// if either name is unknown.
std::optional<AttackReport> run_named_attack(
    const std::string& attack, const std::string& config,
    std::string* flight_bundle = nullptr);

}  // namespace camo::attacks
