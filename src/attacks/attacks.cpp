#include "attacks/attacks.h"

#include <mutex>

#include "assembler/builder.h"
#include "compiler/instrument.h"
#include "core/modifier.h"
#include "kernel/workloads.h"
#include "obs/flight.h"
#include "support/format.h"

namespace camo::attacks {

using compiler::BackwardScheme;
using compiler::ProtectionConfig;
using kernel::Machine;
using kernel::MachineConfig;

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Hijacked: return "HIJACKED";
    case Outcome::Detected: return "detected";
    case Outcome::Blocked: return "blocked";
  }
  return "<bad-outcome>";
}

const char* replay_scenario_name(ReplayScenario s) {
  switch (s) {
    case ReplayScenario::SameFunctionSameSp: return "same-fn same-SP";
    case ReplayScenario::DiffFunctionSameSp: return "diff-fn same-SP";
    case ReplayScenario::CrossThread64kStacks: return "cross-thread 64KiB";
    case ReplayScenario::DiffFunctionDiffSp: return "diff-fn diff-SP";
  }
  return "<bad-scenario>";
}

// ---------------------------------------------------------------------------
// The memory primitive
// ---------------------------------------------------------------------------

bool Attacker::read(uint64_t va, uint64_t& out) {
  const auto t = m_->mmu().translate(va, mem::Access::Read, mem::El::El1);
  if (!t.ok()) return false;
  out = m_->mmu().phys().read64(t.pa);
  return true;
}

bool Attacker::write(uint64_t va, uint64_t value) {
  const auto t = m_->mmu().translate(va, mem::Access::Write, mem::El::El1);
  if (!t.ok()) return false;
  m_->mmu().phys().write64(t.pa, value);
  return true;
}

bool& collect_coverage() {
  static bool flag = false;
  return flag;
}

bool& snapshot_mode() {
  static bool flag = false;
  return flag;
}

namespace {

// Shared caches + aggregate stats for snapshot_mode. One mutex guards all
// three: machine_config/reset swap the cache pointers and record_outcome's
// tail folds per-machine counts in from fleet worker threads.
std::mutex g_snap_mu;
SnapStats g_snap;
std::shared_ptr<kernel::ImageCache> g_image_cache;
std::shared_ptr<kernel::SnapshotCache> g_snapshot_cache;

void note_snapshot_machine(Machine& m) {
  if (!snapshot_mode()) return;
  const mem::PhysicalMemory& pm = m.mmu().phys();
  if (!pm.cow()) return;
  std::lock_guard<std::mutex> lock(g_snap_mu);
  ++g_snap.machines;
  if (m.forked()) ++g_snap.forks;
  g_snap.cow_pages += pm.cow_pages();
  g_snap.shared_pages += pm.shared_pages();
  g_snap.cow_hist.record(pm.cow_pages());
}

}  // namespace

SnapStats snapshot_stats() {
  std::lock_guard<std::mutex> lock(g_snap_mu);
  SnapStats s = g_snap;
  if (g_snapshot_cache) s.template_boots = g_snapshot_cache->stats().misses;
  if (g_image_cache) {
    const kernel::ImageCache::Stats ic = g_image_cache->stats();
    s.imgcache_hits = ic.hits;
    s.imgcache_misses = ic.misses;
  }
  return s;
}

void reset_snapshot_stats() {
  std::lock_guard<std::mutex> lock(g_snap_mu);
  g_snap = SnapStats{};
  g_image_cache.reset();
  g_snapshot_cache.reset();
}

// ---------------------------------------------------------------------------
// Outcome classification
// ---------------------------------------------------------------------------

namespace {

MachineConfig machine_config(const ProtectionConfig& prot,
                             unsigned threshold = 8) {
  MachineConfig cfg;
  cfg.kernel.protection = prot;
  cfg.kernel.pac_failure_threshold = threshold;
  cfg.kernel.log_pac_failures = false;
  // Attack runs always trace: reports cross-check the guest-side failure
  // counter against the AuthFail events the CPU emitted.
  cfg.obs.enabled = true;
  cfg.obs.coverage = collect_coverage();
  if (snapshot_mode()) {
    std::lock_guard<std::mutex> lock(g_snap_mu);
    if (!g_image_cache) g_image_cache = std::make_shared<kernel::ImageCache>();
    if (!g_snapshot_cache)
      g_snapshot_cache = std::make_shared<kernel::SnapshotCache>();
    cfg.image_cache = g_image_cache;
    cfg.snapshot_cache = g_snapshot_cache;
  }
  return cfg;
}

/// run_named_attack's flight-bundle request, visible to record_outcome (the
/// common tail of every attack path). thread_local so fleet workers running
/// named attacks concurrently cannot see each other's requests.
struct FlightCtx {
  std::string* out = nullptr;
  const char* attack = "";
  const char* config = "";
};
thread_local FlightCtx g_flight_ctx;

/// Cross-check the trace against the guest view and stamp the final
/// classification into the event stream.
void record_outcome(Machine& m, AttackReport& r) {
  note_snapshot_machine(m);  // every attack path ends here
  obs::Collector* st = m.stats();
  if (!st) return;
  r.trace_auth_failures = st->ring().count_kind(obs::EventKind::AuthFail);
  obs::TraceEvent e;
  e.kind = obs::EventKind::AttackOutcome;
  e.cycles = m.cpu().cycles();
  e.k1 = static_cast<uint8_t>(r.outcome);
  // Emitting the trace event first lets a Detected verdict arm the flight
  // recorder even when no guest-visible fault fired (e.g. threshold panic
  // classified after the run), so the bundle below always has a capture for
  // detected attacks.
  st->emit(e);
  obs::AuditEvent a;
  a.kind = obs::AuditKind::AttackVerdict;
  a.cycles = m.cpu().cycles();
  a.ptr = r.pac_failures;
  a.ptr2 = r.halt_code;
  a.el = 1;
  a.aux = static_cast<uint8_t>(r.outcome);
  st->audit(a);
  if (st->options().coverage)
    r.coverage = std::make_shared<obs::CoverageMap>(st->coverage().snapshot());
  if (g_flight_ctx.out) {
    *g_flight_ctx.out = obs::flight_bundle_json(
        st->flight(), st->audit_log().snapshot(), g_flight_ctx.attack,
        g_flight_ctx.config, m.config().seed);
  }
}

AttackReport finish(Machine& m, uint64_t max_steps = 50'000'000) {
  m.run(max_steps);
  AttackReport r;
  r.pac_failures = m.read_global(kernel::kSymPacFailCount);
  r.halt_code = m.halted() ? m.halt_code() : 0;
  if (m.read_global(kernel::kSymPwnedFlag) != 0) {
    r.outcome = Outcome::Hijacked;
    r.detail = "gadget executed (control flow hijacked)";
  } else if (r.pac_failures > 0 || r.halt_code == kernel::kHaltPacPanic) {
    r.outcome = Outcome::Detected;
    r.detail = r.halt_code == kernel::kHaltPacPanic
                   ? "PAuth failure threshold panic"
                   : "PAuth authentication failure, task killed";
  } else {
    r.outcome = Outcome::Blocked;
    r.detail = "attack had no effect";
  }
  record_outcome(m, r);
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Attacks
// ---------------------------------------------------------------------------

AttackReport run_rop_injection(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  m.add_user_program(kernel::workloads::stat_file(5));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  bool injected = false;
  // get_file is a leaf called by sys_stat: at its entry, FP still points at
  // the caller's frame record, so [FP+8] is sys_stat's saved return address.
  m.cpu().add_breakpoint(m.kernel_symbol("get_file"), [&](cpu::Cpu& c) {
    if (injected) return;
    injected = true;
    Attacker atk(m);
    if (!atk.write(c.x(isa::kRegFp) + 8, gadget)) injected = false;
  });
  AttackReport r = finish(m);
  if (!injected) {
    r.outcome = Outcome::Blocked;
    r.detail = "stack write blocked";
  }
  return r;
}

AttackReport run_forward_edge_injection(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  m.add_user_program(kernel::workloads::call_hook(3));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  const uint64_t slot = m.kernel_symbol(kernel::kSymHookObj);
  bool injected = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_call_hook"), [&](cpu::Cpu&) {
    if (injected) return;
    injected = true;
    Attacker atk(m);
    atk.write(slot, gadget);
  });
  return finish(m);
}

AttackReport run_fops_redirect(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  m.add_user_program(
      kernel::workloads::read_file(5, 64, kernel::FileKind::Ram));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  // Forge a fake operations table in writable kernel memory.
  const uint64_t fake_ops = m.kernel_symbol(kernel::kSymRamfsData) + 2048;
  bool injected = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_read"), [&](cpu::Cpu&) {
    if (injected) return;
    injected = true;
    Attacker atk(m);
    atk.write(fake_ops + kernel::fops::kRead, gadget);
    atk.write(fake_ops + kernel::fops::kWrite, gadget);
    atk.write(m.file_struct(1) + kernel::file::kFops, fake_ops);
  });
  return finish(m);
}

AttackReport run_fops_cross_object_swap(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  // Custom user thread: open two files, then read from the second.
  {
    obj::Program p;
    auto& f = p.add_function("_ustart");
    p.add_bss("ubuf", 256, 16);
    auto sys = [&f](kernel::Sys nr) {
      f.movz(8, static_cast<uint16_t>(nr), 0);
      f.svc(0);
    };
    f.mov_imm(0, static_cast<uint64_t>(kernel::FileKind::Ram));
    sys(kernel::Sys::Open);  // fd 1
    f.mov_imm(0, static_cast<uint64_t>(kernel::FileKind::Null));
    sys(kernel::Sys::Open);  // fd 2
    f.mov(20, 0);
    for (int i = 0; i < 3; ++i) {
      f.mov(0, 20);
      f.mov_sym(1, "ubuf");
      f.mov_imm(2, 32);
      sys(kernel::Sys::Read);
    }
    sys(kernel::Sys::Exit);
    m.add_user_program(std::move(p));
  }
  m.boot();
  bool injected = false;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_read"), [&](cpu::Cpu&) {
    if (injected) return;
    injected = true;
    Attacker atk(m);
    uint64_t signed_fops = 0;
    atk.read(m.file_struct(1) + kernel::file::kFops, signed_fops);
    atk.write(m.file_struct(2) + kernel::file::kFops, signed_fops);
  });
  AttackReport r = finish(m);
  // Reuse "succeeds" when the relocated signature still authenticates: no
  // gadget runs, but the attacker has redirected which ops table an object
  // uses — report that as a hijack of the pointer.
  if (r.outcome == Outcome::Blocked && r.pac_failures == 0) {
    r.outcome = Outcome::Hijacked;
    r.detail = "cross-object signature reuse accepted";
  }
  return r;
}

AttackReport run_bruteforce(const ProtectionConfig& prot, unsigned threshold,
                            unsigned max_tries) {
  Machine m(machine_config(prot, threshold));
  // One attacking process per attempt: each failed guess kills the process
  // (SIGKILL on kernel fault), so the attacker respawns — until the §5.4
  // threshold halts the system.
  const unsigned procs =
      std::min<unsigned>(max_tries, kernel::kMaxTasks - 1);
  for (unsigned i = 0; i < procs; ++i)
    m.add_user_program(kernel::workloads::call_hook(1));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  const uint64_t slot = m.kernel_symbol(kernel::kSymHookObj);
  const auto& layout = m.cpu().config().layout;
  uint64_t guess_nr = 0;
  m.cpu().add_breakpoint(m.kernel_symbol("sys_call_hook"), [&](cpu::Cpu&) {
    // Next PAC guess: walk the PAC field space deterministically.
    const uint64_t pac_mask = layout.pac_mask(gadget);
    uint64_t forged = layout.canonical(gadget) & ~pac_mask;
    // scatter guess bits into the mask
    uint64_t g = ++guess_nr, out = 0;
    for (unsigned pos = 0; pos < 64; ++pos)
      if (pac_mask & (uint64_t{1} << pos)) {
        out |= (g & 1) << pos;
        g >>= 1;
      }
    Attacker atk(m);
    atk.write(slot, forged | out);
  });
  AttackReport r = finish(m);
  r.attempts = guess_nr;
  return r;
}

AttackReport run_key_extraction(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  m.boot();
  Attacker atk(m);
  AttackReport r;
  const uint64_t setter = m.boot_result().key_setter_va;
  unsigned readable = 0;
  for (uint64_t off = 0; off < 4096; off += 8) {
    uint64_t v;
    if (atk.read(setter + off, v)) ++readable;
  }
  // Scan every kernel-image byte the primitive can read for key halves.
  const auto& keys = m.boot_result().keys;
  const uint64_t halves[] = {keys.ia.w0, keys.ia.k0, keys.ib.w0, keys.ib.k0,
                             keys.db.w0, keys.db.k0};
  unsigned leaks = 0;
  const auto& img = m.boot_result().kernel_image;
  for (const auto& seg : img.segments) {
    for (uint64_t va = seg.va; va + 8 <= seg.va + seg.bytes.size(); va += 4) {
      uint64_t v;
      if (!atk.read(va, v)) continue;
      for (const uint64_t h : halves) leaks += v == h;
    }
  }
  if (leaks > 0) {
    r.outcome = Outcome::Hijacked;
    r.detail = strformat("%u key halves leaked", leaks);
  } else if (readable > 0) {
    r.outcome = Outcome::Hijacked;
    r.detail = strformat("read %u words of the XOM page", readable);
  } else {
    r.outcome = Outcome::Blocked;
    r.detail = "XOM unreadable; no key material in readable memory";
  }
  record_outcome(m, r);
  return r;
}

AttackReport run_rodata_tamper(const ProtectionConfig& prot) {
  Machine m(machine_config(prot));
  m.boot();
  Attacker atk(m);
  AttackReport r;
  const uint64_t ops = m.kernel_symbol("null_fops");
  if (atk.write(ops, m.kernel_symbol(kernel::kSymGadget))) {
    r.outcome = Outcome::Hijacked;
    r.detail = "rodata ops table overwritten";
  } else {
    r.outcome = Outcome::Blocked;
    r.detail = "ops tables are write-protected (stage 2)";
  }
  record_outcome(m, r);
  return r;
}

AttackReport run_trapframe_escalation(const ProtectionConfig& prot,
                                      bool protect_trapframe) {
  MachineConfig cfg = machine_config(prot);
  cfg.kernel.protect_trapframe = protect_trapframe;
  Machine m(cfg);
  m.add_user_program(kernel::workloads::yield_loop(50));
  m.add_user_program(kernel::workloads::yield_loop(50));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  int hits = 0;
  bool injected = false;
  m.cpu().add_breakpoint(m.kernel_symbol("schedule"), [&](cpu::Cpu&) {
    if (injected || ++hits < 6) return;  // let both tasks enter the yield loop
    // Task 1 is sleeping inside sys_yield; its trapframe sits at the top of
    // its kernel stack. Forge ELR -> gadget and SPSR -> EL1 (0x81: EL1 with
    // IRQs masked): the next ERET would run the gadget at kernel privilege.
    const uint64_t kstack_top =
        m.read_u64(m.task_struct(1) + kernel::task::kKstackTop);
    const uint64_t tf = kstack_top - 272;
    Attacker atk(m);
    if (!atk.write(tf + 248, gadget)) return;  // ELR slot
    atk.write(tf + 256, 0x81);                 // SPSR slot
    injected = true;
  });
  return finish(m);
}

AttackReport run_trapframe_migration(const ProtectionConfig& prot) {
  MachineConfig cfg = machine_config(prot);
  cfg.kernel.protect_trapframe = true;
  cfg.kernel.preempt = true;
  cfg.cores = 2;
  // Tight interleaving so tasks actually bounce between cores: the corrupted
  // frame must be *consumed on a different core* than it was saved on.
  cfg.smp_quantum = 50;
  Machine m(cfg);
  // Three tasks on two cores: the runqueue always holds a parked Runnable
  // task, so yields actually switch and tasks keep crossing cores (two tasks
  // on two cores would each just keep their core — an empty pick set makes
  // yield a no-op).
  m.add_user_program(kernel::workloads::yield_loop(50));
  m.add_user_program(kernel::workloads::yield_loop(50));
  m.add_user_program(kernel::workloads::yield_loop(50));
  m.boot();
  const uint64_t gadget = m.kernel_symbol(kernel::kSymGadget);
  const uint64_t t1 = m.task_struct(1);
  bool armed = false;
  bool injected = false;
  // Arm at core 1's scheduler entry: task 1 parked Runnable with its frame
  // saved by core 0 is the migration bait (vruntime 0 wins every cfs-lite
  // min scan, so whichever core schedules next claims it).
  m.core(1).add_breakpoint(m.kernel_symbol("schedule"), [&](cpu::Cpu&) {
    if (armed || injected) return;
    if (m.read_u64(t1 + kernel::task::kState) !=
        static_cast<uint64_t>(kernel::TaskState::Runnable))
      return;
    if (m.read_u64(t1 + kernel::task::kCpu) != 0) return;  // saved on core 0
    m.write_u64(t1 + kernel::task::kVruntime, 0);
    armed = true;
  });
  // Inject at core 1's cpu_switch_to once it has claimed task 1: the frame
  // core 0 signed is corrupted in the window between claim and first ERET.
  // Kernel keys are machine-wide, so the migrated signature itself would
  // authenticate anywhere — only the corruption fails closed, on core 1's
  // own exception exit, and the audit stream attributes the AuthFail to the
  // destination core.
  m.core(1).add_breakpoint(m.kernel_symbol(kernel::kSymCpuSwitchTo),
                           [&](cpu::Cpu& c) {
    if (!armed || injected) return;
    if (c.x(1) != t1) return;  // x1 = next: core 1 is migrating task 1 in
    const uint64_t kstack_top = m.read_u64(t1 + kernel::task::kKstackTop);
    const uint64_t tf = kstack_top - 272;
    Attacker atk(m);
    if (!atk.write(tf + 248, gadget)) return;  // ELR slot
    atk.write(tf + 256, 0x81);                 // SPSR slot: ERET to EL1
    injected = true;
  });
  AttackReport r = finish(m);
  if (!injected) {
    r.outcome = Outcome::Blocked;
    r.detail = "no cross-core migration window opened";
  }
  return r;
}

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

const std::vector<std::string>& attack_names() {
  static const std::vector<std::string> names = {
      "rop-injection",  "forward-edge",  "fops-redirect",
      "fops-cross-object", "bruteforce", "key-extraction",
      "rodata-tamper",  "trapframe",     "trapframe-protected",
      "trapframe-migration"};
  return names;
}

const std::vector<std::string>& attack_config_names() {
  static const std::vector<std::string> names = {"none", "backward", "full"};
  return names;
}

std::optional<ProtectionConfig> protection_config_by_name(
    const std::string& name) {
  if (name == "none") return ProtectionConfig::none();
  if (name == "backward") return ProtectionConfig::backward_only();
  if (name == "full") return ProtectionConfig::full();
  return std::nullopt;
}

std::optional<AttackReport> run_named_attack(const std::string& attack,
                                             const std::string& config,
                                             std::string* flight_bundle) {
  const auto prot = protection_config_by_name(config);
  if (!prot) return std::nullopt;
  g_flight_ctx = {flight_bundle, attack.c_str(), config.c_str()};
  std::optional<AttackReport> r;
  if (attack == "rop-injection") r = run_rop_injection(*prot);
  else if (attack == "forward-edge") r = run_forward_edge_injection(*prot);
  else if (attack == "fops-redirect") r = run_fops_redirect(*prot);
  else if (attack == "fops-cross-object") r = run_fops_cross_object_swap(*prot);
  else if (attack == "bruteforce") r = run_bruteforce(*prot, 8, 64);
  else if (attack == "key-extraction") r = run_key_extraction(*prot);
  else if (attack == "rodata-tamper") r = run_rodata_tamper(*prot);
  else if (attack == "trapframe") r = run_trapframe_escalation(*prot, false);
  else if (attack == "trapframe-protected")
    r = run_trapframe_escalation(*prot, true);
  else if (attack == "trapframe-migration")
    r = run_trapframe_migration(*prot);
  g_flight_ctx = {};
  return r;
}

// ---------------------------------------------------------------------------
// Modifier replay matrix
// ---------------------------------------------------------------------------

namespace {

struct ReplayCase {
  uint64_t fn_a, sp_a, fn_b, sp_b;
  const char* name_a;
  const char* name_b;
};

ReplayCase make_case(ReplayScenario s) {
  const uint64_t fn = 0xFFFF000000081000ull;
  const uint64_t sp = 0xFFFF000000404000ull;  // a 4 KiB-aligned stack top
  switch (s) {
    case ReplayScenario::SameFunctionSameSp:
      return {fn, sp, fn, sp, "vfs_read", "vfs_read"};
    case ReplayScenario::DiffFunctionSameSp:
      return {fn, sp, fn + 0x400, sp, "vfs_read", "vfs_write"};
    case ReplayScenario::CrossThread64kStacks:
      // Two task stacks exactly 2^16 bytes apart (the kernel's layout).
      return {fn, sp, fn, sp + 0x10000, "vfs_read", "vfs_read"};
    case ReplayScenario::DiffFunctionDiffSp:
      return {fn, sp, fn + 0x400, sp + 0x20, "vfs_read", "vfs_write"};
  }
  return {};
}

uint64_t modifier_for(BackwardScheme scheme, uint64_t fn, uint64_t sp,
                      const char* name) {
  switch (scheme) {
    case BackwardScheme::None:
      return 0;
    case BackwardScheme::ClangSp:
      return core::clang_return_modifier(sp);
    case BackwardScheme::Parts:
      return core::parts_return_modifier(sp, compiler::parts_function_id(name));
    case BackwardScheme::Camouflage:
      return core::camouflage_return_modifier(sp, fn);
  }
  return 0;
}

}  // namespace

bool replay_accepted(BackwardScheme scheme, ReplayScenario scenario) {
  if (scheme == BackwardScheme::None) return true;  // nothing to check
  const ReplayCase c = make_case(scenario);
  return modifier_for(scheme, c.fn_a, c.sp_a, c.name_a) ==
         modifier_for(scheme, c.fn_b, c.sp_b, c.name_b);
}

bool replay_accepted_on_cpu(BackwardScheme scheme, ReplayScenario scenario) {
  if (scheme == BackwardScheme::None) return true;
  // A minimal machine: sign a return address under modifier A with the IB
  // key, authenticate under modifier B, and check canonicality — exactly
  // what the prologue/epilogue pair does across a replay.
  mem::PhysicalMemory pm(1 << 16);
  mem::Mmu mmu(pm, {});
  cpu::Cpu core(mmu, {});
  core.set_sysreg(isa::SysReg::SCTLR_EL1, isa::kSctlrEnIB);
  core.set_sysreg(isa::SysReg::APIBKeyLo, 0xA5A5F00DDEADBEEFull);
  core.set_sysreg(isa::SysReg::APIBKeyHi, 0x0123456789ABCDEFull);

  const ReplayCase c = make_case(scenario);
  const uint64_t ret_addr = c.fn_a + 0x40;
  const uint64_t mod_a = modifier_for(scheme, c.fn_a, c.sp_a, c.name_a);
  const uint64_t mod_b = modifier_for(scheme, c.fn_b, c.sp_b, c.name_b);
  const auto key = core.pac_key(cpu::PacKey::IB);
  const uint64_t signed_lr = core.pauth().add_pac(ret_addr, mod_a, key);
  const auto auth = core.pauth().auth(signed_lr, mod_b, key, cpu::PacKey::IB);
  return auth.ok;
}

}  // namespace camo::attacks
