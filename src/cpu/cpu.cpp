#include "cpu/cpu.h"

#include <algorithm>
#include <array>

#include "cpu/superblock.h"
#include "support/bits.h"
#include "support/error.h"

namespace camo::cpu {

using isa::Inst;
using isa::Op;
using isa::SysReg;
using mem::El;
using mem::FaultKind;

const char* exc_class_name(ExcClass c) {
  switch (c) {
    case ExcClass::Unknown: return "unknown";
    case ExcClass::Svc: return "svc";
    case ExcClass::Brk: return "brk";
    case ExcClass::InsnAbort: return "insn-abort";
    case ExcClass::DataAbort: return "data-abort";
    case ExcClass::Undefined: return "undefined";
    case ExcClass::PacFail: return "pac-fail";
    case ExcClass::Irq: return "irq";
  }
  return "<bad-class>";
}

Cpu::Cpu(mem::Mmu& mmu, Config cfg)
    : mmu_(&mmu),
      cfg_(cfg),
      pauth_(cfg.layout),
      sb_(std::make_unique<SuperblockEngine>()) {
  mmu_->set_fast_path(cfg_.fast_path);
  pauth_.set_fast_path(cfg_.fast_path);
}

Cpu::~Cpu() = default;

const SuperblockStats& Cpu::superblock_stats() const { return sb_->stats(); }

obs::OpClass Cpu::op_class(Op op) {
  switch (op) {
    case Op::B:
    case Op::BCOND:
    case Op::CBZ:
    case Op::CBNZ:
    case Op::BR:
      return obs::OpClass::Branch;
    case Op::BL:
    case Op::BLR:
      return obs::OpClass::Call;
    case Op::RET:
      return obs::OpClass::Ret;
    case Op::LDR:
    case Op::LDRB:
    case Op::LDP:
    case Op::LDP_POST:
      return obs::OpClass::Load;
    case Op::STR:
    case Op::STRB:
    case Op::STP:
    case Op::STP_PRE:
    case Op::SWP:
      return obs::OpClass::Store;
    case Op::PACIA:
    case Op::PACIB:
    case Op::PACDA:
    case Op::PACDB:
    case Op::AUTIA:
    case Op::AUTIB:
    case Op::AUTDA:
    case Op::AUTDB:
    case Op::PACGA:
    case Op::XPACI:
    case Op::XPACD:
    case Op::PACIASP:
    case Op::AUTIASP:
    case Op::PACIBSP:
    case Op::AUTIBSP:
    case Op::PACIA1716:
    case Op::PACIB1716:
    case Op::AUTIA1716:
    case Op::AUTIB1716:
    case Op::XPACLRI:
      return obs::OpClass::Pauth;
    case Op::RETAA:
    case Op::RETAB:
    case Op::BRAA:
    case Op::BRAB:
    case Op::BLRAA:
    case Op::BLRAB:
      return obs::OpClass::PauthBranch;
    case Op::MRS:
    case Op::MSR:
    case Op::SVC:
    case Op::HVC:
    case Op::BRK:
    case Op::HLT:
    case Op::ERET:
    case Op::ISB:
    case Op::DAIFSET:
    case Op::DAIFCLR:
      return obs::OpClass::Sys;
    default:
      return obs::OpClass::Other;
  }
}

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

uint64_t Cpu::x(unsigned i) const {
  if (i >= 31) return 0;
  return gpr_[i];
}

void Cpu::set_x(unsigned i, uint64_t v) {
  if (i >= 31) return;
  gpr_[i] = v;
}

uint64_t Cpu::sp() const {
  return pstate.el == El::El0 ? sp_el0_ : sp_el1_;
}

void Cpu::set_sp(uint64_t v) {
  (pstate.el == El::El0 ? sp_el0_ : sp_el1_) = v;
}

uint64_t Cpu::sp_el(El el) const { return el == El::El0 ? sp_el0_ : sp_el1_; }
void Cpu::set_sp_el(El el, uint64_t v) {
  (el == El::El0 ? sp_el0_ : sp_el1_) = v;
}

uint64_t Cpu::sysreg(SysReg r) const {
  switch (r) {
    case SysReg::CurrentEL:
      return static_cast<uint64_t>(pstate.el) << 2;
    case SysReg::CNTVCT_EL0:
      return cycles_;
    case SysReg::DAIF:
      return pstate.irq_masked ? (uint64_t{1} << 7) : 0;
    case SysReg::SP_EL0:
      return sp_el0_;
    case SysReg::MPIDR_EL1:
      return cpu_id_;
    case SysReg::ISR_EL1:
      return irq_sources_;
    default:
      return sys_[static_cast<size_t>(r)];
  }
}

void Cpu::set_sysreg(SysReg r, uint64_t v) {
  switch (r) {
    case SysReg::CurrentEL:
    case SysReg::CNTVCT_EL0:
    case SysReg::MPIDR_EL1:
      return;  // read-only
    case SysReg::ISR_EL1:
      irq_sources_ &= ~v;  // write-1-to-clear
      return;
    case SysReg::DAIF:
      pstate.irq_masked = (v >> 7) & 1;
      return;
    case SysReg::SP_EL0:
      sp_el0_ = v;
      return;
    default:
      sys_[static_cast<size_t>(r)] = v;
  }
}

qarma::Key128 Cpu::pac_key(PacKey k) const {
  // §8 extension: privileged execution draws from the EL2-managed bank.
  if (cfg_.banked_keys && pstate.el != El::El0)
    return kernel_bank_[static_cast<size_t>(k)];
  const auto base = static_cast<size_t>(k) * 2;
  return {sys_[base + 1], sys_[base]};  // {Hi as w0, Lo as k0}
}

void Cpu::set_kernel_bank_key(PacKey k, const qarma::Key128& key) {
  kernel_bank_[static_cast<size_t>(k)] = key;
  bank_prov_[static_cast<size_t>(k)] = ++prov_counter_;
  if (audit_) {
    obs::AuditEvent e;
    e.kind = obs::AuditKind::KeyInstall;
    e.cycles = cycles_;
    e.pc = pc;
    e.key = static_cast<uint8_t>(k);
    e.el = static_cast<uint8_t>(pstate.el);
    e.bank = 1;
    e.prov = bank_prov_[static_cast<size_t>(k)];
    e.cpu = static_cast<uint8_t>(cpu_id_);
    audit_->audit(e);
  }
}

// ---------------------------------------------------------------------------
// Snapshot/fork (DESIGN.md §3j)
// ---------------------------------------------------------------------------

Cpu::CoreState Cpu::core_state() const {
  CoreState s;
  s.pc = pc;
  s.pstate = pstate;
  s.gpr = gpr_;
  s.sp_el0 = sp_el0_;
  s.sp_el1 = sp_el1_;
  s.sys = sys_;
  s.kernel_bank = kernel_bank_;
  s.halted = halted_;
  s.halt_code = halt_code_;
  s.cycles = cycles_;
  s.instret = instret_;
  s.op_counts = op_counts_;
  s.irq_pending = irq_pending_;
  s.irq_sources = irq_sources_;
  s.timer_cycles = timer_cycles_;
  s.timer_period = timer_period_;
  s.prov_counter = prov_counter_;
  s.key_prov = key_prov_;
  s.bank_prov = bank_prov_;
  return s;
}

void Cpu::restore_core_state(const CoreState& s) {
  pc = s.pc;
  pstate = s.pstate;
  gpr_ = s.gpr;
  sp_el0_ = s.sp_el0;
  sp_el1_ = s.sp_el1;
  sys_ = s.sys;
  kernel_bank_ = s.kernel_bank;
  halted_ = s.halted;
  halt_code_ = s.halt_code;
  cycles_ = s.cycles;
  instret_ = s.instret;
  op_counts_ = s.op_counts;
  irq_pending_ = s.irq_pending;
  irq_sources_ = s.irq_sources;
  timer_cycles_ = s.timer_cycles;
  timer_period_ = s.timer_period;
  prov_counter_ = s.prov_counter;
  key_prov_ = s.key_prov;
  bank_prov_ = s.bank_prov;
}

// ---------------------------------------------------------------------------
// ESR packing
// ---------------------------------------------------------------------------

uint64_t Cpu::esr_pack(ExcClass cls, uint16_t iss, FaultKind fk) {
  return (static_cast<uint64_t>(cls) << 56) |
         (static_cast<uint64_t>(fk) << 16) | iss;
}
ExcClass Cpu::esr_class(uint64_t esr) {
  return static_cast<ExcClass>(bits(esr, 56, 8));
}
uint16_t Cpu::esr_iss(uint64_t esr) { return static_cast<uint16_t>(esr); }
FaultKind Cpu::esr_fault(uint64_t esr) {
  return static_cast<FaultKind>(bits(esr, 16, 8));
}

// ---------------------------------------------------------------------------
// Cycle model (PA-analogue, §6.1)
// ---------------------------------------------------------------------------

unsigned Cpu::cycle_cost(const Inst& inst) {
  switch (inst.op) {
    case Op::LDR:
    case Op::LDRB:
      return 3;
    case Op::LDP:
    case Op::LDP_POST:
      return 4;
    case Op::STR:
    case Op::STRB:
      return 1;
    case Op::STP:
    case Op::STP_PRE:
      return 2;
    case Op::SWP:
      return 4;  // atomic read-modify-write: load + locked store
    case Op::MUL:
      return 3;
    case Op::UDIV:
      return 12;
    case Op::B:
    case Op::BL:
    case Op::BR:
    case Op::BLR:
    case Op::RET:
    case Op::CBZ:
    case Op::CBNZ:
    case Op::BCOND:
      return 2;
    // PAuth: 4 cycles each (the PA-analogue estimate used by the paper and
    // by PARTS); the combined branch forms pay auth + branch.
    case Op::PACIA:
    case Op::PACIB:
    case Op::PACDA:
    case Op::PACDB:
    case Op::AUTIA:
    case Op::AUTIB:
    case Op::AUTDA:
    case Op::AUTDB:
    case Op::PACGA:
    case Op::XPACI:
    case Op::XPACD:
    case Op::PACIASP:
    case Op::AUTIASP:
    case Op::PACIBSP:
    case Op::AUTIBSP:
    case Op::PACIA1716:
    case Op::PACIB1716:
    case Op::AUTIA1716:
    case Op::AUTIB1716:
    case Op::XPACLRI:
      return 4;
    case Op::RETAA:
    case Op::RETAB:
    case Op::BRAA:
    case Op::BRAB:
    case Op::BLRAA:
    case Op::BLRAB:
      return 6;
    case Op::MRS:
      return 2;
    case Op::MSR:
      // Writing PAuth key registers is costed so that one 128-bit key switch
      // comes to ~9 cycles, the figure measured in §6.1.1.
      if (isa::is_pauth_key_reg(inst.sysreg))
        return (static_cast<unsigned>(inst.sysreg) & 1) ? 5 : 4;  // Hi : Lo
      return 3;
    case Op::ISB:
      return 8;
    case Op::SVC:
    case Op::HVC:
      return 4;  // plus exception-entry cost
    case Op::ERET:
      return 8;
    default:
      return 1;
  }
}

// ---------------------------------------------------------------------------
// Exceptions
// ---------------------------------------------------------------------------

void Cpu::take_exception(ExcClass cls, uint64_t far, uint16_t iss,
                         FaultKind fk, uint64_t preferred_return) {
  const uint8_t from_el = static_cast<uint8_t>(pstate.el);
  // Pack PSTATE into our SPSR layout: el[1:0], irq_masked[7], NZCV[31:28].
  uint64_t spsr = static_cast<uint64_t>(pstate.el);
  if (pstate.irq_masked) spsr |= uint64_t{1} << 7;
  spsr |= (static_cast<uint64_t>(pstate.n) << 31) |
          (static_cast<uint64_t>(pstate.z) << 30) |
          (static_cast<uint64_t>(pstate.c) << 29) |
          (static_cast<uint64_t>(pstate.v) << 28);
  sys_[static_cast<size_t>(SysReg::SPSR_EL1)] = spsr;
  sys_[static_cast<size_t>(SysReg::ELR_EL1)] = preferred_return;
  sys_[static_cast<size_t>(SysReg::ESR_EL1)] = esr_pack(cls, iss, fk);
  sys_[static_cast<size_t>(SysReg::FAR_EL1)] = far;

  uint64_t offset;
  if (cls == ExcClass::Irq)
    offset = pstate.el == El::El0 ? kVecIrqEl0 : kVecIrqEl1;
  else
    offset = pstate.el == El::El0 ? kVecSyncEl0 : kVecSyncEl1;

  pstate.el = El::El1;
  pstate.irq_masked = true;
  pc = sys_[static_cast<size_t>(SysReg::VBAR_EL1)] + offset;
  cycles_ += 12;  // exception entry microarchitectural cost

  if (cf_)
    cf_->control_flow(obs::CfKind::ExcEnter, preferred_return, pc,
                      static_cast<uint8_t>(cls));
  if (sink_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::ExcEnter;
    e.cycles = cycles_;
    e.pc = preferred_return;
    e.a = far;
    if (cls == ExcClass::Svc) e.b = gpr_[8];  // AAPCS64: syscall nr in x8
    e.el = from_el;
    e.k1 = static_cast<uint8_t>(cls);
    e.k2 = static_cast<uint8_t>(fk);
    e.imm = iss;
    sink_->emit(e);
    if (fk == FaultKind::Stage2) {
      obs::TraceEvent s2;
      s2.kind = obs::EventKind::Stage2Fault;
      s2.cycles = cycles_;
      s2.pc = preferred_return;
      s2.a = far;
      s2.el = from_el;
      s2.k1 = static_cast<uint8_t>(cls);
      sink_->emit(s2);
    }
  }
  if (audit_) {
    obs::AuditEvent a;
    a.kind = obs::AuditKind::ElEnter;
    a.cycles = cycles_;
    a.pc = preferred_return;
    a.ptr = far;
    a.el = from_el;
    a.aux = static_cast<uint8_t>(cls);
    a.cpu = static_cast<uint8_t>(cpu_id_);
    audit_->audit(a);
  }
}

void Cpu::do_eret() {
  const uint64_t eret_pc = pc - 4;  // pc was already advanced past the ERET
  const uint64_t spsr = sys_[static_cast<size_t>(SysReg::SPSR_EL1)];
  pstate.el = static_cast<El>(spsr & 0x3);
  pstate.irq_masked = (spsr >> 7) & 1;
  pstate.n = (spsr >> 31) & 1;
  pstate.z = (spsr >> 30) & 1;
  pstate.c = (spsr >> 29) & 1;
  pstate.v = (spsr >> 28) & 1;
  pc = sys_[static_cast<size_t>(SysReg::ELR_EL1)];

  if (cf_)
    cf_->control_flow(obs::CfKind::ExcExit, eret_pc, pc,
                      static_cast<uint8_t>(pstate.el));
  if (sink_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::ExcExit;
    e.cycles = cycles_;
    e.pc = pc;
    e.a = pc;
    e.el = 1;  // ERET executes at EL1
    e.k2 = static_cast<uint8_t>(pstate.el);
    sink_->emit(e);
  }
  if (audit_) {
    obs::AuditEvent a;
    a.kind = obs::AuditKind::ElExit;
    a.cycles = cycles_;
    a.pc = eret_pc;
    a.ptr = pc;
    a.el = 1;  // ERET executes at EL1
    a.aux = static_cast<uint8_t>(pstate.el);
    a.cpu = static_cast<uint8_t>(cpu_id_);
    audit_->audit(a);
  }
}

// ---------------------------------------------------------------------------
// Memory helpers
// ---------------------------------------------------------------------------

bool Cpu::mem_read64(uint64_t va, uint64_t& out) {
  const auto r = mmu_->read64(va, pstate.el);
  if (r.fault != FaultKind::None) {
    take_exception(ExcClass::DataAbort, va, 0, r.fault, pc - 4);
    return false;
  }
  out = r.value;
  return true;
}

bool Cpu::mem_write64(uint64_t va, uint64_t v) {
  const auto f = mmu_->write64(va, v, pstate.el);
  if (f != FaultKind::None) {
    take_exception(ExcClass::DataAbort, va, 0, f, pc - 4);
    return false;
  }
  return true;
}

bool Cpu::mem_read8(uint64_t va, uint64_t& out) {
  const auto r = mmu_->read8(va, pstate.el);
  if (r.fault != FaultKind::None) {
    take_exception(ExcClass::DataAbort, va, 0, r.fault, pc - 4);
    return false;
  }
  out = r.value;
  return true;
}

bool Cpu::mem_write8(uint64_t va, uint8_t v) {
  const auto f = mmu_->write8(va, v, pstate.el);
  if (f != FaultKind::None) {
    take_exception(ExcClass::DataAbort, va, 0, f, pc - 4);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// PAuth helpers
// ---------------------------------------------------------------------------

bool Cpu::pauth_enabled(PacKey k) const {
  const uint64_t sctlr = sys_[static_cast<size_t>(SysReg::SCTLR_EL1)];
  switch (k) {
    case PacKey::IA: return sctlr & isa::kSctlrEnIA;
    case PacKey::IB: return sctlr & isa::kSctlrEnIB;
    case PacKey::DA: return sctlr & isa::kSctlrEnDA;
    case PacKey::DB: return sctlr & isa::kSctlrEnDB;
    case PacKey::GA: return true;  // no SCTLR gate for the generic key
  }
  return false;
}

uint64_t Cpu::do_pac(uint64_t ptr, uint64_t modifier, PacKey k) {
  if (!pauth_enabled(k)) return ptr;  // disabled keys make PAC* a no-op
  // Computed before emission so the audit Sign event can carry the signed
  // result (the causal link an auth failure is matched against).
  const uint64_t signed_ptr = pauth_.add_pac(ptr, modifier, pac_key(k));
  if (sink_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::PacSign;
    e.cycles = cycles_;
    e.pc = pc - 4;
    e.a = ptr;
    e.b = modifier;
    e.el = static_cast<uint8_t>(pstate.el);
    e.k1 = static_cast<uint8_t>(k);
    sink_->emit(e);
  }
  if (audit_) {
    obs::AuditEvent a;
    a.kind = obs::AuditKind::Sign;
    a.cycles = cycles_;
    a.pc = pc - 4;
    a.ptr = ptr;
    a.ptr2 = signed_ptr;
    a.modifier = modifier;
    a.prov = key_provenance(k);
    a.key = static_cast<uint8_t>(k);
    a.el = static_cast<uint8_t>(pstate.el);
    a.mclass = static_cast<uint8_t>(obs::classify_modifier(modifier));
    a.cpu = static_cast<uint8_t>(cpu_id_);
    audit_->audit(a);
  }
  return signed_ptr;
}

uint64_t Cpu::do_aut(uint64_t ptr, uint64_t modifier, PacKey k, Op op,
                     bool& fault_taken) {
  fault_taken = false;
  if (!pauth_enabled(k)) return ptr;
  const auto r = pauth_.auth(ptr, modifier, pac_key(k), k);
  if (sink_) {
    obs::TraceEvent e;
    e.kind = r.ok ? obs::EventKind::AuthOk : obs::EventKind::AuthFail;
    e.cycles = cycles_;
    e.pc = pc - 4;
    e.a = ptr;
    e.b = modifier;
    e.el = static_cast<uint8_t>(pstate.el);
    e.k1 = static_cast<uint8_t>(k);
    sink_->emit(e);
  }
  if (audit_) {
    obs::AuditEvent a;
    a.kind = r.ok ? obs::AuditKind::AuthOk : obs::AuditKind::AuthFail;
    a.cycles = cycles_;
    a.pc = pc - 4;
    a.ptr = ptr;
    a.ptr2 = r.ptr;
    a.modifier = modifier;
    a.lr = gpr_[isa::kRegLr];
    a.prov = key_provenance(k);
    a.key = static_cast<uint8_t>(k);
    a.el = static_cast<uint8_t>(pstate.el);
    a.mclass = static_cast<uint8_t>(obs::classify_modifier(modifier));
    a.cpu = static_cast<uint8_t>(cpu_id_);
    audit_->audit(a);
  }
  if (!r.ok) {
    if (pac_observer_) pac_observer_(*this, op, ptr);
    if (cfg_.fpac) {
      take_exception(ExcClass::PacFail, ptr, 0, FaultKind::None, pc - 4);
      fault_taken = true;
      return ptr;
    }
  }
  return r.ptr;
}

// ---------------------------------------------------------------------------
// Step
// ---------------------------------------------------------------------------

void Cpu::set_timer(uint64_t cycles) {
  timer_cycles_ = cycles == 0 ? 0 : cycles_ + cycles;
}

void Cpu::set_timer_period(uint64_t cycles) {
  timer_period_ = cycles;
  set_timer(cycles);
}

void Cpu::add_breakpoint(uint64_t va, Hook hook) {
  breakpoints_[va].push_back(std::move(hook));
  bp_min_pc_ = std::min(bp_min_pc_, va);
  bp_max_pc_ = std::max(bp_max_pc_, va);
}

bool Cpu::step() {
  if (!attr_) return step_impl();
  // Attribute the whole step's cycle delta (instruction cost plus any
  // exception-entry cost) to the pc/EL the step started at, so the sum over
  // all retire() calls reproduces cycles() exactly.
  const uint64_t pc0 = pc;
  const uint8_t el0 = static_cast<uint8_t>(pstate.el);
  const uint64_t c0 = cycles_;
  step_op_class_ = obs::OpClass::Other;
  const bool more = step_impl();
  if (cycles_ != c0)
    attr_->retire(pc0, el0, static_cast<uint8_t>(step_op_class_),
                  cycles_ - c0);
  return more;
}

bool Cpu::step_impl() {
  if (halted_) return false;

  if (timer_cycles_ != 0 && cycles_ >= timer_cycles_) {
    timer_cycles_ = timer_period_ == 0 ? 0 : cycles_ + timer_period_;
    irq_pending_ = true;
    irq_sources_ |= kIrqSrcTimer;
  }
  if (irq_pending_ && !pstate.irq_masked) {
    irq_pending_ = false;
    take_exception(ExcClass::Irq, 0, 0, FaultKind::None, pc);
    return true;
  }

  if (pc >= bp_min_pc_ && pc <= bp_max_pc_) {
    auto it = breakpoints_.find(pc);
    if (it != breakpoints_.end()) {
      // Copy: hooks may add/remove breakpoints.
      const auto hooks = it->second;
      for (const auto& h : hooks) h(*this);
      if (halted_) return false;
    }
  }

  const uint64_t iaddr = pc;
  if (!is_aligned(iaddr, 4)) {
    take_exception(ExcClass::InsnAbort, iaddr, 0, FaultKind::AddressSize,
                   iaddr);
    return true;
  }
  // Fetch permission always goes through the full translation/fault model
  // (XOM, PXN, PAC-poison); only the decode of the fetched word is cached.
  const auto xlat = mmu_->translate(iaddr, mem::Access::Fetch, pstate.el);
  if (xlat.fault != FaultKind::None) {
    take_exception(ExcClass::InsnAbort, iaddr, 0, xlat.fault, iaddr);
    return true;
  }
  const Inst inst = cfg_.fast_path
                        ? fetch_decoded(xlat.pa)
                        : isa::decode(mmu_->phys().read32(xlat.pa));
  if (trace_) trace_(*this, iaddr, inst);
  if (attr_) step_op_class_ = op_class(inst.op);
  const uint8_t cov_el = static_cast<uint8_t>(pstate.el);

  pc = iaddr + 4;
  execute(inst);

  cycles_ += cfg_.enable_cycle_model ? cycle_cost(inst) : 1;
  ++instret_;
  ++op_counts_[static_cast<size_t>(inst.op)];
  if (cov_) cov_->retire(xlat.pa, iaddr, cov_el);
  return !halted_;
}

const Inst& Cpu::fetch_decoded_slow(uint64_t pa) {
  const mem::PhysicalMemory& phys = mmu_->phys();
  // A fetch straddling the end of physical memory is a host-side bug; take
  // the same camo::Error the uncached phys read would raise.
  if (phys.size() < 4 || pa > phys.size() - 4) (void)phys.read32(pa);
  const uint64_t page = pa >> mem::PhysicalMemory::kPageShift;
  const uint64_t cur_gen = phys.page_generation(page);

  DecodedPage& dp = icache_[page];
  mru_page_ = page;
  mru_dp_ = &dp;
  if (dp.insts.empty() || dp.gen != cur_gen) {
    if (dp.insts.empty())
      ++fp_stats_.icache_misses;
    else
      ++fp_stats_.icache_redecodes;
    // Decode the whole page eagerly: code pages are executed densely, and a
    // single pass amortises the map lookup. Clamp to the end of physical
    // memory for a final partial page.
    const uint64_t base = page << mem::PhysicalMemory::kPageShift;
    const uint64_t page_words = uint64_t{1}
                                << (mem::PhysicalMemory::kPageShift - 2);
    const uint64_t words = std::min(page_words, (phys.size() - base) / 4);
    dp.insts.resize(words);
    for (uint64_t w = 0; w < words; ++w)
      dp.insts[w] = isa::decode(phys.read32(base + w * 4));
    dp.gen = cur_gen;
  } else {
    ++fp_stats_.icache_hits;
  }
  return dp.insts[(pa & mask(mem::PhysicalMemory::kPageShift)) >> 2];
}

uint64_t Cpu::run(uint64_t max_steps) {
  const uint64_t retired0 = instret_;
  if (!cfg_.superblocks) {
    uint64_t n = 0;
    while (n < max_steps && step()) ++n;
    return instret_ - retired0;
  }
  // Superblock mode (DESIGN.md §3e): the engine consumes the budget in
  // whole-block bites and hands back anything only the single-step path can
  // do exactly — interrupt delivery, breakpoint hooks, faulting or unaligned
  // fetches. One step() after every engine return also guarantees forward
  // progress when the engine reports 0. Budget units are identical to the
  // single-step loop's for any max_steps, so run(a); run(b) splits land on
  // the same instruction boundaries with the engine on or off.
  uint64_t n = 0;
  while (n < max_steps) {
    n += sb_->execute(*this, max_steps - n);
    if (n >= max_steps || halted_) break;
    if (!step()) break;
    ++n;
  }
  return instret_ - retired0;
}

// ---------------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------------

namespace {

bool cond_holds(isa::Cond cond, const Pstate& ps) {
  using isa::Cond;
  switch (cond) {
    case Cond::EQ: return ps.z;
    case Cond::NE: return !ps.z;
    case Cond::HS: return ps.c;
    case Cond::LO: return !ps.c;
    case Cond::MI: return ps.n;
    case Cond::PL: return !ps.n;
    case Cond::HI: return ps.c && !ps.z;
    case Cond::LS: return !ps.c || ps.z;
    case Cond::GE: return ps.n == ps.v;
    case Cond::LT: return ps.n != ps.v;
    case Cond::GT: return !ps.z && ps.n == ps.v;
    case Cond::LE: return ps.z || ps.n != ps.v;
    case Cond::AL: return true;
  }
  return false;
}

}  // namespace

uint64_t Cpu::read_gpr_or_sp(unsigned i) const {
  return i == isa::kRegZrSp ? sp() : gpr_[i];
}

void Cpu::write_gpr_or_sp(unsigned i, uint64_t v) {
  if (i == isa::kRegZrSp)
    set_sp(v);
  else
    gpr_[i] = v;
}

// ---------------------------------------------------------------------------
// Execute: one static handler per opcode, dispatched through a constexpr
// table. Cpu::execute (the single-step path) and the superblock engine both
// dispatch through the same table, so there is exactly one implementation of
// every instruction and parity between the two paths is structural.
// ---------------------------------------------------------------------------

struct ExecHandlers {
  static void set_add_flags(Cpu& c, uint64_t a, uint64_t b, uint64_t res) {
    c.pstate.n = res >> 63;
    c.pstate.z = res == 0;
    c.pstate.c = res < a;  // carry out of unsigned add
    c.pstate.v = (~(a ^ b) & (a ^ res)) >> 63;
  }
  static void set_sub_flags(Cpu& c, uint64_t a, uint64_t b, uint64_t res) {
    c.pstate.n = res >> 63;
    c.pstate.z = res == 0;
    c.pstate.c = a >= b;  // no borrow
    c.pstate.v = ((a ^ b) & (a ^ res)) >> 63;
  }
  static void undefined(Cpu& c, const Inst& inst) {
    c.take_exception(ExcClass::Undefined, 0, static_cast<uint16_t>(inst.op),
                     FaultKind::None, c.pc - 4);
  }
  static bool require_el1(Cpu& c, const Inst& inst) {
    if (c.pstate.el == El::El0) {
      undefined(c, inst);
      return false;
    }
    return true;
  }

  static void invalid(Cpu& c, const Inst& inst) { undefined(c, inst); }

  // ---- moves ----
  static void movz(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, static_cast<uint64_t>(inst.imm) << (16 * inst.hw));
  }
  static void movk(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, insert_bits(c.x(inst.rd), 16u * inst.hw, 16,
                                 static_cast<uint64_t>(inst.imm)));
  }
  static void movn(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, ~(static_cast<uint64_t>(inst.imm) << (16 * inst.hw)));
  }

  // ---- register data processing ----
  static void add(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) + c.x(inst.rm));
  }
  static void sub(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) - c.x(inst.rm));
  }
  static void adds(Cpu& c, const Inst& inst) {
    const uint64_t a = c.x(inst.rn), b = c.x(inst.rm), r = a + b;
    set_add_flags(c, a, b, r);
    c.set_x(inst.rd, r);
  }
  static void subs(Cpu& c, const Inst& inst) {
    const uint64_t a = c.x(inst.rn), b = c.x(inst.rm), r = a - b;
    set_sub_flags(c, a, b, r);
    c.set_x(inst.rd, r);
  }
  static void and_(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) & c.x(inst.rm));
  }
  static void orr(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) | c.x(inst.rm));
  }
  static void eor(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) ^ c.x(inst.rm));
  }
  static void mul(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) * c.x(inst.rm));
  }
  static void udiv(Cpu& c, const Inst& inst) {
    const uint64_t d = c.x(inst.rm);
    c.set_x(inst.rd, d == 0 ? 0 : c.x(inst.rn) / d);
  }
  static void lslv(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) << (c.x(inst.rm) & 63));
  }
  static void lsrv(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) >> (c.x(inst.rm) & 63));
  }

  // ---- immediate data processing (rd/rn may be SP for ADD/SUB) ----
  static void addi(Cpu& c, const Inst& inst) {
    c.write_gpr_or_sp(
        inst.rd, c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm));
  }
  static void subi(Cpu& c, const Inst& inst) {
    c.write_gpr_or_sp(
        inst.rd, c.read_gpr_or_sp(inst.rn) - static_cast<uint64_t>(inst.imm));
  }
  static void addsi(Cpu& c, const Inst& inst) {
    const uint64_t a = c.read_gpr_or_sp(inst.rn);
    const uint64_t b = static_cast<uint64_t>(inst.imm);
    const uint64_t r = a + b;
    set_add_flags(c, a, b, r);
    c.set_x(inst.rd, r);
  }
  static void subsi(Cpu& c, const Inst& inst) {
    const uint64_t a = c.read_gpr_or_sp(inst.rn);
    const uint64_t b = static_cast<uint64_t>(inst.imm);
    const uint64_t r = a - b;
    set_sub_flags(c, a, b, r);
    c.set_x(inst.rd, r);
  }
  static void andi(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) & static_cast<uint64_t>(inst.imm));
  }
  static void orri(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) | static_cast<uint64_t>(inst.imm));
  }
  static void eori(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) ^ static_cast<uint64_t>(inst.imm));
  }

  // ---- shifts / bitfields ----
  static void lsli(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) << inst.imm);
  }
  static void lsri(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, c.x(inst.rn) >> inst.imm);
  }
  static void asri(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, static_cast<uint64_t>(
                         static_cast<int64_t>(c.x(inst.rn)) >> inst.imm));
  }
  static void bfi(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd,
            insert_bits(c.x(inst.rd), inst.lsb, inst.width, c.x(inst.rn)));
  }
  static void ubfx(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, bits(c.x(inst.rn), inst.lsb, inst.width));
  }

  static void adr(Cpu& c, const Inst& inst) {
    c.set_x(inst.rd, (c.pc - 4) + static_cast<uint64_t>(inst.imm));
  }

  // ---- loads / stores ----
  static void ldr(Cpu& c, const Inst& inst) {
    uint64_t v;
    if (c.mem_read64(c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm),
                     v))
      c.set_x(inst.rd, v);
  }
  static void str(Cpu& c, const Inst& inst) {
    c.mem_write64(c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm),
                  c.x(inst.rd));
  }
  static void ldrb(Cpu& c, const Inst& inst) {
    uint64_t v;
    if (c.mem_read8(c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm),
                    v))
      c.set_x(inst.rd, v);
  }
  static void strb(Cpu& c, const Inst& inst) {
    c.mem_write8(c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm),
                 static_cast<uint8_t>(c.x(inst.rd)));
  }
  static void swp(Cpu& c, const Inst& inst) {
    // Atomic swap: the quantum interleaver never splits one instruction, so
    // load+store here is indivisible across cores — the guest SMP runqueue
    // lock is built on exactly that.
    const uint64_t va = c.read_gpr_or_sp(inst.rn);
    uint64_t old;
    if (!c.mem_read64(va, old)) return;
    if (!c.mem_write64(va, c.x(inst.rm))) return;
    c.set_x(inst.rd, old);
  }
  static void ldp(Cpu& c, const Inst& inst) {
    const uint64_t base =
        c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm);
    uint64_t a, b;
    if (c.mem_read64(base, a) && c.mem_read64(base + 8, b)) {
      c.set_x(inst.rd, a);
      c.set_x(inst.rm, b);
    }
  }
  static void stp(Cpu& c, const Inst& inst) {
    const uint64_t base =
        c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm);
    if (c.mem_write64(base, c.x(inst.rd))) c.mem_write64(base + 8, c.x(inst.rm));
  }
  static void stp_pre(Cpu& c, const Inst& inst) {
    const uint64_t base =
        c.read_gpr_or_sp(inst.rn) + static_cast<uint64_t>(inst.imm);
    if (c.mem_write64(base, c.x(inst.rd)) &&
        c.mem_write64(base + 8, c.x(inst.rm)))
      c.write_gpr_or_sp(inst.rn, base);
  }
  static void ldp_post(Cpu& c, const Inst& inst) {
    const uint64_t base = c.read_gpr_or_sp(inst.rn);
    uint64_t a, b;
    if (c.mem_read64(base, a) && c.mem_read64(base + 8, b)) {
      c.set_x(inst.rd, a);
      c.set_x(inst.rm, b);
      c.write_gpr_or_sp(inst.rn, base + static_cast<uint64_t>(inst.imm));
    }
  }

  // ---- branches ----
  static void b(Cpu& c, const Inst& inst) {
    c.pc = (c.pc - 4) + static_cast<uint64_t>(inst.imm);
  }
  static void bl(Cpu& c, const Inst& inst) {
    const uint64_t iaddr = c.pc - 4;
    c.set_x(isa::kRegLr, iaddr + 4);
    c.pc = iaddr + static_cast<uint64_t>(inst.imm);
    if (c.cf_) c.cf_->control_flow(obs::CfKind::Call, iaddr, c.pc, 0);
  }
  static void bcond(Cpu& c, const Inst& inst) {
    if (cond_holds(inst.cond, c.pstate))
      c.pc = (c.pc - 4) + static_cast<uint64_t>(inst.imm);
  }
  static void cbz(Cpu& c, const Inst& inst) {
    if (c.x(inst.rd) == 0) c.pc = (c.pc - 4) + static_cast<uint64_t>(inst.imm);
  }
  static void cbnz(Cpu& c, const Inst& inst) {
    if (c.x(inst.rd) != 0) c.pc = (c.pc - 4) + static_cast<uint64_t>(inst.imm);
  }
  static void br(Cpu& c, const Inst& inst) { c.pc = c.x(inst.rn); }
  static void blr(Cpu& c, const Inst& inst) {
    const uint64_t iaddr = c.pc - 4;
    c.set_x(isa::kRegLr, iaddr + 4);
    c.pc = c.x(inst.rn);
    if (c.cf_) c.cf_->control_flow(obs::CfKind::Call, iaddr, c.pc, 0);
  }
  static void ret(Cpu& c, const Inst& inst) {
    // The assembler always encodes the target register explicitly (LR for
    // a plain `ret`).
    const uint64_t iaddr = c.pc - 4;
    c.pc = c.x(inst.rn);
    if (c.cf_) c.cf_->control_flow(obs::CfKind::Ret, iaddr, c.pc, 0);
  }

  // ---- PAuth combined branches ----
  static void pac_branch(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    const uint64_t iaddr = c.pc - 4;
    const bool b_key = inst.op == Op::BRAB || inst.op == Op::BLRAB;
    const bool link = inst.op == Op::BLRAA || inst.op == Op::BLRAB;
    const uint64_t modifier = c.read_gpr_or_sp(inst.rm);
    bool faulted;
    const uint64_t target =
        c.do_aut(c.x(inst.rn), modifier, b_key ? PacKey::IB : PacKey::IA,
                 inst.op, faulted);
    if (faulted) return;
    if (link) c.set_x(isa::kRegLr, iaddr + 4);
    c.pc = target;
    if (link && c.cf_) c.cf_->control_flow(obs::CfKind::Call, iaddr, c.pc, 0);
  }
  static void retax(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    const uint64_t iaddr = c.pc - 4;
    bool faulted;
    const uint64_t target =
        c.do_aut(c.x(isa::kRegLr), c.sp(),
                 inst.op == Op::RETAB ? PacKey::IB : PacKey::IA, inst.op,
                 faulted);
    if (!faulted) {
      c.pc = target;
      if (c.cf_) c.cf_->control_flow(obs::CfKind::Ret, iaddr, c.pc, 0);
    }
  }

  // ---- system ----
  static void mrs(Cpu& c, const Inst& inst) {
    // CNTVCT is readable from EL0 (Linux exposes the counter); everything
    // else requires EL1.
    if (c.pstate.el == El::El0 && inst.sysreg != SysReg::CNTVCT_EL0) {
      undefined(c, inst);
      return;
    }
    c.set_x(inst.rd, c.sysreg(inst.sysreg));
  }
  static void msr(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    if (inst.sysreg == SysReg::CurrentEL || inst.sysreg == SysReg::CNTVCT_EL0) {
      undefined(c, inst);
      return;
    }
    const uint64_t v = c.x(inst.rd);
    if (c.msr_filter_ && !c.msr_filter_(c, inst.sysreg, v)) {
      undefined(c, inst);  // hypervisor-locked register (threat model §3.1)
      return;
    }
    c.set_sysreg(inst.sysreg, v);
    if (isa::is_pauth_key_reg(inst.sysreg)) {
      // Key registers are laid out Lo/Hi pairs in PacKey order.
      const auto key_idx =
          static_cast<size_t>(static_cast<unsigned>(inst.sysreg) / 2);
      // Each half-write is an install: provenance bumps unconditionally so
      // audit streams attached later still see consistent ids.
      c.key_prov_[key_idx] = ++c.prov_counter_;
      if (c.sink_) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::KeyWrite;
        e.cycles = c.cycles_;
        e.pc = c.pc - 4;
        e.el = static_cast<uint8_t>(c.pstate.el);
        e.k1 = static_cast<uint8_t>(key_idx);
        e.imm = static_cast<uint16_t>(inst.sysreg);
        c.sink_->emit(e);
      }
      if (c.audit_) {
        obs::AuditEvent a;
        a.kind = obs::AuditKind::KeyInstall;
        a.cycles = c.cycles_;
        a.pc = c.pc - 4;
        a.key = static_cast<uint8_t>(key_idx);
        a.el = static_cast<uint8_t>(c.pstate.el);
        a.prov = c.key_prov_[key_idx];
        a.imm = static_cast<uint16_t>(inst.sysreg);
        a.cpu = static_cast<uint8_t>(c.cpu_id_);
        c.audit_->audit(a);
      }
    }
  }
  static void svc(Cpu& c, const Inst& inst) {
    c.take_exception(ExcClass::Svc, 0, static_cast<uint16_t>(inst.imm),
                     FaultKind::None, c.pc);
  }
  static void hvc(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    if (c.hvc_)
      c.hvc_(c, static_cast<uint16_t>(inst.imm));
    else
      undefined(c, inst);
  }
  static void brk(Cpu& c, const Inst& inst) {
    c.take_exception(ExcClass::Brk, 0, static_cast<uint16_t>(inst.imm),
                     FaultKind::None, c.pc - 4);
  }
  static void hlt(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    c.halted_ = true;
    c.halt_code_ = static_cast<uint64_t>(inst.imm);
  }
  static void eret(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    c.do_eret();
  }
  static void daifset(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    c.pstate.irq_masked = true;
  }
  static void daifclr(Cpu& c, const Inst& inst) {
    if (!require_el1(c, inst)) return;
    c.pstate.irq_masked = false;
  }
  static void nop(Cpu&, const Inst&) {}  // also ISB

  // ---- PAuth sign / authenticate ----
  static void pac_sign(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    static constexpr PacKey keys[] = {PacKey::IA, PacKey::IB, PacKey::DA,
                                      PacKey::DB};
    const PacKey k =
        keys[static_cast<int>(inst.op) - static_cast<int>(Op::PACIA)];
    c.set_x(inst.rd, c.do_pac(c.x(inst.rd), c.read_gpr_or_sp(inst.rn), k));
  }
  static void pac_auth(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    static constexpr PacKey keys[] = {PacKey::IA, PacKey::IB, PacKey::DA,
                                      PacKey::DB};
    const PacKey k =
        keys[static_cast<int>(inst.op) - static_cast<int>(Op::AUTIA)];
    bool faulted;
    const uint64_t v =
        c.do_aut(c.x(inst.rd), c.read_gpr_or_sp(inst.rn), k, inst.op, faulted);
    if (!faulted) c.set_x(inst.rd, v);
  }
  static void pacga(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    c.set_x(inst.rd,
            c.pauth_.pacga(c.x(inst.rn), c.x(inst.rm), c.pac_key(PacKey::GA)));
  }
  static void xpac(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) {
      undefined(c, inst);
      return;
    }
    c.set_x(inst.rd, c.pauth_.strip(c.x(inst.rd)));
  }

  // ---- HINT-space PAuth: NOP on pre-8.3 cores (§5.5) ----
  static void paciasp(Cpu& c, const Inst&) {
    if (c.cfg_.has_pauth)
      c.set_x(isa::kRegLr, c.do_pac(c.x(isa::kRegLr), c.sp(), PacKey::IA));
  }
  static void pacibsp(Cpu& c, const Inst&) {
    if (c.cfg_.has_pauth)
      c.set_x(isa::kRegLr, c.do_pac(c.x(isa::kRegLr), c.sp(), PacKey::IB));
  }
  static void autxsp(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) return;
    bool faulted;
    const uint64_t v =
        c.do_aut(c.x(isa::kRegLr), c.sp(),
                 inst.op == Op::AUTIBSP ? PacKey::IB : PacKey::IA, inst.op,
                 faulted);
    if (!faulted) c.set_x(isa::kRegLr, v);
  }
  static void pacx1716(Cpu& c, const Inst& inst) {
    if (c.cfg_.has_pauth)
      c.set_x(isa::kRegIp1,
              c.do_pac(c.x(isa::kRegIp1), c.x(isa::kRegIp0),
                       inst.op == Op::PACIB1716 ? PacKey::IB : PacKey::IA));
  }
  static void autx1716(Cpu& c, const Inst& inst) {
    if (!c.cfg_.has_pauth) return;
    bool faulted;
    const uint64_t v =
        c.do_aut(c.x(isa::kRegIp1), c.x(isa::kRegIp0),
                 inst.op == Op::AUTIB1716 ? PacKey::IB : PacKey::IA, inst.op,
                 faulted);
    if (!faulted) c.set_x(isa::kRegIp1, v);
  }
  static void xpaclri(Cpu& c, const Inst&) {
    if (c.cfg_.has_pauth) c.set_x(isa::kRegLr, c.pauth_.strip(c.x(isa::kRegLr)));
  }
};

namespace {

constexpr Cpu::ExecFn pick_handler(Op op) {
  switch (op) {
    case Op::Invalid: return &ExecHandlers::invalid;
    case Op::MOVZ: return &ExecHandlers::movz;
    case Op::MOVK: return &ExecHandlers::movk;
    case Op::MOVN: return &ExecHandlers::movn;
    case Op::ADD: return &ExecHandlers::add;
    case Op::SUB: return &ExecHandlers::sub;
    case Op::ADDS: return &ExecHandlers::adds;
    case Op::SUBS: return &ExecHandlers::subs;
    case Op::AND: return &ExecHandlers::and_;
    case Op::ORR: return &ExecHandlers::orr;
    case Op::EOR: return &ExecHandlers::eor;
    case Op::MUL: return &ExecHandlers::mul;
    case Op::UDIV: return &ExecHandlers::udiv;
    case Op::LSLV: return &ExecHandlers::lslv;
    case Op::LSRV: return &ExecHandlers::lsrv;
    case Op::ADDI: return &ExecHandlers::addi;
    case Op::SUBI: return &ExecHandlers::subi;
    case Op::ADDSI: return &ExecHandlers::addsi;
    case Op::SUBSI: return &ExecHandlers::subsi;
    case Op::ANDI: return &ExecHandlers::andi;
    case Op::ORRI: return &ExecHandlers::orri;
    case Op::EORI: return &ExecHandlers::eori;
    case Op::LSLI: return &ExecHandlers::lsli;
    case Op::LSRI: return &ExecHandlers::lsri;
    case Op::ASRI: return &ExecHandlers::asri;
    case Op::BFI: return &ExecHandlers::bfi;
    case Op::UBFX: return &ExecHandlers::ubfx;
    case Op::ADR: return &ExecHandlers::adr;
    case Op::LDR: return &ExecHandlers::ldr;
    case Op::STR: return &ExecHandlers::str;
    case Op::LDRB: return &ExecHandlers::ldrb;
    case Op::STRB: return &ExecHandlers::strb;
    case Op::LDP: return &ExecHandlers::ldp;
    case Op::STP: return &ExecHandlers::stp;
    case Op::LDP_POST: return &ExecHandlers::ldp_post;
    case Op::STP_PRE: return &ExecHandlers::stp_pre;
    case Op::B: return &ExecHandlers::b;
    case Op::BL: return &ExecHandlers::bl;
    case Op::BCOND: return &ExecHandlers::bcond;
    case Op::CBZ: return &ExecHandlers::cbz;
    case Op::CBNZ: return &ExecHandlers::cbnz;
    case Op::BR: return &ExecHandlers::br;
    case Op::BLR: return &ExecHandlers::blr;
    case Op::RET: return &ExecHandlers::ret;
    case Op::BRAA:
    case Op::BRAB:
    case Op::BLRAA:
    case Op::BLRAB: return &ExecHandlers::pac_branch;
    case Op::RETAA:
    case Op::RETAB: return &ExecHandlers::retax;
    case Op::MRS: return &ExecHandlers::mrs;
    case Op::MSR: return &ExecHandlers::msr;
    case Op::SVC: return &ExecHandlers::svc;
    case Op::HVC: return &ExecHandlers::hvc;
    case Op::BRK: return &ExecHandlers::brk;
    case Op::HLT: return &ExecHandlers::hlt;
    case Op::ERET: return &ExecHandlers::eret;
    case Op::DAIFSET: return &ExecHandlers::daifset;
    case Op::DAIFCLR: return &ExecHandlers::daifclr;
    case Op::ISB:
    case Op::NOP: return &ExecHandlers::nop;
    case Op::PACIA:
    case Op::PACIB:
    case Op::PACDA:
    case Op::PACDB: return &ExecHandlers::pac_sign;
    case Op::AUTIA:
    case Op::AUTIB:
    case Op::AUTDA:
    case Op::AUTDB: return &ExecHandlers::pac_auth;
    case Op::PACGA: return &ExecHandlers::pacga;
    case Op::XPACI:
    case Op::XPACD: return &ExecHandlers::xpac;
    case Op::PACIASP: return &ExecHandlers::paciasp;
    case Op::PACIBSP: return &ExecHandlers::pacibsp;
    case Op::AUTIASP:
    case Op::AUTIBSP: return &ExecHandlers::autxsp;
    case Op::PACIA1716:
    case Op::PACIB1716: return &ExecHandlers::pacx1716;
    case Op::AUTIA1716:
    case Op::AUTIB1716: return &ExecHandlers::autx1716;
    case Op::XPACLRI: return &ExecHandlers::xpaclri;
    case Op::SWP: return &ExecHandlers::swp;
    case Op::kCount: return nullptr;  // never decoded; not in the table
  }
  return nullptr;
}

constexpr auto kExecTable = [] {
  std::array<Cpu::ExecFn, static_cast<size_t>(Op::kCount)> t{};
  for (size_t i = 0; i < t.size(); ++i)
    t[i] = pick_handler(static_cast<Op>(i));
  return t;
}();

static_assert(
    [] {
      for (Cpu::ExecFn fn : kExecTable)
        if (fn == nullptr) return false;
      return true;
    }(),
    "every decodable Op must have an exec handler");

}  // namespace

Cpu::ExecFn Cpu::exec_handler(isa::Op op) {
  return kExecTable[static_cast<size_t>(op)];
}

void Cpu::execute(const Inst& inst) {
  kExecTable[static_cast<size_t>(inst.op)](*this, inst);
}

}  // namespace camo::cpu
