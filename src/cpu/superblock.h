// Superblock execution engine (DESIGN.md §3e).
//
// The interpreter's dominant host cost after the PR-3 fetch/translate fast
// path is the per-instruction dispatch round-trip itself: translate, fetch a
// decoded instruction, switch on the opcode. This engine amortises all of it
// the way trace-cache interpreters do: straight-line runs of decoded
// instructions are lazily translated into cached *superblocks* — arrays of
// pre-resolved handler pointers plus copied operands — and executed by a
// tight loop that per instruction does only the architectural work the
// single-step path does (timer, pending-IRQ and breakpoint checks, the trace
// and attribution feeds, the handler itself, cycle/retire bookkeeping).
//
// Invariance contract (the same one the §3c caches honour): simulated state,
// cycle counts, fault sequences and the retire stream seen by every obs feed
// are bit-for-bit identical with the engine on or off, for any step budget.
// Anything the block path cannot reproduce exactly — interrupt delivery,
// breakpoint hooks, faulting fetches, unaligned pc — bails out to Cpu::step,
// which IS the single-step path.
//
// Validity by construction: a block caches decoded bytes *and* a fetch
// translation, so it is keyed on everything both depend on —
//   * the physical page's write generation (mem::PhysicalMemory): any store
//     to the page, guest or host, makes every cached decode of it stale;
//   * the identity (uid) and generation of the stage-1 half and the stage-2
//     overlay (mem::Mmu::fetch_epoch): translate() is a pure function of the
//     VA and this snapshot, so equality proves the cached translation — map,
//     permissions, XOM/PXN, canonicality — still holds;
//   * the start VA and EL the block was built for.
// Key-setter patching, module .text staging, in-place SMC, map edits and
// whole-map swaps (SwitchUserSpace) each bump one of these, so stale blocks
// are unreachable rather than flushed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cpu/cpu.h"
#include "isa/isa.h"
#include "mem/mmu.h"

namespace camo::cpu {

class SuperblockEngine {
 public:
  /// Execute whole blocks starting at cpu.pc until `budget` steps are
  /// consumed, the CPU halts, or something only the single-step path can do
  /// comes up (pending deliverable IRQ, breakpoint at the next pc, faulting
  /// or unaligned fetch). Returns the budget units consumed — one per
  /// retired instruction, exactly like repeated Cpu::step() calls; never
  /// overshoots. A return of 0 with the CPU still running means "cannot make
  /// progress here": the caller must single-step once before retrying.
  uint64_t execute(Cpu& cpu, uint64_t budget);

  const SuperblockStats& stats() const { return stats_; }

 private:
  /// One translated instruction: the decoded operands plus everything the
  /// dispatch loop would otherwise recompute per retire.
  struct Entry {
    isa::Inst inst;
    Cpu::ExecFn fn = nullptr;
    uint8_t cost = 1;      ///< Cpu::cycle_cost(inst)
    uint8_t op_class = 0;  ///< obs::OpClass for cycle attribution
    bool is_store = false; ///< recheck the page generation after executing
  };

  /// A straight-line run of entries ending at the first block terminator
  /// (isa::op_traits.ends_block) or the page boundary, terminator included.
  /// Cached by start PA; rebuilt in place when a validity key goes stale, so
  /// node addresses stay stable and chain pointers never dangle — a stale
  /// chain target is caught by valid(), not by lifetime.
  struct Block {
    uint64_t va_start = 0;
    uint64_t pa_start = 0;
    uint64_t phys_gen = 0;             ///< page write generation at build
    mem::Mmu::FetchEpoch epoch;        ///< stage-1/stage-2 snapshot at build
    mem::El el = mem::El::El1;
    bool built = false;
    std::vector<Entry> entries;
    /// Memoized successor edge (most-recent-successor): after this block
    /// completed with pc == chain_va last time, `chain` was the block there.
    /// Only a shortcut past the lookup+translate — the target is fully
    /// re-validated before every use, so a wrong or stale memo costs one
    /// lookup, never correctness. Unconditional branches and fall-through
    /// edges make it effectively permanent; conditional edges degrade to the
    /// plain lookup when they alternate.
    Block* chain = nullptr;
    uint64_t chain_va = 0;
  };

  /// True when `b` may execute at `va` right now: same start VA and EL, both
  /// the translation snapshot and the page's write generation unchanged.
  bool valid(const Cpu& cpu, const Block& b, uint64_t va) const;
  /// Look up (or build) a valid block for cpu.pc. Null when the fetch would
  /// fault or pc is unaligned — the single-step path owns those.
  Block* acquire(Cpu& cpu);
  void build(Cpu& cpu, Block& b, uint64_t va, uint64_t pa);

  std::unordered_map<uint64_t, Block> cache_;  // key: start PA
  SuperblockStats stats_;
};

}  // namespace camo::cpu
