// Superblock execution engine (DESIGN.md §3e) and its trace tier (§3i).
//
// The interpreter's dominant host cost after the PR-3 fetch/translate fast
// path is the per-instruction dispatch round-trip itself: translate, fetch a
// decoded instruction, switch on the opcode. This engine amortises all of it
// the way trace-cache interpreters do: straight-line runs of decoded
// instructions are lazily translated into cached *superblocks* — arrays of
// pre-resolved handler pointers plus copied operands — and executed by a
// tight loop that per instruction does only the architectural work the
// single-step path does (timer, pending-IRQ and breakpoint checks, the trace
// and attribution feeds, the handler itself, cycle/retire bookkeeping).
//
// The trace tier stacks on top (§3i): when a block's terminator is a
// guardable branch (isa::op_traits.guardable) whose edge profile
// (obs::EdgeProfile) is strongly biased, the cached run is extended across
// that edge into a *trace* — a sequence of block segments executed
// back-to-back. Each segment boundary embeds a guard that compares the pc
// the terminator actually produced (and the EL) against the recorded edge;
// a mismatch side-exits back to the block dispatcher, so a cold or forged
// edge costs one wasted guard, never correctness. Traces also extend across
// the side-effect-light system terminators MRS and MSR (not DAIF — that
// write flips the IRQ mask mid-trace): both transfer control only by
// faulting, which the boundary guard catches, and an MSR boundary
// additionally revalidates every page record because a system-register
// write is the one mid-trace event that could move a mapping. A trace
// spans multiple 4 KiB pages by carrying one FetchEpoch + write-generation
// validation record per constituent page, all re-checked at trace entry
// (mem::Mmu::fetch_epoch_current) and — the write generations — after every
// store inside the trace. PAuth terminators inside traces get fused
// entries: a cpu::PacFuseMemo replays the site's full result when
// (pointer, modifier, 128-bit key) compare equal, so a key change misses
// naturally; failures and disabled keys always fall back to the generic
// handler. When nothing inside a trace can need per-entry timer/IRQ/
// breakpoint or observability work (checked once at entry, sound because
// every op that could change that is either a hard terminator — and so
// trace-final — or an MSR whose boundary guards cover its effects), a
// specialized quiet loop runs the trace without the per-entry preamble.
//
// Invariance contract (the same one the §3c caches honour): simulated state,
// cycle counts, fault sequences and the retire stream seen by every obs feed
// are bit-for-bit identical with the engine on or off, for any step budget.
// Anything the block path cannot reproduce exactly — interrupt delivery,
// breakpoint hooks, faulting fetches, unaligned pc — bails out to Cpu::step,
// which IS the single-step path.
//
// Validity by construction: a block caches decoded bytes *and* a fetch
// translation, so it is keyed on everything both depend on —
//   * the physical page's write generation (mem::PhysicalMemory): any store
//     to the page, guest or host, makes every cached decode of it stale;
//   * the identity (uid) and generation of the stage-1 half and the stage-2
//     overlay (mem::Mmu::fetch_epoch): translate() is a pure function of the
//     VA and this snapshot, so equality proves the cached translation — map,
//     permissions, XOM/PXN, canonicality — still holds;
//   * the start VA and EL the block was built for.
// Key-setter patching, module .text staging, in-place SMC, map edits and
// whole-map swaps (SwitchUserSpace) each bump one of these, so stale blocks
// are unreachable rather than flushed. Traces inherit the same keys, one
// record per page.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cpu/cpu.h"
#include "isa/isa.h"
#include "mem/mmu.h"
#include "obs/edge_profile.h"

namespace camo::cpu {

class SuperblockEngine {
 public:
  /// Execute whole blocks (and traces) starting at cpu.pc until `budget`
  /// steps are consumed, the CPU halts, or something only the single-step
  /// path can do comes up (pending deliverable IRQ, breakpoint at the next
  /// pc, faulting or unaligned fetch). Returns the budget units consumed —
  /// one per retired instruction, exactly like repeated Cpu::step() calls;
  /// never overshoots. A return of 0 with the CPU still running means
  /// "cannot make progress here": the caller must single-step once before
  /// retrying.
  uint64_t execute(Cpu& cpu, uint64_t budget);

  const SuperblockStats& stats() const { return stats_; }

 private:
  struct Trace;

  /// One translated instruction: the decoded operands plus everything the
  /// dispatch loop would otherwise recompute per retire.
  struct Entry {
    isa::Inst inst;
    Cpu::ExecFn fn = nullptr;
    uint8_t cost = 1;       ///< Cpu::cycle_cost(inst)
    uint8_t op_class = 0;   ///< obs::OpClass for cycle attribution
    bool is_store = false;  ///< recheck page generations after executing
    bool may_fault = false; ///< can redirect pc mid-block (DataAbort)
  };

  /// A straight-line run of entries ending at the first block terminator
  /// (isa::op_traits.ends_block) or the page boundary, terminator included.
  /// Cached by start PA; rebuilt in place when a validity key goes stale, so
  /// node addresses stay stable and chain pointers never dangle — a stale
  /// chain target is caught by valid(), not by lifetime.
  struct Block {
    uint64_t va_start = 0;
    uint64_t pa_start = 0;
    uint64_t phys_gen = 0;             ///< page write generation at build
    mem::Mmu::FetchEpoch epoch;        ///< stage-1/stage-2 snapshot at build
    mem::El el = mem::El::El1;
    bool built = false;
    std::vector<Entry> entries;
    /// Memoized successor edge (most-recent-successor): after this block
    /// completed with pc == chain_va last time, `chain` was the block there.
    /// Only a shortcut past the lookup+translate — the target is fully
    /// re-validated before every use, so a wrong or stale memo costs one
    /// lookup, never correctness. Unconditional branches and fall-through
    /// edges make it effectively permanent; conditional edges degrade to the
    /// plain lookup when they alternate.
    Block* chain = nullptr;
    uint64_t chain_va = 0;
    /// Edge-bias profile of this block's terminator (§3i): successor pcs
    /// recorded per completed dispatch, consumed by trace formation. Dies
    /// with the decode — build() resets it.
    obs::EdgeProfile prof;
    /// The trace headed by this block, when one exists (owned by traces_).
    Trace* trace = nullptr;
    /// Regrowth rounds spent on this head (§3i): formation fires as soon as
    /// the head's edge is biased, when downstream profiles are still cold,
    /// so a young trace is re-walked a bounded number of times as the
    /// profiles warm. Lives on the block — the trace is destroyed by each
    /// regrowth — and dies with the decode like prof.
    uint8_t trace_regrows = 0;
  };

  /// PAuth fusion kind of a segment terminator (§3i).
  enum FuseKind : uint8_t { kFuseNone = 0, kFuseSign, kFuseAuth };

  /// A branch-following multi-block trace (§3i). Segments are the existing
  /// cached blocks — never copied — so a trace is a validated itinerary
  /// plus per-boundary guards, not a second decode cache.
  struct Trace {
    struct Seg {
      Block* block = nullptr;
      uint64_t va_start = 0;
      /// Fused-PAuth descriptor of the terminator (kFuseNone when the
      /// terminator is not a fusible PAuth op). ptr is read with Cpu::x and
      /// written with Cpu::set_x; mod is read with read_gpr_or_sp (31=SP).
      uint8_t fuse = kFuseNone;
      uint8_t fuse_key = 0;  ///< PacKey
      uint8_t fuse_ptr = 0;
      uint8_t fuse_mod = 0;
      /// Terminator is a system-register write (MSR): the boundary guard
      /// revalidates all page records, since the write may have moved a
      /// mapping the rest of the trace depends on.
      bool env = false;
      PacFuseMemo memo;
    };
    /// One validation record per constituent 4 KiB page: the write
    /// generation and translation snapshot every cached decode and fetch in
    /// the trace depends on (§3i multi-page epoch validation).
    struct PageRec {
      uint64_t page = 0;      ///< physical page number
      uint64_t phys_gen = 0;  ///< write generation at formation
      mem::Mmu::FetchEpoch epoch;
      uint64_t probe_va = 0;  ///< VA used to re-derive the epoch
    };
    Block* head = nullptr;
    uint64_t head_pa = 0;
    mem::El el = mem::El::El1;
    std::vector<Seg> segs;
    std::vector<PageRec> pages;
    uint64_t entries_total = 0;  ///< instructions across all segments
    uint64_t cost_bound = 0;     ///< worst-case cycles a full run can add
    uint64_t va_min = ~uint64_t{0};  ///< breakpoint-overlap prefilter
    uint64_t va_max = 0;
    /// Value of the engine's build counter last time the per-segment
    /// revalidation in trace_valid passed (or formation time). While the
    /// counter is unchanged no block anywhere has been (re)built, so the
    /// per-segment walk is skipped — the common case on every hot dispatch.
    uint64_t build_stamp = 0;
    uint64_t uses = 0;         ///< dispatches (demotion denominator)
    uint64_t exits = 0;        ///< guard exits taken
    uint64_t entries_run = 0;  ///< instructions retired across all uses;
                               ///< a trace averaging under a quarter of
                               ///< entries_total per use gets demoted
  };

  static constexpr size_t kMaxSegs = 256;
  static constexpr size_t kMaxPages = 8;
  /// Loops unroll naturally (the head repeats as a segment); cap the
  /// repeats so a short-trip loop is not frozen into a trace whose average
  /// realized run immediately trips the demotion threshold.
  static constexpr size_t kMaxHeadRepeats = 16;
  /// Regrowth rounds per head decode (see Block::trace_regrows).
  static constexpr uint8_t kMaxRegrows = 4;

  enum class TraceExit : uint8_t {
    kReturn,    ///< stop consuming budget; execute() returns to the caller
    kContinue,  ///< guard/side exit or completion; re-enter the dispatcher
  };

  /// True when `b` may execute at `va` right now: same start VA and EL, both
  /// the translation snapshot and the page's write generation unchanged.
  bool valid(const Cpu& cpu, const Block& b, uint64_t va) const;
  /// Look up (or build) a valid block for cpu.pc. Null when the fetch would
  /// fault or pc is unaligned — the single-step path owns those.
  Block* acquire(Cpu& cpu);
  void build(Cpu& cpu, Block& b, uint64_t va, uint64_t pa);
  /// Formation-time acquire at an arbitrary VA (no pc, no stats.hits).
  Block* lookup_build(Cpu& cpu, uint64_t va);

  /// All page records current: generations and epochs unchanged, and every
  /// segment still the block it was when the trace formed. Non-const: a
  /// passing per-segment walk refreshes t.build_stamp so the next dispatch
  /// can skip it.
  bool trace_valid(const Cpu& cpu, Trace& t) const;
  /// Write generations only — the post-store subset of trace_valid.
  bool trace_pages_current(const Cpu& cpu, const Trace& t) const;
  /// Generations and epochs — the post-MSR subset of trace_valid.
  bool trace_pages_fresh(const Cpu& cpu, const Trace& t) const;
  /// Extend `head` into a trace along its biased edge profile, if the walk
  /// yields at least two segments within the seg/page budgets.
  void try_form_trace(Cpu& cpu, Block& head);
  /// Dispatch one trace run; updates consumed and (on full completion) sets
  /// prev for the caller's chain memo.
  TraceExit run_trace(Cpu& cpu, Trace& t, uint64_t budget,
                      uint64_t& consumed, Block*& prev);
  /// Unlink from the head block and erase (destroys `t`).
  void drop_trace(Trace& t);

  std::unordered_map<uint64_t, Block> cache_;   // key: start PA
  std::unordered_map<uint64_t, Trace> traces_;  // key: head start PA
  SuperblockStats stats_;
  /// Monotonic count of build() calls; see Trace::build_stamp.
  uint64_t builds_ = 0;
};

}  // namespace camo::cpu
