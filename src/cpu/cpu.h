// The simulated CPU core.
//
// Executes the ISA of isa/isa.h with AArch64 semantics: 31 GPRs, banked
// stack pointers per EL, NZCV flags, EL0/EL1 exception model, the full PAuth
// instruction family, and a deterministic cycle model (the paper's
// "PA-analogue" costing: 4 cycles per PAuth instruction, §6.1).
//
// Host integration points:
//  * HVC lands in a host-installed handler (the EL2 hypervisor is host code).
//  * MSR writes at EL1 pass through a host-installed filter so the hypervisor
//    can lock MMU control registers (threat model §3.1).
//  * Breakpoint hooks fire before executing the instruction at a VA — the
//    attack framework uses them to corrupt state mid-execution.
//  * A PAC-failure observer sees every failed AUT* (for logging/benches; the
//    guest kernel independently detects failures via the resulting faults).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/pauth.h"
#include "isa/isa.h"
#include "mem/mmu.h"
#include "obs/audit.h"
#include "obs/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace camo::cpu {

class SuperblockEngine;

/// Superblock-cache statistics (host-side; informational).
struct SuperblockStats {
  uint64_t blocks = 0;         ///< block translations (first builds + rebuilds)
  uint64_t hits = 0;           ///< blocks served from the cache via lookup
  uint64_t invalidations = 0;  ///< cached blocks rejected by a stale key
  uint64_t chain_hits = 0;     ///< block→block transitions via the memoized
                               ///< chain edge (no lookup, no translate)
  // Trace tier (DESIGN.md §3i): branch-following multi-block traces.
  uint64_t traces_formed = 0;       ///< traces built from biased edge profiles
  uint64_t trace_hits = 0;          ///< dispatches served by a valid trace
  uint64_t trace_guard_exits = 0;   ///< mid-trace guard mismatches (side exit)
  uint64_t trace_invalidations = 0; ///< traces rejected by a stale page record
  uint64_t trace_demotions = 0;     ///< traces dropped for chronic guard exits
  /// Instructions retired per block dispatch (DESIGN.md §3f): every entry
  /// into a cached block records the number of instructions the dispatch
  /// loop retired before leaving it. Deterministic for a fixed engine
  /// configuration, but — like the counters above — a property of the host
  /// execution strategy, so it lives here and not in the merged metrics
  /// registry.
  obs::Histogram run_length;
  /// Entries (instructions) per formed trace, sampled at formation time —
  /// the §3i companion of run_length, serialized as hist.trace.len.
  obs::Histogram trace_len;
};

/// Saved/current processor state flags.
struct Pstate {
  mem::El el = mem::El::El1;
  bool irq_masked = true;
  bool n = false, z = false, c = false, v = false;
};

/// Exception classes (our simplified ESR encoding; see Cpu::esr_*).
enum class ExcClass : uint8_t {
  Unknown = 0,
  Svc,          ///< SVC from EL0 (or EL1)
  Brk,          ///< BRK instruction
  InsnAbort,    ///< instruction fetch fault
  DataAbort,    ///< data access fault
  Undefined,    ///< undefined/denied instruction
  PacFail,      ///< FPAC-style immediate authentication failure
  Irq,          ///< asynchronous interrupt (pseudo-class for vectoring)
};

const char* exc_class_name(ExcClass c);

class Cpu {
 public:
  struct Config {
    bool has_pauth = true;  ///< ARMv8.3 core; false = pre-8.3 (hint ops NOP)
    bool fpac = false;      ///< fault immediately on AUT* failure (v8.6 ext.)
    /// Experimental ISA extension prototyping the paper's §8 proposal:
    /// a second, EL2-managed bank of PAuth keys that EL1 execution uses
    /// automatically. The kernel keys then never exist in EL1-accessible
    /// state — no XOM, no per-transition key switching, and MRS of the key
    /// registers only ever reveals the EL0 (user) keys.
    bool banked_keys = false;
    mem::VaLayout layout{};
    bool enable_cycle_model = true;
    /// Host-performance fast path (DESIGN.md §3c): predecoded instruction
    /// pages keyed by (phys page, write generation) plus the Mmu micro-TLB.
    /// Purely a host-side optimisation — simulated cycles, traces, and fault
    /// sequences are bit-for-bit identical with this on or off.
    bool fast_path = true;
    /// Superblock execution (DESIGN.md §3e): run() executes cached basic
    /// blocks of pre-resolved handler pointers instead of single-stepping.
    /// Like fast_path, a host-side optimisation only — simulated state, the
    /// retire stream and every observability feed are bit-for-bit identical
    /// with this on or off. Composes with fast_path (step() still uses the
    /// predecode cache whenever the engine falls back to single-stepping).
    bool superblocks = true;
    /// Trace tier on top of the superblock engine (DESIGN.md §3i): extend
    /// cached runs across strongly-biased branch edges behind execution-time
    /// guards, with per-page epoch validation and fused PAuth fast paths.
    /// Host-side only, same invariance contract as superblocks; meaningless
    /// (ignored) when superblocks is off.
    bool traces = true;
  };

  Cpu(mem::Mmu& mmu, Config cfg);
  ~Cpu();  // out-of-line: SuperblockEngine is incomplete here

  // ---- Registers --------------------------------------------------------
  uint64_t x(unsigned i) const;          ///< X0..X30; 31 reads as 0 (XZR)
  void set_x(unsigned i, uint64_t v);    ///< writes to 31 are discarded
  uint64_t sp() const;                   ///< current EL's stack pointer
  void set_sp(uint64_t v);
  uint64_t sp_el(mem::El el) const;
  void set_sp_el(mem::El el, uint64_t v);

  uint64_t pc = 0;
  Pstate pstate;

  /// Host-side system register access (never trapped or filtered).
  uint64_t sysreg(isa::SysReg r) const;
  void set_sysreg(isa::SysReg r, uint64_t v);

  /// The 128-bit PAuth key `k` as seen by execution at the current EL:
  /// with banked_keys, EL1 uses the EL2-managed kernel bank, EL0 the
  /// ordinary key registers; otherwise always the key registers.
  qarma::Key128 pac_key(PacKey k) const;

  /// EL2/host-only: install a key into the kernel bank (banked_keys mode).
  /// There is deliberately no guest instruction that reads or writes the
  /// bank — that is the point of the §8 extension.
  void set_kernel_bank_key(PacKey k, const qarma::Key128& key);
  /// Host-only read of the kernel bank (flight-recorder snapshots).
  const qarma::Key128& kernel_bank_key(PacKey k) const {
    return kernel_bank_[static_cast<size_t>(k)];
  }

  /// Provenance id of the key value execution at the current EL would use
  /// for `k` (see obs/audit.h). 0 = installed outside the audited path
  /// (host set_sysreg without an MSR, e.g. the raw test harness).
  uint64_t key_provenance(PacKey k) const {
    if (cfg_.banked_keys && pstate.el != mem::El::El0)
      return bank_prov_[static_cast<size_t>(k)];
    return key_prov_[static_cast<size_t>(k)];
  }
  /// Provenance id of the key-register (non-bank) value for `k`.
  uint64_t sysreg_key_provenance(PacKey k) const {
    return key_prov_[static_cast<size_t>(k)];
  }
  /// Provenance id of the kernel-bank value for `k`.
  uint64_t bank_key_provenance(PacKey k) const {
    return bank_prov_[static_cast<size_t>(k)];
  }

  const PauthUnit& pauth() const { return pauth_; }
  mem::Mmu& mmu() { return *mmu_; }
  const Config& config() const { return cfg_; }

  // ---- Execution --------------------------------------------------------
  /// Execute one instruction (or take a pending interrupt). Returns false
  /// once the CPU has halted.
  bool step();
  /// Run until halted or the step budget is exhausted (an interrupt delivery
  /// consumes one budget unit like an instruction, exactly as repeated
  /// step() calls would). Returns the number of instructions *retired*
  /// during this call — the delta of retired() — which interrupt deliveries
  /// do not contribute to.
  uint64_t run(uint64_t max_steps);

  bool halted() const { return halted_; }
  uint64_t halt_code() const { return halt_code_; }
  void clear_halt() { halted_ = false; }

  uint64_t cycles() const { return cycles_; }
  /// Total instructions retired since construction. The single source of
  /// truth for instruction counts: throughput gauges, fleet telemetry and
  /// bench results all divide this, never a recomputation.
  uint64_t retired() const { return instret_; }

  /// Retired-instruction histogram by opcode (always maintained; drives the
  /// instruction-mix analysis of §6.1.3's "high rate of function calls").
  uint64_t op_count(isa::Op op) const {
    return op_counts_[static_cast<size_t>(op)];
  }
  /// Total retired instructions for which `pred` holds.
  template <typename Pred>
  uint64_t count_ops_if(Pred pred) const {
    uint64_t n = 0;
    for (size_t i = 0; i < op_counts_.size(); ++i)
      if (pred(static_cast<isa::Op>(i))) n += op_counts_[i];
    return n;
  }
  void reset_op_counts() { op_counts_.fill(0); }

  // ---- Interrupts -------------------------------------------------------
  /// IRQ source bits latched into ISR_EL1 (guest reads the latch, MSR is
  /// write-1-to-clear). A bare raise_irq() latches no source — legacy
  /// callers that never look at ISR_EL1 keep their exact behaviour.
  static constexpr uint64_t kIrqSrcTimer = uint64_t{1} << 0;
  static constexpr uint64_t kIrqSrcIpi = uint64_t{1} << 1;

  /// Arm the countdown timer: an IRQ is delivered after `cycles` more cycles
  /// (0 disables).
  void set_timer(uint64_t cycles);
  /// Periodic timer: re-arms itself every `cycles` (0 disables). Drives
  /// preemptive scheduling.
  void set_timer_period(uint64_t cycles);
  void raise_irq() { irq_pending_ = true; }
  /// Raise an IRQ and latch its source into ISR_EL1 (IPI doorbell path).
  void raise_irq(uint64_t source) {
    irq_pending_ = true;
    irq_sources_ |= source;
  }

  // ---- SMP identity -----------------------------------------------------
  /// Core id within the owning machine; reads back through MPIDR_EL1.
  /// Single-core machines leave this 0.
  unsigned cpu_id() const { return cpu_id_; }
  void set_cpu_id(unsigned id) { cpu_id_ = id; }

  // ---- Host hooks -------------------------------------------------------
  using Hook = std::function<void(Cpu&)>;
  void add_breakpoint(uint64_t va, Hook hook);
  void clear_breakpoints() {
    breakpoints_.clear();
    bp_min_pc_ = ~uint64_t{0};
    bp_max_pc_ = 0;
  }

  using HvcHandler = std::function<void(Cpu&, uint16_t imm)>;
  void set_hvc_handler(HvcHandler h) { hvc_ = std::move(h); }

  /// Approves or denies EL1 MSR writes; return false to deny (the write
  /// becomes an Undefined exception). Installed by the hypervisor.
  using MsrFilter = std::function<bool(Cpu&, isa::SysReg, uint64_t)>;
  void set_msr_filter(MsrFilter f) { msr_filter_ = std::move(f); }

  using PacFailureObserver =
      std::function<void(Cpu&, isa::Op op, uint64_t ptr)>;
  void set_pac_failure_observer(PacFailureObserver o) {
    pac_observer_ = std::move(o);
  }

  /// Per-instruction trace callback (disassembly-level debugging).
  using TraceFn = std::function<void(const Cpu&, uint64_t pc, const isa::Inst&)>;
  void set_trace(TraceFn t) { trace_ = std::move(t); }

  // ---- Observability (camo::obs) ----------------------------------------
  /// Structured trace events (exception entry/exit, PAC sign/auth, key
  /// writes). Null (the default) disables emission entirely; attaching a
  /// sink never changes simulated cycle counts.
  void set_trace_sink(obs::TraceSink* s) { sink_ = s; }
  obs::TraceSink* trace_sink() const { return sink_; }
  /// Per-step cycle attribution feed (EL residency, per-symbol profiling).
  /// Summing the reported cycles reproduces cycles() exactly.
  void set_cycle_attributor(obs::CycleAttributor* a) { attr_ = a; }
  /// Control-flow feed for shadow-call-stack maintenance: linking calls,
  /// returns, exception entry/exit. Null (the default) disables emission;
  /// attaching a sink never changes simulated cycle counts.
  void set_cf_sink(obs::CfSink* s) { cf_ = s; }
  obs::CfSink* cf_sink() const { return cf_; }
  /// Security audit stream (obs/audit.h): key installs with provenance,
  /// sign/auth outcomes, EL transitions. Null (the default) disables
  /// emission; attaching a sink never changes simulated cycle counts.
  void set_audit_sink(obs::AuditSink* s) { audit_ = s; }
  obs::AuditSink* audit_sink() const { return audit_; }
  /// Execution coverage feed (obs/coverage.h): fed (pa, va, el) per retired
  /// instruction from both the single-step path and the superblock engine,
  /// so the map is engine-invariant. Null (the default) disables emission;
  /// attaching a map never changes simulated cycle counts.
  void set_coverage(obs::CoverageMap* c) { cov_ = c; }
  obs::CoverageMap* coverage() const { return cov_; }

  // ---- Snapshot/fork (DESIGN.md §3j) -------------------------------------
  /// Complete architectural + accounting state of one core, as needed to
  /// resume execution bit-identically on another Cpu object. Host-side
  /// caches (predecode icache, superblock/trace caches) and host wiring
  /// (hooks, sinks, breakpoints, cpu_id) are deliberately excluded: caches
  /// rebuild on demand with identical simulated semantics, and wiring is
  /// owned by the destination machine.
  struct CoreState {
    uint64_t pc = 0;
    Pstate pstate;
    std::array<uint64_t, 31> gpr{};
    uint64_t sp_el0 = 0, sp_el1 = 0;
    std::array<uint64_t, static_cast<size_t>(isa::SysReg::kCount)> sys{};
    std::array<qarma::Key128, 5> kernel_bank{};
    bool halted = false;
    uint64_t halt_code = 0;
    uint64_t cycles = 0;
    uint64_t instret = 0;
    std::array<uint64_t, static_cast<size_t>(isa::Op::kCount)> op_counts{};
    bool irq_pending = false;
    uint64_t irq_sources = 0;
    uint64_t timer_cycles = 0;  ///< absolute deadline, same clock as cycles
    uint64_t timer_period = 0;
    uint64_t prov_counter = 0;
    std::array<uint64_t, 5> key_prov{};
    std::array<uint64_t, 5> bank_prov{};
  };
  CoreState core_state() const;
  void restore_core_state(const CoreState& s);

  /// Coarse class of an opcode for per-class retired-op metrics.
  static obs::OpClass op_class(isa::Op op);

  /// Predecoded-instruction-cache statistics (host-side; informational).
  struct FastPathStats {
    uint64_t icache_hits = 0;      ///< fetches served from a current decode
    uint64_t icache_misses = 0;    ///< first decode of a (page, generation)
    uint64_t icache_redecodes = 0; ///< misses caused by a stale generation
  };
  const FastPathStats& fast_path_stats() const { return fp_stats_; }
  /// Superblock-cache statistics (zero when Config::superblocks is off).
  const SuperblockStats& superblock_stats() const;

  /// Pre-resolved execute handler: the function execute() dispatches
  /// `inst.op` to. The superblock translator resolves these once per block
  /// so the dispatch loop is a straight indirect call — there is exactly one
  /// implementation of every instruction either way.
  using ExecFn = void (*)(Cpu&, const isa::Inst&);
  static ExecFn exec_handler(isa::Op op);

  // ---- Our simplified ESR encoding --------------------------------------
  static uint64_t esr_pack(ExcClass cls, uint16_t iss, mem::FaultKind fk);
  static ExcClass esr_class(uint64_t esr);
  static uint16_t esr_iss(uint64_t esr);
  static mem::FaultKind esr_fault(uint64_t esr);

  /// Cycle cost of one instruction under the PA-analogue model.
  static unsigned cycle_cost(const isa::Inst& inst);

  // Vector table offsets from VBAR_EL1.
  static constexpr uint64_t kVecSyncEl1 = 0x000;
  static constexpr uint64_t kVecIrqEl1 = 0x080;
  static constexpr uint64_t kVecSyncEl0 = 0x100;
  static constexpr uint64_t kVecIrqEl0 = 0x180;

 private:
  friend struct ExecHandlers;     // per-opcode handlers (cpu.cpp)
  friend class SuperblockEngine;  // block dispatch loop (superblock.cpp)

  bool step_impl();
  /// Fast-path fetch: decoded instruction at physical address `pa`,
  /// re-decoding the whole page if its write generation moved. Must only be
  /// called with a `pa` from a successful Access::Fetch translation. Inline
  /// MRU hit path: straight-line code fetches from one page for hundreds of
  /// instructions, so the common case is a generation compare and an index.
  const isa::Inst& fetch_decoded(uint64_t pa) {
    const uint64_t page = pa >> mem::PhysicalMemory::kPageShift;
    const uint64_t idx = (pa & mask(mem::PhysicalMemory::kPageShift)) >> 2;
    // idx < size() subsumes the empty-page and past-end-of-phys checks: the
    // decode clamps to physical memory, so any in-vector index is valid.
    if (page == mru_page_ &&
        mru_dp_->gen == mmu_->phys().page_generation(page) &&
        idx < mru_dp_->insts.size()) {
      ++fp_stats_.icache_hits;
      return mru_dp_->insts[idx];
    }
    return fetch_decoded_slow(pa);
  }
  const isa::Inst& fetch_decoded_slow(uint64_t pa);
  void execute(const isa::Inst& inst);
  void take_exception(ExcClass cls, uint64_t far, uint16_t iss,
                      mem::FaultKind fk, uint64_t preferred_return);
  void do_eret();

  uint64_t read_gpr_or_sp(unsigned i) const;
  void write_gpr_or_sp(unsigned i, uint64_t v);

  /// Data memory access helpers that take the DataAbort on fault. Return
  /// false when a fault was taken (caller must stop the instruction).
  bool mem_read64(uint64_t va, uint64_t& out);
  bool mem_write64(uint64_t va, uint64_t v);
  bool mem_read8(uint64_t va, uint64_t& out);
  bool mem_write8(uint64_t va, uint8_t v);

  /// PAuth helpers reading keys/SCTLR from the live system registers.
  bool pauth_enabled(PacKey k) const;
  uint64_t do_pac(uint64_t ptr, uint64_t modifier, PacKey k);
  uint64_t do_aut(uint64_t ptr, uint64_t modifier, PacKey k, isa::Op op,
                  bool& fault_taken);

  mem::Mmu* mmu_;
  Config cfg_;
  PauthUnit pauth_;

  std::array<uint64_t, 31> gpr_{};
  uint64_t sp_el0_ = 0, sp_el1_ = 0;
  std::array<uint64_t, static_cast<size_t>(isa::SysReg::kCount)> sys_{};
  std::array<qarma::Key128, 5> kernel_bank_{};  // banked_keys mode only

  bool halted_ = false;
  uint64_t halt_code_ = 0;
  uint64_t cycles_ = 0;
  uint64_t instret_ = 0;
  std::array<uint64_t, static_cast<size_t>(isa::Op::kCount)> op_counts_{};

  /// One physical page of predecoded instructions, valid only while the
  /// page's write generation matches. Pages are re-decoded in place, never
  /// erased, so references handed out by fetch_decoded stay valid for the
  /// duration of the executing step.
  struct DecodedPage {
    uint64_t gen = 0;
    std::vector<isa::Inst> insts;
  };
  std::unordered_map<uint64_t, DecodedPage> icache_;  // key: phys page number
  // Most-recently-fetched page, bypassing the hash lookup for straight-line
  // code. Safe to cache: unordered_map nodes are pointer-stable and decoded
  // pages are refreshed in place, never erased.
  uint64_t mru_page_ = ~uint64_t{0};
  DecodedPage* mru_dp_ = nullptr;
  FastPathStats fp_stats_;
  std::unique_ptr<SuperblockEngine> sb_;  // used by run() when cfg_.superblocks

  bool irq_pending_ = false;
  uint64_t irq_sources_ = 0;   // ISR_EL1 latch: kIrqSrc* bits, W1C via MSR
  uint64_t timer_cycles_ = 0;  // 0 = disarmed; else absolute cycle deadline
  uint64_t timer_period_ = 0;  // 0 = one-shot; else re-arm interval
  unsigned cpu_id_ = 0;        // core index in the owning Machine

  std::unordered_map<uint64_t, std::vector<Hook>> breakpoints_;
  // [min, max] pc range of registered breakpoints: a one-compare guard that
  // keeps the per-step hash lookup off the hot path when pc cannot match.
  uint64_t bp_min_pc_ = ~uint64_t{0};
  uint64_t bp_max_pc_ = 0;
  HvcHandler hvc_;
  MsrFilter msr_filter_;
  PacFailureObserver pac_observer_;
  TraceFn trace_;

  obs::TraceSink* sink_ = nullptr;
  obs::CycleAttributor* attr_ = nullptr;
  obs::CfSink* cf_ = nullptr;
  obs::AuditSink* audit_ = nullptr;
  obs::CoverageMap* cov_ = nullptr;
  obs::OpClass step_op_class_ = obs::OpClass::Other;  // scratch, set per step

  // Key provenance (obs/audit.h): a monotonically increasing install id per
  // key slot, bumped on every guest MSR of a key half and on every kernel-
  // bank install. Pure bookkeeping — never consulted by execution.
  uint64_t prov_counter_ = 0;
  std::array<uint64_t, 5> key_prov_{};   // key registers, PacKey order
  std::array<uint64_t, 5> bank_prov_{};  // EL2 kernel bank, PacKey order
};

}  // namespace camo::cpu
