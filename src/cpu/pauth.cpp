#include "cpu/pauth.h"

#include "support/bits.h"

namespace camo::cpu {

const char* pac_key_name(PacKey k) {
  switch (k) {
    case PacKey::IA: return "IA";
    case PacKey::IB: return "IB";
    case PacKey::DA: return "DA";
    case PacKey::DB: return "DB";
    case PacKey::GA: return "GA";
  }
  return "<bad-key>";
}

uint64_t PauthUnit::cipher(uint64_t block, uint64_t modifier,
                           const qarma::Key128& key) const {
  if (!fast_path_) return qarma::compute_pac_cipher(block, modifier, key);
  const size_t idx = ((block ^ (modifier * 0x9E3779B97F4A7C15ull) ^
                       (key.k0 * 0xBF58476D1CE4E5B9ull) ^ key.w0) >>
                     4) &
                     (kPacEntries - 1);
  PacEntry& e = cache_[idx];
  if (e.valid && e.block == block && e.modifier == modifier && e.key == key) {
    ++pac_stats_.hits;
    return e.mac;
  }
  ++pac_stats_.misses;
  e = PacEntry{block, modifier, key,
               qarma::compute_pac_cipher(block, modifier, key), true};
  return e.mac;
}

uint64_t PauthUnit::pac_field(uint64_t ptr, uint64_t modifier,
                              const qarma::Key128& key) const {
  // The MAC input is the pointer in canonical form, so signing is a pure
  // function of (address, modifier, key) regardless of what was previously
  // in the extension bits.
  const uint64_t input = layout_.canonical(ptr);
  const uint64_t mac = cipher(input, modifier, key);
  // Place the low MAC bits into the PAC positions. pac_mask is at most two
  // contiguous runs — [54 : va_bits] always, [63:56] when TBI is off — so
  // the generic bit-scatter reduces to two shifts.
  const unsigned w1 = 55 - layout_.va_bits;
  uint64_t out = (mac & mask(w1)) << layout_.va_bits;
  if (!layout_.tbi(ptr)) out |= ((mac >> w1) & mask(8)) << 56;
  return out;
}

uint64_t PauthUnit::add_pac(uint64_t ptr, uint64_t modifier,
                            const qarma::Key128& key) const {
  const uint64_t m = layout_.pac_mask(ptr);
  return (layout_.canonical(ptr) & ~m) | pac_field(ptr, modifier, key);
}

PauthUnit::AuthResult PauthUnit::auth(uint64_t ptr, uint64_t modifier,
                                      const qarma::Key128& key,
                                      PacKey key_id) const {
  const uint64_t m = layout_.pac_mask(ptr);
  const uint64_t expected = pac_field(ptr, modifier, key);
  if ((ptr & m) == expected) return {layout_.canonical(ptr), true};

  // Poison: XOR an error code into the two highest PAC-field bits. The
  // extension was all-ones (kernel) or all-zeroes (user); a nonzero XOR in
  // those positions guarantees the result is non-canonical and the code
  // identifies which key family failed (diagnostics, mirrors AArch64).
  const uint64_t code = is_b_key(key_id) ? 0b10 : 0b01;
  const unsigned top = layout_.tbi(ptr) ? 54 : 62;
  const uint64_t poison = code << (top - 1);
  return {layout_.canonical(ptr) ^ poison, false};
}

uint64_t PauthUnit::pacga(uint64_t value, uint64_t modifier,
                          const qarma::Key128& key) const {
  const uint64_t mac = cipher(value, modifier, key);
  return mac & 0xFFFFFFFF00000000ULL;
}

}  // namespace camo::cpu
