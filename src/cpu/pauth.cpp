#include "cpu/pauth.h"

#include "support/bits.h"

namespace camo::cpu {

const char* pac_key_name(PacKey k) {
  switch (k) {
    case PacKey::IA: return "IA";
    case PacKey::IB: return "IB";
    case PacKey::DA: return "DA";
    case PacKey::DB: return "DB";
    case PacKey::GA: return "GA";
  }
  return "<bad-key>";
}

namespace {

/// Scatter the low bits of `pac` into the set positions of `maskbits`.
uint64_t scatter(uint64_t pac, uint64_t maskbits) {
  uint64_t out = 0;
  unsigned src = 0;
  for (unsigned pos = 0; pos < 64; ++pos) {
    if (maskbits & (uint64_t{1} << pos)) {
      out |= ((pac >> src) & 1) << pos;
      ++src;
    }
  }
  return out;
}

}  // namespace

uint64_t PauthUnit::pac_field(uint64_t ptr, uint64_t modifier,
                              const qarma::Key128& key) const {
  // The MAC input is the pointer in canonical form, so signing is a pure
  // function of (address, modifier, key) regardless of what was previously
  // in the extension bits.
  const uint64_t input = layout_.canonical(ptr);
  const uint64_t mac = qarma::compute_pac_cipher(input, modifier, key);
  return scatter(mac, layout_.pac_mask(ptr));
}

uint64_t PauthUnit::add_pac(uint64_t ptr, uint64_t modifier,
                            const qarma::Key128& key) const {
  const uint64_t m = layout_.pac_mask(ptr);
  return (layout_.canonical(ptr) & ~m) | pac_field(ptr, modifier, key);
}

PauthUnit::AuthResult PauthUnit::auth(uint64_t ptr, uint64_t modifier,
                                      const qarma::Key128& key,
                                      PacKey key_id) const {
  const uint64_t m = layout_.pac_mask(ptr);
  const uint64_t expected = pac_field(ptr, modifier, key);
  if ((ptr & m) == expected) return {layout_.canonical(ptr), true};

  // Poison: XOR an error code into the two highest PAC-field bits. The
  // extension was all-ones (kernel) or all-zeroes (user); a nonzero XOR in
  // those positions guarantees the result is non-canonical and the code
  // identifies which key family failed (diagnostics, mirrors AArch64).
  const uint64_t code = is_b_key(key_id) ? 0b10 : 0b01;
  const unsigned top = layout_.tbi(ptr) ? 54 : 62;
  const uint64_t poison = code << (top - 1);
  return {layout_.canonical(ptr) ^ poison, false};
}

uint64_t PauthUnit::pacga(uint64_t value, uint64_t modifier,
                          const qarma::Key128& key) const {
  const uint64_t mac = qarma::compute_pac_cipher(value, modifier, key);
  return mac & 0xFFFFFFFF00000000ULL;
}

}  // namespace camo::cpu
