// PAuth unit: PAC computation, insertion, authentication and stripping,
// following the ARMv8.3 AddPAC/Auth/Strip pseudocode shapes against the
// configured VA layout (paper Appendix B).
//
// The PAC is the QARMA-64 MAC of the canonicalized pointer under the 128-bit
// key with the modifier as tweak, truncated into the pointer's non-address
// bits (15 bits for kernel pointers, 7 for user pointers in the default
// layout). A failed authentication does not fault by itself: it poisons the
// extension bits so any later dereference takes an address-size fault — the
// CPU can optionally be configured with FPAC semantics (ARMv8.6) to fault
// immediately instead.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/valayout.h"
#include "qarma/qarma64.h"

namespace camo::cpu {

/// The five PAuth keys (Appendix B.1).
enum class PacKey : uint8_t { IA, IB, DA, DB, GA };

const char* pac_key_name(PacKey k);

/// True for the instruction keys (IA/IB), false for data keys.
constexpr bool is_instruction_key(PacKey k) {
  return k == PacKey::IA || k == PacKey::IB;
}
/// True for the B-flavour keys (IB/DB).
constexpr bool is_b_key(PacKey k) { return k == PacKey::IB || k == PacKey::DB; }

/// Fused PAuth site memo (DESIGN.md §3i): one per PAuth terminator embedded
/// in a superblock trace. QARMA is a pure function of (pointer, modifier,
/// key), and add_pac/auth are pure on top of it, so the *final* result of a
/// hot PACxx/AUTxx site can be replayed from this record whenever all three
/// inputs compare equal — folding the modifier read and the whole memoized
/// QARMA lookup into four compares and a register write. Tagged with the
/// full 128-bit key so any key-register change (context switch, key
/// rotation) misses naturally, with no epoch bookkeeping. Only successful
/// operations are memoized: failures and disabled keys always take the
/// generic handler, which owns the observer/FPAC/poison semantics.
struct PacFuseMemo {
  uint64_t ptr = 0;       ///< input pointer value at the site
  uint64_t modifier = 0;  ///< input modifier value at the site
  qarma::Key128 key;      ///< full key material the result was computed under
  uint64_t result = 0;    ///< signed (PAC*) or authenticated (AUT*) pointer
  bool valid = false;

  bool hit(uint64_t p, uint64_t m, const qarma::Key128& k) const {
    return valid && ptr == p && modifier == m && key == k;
  }
};

class PauthUnit {
 public:
  explicit PauthUnit(mem::VaLayout layout) : layout_(layout) {}

  const mem::VaLayout& layout() const { return layout_; }

  /// Raw PAC bits for (ptr, modifier) — already truncated & positioned into
  /// the pac_mask of ptr.
  uint64_t pac_field(uint64_t ptr, uint64_t modifier,
                     const qarma::Key128& key) const;

  /// Sign: replace the pointer's extension bits with the PAC (keeping bit 55
  /// and, under TBI, the tag byte).
  uint64_t add_pac(uint64_t ptr, uint64_t modifier,
                   const qarma::Key128& key) const;

  struct AuthResult {
    uint64_t ptr = 0;  ///< canonical pointer on success, poisoned on failure
    bool ok = false;
  };

  /// Authenticate: on success returns the canonical pointer; on failure
  /// returns the pointer with an error code in the extension bits (making it
  /// non-canonical, so dereferencing faults). `key_id` picks the error code
  /// (A-flavour vs B-flavour), mirroring the architectural poison values.
  AuthResult auth(uint64_t ptr, uint64_t modifier, const qarma::Key128& key,
                  PacKey key_id) const;

  /// Strip (XPAC): canonicalize without authentication.
  uint64_t strip(uint64_t ptr) const { return layout_.canonical(ptr); }

  /// PACGA: generic 32-bit MAC of `value` under `modifier`, in the top half.
  uint64_t pacga(uint64_t value, uint64_t modifier,
                 const qarma::Key128& key) const;

  // ---- PAC memo cache (DESIGN.md §3c) -------------------------------------
  // QARMA is a pure function of (block, modifier, key), so its results can be
  // memoized exactly: entries are tagged with the full key material, making a
  // key change a natural miss with no epoch bookkeeping. Host-side only —
  // signing and authentication results are bit-for-bit unchanged.

  /// Enable/disable the memo cache (the CPU propagates its fast-path toggle
  /// here; standalone PauthUnit users default to the uncached cipher).
  void set_fast_path(bool on) {
    fast_path_ = on;
    cache_.clear();
    if (on) cache_.resize(kPacEntries);
  }
  bool fast_path() const { return fast_path_; }

  struct PacCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  const PacCacheStats& pac_cache_stats() const { return pac_stats_; }

 private:
  uint64_t cipher(uint64_t block, uint64_t modifier,
                  const qarma::Key128& key) const;

  struct PacEntry {
    uint64_t block = 0;
    uint64_t modifier = 0;
    qarma::Key128 key;
    uint64_t mac = 0;
    bool valid = false;
  };
  static constexpr size_t kPacEntries = 4096;  // direct-mapped

  mem::VaLayout layout_;
  mutable std::vector<PacEntry> cache_;  ///< empty unless fast_path_
  mutable PacCacheStats pac_stats_;
  bool fast_path_ = false;
};

}  // namespace camo::cpu
