#include "cpu/superblock.h"

#include <algorithm>

#include "support/bits.h"

namespace camo::cpu {

using isa::Inst;
using mem::FaultKind;

bool SuperblockEngine::valid(const Cpu& cpu, const Block& b,
                             uint64_t va) const {
  return b.built && b.va_start == va && b.el == cpu.pstate.el &&
         b.epoch == cpu.mmu_->fetch_epoch(va) &&
         b.phys_gen == cpu.mmu_->phys().page_generation(
                           b.pa_start >> mem::PhysicalMemory::kPageShift);
}

SuperblockEngine::Block* SuperblockEngine::acquire(Cpu& cpu) {
  const uint64_t va = cpu.pc;
  // Unaligned and faulting fetches take their exception on the single-step
  // path so the fault sequence is byte-identical to the engine-off run.
  if (!is_aligned(va, 4)) return nullptr;
  const auto xlat =
      cpu.mmu_->translate(va, mem::Access::Fetch, cpu.pstate.el);
  if (xlat.fault != FaultKind::None) return nullptr;

  Block& b = cache_[xlat.pa];
  if (valid(cpu, b, va)) {
    ++stats_.hits;
    return &b;
  }
  if (b.built) ++stats_.invalidations;
  build(cpu, b, va, xlat.pa);
  // An empty block means the fetch would run off the end of physical
  // memory; let the interpreter raise the host error it always raised.
  return b.entries.empty() ? nullptr : &b;
}

void SuperblockEngine::build(Cpu& cpu, Block& b, uint64_t va, uint64_t pa) {
  const mem::PhysicalMemory& phys = cpu.mmu_->phys();
  b.built = true;
  b.va_start = va;
  b.pa_start = pa;
  b.el = cpu.pstate.el;
  b.epoch = cpu.mmu_->fetch_epoch(va);
  b.phys_gen =
      phys.page_generation(pa >> mem::PhysicalMemory::kPageShift);
  b.chain = nullptr;
  b.chain_va = 0;
  b.entries.clear();

  // Decode up to the page boundary (stage-1 mappings are page-granular, so
  // the VA and PA boundaries coincide), clamped to the end of physical
  // memory, stopping after the first terminator — which is *included*, so a
  // block is never empty even when it starts on a branch or PAuth op.
  const uint64_t page_words =
      ((uint64_t{1} << mem::PhysicalMemory::kPageShift) -
       (va & mask(mem::PhysicalMemory::kPageShift))) /
      4;
  const uint64_t phys_words = pa < phys.size() ? (phys.size() - pa) / 4 : 0;
  const uint64_t max_words = std::min(page_words, phys_words);
  b.entries.reserve(std::min<uint64_t>(max_words, 64));
  for (uint64_t w = 0; w < max_words; ++w) {
    Entry e;
    e.inst = isa::decode(phys.read32(pa + w * 4));
    e.fn = Cpu::exec_handler(e.inst.op);
    e.cost = static_cast<uint8_t>(Cpu::cycle_cost(e.inst));
    e.op_class = static_cast<uint8_t>(Cpu::op_class(e.inst.op));
    const isa::OpTraits t = isa::op_traits(e.inst.op);
    e.is_store = t.is_store;
    b.entries.push_back(e);
    if (t.ends_block) break;
  }
  ++stats_.blocks;
}

uint64_t SuperblockEngine::execute(Cpu& cpu, uint64_t budget) {
  uint64_t consumed = 0;
  Block* prev = nullptr;  // completed predecessor, for the chain memo
  while (consumed < budget && !cpu.halted_) {
    Block* blk;
    if (prev != nullptr && prev->chain != nullptr &&
        prev->chain_va == cpu.pc && valid(cpu, *prev->chain, cpu.pc)) {
      blk = prev->chain;  // memoized edge: no lookup, no translate
      ++stats_.chain_hits;
    } else {
      blk = acquire(cpu);
      if (blk == nullptr) break;  // caller single-steps (fault/unaligned)
      if (prev != nullptr) {
        prev->chain = blk;
        prev->chain_va = blk->va_start;
      }
    }
    prev = nullptr;

    // When no breakpoint can possibly fall inside this block, the per-entry
    // check collapses to nothing. [bp_min_pc_, bp_max_pc_] is empty
    // (min > max) when no breakpoints exist.
    const size_t n = blk->entries.size();
    const uint64_t va_last = blk->va_start + 4 * (n - 1);
    const bool bp_overlap =
        cpu.bp_min_pc_ <= va_last && cpu.bp_max_pc_ >= blk->va_start;

    // Dispatch run length (instructions retired inside this block entry)
    // for the §3f histogram; zero-length dispatches (bail before the first
    // instruction) are not samples.
    const uint64_t d0 = consumed;
    bool completed = true;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t va = blk->va_start + 4 * i;
      // Mirror of Cpu::step_impl's preamble, in the same order. Timer and
      // IRQ state are re-checked before *every* instruction because the
      // deadline can pass mid-block.
      if (cpu.timer_cycles_ != 0 && cpu.cycles_ >= cpu.timer_cycles_) {
        cpu.timer_cycles_ = cpu.timer_period_ == 0
                                ? 0
                                : cpu.cycles_ + cpu.timer_period_;
        cpu.irq_pending_ = true;
        cpu.irq_sources_ |= Cpu::kIrqSrcTimer;
      }
      if (cpu.irq_pending_ && !cpu.pstate.irq_masked) {
        if (consumed > d0) stats_.run_length.record(consumed - d0);
        return consumed;  // step_impl owns interrupt delivery
      }
      if (bp_overlap && cpu.breakpoints_.find(va) != cpu.breakpoints_.end()) {
        if (consumed > d0) stats_.run_length.record(consumed - d0);
        return consumed;  // step_impl owns hooks (they may mutate anything)
      }

      // Copy the entry: the final instruction of a block can run host code
      // (an HVC handler) that could conceivably re-enter the engine and
      // rebuild this very block in place.
      const Entry e = blk->entries[i];
      if (cpu.trace_) cpu.trace_(cpu, va, e.inst);  // pc still == va here
      uint64_t c0 = 0;
      uint8_t el0 = 0;
      if (cpu.attr_ != nullptr || cpu.cov_ != nullptr) {
        c0 = cpu.cycles_;
        el0 = static_cast<uint8_t>(cpu.pstate.el);
      }
      cpu.pc = va + 4;
      e.fn(cpu, e.inst);
      cpu.cycles_ += cpu.cfg_.enable_cycle_model ? e.cost : 1;
      ++cpu.instret_;
      ++cpu.op_counts_[static_cast<size_t>(e.inst.op)];
      if (cpu.attr_ != nullptr && cpu.cycles_ != c0)
        cpu.attr_->retire(va, el0, e.op_class, cpu.cycles_ - c0);
      if (cpu.cov_ != nullptr)
        cpu.cov_->retire(blk->pa_start + (va - blk->va_start), va, el0);
      ++consumed;

      if (consumed == budget) {
        stats_.run_length.record(consumed - d0);
        return consumed;  // exact, never overshoots
      }
      if (i + 1 < n) {
        // Straight-line entries only leave the block early by faulting
        // (DataAbort redirects pc to the vector); follow the redirect by
        // re-acquiring at the new pc.
        if (cpu.halted_ || cpu.pc != va + 4) {
          completed = false;
          break;
        }
        // A store may have rewritten this very block further down: the
        // page's write generation is the same signal the predecode cache
        // keys on, so the next acquire() re-translates the fresh bytes.
        if (e.is_store &&
            blk->phys_gen !=
                cpu.mmu_->phys().page_generation(
                    blk->pa_start >> mem::PhysicalMemory::kPageShift)) {
          completed = false;
          break;
        }
      }
    }
    if (consumed > d0) stats_.run_length.record(consumed - d0);
    if (completed) {
      if (cpu.halted_) break;
      prev = blk;  // next acquisition memoizes the edge taken from here
    }
  }
  return consumed;
}

}  // namespace camo::cpu
