#include "cpu/superblock.h"

#include <algorithm>

#include "support/bits.h"

namespace camo::cpu {

using isa::Inst;
using mem::FaultKind;

namespace {

/// A trace may extend past a block whose last entry either transfers control
/// with guardable semantics (isa::op_traits.guardable) or simply falls
/// through at the page boundary — the boundary guard is the same pc compare
/// the block loop already performs on straight-line entries.
///
/// MRS and MSR also qualify, although they are hard block terminators: both
/// transfer control only by faulting (EL or lock violations), which the
/// boundary pc/EL guard catches, and neither can invalidate a quiet-loop
/// precondition — they cannot arm the timer, install a breakpoint or attach
/// a feed, and the one MSR destination that flips the IRQ mask (DAIF) is
/// excluded here. An MSR write that moves a mapping (a mid-trace event no
/// other extendable op can cause) is covered by the env flag: its boundary
/// revalidates every page record. DAIFSET/DAIFCLR, barriers, SVC/HVC/ERET
/// and SWP stay trace-final.
bool edge_extendable(const Inst& term) {
  const isa::OpTraits t = isa::op_traits(term.op);
  if (t.guardable || !t.ends_block) return true;
  if (term.op == isa::Op::MRS) return true;
  return term.op == isa::Op::MSR && term.sysreg != isa::SysReg::DAIF;
}

}  // namespace

bool SuperblockEngine::valid(const Cpu& cpu, const Block& b,
                             uint64_t va) const {
  return b.built && b.va_start == va && b.el == cpu.pstate.el &&
         b.epoch == cpu.mmu_->fetch_epoch(va) &&
         b.phys_gen == cpu.mmu_->phys().page_generation(
                           b.pa_start >> mem::PhysicalMemory::kPageShift);
}

SuperblockEngine::Block* SuperblockEngine::acquire(Cpu& cpu) {
  const uint64_t va = cpu.pc;
  // Unaligned and faulting fetches take their exception on the single-step
  // path so the fault sequence is byte-identical to the engine-off run.
  if (!is_aligned(va, 4)) return nullptr;
  const auto xlat =
      cpu.mmu_->translate(va, mem::Access::Fetch, cpu.pstate.el);
  if (xlat.fault != FaultKind::None) return nullptr;

  Block& b = cache_[xlat.pa];
  if (valid(cpu, b, va)) {
    ++stats_.hits;
    return &b;
  }
  if (b.built) ++stats_.invalidations;
  build(cpu, b, va, xlat.pa);
  // An empty block means the fetch would run off the end of physical
  // memory; let the interpreter raise the host error it always raised.
  return b.entries.empty() ? nullptr : &b;
}

SuperblockEngine::Block* SuperblockEngine::lookup_build(Cpu& cpu,
                                                        uint64_t va) {
  if (!is_aligned(va, 4)) return nullptr;
  const auto xlat =
      cpu.mmu_->translate(va, mem::Access::Fetch, cpu.pstate.el);
  if (xlat.fault != FaultKind::None) return nullptr;
  Block& b = cache_[xlat.pa];
  if (!valid(cpu, b, va)) build(cpu, b, va, xlat.pa);
  return b.entries.empty() ? nullptr : &b;
}

void SuperblockEngine::build(Cpu& cpu, Block& b, uint64_t va, uint64_t pa) {
  const mem::PhysicalMemory& phys = cpu.mmu_->phys();
  ++builds_;  // any build can retarget a trace segment; see Trace::build_stamp
  b.built = true;
  b.va_start = va;
  b.pa_start = pa;
  b.el = cpu.pstate.el;
  b.epoch = cpu.mmu_->fetch_epoch(va);
  b.phys_gen =
      phys.page_generation(pa >> mem::PhysicalMemory::kPageShift);
  b.chain = nullptr;
  b.chain_va = 0;
  // New bytes, cold profile. The trace pointer (if this block heads one) is
  // deliberately kept: the dispatcher revalidates and drops stale traces, so
  // a rebuild shows up as one trace invalidation rather than a silent leak.
  b.prof.reset();
  b.trace_regrows = 0;
  b.entries.clear();

  // Decode up to the page boundary (stage-1 mappings are page-granular, so
  // the VA and PA boundaries coincide), clamped to the end of physical
  // memory, stopping after the first terminator — which is *included*, so a
  // block is never empty even when it starts on a branch or PAuth op.
  const uint64_t page_words =
      ((uint64_t{1} << mem::PhysicalMemory::kPageShift) -
       (va & mask(mem::PhysicalMemory::kPageShift))) /
      4;
  const uint64_t phys_words = pa < phys.size() ? (phys.size() - pa) / 4 : 0;
  const uint64_t max_words = std::min(page_words, phys_words);
  b.entries.reserve(std::min<uint64_t>(max_words, 64));
  for (uint64_t w = 0; w < max_words; ++w) {
    Entry e;
    e.inst = isa::decode(phys.read32(pa + w * 4));
    e.fn = Cpu::exec_handler(e.inst.op);
    e.cost = static_cast<uint8_t>(Cpu::cycle_cost(e.inst));
    e.op_class = static_cast<uint8_t>(Cpu::op_class(e.inst.op));
    const isa::OpTraits t = isa::op_traits(e.inst.op);
    e.is_store = t.is_store;
    e.may_fault = t.may_fault;
    b.entries.push_back(e);
    if (t.ends_block) break;
  }
  ++stats_.blocks;
}

bool SuperblockEngine::trace_pages_current(const Cpu& cpu,
                                           const Trace& t) const {
  const mem::PhysicalMemory& phys = cpu.mmu_->phys();
  for (const Trace::PageRec& p : t.pages)
    if (phys.page_generation(p.page) != p.phys_gen) return false;
  return true;
}

bool SuperblockEngine::trace_pages_fresh(const Cpu& cpu,
                                         const Trace& t) const {
  const mem::PhysicalMemory& phys = cpu.mmu_->phys();
  for (const Trace::PageRec& p : t.pages) {
    if (phys.page_generation(p.page) != p.phys_gen) return false;
    if (!cpu.mmu_->fetch_epoch_current(p.probe_va, p.epoch)) return false;
  }
  return true;
}

bool SuperblockEngine::trace_valid(const Cpu& cpu, Trace& t) const {
  if (cpu.pstate.el != t.el) return false;
  const mem::PhysicalMemory& phys = cpu.mmu_->phys();
  for (const Trace::PageRec& p : t.pages) {
    if (phys.page_generation(p.page) != p.phys_gen) return false;
    if (!cpu.mmu_->fetch_epoch_current(p.probe_va, p.epoch)) return false;
  }
  // The page records prove every cached decode and fetch translation is
  // byte-identical to formation time; the per-segment checks close the
  // remaining hole of a constituent block having been rebuilt in place for
  // an aliased VA (same PA, unchanged generations) since then. A rebuild
  // cannot happen without a build() call, so while the engine-wide build
  // counter still reads what the last passing walk stamped, the walk is
  // skipped — the common case on every hot dispatch.
  if (t.build_stamp != builds_) {
    for (const Trace::Seg& s : t.segs) {
      const Block& b = *s.block;
      if (!b.built || b.va_start != s.va_start || b.el != t.el) return false;
    }
    t.build_stamp = builds_;
  }
  return true;
}

void SuperblockEngine::drop_trace(Trace& t) {
  if (t.head != nullptr && t.head->trace == &t) t.head->trace = nullptr;
  traces_.erase(t.head_pa);  // destroys t
}

void SuperblockEngine::try_form_trace(Cpu& cpu, Block& head) {
  // A faulting terminator (FPAC) may have redirected to the vector at a
  // different EL; successor blocks must be built at the EL the trace runs
  // at, so only form from a completion that stayed there.
  if (cpu.pstate.el != head.el) return;
  uint64_t target = 0;
  if (!head.prof.biased(target)) return;

  // Fusible PAuth terminator sites (§3i): the register-form sign/auth ops
  // and the HINT-space SP/1716 variants. PACGA and XPAC* gain nothing from
  // value memoization worth a descriptor, and the PAuth branches
  // (BRAA/RETAA/...) stay generic because they feed the control-flow
  // observers. Gated on has_pauth: pre-8.3 cores NOP the hint space.
  const bool pauth = cpu.cfg_.has_pauth;
  const auto set_fuse = [pauth](Trace::Seg& s, const Inst& in) {
    if (!pauth) return;
    using isa::Op;
    switch (in.op) {
      case Op::PACIA:
      case Op::PACIB:
      case Op::PACDA:
      case Op::PACDB:
        s.fuse = kFuseSign;
        s.fuse_key = static_cast<uint8_t>(static_cast<int>(in.op) -
                                          static_cast<int>(Op::PACIA));
        s.fuse_ptr = in.rd;
        s.fuse_mod = in.rn;
        break;
      case Op::AUTIA:
      case Op::AUTIB:
      case Op::AUTDA:
      case Op::AUTDB:
        s.fuse = kFuseAuth;
        s.fuse_key = static_cast<uint8_t>(static_cast<int>(in.op) -
                                          static_cast<int>(Op::AUTIA));
        s.fuse_ptr = in.rd;
        s.fuse_mod = in.rn;
        break;
      case Op::PACIASP:
      case Op::PACIBSP:
        s.fuse = kFuseSign;
        s.fuse_key = static_cast<uint8_t>(
            in.op == Op::PACIASP ? PacKey::IA : PacKey::IB);
        s.fuse_ptr = isa::kRegLr;
        s.fuse_mod = isa::kRegZrSp;  // read_gpr_or_sp(31) == SP
        break;
      case Op::AUTIASP:
      case Op::AUTIBSP:
        s.fuse = kFuseAuth;
        s.fuse_key = static_cast<uint8_t>(
            in.op == Op::AUTIASP ? PacKey::IA : PacKey::IB);
        s.fuse_ptr = isa::kRegLr;
        s.fuse_mod = isa::kRegZrSp;
        break;
      case Op::PACIA1716:
      case Op::PACIB1716:
        s.fuse = kFuseSign;
        s.fuse_key = static_cast<uint8_t>(
            in.op == Op::PACIA1716 ? PacKey::IA : PacKey::IB);
        s.fuse_ptr = isa::kRegIp1;
        s.fuse_mod = isa::kRegIp0;
        break;
      case Op::AUTIA1716:
      case Op::AUTIB1716:
        s.fuse = kFuseAuth;
        s.fuse_key = static_cast<uint8_t>(
            in.op == Op::AUTIA1716 ? PacKey::IA : PacKey::IB);
        s.fuse_ptr = isa::kRegIp1;
        s.fuse_mod = isa::kRegIp0;
        break;
      default:
        break;
    }
  };
  // Epochs are per-half (kernel vs user map), so a physical page reached
  // through both halves carries one record per half.
  const auto page_known = [](const Trace& t, uint64_t page, uint64_t va) {
    for (const Trace::PageRec& p : t.pages)
      if (p.page == page && mem::VaLayout::is_kernel_va(p.probe_va) ==
                                mem::VaLayout::is_kernel_va(va))
        return true;
    return false;
  };

  Trace t;
  t.el = head.el;
  Block* cur = &head;
  uint64_t cur_va = head.va_start;
  size_t head_repeats = 0;
  while (true) {
    const size_t n = cur->entries.size();
    Trace::Seg s;
    s.block = cur;
    s.va_start = cur_va;
    s.env = cur->entries.back().inst.op == isa::Op::MSR;
    set_fuse(s, cur->entries.back().inst);
    t.segs.push_back(s);
    t.entries_total += n;
    for (const Entry& e : cur->entries) t.cost_bound += e.cost;
    const uint64_t page = cur->pa_start >> mem::PhysicalMemory::kPageShift;
    if (!page_known(t, page, cur_va))
      t.pages.push_back({page, cpu.mmu_->phys().page_generation(page),
                         cpu.mmu_->fetch_epoch(cur_va), cur_va});
    t.va_min = std::min(t.va_min, cur_va);
    t.va_max = std::max(t.va_max, cur_va + 4 * (n - 1));

    if (t.segs.size() >= kMaxSegs) break;
    if (!edge_extendable(cur->entries.back().inst)) break;
    uint64_t next_va = 0;
    if (!cur->prof.biased(next_va)) break;
    Block* nb = lookup_build(cpu, next_va);
    if (nb == nullptr) break;  // faulting/unaligned edge: single-step owns it
    const uint64_t npage = nb->pa_start >> mem::PhysicalMemory::kPageShift;
    if (!page_known(t, npage, next_va) && t.pages.size() >= kMaxPages) break;
    // Loops unroll naturally (the same Block* repeats as a seg), bounded so
    // a short-trip loop does not freeze into a mostly-unreachable tail.
    if (nb == &head && ++head_repeats >= kMaxHeadRepeats) break;
    cur = nb;
    cur_va = next_va;
  }
  if (t.segs.size() < 2) return;  // nothing to chain across

  t.head = &head;
  t.head_pa = head.pa_start;
  t.build_stamp = builds_;  // every segment is valid as of right now
  Trace& slot = traces_[head.pa_start];
  slot = std::move(t);
  head.trace = &slot;
  ++stats_.traces_formed;
  stats_.trace_len.record(slot.entries_total);
}

SuperblockEngine::TraceExit SuperblockEngine::run_trace(Cpu& cpu, Trace& t,
                                                        uint64_t budget,
                                                        uint64_t& consumed,
                                                        Block*& prev) {
  ++stats_.trace_hits;
  ++t.uses;
  const uint64_t d0 = consumed;
  const bool cycle_model = cpu.cfg_.enable_cycle_model;
  const size_t nsegs = t.segs.size();

  // Fused PAuth entries replay results the sign/auth event sinks never saw
  // being computed, so they stay off while a sink or audit stream is
  // attached (the attribution/coverage feeds are unaffected: a fused entry
  // retires with the same cost, class and pc as the generic handler).
  const bool fuse_ok = cpu.sink_ == nullptr && cpu.audit_ == nullptr;

  // Quiet-loop eligibility (§3i), decided once per dispatch: nothing inside
  // the trace can need the per-entry preamble. Sound because every op that
  // could invalidate a conjunct mid-trace — arming the timer, unmasking
  // IRQs, raising an IPI or installing a breakpoint from an HVC host
  // handler — is either a hard terminator and therefore trace-final, or an
  // extendable MRS/MSR, which can do none of those things (MSR DAIF, the
  // one mask-flipping write, is never extended across; a mapping-moving
  // MSR is caught by its boundary's page-record revalidation, and a
  // faulting one by the pc/EL guard). The cost bound guarantees the armed
  // timer deadline cannot pass before the trace ends; and guest SMP is
  // cooperatively scheduled on one host thread, so no other core runs
  // between these checks and the last entry.
  const bool bp_overlap =
      cpu.bp_min_pc_ <= t.va_max && cpu.bp_max_pc_ >= t.va_min;
  const bool timer_quiet =
      cpu.timer_cycles_ == 0 ||
      (cpu.cycles_ < cpu.timer_cycles_ &&
       cpu.timer_cycles_ - cpu.cycles_ > t.cost_bound);
  const bool quiet = timer_quiet &&
                     !(cpu.irq_pending_ && !cpu.pstate.irq_masked) &&
                     !bp_overlap && cpu.trace_ == nullptr &&
                     cpu.attr_ == nullptr && cpu.cov_ == nullptr;

  const auto fuse_exec = [&cpu](Trace::Seg& seg) {
    const PacKey k = static_cast<PacKey>(seg.fuse_key);
    if (!cpu.pauth_enabled(k)) return false;  // generic handler no-ops
    const uint64_t ptr = cpu.x(seg.fuse_ptr);
    const uint64_t mod = cpu.read_gpr_or_sp(seg.fuse_mod);
    const qarma::Key128 key = cpu.pac_key(k);
    if (seg.memo.hit(ptr, mod, key)) {
      cpu.set_x(seg.fuse_ptr, seg.memo.result);
      return true;
    }
    if (seg.fuse == kFuseSign) {
      const uint64_t r = cpu.pauth_.add_pac(ptr, mod, key);
      cpu.set_x(seg.fuse_ptr, r);
      seg.memo = {ptr, mod, key, r, true};
      return true;
    }
    const PauthUnit::AuthResult r = cpu.pauth_.auth(ptr, mod, key, k);
    if (!r.ok) return false;  // failure path owns observer/FPAC/poison
    cpu.set_x(seg.fuse_ptr, r.ptr);
    seg.memo = {ptr, mod, key, r.ptr, true};
    return true;
  };
  // Run-length bookkeeping: one sample per dispatch (zero-length dispatches
  // are not samples, matching the block loop), plus the demotion
  // denominator. Must run before any drop_trace — that destroys `t`.
  const auto finish = [&](uint64_t run) {
    if (run > 0) stats_.run_length.record(run);
    t.entries_run += run;
  };
  // Demotion: a trace whose dispatches retire on average less than a
  // quarter of its entries is paying guard exits for no coverage — drop it
  // and let formation follow the freshly learned edges. Returns true when
  // `t` was destroyed.
  const auto demote = [&]() {
    if (t.uses < 16 || t.entries_run * 4 >= t.entries_total * t.uses)
      return false;
    ++stats_.trace_demotions;
    drop_trace(t);
    return true;
  };

  if (quiet) {
    // Retire bookkeeping lives in locals: the handlers' indirect calls
    // force `consumed` (a caller reference whose address has escaped) and
    // the cpu counters back to memory every entry, while `done`/`cyc`/`ret`
    // provably cannot alias anything a handler touches and stay in
    // registers. The batched cycles_/instret_ are flushed before every
    // terminator (MRS reads CNTVCT; MSR/HVC can arm the timer off cycles_)
    // and on every exit. Body entries are plain ALU/memory ops whose only
    // cycles_ observer is the DataAbort path's sink/audit event timestamps
    // — the abort's own `cycles_ += 12` commutes with the pending batch —
    // so with no sink or audit attached (fuse_ok) they need no flush at
    // all, and with one attached the flush happens before each may-fault
    // handler.
    uint64_t done = 0, cyc = 0, ret = 0;
    const uint64_t cap = budget - consumed;  // >= 1: caller checked budget
    const auto flush = [&] {
      cpu.cycles_ += cyc;
      cpu.instret_ += ret;
      cyc = ret = 0;
    };
    const auto out = [&] {
      flush();
      consumed += done;
      finish(done);
    };
    for (size_t si = 0; si < nsegs; ++si) {
      Trace::Seg& seg = t.segs[si];
      Block* const blk = seg.block;
      const size_t n = blk->entries.size();
      const Entry* const ents = blk->entries.data();
      uint64_t va = seg.va_start;
      // Body entries [0, n-1): straight-line, never fused, never guarded.
      // Run by reference — only host code (an HVC handler) can rebuild the
      // block under us, and HVC is a hard terminator, so trace-final.
      for (size_t i = 0; i + 1 < n; ++i, va += 4) {
        const Entry& e = ents[i];
        cpu.pc = va + 4;
        if (!fuse_ok && e.may_fault) flush();  // abort events timestamp
        e.fn(cpu, e.inst);
        cyc += cycle_model ? e.cost : 1;
        ++ret;
        ++cpu.op_counts_[static_cast<size_t>(e.inst.op)];
        if (++done == cap) {
          out();
          return TraceExit::kReturn;  // exact, never overshoots
        }
        // Straight-line entries only leave the run by faulting; anything
        // that cannot fault cannot redirect pc, so the check vanishes.
        if (e.may_fault) {
          if (cpu.pc != va + 4) {
            out();
            return TraceExit::kContinue;  // DataAbort: re-acquire at pc
          }
          if (e.is_store && !trace_pages_current(cpu, t)) {
            out();
            return TraceExit::kContinue;  // SMC into a trace page
          }
        }
      }
      // The terminator is copied, not referenced: the final instruction of
      // the trace can run host code (an HVC handler) that could re-enter
      // the engine and rebuild this very block in place. Its handler can
      // also observe the counters (CNTVCT, timer arming, event
      // timestamps): flush the batch first.
      const Entry e = ents[n - 1];
      cpu.pc = va + 4;
      flush();
      if (!(seg.fuse != kFuseNone && fuse_ok && fuse_exec(seg)))
        e.fn(cpu, e.inst);
      cyc += cycle_model ? e.cost : 1;
      ++ret;
      ++cpu.op_counts_[static_cast<size_t>(e.inst.op)];
      if (++done == cap) {
        out();
        return TraceExit::kReturn;
      }
      if (si + 1 < nsegs) {
        if (cpu.halted_) {
          out();
          return TraceExit::kContinue;  // outer loop observes the halt
        }
        // Segment-boundary guard: the terminator must have produced
        // exactly the edge the trace was formed across, at the EL every
        // constituent block was built for.
        Trace::Seg& nxt = t.segs[si + 1];
        if (cpu.pc != nxt.va_start || cpu.pstate.el != t.el) {
          ++stats_.trace_guard_exits;
          ++t.exits;
          blk->prof.record(cpu.pc);  // learn the real edge
          out();
          demote();
          return TraceExit::kContinue;
        }
        if (seg.env ? !trace_pages_fresh(cpu, t)
                    : (e.is_store && !trace_pages_current(cpu, t))) {
          out();
          return TraceExit::kContinue;  // store/MSR touched a trace page
        }
      }
    }
    flush();
    consumed += done;  // completion: fall through to the shared tail
  } else {
    // Careful loop: the full per-entry mirror of Cpu::step_impl's preamble
    // and the block loop's feed order, plus the same guards as above — so
    // traces keep running (and stay testable) with timers, breakpoints and
    // every observability feed attached.
    for (size_t si = 0; si < nsegs; ++si) {
      Trace::Seg& seg = t.segs[si];
      Block* const blk = seg.block;
      const size_t n = blk->entries.size();
      const uint64_t seg_last = seg.va_start + 4 * (n - 1);
      const bool seg_bp = bp_overlap && cpu.bp_min_pc_ <= seg_last &&
                          cpu.bp_max_pc_ >= seg.va_start;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t va = seg.va_start + 4 * i;
        const bool term = i + 1 == n;
        if (cpu.timer_cycles_ != 0 && cpu.cycles_ >= cpu.timer_cycles_) {
          cpu.timer_cycles_ = cpu.timer_period_ == 0
                                  ? 0
                                  : cpu.cycles_ + cpu.timer_period_;
          cpu.irq_pending_ = true;
          cpu.irq_sources_ |= Cpu::kIrqSrcTimer;
        }
        if (cpu.irq_pending_ && !cpu.pstate.irq_masked) {
          finish(consumed - d0);
          return TraceExit::kReturn;  // step_impl owns interrupt delivery
        }
        if (seg_bp &&
            cpu.breakpoints_.find(va) != cpu.breakpoints_.end()) {
          finish(consumed - d0);
          return TraceExit::kReturn;  // step_impl owns hooks
        }
        const Entry e = blk->entries[i];
        if (cpu.trace_) cpu.trace_(cpu, va, e.inst);  // pc still == va here
        uint64_t c0 = 0;
        uint8_t el0 = 0;
        if (cpu.attr_ != nullptr || cpu.cov_ != nullptr) {
          c0 = cpu.cycles_;
          el0 = static_cast<uint8_t>(cpu.pstate.el);
        }
        cpu.pc = va + 4;
        if (!(term && seg.fuse != kFuseNone && fuse_ok && fuse_exec(seg)))
          e.fn(cpu, e.inst);
        cpu.cycles_ += cycle_model ? e.cost : 1;
        ++cpu.instret_;
        ++cpu.op_counts_[static_cast<size_t>(e.inst.op)];
        if (cpu.attr_ != nullptr && cpu.cycles_ != c0)
          cpu.attr_->retire(va, el0, e.op_class, cpu.cycles_ - c0);
        if (cpu.cov_ != nullptr)
          cpu.cov_->retire(blk->pa_start + (va - blk->va_start), va, el0);
        ++consumed;
        if (consumed == budget) {
          finish(consumed - d0);
          return TraceExit::kReturn;
        }
        if (!term) {
          if (cpu.halted_ || cpu.pc != va + 4) {
            finish(consumed - d0);
            return TraceExit::kContinue;
          }
          if (e.is_store && !trace_pages_current(cpu, t)) {
            finish(consumed - d0);
            return TraceExit::kContinue;
          }
        } else if (si + 1 < nsegs) {
          if (cpu.halted_) {
            finish(consumed - d0);
            return TraceExit::kContinue;
          }
          Trace::Seg& nxt = t.segs[si + 1];
          if (cpu.pc != nxt.va_start || cpu.pstate.el != t.el) {
            ++stats_.trace_guard_exits;
            ++t.exits;
            blk->prof.record(cpu.pc);
            finish(consumed - d0);
            demote();
            return TraceExit::kContinue;
          }
          if (seg.env ? !trace_pages_fresh(cpu, t)
                      : (e.is_store && !trace_pages_current(cpu, t))) {
            finish(consumed - d0);
            return TraceExit::kContinue;
          }
        }
      }
    }
  }

  // Full completion: the tail block's successor feeds both its edge profile
  // (future formation) and the caller's chain memo, exactly as if the tail
  // had just been dispatched standalone.
  finish(consumed - d0);
  if (!cpu.halted_) {
    Block* const tail = t.segs.back().block;
    tail->prof.record(cpu.pc);
    prev = tail;
    // Regrowth: formation fires the moment the head's edge is biased, when
    // downstream profiles are typically one sample short — freezing the
    // trace at two or three segments. Re-walk a well-used trace so it can
    // extend to what the now-warm profiles support. The round counter lives
    // on the head block (each regrowth destroys the trace, resetting uses),
    // capping the extra formation work at kMaxRegrows walks per decode.
    if (t.head->trace_regrows < kMaxRegrows &&
        t.uses == (uint64_t{32} << t.head->trace_regrows)) {
      Block* const head = t.head;
      ++head->trace_regrows;
      drop_trace(t);  // destroys t
      try_form_trace(cpu, *head);
    }
  }
  return TraceExit::kContinue;
}

uint64_t SuperblockEngine::execute(Cpu& cpu, uint64_t budget) {
  uint64_t consumed = 0;
  Block* prev = nullptr;  // completed predecessor, for the chain memo
  while (consumed < budget && !cpu.halted_) {
    Block* blk;
    if (prev != nullptr && prev->chain != nullptr &&
        prev->chain_va == cpu.pc && valid(cpu, *prev->chain, cpu.pc)) {
      blk = prev->chain;  // memoized edge: no lookup, no translate
      ++stats_.chain_hits;
    } else {
      blk = acquire(cpu);
      if (blk == nullptr) break;  // caller single-steps (fault/unaligned)
      if (prev != nullptr) {
        prev->chain = blk;
        prev->chain_va = blk->va_start;
      }
    }
    prev = nullptr;

    // Trace tier (§3i): a valid trace headed here replaces the whole
    // block-by-block walk; a stale one is dropped — its still-valid
    // constituent blocks keep running standalone and may re-form.
    if (cpu.cfg_.traces && blk->trace != nullptr) {
      Trace& t = *blk->trace;
      if (trace_valid(cpu, t)) {
        if (run_trace(cpu, t, budget, consumed, prev) == TraceExit::kReturn)
          return consumed;
        continue;  // guard/side exit or completion: re-enter the dispatcher
      }
      ++stats_.trace_invalidations;
      drop_trace(t);
    }

    // When no breakpoint can possibly fall inside this block, the per-entry
    // check collapses to nothing. [bp_min_pc_, bp_max_pc_] is empty
    // (min > max) when no breakpoints exist.
    const size_t n = blk->entries.size();
    const uint64_t va_last = blk->va_start + 4 * (n - 1);
    const bool bp_overlap =
        cpu.bp_min_pc_ <= va_last && cpu.bp_max_pc_ >= blk->va_start;

    // Dispatch run length (instructions retired inside this block entry)
    // for the §3f histogram; zero-length dispatches (bail before the first
    // instruction) are not samples.
    const uint64_t d0 = consumed;
    bool completed = true;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t va = blk->va_start + 4 * i;
      // Mirror of Cpu::step_impl's preamble, in the same order. Timer and
      // IRQ state are re-checked before *every* instruction because the
      // deadline can pass mid-block.
      if (cpu.timer_cycles_ != 0 && cpu.cycles_ >= cpu.timer_cycles_) {
        cpu.timer_cycles_ = cpu.timer_period_ == 0
                                ? 0
                                : cpu.cycles_ + cpu.timer_period_;
        cpu.irq_pending_ = true;
        cpu.irq_sources_ |= Cpu::kIrqSrcTimer;
      }
      if (cpu.irq_pending_ && !cpu.pstate.irq_masked) {
        if (consumed > d0) stats_.run_length.record(consumed - d0);
        return consumed;  // step_impl owns interrupt delivery
      }
      if (bp_overlap && cpu.breakpoints_.find(va) != cpu.breakpoints_.end()) {
        if (consumed > d0) stats_.run_length.record(consumed - d0);
        return consumed;  // step_impl owns hooks (they may mutate anything)
      }

      // Copy the entry: the final instruction of a block can run host code
      // (an HVC handler) that could conceivably re-enter the engine and
      // rebuild this very block in place.
      const Entry e = blk->entries[i];
      if (cpu.trace_) cpu.trace_(cpu, va, e.inst);  // pc still == va here
      uint64_t c0 = 0;
      uint8_t el0 = 0;
      if (cpu.attr_ != nullptr || cpu.cov_ != nullptr) {
        c0 = cpu.cycles_;
        el0 = static_cast<uint8_t>(cpu.pstate.el);
      }
      cpu.pc = va + 4;
      e.fn(cpu, e.inst);
      cpu.cycles_ += cpu.cfg_.enable_cycle_model ? e.cost : 1;
      ++cpu.instret_;
      ++cpu.op_counts_[static_cast<size_t>(e.inst.op)];
      if (cpu.attr_ != nullptr && cpu.cycles_ != c0)
        cpu.attr_->retire(va, el0, e.op_class, cpu.cycles_ - c0);
      if (cpu.cov_ != nullptr)
        cpu.cov_->retire(blk->pa_start + (va - blk->va_start), va, el0);
      ++consumed;

      if (consumed == budget) {
        stats_.run_length.record(consumed - d0);
        return consumed;  // exact, never overshoots
      }
      if (i + 1 < n) {
        // Straight-line entries only leave the block early by faulting
        // (DataAbort redirects pc to the vector); follow the redirect by
        // re-acquiring at the new pc.
        if (cpu.halted_ || cpu.pc != va + 4) {
          completed = false;
          break;
        }
        // A store may have rewritten this very block further down: the
        // page's write generation is the same signal the predecode cache
        // keys on, so the next acquire() re-translates the fresh bytes.
        if (e.is_store &&
            blk->phys_gen !=
                cpu.mmu_->phys().page_generation(
                    blk->pa_start >> mem::PhysicalMemory::kPageShift)) {
          completed = false;
          break;
        }
      }
    }
    if (consumed > d0) stats_.run_length.record(consumed - d0);
    if (completed) {
      if (cpu.halted_) break;
      if (cpu.cfg_.traces) {
        blk->prof.record(cpu.pc);
        if (blk->trace == nullptr &&
            edge_extendable(blk->entries.back().inst))
          try_form_trace(cpu, *blk);
      }
      prev = blk;  // next acquisition memoizes the edge taken from here
    }
  }
  return consumed;
}

}  // namespace camo::cpu
