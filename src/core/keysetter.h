// Synthesis of the XOM kernel key-setter function (§4.1, §5.1).
//
// The key values are encoded as MOVZ/MOVK immediates inside the executable
// code of a function whose sole purpose is to write the kernel keys into the
// PAuth system registers. The page holding it is mapped execute-only by the
// hypervisor, so the keys can neither be read (disassembled) nor modified
// from EL1, yet installing them costs no trap to a higher exception level.
// The function clears every GPR it used before returning, and must be called
// with interrupts masked (the kernel entry stub guarantees this).
#pragma once

#include <cstdint>

#include "assembler/builder.h"
#include "core/keys.h"

namespace camo::core {

/// Name under which the setter is linked into the kernel image.
inline constexpr const char* kKeySetterSymbol = "camo_set_kernel_keys";

/// Scratch register the generated code stages immediates in (zeroed before
/// return).
inline constexpr uint8_t kKeySetterScratch = 9;

/// Build the key-setter function for `keys`, installing the keys selected by
/// `usage`. The body is padded with NOPs to exactly one 4 KiB page so the
/// hypervisor can map it XOM without covering unrelated code, and is marked
/// no_instrument (its RET must stay unsigned: it runs while the *previous*
/// key set is still live).
assembler::FunctionBuilder make_key_setter(const KernelKeys& keys,
                                           KeyUsage usage);

/// Number of instructions the setter needs before padding (for tests).
unsigned key_setter_insn_count(KeyUsage usage);

}  // namespace camo::core
