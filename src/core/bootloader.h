// The firmware bootloader (§4.1, §5.1, Figure 1).
//
// Boot protocol:
//   1. generate pseudo-random kernel PAuth keys from the boot seed (like the
//      kASLR seed delivered via the FDT);
//   2. synthesize the XOM key-setter function with the keys embedded as
//      MOVZ/MOVK immediates and splice it into the kernel image (the paper
//      "updates the kernel PAuth key function before the kernel boots");
//   3. run the instrumentation passes and link the kernel;
//   4. statically verify the image (§4.1): no PAuth key reads anywhere, key
//      writes only inside the setter page, SCTLR writes only in early boot;
//   5. load the image through the hypervisor, which write-protects text and
//      rodata at stage 2 and maps the setter page execute-only;
//   6. hand the CPU to the kernel entry point at EL1 with IRQs masked.
//
// The returned keys are the host-side secret: guest state never contains
// them outside the XOM page and (transiently) the key registers.
#pragma once

#include <cstdint>

#include "analysis/verifier.h"
#include "compiler/instrument.h"
#include "core/keys.h"
#include "cpu/cpu.h"
#include "hyp/hypervisor.h"
#include "obj/object.h"

namespace camo::core {

struct BootConfig {
  uint64_t seed = 0xC0FFEE;  ///< FDT-style boot entropy
  compiler::ProtectionConfig protection = compiler::ProtectionConfig::full();
  KeyUsage key_usage = KeyUsage::camouflage_default();
  bool verify_kernel = true;
  /// Name of the function allowed to write SCTLR_EL1 (early boot).
  std::string early_boot_symbol = "early_boot";
  /// Kernel entry symbol.
  std::string entry_symbol = "_start";
  /// Functions (besides the XOM setter) that legitimately write PAuth key
  /// registers — the per-thread user-key restore path.
  std::vector<std::string> key_write_symbols;
};

struct BootResult {
  KernelKeys keys;  ///< host-side secret (used by benches/attack oracles)
  obj::Image kernel_image;
  uint64_t key_setter_va = 0;
  uint64_t entry_va = 0;
  analysis::VerifyResult kernel_verify;
};

/// The machine-independent half of boot, precomputed: key setter
/// synthesized and spliced, instrumentation passes run, image linked and
/// statically verified. Nothing here references a Machine, a Hypervisor or
/// a Cpu, so one PreparedKernel is immutable and safely shared across a
/// fleet of machines on any number of threads (kernel::ImageCache does
/// exactly that); install() only copies bytes into per-machine memory.
struct PreparedKernel {
  KernelKeys keys;
  obj::Image image;
  uint64_t key_setter_va = 0;
  uint64_t entry_va = 0;
  analysis::VerifyResult verify;
  /// Verifier allow-lists the prepare step used; install() replays them
  /// into the machine's hypervisor so later module loads verify under the
  /// same rules a direct boot() would have set up.
  struct Range {
    uint64_t va = 0, len = 0;
  };
  std::vector<Range> key_write_ranges;
  std::vector<Range> sctlr_write_ranges;
};

class Bootloader {
 public:
  /// Boots `kernel` (un-instrumented program) on `cpu` via `hv`.
  /// `kernel_base` must be page-aligned; `boot_sp` must already be mapped by
  /// the caller (or will be before the first push). Throws camo::Error when
  /// kernel verification fails. Equivalent to prepare() + install().
  static BootResult boot(obj::Program kernel, const BootConfig& cfg,
                         hyp::Hypervisor& hv, cpu::Cpu& cpu,
                         uint64_t kernel_base, uint64_t boot_sp);

  /// Build + verify + sign once: everything per-configuration. Throws
  /// camo::Error when cfg.verify_kernel is set and verification fails.
  static PreparedKernel prepare(obj::Program kernel, const BootConfig& cfg,
                                uint64_t kernel_base);

  /// Load a prepared kernel into one machine: configure the hypervisor's
  /// verifier allow-lists, map the image (stage-2 write protection, XOM
  /// key-setter page), export symbols, and park the CPU at the entry point
  /// — the per-machine remainder of boot().
  static BootResult install(const PreparedKernel& pk, hyp::Hypervisor& hv,
                            cpu::Cpu& cpu, uint64_t boot_sp);
};

}  // namespace camo::core
