// The firmware bootloader (§4.1, §5.1, Figure 1).
//
// Boot protocol:
//   1. generate pseudo-random kernel PAuth keys from the boot seed (like the
//      kASLR seed delivered via the FDT);
//   2. synthesize the XOM key-setter function with the keys embedded as
//      MOVZ/MOVK immediates and splice it into the kernel image (the paper
//      "updates the kernel PAuth key function before the kernel boots");
//   3. run the instrumentation passes and link the kernel;
//   4. statically verify the image (§4.1): no PAuth key reads anywhere, key
//      writes only inside the setter page, SCTLR writes only in early boot;
//   5. load the image through the hypervisor, which write-protects text and
//      rodata at stage 2 and maps the setter page execute-only;
//   6. hand the CPU to the kernel entry point at EL1 with IRQs masked.
//
// The returned keys are the host-side secret: guest state never contains
// them outside the XOM page and (transiently) the key registers.
#pragma once

#include <cstdint>

#include "analysis/verifier.h"
#include "compiler/instrument.h"
#include "core/keys.h"
#include "cpu/cpu.h"
#include "hyp/hypervisor.h"
#include "obj/object.h"

namespace camo::core {

struct BootConfig {
  uint64_t seed = 0xC0FFEE;  ///< FDT-style boot entropy
  compiler::ProtectionConfig protection = compiler::ProtectionConfig::full();
  KeyUsage key_usage = KeyUsage::camouflage_default();
  bool verify_kernel = true;
  /// Name of the function allowed to write SCTLR_EL1 (early boot).
  std::string early_boot_symbol = "early_boot";
  /// Kernel entry symbol.
  std::string entry_symbol = "_start";
  /// Functions (besides the XOM setter) that legitimately write PAuth key
  /// registers — the per-thread user-key restore path.
  std::vector<std::string> key_write_symbols;
};

struct BootResult {
  KernelKeys keys;  ///< host-side secret (used by benches/attack oracles)
  obj::Image kernel_image;
  uint64_t key_setter_va = 0;
  uint64_t entry_va = 0;
  analysis::VerifyResult kernel_verify;
};

class Bootloader {
 public:
  /// Boots `kernel` (un-instrumented program) on `cpu` via `hv`.
  /// `kernel_base` must be page-aligned; `boot_sp` must already be mapped by
  /// the caller (or will be before the first push). Throws camo::Error when
  /// kernel verification fails.
  static BootResult boot(obj::Program kernel, const BootConfig& cfg,
                         hyp::Hypervisor& hv, cpu::Cpu& cpu,
                         uint64_t kernel_base, uint64_t boot_sp);
};

}  // namespace camo::core
