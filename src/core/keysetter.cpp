#include "core/keysetter.h"

#include "isa/isa.h"
#include "support/bits.h"

namespace camo::core {

using assembler::FunctionBuilder;
using isa::SysReg;

namespace {

/// Emit: materialize a 64-bit immediate (always 4 instructions — constant
/// shape regardless of key value, so code size never leaks key structure)
/// and MSR it into `reg`.
void emit_set_half(FunctionBuilder& f, SysReg reg, uint64_t value) {
  f.movz(kKeySetterScratch, static_cast<uint16_t>(bits(value, 0, 16)), 0);
  f.movk(kKeySetterScratch, static_cast<uint16_t>(bits(value, 16, 16)), 1);
  f.movk(kKeySetterScratch, static_cast<uint16_t>(bits(value, 32, 16)), 2);
  f.movk(kKeySetterScratch, static_cast<uint16_t>(bits(value, 48, 16)), 3);
  f.msr(reg, kKeySetterScratch);
}

void emit_set_key(FunctionBuilder& f, SysReg lo, SysReg hi,
                  const qarma::Key128& key) {
  // Lo register holds k0, Hi holds w0 (the CPU composes Key128{Hi, Lo}).
  emit_set_half(f, lo, key.k0);
  emit_set_half(f, hi, key.w0);
}

}  // namespace

unsigned key_setter_insn_count(KeyUsage usage) {
  // 10 instructions per key (2 halves x (4 moves + 1 msr)), +1 zeroing the
  // scratch register, +1 ret.
  return static_cast<unsigned>(usage.count()) * 10 + 2;
}

FunctionBuilder make_key_setter(const KernelKeys& keys, KeyUsage usage) {
  FunctionBuilder f(kKeySetterSymbol);
  f.set_no_instrument();

  if (usage.ia) emit_set_key(f, SysReg::APIAKeyLo, SysReg::APIAKeyHi, keys.ia);
  if (usage.ib) emit_set_key(f, SysReg::APIBKeyLo, SysReg::APIBKeyHi, keys.ib);
  if (usage.da) emit_set_key(f, SysReg::APDAKeyLo, SysReg::APDAKeyHi, keys.da);
  if (usage.db) emit_set_key(f, SysReg::APDBKeyLo, SysReg::APDBKeyHi, keys.db);
  if (usage.ga) emit_set_key(f, SysReg::APGAKeyLo, SysReg::APGAKeyHi, keys.ga);

  // R2: clear the staging register so no key half survives in a GPR.
  f.movz(kKeySetterScratch, 0, 0);
  f.ret();

  // Pad to exactly one page so the XOM mapping covers the setter alone.
  constexpr unsigned kWordsPerPage = 4096 / 4;
  for (unsigned i = key_setter_insn_count(usage); i < kWordsPerPage; ++i)
    f.nop();
  return f;
}

}  // namespace camo::core
