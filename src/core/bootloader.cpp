#include "core/bootloader.h"

#include "core/keysetter.h"
#include "support/bits.h"
#include "support/error.h"

namespace camo::core {

PreparedKernel Bootloader::prepare(obj::Program kernel, const BootConfig& cfg,
                                   uint64_t kernel_base) {
  if (!is_aligned(kernel_base, mem::VaLayout::kPageSize))
    fail("bootloader: kernel base must be page aligned");

  PreparedKernel pk;
  pk.keys = KernelKeys::generate(cfg.seed);

  // Key usage follows the build flavour: compat builds can only switch the
  // shared IB key (§5.5).
  const KeyUsage usage =
      cfg.protection.compat_mode ? KeyUsage::compat() : cfg.key_usage;

  // Splice the synthesized key setter in front so it occupies the (page
  // aligned) first page of .text.
  kernel.add_function_front(make_key_setter(pk.keys, usage));

  compiler::instrument(kernel, cfg.protection);
  pk.image = obj::Linker::link(kernel, kernel_base);
  pk.key_setter_va = pk.image.symbol(kKeySetterSymbol);
  pk.entry_va = pk.image.symbol(cfg.entry_symbol);

  // §4.1 static verification of the full kernel image, against the same
  // allow-lists install() will arm the machine's hypervisor with.
  pk.key_write_ranges.push_back({pk.key_setter_va, mem::VaLayout::kPageSize});
  for (const auto& sym : cfg.key_write_symbols) {
    if (!pk.image.has_symbol(sym)) continue;
    pk.key_write_ranges.push_back(
        {pk.image.symbol(sym), pk.image.function_sizes.at(sym)});
  }
  if (pk.image.has_symbol(cfg.early_boot_symbol)) {
    const uint64_t eb = pk.image.symbol(cfg.early_boot_symbol);
    const auto it = pk.image.function_sizes.find(cfg.early_boot_symbol);
    const uint64_t len = it == pk.image.function_sizes.end()
                             ? mem::VaLayout::kPageSize
                             : it->second;
    pk.sctlr_write_ranges.push_back({eb, len});
  }
  analysis::Verifier verifier;
  for (const auto& r : pk.key_write_ranges)
    verifier.allow_key_writes(r.va, r.len);
  for (const auto& r : pk.sctlr_write_ranges)
    verifier.allow_sctlr_writes(r.va, r.len);
  pk.verify = verifier.verify_image(pk.image);
  if (cfg.verify_kernel && !pk.verify.ok())
    fail("bootloader: kernel verification failed: " + pk.verify.describe());
  return pk;
}

BootResult Bootloader::install(const PreparedKernel& pk, hyp::Hypervisor& hv,
                               cpu::Cpu& cpu, uint64_t boot_sp) {
  // Replay the prepare-time allow-lists so module loads on this machine
  // verify under identical rules.
  for (const auto& r : pk.key_write_ranges)
    hv.verifier().allow_key_writes(r.va, r.len);
  for (const auto& r : pk.sctlr_write_ranges)
    hv.verifier().allow_sctlr_writes(r.va, r.len);

  // Load and lock down memory; conceal the keys behind XOM.
  hv.load_image(pk.image, hv.kernel_map(), /*user=*/false);
  hv.protect_xom(pk.key_setter_va, mem::VaLayout::kPageSize);
  hv.set_kernel_exports(pk.image.symbols);
  hv.install(cpu);

  // Hand over to EL1: MMU state is hypervisor-owned, PAuth still disabled in
  // SCTLR (early boot enables it), IRQs masked.
  cpu.pstate.el = mem::El::El1;
  cpu.pstate.irq_masked = true;
  cpu.set_sysreg(isa::SysReg::SCTLR_EL1, 0);
  cpu.set_sp_el(mem::El::El1, boot_sp);
  cpu.pc = pk.entry_va;

  BootResult result;
  result.keys = pk.keys;
  result.kernel_image = pk.image;
  result.key_setter_va = pk.key_setter_va;
  result.entry_va = pk.entry_va;
  result.kernel_verify = pk.verify;
  return result;
}

BootResult Bootloader::boot(obj::Program kernel, const BootConfig& cfg,
                            hyp::Hypervisor& hv, cpu::Cpu& cpu,
                            uint64_t kernel_base, uint64_t boot_sp) {
  return install(prepare(std::move(kernel), cfg, kernel_base), hv, cpu,
                 boot_sp);
}

}  // namespace camo::core
