#include "core/bootloader.h"

#include "core/keysetter.h"
#include "support/bits.h"
#include "support/error.h"

namespace camo::core {

BootResult Bootloader::boot(obj::Program kernel, const BootConfig& cfg,
                            hyp::Hypervisor& hv, cpu::Cpu& cpu,
                            uint64_t kernel_base, uint64_t boot_sp) {
  if (!is_aligned(kernel_base, mem::VaLayout::kPageSize))
    fail("bootloader: kernel base must be page aligned");

  BootResult result;
  result.keys = KernelKeys::generate(cfg.seed);

  // Key usage follows the build flavour: compat builds can only switch the
  // shared IB key (§5.5).
  const KeyUsage usage =
      cfg.protection.compat_mode ? KeyUsage::compat() : cfg.key_usage;

  // Splice the synthesized key setter in front so it occupies the (page
  // aligned) first page of .text.
  kernel.add_function_front(make_key_setter(result.keys, usage));

  compiler::instrument(kernel, cfg.protection);
  result.kernel_image = obj::Linker::link(kernel, kernel_base);
  result.key_setter_va = result.kernel_image.symbol(kKeySetterSymbol);
  result.entry_va = result.kernel_image.symbol(cfg.entry_symbol);

  // §4.1 static verification of the full kernel image.
  hv.verifier().allow_key_writes(result.key_setter_va,
                                 mem::VaLayout::kPageSize);
  for (const auto& sym : cfg.key_write_symbols) {
    if (!result.kernel_image.has_symbol(sym)) continue;
    hv.verifier().allow_key_writes(result.kernel_image.symbol(sym),
                                   result.kernel_image.function_sizes.at(sym));
  }
  if (result.kernel_image.has_symbol(cfg.early_boot_symbol)) {
    const uint64_t eb = result.kernel_image.symbol(cfg.early_boot_symbol);
    const auto it =
        result.kernel_image.function_sizes.find(cfg.early_boot_symbol);
    const uint64_t len = it == result.kernel_image.function_sizes.end()
                             ? mem::VaLayout::kPageSize
                             : it->second;
    hv.verifier().allow_sctlr_writes(eb, len);
  }
  result.kernel_verify = hv.verifier().verify_image(result.kernel_image);
  if (cfg.verify_kernel && !result.kernel_verify.ok())
    fail("bootloader: kernel verification failed: " +
         result.kernel_verify.describe());

  // Load and lock down memory; conceal the keys behind XOM.
  hv.load_image(result.kernel_image, hv.kernel_map(), /*user=*/false);
  hv.protect_xom(result.key_setter_va, mem::VaLayout::kPageSize);
  hv.set_kernel_exports(result.kernel_image.symbols);
  hv.install(cpu);

  // Hand over to EL1: MMU state is hypervisor-owned, PAuth still disabled in
  // SCTLR (early boot enables it), IRQs masked.
  cpu.pstate.el = mem::El::El1;
  cpu.pstate.irq_masked = true;
  cpu.set_sysreg(isa::SysReg::SCTLR_EL1, 0);
  cpu.set_sp_el(mem::El::El1, boot_sp);
  cpu.pc = result.entry_va;
  return result;
}

}  // namespace camo::core
