// Host-side mirrors of the PAuth modifier constructions (§4.2, §4.3).
//
// Guest code builds these with MOVZ/BFI sequences (see compiler/instrument);
// these helpers compute the same values on the host so attacks, benches and
// tests can predict/forge modifiers and reason about replay windows.
#pragma once

#include <cstdint>

#include "support/bits.h"

namespace camo::core {

/// Camouflage return-address modifier: low 32 bits of the function address
/// (from PC) with the low 32 bits of SP in the upper half (Listing 3).
constexpr uint64_t camouflage_return_modifier(uint64_t sp, uint64_t func) {
  return (func & mask(32)) | ((sp & mask(32)) << 32);
}

/// Reference (Qualcomm/Clang) scheme: SP alone is the modifier (Listing 2).
constexpr uint64_t clang_return_modifier(uint64_t sp) { return sp; }

/// PARTS scheme: 48-bit LTO function id with the low 16 bits of SP on top —
/// the construction whose 16-bit SP window §7 shows is replayable across
/// kernel stacks 2^16 bytes apart.
constexpr uint64_t parts_return_modifier(uint64_t sp, uint64_t func_id) {
  return (func_id & mask(48)) | ((sp & mask(16)) << 48);
}

/// Pointer-integrity modifier (§4.3): 16-bit type·member constant in the low
/// bits, the containing object's 48-bit address above. Unique per live
/// object, segregates pointer types at the same address.
constexpr uint64_t object_modifier(uint64_t object_addr, uint16_t type_id) {
  return type_id | ((object_addr & mask(48)) << 16);
}

}  // namespace camo::core
