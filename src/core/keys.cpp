#include "core/keys.h"

#include "support/error.h"
#include "support/rng.h"

namespace camo::core {

KernelKeys KernelKeys::generate(uint64_t seed) {
  Xoshiro256 rng(seed);
  KernelKeys k;
  k.ia = {rng.next(), rng.next()};
  k.ib = {rng.next(), rng.next()};
  k.da = {rng.next(), rng.next()};
  k.db = {rng.next(), rng.next()};
  k.ga = {rng.next(), rng.next()};
  return k;
}

const qarma::Key128& KernelKeys::key(cpu::PacKey k) const {
  switch (k) {
    case cpu::PacKey::IA: return ia;
    case cpu::PacKey::IB: return ib;
    case cpu::PacKey::DA: return da;
    case cpu::PacKey::DB: return db;
    case cpu::PacKey::GA: return ga;
  }
  fail("KernelKeys: bad key id");
}

}  // namespace camo::core
