// Instruction-set definition for the simulated CPU.
//
// Semantics follow AArch64 (including the complete ARMv8.3 PAuth instruction
// family), but the binary encoding is a custom fixed 32-bit format — real
// AArch64 encodings are irrelevant to the paper's claims, while *having* an
// encoding matters: instructions live in guest memory as words, so
// execute-only memory genuinely hides MOVZ/MOVK key immediates and the module
// verifier genuinely scans encoded words (DESIGN.md §5).
//
// Encoding layout: bits [31:24] hold the opcode; remaining fields are packed
// per format (see Format). Register fields are 5 bits; index 31 means XZR or
// SP depending on the operand position, exactly as in AArch64.
#pragma once

#include <cstdint>
#include <string>

namespace camo::isa {

// ---------------------------------------------------------------------------
// Registers
// ---------------------------------------------------------------------------

inline constexpr uint8_t kNumGprs = 31;  ///< X0..X30
inline constexpr uint8_t kRegIp0 = 16;   ///< X16, intra-procedure scratch
inline constexpr uint8_t kRegIp1 = 17;   ///< X17
inline constexpr uint8_t kRegFp = 29;    ///< frame pointer
inline constexpr uint8_t kRegLr = 30;    ///< link register
inline constexpr uint8_t kRegZrSp = 31;  ///< encodes XZR or SP by position

/// System registers (MRS/MSR-accessible). The ten AP*Key* registers hold the
/// five 128-bit PAuth keys, two 64-bit halves each (ARMv8.3 B.1).
enum class SysReg : uint8_t {
  APIAKeyLo,
  APIAKeyHi,
  APIBKeyLo,
  APIBKeyHi,
  APDAKeyLo,
  APDAKeyHi,
  APDBKeyLo,
  APDBKeyHi,
  APGAKeyLo,
  APGAKeyHi,
  SCTLR_EL1,
  TTBR0_EL1,
  TTBR1_EL1,
  VBAR_EL1,
  ESR_EL1,
  ELR_EL1,
  SPSR_EL1,
  FAR_EL1,
  CONTEXTIDR_EL1,
  TPIDR_EL1,
  SP_EL0,
  CNTVCT_EL0,  ///< virtual counter; reads the cycle counter
  CurrentEL,   ///< read-only
  DAIF,
  MPIDR_EL1,   ///< read-only core id (multiprocessor affinity)
  ISR_EL1,     ///< pending-IRQ source latch; MSR is write-1-to-clear
  kCount,
};

const char* sysreg_name(SysReg r);

/// True for the PAuth key registers APIAKeyLo..APGAKeyHi.
constexpr bool is_pauth_key_reg(SysReg r) {
  return static_cast<uint8_t>(r) <= static_cast<uint8_t>(SysReg::APGAKeyHi);
}

// SCTLR_EL1 PAuth enable bits (real AArch64 positions).
inline constexpr uint64_t kSctlrEnIA = uint64_t{1} << 31;
inline constexpr uint64_t kSctlrEnIB = uint64_t{1} << 30;
inline constexpr uint64_t kSctlrEnDA = uint64_t{1} << 27;
inline constexpr uint64_t kSctlrEnDB = uint64_t{1} << 13;
inline constexpr uint64_t kSctlrM = uint64_t{1} << 0;  ///< MMU enable

// ---------------------------------------------------------------------------
// Condition codes
// ---------------------------------------------------------------------------

enum class Cond : uint8_t {
  EQ = 0,
  NE = 1,
  HS = 2,
  LO = 3,
  MI = 4,
  PL = 5,
  HI = 8,
  LS = 9,
  GE = 10,
  LT = 11,
  GT = 12,
  LE = 13,
  AL = 14,
};

const char* cond_name(Cond c);

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class Op : uint8_t {
  Invalid = 0,

  // Wide moves
  MOVZ,
  MOVK,
  MOVN,

  // Register data processing (F_R3)
  ADD,
  SUB,
  ADDS,
  SUBS,
  AND,
  ORR,
  EOR,
  MUL,
  UDIV,
  LSLV,
  LSRV,

  // Immediate data processing (F_RI); rn/rd index 31 = SP for ADD/SUB
  ADDI,
  SUBI,
  ADDSI,
  SUBSI,
  ANDI,
  ORRI,
  EORI,

  // Immediate shifts (F_SHIFT)
  LSLI,
  LSRI,
  ASRI,

  // Bitfields (F_BF)
  BFI,
  UBFX,

  // PC-relative (F_ADR)
  ADR,

  // Loads/stores (F_MEM: imm12 scaled by access size; rn 31 = SP)
  LDR,
  STR,
  LDRB,
  STRB,

  // Pair loads/stores (F_MEMP: signed imm7 scaled by 8)
  LDP,       ///< signed offset, no writeback
  STP,       ///< signed offset, no writeback
  LDP_POST,  ///< post-index writeback (canonical epilogue)
  STP_PRE,   ///< pre-index writeback (canonical prologue)

  // Branches
  B,      // F_B
  BL,     // F_B
  BCOND,  // F_BCOND
  CBZ,    // F_CB
  CBNZ,   // F_CB
  BR,     // F_BR (rn = target)
  BLR,    // F_BR
  RET,    // F_BR (rn = return target, conventionally LR)

  // PAuth combined branches (F_BR: rn target, rm modifier, 31 = SP)
  BRAA,
  BRAB,
  BLRAA,
  BLRAB,
  RETAA,  // authenticates LR with SP modifier, key IA
  RETAB,

  // System (F_SYS / F_IMM16 / F_NONE)
  MRS,
  MSR,
  SVC,
  HVC,
  BRK,
  HLT,
  ERET,
  DAIFSET,  ///< mask IRQs (imm ignored; models MSR DAIFSet, #2)
  DAIFCLR,  ///< unmask IRQs
  ISB,
  NOP,

  // PAuth sign/authenticate (F_PAC: rd = pointer, rn = modifier, 31 = SP)
  PACIA,
  PACIB,
  PACDA,
  PACDB,
  AUTIA,
  AUTIB,
  AUTDA,
  AUTDB,
  PACGA,  // F_R3: rd = generic MAC of rn with modifier rm
  XPACI,  // F_XPAC
  XPACD,

  // HINT-space PAuth (NOP on pre-8.3 cores; see is_hint_space)
  PACIASP,
  AUTIASP,
  PACIBSP,
  AUTIBSP,
  PACIA1716,  ///< sign X17 with modifier X16, key IA
  PACIB1716,
  AUTIA1716,
  AUTIB1716,
  XPACLRI,  ///< strip PAC from LR

  // Atomic swap (F_R3: rd = loaded old value, rn = address, rm = new value).
  // Appended at the tail so every pre-existing opcode keeps its encoding.
  SWP,

  kCount,
};

/// Instruction formats: how operand fields are packed into the 24 low bits.
enum class Format : uint8_t {
  None,    // no operands
  MovW,    // rd[4:0] imm16[20:5] hw[22:21]
  R3,      // rd[4:0] rn[9:5] rm[14:10]
  RI,      // rd[4:0] rn[9:5] imm12[21:10] sh[22]
  Shift,   // rd[4:0] rn[9:5] sh6[15:10]
  BitF,    // rd[4:0] rn[9:5] lsb6[15:10] width6[21:16]
  Adr,     // rd[4:0] simm19[23:5] (byte offset)
  Mem,     // rt[4:0] rn[9:5] imm12[21:10] (scaled)
  MemP,    // rt[4:0] rn[9:5] rt2[14:10] simm7[21:15] (scaled by 8)
  Branch,  // simm24[23:0] (word offset)
  BCond,   // cond[3:0] simm18[21:4] (word offset)
  CmpBr,   // rt[4:0] simm19[23:5] (word offset)
  BReg,    // rn[9:5] rm[14:10]
  Sys,     // rt[4:0] sysreg[15:8]
  Pac,     // rd[4:0] rn[9:5]
  Imm16,   // imm16[20:5]
};

Format format_of(Op op);
const char* op_name(Op op);

/// True for instructions in the AArch64 HINT space: pre-8.3 cores execute
/// them as NOP, which is what the paper's binary-compatibility mode (§5.5)
/// relies on.
bool is_hint_space(Op op);

/// True for any instruction that requires the PAuth extension (on a core
/// without PAuth: HINT-space ones execute as NOP, the rest are UNDEFINED).
bool is_pauth(Op op);

/// Static per-opcode properties the superblock translator (DESIGN.md §3e)
/// builds straight-line blocks from.
struct OpTraits {
  /// Terminates a superblock: everything that can redirect pc, change EL or
  /// PSTATE.I, touch system state, raise an exception by design, or halt —
  /// branches, the whole PAuth family (AUT* may fault under FPAC, and key
  /// state feeds the PAC caches), MRS/MSR/SVC/HVC/BRK/HLT/ERET/DAIF*/ISB,
  /// and undecodable words.
  bool ends_block = true;
  /// Writes guest memory; a block must recheck its own page's write
  /// generation after every store so self-modifying code never executes a
  /// stale decode.
  bool is_store = false;
  /// May take a synchronous DataAbort mid-block (loads and stores).
  bool may_fault = false;
  /// May terminate a *non-final* segment of a superblock trace (DESIGN.md
  /// §3i): after the handler runs, the complete engine-relevant outcome is
  /// captured by (pc, EL), so a trace can continue across the edge behind a
  /// pc-equality guard. True for every branch (direct, conditional,
  /// indirect, PAuth-combined) and for the non-branch PAuth family (their
  /// only redirect is an FPAC fault, which the guard catches). False for
  /// ops that can change PSTATE.I, halt, run host code (HVC/MSR filter),
  /// switch EL outside the guard's view, or touch system state — those may
  /// only ever be the *final* entry of a trace.
  bool guardable = false;
};

constexpr OpTraits op_traits(Op op) {
  switch (op) {
    // Straight-line ALU/move body instructions: never touch pc or EL.
    case Op::MOVZ:
    case Op::MOVK:
    case Op::MOVN:
    case Op::ADD:
    case Op::SUB:
    case Op::ADDS:
    case Op::SUBS:
    case Op::AND:
    case Op::ORR:
    case Op::EOR:
    case Op::MUL:
    case Op::UDIV:
    case Op::LSLV:
    case Op::LSRV:
    case Op::ADDI:
    case Op::SUBI:
    case Op::ADDSI:
    case Op::SUBSI:
    case Op::ANDI:
    case Op::ORRI:
    case Op::EORI:
    case Op::LSLI:
    case Op::LSRI:
    case Op::ASRI:
    case Op::BFI:
    case Op::UBFX:
    case Op::ADR:
    case Op::NOP:
      return {false, false, false};
    // Loads: straight-line but may fault.
    case Op::LDR:
    case Op::LDRB:
    case Op::LDP:
    case Op::LDP_POST:
      return {false, false, true};
    // Stores: straight-line, may fault, and may modify code.
    case Op::STR:
    case Op::STRB:
    case Op::STP:
    case Op::STP_PRE:
      return {false, true, true};
    // Guardable terminators: branches redirect pc and nothing else the
    // engine must see; PAuth sign/auth/strip write one register and can at
    // worst fault (FPAC) or poison, both visible to the pc/EL guard.
    case Op::B:
    case Op::BL:
    case Op::BCOND:
    case Op::CBZ:
    case Op::CBNZ:
    case Op::BR:
    case Op::BLR:
    case Op::RET:
    case Op::BRAA:
    case Op::BRAB:
    case Op::BLRAA:
    case Op::BLRAB:
    case Op::RETAA:
    case Op::RETAB:
    case Op::PACIA:
    case Op::PACIB:
    case Op::PACDA:
    case Op::PACDB:
    case Op::AUTIA:
    case Op::AUTIB:
    case Op::AUTDA:
    case Op::AUTDB:
    case Op::PACGA:
    case Op::XPACI:
    case Op::XPACD:
    case Op::PACIASP:
    case Op::AUTIASP:
    case Op::PACIBSP:
    case Op::AUTIBSP:
    case Op::PACIA1716:
    case Op::PACIB1716:
    case Op::AUTIA1716:
    case Op::AUTIB1716:
    case Op::XPACLRI:
      return {true, false, false, true};
    // Hard terminators (SVC/HVC/BRK/HLT/ERET/MRS/MSR/DAIF*/ISB/SWP/Invalid):
    // end the block AND the trace.
    default:
      return {true, false, false, false};
  }
}

// ---------------------------------------------------------------------------
// Decoded instruction
// ---------------------------------------------------------------------------

struct Inst {
  Op op = Op::Invalid;
  uint8_t rd = 0;        ///< destination / transfer register (rt)
  uint8_t rn = 0;        ///< first source / base / branch target
  uint8_t rm = 0;        ///< second source / rt2 / PAuth branch modifier
  Cond cond = Cond::AL;  ///< BCOND only
  uint8_t hw = 0;        ///< MOVZ/MOVK/MOVN 16-bit chunk index (0..3)
  uint8_t lsb = 0;       ///< bitfield lsb
  uint8_t width = 0;     ///< bitfield width
  SysReg sysreg = SysReg::SCTLR_EL1;
  int64_t imm = 0;  ///< immediate; branch offsets in *bytes*, already scaled

  friend bool operator==(const Inst&, const Inst&) = default;
};

/// Encode to a 32-bit word. Throws camo::Error on out-of-range fields.
uint32_t encode(const Inst& inst);

/// Decode a 32-bit word. Unknown opcodes yield op == Op::Invalid.
Inst decode(uint32_t word);

/// Human-readable disassembly ("pacib lr, x16"); addr resolves PC-relative
/// targets.
std::string disasm(const Inst& inst, uint64_t addr = 0);
std::string disasm_word(uint32_t word, uint64_t addr = 0);

/// Register name in operand position ("x9", "sp", "xzr", "lr", "fp").
std::string reg_name(uint8_t r, bool sp_context = false);

}  // namespace camo::isa
