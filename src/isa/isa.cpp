#include "isa/isa.h"

#include <array>

#include "support/bits.h"
#include "support/error.h"
#include "support/format.h"

namespace camo::isa {

namespace {

struct OpInfo {
  const char* name;
  Format format;
};

constexpr size_t kOpCount = static_cast<size_t>(Op::kCount);

constexpr std::array<OpInfo, kOpCount> make_op_table() {
  std::array<OpInfo, kOpCount> t{};
  auto set = [&](Op op, const char* name, Format f) {
    t[static_cast<size_t>(op)] = OpInfo{name, f};
  };
  set(Op::Invalid, "<invalid>", Format::None);
  set(Op::MOVZ, "movz", Format::MovW);
  set(Op::MOVK, "movk", Format::MovW);
  set(Op::MOVN, "movn", Format::MovW);
  set(Op::ADD, "add", Format::R3);
  set(Op::SUB, "sub", Format::R3);
  set(Op::ADDS, "adds", Format::R3);
  set(Op::SUBS, "subs", Format::R3);
  set(Op::AND, "and", Format::R3);
  set(Op::ORR, "orr", Format::R3);
  set(Op::EOR, "eor", Format::R3);
  set(Op::MUL, "mul", Format::R3);
  set(Op::UDIV, "udiv", Format::R3);
  set(Op::LSLV, "lslv", Format::R3);
  set(Op::LSRV, "lsrv", Format::R3);
  set(Op::ADDI, "add", Format::RI);
  set(Op::SUBI, "sub", Format::RI);
  set(Op::ADDSI, "adds", Format::RI);
  set(Op::SUBSI, "subs", Format::RI);
  set(Op::ANDI, "and", Format::RI);
  set(Op::ORRI, "orr", Format::RI);
  set(Op::EORI, "eor", Format::RI);
  set(Op::LSLI, "lsl", Format::Shift);
  set(Op::LSRI, "lsr", Format::Shift);
  set(Op::ASRI, "asr", Format::Shift);
  set(Op::BFI, "bfi", Format::BitF);
  set(Op::UBFX, "ubfx", Format::BitF);
  set(Op::ADR, "adr", Format::Adr);
  set(Op::LDR, "ldr", Format::Mem);
  set(Op::STR, "str", Format::Mem);
  set(Op::LDRB, "ldrb", Format::Mem);
  set(Op::STRB, "strb", Format::Mem);
  set(Op::LDP, "ldp", Format::MemP);
  set(Op::STP, "stp", Format::MemP);
  set(Op::LDP_POST, "ldp", Format::MemP);
  set(Op::STP_PRE, "stp", Format::MemP);
  set(Op::B, "b", Format::Branch);
  set(Op::BL, "bl", Format::Branch);
  set(Op::BCOND, "b.", Format::BCond);
  set(Op::CBZ, "cbz", Format::CmpBr);
  set(Op::CBNZ, "cbnz", Format::CmpBr);
  set(Op::BR, "br", Format::BReg);
  set(Op::BLR, "blr", Format::BReg);
  set(Op::RET, "ret", Format::BReg);
  set(Op::BRAA, "braa", Format::BReg);
  set(Op::BRAB, "brab", Format::BReg);
  set(Op::BLRAA, "blraa", Format::BReg);
  set(Op::BLRAB, "blrab", Format::BReg);
  set(Op::RETAA, "retaa", Format::None);
  set(Op::RETAB, "retab", Format::None);
  set(Op::MRS, "mrs", Format::Sys);
  set(Op::MSR, "msr", Format::Sys);
  set(Op::SVC, "svc", Format::Imm16);
  set(Op::HVC, "hvc", Format::Imm16);
  set(Op::BRK, "brk", Format::Imm16);
  set(Op::HLT, "hlt", Format::Imm16);
  set(Op::ERET, "eret", Format::None);
  set(Op::DAIFSET, "msr daifset, #2 //", Format::None);
  set(Op::DAIFCLR, "msr daifclr, #2 //", Format::None);
  set(Op::ISB, "isb", Format::None);
  set(Op::NOP, "nop", Format::None);
  set(Op::PACIA, "pacia", Format::Pac);
  set(Op::PACIB, "pacib", Format::Pac);
  set(Op::PACDA, "pacda", Format::Pac);
  set(Op::PACDB, "pacdb", Format::Pac);
  set(Op::AUTIA, "autia", Format::Pac);
  set(Op::AUTIB, "autib", Format::Pac);
  set(Op::AUTDA, "autda", Format::Pac);
  set(Op::AUTDB, "autdb", Format::Pac);
  set(Op::PACGA, "pacga", Format::R3);
  set(Op::XPACI, "xpaci", Format::Pac);
  set(Op::XPACD, "xpacd", Format::Pac);
  set(Op::PACIASP, "paciasp", Format::None);
  set(Op::AUTIASP, "autiasp", Format::None);
  set(Op::PACIBSP, "pacibsp", Format::None);
  set(Op::AUTIBSP, "autibsp", Format::None);
  set(Op::PACIA1716, "pacia1716", Format::None);
  set(Op::PACIB1716, "pacib1716", Format::None);
  set(Op::AUTIA1716, "autia1716", Format::None);
  set(Op::AUTIB1716, "autib1716", Format::None);
  set(Op::XPACLRI, "xpaclri", Format::None);
  set(Op::SWP, "swp", Format::R3);
  return t;
}

constexpr std::array<OpInfo, kOpCount> kOpTable = make_op_table();

const OpInfo& info(Op op) {
  const auto i = static_cast<size_t>(op);
  if (i >= kOpCount) fail("isa: bad opcode " + std::to_string(i));
  return kOpTable[i];
}

void check_range(int64_t v, int64_t lo, int64_t hi, const char* what) {
  if (v < lo || v > hi)
    fail(std::string("isa: ") + what + " out of range: " + std::to_string(v));
}

void check_reg(uint8_t r, const char* what) {
  if (r > kRegZrSp) fail(std::string("isa: bad register in ") + what);
}

}  // namespace

Format format_of(Op op) { return info(op).format; }
const char* op_name(Op op) { return info(op).name; }

bool is_hint_space(Op op) {
  switch (op) {
    case Op::NOP:
    case Op::PACIASP:
    case Op::AUTIASP:
    case Op::PACIBSP:
    case Op::AUTIBSP:
    case Op::PACIA1716:
    case Op::PACIB1716:
    case Op::AUTIA1716:
    case Op::AUTIB1716:
    case Op::XPACLRI:
    case Op::ISB:
      return true;
    default:
      return false;
  }
}

bool is_pauth(Op op) {
  switch (op) {
    case Op::PACIA:
    case Op::PACIB:
    case Op::PACDA:
    case Op::PACDB:
    case Op::AUTIA:
    case Op::AUTIB:
    case Op::AUTDA:
    case Op::AUTDB:
    case Op::PACGA:
    case Op::XPACI:
    case Op::XPACD:
    case Op::BRAA:
    case Op::BRAB:
    case Op::BLRAA:
    case Op::BLRAB:
    case Op::RETAA:
    case Op::RETAB:
    case Op::PACIASP:
    case Op::AUTIASP:
    case Op::PACIBSP:
    case Op::AUTIBSP:
    case Op::PACIA1716:
    case Op::PACIB1716:
    case Op::AUTIA1716:
    case Op::AUTIB1716:
    case Op::XPACLRI:
      return true;
    default:
      return false;
  }
}

const char* sysreg_name(SysReg r) {
  switch (r) {
    case SysReg::APIAKeyLo: return "apiakeylo_el1";
    case SysReg::APIAKeyHi: return "apiakeyhi_el1";
    case SysReg::APIBKeyLo: return "apibkeylo_el1";
    case SysReg::APIBKeyHi: return "apibkeyhi_el1";
    case SysReg::APDAKeyLo: return "apdakeylo_el1";
    case SysReg::APDAKeyHi: return "apdakeyhi_el1";
    case SysReg::APDBKeyLo: return "apdbkeylo_el1";
    case SysReg::APDBKeyHi: return "apdbkeyhi_el1";
    case SysReg::APGAKeyLo: return "apgakeylo_el1";
    case SysReg::APGAKeyHi: return "apgakeyhi_el1";
    case SysReg::SCTLR_EL1: return "sctlr_el1";
    case SysReg::TTBR0_EL1: return "ttbr0_el1";
    case SysReg::TTBR1_EL1: return "ttbr1_el1";
    case SysReg::VBAR_EL1: return "vbar_el1";
    case SysReg::ESR_EL1: return "esr_el1";
    case SysReg::ELR_EL1: return "elr_el1";
    case SysReg::SPSR_EL1: return "spsr_el1";
    case SysReg::FAR_EL1: return "far_el1";
    case SysReg::CONTEXTIDR_EL1: return "contextidr_el1";
    case SysReg::TPIDR_EL1: return "tpidr_el1";
    case SysReg::SP_EL0: return "sp_el0";
    case SysReg::CNTVCT_EL0: return "cntvct_el0";
    case SysReg::CurrentEL: return "currentel";
    case SysReg::DAIF: return "daif";
    case SysReg::MPIDR_EL1: return "mpidr_el1";
    case SysReg::ISR_EL1: return "isr_el1";
    case SysReg::kCount: break;
  }
  return "<bad-sysreg>";
}

const char* cond_name(Cond c) {
  switch (c) {
    case Cond::EQ: return "eq";
    case Cond::NE: return "ne";
    case Cond::HS: return "hs";
    case Cond::LO: return "lo";
    case Cond::MI: return "mi";
    case Cond::PL: return "pl";
    case Cond::HI: return "hi";
    case Cond::LS: return "ls";
    case Cond::GE: return "ge";
    case Cond::LT: return "lt";
    case Cond::GT: return "gt";
    case Cond::LE: return "le";
    case Cond::AL: return "al";
  }
  return "<bad-cond>";
}

std::string reg_name(uint8_t r, bool sp_context) {
  if (r == kRegZrSp) return sp_context ? "sp" : "xzr";
  if (r == kRegFp) return "fp";
  if (r == kRegLr) return "lr";
  return "x" + std::to_string(r);
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

uint32_t encode(const Inst& inst) {
  const Format f = format_of(inst.op);
  uint64_t w = static_cast<uint64_t>(inst.op) << 24;
  switch (f) {
    case Format::None:
      break;
    case Format::MovW:
      check_reg(inst.rd, "movw");
      check_range(inst.imm, 0, 0xFFFF, "movw imm16");
      check_range(inst.hw, 0, 3, "movw hw");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.imm & 0xFFFF) << 5;
      w |= static_cast<uint64_t>(inst.hw) << 21;
      break;
    case Format::R3:
      check_reg(inst.rd, "r3");
      check_reg(inst.rn, "r3");
      check_reg(inst.rm, "r3");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.rm) << 10;
      break;
    case Format::RI:
      check_reg(inst.rd, "ri");
      check_reg(inst.rn, "ri");
      check_range(inst.imm, 0, 0xFFF, "imm12");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.imm & 0xFFF) << 10;
      break;
    case Format::Shift:
      check_reg(inst.rd, "shift");
      check_reg(inst.rn, "shift");
      check_range(inst.imm, 0, 63, "shift amount");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.imm & 0x3F) << 10;
      break;
    case Format::BitF:
      check_reg(inst.rd, "bitfield");
      check_reg(inst.rn, "bitfield");
      check_range(inst.lsb, 0, 63, "bitfield lsb");
      check_range(inst.width, 1, 64 - inst.lsb, "bitfield width");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.lsb) << 10;
      w |= static_cast<uint64_t>(inst.width & 0x3F) << 16;  // 64 encodes as 0
      break;
    case Format::Adr:
      check_reg(inst.rd, "adr");
      check_range(inst.imm, -(1 << 18), (1 << 18) - 1, "adr offset");
      w |= inst.rd;
      w |= (static_cast<uint64_t>(inst.imm) & mask(19)) << 5;
      break;
    case Format::Mem: {
      const int scale = (inst.op == Op::LDRB || inst.op == Op::STRB) ? 1 : 8;
      check_reg(inst.rd, "mem");
      check_reg(inst.rn, "mem");
      if (inst.imm % scale != 0) fail("isa: unscaled mem offset");
      check_range(inst.imm / scale, 0, 0xFFF, "mem offset");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>((inst.imm / scale) & 0xFFF) << 10;
      break;
    }
    case Format::MemP:
      check_reg(inst.rd, "memp");
      check_reg(inst.rn, "memp");
      check_reg(inst.rm, "memp");
      if (inst.imm % 8 != 0) fail("isa: unscaled pair offset");
      check_range(inst.imm / 8, -64, 63, "pair offset");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.rm) << 10;
      w |= (static_cast<uint64_t>(inst.imm / 8) & mask(7)) << 15;
      break;
    case Format::Branch:
      if (inst.imm % 4 != 0) fail("isa: unaligned branch offset");
      check_range(inst.imm / 4, -(1 << 23), (1 << 23) - 1, "branch offset");
      w |= (static_cast<uint64_t>(inst.imm / 4) & mask(24));
      break;
    case Format::BCond:
      if (inst.imm % 4 != 0) fail("isa: unaligned branch offset");
      check_range(inst.imm / 4, -(1 << 17), (1 << 17) - 1, "bcond offset");
      w |= static_cast<uint64_t>(inst.cond) & 0xF;
      w |= (static_cast<uint64_t>(inst.imm / 4) & mask(18)) << 4;
      break;
    case Format::CmpBr:
      check_reg(inst.rd, "cbz");
      if (inst.imm % 4 != 0) fail("isa: unaligned branch offset");
      check_range(inst.imm / 4, -(1 << 18), (1 << 18) - 1, "cbz offset");
      w |= inst.rd;
      w |= (static_cast<uint64_t>(inst.imm / 4) & mask(19)) << 5;
      break;
    case Format::BReg:
      check_reg(inst.rn, "breg");
      check_reg(inst.rm, "breg");
      w |= static_cast<uint64_t>(inst.rn) << 5;
      w |= static_cast<uint64_t>(inst.rm) << 10;
      break;
    case Format::Sys:
      check_reg(inst.rd, "sys");
      if (inst.sysreg >= SysReg::kCount) fail("isa: bad sysreg");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.sysreg) << 8;
      break;
    case Format::Pac:
      check_reg(inst.rd, "pac");
      check_reg(inst.rn, "pac");
      w |= inst.rd;
      w |= static_cast<uint64_t>(inst.rn) << 5;
      break;
    case Format::Imm16:
      check_range(inst.imm, 0, 0xFFFF, "imm16");
      w |= (static_cast<uint64_t>(inst.imm) & 0xFFFF) << 5;
      break;
  }
  return static_cast<uint32_t>(w);
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

Inst decode(uint32_t word) {
  Inst inst;
  const auto opnum = bits(word, 24, 8);
  if (opnum >= kOpCount || opnum == 0) return inst;  // Op::Invalid
  inst.op = static_cast<Op>(opnum);
  switch (format_of(inst.op)) {
    case Format::None:
      break;
    case Format::MovW:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.imm = static_cast<int64_t>(bits(word, 5, 16));
      inst.hw = static_cast<uint8_t>(bits(word, 21, 2));
      break;
    case Format::R3:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.rm = static_cast<uint8_t>(bits(word, 10, 5));
      break;
    case Format::RI:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.imm = static_cast<int64_t>(bits(word, 10, 12));
      break;
    case Format::Shift:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.imm = static_cast<int64_t>(bits(word, 10, 6));
      break;
    case Format::BitF:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.lsb = static_cast<uint8_t>(bits(word, 10, 6));
      inst.width = static_cast<uint8_t>(bits(word, 16, 6));
      if (inst.width == 0) inst.width = 64;  // 64 encodes as 0
      if (inst.width > 64 - inst.lsb) {      // malformed word
        inst = Inst{};
        return inst;
      }
      break;
    case Format::Adr:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.imm = sign_extend(bits(word, 5, 19), 19);
      break;
    case Format::Mem: {
      const int scale = (inst.op == Op::LDRB || inst.op == Op::STRB) ? 1 : 8;
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.imm = static_cast<int64_t>(bits(word, 10, 12)) * scale;
      break;
    }
    case Format::MemP:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.rm = static_cast<uint8_t>(bits(word, 10, 5));
      inst.imm = sign_extend(bits(word, 15, 7), 7) * 8;
      break;
    case Format::Branch:
      inst.imm = sign_extend(bits(word, 0, 24), 24) * 4;
      break;
    case Format::BCond:
      inst.cond = static_cast<Cond>(bits(word, 0, 4));
      inst.imm = sign_extend(bits(word, 4, 18), 18) * 4;
      break;
    case Format::CmpBr:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.imm = sign_extend(bits(word, 5, 19), 19) * 4;
      break;
    case Format::BReg:
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      inst.rm = static_cast<uint8_t>(bits(word, 10, 5));
      break;
    case Format::Sys: {
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      const auto sr = bits(word, 8, 8);
      if (sr >= static_cast<uint64_t>(SysReg::kCount)) {
        inst.op = Op::Invalid;
        return inst;
      }
      inst.sysreg = static_cast<SysReg>(sr);
      break;
    }
    case Format::Pac:
      inst.rd = static_cast<uint8_t>(bits(word, 0, 5));
      inst.rn = static_cast<uint8_t>(bits(word, 5, 5));
      break;
    case Format::Imm16:
      inst.imm = static_cast<int64_t>(bits(word, 5, 16));
      break;
  }
  return inst;
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

std::string disasm(const Inst& inst, uint64_t addr) {
  const char* name = op_name(inst.op);
  switch (format_of(inst.op)) {
    case Format::None:
      return name;
    case Format::MovW:
      return strformat("%s %s, #0x%llx, lsl #%d", name,
                       reg_name(inst.rd).c_str(),
                       static_cast<unsigned long long>(inst.imm),
                       inst.hw * 16);
    case Format::R3:
      return strformat("%s %s, %s, %s", name, reg_name(inst.rd).c_str(),
                       reg_name(inst.rn).c_str(), reg_name(inst.rm).c_str());
    case Format::RI: {
      const bool sp = inst.op == Op::ADDI || inst.op == Op::SUBI;
      return strformat("%s %s, %s, #%lld", name,
                       reg_name(inst.rd, sp).c_str(),
                       reg_name(inst.rn, sp).c_str(),
                       static_cast<long long>(inst.imm));
    }
    case Format::Shift:
      return strformat("%s %s, %s, #%lld", name, reg_name(inst.rd).c_str(),
                       reg_name(inst.rn).c_str(),
                       static_cast<long long>(inst.imm));
    case Format::BitF:
      return strformat("%s %s, %s, #%d, #%d", name, reg_name(inst.rd).c_str(),
                       reg_name(inst.rn).c_str(), inst.lsb, inst.width);
    case Format::Adr:
      return strformat("%s %s, 0x%llx", name, reg_name(inst.rd).c_str(),
                       static_cast<unsigned long long>(addr + static_cast<uint64_t>(inst.imm)));
    case Format::Mem:
      return strformat("%s %s, [%s, #%lld]", name, reg_name(inst.rd).c_str(),
                       reg_name(inst.rn, true).c_str(),
                       static_cast<long long>(inst.imm));
    case Format::MemP: {
      const char* suffix = inst.op == Op::STP_PRE  ? "!"
                           : inst.op == Op::LDP_POST ? " /*post*/"
                                                     : "";
      if (inst.op == Op::LDP_POST)
        return strformat("%s %s, %s, [%s], #%lld", name,
                         reg_name(inst.rd).c_str(), reg_name(inst.rm).c_str(),
                         reg_name(inst.rn, true).c_str(),
                         static_cast<long long>(inst.imm));
      return strformat("%s %s, %s, [%s, #%lld]%s", name,
                       reg_name(inst.rd).c_str(), reg_name(inst.rm).c_str(),
                       reg_name(inst.rn, true).c_str(),
                       static_cast<long long>(inst.imm), suffix);
    }
    case Format::Branch:
      return strformat("%s 0x%llx", name,
                       static_cast<unsigned long long>(addr + static_cast<uint64_t>(inst.imm)));
    case Format::BCond:
      return strformat("b.%s 0x%llx", cond_name(inst.cond),
                       static_cast<unsigned long long>(addr + static_cast<uint64_t>(inst.imm)));
    case Format::CmpBr:
      return strformat("%s %s, 0x%llx", name, reg_name(inst.rd).c_str(),
                       static_cast<unsigned long long>(addr + static_cast<uint64_t>(inst.imm)));
    case Format::BReg:
      if (inst.op == Op::RET) return inst.rn == kRegLr ? "ret" : strformat("ret %s", reg_name(inst.rn).c_str());
      if (inst.op == Op::BRAA || inst.op == Op::BRAB || inst.op == Op::BLRAA ||
          inst.op == Op::BLRAB)
        return strformat("%s %s, %s", name, reg_name(inst.rn).c_str(),
                         reg_name(inst.rm, true).c_str());
      return strformat("%s %s", name, reg_name(inst.rn).c_str());
    case Format::Sys:
      if (inst.op == Op::MRS)
        return strformat("mrs %s, %s", reg_name(inst.rd).c_str(),
                         sysreg_name(inst.sysreg));
      return strformat("msr %s, %s", sysreg_name(inst.sysreg),
                       reg_name(inst.rd).c_str());
    case Format::Pac:
      return strformat("%s %s, %s", name, reg_name(inst.rd).c_str(),
                       reg_name(inst.rn, true).c_str());
    case Format::Imm16:
      return strformat("%s #0x%llx", name,
                       static_cast<unsigned long long>(inst.imm));
  }
  return "<bad-format>";
}

std::string disasm_word(uint32_t word, uint64_t addr) {
  return disasm(decode(word), addr);
}

}  // namespace camo::isa
