// Static code verification (§4.1, §6.2.2).
//
// The kernel never needs to *read* the PAuth key registers, so the paper
// verifies — over the whole kernel image and over every loadable module at
// load time — that no MRS of a key register exists, and that no code could
// corrupt the PAuth enable flags in SCTLR_EL1 (which would silently disable
// the protection). "Because MRS system register read instructions
// immediately address the read register, key reads can be trivially found
// and rejected (e.g., when loading a module)."
//
// The verifier scans encoded instruction words. A region allow-list exempts
// the blessed early-boot code that legitimately configures SCTLR_EL1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "obj/object.h"

namespace camo::analysis {

enum class ViolationKind : uint8_t {
  KeyRegisterRead,    ///< MRS of an AP*Key* register
  SctlrWrite,         ///< MSR SCTLR_EL1 outside an allow-listed region
  KeyRegisterWrite,   ///< MSR of an AP*Key* register outside the key setter
};

const char* violation_name(ViolationKind k);

struct Violation {
  ViolationKind kind;
  uint64_t va;
  std::string detail;
};

struct VerifyResult {
  std::vector<Violation> violations;
  uint64_t words_scanned = 0;

  bool ok() const { return violations.empty(); }
  std::string describe() const;
};

class Verifier {
 public:
  /// Exempt [va, va+len) from a class of checks (the early-boot SCTLR setup
  /// and the XOM key-setter function).
  void allow_sctlr_writes(uint64_t va, uint64_t len);
  void allow_key_writes(uint64_t va, uint64_t len);

  /// Scan raw encoded words located at base_va.
  VerifyResult verify_words(const uint32_t* words, size_t count,
                            uint64_t base_va) const;

  /// Scan every text segment of a linked image.
  VerifyResult verify_image(const obj::Image& image) const;

 private:
  struct Range {
    uint64_t va, len;
    bool contains(uint64_t p) const { return p >= va && p < va + len; }
  };
  std::vector<Range> sctlr_allowed_;
  std::vector<Range> key_write_allowed_;
};

}  // namespace camo::analysis
