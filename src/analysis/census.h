// Function-pointer census (§5.3).
//
// The paper runs a Coccinelle semantic search over Linux 5.2 and finds
// "1285 function pointer members assigned at run-time, residing in 504
// different compound types", of which 229 types hold more than one pointer
// (and should be converted to read-only operations structures per kernel
// practice).
//
// This module reproduces the *methodology*: a small C-struct scanner that
// parses compound type declarations, classifies members (function pointer /
// data pointer / other) and cross-references run-time assignment sites
// (`obj->member = ...`), plus a deterministic synthetic "driver corpus"
// generator whose member distribution is calibrated to the paper's findings
// so the tool's output can be validated end-to-end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace camo::analysis {

struct MemberInfo {
  std::string type_name;
  std::string member_name;
  bool is_function_pointer = false;
  bool is_data_pointer = false;
  unsigned runtime_assignments = 0;
};

struct CensusResult {
  /// Compound types declaring at least one function-pointer member.
  unsigned types_with_fn_ptrs = 0;
  /// Function-pointer members with at least one run-time assignment
  /// (the paper's 1285).
  unsigned runtime_assigned_members = 0;
  /// Types containing such members (the paper's 504).
  unsigned types_with_runtime_members = 0;
  /// Of those, types with more than one such member (the paper's 229 —
  /// candidates for conversion to const operations structures).
  unsigned types_with_multiple = 0;
  /// Data-pointer members found (candidates for §4.5 DFI).
  unsigned data_ptr_members = 0;

  std::vector<MemberInfo> members;

  std::string summary() const;
};

/// Scan C-like source text: struct declarations + assignment sites.
CensusResult run_census(const std::string& source);

/// Options for the synthetic corpus.
struct CorpusSpec {
  uint64_t seed = 52;  ///< Linux 5.2 stands in as default seed
  unsigned single_ptr_types = 275;  ///< types with exactly 1 runtime fn ptr
  unsigned multi_ptr_types = 229;   ///< types with >1 (paper: 229)
  unsigned total_members = 1285;    ///< runtime-assigned fn ptr members
  unsigned const_ops_types = 300;   ///< well-behaved const ops tables
};

/// Generate the synthetic driver corpus (deterministic per spec).
std::string generate_driver_corpus(const CorpusSpec& spec);

}  // namespace camo::analysis
