#include "analysis/census.h"

#include <map>
#include <sstream>

#include "support/error.h"
#include "support/format.h"
#include "support/rng.h"

namespace camo::analysis {

namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Parse one member declaration line inside a struct body.
/// Recognizes:  ret (*name)(args);   |   type *name;   |   type name;
bool parse_member(std::string_view line, MemberInfo& out) {
  line = trim(line);
  if (line.empty() || line.back() != ';') return false;
  line.remove_suffix(1);

  const size_t fnptr = line.find("(*");
  if (fnptr != std::string_view::npos) {
    const size_t close = line.find(')', fnptr);
    if (close == std::string_view::npos) return false;
    // require a parameter list after the closing paren: ...)(...)
    const size_t params = line.find('(', close);
    if (params == std::string_view::npos) return false;
    out.member_name = std::string(trim(line.substr(fnptr + 2, close - fnptr - 2)));
    out.is_function_pointer = true;
    return !out.member_name.empty();
  }

  // plain member: name is the last identifier; pointer if a '*' precedes it
  size_t end = line.size();
  while (end > 0 && !is_ident_char(line[end - 1])) return false;
  size_t begin = end;
  while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
  if (begin == end) return false;
  out.member_name = std::string(line.substr(begin, end - begin));
  out.is_data_pointer = line.substr(0, begin).find('*') != std::string_view::npos;
  return true;
}

}  // namespace

CensusResult run_census(const std::string& source) {
  CensusResult result;

  // Pass 1: struct declarations.
  std::istringstream in(source);
  std::string line;
  std::string current_type;
  while (std::getline(in, line)) {
    const std::string_view lv = trim(line);
    if (current_type.empty()) {
      // "struct name {"
      if (lv.rfind("struct ", 0) == 0 && lv.find('{') != std::string_view::npos) {
        std::string_view rest = lv.substr(7);
        size_t end = 0;
        while (end < rest.size() && is_ident_char(rest[end])) ++end;
        current_type = std::string(rest.substr(0, end));
      }
      continue;
    }
    if (lv.rfind("};", 0) == 0 || lv == "}") {
      current_type.clear();
      continue;
    }
    MemberInfo m;
    if (parse_member(lv, m)) {
      m.type_name = current_type;
      result.members.push_back(std::move(m));
    }
  }

  // Pass 2: run-time assignment sites ("->member =" / ".member =").
  // Member names in the corpus are unique per (type, member), so a textual
  // match suffices — Coccinelle does this with type information instead.
  for (auto& m : result.members) {
    if (!m.is_function_pointer && !m.is_data_pointer) continue;
    for (const std::string& pat :
         {"->" + m.member_name + " =", "." + m.member_name + " ="}) {
      size_t pos = 0;
      while ((pos = source.find(pat, pos)) != std::string::npos) {
        // Exclude designated initializers (".x =" inside braces is counted
        // separately by checking the preceding non-space char).
        size_t back = pos;
        while (back > 0 &&
               (source[back - 1] == ' ' || source[back - 1] == '\t' ||
                source[back - 1] == '\n' || source[back - 1] == '\r'))
          --back;
        const bool initializer =
            pat[0] == '.' && back > 0 &&
            (source[back - 1] == '{' || source[back - 1] == ',');
        if (!initializer) ++m.runtime_assignments;
        pos += pat.size();
      }
    }
  }

  // Aggregate.
  std::map<std::string, unsigned> fn_types;        // type -> fn ptr members
  std::map<std::string, unsigned> runtime_types;   // type -> runtime members
  for (const auto& m : result.members) {
    if (m.is_data_pointer) ++result.data_ptr_members;
    if (!m.is_function_pointer) continue;
    ++fn_types[m.type_name];
    if (m.runtime_assignments > 0) {
      ++result.runtime_assigned_members;
      ++runtime_types[m.type_name];
    }
  }
  result.types_with_fn_ptrs = static_cast<unsigned>(fn_types.size());
  result.types_with_runtime_members = static_cast<unsigned>(runtime_types.size());
  for (const auto& [t, n] : runtime_types)
    if (n > 1) ++result.types_with_multiple;
  return result;
}

std::string CensusResult::summary() const {
  return strformat(
      "%u run-time-assigned function-pointer members in %u compound types "
      "(%u types with more than one; %u data-pointer members; %u types "
      "declare function pointers overall)",
      runtime_assigned_members, types_with_runtime_members,
      types_with_multiple, data_ptr_members, types_with_fn_ptrs);
}

// ---------------------------------------------------------------------------
// Corpus generator
// ---------------------------------------------------------------------------

std::string generate_driver_corpus(const CorpusSpec& spec) {
  if (spec.total_members < spec.single_ptr_types + 2 * spec.multi_ptr_types)
    fail("census corpus: total_members too small for the type split");
  Xoshiro256 rng(spec.seed);
  std::ostringstream os;
  os << "/* synthetic driver corpus: generated, seed " << spec.seed << " */\n";

  unsigned member_serial = 0;
  std::vector<std::pair<std::string, std::vector<std::string>>> assign_plan;

  auto emit_type = [&](unsigned index, unsigned fn_ptrs, bool runtime) {
    const std::string tname = strformat("drv_state_%u", index);
    os << "struct " << tname << " {\n";
    os << "  int status;\n";
    os << "  void *priv_" << index << ";\n";
    std::vector<std::string> members;
    for (unsigned i = 0; i < fn_ptrs; ++i) {
      const std::string mname = strformat("cb_%u", member_serial++);
      os << "  int (*" << mname << ")(struct " << tname << " *, int);\n";
      members.push_back(mname);
    }
    os << "  unsigned long flags_" << index << ";\n";
    os << "};\n\n";
    if (runtime) assign_plan.emplace_back(tname, std::move(members));
  };

  // Distribute the runtime-assigned members: single-ptr types get 1 each,
  // multi-ptr types share the remainder (each at least 2).
  unsigned index = 0;
  for (unsigned i = 0; i < spec.single_ptr_types; ++i) emit_type(index++, 1, true);
  unsigned remaining = spec.total_members - spec.single_ptr_types;
  for (unsigned i = 0; i < spec.multi_ptr_types; ++i) {
    const unsigned left_types = spec.multi_ptr_types - i;
    const unsigned max_extra = remaining - 2 * left_types;
    const unsigned take =
        2 + (i + 1 == spec.multi_ptr_types
                 ? max_extra
                 : static_cast<unsigned>(rng.next_below(
                       std::min<uint64_t>(max_extra, 5) + 1)));
    emit_type(index++, take, true);
    remaining -= take;
  }

  // Well-behaved const operations structures (not runtime-assigned).
  for (unsigned i = 0; i < spec.const_ops_types; ++i) {
    const std::string tname = strformat("good_ops_%u", i);
    os << "struct " << tname << " {\n";
    os << "  long (*read_" << i << ")(void *, char *, unsigned long);\n";
    os << "  long (*write_" << i << ")(void *, const char *, unsigned long);\n";
    os << "};\n";
    os << "static const struct " << tname << " ops_" << i << " = {\n";
    os << "  .read_" << i << " = generic_read,\n";
    os << "  .write_" << i << " = generic_write,\n";
    os << "};\n\n";
  }

  // Run-time assignment sites, shuffled across "probe functions".
  os << "/* --- driver probe functions --- */\n";
  for (const auto& [tname, members] : assign_plan) {
    os << "static int " << tname << "_probe(struct " << tname << " *st) {\n";
    for (const auto& m : members)
      os << "  st->" << m << " = " << tname << "_handle_" << m << ";\n";
    os << "  return 0;\n}\n\n";
  }
  return os.str();
}

}  // namespace camo::analysis
