#include "analysis/verifier.h"

#include <cstring>
#include <sstream>

#include "support/format.h"

namespace camo::analysis {

using isa::Inst;
using isa::Op;
using isa::SysReg;

const char* violation_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::KeyRegisterRead: return "pauth-key-read";
    case ViolationKind::SctlrWrite: return "sctlr-write";
    case ViolationKind::KeyRegisterWrite: return "pauth-key-write";
  }
  return "<bad-violation>";
}

std::string VerifyResult::describe() const {
  std::ostringstream os;
  os << "scanned " << words_scanned << " words, " << violations.size()
     << " violation(s)";
  for (const auto& v : violations)
    os << "\n  " << violation_name(v.kind) << " at " << hex(v.va) << ": "
       << v.detail;
  return os.str();
}

void Verifier::allow_sctlr_writes(uint64_t va, uint64_t len) {
  sctlr_allowed_.push_back({va, len});
}

void Verifier::allow_key_writes(uint64_t va, uint64_t len) {
  key_write_allowed_.push_back({va, len});
}

VerifyResult Verifier::verify_words(const uint32_t* words, size_t count,
                                    uint64_t base_va) const {
  VerifyResult result;
  result.words_scanned = count;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t va = base_va + i * 4;
    const Inst inst = isa::decode(words[i]);
    if (inst.op == Op::MRS && isa::is_pauth_key_reg(inst.sysreg)) {
      result.violations.push_back(
          {ViolationKind::KeyRegisterRead, va, isa::disasm(inst, va)});
    } else if (inst.op == Op::MSR && inst.sysreg == SysReg::SCTLR_EL1) {
      bool allowed = false;
      for (const auto& r : sctlr_allowed_) allowed |= r.contains(va);
      if (!allowed)
        result.violations.push_back(
            {ViolationKind::SctlrWrite, va, isa::disasm(inst, va)});
    } else if (inst.op == Op::MSR && isa::is_pauth_key_reg(inst.sysreg)) {
      bool allowed = false;
      for (const auto& r : key_write_allowed_) allowed |= r.contains(va);
      if (!allowed)
        result.violations.push_back(
            {ViolationKind::KeyRegisterWrite, va, isa::disasm(inst, va)});
    }
  }
  return result;
}

VerifyResult Verifier::verify_image(const obj::Image& image) const {
  VerifyResult total;
  for (const auto& seg : image.segments) {
    if (seg.kind != obj::SectionKind::Text) continue;
    std::vector<uint32_t> words(seg.bytes.size() / 4);
    std::memcpy(words.data(), seg.bytes.data(), words.size() * 4);
    auto r = verify_words(words.data(), words.size(), seg.va);
    total.words_scanned += r.words_scanned;
    total.violations.insert(total.violations.end(), r.violations.begin(),
                            r.violations.end());
  }
  return total;
}

}  // namespace camo::analysis
