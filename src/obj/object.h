// Object format and static linker.
//
// A Program collects functions (FunctionBuilder bodies), data symbols in
// .rodata/.data/.bss, data-to-symbol pointer relocations, and — the paper's
// §4.6 contribution — declarations of *statically initialised signed
// pointers*. The linker lays sections out, resolves relocations and emits an
// Image whose .rodata contains a serialized `.pauth_init` table: one entry
// per static signed pointer, giving the slot address, the containing object
// address, the PAuth key and the 16-bit type·member constant. At early boot
// (and at module load) guest code walks this table and signs each pointer in
// place, exactly like the altered DECLARE_WORK macros in the paper.
//
// The same Program/Image machinery links both the kernel image and loadable
// kernel modules (LKMs); modules are linked at a base chosen at load time.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "assembler/builder.h"
#include "cpu/pauth.h"

namespace camo::obj {

enum class SectionKind : uint8_t { Text, RoData, Data, Bss };

const char* section_name(SectionKind k);

/// One entry of the .pauth_init table (§4.6). 24 bytes when serialized:
///   u64 slot_va | u64 container_va | u16 type_id | u8 key | 5 pad bytes.
struct PauthInitEntry {
  uint64_t slot_va = 0;
  uint64_t container_va = 0;
  uint16_t type_id = 0;
  cpu::PacKey key = cpu::PacKey::DB;

  static constexpr uint64_t kSerializedSize = 24;
};

/// A linked, position-fixed image.
struct Image {
  struct Segment {
    SectionKind kind = SectionKind::Text;
    uint64_t va = 0;
    std::vector<uint8_t> bytes;  ///< zero-filled for Bss
  };

  std::vector<Segment> segments;
  std::unordered_map<std::string, uint64_t> symbols;
  /// Byte size of each function (text symbols only).
  std::unordered_map<std::string, uint64_t> function_sizes;
  std::vector<PauthInitEntry> pauth_init;  ///< host-side view of the table
  uint64_t pauth_table_va = 0;             ///< guest address of the table
  uint64_t pauth_table_count = 0;

  uint64_t symbol(const std::string& name) const;
  bool has_symbol(const std::string& name) const;
  /// [start, end) VA range of the whole image.
  uint64_t base_va() const;
  uint64_t end_va() const;
};

class Program {
 public:
  /// Add a function (text). Returns a stable reference for emitting its body.
  assembler::FunctionBuilder& add_function(const std::string& name);
  /// Prepend an already-built function (the bootloader inserts the key
  /// setter first so it lands page-aligned at the image base).
  void add_function_front(assembler::FunctionBuilder f);
  /// Access all functions (the instrumentation passes iterate these).
  std::deque<assembler::FunctionBuilder>& functions() { return funcs_; }
  const std::deque<assembler::FunctionBuilder>& functions() const {
    return funcs_;
  }
  assembler::FunctionBuilder* find_function(const std::string& name);

  /// Add initialised data; returns nothing (address known at link time).
  void add_rodata(const std::string& name, std::vector<uint8_t> bytes,
                  uint64_t align = 8);
  void add_data(const std::string& name, std::vector<uint8_t> bytes,
                uint64_t align = 8);
  void add_bss(const std::string& name, uint64_t size, uint64_t align = 8);

  /// Convenience: data symbol of `count` zero u64 slots.
  void add_data_u64(const std::string& name, std::vector<uint64_t> values);
  void add_rodata_u64(const std::string& name, std::vector<uint64_t> values);

  /// Place the VA of `target`(+addend) into the 64-bit slot at sym+off
  /// (Abs64 relocation; how ops tables reference their functions).
  void add_abs64(const std::string& sym, int64_t off,
                 const std::string& target, int64_t addend = 0);

  /// Declare that the pointer slot at sym+member_off was statically
  /// initialised and must be signed at boot/load (→ one .pauth_init entry).
  /// The modifier container address is the symbol itself.
  void declare_signed_ptr(const std::string& sym, int64_t member_off,
                          uint16_t type_id, cpu::PacKey key);

  struct DataSymbol {
    std::string name;
    SectionKind kind;
    std::vector<uint8_t> bytes;
    uint64_t bss_size = 0;
    uint64_t align = 8;
  };
  struct Abs64Reloc {
    std::string sym;
    int64_t off;
    std::string target;
    int64_t addend;
  };
  struct SignedPtrDecl {
    std::string sym;
    int64_t member_off;
    uint16_t type_id;
    cpu::PacKey key;
  };

  const std::vector<DataSymbol>& data_symbols() const { return data_; }
  const std::vector<SignedPtrDecl>& signed_ptrs() const { return signed_; }

 private:
  friend class Linker;
  std::deque<assembler::FunctionBuilder> funcs_;
  std::vector<DataSymbol> data_;
  std::vector<Abs64Reloc> abs64_;
  std::vector<SignedPtrDecl> signed_;
};

/// Disassemble one function of a linked image, annotating branch targets
/// and MOVZ/MOVK-materialized addresses with symbol names (objdump-style).
std::string disassemble_function(const Image& image, const std::string& name);

/// Disassemble every function (sorted by address).
std::string disassemble_image(const Image& image);

/// Static linker: lays out Text → RoData (including the serialized
/// .pauth_init table) → Data → Bss from `base_va`, page-aligning section
/// starts, then resolves every relocation.
class Linker {
 public:
  /// All functions must be lowered (compiler::instrument run) beforehand.
  /// `extern_symbols` resolves references to symbols outside this program
  /// (modules linking against kernel exports). Throws camo::Error on
  /// unresolved symbols, duplicate definitions or out-of-range relocations.
  static Image link(
      const Program& prog, uint64_t base_va,
      const std::unordered_map<std::string, uint64_t>& extern_symbols = {});
};

}  // namespace camo::obj
