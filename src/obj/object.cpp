#include "obj/object.h"

#include <algorithm>
#include <cstring>

#include "support/bits.h"
#include "support/error.h"
#include "support/format.h"

namespace camo::obj {

using assembler::RelocKind;

const char* section_name(SectionKind k) {
  switch (k) {
    case SectionKind::Text: return ".text";
    case SectionKind::RoData: return ".rodata";
    case SectionKind::Data: return ".data";
    case SectionKind::Bss: return ".bss";
  }
  return "<bad-section>";
}

uint64_t Image::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) fail("image: unknown symbol '" + name + "'");
  return it->second;
}

bool Image::has_symbol(const std::string& name) const {
  return symbols.count(name) != 0;
}

uint64_t Image::base_va() const {
  uint64_t lo = ~uint64_t{0};
  for (const auto& s : segments) lo = std::min(lo, s.va);
  return lo;
}

uint64_t Image::end_va() const {
  uint64_t hi = 0;
  for (const auto& s : segments) hi = std::max(hi, s.va + s.bytes.size());
  return hi;
}

assembler::FunctionBuilder& Program::add_function(const std::string& name) {
  funcs_.emplace_back(name);
  return funcs_.back();
}

void Program::add_function_front(assembler::FunctionBuilder f) {
  funcs_.push_front(std::move(f));
}

assembler::FunctionBuilder* Program::find_function(const std::string& name) {
  for (auto& f : funcs_)
    if (f.name() == name) return &f;
  return nullptr;
}

void Program::add_rodata(const std::string& name, std::vector<uint8_t> bytes,
                         uint64_t align) {
  data_.push_back({name, SectionKind::RoData, std::move(bytes), 0, align});
}

void Program::add_data(const std::string& name, std::vector<uint8_t> bytes,
                       uint64_t align) {
  data_.push_back({name, SectionKind::Data, std::move(bytes), 0, align});
}

void Program::add_bss(const std::string& name, uint64_t size, uint64_t align) {
  data_.push_back({name, SectionKind::Bss, {}, size, align});
}

namespace {
std::vector<uint8_t> to_bytes(const std::vector<uint64_t>& values) {
  std::vector<uint8_t> bytes(values.size() * 8);
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}
}  // namespace

void Program::add_data_u64(const std::string& name,
                           std::vector<uint64_t> values) {
  add_data(name, to_bytes(values), 8);
}

void Program::add_rodata_u64(const std::string& name,
                             std::vector<uint64_t> values) {
  add_rodata(name, to_bytes(values), 8);
}

void Program::add_abs64(const std::string& sym, int64_t off,
                        const std::string& target, int64_t addend) {
  abs64_.push_back({sym, off, target, addend});
}

void Program::declare_signed_ptr(const std::string& sym, int64_t member_off,
                                 uint16_t type_id, cpu::PacKey key) {
  signed_.push_back({sym, member_off, type_id, key});
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

namespace {

const Image::Segment* text_segment_for(const Image& img, uint64_t va) {
  for (const auto& s : img.segments)
    if (s.kind == SectionKind::Text && va >= s.va &&
        va < s.va + s.bytes.size())
      return &s;
  return nullptr;
}

}  // namespace

std::string disassemble_function(const Image& image, const std::string& name) {
  const uint64_t va = image.symbol(name);
  const auto it = image.function_sizes.find(name);
  if (it == image.function_sizes.end())
    fail("disassemble: '" + name + "' is not a function");
  const Image::Segment* seg = text_segment_for(image, va);
  if (seg == nullptr) fail("disassemble: function outside text");

  // Reverse symbol map for branch-target annotation.
  std::unordered_map<uint64_t, std::string> by_va;
  for (const auto& [sym, addr] : image.symbols) by_va.emplace(addr, sym);

  std::string out = name + ":\n";
  for (uint64_t off = 0; off < it->second; off += 4) {
    const uint64_t pc = va + off;
    uint32_t word;
    std::memcpy(&word, &seg->bytes[pc - seg->va], 4);
    const isa::Inst inst = isa::decode(word);
    std::string line = strformat("  %llx:  %08x  %s",
                                 static_cast<unsigned long long>(pc), word,
                                 isa::disasm(inst, pc).c_str());
    if (inst.op == isa::Op::B || inst.op == isa::Op::BL) {
      const auto t = by_va.find(pc + static_cast<uint64_t>(inst.imm));
      if (t != by_va.end()) line += "  <" + t->second + ">";
    }
    out += line + "\n";
  }
  return out;
}

std::string disassemble_image(const Image& image) {
  std::vector<std::pair<uint64_t, std::string>> fns;
  for (const auto& [name, size] : image.function_sizes)
    fns.emplace_back(image.symbol(name), name);
  std::sort(fns.begin(), fns.end());
  std::string out;
  for (const auto& [va, name] : fns) {
    out += disassemble_function(image, name);
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Linker
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kPage = 4096;
constexpr const char* kPauthTableSym = "__pauth_init_table";

void define(std::unordered_map<std::string, uint64_t>& syms,
            const std::string& name, uint64_t va) {
  if (!syms.emplace(name, va).second)
    fail("link: duplicate symbol '" + name + "'");
}

void patch_insn(std::vector<uint8_t>& text, uint64_t off, RelocKind kind,
                uint64_t site_va, uint64_t target) {
  uint32_t word;
  std::memcpy(&word, &text[off], 4);
  isa::Inst inst = isa::decode(word);
  switch (kind) {
    case RelocKind::Branch26:
    case RelocKind::Adr19: {
      const int64_t delta =
          static_cast<int64_t>(target) - static_cast<int64_t>(site_va);
      inst.imm = delta;
      break;
    }
    case RelocKind::Abs16Hw0:
      inst.imm = static_cast<int64_t>(bits(target, 0, 16));
      break;
    case RelocKind::Abs16Hw1:
      inst.imm = static_cast<int64_t>(bits(target, 16, 16));
      break;
    case RelocKind::Abs16Hw2:
      inst.imm = static_cast<int64_t>(bits(target, 32, 16));
      break;
    case RelocKind::Abs16Hw3:
      inst.imm = static_cast<int64_t>(bits(target, 48, 16));
      break;
    case RelocKind::Abs64:
      fail("link: Abs64 reloc in text");
  }
  word = isa::encode(inst);  // throws if out of range
  std::memcpy(&text[off], &word, 4);
}

}  // namespace

Image Linker::link(
    const Program& prog, uint64_t base_va,
    const std::unordered_map<std::string, uint64_t>& extern_symbols) {
  Image img;
  std::unordered_map<std::string, uint64_t> syms;

  // ---- assemble functions & lay out .text ----
  struct FnOut {
    uint64_t va;
    assembler::AssembledFunction out;
  };
  std::vector<FnOut> fns;
  uint64_t text_va = base_va;
  for (const auto& f : prog.funcs_) {
    auto out = f.assemble();
    define(syms, f.name(), text_va);
    const uint64_t size = out.words.size() * 4;
    img.function_sizes[f.name()] = size;
    fns.push_back({text_va, std::move(out)});
    text_va += align_up(size, 8);
  }
  const uint64_t text_size = text_va - base_va;

  // ---- lay out data sections ----
  auto layout_section = [&](SectionKind kind, uint64_t start) {
    uint64_t va = start;
    for (const auto& d : prog.data_) {
      if (d.kind != kind) continue;
      va = align_up(va, d.align);
      define(syms, d.name, va);
      va += d.kind == SectionKind::Bss ? d.bss_size : d.bytes.size();
    }
    return va;
  };

  const uint64_t rodata_va = align_up(base_va + text_size, kPage);
  uint64_t rodata_end = layout_section(SectionKind::RoData, rodata_va);
  // The serialized .pauth_init table lives at the end of .rodata.
  rodata_end = align_up(rodata_end, 8);
  const uint64_t pauth_table_va = rodata_end;
  rodata_end += prog.signed_.size() * PauthInitEntry::kSerializedSize;
  define(syms, kPauthTableSym, pauth_table_va);

  const uint64_t data_va = align_up(rodata_end, kPage);
  const uint64_t data_end = layout_section(SectionKind::Data, data_va);
  const uint64_t bss_va = align_up(data_end, kPage);
  const uint64_t bss_end = layout_section(SectionKind::Bss, bss_va);

  auto resolve = [&](const std::string& name) -> uint64_t {
    auto it = syms.find(name);
    if (it != syms.end()) return it->second;
    auto ext = extern_symbols.find(name);
    if (ext != extern_symbols.end()) return ext->second;
    fail("link: unresolved symbol '" + name + "'");
  };

  // ---- emit .text with relocations applied ----
  Image::Segment text{SectionKind::Text, base_va, {}};
  text.bytes.resize(text_size, 0);
  for (const auto& fn : fns) {
    const uint64_t off = fn.va - base_va;
    std::memcpy(&text.bytes[off], fn.out.words.data(),
                fn.out.words.size() * 4);
    for (const auto& r : fn.out.relocs)
      patch_insn(text.bytes, off + r.offset, r.kind, fn.va + r.offset,
                 resolve(r.sym) + static_cast<uint64_t>(r.addend));
  }
  img.segments.push_back(std::move(text));

  // ---- emit data segments ----
  auto emit_section = [&](SectionKind kind, uint64_t start, uint64_t end) {
    if (end == start) return;
    Image::Segment seg{kind, start, {}};
    seg.bytes.resize(end - start, 0);
    for (const auto& d : prog.data_) {
      if (d.kind != kind || d.kind == SectionKind::Bss) continue;
      const uint64_t off = syms.at(d.name) - start;
      std::memcpy(&seg.bytes[off], d.bytes.data(), d.bytes.size());
    }
    img.segments.push_back(std::move(seg));
  };
  emit_section(SectionKind::RoData, rodata_va, rodata_end);
  emit_section(SectionKind::Data, data_va, data_end);
  if (bss_end != bss_va) {
    Image::Segment bss{SectionKind::Bss, bss_va, {}};
    bss.bytes.resize(bss_end - bss_va, 0);
    img.segments.push_back(std::move(bss));
  }

  // ---- apply Abs64 data relocations ----
  auto segment_for = [&](uint64_t va) -> Image::Segment& {
    for (auto& s : img.segments)
      if (va >= s.va && va + 8 <= s.va + s.bytes.size()) return s;
    fail("link: Abs64 target slot outside image: " + hex_short(va));
  };
  for (const auto& r : prog.abs64_) {
    const uint64_t slot = resolve(r.sym) + static_cast<uint64_t>(r.off);
    const uint64_t value = resolve(r.target) + static_cast<uint64_t>(r.addend);
    auto& seg = segment_for(slot);
    std::memcpy(&seg.bytes[slot - seg.va], &value, 8);
  }

  // ---- build and serialize the .pauth_init table (§4.6) ----
  if (!prog.signed_.empty()) {
  auto& ro = [&]() -> Image::Segment& {
    for (auto& s : img.segments)
      if (s.kind == SectionKind::RoData) return s;
    fail("link: missing rodata segment for pauth table");
  }();
  uint64_t cursor = pauth_table_va;
  for (const auto& s : prog.signed_) {
    PauthInitEntry e;
    e.container_va = resolve(s.sym);
    e.slot_va = e.container_va + static_cast<uint64_t>(s.member_off);
    e.type_id = s.type_id;
    e.key = s.key;
    img.pauth_init.push_back(e);

    uint8_t* p = &ro.bytes[cursor - ro.va];
    std::memcpy(p + 0, &e.slot_va, 8);
    std::memcpy(p + 8, &e.container_va, 8);
    std::memcpy(p + 16, &e.type_id, 2);
    p[18] = static_cast<uint8_t>(e.key);
    cursor += PauthInitEntry::kSerializedSize;
  }
  }
  img.pauth_table_va = pauth_table_va;
  img.pauth_table_count = prog.signed_.size();

  img.symbols = std::move(syms);
  return img;
}

}  // namespace camo::obj
