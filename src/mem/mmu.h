// Two-stage address translation (VMSAv8 model).
//
// Stage 1 maps virtual pages to physical pages with per-EL permissions; bit
// 55 of the VA selects the user (TTBR0) or kernel (TTBR1) half. Stage 2 is a
// hypervisor-owned permission overlay keyed by physical page — this is what
// makes execute-only memory possible at EL1 (Appendix A.2): stage-1 EL1
// mappings are implicitly readable, so the hypervisor removes the read
// permission in stage 2 for the key-setter page.
//
// Translation tables are host-side structures owned by the hypervisor rather
// than guest-memory-resident tables; the paper's threat model locks all MMU
// control away from EL1 anyway (§3.1), so EL1 never walks or edits tables —
// it requests changes via hypervisor calls.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/phys.h"
#include "mem/valayout.h"

namespace camo::mem {

enum class Access : uint8_t { Fetch, Read, Write };
enum class El : uint8_t { El0 = 0, El1 = 1, El2 = 2 };

enum class FaultKind : uint8_t {
  None,
  AddressSize,   ///< non-canonical VA (this is how PAC poisoning faults)
  Translation,   ///< no stage-1 mapping
  Permission,    ///< stage-1 permission denied
  Stage2,        ///< hypervisor (stage-2) permission denied
};

const char* fault_name(FaultKind k);

/// Stage-1 page permissions, separately for privileged and user access.
struct PagePerms {
  bool r_el1 = false, w_el1 = false, x_el1 = false;
  bool r_el0 = false, w_el0 = false, x_el0 = false;

  static PagePerms kernel_text() { return {true, false, true, false, false, false}; }
  static PagePerms kernel_ro() { return {true, false, false, false, false, false}; }
  static PagePerms kernel_rw() { return {true, true, false, false, false, false}; }
  static PagePerms user_text() { return {true, false, false, true, false, true}; }
  static PagePerms user_ro() { return {true, false, false, true, false, false}; }
  static PagePerms user_rw() { return {true, true, false, true, true, false}; }
};

struct PageEntry {
  uint64_t pa_page = 0;
  PagePerms perms;
};

/// One half (user or kernel) of a stage-1 address space.
class Stage1Map {
 public:
  /// Map the 4 KiB page containing va to the page containing pa.
  void map_page(uint64_t va, uint64_t pa, PagePerms perms);
  /// Map a contiguous range (va, pa aligned, len rounded up to pages).
  void map_range(uint64_t va, uint64_t pa, uint64_t len, PagePerms perms);
  void unmap_page(uint64_t va);
  void protect_range(uint64_t va, uint64_t len, PagePerms perms);

  const PageEntry* lookup(uint64_t va) const;
  size_t page_count() const { return pages_.size(); }

 private:
  static uint64_t key(uint64_t va) { return va >> VaLayout::kPageShift; }
  std::unordered_map<uint64_t, PageEntry> pages_;
};

/// Stage-2 permission overlay, keyed by physical page. Pages without an
/// entry get full access (the common case). The hypervisor is the only
/// writer.
class Stage2Map {
 public:
  struct Perms {
    bool read = true, write = true, exec = true;
  };

  void restrict_page(uint64_t pa, Perms p);
  void restrict_range(uint64_t pa, uint64_t len, Perms p);
  /// Execute-only: no read, no write, fetch allowed.
  static Perms xom() { return {false, false, true}; }
  /// Read-only (e.g. locking kernel text/rodata against the write primitive).
  static Perms read_only() { return {true, false, true}; }

  Perms lookup(uint64_t pa) const;

 private:
  std::unordered_map<uint64_t, Perms> pages_;
};

struct TranslateResult {
  FaultKind fault = FaultKind::None;
  uint64_t pa = 0;

  bool ok() const { return fault == FaultKind::None; }
};

/// The MMU: combines the VA layout, the two stage-1 halves and the stage-2
/// overlay. The CPU performs every access through it.
class Mmu {
 public:
  Mmu(PhysicalMemory& phys, VaLayout layout) : phys_(&phys), layout_(layout) {}

  void set_user_map(const Stage1Map* m) { user_map_ = m; }
  void set_kernel_map(const Stage1Map* m) { kernel_map_ = m; }
  void set_stage2(const Stage2Map* m) { stage2_ = m; }
  const VaLayout& layout() const { return layout_; }
  PhysicalMemory& phys() { return *phys_; }

  TranslateResult translate(uint64_t va, Access access, El el) const;

  // Convenience accessors used by the CPU and by hypervisor services.
  struct Read64 {
    FaultKind fault = FaultKind::None;
    uint64_t value = 0;
  };
  Read64 read64(uint64_t va, El el) const;
  Read64 read8(uint64_t va, El el) const;
  Read64 read32_fetch(uint64_t va, El el) const;
  FaultKind write64(uint64_t va, uint64_t v, El el);
  FaultKind write8(uint64_t va, uint8_t v, El el);

 private:
  PhysicalMemory* phys_;
  VaLayout layout_;
  const Stage1Map* user_map_ = nullptr;
  const Stage1Map* kernel_map_ = nullptr;
  const Stage2Map* stage2_ = nullptr;
};

}  // namespace camo::mem
