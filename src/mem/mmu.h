// Two-stage address translation (VMSAv8 model).
//
// Stage 1 maps virtual pages to physical pages with per-EL permissions; bit
// 55 of the VA selects the user (TTBR0) or kernel (TTBR1) half. Stage 2 is a
// hypervisor-owned permission overlay keyed by physical page — this is what
// makes execute-only memory possible at EL1 (Appendix A.2): stage-1 EL1
// mappings are implicitly readable, so the hypervisor removes the read
// permission in stage 2 for the key-setter page.
//
// Translation tables are host-side structures owned by the hypervisor rather
// than guest-memory-resident tables; the paper's threat model locks all MMU
// control away from EL1 anyway (§3.1), so EL1 never walks or edits tables —
// it requests changes via hypervisor calls.
//
// Fast path (DESIGN.md §3c): every successful translation can be served from
// a small direct-mapped micro-TLB, one way per (EL, access) pair so
// permission semantics are baked into the lookup key. Entries carry the
// generation counters of the stage-1 half and the stage-2 overlay they were
// validated against; any map/unmap/protect/restrict bumps the owning map's
// generation, so a permission change is visible on the very next access.
// Swapping whole maps (SwitchUserSpace installs a different Stage1Map
// pointer) flushes the TLB outright. Faulting translations are never cached,
// so PAC-poisoned (non-canonical) pointers fault identically with the TLB on
// or off.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "mem/phys.h"
#include "mem/valayout.h"

namespace camo::mem {

enum class Access : uint8_t { Fetch, Read, Write };
enum class El : uint8_t { El0 = 0, El1 = 1, El2 = 2 };

enum class FaultKind : uint8_t {
  None,
  AddressSize,   ///< non-canonical VA (this is how PAC poisoning faults)
  Translation,   ///< no stage-1 mapping
  Permission,    ///< stage-1 permission denied
  Stage2,        ///< hypervisor (stage-2) permission denied
};

const char* fault_name(FaultKind k);

/// Process-unique id for map objects (never 0, never reused). Generation
/// counters are per-object, so a consumer that caches "map at address P had
/// generation G" could be fooled by a *different* map allocated at the same
/// address after the first was destroyed (ABA). Identity by uid instead of
/// pointer closes that hole; atomic because fleets construct maps from many
/// worker threads.
uint64_t next_map_uid();

/// Stage-1 page permissions, separately for privileged and user access.
struct PagePerms {
  bool r_el1 = false, w_el1 = false, x_el1 = false;
  bool r_el0 = false, w_el0 = false, x_el0 = false;

  static PagePerms kernel_text() { return {true, false, true, false, false, false}; }
  static PagePerms kernel_ro() { return {true, false, false, false, false, false}; }
  static PagePerms kernel_rw() { return {true, true, false, false, false, false}; }
  static PagePerms user_text() { return {true, false, false, true, false, true}; }
  static PagePerms user_ro() { return {true, false, false, true, false, false}; }
  static PagePerms user_rw() { return {true, true, false, true, true, false}; }
};

struct PageEntry {
  uint64_t pa_page = 0;
  PagePerms perms;
};

/// One half (user or kernel) of a stage-1 address space.
class Stage1Map {
 public:
  /// Map the 4 KiB page containing va to the page containing pa.
  void map_page(uint64_t va, uint64_t pa, PagePerms perms);
  /// Map a contiguous range (va, pa aligned, len rounded up to pages).
  void map_range(uint64_t va, uint64_t pa, uint64_t len, PagePerms perms);
  void unmap_page(uint64_t va);
  void protect_range(uint64_t va, uint64_t len, PagePerms perms);

  const PageEntry* lookup(uint64_t va) const;
  size_t page_count() const { return pages_.size(); }

  /// Monotonic counter bumped on every mutation (map/unmap/protect); micro-
  /// TLB entries validated against it go stale the moment the map changes.
  uint64_t generation() const { return generation_; }
  /// Process-unique object identity (see next_map_uid).
  uint64_t uid() const { return uid_; }

  /// Adopt another map's entries and generation but keep this object's own
  /// uid — Machine::fork duplicates the template's maps into fresh objects,
  /// so consumers keyed by (uid, generation) can never confuse a fork's map
  /// with the template's (no ABA across machines).
  void copy_from(const Stage1Map& other) {
    pages_ = other.pages_;
    generation_ = other.generation_;
  }

 private:
  static uint64_t key(uint64_t va) { return va >> VaLayout::kPageShift; }
  std::unordered_map<uint64_t, PageEntry> pages_;
  uint64_t generation_ = 0;
  uint64_t uid_ = next_map_uid();
};

/// Stage-2 permission overlay, keyed by physical page. Pages without an
/// entry get full access (the common case). The hypervisor is the only
/// writer.
class Stage2Map {
 public:
  struct Perms {
    bool read = true, write = true, exec = true;
  };

  void restrict_page(uint64_t pa, Perms p);
  void restrict_range(uint64_t pa, uint64_t len, Perms p);
  /// Execute-only: no read, no write, fetch allowed.
  static Perms xom() { return {false, false, true}; }
  /// Read-only (e.g. locking kernel text/rodata against the write primitive).
  static Perms read_only() { return {true, false, true}; }

  Perms lookup(uint64_t pa) const;

  /// Monotonic counter bumped on every restrict; see Stage1Map::generation.
  uint64_t generation() const { return generation_; }
  /// Process-unique object identity (see next_map_uid).
  uint64_t uid() const { return uid_; }

  /// Entries + generation from `other`, own uid kept; see Stage1Map.
  void copy_from(const Stage2Map& other) {
    pages_ = other.pages_;
    generation_ = other.generation_;
  }

 private:
  std::unordered_map<uint64_t, Perms> pages_;
  uint64_t generation_ = 0;
  uint64_t uid_ = next_map_uid();
};

struct TranslateResult {
  FaultKind fault = FaultKind::None;
  uint64_t pa = 0;

  bool ok() const { return fault == FaultKind::None; }
};

/// The MMU: combines the VA layout, the two stage-1 halves and the stage-2
/// overlay. The CPU performs every access through it.
class Mmu {
 public:
  Mmu(PhysicalMemory& phys, VaLayout layout) : phys_(&phys), layout_(layout) {}

  void set_user_map(const Stage1Map* m) {
    user_map_ = m;
    flush_tlb();
  }
  void set_kernel_map(const Stage1Map* m) {
    kernel_map_ = m;
    flush_tlb();
  }
  void set_stage2(const Stage2Map* m) {
    stage2_ = m;
    flush_tlb();
  }
  const VaLayout& layout() const { return layout_; }
  const Stage1Map* user_map() const { return user_map_; }
  PhysicalMemory& phys() { return *phys_; }
  const PhysicalMemory& phys() const { return *phys_; }

  /// Translate one access. Inline so the CPU's fetch/load/store hot loop can
  /// resolve a micro-TLB hit without a function call; misses (and the
  /// fast-path-off configuration) drop to the out-of-line slow walk.
  TranslateResult translate(uint64_t va, Access access, El el) const {
    // A VA whose extension bits are not proper sign extension faults before
    // translation — this is the mechanism by which PAC-poisoned pointers
    // fault. The canonical check always runs before the TLB probe, so a
    // poisoned pointer can never hit a cached translation of its untagged
    // form.
    if (!layout_.is_canonical(va)) return {FaultKind::AddressSize, 0};

    const bool kernel_half = VaLayout::is_kernel_va(va);
    const Stage1Map* map = kernel_half ? kernel_map_ : user_map_;
    if (map == nullptr) return {FaultKind::Translation, 0};

    // Under TBI the top byte does not participate in translation: reduce the
    // VA to its addressing bits and re-extend, so tagged and untagged forms
    // of the same user address hit the same page. The TLB tag uses this
    // reduced form for the same reason — both forms share one entry.
    uint64_t va_lookup = va & mask(layout_.va_bits);
    if (kernel_half) va_lookup |= ~mask(layout_.va_bits);

    if (!fast_path_) return translate_slow(va, va_lookup, map, access, el);

    const uint64_t tag = va_lookup >> VaLayout::kPageShift;
    TlbEntry& e = tlb_[way_index(el, access)][tag & (kTlbEntries - 1)];
    const uint64_t s2_gen = stage2_ != nullptr ? stage2_->generation() : 0;
    if (e.va_page == tag && e.s1_gen == map->generation() &&
        e.s2_gen == s2_gen) {
      ++tlb_stats_.hits;
      return {FaultKind::None, (e.pa_page << VaLayout::kPageShift) |
                                   (va & mask(VaLayout::kPageShift))};
    }
    return translate_miss(va, va_lookup, map, access, el, e, s2_gen);
  }

  // Convenience accessors used by the CPU and by hypervisor services.
  struct Read64 {
    FaultKind fault = FaultKind::None;
    uint64_t value = 0;
  };
  Read64 read64(uint64_t va, El el) const;
  Read64 read8(uint64_t va, El el) const;
  Read64 read32_fetch(uint64_t va, El el) const;
  FaultKind write64(uint64_t va, uint64_t v, El el);
  FaultKind write8(uint64_t va, uint8_t v, El el);

  /// Everything a translation of `va` depends on besides the VA itself and
  /// the fixed layout: the identity and generation of the stage-1 half `va`
  /// selects and of the stage-2 overlay. translate() is a pure function of
  /// (va, access, el) and this snapshot, so a consumer that cached a
  /// successful translation may keep using it for as long as the snapshot
  /// compares equal — the superblock cache's validation key (DESIGN.md §3e).
  /// An absent map reads as uid 0, which no live map ever has, so installing
  /// a map where none was also invalidates.
  struct FetchEpoch {
    uint64_t s1_uid = 0, s1_gen = 0, s2_uid = 0, s2_gen = 0;
    friend bool operator==(const FetchEpoch&, const FetchEpoch&) = default;
  };
  FetchEpoch fetch_epoch(uint64_t va) const {
    const Stage1Map* map =
        VaLayout::is_kernel_va(va) ? kernel_map_ : user_map_;
    FetchEpoch e;
    if (map != nullptr) {
      e.s1_uid = map->uid();
      e.s1_gen = map->generation();
    }
    if (stage2_ != nullptr) {
      e.s2_uid = stage2_->uid();
      e.s2_gen = stage2_->generation();
    }
    return e;
  }
  /// Multi-page epoch validation (DESIGN.md §3i): true when the snapshot a
  /// consumer took for `va` still holds. A superblock trace spans several
  /// 4 KiB pages and carries one (FetchEpoch, write-generation) record per
  /// constituent page; re-checking each record through this predicate at
  /// trace entry proves every cached translation in the trace — map
  /// identity, permissions, XOM/PXN, canonicality — is still current.
  /// Generations are monotonic, so there is no ABA hazard.
  bool fetch_epoch_current(uint64_t va, const FetchEpoch& e) const {
    return fetch_epoch(va) == e;
  }

  // ---- micro-TLB ---------------------------------------------------------
  /// Enable/disable the micro-TLB (the CPU propagates its fast-path toggle
  /// here). Translation results are bit-for-bit identical either way.
  void set_fast_path(bool on) {
    fast_path_ = on;
    flush_tlb();
  }
  bool fast_path() const { return fast_path_; }
  /// Drop every cached translation (map-pointer swaps do this implicitly).
  void flush_tlb() const;

  struct TlbStats {
    uint64_t hits = 0;
    uint64_t misses = 0;   ///< slow-walked translations (successes installed)
    uint64_t flushes = 0;  ///< whole-TLB invalidations (map pointer swaps)
  };
  const TlbStats& tlb_stats() const { return tlb_stats_; }

 private:
  struct TlbEntry;
  TranslateResult translate_slow(uint64_t va, uint64_t va_lookup,
                                 const Stage1Map* map, Access access,
                                 El el) const;
  TranslateResult translate_miss(uint64_t va, uint64_t va_lookup,
                                 const Stage1Map* map, Access access, El el,
                                 TlbEntry& e, uint64_t s2_gen) const;
  static unsigned way_index(El el, Access access) {
    return unsigned(el) * 3 + unsigned(access);
  }

  PhysicalMemory* phys_;
  VaLayout layout_;
  const Stage1Map* user_map_ = nullptr;
  const Stage1Map* kernel_map_ = nullptr;
  const Stage2Map* stage2_ = nullptr;

  // Direct-mapped micro-TLB, one way per (EL, access). Mutable: a logically
  // const translation may install/probe cache state.
  struct TlbEntry {
    uint64_t va_page = ~uint64_t{0};  ///< tag; post-TBI canonical page number
    uint64_t pa_page = 0;
    uint64_t s1_gen = 0;  ///< Stage1Map::generation at install time
    uint64_t s2_gen = 0;  ///< Stage2Map::generation at install time
  };
  static constexpr unsigned kTlbEntries = 64;  // per (EL, access) way
  using TlbWay = std::array<TlbEntry, kTlbEntries>;
  mutable std::array<TlbWay, 9> tlb_{};  // index: el * 3 + access
  mutable TlbStats tlb_stats_;
  bool fast_path_ = true;
};

}  // namespace camo::mem
