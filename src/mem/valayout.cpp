#include "mem/valayout.h"

#include <sstream>

#include "support/bits.h"
#include "support/format.h"

namespace camo::mem {

std::string VaLayout::render_table1() const {
  // Table 1: VMSAv8 address ranges. With va_bits of addressing below bit 55,
  // the valid ranges are the sign-extended extremes of each half.
  const uint64_t user_top = mask(va_bits);
  const uint64_t kernel_bottom = ~mask(va_bits);
  std::ostringstream os;
  os << "Table 1: VMSAv8 address ranges (va_bits=" << va_bits << ")\n";
  os << "  Address range                                Bit55  Usage\n";
  os << "  " << hex(~uint64_t{0}) << " - " << hex(kernel_bottom)
     << "   1    Kernel\n";
  os << "  " << hex(kernel_bottom - 1) << " - " << hex(user_top + 1)
     << "        Invalid\n";
  os << "  " << hex(user_top) << " - " << hex(0) << "   0    User\n";
  return os.str();
}

std::string VaLayout::render_table2() const {
  auto row = [&](bool kernel) {
    std::string s(64, ' ');
    for (int bitpos = 63; bitpos >= 0; --bitpos) {
      char c;
      const unsigned i = static_cast<unsigned>(bitpos);
      if (i < kPageShift)
        c = 'o';  // page offset
      else if (i < va_bits)
        c = 'a';  // page number
      else if (i == 55)
        c = kernel ? '1' : '0';
      else if (i >= 56 && ((kernel && tbi_kernel) || (!kernel && tbi_user)))
        c = 't';  // ignored tag byte
      else
        c = kernel ? '1' : '0';  // sign extension
      s[static_cast<size_t>(63 - bitpos)] = c;
    }
    return s;
  };
  std::ostringstream os;
  os << "Table 2: AArch64 pointer layout on Linux (va_bits=" << va_bits
     << ", page=" << kPageSize << ")\n";
  os << "  bit:    63       55                  12          0\n";
  os << "  user:   " << row(false) << "\n";
  os << "  kernel: " << row(true) << "\n";
  os << "  (t=ignored tag, a=address, o=page offset; PAC bits: user="
     << pac_width(0) << ", kernel=" << pac_width(uint64_t{1} << 55) << ")\n";
  return os.str();
}

}  // namespace camo::mem
