// VMSAv8 virtual-address layout (paper Appendix A, Tables 1 and 2).
//
// AArch64 pointers are 64 bits but the VA space uses va_bits (48 in typical
// Linux configs). Bit 55 selects the translation table: TTBR0 (user) vs TTBR1
// (kernel). Remaining high bits are sign extension — unless Top-Byte-Ignore
// (TBI) is enabled, which Linux does for user space but not kernel space.
//
// The bits that are neither address nor bit 55 (nor the ignored top byte) are
// where PAuth stores the PAC. With va_bits = 48: 15 PAC bits for kernel
// pointers, 7 for user pointers — exactly the "15 bits" of §5.4.
#pragma once

#include <cstdint>
#include <string>

#include "support/bits.h"

namespace camo::mem {

struct VaLayout {
  unsigned va_bits = 48;    ///< virtual address size (39..52 typical)
  bool tbi_user = true;     ///< Linux enables TBI for EL0 addresses
  bool tbi_kernel = false;  ///< ...but not for kernel addresses

  /// Bit 55 selects the kernel (TTBR1) half.
  static bool is_kernel_va(uint64_t va) { return (va >> 55) & 1; }

  /// TBI in effect for this address?
  bool tbi(uint64_t va) const {
    return is_kernel_va(va) ? tbi_kernel : tbi_user;
  }

  // The four pointer-bit helpers are inline: is_canonical in particular runs
  // once per simulated memory access, ahead of the micro-TLB probe.

  /// Number of PAC bits available for this address (paper Appendix A/B).
  unsigned pac_width(uint64_t va) const {
    unsigned w = 55 - va_bits;  // bits [54 : va_bits]
    if (!tbi(va)) w += 8;       // bits [63:56]
    return w;
  }

  /// Bitmask of the positions PAC bits occupy for this address: bits
  /// [54 : va_bits] always, plus [63:56] when TBI is off.
  uint64_t pac_mask(uint64_t va) const {
    uint64_t m = mask(55 - va_bits) << va_bits;  // [54 : va_bits]
    if (!tbi(va)) m |= mask(8) << 56;            // [63:56]
    return m;
  }

  /// True when the non-address bits are proper sign extension of bit 55
  /// (ignoring the top byte under TBI). Non-canonical addresses fault.
  bool is_canonical(uint64_t va) const {
    const uint64_t ext = is_kernel_va(va) ? ~uint64_t{0} : 0;
    const uint64_t m = pac_mask(va);
    return (va & m) == (ext & m);
  }

  /// Replace non-address bits with the sign extension of bit 55 (keeping the
  /// top byte when TBI applies): the pointer as the hardware will use it.
  uint64_t canonical(uint64_t va) const {
    const uint64_t ext = is_kernel_va(va) ? ~uint64_t{0} : 0;
    const uint64_t m = pac_mask(va);
    return (va & ~m) | (ext & m);
  }

  /// The page offset / page-number split (Table 2). Page size is fixed 4 KiB.
  static constexpr unsigned kPageShift = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;

  /// Render the paper's Table 1 (address ranges) and Table 2 (pointer
  /// layouts) from this configuration, for the bench that regenerates them.
  std::string render_table1() const;
  std::string render_table2() const;
};

}  // namespace camo::mem
