// Flat physical memory backing the simulated machine.
//
// Out-of-range physical accesses throw camo::Error: guest code can only reach
// physical memory through hypervisor-owned translations, so an out-of-range
// PA indicates a host-side bug, not modeled guest behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace camo::mem {

class PhysicalMemory {
 public:
  explicit PhysicalMemory(uint64_t size_bytes);

  uint64_t size() const { return bytes_.size(); }

  uint8_t read8(uint64_t pa) const;
  uint32_t read32(uint64_t pa) const;
  uint64_t read64(uint64_t pa) const;
  void write8(uint64_t pa, uint8_t v);
  void write32(uint64_t pa, uint32_t v);
  void write64(uint64_t pa, uint64_t v);

  /// Bulk copy into physical memory (used by the loader and bootloader).
  void write_block(uint64_t pa, const void* data, uint64_t len);
  void read_block(uint64_t pa, void* data, uint64_t len) const;
  void fill(uint64_t pa, uint8_t value, uint64_t len);

 private:
  void check(uint64_t pa, uint64_t len) const;
  std::vector<uint8_t> bytes_;
};

}  // namespace camo::mem
