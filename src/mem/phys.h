// Flat physical memory backing the simulated machine.
//
// Out-of-range physical accesses throw camo::Error: guest code can only reach
// physical memory through hypervisor-owned translations, so an out-of-range
// PA indicates a host-side bug, not modeled guest behaviour.
//
// Every write bumps a per-4KiB-page monotonic generation counter. The CPU's
// predecoded instruction cache keys decoded pages by (physical page,
// generation), so any write-to-code — guest stores, the attacker's host-side
// write primitive, module .text staged by the hypervisor, the bootloader
// patching key-setter immediates — invalidates stale decodes without an
// explicit invalidation call. Reads never bump a generation.
//
// Copy-on-write mode (DESIGN.md §3j): a machine can be born sparse (every
// page reads as zero until first written — no up-front zero fill) or adopt a
// shared immutable PageStore captured from a booted template machine. Either
// way, the first write to a page allocates a private 4 KiB overlay; reads of
// untouched pages come from the store (or the implicit zero page). The
// per-page generation vector is always private to this machine, so the
// predecode/superblock/trace invalidation contracts are untouched: adopting
// a store installs the store's generations (which are >= anything this
// machine bumped before adopting, because a fork replays the template's
// exact pre-boot write sequence) and every later write bumps monotonically.
// Simulated semantics are bit-for-bit identical between flat and CoW modes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace camo::mem {

/// Immutable page image shared by every fork of one template machine. A
/// page with an empty byte vector reads as all-zero (never written — the
/// common case, which is what keeps stores and forks cheap). `page_gen`
/// carries the template's per-page write generations at capture time so
/// forks inherit generation counters that dominate their own pre-adopt
/// writes (see the header comment's monotonicity argument).
struct PageStore {
  uint64_t size_bytes = 0;
  std::vector<std::vector<uint8_t>> pages;  ///< per page; empty = all-zero
  std::vector<uint64_t> page_gen;           ///< generations at capture time
};

class PhysicalMemory {
 public:
  /// Fixed 4 KiB granule, matching VaLayout::kPageShift (mmu layer).
  static constexpr unsigned kPageShift = 12;
  static constexpr uint64_t kPageSize = uint64_t{1} << kPageShift;

  /// `sparse` starts the memory in CoW mode over the implicit zero store:
  /// no 64 MiB zero fill at construction, pages materialize on first write.
  /// Reads are bit-identical to the flat (default) mode either way.
  explicit PhysicalMemory(uint64_t size_bytes, bool sparse = false);

  uint64_t size() const { return size_; }

  uint8_t read8(uint64_t pa) const;
  uint32_t read32(uint64_t pa) const;
  uint64_t read64(uint64_t pa) const;
  void write8(uint64_t pa, uint8_t v);
  void write32(uint64_t pa, uint32_t v);
  void write64(uint64_t pa, uint64_t v);

  /// Bulk copy into physical memory (used by the loader and bootloader).
  void write_block(uint64_t pa, const void* data, uint64_t len);
  void read_block(uint64_t pa, void* data, uint64_t len) const;
  void fill(uint64_t pa, uint8_t value, uint64_t len);

  /// Capture current contents + generations as an immutable shared store.
  /// All-zero pages stay empty in the store, so forks of a mostly-untouched
  /// machine share the implicit zero page rather than 4 KiB copies.
  std::shared_ptr<const PageStore> snapshot() const;
  /// Become a copy-on-write view of `store` (same size required): drops any
  /// flat/overlay contents, installs the store's page generations, and
  /// resets the private-overlay census. Machine::fork's memory half.
  void adopt(std::shared_ptr<const PageStore> store);

  bool cow() const { return cow_; }
  /// Pages privatized by a write since construction/adopt (CoW mode only).
  uint64_t cow_pages() const { return cow_count_; }
  /// Pages still served by the shared store / zero page (CoW mode only).
  uint64_t shared_pages() const {
    return cow_ ? page_count() - cow_count_ : 0;
  }

  /// Monotonic write generation of the page holding `pa_page << kPageShift`.
  /// Out-of-range pages read as generation 0 (they can never hold code).
  uint64_t page_generation(uint64_t pa_page) const {
    return pa_page < page_gen_.size() ? page_gen_[pa_page] : 0;
  }
  uint64_t page_count() const { return page_gen_.size(); }

 private:
  void check(uint64_t pa, uint64_t len) const;
  /// Bump the generation of every page overlapping [pa, pa+len).
  void touch(uint64_t pa, uint64_t len) {
    const uint64_t last = (pa + len - 1) >> kPageShift;
    for (uint64_t p = pa >> kPageShift; p <= last; ++p) ++page_gen_[p];
  }
  /// CoW: writable private copy of page `p`, allocated on first use.
  uint8_t* page_mut(uint64_t p);

  bool cow_ = false;
  uint64_t size_ = 0;
  std::vector<uint8_t> bytes_;              ///< flat mode backing (else empty)
  std::shared_ptr<const PageStore> store_;  ///< CoW base (null = all-zero)
  std::vector<std::unique_ptr<uint8_t[]>> overlay_;  ///< CoW private pages
  /// CoW per-page read view: overlay if privatized, else the store page,
  /// else null (reads as zero). One indirection on the read hot path.
  std::vector<const uint8_t*> read_ptr_;
  uint64_t cow_count_ = 0;
  std::vector<uint64_t> page_gen_;
};

}  // namespace camo::mem
