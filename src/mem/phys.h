// Flat physical memory backing the simulated machine.
//
// Out-of-range physical accesses throw camo::Error: guest code can only reach
// physical memory through hypervisor-owned translations, so an out-of-range
// PA indicates a host-side bug, not modeled guest behaviour.
//
// Every write bumps a per-4KiB-page monotonic generation counter. The CPU's
// predecoded instruction cache keys decoded pages by (physical page,
// generation), so any write-to-code — guest stores, the attacker's host-side
// write primitive, module .text staged by the hypervisor, the bootloader
// patching key-setter immediates — invalidates stale decodes without an
// explicit invalidation call. Reads never bump a generation.
#pragma once

#include <cstdint>
#include <vector>

namespace camo::mem {

class PhysicalMemory {
 public:
  /// Fixed 4 KiB granule, matching VaLayout::kPageShift (mmu layer).
  static constexpr unsigned kPageShift = 12;

  explicit PhysicalMemory(uint64_t size_bytes);

  uint64_t size() const { return bytes_.size(); }

  uint8_t read8(uint64_t pa) const;
  uint32_t read32(uint64_t pa) const;
  uint64_t read64(uint64_t pa) const;
  void write8(uint64_t pa, uint8_t v);
  void write32(uint64_t pa, uint32_t v);
  void write64(uint64_t pa, uint64_t v);

  /// Bulk copy into physical memory (used by the loader and bootloader).
  void write_block(uint64_t pa, const void* data, uint64_t len);
  void read_block(uint64_t pa, void* data, uint64_t len) const;
  void fill(uint64_t pa, uint8_t value, uint64_t len);

  /// Monotonic write generation of the page holding `pa_page << kPageShift`.
  /// Out-of-range pages read as generation 0 (they can never hold code).
  uint64_t page_generation(uint64_t pa_page) const {
    return pa_page < page_gen_.size() ? page_gen_[pa_page] : 0;
  }
  uint64_t page_count() const { return page_gen_.size(); }

 private:
  void check(uint64_t pa, uint64_t len) const;
  /// Bump the generation of every page overlapping [pa, pa+len).
  void touch(uint64_t pa, uint64_t len) {
    const uint64_t last = (pa + len - 1) >> kPageShift;
    for (uint64_t p = pa >> kPageShift; p <= last; ++p) ++page_gen_[p];
  }

  std::vector<uint8_t> bytes_;
  std::vector<uint64_t> page_gen_;
};

}  // namespace camo::mem
