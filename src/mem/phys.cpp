#include "mem/phys.h"

#include <cstring>

#include "support/error.h"
#include "support/format.h"

namespace camo::mem {

PhysicalMemory::PhysicalMemory(uint64_t size_bytes)
    : bytes_(size_bytes, 0),
      page_gen_((size_bytes + (uint64_t{1} << kPageShift) - 1) >> kPageShift,
                0) {}

void PhysicalMemory::check(uint64_t pa, uint64_t len) const {
  if (pa > bytes_.size() || len > bytes_.size() - pa)
    fail("physical access out of range: " + hex_short(pa) + " len " +
         std::to_string(len));
}

uint8_t PhysicalMemory::read8(uint64_t pa) const {
  check(pa, 1);
  return bytes_[pa];
}

uint32_t PhysicalMemory::read32(uint64_t pa) const {
  check(pa, 4);
  uint32_t v;
  std::memcpy(&v, &bytes_[pa], 4);
  return v;
}

uint64_t PhysicalMemory::read64(uint64_t pa) const {
  check(pa, 8);
  uint64_t v;
  std::memcpy(&v, &bytes_[pa], 8);
  return v;
}

void PhysicalMemory::write8(uint64_t pa, uint8_t v) {
  check(pa, 1);
  touch(pa, 1);
  bytes_[pa] = v;
}

void PhysicalMemory::write32(uint64_t pa, uint32_t v) {
  check(pa, 4);
  touch(pa, 4);
  std::memcpy(&bytes_[pa], &v, 4);
}

void PhysicalMemory::write64(uint64_t pa, uint64_t v) {
  check(pa, 8);
  touch(pa, 8);
  std::memcpy(&bytes_[pa], &v, 8);
}

void PhysicalMemory::write_block(uint64_t pa, const void* data, uint64_t len) {
  check(pa, len);
  if (len != 0) touch(pa, len);
  std::memcpy(&bytes_[pa], data, len);
}

void PhysicalMemory::read_block(uint64_t pa, void* data, uint64_t len) const {
  check(pa, len);
  std::memcpy(data, &bytes_[pa], len);
}

void PhysicalMemory::fill(uint64_t pa, uint8_t value, uint64_t len) {
  check(pa, len);
  if (len != 0) touch(pa, len);
  std::memset(&bytes_[pa], value, len);
}

}  // namespace camo::mem
