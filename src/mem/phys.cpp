#include "mem/phys.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"
#include "support/format.h"

namespace camo::mem {

namespace {
/// Bytes of page `p` still inside a memory of `size` bytes (the last page
/// may be partial when the size is not page aligned).
uint64_t page_span(uint64_t p, uint64_t size) {
  const uint64_t base = p << PhysicalMemory::kPageShift;
  return std::min<uint64_t>(PhysicalMemory::kPageSize, size - base);
}
}  // namespace

PhysicalMemory::PhysicalMemory(uint64_t size_bytes, bool sparse)
    : cow_(sparse),
      size_(size_bytes),
      page_gen_((size_bytes + kPageSize - 1) >> kPageShift, 0) {
  if (sparse) {
    overlay_.resize(page_gen_.size());
    read_ptr_.assign(page_gen_.size(), nullptr);
  } else {
    bytes_.assign(size_bytes, 0);
  }
}

void PhysicalMemory::check(uint64_t pa, uint64_t len) const {
  if (pa > size_ || len > size_ - pa)
    fail("physical access out of range: " + hex_short(pa) + " len " +
         std::to_string(len));
}

uint8_t* PhysicalMemory::page_mut(uint64_t p) {
  if (overlay_[p]) return overlay_[p].get();
  auto page = std::make_unique<uint8_t[]>(kPageSize);
  const uint8_t* base = read_ptr_[p];
  if (base != nullptr) {
    // Store pages are full-span; a partial last page keeps its tail zero.
    const uint64_t have =
        store_ ? store_->pages[p].size() : page_span(p, size_);
    std::memcpy(page.get(), base, have);
    std::memset(page.get() + have, 0, kPageSize - have);
  } else {
    std::memset(page.get(), 0, kPageSize);
  }
  overlay_[p] = std::move(page);
  read_ptr_[p] = overlay_[p].get();
  ++cow_count_;
  return overlay_[p].get();
}

uint8_t PhysicalMemory::read8(uint64_t pa) const {
  check(pa, 1);
  if (!cow_) return bytes_[pa];
  const uint8_t* p = read_ptr_[pa >> kPageShift];
  return p != nullptr ? p[pa & (kPageSize - 1)] : 0;
}

uint32_t PhysicalMemory::read32(uint64_t pa) const {
  check(pa, 4);
  uint32_t v;
  if (!cow_) {
    std::memcpy(&v, &bytes_[pa], 4);
    return v;
  }
  const uint64_t off = pa & (kPageSize - 1);
  if (off <= kPageSize - 4) {
    const uint8_t* p = read_ptr_[pa >> kPageShift];
    if (p == nullptr) return 0;
    std::memcpy(&v, p + off, 4);
    return v;
  }
  uint8_t b[4];
  for (unsigned i = 0; i < 4; ++i) b[i] = read8(pa + i);
  std::memcpy(&v, b, 4);
  return v;
}

uint64_t PhysicalMemory::read64(uint64_t pa) const {
  check(pa, 8);
  uint64_t v;
  if (!cow_) {
    std::memcpy(&v, &bytes_[pa], 8);
    return v;
  }
  const uint64_t off = pa & (kPageSize - 1);
  if (off <= kPageSize - 8) {
    const uint8_t* p = read_ptr_[pa >> kPageShift];
    if (p == nullptr) return 0;
    std::memcpy(&v, p + off, 8);
    return v;
  }
  uint8_t b[8];
  for (unsigned i = 0; i < 8; ++i) b[i] = read8(pa + i);
  std::memcpy(&v, b, 8);
  return v;
}

void PhysicalMemory::write8(uint64_t pa, uint8_t v) {
  check(pa, 1);
  touch(pa, 1);
  if (!cow_) {
    bytes_[pa] = v;
    return;
  }
  page_mut(pa >> kPageShift)[pa & (kPageSize - 1)] = v;
}

void PhysicalMemory::write32(uint64_t pa, uint32_t v) {
  check(pa, 4);
  touch(pa, 4);
  if (!cow_) {
    std::memcpy(&bytes_[pa], &v, 4);
    return;
  }
  const uint64_t off = pa & (kPageSize - 1);
  if (off <= kPageSize - 4) {
    std::memcpy(page_mut(pa >> kPageShift) + off, &v, 4);
    return;
  }
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  for (unsigned i = 0; i < 4; ++i)
    page_mut((pa + i) >> kPageShift)[(pa + i) & (kPageSize - 1)] = b[i];
}

void PhysicalMemory::write64(uint64_t pa, uint64_t v) {
  check(pa, 8);
  touch(pa, 8);
  if (!cow_) {
    std::memcpy(&bytes_[pa], &v, 8);
    return;
  }
  const uint64_t off = pa & (kPageSize - 1);
  if (off <= kPageSize - 8) {
    std::memcpy(page_mut(pa >> kPageShift) + off, &v, 8);
    return;
  }
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  for (unsigned i = 0; i < 8; ++i)
    page_mut((pa + i) >> kPageShift)[(pa + i) & (kPageSize - 1)] = b[i];
}

void PhysicalMemory::write_block(uint64_t pa, const void* data, uint64_t len) {
  check(pa, len);
  if (len == 0) return;
  touch(pa, len);
  if (!cow_) {
    std::memcpy(&bytes_[pa], data, len);
    return;
  }
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const uint64_t off = pa & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - off);
    std::memcpy(page_mut(pa >> kPageShift) + off, src, chunk);
    pa += chunk;
    src += chunk;
    len -= chunk;
  }
}

void PhysicalMemory::read_block(uint64_t pa, void* data, uint64_t len) const {
  check(pa, len);
  if (!cow_) {
    std::memcpy(data, &bytes_[pa], len);
    return;
  }
  uint8_t* dst = static_cast<uint8_t*>(data);
  while (len > 0) {
    const uint64_t off = pa & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - off);
    const uint8_t* p = read_ptr_[pa >> kPageShift];
    if (p != nullptr)
      std::memcpy(dst, p + off, chunk);
    else
      std::memset(dst, 0, chunk);
    pa += chunk;
    dst += chunk;
    len -= chunk;
  }
}

void PhysicalMemory::fill(uint64_t pa, uint8_t value, uint64_t len) {
  check(pa, len);
  if (len == 0) return;
  touch(pa, len);
  if (!cow_) {
    std::memset(&bytes_[pa], value, len);
    return;
  }
  while (len > 0) {
    const uint64_t off = pa & (kPageSize - 1);
    const uint64_t chunk = std::min<uint64_t>(len, kPageSize - off);
    const uint64_t p = pa >> kPageShift;
    // Zero-filling a page that already reads as zero needs no overlay — the
    // generation bump above keeps the invalidation contract regardless.
    if (!(value == 0 && read_ptr_[p] == nullptr))
      std::memset(page_mut(p) + off, value, chunk);
    pa += chunk;
    len -= chunk;
  }
}

std::shared_ptr<const PageStore> PhysicalMemory::snapshot() const {
  auto store = std::make_shared<PageStore>();
  store->size_bytes = size_;
  const uint64_t n = page_count();
  store->pages.resize(n);
  store->page_gen = page_gen_;
  for (uint64_t p = 0; p < n; ++p) {
    const uint64_t span = page_span(p, size_);
    const uint8_t* src = nullptr;
    uint64_t have = 0;
    if (cow_) {
      src = read_ptr_[p];
      have = src == nullptr ? 0
             : overlay_[p]  ? span
                            : store_->pages[p].size();
    } else {
      src = &bytes_[p << kPageShift];
      have = span;
    }
    if (src == nullptr) continue;  // never written: stays the zero page
    // All-zero pages stay empty so forks keep sharing the implicit zero
    // page (this is what makes flat-mode templates fork as cheaply as
    // sparse ones).
    bool any = false;
    for (uint64_t i = 0; i < have && !any; ++i) any = src[i] != 0;
    if (!any) continue;
    store->pages[p].assign(src, src + have);
  }
  return store;
}

void PhysicalMemory::adopt(std::shared_ptr<const PageStore> store) {
  if (!store) fail("physical memory: adopt of a null page store");
  if (store->size_bytes != size_ || store->page_gen.size() != page_gen_.size())
    fail("physical memory: page store size mismatch");
  cow_ = true;
  bytes_.clear();
  bytes_.shrink_to_fit();
  store_ = std::move(store);
  const uint64_t n = page_count();
  overlay_.clear();
  overlay_.resize(n);
  read_ptr_.assign(n, nullptr);
  for (uint64_t p = 0; p < n; ++p)
    if (!store_->pages[p].empty()) read_ptr_[p] = store_->pages[p].data();
  cow_count_ = 0;
  page_gen_ = store_->page_gen;
}

}  // namespace camo::mem
