#include "mem/mmu.h"

#include <atomic>

#include "support/bits.h"
#include "support/error.h"

namespace camo::mem {

uint64_t next_map_uid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

const char* fault_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::AddressSize: return "address-size";
    case FaultKind::Translation: return "translation";
    case FaultKind::Permission: return "permission";
    case FaultKind::Stage2: return "stage2-permission";
  }
  return "<bad-fault>";
}

void Stage1Map::map_page(uint64_t va, uint64_t pa, PagePerms perms) {
  pages_[key(va)] = PageEntry{pa >> VaLayout::kPageShift, perms};
  ++generation_;
}

void Stage1Map::map_range(uint64_t va, uint64_t pa, uint64_t len,
                          PagePerms perms) {
  if (!is_aligned(va, VaLayout::kPageSize) || !is_aligned(pa, VaLayout::kPageSize))
    fail("map_range: unaligned base");
  for (uint64_t off = 0; off < len; off += VaLayout::kPageSize)
    map_page(va + off, pa + off, perms);
}

void Stage1Map::unmap_page(uint64_t va) {
  pages_.erase(key(va));
  ++generation_;
}

void Stage1Map::protect_range(uint64_t va, uint64_t len, PagePerms perms) {
  for (uint64_t off = 0; off < len; off += VaLayout::kPageSize) {
    auto it = pages_.find(key(va + off));
    if (it == pages_.end()) fail("protect_range: page not mapped");
    it->second.perms = perms;
  }
  ++generation_;
}

const PageEntry* Stage1Map::lookup(uint64_t va) const {
  auto it = pages_.find(key(va));
  return it == pages_.end() ? nullptr : &it->second;
}

void Stage2Map::restrict_page(uint64_t pa, Perms p) {
  pages_[pa >> VaLayout::kPageShift] = p;
  ++generation_;
}

void Stage2Map::restrict_range(uint64_t pa, uint64_t len, Perms p) {
  for (uint64_t off = 0; off < len; off += VaLayout::kPageSize)
    restrict_page(pa + off, p);
}

Stage2Map::Perms Stage2Map::lookup(uint64_t pa) const {
  auto it = pages_.find(pa >> VaLayout::kPageShift);
  return it == pages_.end() ? Perms{} : it->second;
}

TranslateResult Mmu::translate_miss(uint64_t va, uint64_t va_lookup,
                                    const Stage1Map* map, Access access, El el,
                                    TlbEntry& e, uint64_t s2_gen) const {
  const TranslateResult r = translate_slow(va, va_lookup, map, access, el);
  ++tlb_stats_.misses;
  // Faults are never cached: only a fully permission-checked success may be
  // replayed, and it is stamped with the generations it was checked against.
  if (r.ok()) {
    e = TlbEntry{va_lookup >> VaLayout::kPageShift,
                 r.pa >> VaLayout::kPageShift, map->generation(), s2_gen};
  }
  return r;
}

void Mmu::flush_tlb() const {
  for (auto& way : tlb_) way.fill(TlbEntry{});
  ++tlb_stats_.flushes;
}

TranslateResult Mmu::translate_slow(uint64_t va, uint64_t va_lookup,
                                    const Stage1Map* map, Access access,
                                    El el) const {
  const PageEntry* entry = map->lookup(va_lookup);
  if (entry == nullptr) return {FaultKind::Translation, 0};

  const PagePerms& p = entry->perms;
  bool allowed = false;
  if (el == El::El0) {
    allowed = access == Access::Fetch ? p.x_el0
              : access == Access::Read ? p.r_el0
                                       : p.w_el0;
  } else {
    // EL1 (and EL2 for host-service accesses) uses privileged permissions.
    // Fetching from an EL0-executable page at EL1 is denied (PXN semantics).
    allowed = access == Access::Fetch ? (p.x_el1 && !p.x_el0)
              : access == Access::Read ? p.r_el1
                                       : p.w_el1;
  }
  if (!allowed) return {FaultKind::Permission, 0};

  const uint64_t pa = (entry->pa_page << VaLayout::kPageShift) |
                      (va & mask(VaLayout::kPageShift));

  if (stage2_ != nullptr && el != El::El2) {
    const Stage2Map::Perms s2 = stage2_->lookup(pa);
    const bool ok2 = access == Access::Fetch ? s2.exec
                     : access == Access::Read ? s2.read
                                              : s2.write;
    if (!ok2) return {FaultKind::Stage2, 0};
  }
  return {FaultKind::None, pa};
}

Mmu::Read64 Mmu::read64(uint64_t va, El el) const {
  const auto t = translate(va, Access::Read, el);
  if (!t.ok()) return {t.fault, 0};
  return {FaultKind::None, phys_->read64(t.pa)};
}

Mmu::Read64 Mmu::read8(uint64_t va, El el) const {
  const auto t = translate(va, Access::Read, el);
  if (!t.ok()) return {t.fault, 0};
  return {FaultKind::None, phys_->read8(t.pa)};
}

Mmu::Read64 Mmu::read32_fetch(uint64_t va, El el) const {
  const auto t = translate(va, Access::Fetch, el);
  if (!t.ok()) return {t.fault, 0};
  return {FaultKind::None, phys_->read32(t.pa)};
}

FaultKind Mmu::write64(uint64_t va, uint64_t v, El el) {
  const auto t = translate(va, Access::Write, el);
  if (!t.ok()) return t.fault;
  phys_->write64(t.pa, v);
  return FaultKind::None;
}

FaultKind Mmu::write8(uint64_t va, uint8_t v, El el) {
  const auto t = translate(va, Access::Write, el);
  if (!t.ok()) return t.fault;
  phys_->write8(t.pa, v);
  return FaultKind::None;
}

}  // namespace camo::mem
