// Shared immutable kernel-image cache (DESIGN.md §3d).
//
// Booting a Machine spends most of its serial time in Bootloader::prepare():
// emitting the kernel program, synthesizing the XOM key setter, running the
// instrumentation passes, linking and statically verifying the image. In a
// fleet every machine with the same configuration repeats that work on
// byte-identical inputs; this cache does it once per configuration and
// hands every subsequent machine a shared, immutable core::PreparedKernel
// to install from — which is what keeps machine boot off the fleet's
// serial fraction (Amdahl's law does the rest).
//
// Invalidation rules: there is no invalidation — entries are immutable and
// keyed by every input of prepare(): the KernelConfig (protection scheme,
// failure threshold, logging, preemption, trapframe signing, banked keys),
// the boot seed (the PAuth keys are *embedded in the key-setter text*, so
// a different seed is a different image), and the full task table (task
// specs, including per-task EL0 keys, are baked into kernel data). Change
// any of these and the key changes; a stale hit is impossible by
// construction. The cache is thread-safe; get() may build under the lock,
// serializing concurrent first-boots of *different* configurations — that
// cost is one prepare() at fleet start, irrelevant next to the runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bootloader.h"
#include "kernel/kernel_builder.h"

namespace camo::kernel {

class ImageCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Get-or-build the prepared kernel for `key`. `build` runs at most once
  /// per key for the cache's lifetime. Thread-safe.
  std::shared_ptr<const core::PreparedKernel> get(
      const std::string& key,
      const std::function<core::PreparedKernel()>& build);

  /// Cache key covering every prepare() input that can vary between
  /// machines: kernel configuration, boot seed and the task table.
  static std::string key_for(const KernelConfig& cfg, uint64_t seed,
                             const std::vector<TaskSpec>& tasks);

  Stats stats() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const core::PreparedKernel>>
      entries_;
  Stats stats_;
};

}  // namespace camo::kernel
