#include "kernel/kernel_builder.h"

#include "core/keysetter.h"
#include "cpu/cpu.h"
#include "hyp/hypervisor.h"
#include "support/bits.h"
#include "support/error.h"

namespace camo::kernel {

using assembler::FunctionBuilder;
using assembler::Label;
using compiler::BackwardScheme;
using cpu::ExcClass;
using cpu::PacKey;
using hyp::HvcCall;
using isa::SysReg;

namespace {

constexpr uint8_t kSp = isa::kRegZrSp;
constexpr uint8_t kZr = isa::kRegZrSp;
constexpr uint8_t kLr = isa::kRegLr;

constexpr uint16_t kTrapFrameSize = 272;
constexpr uint16_t kTfX30 = 240;
constexpr uint16_t kTfElr = 248;
constexpr uint16_t kTfSpsr = 256;

uint16_t hvc_num(HvcCall c) { return static_cast<uint16_t>(c); }

/// Count of concrete instructions currently in `f` (for vector padding).
size_t insn_count(const FunctionBuilder& f) {
  size_t n = 0;
  for (const auto& item : f.items())
    if (item.kind != assembler::Item::Kind::LabelDef) ++n;
  return n;
}

void pad_nops_to(FunctionBuilder& f, size_t words) {
  while (insn_count(f) < words) f.nop();
}

/// Sign x[val] with modifier in x[mod] under the IA key (honours compat
/// builds by routing through the HINT-space 1716 form).
void emit_sign_ia(FunctionBuilder& f, uint8_t val, uint8_t mod, bool compat) {
  if (compat) {
    f.mov(isa::kRegIp1, val);
    f.mov(isa::kRegIp0, mod);
    f.pacia1716();
    f.mov(val, isa::kRegIp1);
  } else {
    f.pacia(val, mod);
  }
}

void emit_auth_ia(FunctionBuilder& f, uint8_t val, uint8_t mod, bool compat) {
  if (compat) {
    f.mov(isa::kRegIp1, val);
    f.mov(isa::kRegIp0, mod);
    f.autia1716();
    f.mov(val, isa::kRegIp1);
  } else {
    f.autia(val, mod);
  }
}

/// Save x0..x29 (15 pairs) + x30 + ELR + SPSR into a fresh trapframe.
/// With `protect` (the §8 extension) the saved ELR is signed with the IA key
/// against trapframe-address ‖ saved-SPSR, so neither the return address nor
/// the saved exception level can be forged while the task sleeps.
void emit_trapframe_save(FunctionBuilder& f, bool protect, bool compat) {
  f.sub_i(kSp, kSp, kTrapFrameSize);
  for (uint8_t i = 0; i < 30; i += 2)
    f.stp(i, static_cast<uint8_t>(i + 1), kSp, static_cast<int16_t>(i * 8));
  f.str(30, kSp, kTfX30);
  f.mrs(9, SysReg::ELR_EL1);
  f.mrs(10, SysReg::SPSR_EL1);
  if (protect) {
    f.mov_from_sp(11);
    f.bfi(11, 10, 48, 16);  // modifier = trapframe VA ‖ SPSR[15:0]
    emit_sign_ia(f, 9, 11, compat);
  }
  f.str(9, kSp, kTfElr);
  f.str(10, kSp, kTfSpsr);
}

void emit_trapframe_restore_and_eret(FunctionBuilder& f, bool protect,
                                     bool compat) {
  f.ldr(10, kSp, kTfSpsr);
  f.ldr(9, kSp, kTfElr);
  if (protect) {
    f.mov_from_sp(11);
    f.bfi(11, 10, 48, 16);
    emit_auth_ia(f, 9, 11, compat);
  }
  f.msr(SysReg::ELR_EL1, 9);
  f.msr(SysReg::SPSR_EL1, 10);
  for (uint8_t i = 0; i < 30; i += 2)
    f.ldp(i, static_cast<uint8_t>(i + 1), kSp, static_cast<int16_t>(i * 8));
  f.ldr(30, kSp, kTfX30);
  f.add_i(kSp, kSp, kTrapFrameSize);
  f.eret();
}

/// x[dst] = address of task with pid in x[pid_reg] (clobbers x[tmp]).
void emit_task_ptr(FunctionBuilder& f, uint8_t dst, uint8_t pid_reg,
                   uint8_t tmp) {
  f.mov_sym(dst, kSymTaskArray);
  f.lsl_i(tmp, pid_reg, 8);  // * kTaskSize
  f.add(dst, dst, tmp);
}

}  // namespace

obj::Program KernelBuilder::build() {
  const unsigned num_cpus = cfg_.num_cpus == 0 ? 1 : cfg_.num_cpus;
  // Every core needs a swapper slot in task_array (core 0 owns slot 0,
  // cores 1..N-1 the slots just past the user tasks).
  if (tasks_.size() + num_cpus > kMaxTasks) fail("kernel: too many tasks");
  if (cfg_.pac_failure_threshold > 4095)
    fail("kernel: pac threshold must fit cmp immediate");
  obj::Program k;
  const bool compat = cfg_.protection.compat_mode;
  // Keys must be switched on every EL0<->EL1 transition only when the kernel
  // actually uses PAuth (§3.3.1). The unprotected baseline kernel matches
  // the paper's stock-kernel baseline: no per-syscall key switching.
  const bool protected_build =
      cfg_.protection.backward != BackwardScheme::None ||
      cfg_.protection.forward_cfi || cfg_.protection.dfi;
  // With the §8 banked-keys ISA extension the per-transition switch
  // vanishes: EL1 execution draws kernel keys from the EL2-managed bank.
  const bool switch_keys = protected_build && !cfg_.banked_keys;
  // User keys still must follow the task; banked builds install them at
  // context switch (like Linux's thread_struct handling), switching builds
  // restore them on every exception return.
  const bool restore_keys_at_switch = protected_build && cfg_.banked_keys;
  const uint64_t num_tasks = tasks_.size() + 1;  // + swapper
  // SMP builds add the runqueue lock, the cfs-lite migrating scheduler, the
  // IPI mailbox and secondary_idle. Everything below is gated on this flag
  // so num_cpus == 1 emits the classic image byte-for-byte.
  const bool smp = num_cpus > 1;

  // =========================================================================
  // Data
  // =========================================================================

  // Boot config: n, then per task {user_pc, user_sp, space, keys[10]}.
  {
    std::vector<uint64_t> bc;
    bc.push_back(tasks_.size());
    for (const auto& t : tasks_) {
      bc.push_back(t.user_pc);
      bc.push_back(t.user_sp);
      bc.push_back(t.space_id);
      for (const uint64_t kv : t.user_keys) bc.push_back(kv);
    }
    k.add_rodata_u64("boot_config", std::move(bc));
  }
  k.add_rodata_u64("num_tasks_g", {num_tasks});

  // Ops tables (.rodata): read-only, hence unsigned (§4.4).
  for (const char* base : {"null", "ram", "con"}) {
    const std::string name = std::string(base) + "_fops";
    k.add_rodata_u64(name, {0, 0});
    k.add_abs64(name, fops::kRead, std::string(base) + "_read");
    k.add_abs64(name, fops::kWrite, std::string(base) + "_write");
  }
  k.add_rodata_u64("fops_by_kind", {0, 0, 0});
  k.add_abs64("fops_by_kind", 0, "null_fops");
  k.add_abs64("fops_by_kind", 8, "ram_fops");
  k.add_abs64("fops_by_kind", 16, "con_fops");

  // Syscall dispatch table (.rodata — read-only function pointers).
  {
    const char* names[] = {"sys_getpid",     "sys_write",     "sys_read",
                           "sys_open",       "sys_close",     "sys_yield",
                           "sys_exit",       "sys_stat",      "sys_queue_work",
                           "sys_call_hook",  "sys_init_module",
                           "sys_register_hook", "sys_getjiffies"};
    static_assert(sizeof(names) / sizeof(names[0]) ==
                  static_cast<size_t>(Sys::kCount));
    k.add_rodata_u64("syscall_table",
                     std::vector<uint64_t>(std::size(names), 0));
    for (size_t i = 0; i < std::size(names); ++i)
      k.add_abs64("syscall_table", static_cast<int64_t>(i * 8), names[i]);
  }

  // Registry of hook implementations a driver may install (§4.4).
  k.add_rodata_u64("hook_registry", {0, 0});
  k.add_abs64("hook_registry", 0, "default_hook");
  k.add_abs64("hook_registry", 8, "alt_hook");

  k.add_rodata("pacfail_msg", {'P', 'A', 'C', ' ', 'f', 'a', 'i', 'l', '\n'});

  // DECLARE_WORK equivalent (§4.6): statically initialised work item whose
  // function pointer is signed in place at early boot via .pauth_init.
  k.add_data_u64(kSymStaticWork, {1 /*data*/, 0 /*func*/});
  k.add_abs64(kSymStaticWork, 8, "default_work");
  k.declare_signed_ptr(kSymStaticWork, 8, kTypeWorkFunc, PacKey::IB);
  k.add_rodata_u64("pauth_count_g", {1});  // entries in our own table

  // Writable lone hook pointer container (§4.4) — set at run time.
  k.add_data_u64(kSymHookObj, {0, 0});

  // Simulated ram-file backing store, pre-filled with a pattern.
  {
    std::vector<uint8_t> ram(4096);
    for (size_t i = 0; i < ram.size(); ++i)
      ram[i] = static_cast<uint8_t>(0xA5 ^ (i * 7));
    k.add_data(kSymRamfsData, std::move(ram));
  }

  // BSS.
  k.add_bss(kSymTaskArray, kMaxTasks * kTaskSize, 0x100);
  k.add_bss(kSymFileTable, kMaxFiles * kFileSize, 0x20);
  k.add_bss(kSymKernelStacks,
            std::max<uint64_t>(tasks_.size(), 1) * kKernelStackStride,
            kKernelStackStride);
  k.add_bss(kSymPacFailCount, 8);
  k.add_bss(kSymJiffies, 8);
  k.add_bss(kSymWorkCounter, 8);
  k.add_bss(kSymHookCounter, 8);
  k.add_bss(kSymPwnedFlag, 8);
  if (smp) {
    // SMP-only state: the runqueue spinlock, one doorbell word per core and
    // the boot gate the secondaries spin on.
    k.add_bss(kSymSchedLock, 8);
    k.add_bss(kSymIpiMailbox, 8 * num_cpus);
    k.add_bss(kSymIpiCount, 8);
    k.add_bss(kSymSmpOnline, 8);
  }

  // =========================================================================
  // Exception vectors and entry stubs
  // =========================================================================

  {
    auto& f = k.add_function("vectors");
    f.set_no_instrument();
    f.b_sym("el1_sync_entry");
    pad_nops_to(f, 0x080 / 4);
    f.b_sym("el1_irq_entry");
    pad_nops_to(f, 0x100 / 4);
    f.b_sym("el0_sync_entry");
    pad_nops_to(f, 0x180 / 4);
    f.b_sym("el0_irq_entry");
  }

  // --- EL0 sync: syscall / user-fault entry. Kernel keys are installed
  // before anything else runs (§3.3.1); IRQs arrive masked.
  {
    auto& f = k.add_function("el0_sync_entry");
    f.set_no_instrument();
    emit_trapframe_save(f, cfg_.protect_trapframe, compat);
    if (switch_keys) f.bl_sym(core::kKeySetterSymbol);
    f.mov_from_sp(0);  // x0 = trapframe
    f.bl_sym("el0_sync_handler");
    f.b_sym("ret_to_user");
  }

  {
    auto& f = k.add_function("el0_irq_entry");
    f.set_no_instrument();
    emit_trapframe_save(f, cfg_.protect_trapframe, compat);
    if (switch_keys) f.bl_sym(core::kKeySetterSymbol);
    f.bl_sym("el0_irq_handler");
    f.b_sym("ret_to_user");
  }

  // --- common user-return path: restore the running task's EL0 keys (the
  // kernel keys must never leak into user execution, R5/§3.3.1).
  {
    auto& f = k.add_function("ret_to_user");
    f.set_no_instrument();
    if (switch_keys) f.bl_sym("restore_user_keys_current");
    emit_trapframe_restore_and_eret(f, cfg_.protect_trapframe, compat);
  }

  // --- EL1 sync: kernel faults. This is where PAuth authentication
  // failures surface (poisoned pointers fault on use) and where the §5.4
  // brute-force policy lives.
  {
    auto& f = k.add_function("el1_sync_entry");
    f.set_no_instrument();
    // A kernel fault can arrive while *user* keys are live — the window
    // between restore_user_keys_current and ERET on the exit path. The
    // handler (and the scheduler it calls on the kill path) authenticate
    // kernel-signed pointers, so kernel keys must be re-installed first.
    if (switch_keys) f.bl_sym(core::kKeySetterSymbol);
    f.bl_sym("el1_sync_handler");
    f.hlt(kHaltOops);  // unreachable
  }

  {
    auto& f = k.add_function("el1_sync_handler");
    const Label oops = f.make_label();
    const Label is_pac = f.make_label();
    const Label kill = f.make_label();
    const Label panic = f.make_label();
    f.frame_push();
    f.mrs(9, SysReg::ESR_EL1);
    f.lsr_i(10, 9, 56);    // exception class
    f.ubfx(11, 9, 16, 8);  // fault kind
    f.cmp_i(10, static_cast<uint16_t>(ExcClass::PacFail));
    f.b_cond(isa::Cond::EQ, is_pac);
    // Aborts caused by non-canonical (PAC-poisoned) addresses:
    f.cmp_i(11, static_cast<uint16_t>(mem::FaultKind::AddressSize));
    f.b_cond(isa::Cond::NE, oops);
    f.cmp_i(10, static_cast<uint16_t>(ExcClass::DataAbort));
    f.b_cond(isa::Cond::EQ, is_pac);
    f.cmp_i(10, static_cast<uint16_t>(ExcClass::InsnAbort));
    f.b_cond(isa::Cond::EQ, is_pac);
    f.bind(oops);
    f.hlt(kHaltOops);

    f.bind(is_pac);
    if (cfg_.log_pac_failures) {
      f.mov_sym(0, "pacfail_msg");
      f.mov_imm(1, 9);
      f.hvc(hvc_num(HvcCall::ConsoleWrite));
    }
    f.mov_sym(9, kSymPacFailCount);
    f.ldr(10, 9, 0);
    f.add_i(10, 10, 1);
    f.str(10, 9, 0);
    f.cmp_i(10, static_cast<uint16_t>(cfg_.pac_failure_threshold));
    f.b_cond(isa::Cond::HS, panic);
    // SIGKILL the offending task; a fault with no current user task is a
    // kernel bug → OOPS.
    f.bind(kill);
    f.mrs(9, SysReg::TPIDR_EL1);
    f.ldr(10, 9, task::kPid);
    f.cbz(10, oops);
    f.mov_imm(11, static_cast<uint64_t>(TaskState::Dead));
    f.str(11, 9, task::kState);
    f.bl_sym("schedule");  // never returns (task is dead)
    f.hlt(kHaltOops);
    f.bind(panic);
    f.hlt(kHaltPacPanic);
  }

  {
    auto& f = k.add_function("el1_irq_entry");
    f.set_no_instrument();
    f.stp_pre(9, 10, kSp, -16);
    if (smp) {
      // Ack every latched source (ISR_EL1 is write-1-to-clear). Kernel-mode
      // IRQs only bump jiffies — rescheduling happens on the EL0 path, so
      // an IPI caught here still takes effect at the next schedule poll.
      f.mrs(9, SysReg::ISR_EL1);
      f.msr(SysReg::ISR_EL1, 9);
    }
    f.mov_sym(9, kSymJiffies);
    f.ldr(10, 9, 0);
    f.add_i(10, 10, 1);
    f.str(10, 9, 0);
    f.ldp_post(9, 10, kSp, 16);
    f.eret();
  }

  {
    auto& f = k.add_function("el0_irq_handler");
    f.frame_push();
    f.mov_sym(9, kSymJiffies);
    f.ldr(10, 9, 0);
    f.add_i(10, 10, 1);
    f.str(10, 9, 0);
    if (smp) {
      // Read-and-ack the source latch; on an IPI, clear this core's mailbox
      // word and count the doorbell. Both IRQ sources (timer tick, IPI)
      // warrant a reschedule, so the schedule call is unconditional.
      const Label no_ipi = f.make_label();
      f.mrs(9, SysReg::ISR_EL1);
      f.msr(SysReg::ISR_EL1, 9);
      f.and_i(10, 9, static_cast<uint16_t>(cpu::Cpu::kIrqSrcIpi));
      f.cbz(10, no_ipi);
      f.mrs(11, SysReg::MPIDR_EL1);
      f.mov_sym(12, kSymIpiMailbox);
      f.lsl_i(11, 11, 3);
      f.add(12, 12, 11);
      f.str(kZr, 12, 0);
      f.mov_sym(12, kSymIpiCount);
      f.ldr(11, 12, 0);
      f.add_i(11, 11, 1);
      f.str(11, 12, 0);
      f.bind(no_ipi);
      f.bl_sym("schedule");
    } else if (cfg_.preempt) {
      f.bl_sym("schedule");
    }
    f.frame_pop_ret();
  }

  // --- syscall dispatch --------------------------------------------------
  {
    auto& f = k.add_function("el0_sync_handler");
    const Label not_syscall = f.make_label();
    const Label bad = f.make_label();
    const Label done = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.mov(19, 0);  // x19 = trapframe
    f.mrs(9, SysReg::ESR_EL1);
    f.lsr_i(10, 9, 56);
    f.cmp_i(10, static_cast<uint16_t>(ExcClass::Svc));
    f.b_cond(isa::Cond::NE, not_syscall);
    // current->syscalls++
    f.mrs(9, SysReg::TPIDR_EL1);
    f.ldr(11, 9, task::kSyscalls);
    f.add_i(11, 11, 1);
    f.str(11, 9, task::kSyscalls);
    // dispatch via the read-only table
    f.ldr(8, 19, 8 * 8);  // x8 slot of the trapframe
    f.cmp_i(8, static_cast<uint16_t>(Sys::kCount));
    f.b_cond(isa::Cond::HS, bad);
    f.mov_sym(9, "syscall_table");
    f.lsl_i(10, 8, 3);
    f.add(9, 9, 10);
    f.ldr(9, 9, 0);
    f.ldr(0, 19, 0);
    f.ldr(1, 19, 8);
    f.ldr(2, 19, 16);
    f.blr(9);  // .rodata table: plain call, like Listing 4's final blr
    f.str(0, 19, 0);  // result into trapframe x0
    f.b(done);
    f.bind(bad);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.str(0, 19, 0);
    f.bind(done);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
    // user fault (e.g. EL0 touching kernel memory): SIGKILL.
    f.bind(not_syscall);
    f.mrs(9, SysReg::TPIDR_EL1);
    f.mov_imm(11, static_cast<uint64_t>(TaskState::Dead));
    f.str(11, 9, task::kState);
    f.bl_sym("schedule");
    f.hlt(kHaltOops);
  }

  // =========================================================================
  // Key management helpers
  // =========================================================================

  // Restore the current task's user keys from its thread_struct slots. Only
  // the keys the kernel clobbers are restored (IA/IB/DB — or IB alone in
  // compat builds). Leaf: LR stays in a register, no frame needed.
  {
    auto& f = k.add_function("restore_user_keys_current");
    f.set_no_instrument();
    f.mrs(9, SysReg::TPIDR_EL1);
    struct Slot {
      int index;
      SysReg reg;
    };
    std::vector<Slot> slots;
    if (compat) {
      slots = {{2, SysReg::APIBKeyLo}, {3, SysReg::APIBKeyHi}};
    } else {
      slots = {{0, SysReg::APIAKeyLo}, {1, SysReg::APIAKeyHi},
               {2, SysReg::APIBKeyLo}, {3, SysReg::APIBKeyHi},
               {6, SysReg::APDBKeyLo}, {7, SysReg::APDBKeyHi}};
    }
    for (const auto& s : slots) {
      f.ldr(10, 9, static_cast<uint16_t>(task::kUserKeys + s.index * 8));
      f.msr(s.reg, 10);
    }
    f.ret();
  }

  // Walk a .pauth_init table (§4.6): sign each statically initialised
  // pointer in place. x0 = table, x1 = entry count. Used for the kernel's
  // own table at early boot and for every loaded module's table.
  {
    auto& f = k.add_function("sign_init_table");
    const Label loop = f.make_label();
    const Label done = f.make_label();
    const Label store = f.make_label();
    f.bind(loop);
    f.cbz(1, done);
    f.ldr(9, 0, 0);    // slot va
    f.ldr(10, 0, 8);   // container va
    f.ldr(11, 0, 16);  // type_id | key << 16
    f.ldr(12, 9, 0);   // raw pointer value
    if (cfg_.protection.apple_zero_modifier) {
      f.movz(13, 0, 0);  // ablation: Apple-style zero modifier
    } else {
      f.ubfx(13, 11, 0, 16);
      f.bfi(13, 10, 16, 48);  // §4.3 modifier
    }
    // Sign only the pointer classes the build actually protects — the
    // consumers (call_protected / load_protected expansions) are gated by
    // the same configuration.
    if (compat) {
      if (cfg_.protection.forward_cfi || cfg_.protection.dfi) {
        f.mov(isa::kRegIp1, 12);
        f.mov(isa::kRegIp0, 13);
        f.pacib1716();
        f.mov(12, isa::kRegIp1);
      }
    } else {
      const Label use_ib = f.make_label();
      f.ubfx(14, 11, 16, 8);
      f.cmp_i(14, static_cast<uint16_t>(PacKey::IB));
      f.b_cond(isa::Cond::EQ, use_ib);
      if (cfg_.protection.dfi) f.pacdb(12, 13);
      f.b(store);
      f.bind(use_ib);
      if (cfg_.protection.forward_cfi) f.pacib(12, 13);
    }
    f.bind(store);
    f.str(12, 9, 0);
    f.add_i(0, 0, 24);
    f.sub_i(1, 1, 1);
    f.b(loop);
    f.bind(done);
    f.ret();
  }

  // =========================================================================
  // Scheduler (§5.2)
  // =========================================================================

  if (!smp) {
    auto& f = k.add_function("schedule");
    const Label loop = f.make_label();
    const Label advance = f.make_label();
    const Label found = f.make_label();
    const Label do_switch = f.make_label();
    const Label keep_state = f.make_label();
    const Label out = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.mrs(19, SysReg::TPIDR_EL1);  // prev
    f.ldr(9, 19, task::kPid);
    f.mov_sym(10, "num_tasks_g");
    f.ldr(10, 10, 0);
    f.mov_imm(11, 1);  // i
    f.bind(loop);
    // cand = (prev_pid + i) % n; the swapper is only a fallback, skip it.
    f.add(12, 9, 11);
    f.udiv(13, 12, 10);
    f.mul(13, 13, 10);
    f.sub(12, 12, 13);
    f.cbz(12, advance);
    emit_task_ptr(f, 13, 12, 14);
    f.ldr(14, 13, task::kState);
    f.cmp_i(14, static_cast<uint16_t>(TaskState::New));
    f.b_cond(isa::Cond::EQ, found);
    f.cmp_i(14, static_cast<uint16_t>(TaskState::Runnable));
    f.b_cond(isa::Cond::EQ, found);
    f.bind(advance);
    f.add_i(11, 11, 1);
    f.cmp(11, 10);
    f.b_cond(isa::Cond::LS, loop);
    // No runnable user task. If prev is still running, keep running it;
    // otherwise (dead) fall back to the swapper.
    f.ldr(14, 19, task::kState);
    f.cmp_i(14, static_cast<uint16_t>(TaskState::Current));
    f.b_cond(isa::Cond::EQ, out);
    f.mov_sym(13, kSymTaskArray);  // swapper task 0
    f.b(do_switch);
    f.bind(found);
    f.cmp(13, 19);
    f.b_cond(isa::Cond::EQ, out);
    f.bind(do_switch);
    // prev: Current -> Runnable (Dead stays Dead).
    f.ldr(14, 19, task::kState);
    f.cmp_i(14, static_cast<uint16_t>(TaskState::Current));
    f.b_cond(isa::Cond::NE, keep_state);
    f.mov_imm(14, static_cast<uint64_t>(TaskState::Runnable));
    f.str(14, 19, task::kState);
    f.bind(keep_state);
    f.mov_imm(14, static_cast<uint64_t>(TaskState::Current));
    f.str(14, 13, task::kState);
    f.mov(0, 19);
    f.mov(1, 13);
    f.bl_sym(kSymCpuSwitchTo);
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
  } else {
    // SMP schedule: one shared runqueue under sched_lock. Pick the runnable
    // task with the smallest virtual runtime (cfs-lite) regardless of which
    // core it last ran on — tasks migrate freely; cpu_switch_to reinstalls
    // their user keys on the destination core. The switched-out task is NOT
    // published as Runnable here: cpu_switch_to does that only after its SP
    // is saved and signed, so a concurrent core can never steal a task with
    // a half-written switch frame.
    auto& f = k.add_function("schedule");
    const Label spin = f.make_label();
    const Label pick_loop = f.make_label();
    const Label consider = f.make_label();
    const Label pick_next = f.make_label();
    const Label pick_done = f.make_label();
    const Label have_best = f.make_label();
    const Label to_swapper = f.make_label();
    const Label swapper0 = f.make_label();
    const Label check_same = f.make_label();
    const Label no_wrap = f.make_label();
    const Label no_kick = f.make_label();
    const Label unlock_out = f.make_label();
    const Label out = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.mrs(19, SysReg::TPIDR_EL1);  // x19 = prev
    // Acquire the runqueue lock. SWP is a single instruction, hence atomic
    // under the machine's quantum interleaver; a spinning core burns its
    // quantum while the holder progresses, so the wait is bounded.
    f.mov_sym(9, kSymSchedLock);
    f.mov_imm(10, 1);
    f.bind(spin);
    f.swp(11, 9, 10);
    f.cbnz(11, spin);
    // x9 holds the lock address until release. x10 = n, x11 = pid iter,
    // x12 = candidate, x13 = best, x14 = best vruntime, x2 = runnable
    // count, x3 = this core's id.
    f.mov_sym(10, "num_tasks_g");
    f.ldr(10, 10, 0);
    f.movz(13, 0, 0);
    f.movn(14, 0, 0);  // best vruntime = 2^64 - 1
    f.movz(2, 0, 0);
    f.mov_imm(11, 1);
    f.bind(pick_loop);
    f.cmp(11, 10);
    f.b_cond(isa::Cond::HS, pick_done);
    emit_task_ptr(f, 12, 11, 15);
    f.ldr(15, 12, task::kState);
    f.cmp_i(15, static_cast<uint16_t>(TaskState::New));
    f.b_cond(isa::Cond::EQ, consider);
    f.cmp_i(15, static_cast<uint16_t>(TaskState::Runnable));
    f.b_cond(isa::Cond::NE, pick_next);
    f.bind(consider);
    f.add_i(2, 2, 1);
    // Strict less-than keeps the lowest pid on vruntime ties: the scan is
    // ascending, so an equal vruntime never displaces an earlier winner.
    f.ldr(15, 12, task::kVruntime);
    f.cmp(15, 14);
    f.b_cond(isa::Cond::HS, pick_next);
    f.mov(14, 15);
    f.mov(13, 12);
    f.bind(pick_next);
    f.add_i(11, 11, 1);
    f.b(pick_loop);
    f.bind(pick_done);
    f.cbnz(13, have_best);
    // Nothing runnable: keep running prev while it may run; a dead prev
    // falls back to this core's swapper (slot 0 on core 0, slot n+c-1 for
    // core c — the slots just past the user tasks).
    f.ldr(15, 19, task::kState);
    f.cmp_i(15, static_cast<uint16_t>(TaskState::Current));
    f.b_cond(isa::Cond::EQ, unlock_out);
    f.bind(to_swapper);
    f.mrs(3, SysReg::MPIDR_EL1);
    f.cbz(3, swapper0);
    f.add(11, 10, 3);
    f.sub_i(11, 11, 1);
    emit_task_ptr(f, 13, 11, 15);
    f.b(check_same);
    f.bind(swapper0);
    f.mov_sym(13, kSymTaskArray);
    f.b(check_same);
    f.bind(have_best);
    // Advance the pick's virtual runtime so repeated picks rotate fairly.
    f.add_i(14, 14, 1);
    f.str(14, 13, task::kVruntime);
    f.bind(check_same);
    f.cmp(13, 19);
    f.b_cond(isa::Cond::EQ, unlock_out);
    // Claim next for this core, then release the lock.
    f.mov_imm(15, static_cast<uint64_t>(TaskState::Current));
    f.str(15, 13, task::kState);
    f.mrs(3, SysReg::MPIDR_EL1);
    f.str(3, 13, task::kCpu);
    f.str(kZr, 9, 0);
    // IPI kick: when other runnable work remains, ring the next core's
    // doorbell (mailbox word + HVC) so it reschedules promptly.
    f.cmp_i(2, 2);
    f.b_cond(isa::Cond::LO, no_kick);
    f.add_i(3, 3, 1);
    f.cmp_i(3, static_cast<uint16_t>(num_cpus));
    f.b_cond(isa::Cond::LO, no_wrap);
    f.movz(3, 0, 0);
    f.bind(no_wrap);
    f.mov_sym(15, kSymIpiMailbox);
    f.lsl_i(4, 3, 3);
    f.add(15, 15, 4);
    f.mov_imm(4, 1);
    f.str(4, 15, 0);
    f.mov(0, 3);
    f.hvc(hvc_num(HvcCall::SendIpi));
    f.bind(no_kick);
    f.mov(0, 19);
    f.mov(1, 13);
    f.bl_sym(kSymCpuSwitchTo);
    f.b(out);
    f.bind(unlock_out);
    f.str(kZr, 9, 0);
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
  }

  // cpu_switch_to(prev=x0, next=x1): saves callee-saved state on prev's
  // stack, signs and stores prev's kernel SP into the task struct with the
  // §4.3 pointer-integrity scheme, then either resumes next (authenticating
  // its saved SP) or, for a never-run task, constructs the first ERET into
  // user space (Linux's ret_from_fork analogue). §5.2: "we additionally need
  // to sign the switched-from kernel task's SP and authenticate the
  // switched-to task's SP".
  {
    auto& f = k.add_function(kSymCpuSwitchTo);
    const Label nospace = f.make_label();
    const Label firstrun = f.make_label();
    f.frame_push(96);
    f.stp(19, 20, kSp, 0);
    f.stp(21, 22, kSp, 16);
    f.stp(23, 24, kSp, 32);
    f.stp(25, 26, kSp, 48);
    f.stp(27, 28, kSp, 64);
    f.mrs(9, SysReg::SP_EL0);
    f.str(9, 0, task::kSavedSpEl0);
    f.mov_from_sp(9);
    f.store_protected(9, 0, task::kKsp, kTypeTaskSp, PacKey::DB);
    if (smp) {
      // Publish prev as stealable only now that its SP is saved and signed:
      // a core that picks it up resumes a complete, authenticated switch
      // frame. Dead tasks stay Dead; nothing below writes prev's state.
      const Label keep = f.make_label();
      f.ldr(9, 0, task::kState);
      f.cmp_i(9, static_cast<uint16_t>(TaskState::Current));
      f.b_cond(isa::Cond::NE, keep);
      f.mov_imm(9, static_cast<uint64_t>(TaskState::Runnable));
      f.str(9, 0, task::kState);
      f.bind(keep);
    }
    f.msr(SysReg::TPIDR_EL1, 1);
    // Switch user address space when it differs (swapper keeps whatever
    // mapping is live — it never touches user memory).
    f.ldr(9, 1, task::kSpace);
    f.ldr(10, 0, task::kSpace);
    f.cmp(9, 10);
    f.b_cond(isa::Cond::EQ, nospace);
    f.mov_imm(11, kSwapperSpace);
    f.cmp(9, 11);
    f.b_cond(isa::Cond::EQ, nospace);
    f.mov(0, 9);  // prev pointer is no longer needed
    f.hvc(hvc_num(HvcCall::SwitchUserSpace));
    f.bind(nospace);
    if (restore_keys_at_switch) f.bl_sym("restore_user_keys_current");
    // First run? A suspended task always has a nonzero (signed) saved SP.
    f.ldr(9, 1, task::kKsp);
    f.cbz(9, firstrun);
    f.load_protected(9, 1, task::kKsp, kTypeTaskSp, PacKey::DB);
    f.mov_to_sp(9);
    f.ldr(9, 1, task::kSavedSpEl0);
    f.msr(SysReg::SP_EL0, 9);
    f.ldp(19, 20, kSp, 0);
    f.ldp(21, 22, kSp, 16);
    f.ldp(23, 24, kSp, 32);
    f.ldp(25, 26, kSp, 48);
    f.ldp(27, 28, kSp, 64);
    f.frame_pop_ret(96);
    f.bind(firstrun);
    f.ldr(9, 1, task::kKstackTop);
    f.mov_to_sp(9);
    f.ldr(9, 1, task::kUserSp);
    f.msr(SysReg::SP_EL0, 9);
    f.ldr(9, 1, task::kUserPc);
    f.msr(SysReg::ELR_EL1, 9);
    f.movz(9, 0, 0);
    f.msr(SysReg::SPSR_EL1, 9);  // EL0, IRQs unmasked
    // (banked builds already restored user keys on the common path above)
    if (switch_keys) f.bl_sym("restore_user_keys_current");
    f.eret();
  }

  // =========================================================================
  // File layer (§4.5, Listing 4)
  // =========================================================================

  // get_file(fd=x0) -> x0 = struct file* or 0. Leaf.
  {
    auto& f = k.add_function("get_file");
    const Label bad = f.make_label();
    f.cmp_i(0, kMaxFiles);
    f.b_cond(isa::Cond::HS, bad);
    f.mov_sym(9, kSymFileTable);
    f.lsl_i(10, 0, 5);  // * kFileSize
    f.add(9, 9, 10);
    f.ldr(11, 9, file::kInUse);
    f.cbz(11, bad);
    f.mov(0, 9);
    f.ret();
    f.bind(bad);
    f.movz(0, 0, 0);
    f.ret();
  }

  // sys_read(fd, buf, len) / sys_write: authenticate f_ops (the paper's
  // file_ops() getter), then call through the read-only table.
  for (const bool is_write : {false, true}) {
    auto& f = k.add_function(is_write ? "sys_write" : "sys_read");
    const Label einval = f.make_label();
    const Label out = f.make_label();
    f.frame_push(32);
    f.str(19, kSp, 0);
    f.str(20, kSp, 8);
    f.str(21, kSp, 16);
    f.mov(19, 1);  // buf
    f.mov(20, 2);  // len
    f.bl_sym("get_file");
    f.cbz(0, einval);
    f.mov(21, 0);
    // Listing 4: load + authenticate f_ops, then the plain indirect call.
    f.load_protected(9, 21, file::kFops, kTypeFileFops, PacKey::DB);
    f.ldr(9, 9, is_write ? fops::kWrite : fops::kRead);
    f.mov(0, 21);
    f.mov(1, 19);
    f.mov(2, 20);
    f.blr(9);
    f.b(out);
    f.bind(einval);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.ldr(20, kSp, 8);
    f.ldr(21, kSp, 16);
    f.frame_pop_ret(32);
  }

  // sys_open(kind) -> fd. Uses the set_file_ops() setter pattern (§5.3).
  {
    auto& f = k.add_function("sys_open");
    const Label einval = f.make_label();
    const Label loop = f.make_label();
    const Label found = f.make_label();
    const Label out = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.cmp_i(0, 3);
    f.b_cond(isa::Cond::HS, einval);
    f.mov(19, 0);  // kind
    f.mov_imm(9, 1);
    f.bind(loop);
    f.cmp_i(9, kMaxFiles);
    f.b_cond(isa::Cond::HS, einval);
    f.mov_sym(10, kSymFileTable);
    f.lsl_i(11, 9, 5);
    f.add(10, 10, 11);
    f.ldr(12, 10, file::kInUse);
    f.cbz(12, found);
    f.add_i(9, 9, 1);
    f.b(loop);
    f.bind(found);
    f.mov_imm(12, 1);
    f.str(12, 10, file::kInUse);
    f.str(19, 10, file::kKind);
    f.str(kZr, 10, file::kPos);
    f.mov_sym(11, "fops_by_kind");
    f.lsl_i(12, 19, 3);
    f.add(11, 11, 12);
    f.ldr(11, 11, 0);
    f.store_protected(11, 10, file::kFops, kTypeFileFops, PacKey::DB);
    f.mov(0, 9);
    f.b(out);
    f.bind(einval);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
  }

  {
    auto& f = k.add_function("sys_close");
    const Label einval = f.make_label();
    const Label out = f.make_label();
    f.frame_push();
    f.bl_sym("get_file");
    f.cbz(0, einval);
    f.str(kZr, 0, file::kInUse);
    f.movz(0, 0, 0);
    f.b(out);
    f.bind(einval);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.bind(out);
    f.frame_pop_ret();
  }

  {
    auto& f = k.add_function("sys_stat");
    const Label einval = f.make_label();
    const Label out = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.mov(19, 1);  // user buf
    f.bl_sym("get_file");
    f.cbz(0, einval);
    f.ldr(9, 0, file::kKind);
    f.str(9, 19, 0);
    f.ldr(9, 0, file::kPos);
    f.str(9, 19, 8);
    f.ldr(9, 0, file::kInUse);
    f.str(9, 19, 16);
    f.mov_imm(9, 0x57A7);
    f.str(9, 19, 24);
    f.movz(0, 0, 0);
    f.b(out);
    f.bind(einval);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
  }

  // --- file operation implementations (leaves) ---

  {
    auto& f = k.add_function("null_read");
    const Label loop = f.make_label();
    const Label done = f.make_label();
    f.movz(9, 0, 0);
    f.bind(loop);
    f.cmp(9, 2);
    f.b_cond(isa::Cond::HS, done);
    f.add(10, 1, 9);
    f.strb(kZr, 10, 0);
    f.add_i(9, 9, 1);
    f.b(loop);
    f.bind(done);
    f.mov(0, 2);
    f.ret();
  }
  {
    auto& f = k.add_function("null_write");
    f.mov(0, 2);
    f.ret();
  }
  // kcopy256(dst=x0, src=x1): copy one 256-byte block. A framed helper so
  // the kernel copy path has realistic function-call density (the
  // copy_to_user / iov-iteration layers of a real read path).
  {
    auto& f = k.add_function("kcopy256");
    f.frame_push();
    for (uint16_t off = 0; off < 256; off += 16) {
      f.ldp(9, 10, 1, static_cast<int16_t>(off));
      f.stp(9, 10, 0, static_cast<int16_t>(off));
    }
    f.frame_pop_ret();
  }

  for (const bool is_write : {false, true}) {
    auto& f = k.add_function(is_write ? "ram_write" : "ram_read");
    const Label blocks = f.make_label();
    const Label tail = f.make_label();
    const Label tail_loop = f.make_label();
    const Label done = f.make_label();
    const Label capped = f.make_label();
    f.frame_push(48);
    f.str(19, kSp, 0);
    f.str(20, kSp, 8);
    f.str(21, kSp, 16);
    f.str(22, kSp, 24);
    f.mov_imm(11, 4096);
    f.cmp(2, 11);
    f.b_cond(isa::Cond::LS, capped);
    f.mov(2, 11);
    f.bind(capped);
    f.mov_sym(9, kSymRamfsData);
    // x19 = dst, x20 = src, x21 = remaining, x22 = total
    if (is_write) {
      f.mov(19, 9);
      f.mov(20, 1);
    } else {
      f.mov(19, 1);
      f.mov(20, 9);
    }
    f.mov(21, 2);
    f.mov(22, 2);
    f.bind(blocks);
    f.cmp_i(21, 256);
    f.b_cond(isa::Cond::LO, tail);
    f.mov(0, 19);
    f.mov(1, 20);
    f.bl_sym("kcopy256");
    f.add_i(19, 19, 256);
    f.add_i(20, 20, 256);
    f.sub_i(21, 21, 256);
    f.b(blocks);
    f.bind(tail);
    f.bind(tail_loop);
    f.cbz(21, done);
    f.ldrb(9, 20, 0);
    f.strb(9, 19, 0);
    f.add_i(19, 19, 1);
    f.add_i(20, 20, 1);
    f.sub_i(21, 21, 1);
    f.b(tail_loop);
    f.bind(done);
    if (!is_write) {
      // Protocol checksum over the delivered data (the per-byte kernel work
      // a real network receive path performs).
      const Label cs_loop = f.make_label();
      const Label cs_done = f.make_label();
      f.mov_sym(9, kSymRamfsData);
      f.lsr_i(10, 22, 3);  // u64 words
      f.movz(11, 0, 0);
      f.bind(cs_loop);
      f.cbz(10, cs_done);
      f.ldr(12, 9, 0);
      f.add(11, 11, 12);
      f.add_i(9, 9, 8);
      f.sub_i(10, 10, 1);
      f.b(cs_loop);
      f.bind(cs_done);
    }
    f.mov(0, 22);
    f.ldr(19, kSp, 0);
    f.ldr(20, kSp, 8);
    f.ldr(21, kSp, 16);
    f.ldr(22, kSp, 24);
    f.frame_pop_ret(48);
  }
  {
    auto& f = k.add_function("con_read");
    f.movz(0, 0, 0);
    f.ret();
  }
  {
    auto& f = k.add_function("con_write");
    f.mov(9, 2);
    f.mov(0, 1);
    f.mov(1, 9);
    f.hvc(hvc_num(HvcCall::ConsoleWrite));
    f.mov(0, 9);
    f.ret();
  }

  // =========================================================================
  // Simple syscalls
  // =========================================================================

  {
    auto& f = k.add_function("sys_getpid");
    f.mrs(9, SysReg::TPIDR_EL1);
    f.ldr(0, 9, task::kPid);
    f.ret();
  }

  {
    auto& f = k.add_function("sys_yield");
    f.frame_push();
    f.bl_sym("schedule");
    f.movz(0, 0, 0);
    f.frame_pop_ret();
  }

  {
    auto& f = k.add_function("sys_exit");
    f.frame_push();
    f.mrs(9, SysReg::TPIDR_EL1);
    f.mov_imm(10, static_cast<uint64_t>(TaskState::Dead));
    f.str(10, 9, task::kState);
    f.bl_sym("schedule");  // never returns
    f.hlt(kHaltOops);
  }

  {
    auto& f = k.add_function("sys_getjiffies");
    f.mov_sym(9, kSymJiffies);
    f.ldr(0, 9, 0);
    f.ret();
  }

  // =========================================================================
  // Workqueue (§4.6) and lone hook pointer (§4.4)
  // =========================================================================

  {
    auto& f = k.add_function("default_work");
    f.mov_sym(9, kSymWorkCounter);
    f.ldr(10, 9, 0);
    f.add(10, 10, 0);  // += work data argument
    f.str(10, 9, 0);
    f.ret();
  }

  {
    auto& f = k.add_function("sys_queue_work");
    f.frame_push();
    f.mov_sym(9, kSymStaticWork);
    f.ldr(0, 9, 0);    // work->data as argument
    f.ldr(10, 9, 8);   // signed work->func
    f.call_protected(10, 9, kTypeWorkFunc, PacKey::IB);
    f.movz(0, 0, 0);
    f.frame_pop_ret();
  }

  // The attack framework's code-reuse target: stands in for a privilege-
  // escalation gadget. Present in kernel text (so it is a legitimate code
  // address an attacker can aim a pointer at) but never legitimately called.
  {
    auto& f = k.add_function(kSymGadget);
    f.mov_sym(9, kSymPwnedFlag);
    f.mov_imm(10, 0x31337);
    f.str(10, 9, 0);
    f.hlt(kHaltPwned);
  }

  {
    auto& f = k.add_function("default_hook");
    f.mov_sym(9, kSymHookCounter);
    f.ldr(10, 9, 0);
    f.add_i(10, 10, 1);
    f.str(10, 9, 0);
    f.ret();
  }
  {
    auto& f = k.add_function("alt_hook");
    f.mov_sym(9, kSymHookCounter);
    f.ldr(10, 9, 0);
    f.add_i(10, 10, 2);
    f.str(10, 9, 0);
    f.ret();
  }

  {
    auto& f = k.add_function("sys_call_hook");
    f.frame_push();
    f.mov_sym(9, kSymHookObj);
    f.ldr(10, 9, 0);
    f.call_protected(10, 9, kTypeHook, PacKey::IB);
    f.movz(0, 0, 0);
    f.frame_pop_ret();
  }

  {
    auto& f = k.add_function("sys_register_hook");
    const Label einval = f.make_label();
    const Label out = f.make_label();
    f.frame_push();
    f.cmp_i(0, 2);
    f.b_cond(isa::Cond::HS, einval);
    f.mov_sym(9, "hook_registry");
    f.lsl_i(10, 0, 3);
    f.add(9, 9, 10);
    f.ldr(10, 9, 0);
    f.mov_sym(9, kSymHookObj);
    f.store_protected(10, 9, 0, kTypeHook, PacKey::IB);
    f.movz(0, 0, 0);
    f.b(out);
    f.bind(einval);
    f.mov_imm(0, static_cast<uint64_t>(kEInval));
    f.bind(out);
    f.frame_pop_ret();
  }

  // =========================================================================
  // Module loading (§4.1 + §4.6)
  // =========================================================================

  {
    auto& f = k.add_function("sys_init_module");
    const Label eperm = f.make_label();
    const Label out = f.make_label();
    f.frame_push(16);
    f.str(19, kSp, 0);
    f.hvc(hvc_num(HvcCall::LoadModule));  // x0 = id in, entry out
    f.cbz(0, eperm);
    f.mov(19, 0);
    f.mov(0, 1);  // module .pauth_init table
    f.mov(1, 2);  // entry count
    f.bl_sym("sign_init_table");
    f.blr(19);  // module init (statically verified before mapping)
    f.movz(0, 0, 0);
    f.b(out);
    f.bind(eperm);
    f.mov_imm(0, static_cast<uint64_t>(kEPerm));
    f.bind(out);
    f.ldr(19, kSp, 0);
    f.frame_pop_ret(16);
  }

  // =========================================================================
  // Boot: early_boot -> kernel_late_init -> idle loop
  // =========================================================================

  // Post-key initialisation that uses protected stores (must run after the
  // key setter; instrumented normally).
  {
    auto& f = k.add_function("kernel_late_init");
    f.frame_push();
    // fd 0: the console (every task shares the global file table).
    f.mov_sym(9, kSymFileTable);
    f.mov_imm(10, 1);
    f.str(10, 9, file::kInUse);
    f.mov_imm(10, static_cast<uint64_t>(FileKind::Console));
    f.str(10, 9, file::kKind);
    f.mov_sym(10, "con_fops");
    f.store_protected(10, 9, file::kFops, kTypeFileFops, PacKey::DB);
    // Install the default hook into the writable hook slot.
    f.mov_sym(9, kSymHookObj);
    f.mov_sym(10, "default_hook");
    f.store_protected(10, 9, 0, kTypeHook, PacKey::IB);
    f.frame_pop_ret();
  }

  // early_boot: the only function allowed to write SCTLR_EL1 (§4.1).
  {
    auto& f = k.add_function("early_boot");
    f.set_no_instrument();
    const Label task_loop = f.make_label();
    const Label tasks_done = f.make_label();
    const Label key_loop = f.make_label();
    const Label idle = f.make_label();
    const Label check_loop = f.make_label();
    const Label not_done = f.make_label();
    const Label all_done = f.make_label();

    // Enable PAuth and point VBAR at the vector page.
    f.mov_imm(0, isa::kSctlrEnIA | isa::kSctlrEnIB | isa::kSctlrEnDA |
                     isa::kSctlrEnDB);
    f.msr(SysReg::SCTLR_EL1, 0);
    f.mov_sym(0, "vectors");
    f.msr(SysReg::VBAR_EL1, 0);
    f.bl_sym(core::kKeySetterSymbol);

    // §4.6: sign the kernel's statically initialised pointers in place.
    f.mov_sym(0, "__pauth_init_table");
    f.mov_sym(9, "pauth_count_g");
    f.ldr(1, 9, 0);
    f.bl_sym("sign_init_table");

    // Swapper task (pid 0) runs the boot context.
    f.mov_sym(9, kSymTaskArray);
    f.msr(SysReg::TPIDR_EL1, 9);
    f.str(kZr, 9, task::kPid);
    f.mov_imm(10, static_cast<uint64_t>(TaskState::Current));
    f.str(10, 9, task::kState);
    f.mov_imm(10, kSwapperSpace);
    f.str(10, 9, task::kSpace);
    f.mov_imm(10, kBootStackTop);
    f.str(10, 9, task::kKstackTop);

    // Populate user task structs from boot_config.
    f.mov_sym(10, "boot_config");
    f.ldr(11, 10, 0);       // n user tasks
    f.add_i(10, 10, 8);     // first record
    f.movz(12, 0, 0);       // i
    f.bind(task_loop);
    f.cmp(12, 11);
    f.b_cond(isa::Cond::HS, tasks_done);
    f.add_i(13, 12, 1);     // pid = i + 1
    emit_task_ptr(f, 14, 13, 15);
    f.str(13, 14, task::kPid);
    f.mov_imm(15, static_cast<uint64_t>(TaskState::New));
    f.str(15, 14, task::kState);
    f.ldr(15, 10, 0);
    f.str(15, 14, task::kUserPc);
    f.ldr(15, 10, 8);
    f.str(15, 14, task::kUserSp);
    f.ldr(15, 10, 16);
    f.str(15, 14, task::kSpace);
    // kstack top = kernel_stacks + i * stride + size
    f.mov_sym(15, kSymKernelStacks);
    f.lsl_i(2, 12, 16);  // * 0x10000
    f.add(15, 15, 2);
    f.mov_imm(2, kKernelStackSize);
    f.add(15, 15, 2);
    f.str(15, 14, task::kKstackTop);
    // copy 10 user key halves
    f.movz(3, 0, 0);
    f.bind(key_loop);
    f.lsl_i(4, 3, 3);
    f.add_i(5, 4, 24);   // offset of keys in the record
    f.add(5, 10, 5);
    f.ldr(5, 5, 0);
    f.add_i(6, 4, task::kUserKeys);
    f.add(6, 14, 6);
    f.str(5, 6, 0);
    f.add_i(3, 3, 1);
    f.cmp_i(3, 10);
    f.b_cond(isa::Cond::LO, key_loop);
    // next record
    f.add_i(10, 10, 13 * 8);
    f.add_i(12, 12, 1);
    f.b(task_loop);
    f.bind(tasks_done);

    if (smp) {
      // Swapper slots for cores 1..N-1 live just past the user tasks; the
      // host points each secondary's TPIDR_EL1 here before releasing it.
      for (unsigned c = 1; c < num_cpus; ++c) {
        const uint64_t slot = num_tasks + c - 1;
        f.mov_sym(9, kSymTaskArray);
        f.mov_imm(10, slot * kTaskSize);
        f.add(9, 9, 10);
        f.str(kZr, 9, task::kPid);
        f.mov_imm(10, static_cast<uint64_t>(TaskState::Current));
        f.str(10, 9, task::kState);
        f.mov_imm(10, kSwapperSpace);
        f.str(10, 9, task::kSpace);
        f.mov_imm(10, kBootStackTop - c * kKernelStackSize);
        f.str(10, 9, task::kKstackTop);
        f.mov_imm(10, c);
        f.str(10, 9, task::kCpu);
      }
    }

    f.bl_sym("kernel_late_init");
    f.hvc(hvc_num(HvcCall::Lockdown));
    if (smp) {
      // Release the secondaries only after keys, signed pointers and the
      // file layer are ready and the MMU registers are locked down.
      f.mov_sym(9, kSymSmpOnline);
      f.mov_imm(10, 1);
      f.str(10, 9, 0);
    }

    // Idle: keep scheduling until every user task has exited.
    f.bind(idle);
    f.bl_sym("schedule");
    f.mov_sym(9, "num_tasks_g");
    f.ldr(9, 9, 0);
    f.mov_imm(10, 1);  // pid iterator
    f.bind(check_loop);
    f.cmp(10, 9);
    f.b_cond(isa::Cond::HS, all_done);
    emit_task_ptr(f, 11, 10, 12);
    f.ldr(12, 11, task::kState);
    f.cmp_i(12, static_cast<uint16_t>(TaskState::Dead));
    f.b_cond(isa::Cond::NE, not_done);
    f.add_i(10, 10, 1);
    f.b(check_loop);
    f.bind(not_done);
    f.b(idle);
    f.bind(all_done);
    f.hlt(kHaltDone);
  }

  // secondary_idle: entry point for cores 1..N-1. The host "firmware" sets
  // up SCTLR/VBAR/keys/SP/TPIDR and jumps here; the core waits for core 0
  // to finish boot, then runs the same schedule-until-all-dead idle loop
  // as early_boot.
  if (smp) {
    auto& f = k.add_function(kSymSecondaryIdle);
    f.set_no_instrument();
    const Label wait = f.make_label();
    const Label idle = f.make_label();
    const Label check_loop = f.make_label();
    const Label not_done = f.make_label();
    const Label all_done = f.make_label();
    f.mov_sym(9, kSymSmpOnline);
    f.bind(wait);
    f.ldr(10, 9, 0);
    f.cbz(10, wait);
    f.bind(idle);
    f.bl_sym("schedule");
    f.mov_sym(9, "num_tasks_g");
    f.ldr(9, 9, 0);
    f.mov_imm(10, 1);
    f.bind(check_loop);
    f.cmp(10, 9);
    f.b_cond(isa::Cond::HS, all_done);
    emit_task_ptr(f, 11, 10, 12);
    f.ldr(12, 11, task::kState);
    f.cmp_i(12, static_cast<uint16_t>(TaskState::Dead));
    f.b_cond(isa::Cond::NE, not_done);
    f.add_i(10, 10, 1);
    f.b(check_loop);
    f.bind(not_done);
    f.b(idle);
    f.bind(all_done);
    f.hlt(kHaltDone);
  }

  return k;
}

}  // namespace camo::kernel
