// Generator for the guest kernel image.
//
// The kernel is real guest code: exception vectors, entry stubs that switch
// PAuth keys on every EL0↔EL1 transition (§3.3.1), a round-robin scheduler
// whose cpu_switch_to signs the switched-out task's kernel SP (§5.2), a file
// layer with read-only operations tables reached through PAuth-protected
// f_ops pointers (§4.5, Listing 4), a workqueue whose statically initialised
// work item is signed at boot by walking the .pauth_init table (§4.6), a
// writable "lone" hook pointer (§4.4), loadable-module support (verified by
// the hypervisor, §4.1), and the §5.4 brute-force panic policy.
//
// KernelBuilder emits the whole kernel as an obj::Program; the bootloader
// instruments and links it, so every CFI sequence executed at run time is the
// output of the real instrumentation passes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "compiler/instrument.h"
#include "kernel/abi.h"
#include "obj/object.h"

namespace camo::kernel {

struct KernelConfig {
  compiler::ProtectionConfig protection = compiler::ProtectionConfig::full();
  unsigned pac_failure_threshold = 8;  ///< §5.4 (must fit in 12 bits)
  bool log_pac_failures = true;        ///< console log on each failure
  bool preempt = false;                ///< reschedule on EL0 timer IRQ
  /// Extension of the paper's §8 future work ("attacks targeting the
  /// interrupt handler could modify or replace kernel register content"):
  /// sign the saved exception return state. The entry stub signs the
  /// trapframe's ELR with the IA key against a modifier folding the
  /// trapframe address and the saved SPSR; the exit path authenticates it.
  /// Rewriting a sleeping task's saved ELR — or flipping the saved SPSR's
  /// exception level for an ERET-to-EL1 escalation — then fails closed.
  bool protect_trapframe = false;
  /// §8 ISA-extension mode (requires cpu::Cpu::Config::banked_keys): the
  /// kernel keys live in an EL2-managed bank, so the entry/exit key switch
  /// and the XOM setter call disappear; per-task user keys are installed at
  /// context switch only (as Linux does), not on every exception return.
  bool banked_keys = false;
  /// Guest core count. 1 (the default) emits the classic uniprocessor image
  /// byte-for-byte; >1 adds the SMP runqueue lock, the cfs-lite migrating
  /// scheduler, per-CPU swapper slots, the IPI mailbox and secondary_idle.
  unsigned num_cpus = 1;
};

/// One user thread: where it starts, its stack, its address space and its
/// per-thread EL0 PAuth keys (kept in the kernel task struct, as Linux keeps
/// them in thread_struct, §2.2).
struct TaskSpec {
  uint64_t user_pc = 0;
  uint64_t user_sp = 0;
  uint64_t space_id = 0;
  std::array<uint64_t, 10> user_keys{};
};

class KernelBuilder {
 public:
  explicit KernelBuilder(KernelConfig cfg) : cfg_(cfg) {}

  void add_task(const TaskSpec& spec) { tasks_.push_back(spec); }
  size_t task_count() const { return tasks_.size(); }
  /// The task table (part of the kernel-image cache key: task specs are
  /// baked into kernel data, so they shape the built image).
  const std::vector<TaskSpec>& tasks() const { return tasks_; }

  /// Emit the complete kernel program (pre-instrumentation: the bootloader
  /// runs the passes).
  obj::Program build();

  /// Symbols that legitimately write PAuth key registers besides the XOM
  /// setter (the user-key restore path) — the bootloader allow-lists them.
  static std::vector<std::string> key_write_symbols() {
    return {"restore_user_keys_current"};
  }

 private:
  KernelConfig cfg_;
  std::vector<TaskSpec> tasks_;
};

}  // namespace camo::kernel
